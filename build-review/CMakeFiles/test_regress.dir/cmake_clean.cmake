file(REMOVE_RECURSE
  "CMakeFiles/test_regress.dir/tests/test_regress.cpp.o"
  "CMakeFiles/test_regress.dir/tests/test_regress.cpp.o.d"
  "test_regress"
  "test_regress.pdb"
  "test_regress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_regress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

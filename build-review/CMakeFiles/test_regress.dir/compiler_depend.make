# Empty compiler generated dependencies file for test_regress.
# This may be replaced when dependencies are built.

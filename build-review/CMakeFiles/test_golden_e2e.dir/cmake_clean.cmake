file(REMOVE_RECURSE
  "CMakeFiles/test_golden_e2e.dir/tests/test_golden_e2e.cpp.o"
  "CMakeFiles/test_golden_e2e.dir/tests/test_golden_e2e.cpp.o.d"
  "test_golden_e2e"
  "test_golden_e2e.pdb"
  "test_golden_e2e[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_golden_e2e.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_golden_e2e.
# This may be replaced when dependencies are built.

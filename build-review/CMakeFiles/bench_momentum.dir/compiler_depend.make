# Empty compiler generated dependencies file for bench_momentum.
# This may be replaced when dependencies are built.

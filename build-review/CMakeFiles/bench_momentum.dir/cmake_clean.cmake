file(REMOVE_RECURSE
  "CMakeFiles/bench_momentum.dir/bench/bench_momentum.cpp.o"
  "CMakeFiles/bench_momentum.dir/bench/bench_momentum.cpp.o.d"
  "bench_momentum"
  "bench_momentum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_momentum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_hetero.dir/bench/bench_hetero.cpp.o"
  "CMakeFiles/bench_hetero.dir/bench/bench_hetero.cpp.o.d"
  "bench_hetero"
  "bench_hetero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hetero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

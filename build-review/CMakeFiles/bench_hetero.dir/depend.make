# Empty dependencies file for bench_hetero.
# This may be replaced when dependencies are built.

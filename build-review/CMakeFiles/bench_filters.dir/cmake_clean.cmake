file(REMOVE_RECURSE
  "CMakeFiles/bench_filters.dir/bench/bench_filters.cpp.o"
  "CMakeFiles/bench_filters.dir/bench/bench_filters.cpp.o.d"
  "bench_filters"
  "bench_filters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_filters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_filters.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_scenario.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_scenario.dir/tests/test_scenario.cpp.o"
  "CMakeFiles/test_scenario.dir/tests/test_scenario.cpp.o.d"
  "test_scenario"
  "test_scenario.pdb"
  "test_scenario[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_p2p.
# This may be replaced when dependencies are built.

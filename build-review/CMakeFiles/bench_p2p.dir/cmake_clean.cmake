file(REMOVE_RECURSE
  "CMakeFiles/bench_p2p.dir/bench/bench_p2p.cpp.o"
  "CMakeFiles/bench_p2p.dir/bench/bench_p2p.cpp.o.d"
  "bench_p2p"
  "bench_p2p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_p2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for example_state_estimation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_state_estimation.dir/examples/state_estimation.cpp.o"
  "CMakeFiles/example_state_estimation.dir/examples/state_estimation.cpp.o.d"
  "example_state_estimation"
  "example_state_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_state_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

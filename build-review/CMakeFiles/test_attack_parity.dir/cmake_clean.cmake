file(REMOVE_RECURSE
  "CMakeFiles/test_attack_parity.dir/tests/test_attack_parity.cpp.o"
  "CMakeFiles/test_attack_parity.dir/tests/test_attack_parity.cpp.o.d"
  "test_attack_parity"
  "test_attack_parity.pdb"
  "test_attack_parity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attack_parity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

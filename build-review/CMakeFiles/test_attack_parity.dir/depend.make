# Empty dependencies file for test_attack_parity.
# This may be replaced when dependencies are built.

# Empty dependencies file for abft.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/abft/agg/aggregator.cpp" "CMakeFiles/abft.dir/src/abft/agg/aggregator.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/agg/aggregator.cpp.o.d"
  "/root/repo/src/abft/agg/average.cpp" "CMakeFiles/abft.dir/src/abft/agg/average.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/agg/average.cpp.o.d"
  "/root/repo/src/abft/agg/batch.cpp" "CMakeFiles/abft.dir/src/abft/agg/batch.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/agg/batch.cpp.o.d"
  "/root/repo/src/abft/agg/bulyan.cpp" "CMakeFiles/abft.dir/src/abft/agg/bulyan.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/agg/bulyan.cpp.o.d"
  "/root/repo/src/abft/agg/cclip.cpp" "CMakeFiles/abft.dir/src/abft/agg/cclip.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/agg/cclip.cpp.o.d"
  "/root/repo/src/abft/agg/cge.cpp" "CMakeFiles/abft.dir/src/abft/agg/cge.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/agg/cge.cpp.o.d"
  "/root/repo/src/abft/agg/cwmed.cpp" "CMakeFiles/abft.dir/src/abft/agg/cwmed.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/agg/cwmed.cpp.o.d"
  "/root/repo/src/abft/agg/cwtm.cpp" "CMakeFiles/abft.dir/src/abft/agg/cwtm.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/agg/cwtm.cpp.o.d"
  "/root/repo/src/abft/agg/geomed.cpp" "CMakeFiles/abft.dir/src/abft/agg/geomed.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/agg/geomed.cpp.o.d"
  "/root/repo/src/abft/agg/krum.cpp" "CMakeFiles/abft.dir/src/abft/agg/krum.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/agg/krum.cpp.o.d"
  "/root/repo/src/abft/agg/normclip.cpp" "CMakeFiles/abft.dir/src/abft/agg/normclip.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/agg/normclip.cpp.o.d"
  "/root/repo/src/abft/agg/rank_kernel.cpp" "CMakeFiles/abft.dir/src/abft/agg/rank_kernel.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/agg/rank_kernel.cpp.o.d"
  "/root/repo/src/abft/agg/registry.cpp" "CMakeFiles/abft.dir/src/abft/agg/registry.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/agg/registry.cpp.o.d"
  "/root/repo/src/abft/agg/threads.cpp" "CMakeFiles/abft.dir/src/abft/agg/threads.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/agg/threads.cpp.o.d"
  "/root/repo/src/abft/attack/adaptive_faults.cpp" "CMakeFiles/abft.dir/src/abft/attack/adaptive_faults.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/attack/adaptive_faults.cpp.o.d"
  "/root/repo/src/abft/attack/fault.cpp" "CMakeFiles/abft.dir/src/abft/attack/fault.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/attack/fault.cpp.o.d"
  "/root/repo/src/abft/attack/simple_faults.cpp" "CMakeFiles/abft.dir/src/abft/attack/simple_faults.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/attack/simple_faults.cpp.o.d"
  "/root/repo/src/abft/core/bounds.cpp" "CMakeFiles/abft.dir/src/abft/core/bounds.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/core/bounds.cpp.o.d"
  "/root/repo/src/abft/core/certify.cpp" "CMakeFiles/abft.dir/src/abft/core/certify.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/core/certify.cpp.o.d"
  "/root/repo/src/abft/core/distance.cpp" "CMakeFiles/abft.dir/src/abft/core/distance.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/core/distance.cpp.o.d"
  "/root/repo/src/abft/core/exhaustive.cpp" "CMakeFiles/abft.dir/src/abft/core/exhaustive.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/core/exhaustive.cpp.o.d"
  "/root/repo/src/abft/core/lowerbound.cpp" "CMakeFiles/abft.dir/src/abft/core/lowerbound.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/core/lowerbound.cpp.o.d"
  "/root/repo/src/abft/core/redundancy.cpp" "CMakeFiles/abft.dir/src/abft/core/redundancy.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/core/redundancy.cpp.o.d"
  "/root/repo/src/abft/core/subset_solver.cpp" "CMakeFiles/abft.dir/src/abft/core/subset_solver.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/core/subset_solver.cpp.o.d"
  "/root/repo/src/abft/engine/axes.cpp" "CMakeFiles/abft.dir/src/abft/engine/axes.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/engine/axes.cpp.o.d"
  "/root/repo/src/abft/engine/round_engine.cpp" "CMakeFiles/abft.dir/src/abft/engine/round_engine.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/engine/round_engine.cpp.o.d"
  "/root/repo/src/abft/learn/dataset.cpp" "CMakeFiles/abft.dir/src/abft/learn/dataset.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/learn/dataset.cpp.o.d"
  "/root/repo/src/abft/learn/dsgd.cpp" "CMakeFiles/abft.dir/src/abft/learn/dsgd.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/learn/dsgd.cpp.o.d"
  "/root/repo/src/abft/learn/mlp.cpp" "CMakeFiles/abft.dir/src/abft/learn/mlp.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/learn/mlp.cpp.o.d"
  "/root/repo/src/abft/learn/model.cpp" "CMakeFiles/abft.dir/src/abft/learn/model.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/learn/model.cpp.o.d"
  "/root/repo/src/abft/learn/softmax.cpp" "CMakeFiles/abft.dir/src/abft/learn/softmax.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/learn/softmax.cpp.o.d"
  "/root/repo/src/abft/linalg/decompose.cpp" "CMakeFiles/abft.dir/src/abft/linalg/decompose.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/linalg/decompose.cpp.o.d"
  "/root/repo/src/abft/linalg/eigen_sym.cpp" "CMakeFiles/abft.dir/src/abft/linalg/eigen_sym.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/linalg/eigen_sym.cpp.o.d"
  "/root/repo/src/abft/linalg/matrix.cpp" "CMakeFiles/abft.dir/src/abft/linalg/matrix.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/linalg/matrix.cpp.o.d"
  "/root/repo/src/abft/linalg/vector.cpp" "CMakeFiles/abft.dir/src/abft/linalg/vector.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/linalg/vector.cpp.o.d"
  "/root/repo/src/abft/opt/box.cpp" "CMakeFiles/abft.dir/src/abft/opt/box.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/opt/box.cpp.o.d"
  "/root/repo/src/abft/opt/cost.cpp" "CMakeFiles/abft.dir/src/abft/opt/cost.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/opt/cost.cpp.o.d"
  "/root/repo/src/abft/opt/quadratic.cpp" "CMakeFiles/abft.dir/src/abft/opt/quadratic.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/opt/quadratic.cpp.o.d"
  "/root/repo/src/abft/opt/schedule.cpp" "CMakeFiles/abft.dir/src/abft/opt/schedule.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/opt/schedule.cpp.o.d"
  "/root/repo/src/abft/opt/solver.cpp" "CMakeFiles/abft.dir/src/abft/opt/solver.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/opt/solver.cpp.o.d"
  "/root/repo/src/abft/p2p/dolev_strong.cpp" "CMakeFiles/abft.dir/src/abft/p2p/dolev_strong.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/p2p/dolev_strong.cpp.o.d"
  "/root/repo/src/abft/p2p/eig.cpp" "CMakeFiles/abft.dir/src/abft/p2p/eig.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/p2p/eig.cpp.o.d"
  "/root/repo/src/abft/p2p/p2p_dgd.cpp" "CMakeFiles/abft.dir/src/abft/p2p/p2p_dgd.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/p2p/p2p_dgd.cpp.o.d"
  "/root/repo/src/abft/regress/generator.cpp" "CMakeFiles/abft.dir/src/abft/regress/generator.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/regress/generator.cpp.o.d"
  "/root/repo/src/abft/regress/problem.cpp" "CMakeFiles/abft.dir/src/abft/regress/problem.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/regress/problem.cpp.o.d"
  "/root/repo/src/abft/scenario/scenario.cpp" "CMakeFiles/abft.dir/src/abft/scenario/scenario.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/scenario/scenario.cpp.o.d"
  "/root/repo/src/abft/sensing/sensor_system.cpp" "CMakeFiles/abft.dir/src/abft/sensing/sensor_system.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/sensing/sensor_system.cpp.o.d"
  "/root/repo/src/abft/sim/agent.cpp" "CMakeFiles/abft.dir/src/abft/sim/agent.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/sim/agent.cpp.o.d"
  "/root/repo/src/abft/sim/analysis.cpp" "CMakeFiles/abft.dir/src/abft/sim/analysis.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/sim/analysis.cpp.o.d"
  "/root/repo/src/abft/sim/dgd.cpp" "CMakeFiles/abft.dir/src/abft/sim/dgd.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/sim/dgd.cpp.o.d"
  "/root/repo/src/abft/sim/network.cpp" "CMakeFiles/abft.dir/src/abft/sim/network.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/sim/network.cpp.o.d"
  "/root/repo/src/abft/sim/trace.cpp" "CMakeFiles/abft.dir/src/abft/sim/trace.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/sim/trace.cpp.o.d"
  "/root/repo/src/abft/util/combinatorics.cpp" "CMakeFiles/abft.dir/src/abft/util/combinatorics.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/util/combinatorics.cpp.o.d"
  "/root/repo/src/abft/util/csv.cpp" "CMakeFiles/abft.dir/src/abft/util/csv.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/util/csv.cpp.o.d"
  "/root/repo/src/abft/util/json.cpp" "CMakeFiles/abft.dir/src/abft/util/json.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/util/json.cpp.o.d"
  "/root/repo/src/abft/util/rng.cpp" "CMakeFiles/abft.dir/src/abft/util/rng.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/util/rng.cpp.o.d"
  "/root/repo/src/abft/util/stats.cpp" "CMakeFiles/abft.dir/src/abft/util/stats.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/util/stats.cpp.o.d"
  "/root/repo/src/abft/util/table.cpp" "CMakeFiles/abft.dir/src/abft/util/table.cpp.o" "gcc" "CMakeFiles/abft.dir/src/abft/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libabft.a"
)

# Empty compiler generated dependencies file for bench_sensing.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_sensing.dir/bench/bench_sensing.cpp.o"
  "CMakeFiles/bench_sensing.dir/bench/bench_sensing.cpp.o.d"
  "bench_sensing"
  "bench_sensing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sensing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

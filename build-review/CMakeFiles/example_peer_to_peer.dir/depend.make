# Empty dependencies file for example_peer_to_peer.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_peer_to_peer.dir/examples/peer_to_peer.cpp.o"
  "CMakeFiles/example_peer_to_peer.dir/examples/peer_to_peer.cpp.o.d"
  "example_peer_to_peer"
  "example_peer_to_peer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_peer_to_peer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

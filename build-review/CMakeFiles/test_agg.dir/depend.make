# Empty dependencies file for test_agg.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_agg.dir/tests/test_agg.cpp.o"
  "CMakeFiles/test_agg.dir/tests/test_agg.cpp.o.d"
  "test_agg"
  "test_agg.pdb"
  "test_agg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_agg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_exhaustive.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_exhaustive.dir/bench/bench_exhaustive.cpp.o"
  "CMakeFiles/bench_exhaustive.dir/bench/bench_exhaustive.cpp.o.d"
  "bench_exhaustive"
  "bench_exhaustive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exhaustive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_theory.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_theory.dir/tests/test_theory.cpp.o"
  "CMakeFiles/test_theory.dir/tests/test_theory.cpp.o.d"
  "test_theory"
  "test_theory.pdb"
  "test_theory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

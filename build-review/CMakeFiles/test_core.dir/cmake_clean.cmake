file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/tests/test_core.cpp.o"
  "CMakeFiles/test_core.dir/tests/test_core.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_sensing.dir/tests/test_sensing.cpp.o"
  "CMakeFiles/test_sensing.dir/tests/test_sensing.cpp.o.d"
  "test_sensing"
  "test_sensing.pdb"
  "test_sensing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sensing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

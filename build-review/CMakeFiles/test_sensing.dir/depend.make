# Empty dependencies file for test_sensing.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_p2p.dir/tests/test_p2p.cpp.o"
  "CMakeFiles/test_p2p.dir/tests/test_p2p.cpp.o.d"
  "test_p2p"
  "test_p2p.pdb"
  "test_p2p[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_p2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

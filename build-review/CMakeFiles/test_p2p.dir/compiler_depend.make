# Empty compiler generated dependencies file for test_p2p.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_attack.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_opt.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_opt.dir/tests/test_opt.cpp.o"
  "CMakeFiles/test_opt.dir/tests/test_opt.cpp.o.d"
  "test_opt"
  "test_opt.pdb"
  "test_opt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

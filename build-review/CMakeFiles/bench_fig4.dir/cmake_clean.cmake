file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4.dir/bench/bench_fig4.cpp.o"
  "CMakeFiles/bench_fig4.dir/bench/bench_fig4.cpp.o.d"
  "bench_fig4"
  "bench_fig4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_agg_fast.
# This may be replaced when dependencies are built.

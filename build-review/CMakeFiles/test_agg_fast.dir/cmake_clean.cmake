file(REMOVE_RECURSE
  "CMakeFiles/test_agg_fast.dir/tests/test_agg_fast.cpp.o"
  "CMakeFiles/test_agg_fast.dir/tests/test_agg_fast.cpp.o.d"
  "test_agg_fast"
  "test_agg_fast.pdb"
  "test_agg_fast[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_agg_fast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_network_edge.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_network_edge.dir/tests/test_network_edge.cpp.o"
  "CMakeFiles/test_network_edge.dir/tests/test_network_edge.cpp.o.d"
  "test_network_edge"
  "test_network_edge.pdb"
  "test_network_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_network_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig2.
# This may be replaced when dependencies are built.

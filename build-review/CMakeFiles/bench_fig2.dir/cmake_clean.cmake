file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2.dir/bench/bench_fig2.cpp.o"
  "CMakeFiles/bench_fig2.dir/bench/bench_fig2.cpp.o.d"
  "bench_fig2"
  "bench_fig2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_threads.
# This may be replaced when dependencies are built.

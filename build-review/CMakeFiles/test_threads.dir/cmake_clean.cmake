file(REMOVE_RECURSE
  "CMakeFiles/test_threads.dir/tests/test_threads.cpp.o"
  "CMakeFiles/test_threads.dir/tests/test_threads.cpp.o.d"
  "test_threads"
  "test_threads.pdb"
  "test_threads[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_agg_micro.dir/bench/bench_agg_micro.cpp.o"
  "CMakeFiles/bench_agg_micro.dir/bench/bench_agg_micro.cpp.o.d"
  "bench_agg_micro"
  "bench_agg_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_agg_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_agg_micro.
# This may be replaced when dependencies are built.

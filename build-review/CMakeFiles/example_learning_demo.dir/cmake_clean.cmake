file(REMOVE_RECURSE
  "CMakeFiles/example_learning_demo.dir/examples/learning_demo.cpp.o"
  "CMakeFiles/example_learning_demo.dir/examples/learning_demo.cpp.o.d"
  "example_learning_demo"
  "example_learning_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_learning_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

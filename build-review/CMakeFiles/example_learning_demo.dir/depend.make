# Empty dependencies file for example_learning_demo.
# This may be replaced when dependencies are built.

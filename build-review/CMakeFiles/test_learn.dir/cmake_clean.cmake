file(REMOVE_RECURSE
  "CMakeFiles/test_learn.dir/tests/test_learn.cpp.o"
  "CMakeFiles/test_learn.dir/tests/test_learn.cpp.o.d"
  "test_learn"
  "test_learn.pdb"
  "test_learn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_learn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

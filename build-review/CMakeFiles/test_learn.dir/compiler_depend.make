# Empty compiler generated dependencies file for test_learn.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_breakdown.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_breakdown.dir/bench/bench_breakdown.cpp.o"
  "CMakeFiles/bench_breakdown.dir/bench/bench_breakdown.cpp.o.d"
  "bench_breakdown"
  "bench_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for example_robust_mean.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_robust_mean.dir/examples/robust_mean.cpp.o"
  "CMakeFiles/example_robust_mean.dir/examples/robust_mean.cpp.o.d"
  "example_robust_mean"
  "example_robust_mean.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_robust_mean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

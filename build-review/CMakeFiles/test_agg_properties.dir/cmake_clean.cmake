file(REMOVE_RECURSE
  "CMakeFiles/test_agg_properties.dir/tests/test_agg_properties.cpp.o"
  "CMakeFiles/test_agg_properties.dir/tests/test_agg_properties.cpp.o.d"
  "test_agg_properties"
  "test_agg_properties.pdb"
  "test_agg_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_agg_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

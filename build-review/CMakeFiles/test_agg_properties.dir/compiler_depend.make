# Empty compiler generated dependencies file for test_agg_properties.
# This may be replaced when dependencies are built.

# Empty dependencies file for abft_run.
# This may be replaced when dependencies are built.

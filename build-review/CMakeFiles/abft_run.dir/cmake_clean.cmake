file(REMOVE_RECURSE
  "CMakeFiles/abft_run.dir/tools/abft_run.cpp.o"
  "CMakeFiles/abft_run.dir/tools/abft_run.cpp.o.d"
  "abft_run"
  "abft_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abft_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

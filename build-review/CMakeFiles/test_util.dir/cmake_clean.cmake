file(REMOVE_RECURSE
  "CMakeFiles/test_util.dir/tests/test_util.cpp.o"
  "CMakeFiles/test_util.dir/tests/test_util.cpp.o.d"
  "test_util"
  "test_util.pdb"
  "test_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_util.
# This may be replaced when dependencies are built.

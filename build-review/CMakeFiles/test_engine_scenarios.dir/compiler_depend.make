# Empty compiler generated dependencies file for test_engine_scenarios.
# This may be replaced when dependencies are built.

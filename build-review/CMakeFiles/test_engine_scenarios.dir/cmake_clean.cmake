file(REMOVE_RECURSE
  "CMakeFiles/test_engine_scenarios.dir/tests/test_engine_scenarios.cpp.o"
  "CMakeFiles/test_engine_scenarios.dir/tests/test_engine_scenarios.cpp.o.d"
  "test_engine_scenarios"
  "test_engine_scenarios.pdb"
  "test_engine_scenarios[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_epsilon_sweep.dir/bench/bench_epsilon_sweep.cpp.o"
  "CMakeFiles/bench_epsilon_sweep.dir/bench/bench_epsilon_sweep.cpp.o.d"
  "bench_epsilon_sweep"
  "bench_epsilon_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_epsilon_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

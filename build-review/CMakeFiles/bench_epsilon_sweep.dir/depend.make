# Empty dependencies file for bench_epsilon_sweep.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_linear_regression.dir/examples/linear_regression.cpp.o"
  "CMakeFiles/example_linear_regression.dir/examples/linear_regression.cpp.o.d"
  "example_linear_regression"
  "example_linear_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_linear_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for example_linear_regression.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3.dir/bench/bench_fig3.cpp.o"
  "CMakeFiles/bench_fig3.dir/bench/bench_fig3.cpp.o.d"
  "bench_fig3"
  "bench_fig3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig3.
# This may be replaced when dependencies are built.

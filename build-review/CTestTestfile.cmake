# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build-review
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/test_agg[1]_include.cmake")
include("/root/repo/build-review/test_agg_fast[1]_include.cmake")
include("/root/repo/build-review/test_agg_properties[1]_include.cmake")
include("/root/repo/build-review/test_attack[1]_include.cmake")
include("/root/repo/build-review/test_attack_parity[1]_include.cmake")
include("/root/repo/build-review/test_core[1]_include.cmake")
include("/root/repo/build-review/test_determinism[1]_include.cmake")
include("/root/repo/build-review/test_engine_scenarios[1]_include.cmake")
include("/root/repo/build-review/test_golden_e2e[1]_include.cmake")
include("/root/repo/build-review/test_integration[1]_include.cmake")
include("/root/repo/build-review/test_learn[1]_include.cmake")
include("/root/repo/build-review/test_linalg[1]_include.cmake")
include("/root/repo/build-review/test_network_edge[1]_include.cmake")
include("/root/repo/build-review/test_opt[1]_include.cmake")
include("/root/repo/build-review/test_p2p[1]_include.cmake")
include("/root/repo/build-review/test_regress[1]_include.cmake")
include("/root/repo/build-review/test_scenario[1]_include.cmake")
include("/root/repo/build-review/test_sensing[1]_include.cmake")
include("/root/repo/build-review/test_sim[1]_include.cmake")
include("/root/repo/build-review/test_theory[1]_include.cmake")
include("/root/repo/build-review/test_threads[1]_include.cmake")
include("/root/repo/build-review/test_util[1]_include.cmake")

// Tests for the distributed state-estimation workload (Section 2.4):
// observability analysis, the 2f-sparse-observability <-> 2f-redundancy
// equivalence, least-squares estimation, sensor corruption, and the
// LeastSquaresCost gradients.
#include <gtest/gtest.h>

#include <numeric>

#include "abft/core/exhaustive.hpp"
#include "abft/core/redundancy.hpp"
#include "abft/opt/cost.hpp"
#include "abft/sensing/sensor_system.hpp"

namespace {

using namespace abft;
using linalg::Matrix;
using linalg::Vector;

sensing::SensorSystem axis_system() {
  // Three sensors, each observing one coordinate of a 2-dimensional state
  // x* = (2, -1); sensor 2 observes the sum.
  std::vector<Matrix> h{Matrix{{1.0, 0.0}}, Matrix{{0.0, 1.0}}, Matrix{{1.0, 1.0}}};
  std::vector<Vector> y{Vector{2.0}, Vector{-1.0}, Vector{1.0}};
  return sensing::SensorSystem(std::move(h), std::move(y));
}

TEST(LeastSquaresCost, ValueAndGradient) {
  const opt::LeastSquaresCost cost(Matrix{{1.0, 0.0}, {0.0, 2.0}}, Vector{1.0, 4.0});
  // Residual at x = (0, 0): ||(1, 4)||^2 = 17.
  EXPECT_DOUBLE_EQ(cost.value(Vector{0.0, 0.0}), 17.0);
  EXPECT_DOUBLE_EQ(cost.value(Vector{1.0, 2.0}), 0.0);
  const Vector x{0.5, -1.0};
  EXPECT_TRUE(linalg::approx_equal(cost.gradient(x), opt::numerical_gradient(cost, x), 1e-5));
  // Lipschitz: 2 * lambda_max(H^T H) = 2 * 4 = 8.
  EXPECT_NEAR(cost.gradient_lipschitz(), 8.0, 1e-9);
}

TEST(SensorSystem, ConstructionAndAccessors) {
  const auto system = axis_system();
  EXPECT_EQ(system.num_sensors(), 3);
  EXPECT_EQ(system.state_dim(), 2);
  EXPECT_EQ(system.measurements(0), Vector{2.0});
  EXPECT_EQ(system.costs().size(), 3u);
  EXPECT_THROW((void)system.measurements(3), std::invalid_argument);
}

TEST(SensorSystem, RejectsInconsistentShapes) {
  EXPECT_THROW(sensing::SensorSystem({Matrix{{1.0, 0.0}}, Matrix{{1.0}}},
                                     {Vector{1.0}, Vector{1.0}}),
               std::invalid_argument);
  EXPECT_THROW(sensing::SensorSystem({Matrix{{1.0, 0.0}}}, {Vector{1.0, 2.0}}),
               std::invalid_argument);
}

TEST(SensorSystem, JointObservability) {
  const auto system = axis_system();
  EXPECT_FALSE(system.jointly_observable({0}));     // one projection: rank 1
  EXPECT_TRUE(system.jointly_observable({0, 1}));   // both axes
  EXPECT_TRUE(system.jointly_observable({0, 2}));   // axis + diagonal
  EXPECT_TRUE(system.jointly_observable({0, 1, 2}));
}

TEST(SensorSystem, SparseObservability) {
  const auto system = axis_system();
  // Removing any one sensor leaves an observable pair: 1-sparse observable.
  EXPECT_TRUE(system.sparse_observable(1));
  // Removing two leaves a single projection: not 2-sparse observable.
  EXPECT_FALSE(system.sparse_observable(2));
  EXPECT_FALSE(system.sparse_observable(3));  // nothing left
}

TEST(SensorSystem, SubsetEstimateRecoversState) {
  const auto system = axis_system();
  EXPECT_TRUE(linalg::approx_equal(system.subset_estimate({0, 1}), Vector{2.0, -1.0}, 1e-10));
  EXPECT_TRUE(
      linalg::approx_equal(system.subset_estimate({0, 1, 2}), Vector{2.0, -1.0}, 1e-10));
}

TEST(SensorSystem, CorruptionOnlyTouchesOneSensor) {
  const auto system = axis_system();
  const auto corrupted = system.with_corrupted_sensor(2, Vector{100.0});
  EXPECT_EQ(corrupted.measurements(2), Vector{100.0});
  EXPECT_EQ(corrupted.measurements(0), system.measurements(0));
  // Estimation from the two honest sensors is unaffected.
  EXPECT_TRUE(
      linalg::approx_equal(corrupted.subset_estimate({0, 1}), Vector{2.0, -1.0}, 1e-10));
  EXPECT_THROW(system.with_corrupted_sensor(0, Vector{1.0, 2.0}), std::invalid_argument);
}

TEST(Generator, ProducesRequestedCertificate) {
  util::Rng rng(17);
  sensing::SensorGeneratorOptions options;
  options.num_sensors = 8;
  options.state_dim = 3;
  options.rows_per_sensor = 1;
  options.noise_stddev = 0.0;
  options.sparse_observability = 4;  // 2f with f = 2
  const auto generated = sensing::random_sensor_system(options, rng);
  EXPECT_TRUE(generated.system.sparse_observable(4));
  EXPECT_FALSE(generated.system.jointly_observable({0}));  // single projection
  // Noiseless: any observable subset recovers x* exactly.
  EXPECT_TRUE(linalg::approx_equal(generated.system.subset_estimate({0, 1, 2, 3}),
                                   generated.true_state, 1e-8));
}

TEST(Generator, NoiseZeroMeansTwoFRedundancyExactly) {
  // The Section-2.4 equivalence: 2f-sparse observability of the noiseless
  // system == (2f, 0)-redundancy of the quadratic costs.
  util::Rng rng(23);
  sensing::SensorGeneratorOptions options;
  options.num_sensors = 8;
  options.state_dim = 2;
  options.noise_stddev = 0.0;
  options.sparse_observability = 4;
  const auto generated = sensing::random_sensor_system(options, rng);
  const sensing::SensorSubsetSolver solver(generated.system);
  EXPECT_NEAR(core::measure_redundancy(solver, 2).epsilon, 0.0, 1e-8);
}

TEST(Generator, NoiseInflatesRedundancy) {
  util::Rng rng(29);
  sensing::SensorGeneratorOptions options;
  options.num_sensors = 8;
  options.state_dim = 2;
  options.noise_stddev = 0.2;
  options.sparse_observability = 4;
  const auto generated = sensing::random_sensor_system(options, rng);
  const sensing::SensorSubsetSolver solver(generated.system);
  EXPECT_GT(core::measure_redundancy(solver, 2).epsilon, 1e-4);
}

TEST(ExhaustiveOnSensors, RecoversStateDespiteCorruptSensors) {
  util::Rng rng(41);
  sensing::SensorGeneratorOptions options;
  options.num_sensors = 9;
  options.state_dim = 3;
  options.noise_stddev = 0.005;
  options.sparse_observability = 4;
  const auto generated = sensing::random_sensor_system(options, rng);

  auto corrupted = generated.system.with_corrupted_sensor(0, Vector{50.0});
  corrupted = corrupted.with_corrupted_sensor(1, Vector{-75.0});
  const sensing::SensorSubsetSolver solver(corrupted);
  const auto result = core::exhaustive_resilient_solve(solver, 2);
  // Output within a small multiple of the noise floor of the true state.
  EXPECT_LT(linalg::distance(result.output, generated.true_state), 0.1);

  // The naive full-stack estimate is dragged far away by the corruption.
  std::vector<int> everyone(9);
  std::iota(everyone.begin(), everyone.end(), 0);
  EXPECT_GT(linalg::distance(corrupted.subset_estimate(everyone), generated.true_state), 1.0);
}

TEST(MultiRowSensors, ObservableAloneWhenRowsSpanState) {
  util::Rng rng(47);
  sensing::SensorGeneratorOptions options;
  options.num_sensors = 4;
  options.state_dim = 2;
  options.rows_per_sensor = 3;  // each sensor alone (generically) observable
  options.noise_stddev = 0.0;
  const auto generated = sensing::random_sensor_system(options, rng);
  EXPECT_TRUE(generated.system.jointly_observable({0}));
}

}  // namespace

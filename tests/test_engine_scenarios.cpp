// Scenario-axis coverage: partial participation, straggler schedules and
// mid-run churn, exercised with fixed seeds on every driver (server-based
// DGD, D-SGD, peer-to-peer DGD).  Each axis test checks the semantics that
// distinguish it from the others:
//   participation — the agent skips the round; never eliminated, the
//                   trajectory changes, and stragglers' rng streams differ
//   straggler     — the message is lost but the agent is NOT eliminated
//                   (step S1 does not apply to late messages)
//   churn         — a permanent departure counted separately from
//                   elimination; a faulty departure shrinks the usable f
// plus thread-count invariance and run-to-run determinism for each.
#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <vector>

#include "abft/agg/registry.hpp"
#include "abft/attack/simple_faults.hpp"
#include "abft/engine/round_engine.hpp"
#include "abft/learn/dataset.hpp"
#include "abft/learn/dsgd.hpp"
#include "abft/learn/softmax.hpp"
#include "abft/opt/quadratic.hpp"
#include "abft/opt/schedule.hpp"
#include "abft/p2p/p2p_dgd.hpp"
#include "abft/regress/problem.hpp"
#include "abft/sim/dgd.hpp"

namespace {

using namespace abft;
using linalg::Vector;

void expect_identical_traces(const sim::Trace& a, const sim::Trace& b, const char* label) {
  ASSERT_EQ(a.estimates.size(), b.estimates.size()) << label;
  EXPECT_EQ(a.eliminated_agents, b.eliminated_agents) << label;
  EXPECT_EQ(a.departed_agents, b.departed_agents) << label;
  for (std::size_t t = 0; t < a.estimates.size(); ++t) {
    ASSERT_EQ(a.estimates[t], b.estimates[t]) << label << ": diverged at iteration " << t;
  }
}

// ------------------------------ RoundPlanner --------------------------------

TEST(RoundPlanner, DefaultAxesAreNoOp) {
  engine::ScenarioAxes axes;
  EXPECT_FALSE(axes.enabled());
  engine::RoundPlanner planner(axes, 5);
  for (int t = 0; t < 3; ++t) {
    planner.begin_round(t);
    EXPECT_TRUE(planner.churned_this_round().empty());
    for (int a = 0; a < 5; ++a) {
      EXPECT_TRUE(planner.participates(a));
      EXPECT_FALSE(planner.straggles(a));
    }
  }
}

TEST(RoundPlanner, ChurnFiresOnceInRoundOrderAndCatchesUp) {
  engine::ScenarioAxes axes;
  axes.churn = {{4, 2}, {1, 0}, {4, 3}};
  EXPECT_TRUE(axes.enabled());
  engine::RoundPlanner planner(axes, 5);
  // A 1-based driver (D-SGD) starts at round 1: the round-1 event fires.
  planner.begin_round(1);
  ASSERT_EQ(planner.churned_this_round().size(), 1u);
  EXPECT_EQ(planner.churned_this_round()[0], 0);
  planner.begin_round(2);
  EXPECT_TRUE(planner.churned_this_round().empty());
  planner.begin_round(5);  // skipped past round 4: both events catch up
  ASSERT_EQ(planner.churned_this_round().size(), 2u);
  EXPECT_EQ(planner.churned_this_round()[0], 2);
  EXPECT_EQ(planner.churned_this_round()[1], 3);
}

TEST(RoundPlanner, RejectsBadAxes) {
  engine::ScenarioAxes zero_participation;
  zero_participation.participation = 0.0;
  EXPECT_THROW(engine::RoundPlanner(zero_participation, 3), std::invalid_argument);
  engine::ScenarioAxes certain_straggle;
  certain_straggle.straggler_probability = 1.0;
  EXPECT_THROW(engine::RoundPlanner(certain_straggle, 3), std::invalid_argument);
  engine::ScenarioAxes bad_agent;
  bad_agent.churn = {{0, 7}};
  EXPECT_THROW(engine::RoundPlanner(bad_agent, 3), std::invalid_argument);
}

// --------------------------- server-based DGD -------------------------------

sim::Trace run_dgd(const engine::ScenarioAxes& axes, int agg_threads,
                   std::vector<opt::SquaredDistanceCost>& costs) {
  static const opt::HarmonicSchedule schedule(0.4);
  std::vector<const opt::CostFunction*> ptrs;
  for (auto& c : costs) ptrs.push_back(&c);
  static const attack::GradientReverseFault fault;
  auto roster = sim::honest_roster(ptrs);
  sim::assign_fault(roster, static_cast<int>(costs.size()) - 1, fault);
  sim::DgdConfig config{Vector{8.0, -8.0}, opt::Box::centered_cube(2, 20.0), &schedule,
                        40,                1,
                        77,                0.0,
                        false,             agg_threads};
  config.axes = axes;
  sim::DgdSimulation simulation(std::move(roster), std::move(config));
  const auto aggregator = agg::make_aggregator("cwtm");
  return simulation.run(*aggregator);
}

std::vector<opt::SquaredDistanceCost> quadratic_costs() {
  std::vector<opt::SquaredDistanceCost> costs;
  for (int i = 0; i < 7; ++i) {
    costs.emplace_back(Vector{1.37 * i - 3.1 + 0.211 * i * i, 0.53 * i - 1.45 - 0.097 * i * i});
  }
  return costs;
}

TEST(DgdScenario, PartialParticipationPerturbsWithoutEliminating) {
  auto costs = quadratic_costs();
  const auto baseline = run_dgd({}, 1, costs);
  engine::ScenarioAxes axes;
  axes.participation = 0.6;
  axes.perturbation_seed = 9001;
  const auto perturbed = run_dgd(axes, 1, costs);
  ASSERT_EQ(perturbed.estimates.size(), baseline.estimates.size());
  EXPECT_EQ(perturbed.eliminated_agents, 0);
  EXPECT_EQ(perturbed.departed_agents, 0);
  EXPECT_NE(perturbed.final_estimate(), baseline.final_estimate());
  // Seeded: repeatable, and bit-identical at every thread count.
  expect_identical_traces(perturbed, run_dgd(axes, 1, costs), "dgd participation repeat");
  expect_identical_traces(perturbed, run_dgd(axes, 4, costs), "dgd participation threads");
}

TEST(DgdScenario, StragglersAreLostButNeverEliminated) {
  auto costs = quadratic_costs();
  const auto baseline = run_dgd({}, 1, costs);
  engine::ScenarioAxes axes;
  axes.straggler_probability = 0.4;
  axes.perturbation_seed = 31337;
  const auto perturbed = run_dgd(axes, 1, costs);
  // A straggled message is late, not missing: step S1 must not fire.
  EXPECT_EQ(perturbed.eliminated_agents, 0);
  ASSERT_EQ(perturbed.estimates.size(), baseline.estimates.size());
  EXPECT_NE(perturbed.final_estimate(), baseline.final_estimate());
  expect_identical_traces(perturbed, run_dgd(axes, 4, costs), "dgd straggler threads");
}

TEST(DgdScenario, ChurnDepartsWithoutElimination) {
  auto costs = quadratic_costs();
  engine::ScenarioAxes axes;
  axes.churn = {{5, 1}, {12, 6}};  // honest agent 1, then the faulty agent
  const auto perturbed = run_dgd(axes, 1, costs);
  EXPECT_EQ(perturbed.departed_agents, 2);
  EXPECT_EQ(perturbed.eliminated_agents, 0);
  const auto baseline = run_dgd({}, 1, costs);
  EXPECT_NE(perturbed.final_estimate(), baseline.final_estimate());
  expect_identical_traces(perturbed, run_dgd(axes, 4, costs), "dgd churn threads");
}

// --------------------------------- D-SGD ------------------------------------

learn::DsgdSeries run_dsgd(const engine::ScenarioAxes& axes, int agg_threads) {
  learn::SyntheticOptions options;
  options.num_classes = 3;
  options.feature_dim = 6;
  options.examples_per_class = 30;
  options.noise_stddev = 0.3;
  util::Rng data_rng(31);
  const auto full = learn::make_synthetic(options, data_rng);
  util::Rng split_rng(32);
  auto split = learn::split_train_test(full, 0.2, split_rng);
  util::Rng shard_rng(33);
  const auto shards = learn::shard(split.train, 8, shard_rng);
  std::vector<learn::AgentFault> faults(8, learn::AgentFault::kHonest);
  faults[0] = learn::AgentFault::kGradientReverse;

  const learn::SoftmaxRegression model(options.feature_dim, options.num_classes);
  learn::DsgdConfig config;
  config.iterations = 30;
  config.batch_size = 8;
  config.step_size = 0.05;
  config.f = 1;
  config.eval_interval = 10;
  config.momentum = 0.5;
  config.seed = 88;
  config.agg_threads = agg_threads;
  config.axes = axes;
  const auto aggregator = agg::make_aggregator("cwtm");
  return learn::run_dsgd(model, Vector(model.param_dim()), shards, faults, split.test,
                         *aggregator, config);
}

TEST(DsgdScenario, PartialParticipationPerturbsDeterministically) {
  const auto baseline = run_dsgd({}, 1);
  engine::ScenarioAxes axes;
  axes.participation = 0.7;
  axes.perturbation_seed = 404;
  const auto perturbed = run_dsgd(axes, 1);
  EXPECT_NE(perturbed.final_params, baseline.final_params);
  const auto repeat = run_dsgd(axes, 1);
  EXPECT_EQ(perturbed.final_params, repeat.final_params);
  EXPECT_EQ(perturbed.train_loss, repeat.train_loss);
  const auto threaded = run_dsgd(axes, 4);
  EXPECT_EQ(perturbed.final_params, threaded.final_params);
}

TEST(DsgdScenario, StragglerAdvancesTheSamplingStreamParticipationDoesNot) {
  // Same coin stream (same perturbation seed and probability), different
  // axis: the excluded-agent sets per round coincide, so any divergence
  // comes from the semantic difference — a straggler still samples its
  // mini-batch and updates its momentum, a non-participant does neither.
  engine::ScenarioAxes participation;
  participation.participation = 0.7;
  participation.perturbation_seed = 777;
  engine::ScenarioAxes straggler;
  straggler.straggler_probability = 0.3;  // = 1 - participation: same coins
  straggler.perturbation_seed = 777;
  const auto out = run_dsgd(participation, 1);
  const auto late = run_dsgd(straggler, 1);
  EXPECT_NE(out.final_params, late.final_params);
  const auto threaded = run_dsgd(straggler, 4);
  EXPECT_EQ(late.final_params, threaded.final_params);
}

TEST(DsgdScenario, ChurnedAgentLeavesTheSeries) {
  engine::ScenarioAxes axes;
  axes.churn = {{10, 3}, {20, 0}};  // honest agent 3, then the faulty agent
  const auto perturbed = run_dsgd(axes, 1);
  EXPECT_EQ(perturbed.departed_agents, 2);
  const auto baseline = run_dsgd({}, 1);
  EXPECT_NE(perturbed.final_params, baseline.final_params);
  const auto threaded = run_dsgd(axes, 4);
  EXPECT_EQ(perturbed.final_params, threaded.final_params);
}

// ----------------------------- peer-to-peer ---------------------------------

p2p::P2pDgdResult run_p2p(const engine::ScenarioAxes& axes, int agg_threads) {
  static const regress::RegressionProblem problem = regress::RegressionProblem::paper_instance();
  static const opt::HarmonicSchedule schedule(1.5);
  auto roster = sim::honest_roster(problem.costs());
  static const attack::GradientReverseFault fault;
  sim::assign_fault(roster, 0, fault);
  p2p::P2pDgdConfig config{Vector{0.0, 0.0}, opt::Box::centered_cube(2, 1000.0), &schedule,
                           30,  1,           5,
                           agg_threads};
  config.axes = axes;
  const auto aggregator = agg::make_aggregator("cwtm");
  return p2p::run_p2p_dgd(roster, config, *aggregator);
}

TEST(P2pScenario, StragglingSourcePreservesHonestAgreement) {
  engine::ScenarioAxes axes;
  axes.straggler_probability = 0.3;
  axes.perturbation_seed = 5150;
  const auto result = run_p2p(axes, 1);
  // A straggled broadcast misses the round for EVERY receiver, so all honest
  // nodes still filter the same multiset and remain in lockstep.
  ASSERT_GE(result.traces.size(), 2u);
  for (std::size_t k = 1; k < result.traces.size(); ++k) {
    expect_identical_traces(result.traces[0], result.traces[k], "p2p straggler agreement");
  }
  EXPECT_EQ(result.eliminated_agents, 0);
  const auto baseline = run_p2p({}, 1);
  EXPECT_NE(result.traces[0].final_estimate(), baseline.traces[0].final_estimate());
  const auto threaded = run_p2p(axes, 4);
  for (std::size_t k = 0; k < result.traces.size(); ++k) {
    expect_identical_traces(result.traces[k], threaded.traces[k], "p2p straggler threads");
  }
}

TEST(P2pScenario, PartialParticipationBreaksLockstepDeterministically) {
  engine::ScenarioAxes axes;
  axes.participation = 0.75;
  axes.perturbation_seed = 62;
  const auto result = run_p2p(axes, 1);
  // Trace lengths stay uniform (a sitting-out node holds position and still
  // records), but the estimates drift apart across nodes by design.
  const auto baseline = run_p2p({}, 1);
  for (const auto& trace : result.traces) {
    EXPECT_EQ(trace.estimates.size(), baseline.traces[0].estimates.size());
  }
  bool diverged = false;
  for (std::size_t k = 1; k < result.traces.size() && !diverged; ++k) {
    diverged = !(result.traces[0].final_estimate() == result.traces[k].final_estimate());
  }
  EXPECT_TRUE(diverged) << "partial participation should desynchronize honest nodes";
  const auto threaded = run_p2p(axes, 4);
  for (std::size_t k = 0; k < result.traces.size(); ++k) {
    expect_identical_traces(result.traces[k], threaded.traces[k], "p2p participation threads");
  }
}

TEST(P2pScenario, StragglingFaultySourceStillAdvancesItsRngStream) {
  // Straggler semantics are identical across drivers: the message is late,
  // not unsent, so a stochastic fault keeps drawing from its stream.  With
  // the same perturbation coins, a straggler run and a participation run
  // must therefore diverge (under participation the absent fault never
  // draws), and the straggler run stays thread-count invariant.
  static const regress::RegressionProblem problem = regress::RegressionProblem::paper_instance();
  static const opt::HarmonicSchedule schedule(1.5);
  static const attack::RandomGaussianFault random_fault(80.0);
  auto make = [&](const engine::ScenarioAxes& axes, int threads) {
    auto roster = sim::honest_roster(problem.costs());
    sim::assign_fault(roster, 0, random_fault);
    p2p::P2pDgdConfig config{Vector{0.0, 0.0}, opt::Box::centered_cube(2, 1000.0), &schedule,
                             25,  1,           5,
                             threads};
    config.axes = axes;
    const auto aggregator = agg::make_aggregator("cwtm");
    return p2p::run_p2p_dgd(roster, config, *aggregator);
  };
  engine::ScenarioAxes straggler;
  straggler.straggler_probability = 0.3;
  straggler.perturbation_seed = 21;
  engine::ScenarioAxes participation;
  participation.participation = 0.7;  // = 1 - straggler_probability: same coins
  participation.perturbation_seed = 21;
  const auto late = make(straggler, 1);
  const auto out = make(participation, 1);
  EXPECT_NE(late.traces[0].final_estimate(), out.traces[0].final_estimate());
  const auto threaded = make(straggler, 4);
  for (std::size_t k = 0; k < late.traces.size(); ++k) {
    expect_identical_traces(late.traces[k], threaded.traces[k], "p2p faulty straggler threads");
  }
}

TEST(P2pScenario, ChurnedHonestNodeFreezesItsTrace) {
  engine::ScenarioAxes axes;
  axes.churn = {{10, 3}};  // roster node 3 is honest (fault sits on node 0)
  const auto result = run_p2p(axes, 1);
  EXPECT_EQ(result.departed_agents, 1);
  const auto baseline = run_p2p({}, 1);
  // honest_nodes = {1, 2, 3, 4, 5}; slot of roster node 3 is 2.
  ASSERT_EQ(result.honest_nodes, baseline.honest_nodes);
  for (std::size_t k = 0; k < result.traces.size(); ++k) {
    const std::size_t expected =
        result.honest_nodes[k] == 3 ? 11u : baseline.traces[k].estimates.size();
    EXPECT_EQ(result.traces[k].estimates.size(), expected) << "slot " << k;
  }
  const auto threaded = run_p2p(axes, 4);
  for (std::size_t k = 0; k < result.traces.size(); ++k) {
    expect_identical_traces(result.traces[k], threaded.traces[k], "p2p churn threads");
  }
}

// -------------------- deliver / straggler / silent interplay ----------------

TEST(EngineDeliver, StragglingByzantineIsLostNotEliminated) {
  // A Byzantine agent that stays silent is eliminated by step S1 the moment
  // its (empty) message reaches the round close — but a round in which it
  // STRAGGLES never reaches the close, so it must be lost-not-eliminated,
  // however suspicious the silence.  Seeded straggler schedule; transport
  // rejects empty messages like the sync network does.
  engine::RoundEngineConfig config;
  config.seed = 17;
  config.axes.straggler_probability = 0.9;
  config.axes.perturbation_seed = 9;
  engine::RoundEngine eng({0, 0, 0, 1}, 2, config);
  eng.reset(1);
  int straggle_rounds = 0;
  for (int t = 0; t < 100 && eng.eliminated_count() == 0; ++t) {
    eng.begin_round(t);
    eng.emit_honest([](int agent, std::span<double> row) {
      row[0] = agent;
      row[1] = -agent;
    });
    eng.emit_faulty([](int, std::span<double>, const attack::HonestRowsView&) {
      return false;  // silent every round
    });
    const bool straggled = eng.straggles(3);
    eng.deliver([](int, std::span<const double> message, std::span<double> dst) {
      if (message.empty()) return false;  // step S1: silence at the close
      std::copy(message.begin(), message.end(), dst.begin());
      return true;
    });
    if (straggled) {
      ++straggle_rounds;
      EXPECT_EQ(eng.eliminated_count(), 0) << "straggled round " << t;
      EXPECT_TRUE(eng.is_member(3)) << "straggled round " << t;
    }
  }
  // The seed produces both regimes: straggled rounds left the agent alone,
  // and the first non-straggled round eliminated it.
  EXPECT_GT(straggle_rounds, 0);
  EXPECT_EQ(eng.eliminated_count(), 1);
  EXPECT_FALSE(eng.is_member(3));
}

TEST(EngineDeliver, SilentMarkDoesNotLeakIntoEmitPresentRounds) {
  // Round 0 uses the honest/faulty split and the Byzantine agent stays
  // silent: the transport must see its empty span.  Round 1 uses
  // emit_present (the dsgd produce path, which never touches the silent
  // mask): begin_round must have cleared the mark, or agent 1's round-1 row
  // would be delivered as silence.
  engine::RoundEngineConfig config;
  config.seed = 5;
  engine::RoundEngine eng({0, 1, 0}, 2, config);
  eng.reset(1);
  std::vector<int> silent_agents;
  const auto transport = [&silent_agents](int agent, std::span<const double> message,
                                          std::span<double> dst) {
    if (message.empty()) {
      silent_agents.push_back(agent);
      std::fill(dst.begin(), dst.end(), 0.0);
    } else {
      std::copy(message.begin(), message.end(), dst.begin());
    }
    return true;  // tolerate silence so the roster survives into round 1
  };
  eng.begin_round(0);
  eng.emit_honest([](int agent, std::span<double> row) { row[0] = row[1] = agent; });
  eng.emit_faulty([](int, std::span<double>, const attack::HonestRowsView&) { return false; });
  EXPECT_EQ(eng.deliver(transport), 3);
  EXPECT_EQ(silent_agents, std::vector<int>{1});

  silent_agents.clear();
  eng.begin_round(1);
  eng.emit_present([](int agent, std::span<double> row) { row[0] = row[1] = 10.0 + agent; });
  EXPECT_EQ(eng.deliver(transport), 3);
  EXPECT_TRUE(silent_agents.empty()) << "round-0 silent mark leaked into round 1";
  for (int row = 0; row < 3; ++row) {
    EXPECT_EQ(eng.ingest().row(row)[0], 10.0 + row) << "row " << row;
  }
}

}  // namespace

// Sharded hierarchical aggregation (agg/hierarchy.hpp): S = 1 bit-parity
// with flat rules, bit-determinism across thread counts and repeated calls,
// the per-level (n_s, f_s) fault bookkeeping, and the headline robustness
// property — a fault burst packed into one shard is masked whenever the
// per-shard budget f_leaf is respected.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "abft/agg/batch.hpp"
#include "abft/agg/hierarchy.hpp"
#include "abft/agg/registry.hpp"
#include "abft/agg/threads.hpp"
#include "abft/engine/round_engine.hpp"
#include "abft/util/rng.hpp"

namespace {

using namespace abft;
using agg::GradientBatch;
using agg::HierarchicalAggregator;
using agg::HierarchyConfig;
using agg::Vector;

GradientBatch random_batch(int n, int d, std::uint64_t seed) {
  util::Rng rng(seed);
  GradientBatch batch(n, d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) batch.row(i)[j] = rng.normal(0.0, 1.0);
  }
  return batch;
}

Vector aggregate_batched(const agg::GradientAggregator& rule, const GradientBatch& batch,
                         int f, int threads = 1, agg::ThreadPool* pool = nullptr) {
  agg::AggregatorWorkspace ws;
  ws.parallel_threads = threads;
  ws.pool = pool;
  Vector out;
  rule.aggregate_into(out, batch, f, ws);
  return out;
}

TEST(Hierarchy, LabelIsStable) {
  EXPECT_EQ(agg::hierarchy_label({16, "krum", "cwtm", -1, 0}), "hier-16-krum-cwtm");
  EXPECT_EQ(agg::hierarchy_label({4, "cwtm", "cwmed", 2, 0}), "hier-4-cwtm-cwmed-fl2");
}

TEST(Hierarchy, ConstructorRejectsBadConfig) {
  EXPECT_THROW(HierarchicalAggregator({0, "cwtm", "cwtm", -1, 0}), std::invalid_argument);
  EXPECT_THROW(HierarchicalAggregator({4, "nope", "cwtm", -1, 0}), std::invalid_argument);
  EXPECT_THROW(HierarchicalAggregator({4, "cwtm", "nope", -1, 0}), std::invalid_argument);
  EXPECT_THROW(HierarchicalAggregator({4, "cwtm", "cwtm", -2, 0}), std::invalid_argument);
}

// An S = 1 tree must delegate to the leaf rule outright: bit-identical to
// flat aggregation for every registry rule, batched and span API alike.
TEST(Hierarchy, SingleShardBitIdenticalToFlatForEveryRule) {
  const int n = 23, d = 7, f = 3;  // n >= 4f + 3, so even bulyan can run
  const auto batch = random_batch(n, d, 42);
  std::vector<Vector> grads;
  grads.reserve(n);
  for (int i = 0; i < n; ++i) grads.push_back(batch.unpack_row(i));
  for (const auto name : agg::aggregator_names()) {
    SCOPED_TRACE(std::string(name));
    const auto flat = agg::make_aggregator(name);
    const HierarchicalAggregator hier({1, std::string(name), "cwtm", -1, 0});
    const auto flat_batched = aggregate_batched(*flat, batch, f);
    EXPECT_EQ(aggregate_batched(hier, batch, f), flat_batched);
    // The span API packs into a batch, so it matches the flat batched path
    // (some flat rules' own span overloads sum in a different order).
    EXPECT_EQ(hier.aggregate(grads, f), flat_batched);
  }
}

// Shards never exceed the row count: a 4-row batch through a 16-shard tree
// degrades to single-row shards.  Single-row cwtm leaves are the identity
// (f_leaf clamps to 0), so the root then runs the flat rule over the
// original rows with f_root = f — bit-identical to flat aggregation.
TEST(Hierarchy, ShardCountClampsToRowCount) {
  const auto batch = random_batch(4, 3, 7);
  const HierarchicalAggregator hier({16, "cwtm", "cwtm", -1, 0});
  const auto flat = agg::make_aggregator("cwtm");
  EXPECT_EQ(aggregate_batched(hier, batch, 1), aggregate_batched(*flat, batch, 1));
  const auto b = hier.bounds(4, 1);
  EXPECT_EQ(b.shards, 4);
  EXPECT_EQ(b.shard_rows_min, 1);
  EXPECT_EQ(b.shard_rows_max, 1);
  EXPECT_EQ(b.f_leaf, 0);
  EXPECT_EQ(b.f_root, 1);
}

TEST(Hierarchy, BitIdenticalAcrossThreadCountsAndRepeatedCalls) {
  const auto batch = random_batch(96, 16, 9);
  const HierarchicalAggregator hier({8, "krum", "cwtm", -1, 77});
  const auto serial = aggregate_batched(hier, batch, 5);
  agg::ThreadPool pool(4);
  EXPECT_EQ(aggregate_batched(hier, batch, 5, 4, &pool), serial);
  EXPECT_EQ(aggregate_batched(hier, batch, 5, 3, &pool), serial);
  EXPECT_EQ(aggregate_batched(hier, batch, 5, 64, &pool), serial);
  // Workspace reuse across calls must not leak state between rounds.
  agg::AggregatorWorkspace ws;
  ws.parallel_threads = 4;
  ws.pool = &pool;
  Vector out;
  hier.aggregate_into(out, batch, 5, ws);
  hier.aggregate_into(out, batch, 5, ws);
  EXPECT_EQ(out, serial);
}

TEST(Hierarchy, AssignmentSeedIsDeterministicAndZeroIsIdentity) {
  const auto batch = random_batch(60, 4, 3);
  const HierarchicalAggregator seeded_a({6, "krum", "cwtm", -1, 123});
  const HierarchicalAggregator seeded_b({6, "krum", "cwtm", -1, 123});
  const HierarchicalAggregator other_seed({6, "krum", "cwtm", -1, 124});
  const HierarchicalAggregator identity({6, "krum", "cwtm", -1, 0});
  const auto a = aggregate_batched(seeded_a, batch, 3);
  EXPECT_EQ(a, aggregate_batched(seeded_b, batch, 3));
  // Krum picks one received vector per shard, so a different partition of a
  // generic random batch almost surely selects different vectors.
  EXPECT_NE(a, aggregate_batched(other_seed, batch, 3));
  EXPECT_NE(a, aggregate_batched(identity, batch, 3));
}

// The per-level bookkeeping: explicit f_leaf, derived f_root, and the
// composed bound (f_leaf + 1)(f_root + 1) - 1.
TEST(Hierarchy, BoundsComposePerLevelBudgets) {
  const HierarchicalAggregator hier({8, "cwtm", "cwtm", 2, 0});
  const auto b = hier.bounds(80, 9);
  EXPECT_EQ(b.n, 80);
  EXPECT_EQ(b.shards, 8);
  EXPECT_EQ(b.shard_rows_min, 10);
  EXPECT_EQ(b.shard_rows_max, 10);
  EXPECT_EQ(b.f_leaf, 2);
  // floor(9 / (2 + 1)) = 3 corrupted shard outputs, within cwtm(8)'s cap.
  EXPECT_EQ(b.f_root, 3);
  EXPECT_EQ(b.tolerated_f, (2 + 1) * (3 + 1) - 1);
  EXPECT_DOUBLE_EQ(b.resilience_margin, 2.0 * 11 / 80);
  EXPECT_EQ(hier.max_usable_f(80), 11);
}

TEST(Hierarchy, BoundsDeriveLeafBudgetWhenUnset) {
  const HierarchicalAggregator hier({8, "cwtm", "cwtm", -1, 0});
  const auto b = hier.bounds(80, 9);
  // Leaf cap on 10-row shards is (10 - 1) / 2 = 4; f = 9 clamps down to it.
  EXPECT_EQ(b.f_leaf, 4);
  EXPECT_EQ(b.f_root, 1);  // floor(9 / 5)
  EXPECT_EQ(b.tolerated_f, (4 + 1) * (1 + 1) - 1);
  // Uneven split: 23 rows over 8 shards -> 2- and 3-row shards.
  const auto uneven = hier.bounds(23, 1);
  EXPECT_EQ(uneven.shard_rows_min, 2);
  EXPECT_EQ(uneven.shard_rows_max, 3);
}

// Shards too small for the leaf rule make the tree unusable: max_usable_f
// reports -1 (engines hold position) and aggregate_into refuses to run.
TEST(Hierarchy, UnusableShardShapeIsReportedAndRejected) {
  const HierarchicalAggregator hier({16, "krum", "cwtm", -1, 0});
  EXPECT_EQ(hier.max_usable_f(32), -1);  // 2-row shards can't run krum
  EXPECT_EQ(hier.bounds(32, 1).tolerated_f, -1);
  const auto batch = random_batch(32, 3, 11);
  agg::AggregatorWorkspace ws;
  Vector out;
  EXPECT_THROW(hier.aggregate_into(out, batch, 1, ws), std::invalid_argument);
  // The same tree over enough rows is usable again.
  EXPECT_GT(hier.max_usable_f(160), 0);
}

// The headline property: a burst of up to f_leaf faults packed into ONE
// shard is masked — the output stays near the honest center even though the
// corrupt values are enormous.  With the identity assignment, shard 0 is
// rows [0, n/S), so the burst below lands entirely inside it.
TEST(Hierarchy, FaultBurstInsideOneShardIsMasked) {
  const int n = 60, d = 5, shards = 6, f_leaf = 3;
  const HierarchicalAggregator hier({shards, "cwtm", "cwtm", f_leaf, 0});
  for (std::uint64_t trial = 0; trial < 20; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    util::Rng rng(1000 + trial);
    Vector center(d);
    for (int j = 0; j < d; ++j) center[j] = rng.uniform(-5.0, 5.0);
    GradientBatch batch(n, d);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < d; ++j) batch.row(i)[j] = center[j] + rng.normal(0.0, 0.1);
    }
    const int burst = 1 + static_cast<int>(trial % f_leaf);  // 1..f_leaf rows
    const double sign = (trial % 2 == 0) ? 1.0 : -1.0;
    for (int i = 0; i < burst; ++i) {
      for (int j = 0; j < d; ++j) batch.row(i)[j] = sign * 1e6;
    }
    const auto b = hier.bounds(n, burst);
    ASSERT_GE(b.tolerated_f, burst);
    const auto out = aggregate_batched(hier, batch, burst);
    for (int j = 0; j < d; ++j) {
      EXPECT_NEAR(out[j], center[j], 0.5) << "coordinate " << j;
    }
  }
}

// Regression: the S = 1 flat delegation must execute the clamped budget
// bounds() reports, not raw f.  With a bulyan leaf and an engine-approved
// f = 0 the raw path threw mid-run ("relaxed krum scores need at least two
// gradients"); the clamped path runs bulyan at its floor f_leaf = 1.
TEST(Hierarchy, FlatDelegationExecutesTheClampedBudget) {
  const int n = 11, d = 4;
  const auto batch = random_batch(n, d, 7);
  const HierarchicalAggregator hier({1, "bulyan", "cwtm", -1, 0});
  EXPECT_EQ(hier.min_usable_f(), 0);  // any declared f >= 0 is absorbable
  const auto b = hier.bounds(n, 0);
  EXPECT_EQ(b.f_leaf, 1);
  EXPECT_EQ(b.tolerated_f, 1);
  const auto flat = agg::make_aggregator("bulyan");
  Vector out;
  ASSERT_NO_THROW(out = aggregate_batched(hier, batch, 0));
  EXPECT_EQ(out, aggregate_batched(*flat, batch, 1));
}

// Regression: an explicit f_leaf config was silently ignored at S = 1 —
// max_usable_f, bounds() and the executed budget must all honour it.
TEST(Hierarchy, FlatExplicitFLeafPinsTheExecutedBudget) {
  const int n = 10, d = 4;
  const auto batch = random_batch(n, d, 13);
  const HierarchicalAggregator hier({1, "cwtm", "cwtm", 2, 0});
  EXPECT_EQ(hier.max_usable_f(n), 2);  // pinned, not cwtm's (n-1)/2 = 4
  EXPECT_EQ(hier.bounds(n, 1).f_leaf, 2);
  const auto flat = agg::make_aggregator("cwtm");
  EXPECT_EQ(aggregate_batched(hier, batch, 1), aggregate_batched(*flat, batch, 2));
  // Declaring more faults than the pinned budget tolerates fails loudly,
  // exactly like the tree path's tolerated-bound check.
  EXPECT_THROW(aggregate_batched(hier, batch, 3), std::invalid_argument);
}

// Regression (thin rounds): whenever usable_fault_bound approves a budget
// for a validly-configured tree, aggregate_into must run without throwing —
// the delegation decision and the usable-f caps agree on the delivered row
// count, including the num_shards = min(shards, n) <= 1 boundary.
TEST(Hierarchy, EngineApprovedBudgetNeverThrowsOnThinRounds) {
  for (const auto name : agg::aggregator_names()) {
    SCOPED_TRACE(std::string(name));
    for (int shards : {1, 2, 4}) {
      const HierarchicalAggregator hier({shards, std::string(name), "cwtm", -1, 0});
      for (int roster = 1; roster <= 14; ++roster) {
        const int max_f = hier.max_usable_f(roster);
        for (int declared_f = 0; declared_f <= std::min(max_f, roster - 1); ++declared_f) {
          for (int kept = 1; kept <= roster; ++kept) {
            const int usable = engine::usable_fault_bound(hier, declared_f, declared_f, kept,
                                                          roster, roster);
            if (usable < 0) continue;  // hold position — nothing to check
            const auto batch = random_batch(kept, 3, 1000u * roster + kept);
            ASSERT_NO_THROW(aggregate_batched(hier, batch, usable))
                << "shards=" << shards << " roster=" << roster << " f=" << declared_f
                << " kept=" << kept << " usable=" << usable;
          }
        }
      }
    }
  }
}

// A thin round that shrinks the smallest shard below the leaf's own minimum
// roster must hold position (usable_fault_bound returns -1), never run.
TEST(Hierarchy, ThinRoundHoldsWhenLeavesCannotRun) {
  const HierarchicalAggregator hier({4, "bulyan", "cwtm", -1, 0});
  const int roster = 28;           // rows_min = 7: bulyan cap 1, tree max 3
  EXPECT_EQ(hier.max_usable_f(roster), 3);
  EXPECT_EQ(engine::usable_fault_bound(hier, 3, 3, roster, roster, roster), 3);
  // kept = 10: rows_min = 2 < bulyan's minimum roster, so the tree reports
  // unusable and the engine holds instead of letting a leaf throw mid-run.
  EXPECT_EQ(hier.max_usable_f(10), -1);
  EXPECT_EQ(engine::usable_fault_bound(hier, 3, 3, 10, roster, roster), -1);
  // kept = 1 degrades to the flat delegation, which cannot run bulyan either.
  EXPECT_EQ(engine::usable_fault_bound(hier, 3, 3, 1, roster, roster), -1);
}

// Honest data: the tree's output stays close to the flat rule's (both
// approximate the mean), quantifying the accuracy cost of sharding.
TEST(Hierarchy, HonestDriftAgainstFlatIsSmall) {
  const int n = 120, d = 6, f = 6;
  const auto batch = random_batch(n, d, 21);
  const auto flat = agg::make_aggregator("cwtm");
  const HierarchicalAggregator hier({12, "cwtm", "cwtm", -1, 5});
  const auto a = aggregate_batched(*flat, batch, f);
  const auto b = aggregate_batched(hier, batch, f);
  for (int j = 0; j < d; ++j) EXPECT_NEAR(a[j], b[j], 0.2) << "coordinate " << j;
}

}  // namespace

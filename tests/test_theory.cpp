// The paper's theorems as executable properties, parameterized over problem
// families: Lemma 3 (vector geometry), Lemma 4 (gradient bounds under
// (2f, eps)-redundancy), Appendix C (gamma <= mu), Theorem 3 (generic DGD
// convergence under the phi_t condition), Theorems 4/5 (CGE resilience) and
// Theorem 6 (CWTM with lambda = 0), and Lemma 1 / Theorem 1 feasibility.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "abft/agg/cge.hpp"
#include "abft/agg/cwtm.hpp"
#include "abft/attack/adaptive_faults.hpp"
#include "abft/attack/simple_faults.hpp"
#include "abft/core/bounds.hpp"
#include "abft/core/lowerbound.hpp"
#include "abft/core/redundancy.hpp"
#include "abft/opt/quadratic.hpp"
#include "abft/regress/generator.hpp"
#include "abft/regress/problem.hpp"
#include "abft/sim/dgd.hpp"
#include "abft/util/combinatorics.hpp"

namespace {

using namespace abft;
using linalg::Vector;

// --------------------------- Lemma 3 ---------------------------------------

struct Lemma3Param {
  int p;  // number of vectors
  int q;  // subset size (q <= p/2)
  int d;  // dimension
};

class Lemma3Test : public ::testing::TestWithParam<Lemma3Param> {};

TEST_P(Lemma3Test, SubsetSumBoundImpliesIndividualBound) {
  const auto [p, q, d] = GetParam();
  util::Rng rng(1000 + static_cast<std::uint64_t>(p * 100 + q * 10 + d));
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Vector> vectors;
    for (int i = 0; i < p; ++i) {
      Vector v(d);
      for (int k = 0; k < d; ++k) v[k] = rng.normal();
      vectors.push_back(std::move(v));
    }
    // r = max over q-subsets of ||sum||; Lemma 3 then bounds each vector.
    double r = 0.0;
    util::for_each_combination(p, q, [&](const std::vector<int>& subset) {
      Vector sum(d);
      for (int i : subset) sum += vectors[static_cast<std::size_t>(i)];
      r = std::max(r, sum.norm());
      return true;
    });
    for (const auto& v : vectors) {
      EXPECT_LE(v.norm(), 2.0 * r + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, Lemma3Test,
                         ::testing::Values(Lemma3Param{4, 2, 1}, Lemma3Param{4, 2, 3},
                                           Lemma3Param{6, 2, 2}, Lemma3Param{6, 3, 2},
                                           Lemma3Param{8, 4, 5}, Lemma3Param{5, 1, 4}),
                         [](const auto& info) {
                           return "p" + std::to_string(info.param.p) + "_q" +
                                  std::to_string(info.param.q) + "_d" +
                                  std::to_string(info.param.d);
                         });

// --------------------------- Lemma 4 ---------------------------------------

TEST(Lemma4, GradientBoundsAtHonestMinimizer) {
  // On regression instances with f <= n/3: at x_H every f-subset gradient
  // sum is bounded by (n - 2f) mu eps, every single gradient by twice that.
  for (const std::uint64_t seed : {11u, 22u, 33u, 44u}) {
    util::Rng rng(seed);
    regress::GeneratorOptions options;
    options.num_agents = 6;
    options.dim = 2;
    options.noise_stddev = 0.1;
    options.rank_check_subset_size = 4;
    const auto problem = regress::random_problem(options, rng);
    const int n = 6;
    const int f = 1;

    const regress::RegressionSubsetSolver solver(problem);
    const double eps = core::measure_redundancy(solver, f).epsilon;
    const double mu = problem.mu();
    const auto bounds = core::lemma4_bounds(n, f, mu, eps);

    std::vector<int> honest(static_cast<std::size_t>(n - f));
    std::iota(honest.begin(), honest.end(), 0);
    const Vector x_h = problem.subset_minimizer(honest);

    for (int j : honest) {
      const double g_norm = problem.cost(j).gradient(x_h).norm();
      EXPECT_LE(g_norm, bounds.subset_sum_bound + 1e-9)  // |T| = f = 1 here
          << "seed " << seed << " agent " << j;
      EXPECT_LE(g_norm, bounds.single_bound + 1e-9);
    }
  }
}

TEST(Lemma4, SubsetSumBoundWithLargerF) {
  util::Rng rng(77);
  regress::GeneratorOptions options;
  options.num_agents = 9;  // f = 2 <= n/3
  options.dim = 2;
  options.noise_stddev = 0.05;
  options.rank_check_subset_size = 5;
  const auto problem = regress::random_problem(options, rng);
  const int n = 9;
  const int f = 2;
  const regress::RegressionSubsetSolver solver(problem);
  const double eps = core::measure_redundancy(solver, f).epsilon;
  const auto bounds = core::lemma4_bounds(n, f, problem.mu(), eps);

  std::vector<int> honest(static_cast<std::size_t>(n - f));
  std::iota(honest.begin(), honest.end(), 0);
  const Vector x_h = problem.subset_minimizer(honest);
  // Every f-subset T of H.
  util::for_each_combination(n - f, f, [&](const std::vector<int>& positions) {
    Vector sum(2);
    for (int p : positions) sum += problem.cost(honest[static_cast<std::size_t>(p)]).gradient(x_h);
    EXPECT_LE(sum.norm(), bounds.subset_sum_bound + 1e-9);
    return true;
  });
}

// --------------------------- Appendix C ------------------------------------

TEST(AppendixC, GammaNeverExceedsMuOnRandomEnsembles) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    util::Rng rng(3000 + seed);
    regress::GeneratorOptions options;
    options.num_agents = 5 + static_cast<int>(seed % 4);
    options.dim = 2;
    options.noise_stddev = 0.2;
    const auto problem = regress::random_problem(options, rng);
    EXPECT_LE(problem.gamma(), problem.mu() + 1e-9) << "seed " << seed;
  }
}

// --------------------------- Theorem 3 -------------------------------------

TEST(Theorem3, ConvergesToBallUnderPhiCondition) {
  // Synthetic filter: grad Q(x) = 2x (gamma = 2) plus a worst-case bounded
  // perturbation of magnitude B pushing away from x* = 0.  phi_t =
  // 2||x||^2 - B||x|| > 0 whenever ||x|| > B/2, so Theorem 3 promises
  // lim ||x_t|| <= B/2 (+ delta).  The perturbation direction flips
  // adversarially each round.
  const double b_mag = 0.5;
  const opt::SquaredDistanceCost cost(Vector{0.0, 0.0});
  const auto costs = std::vector<const opt::CostFunction*>{&cost};
  auto roster = sim::honest_roster(costs);
  const opt::HarmonicSchedule schedule(0.8);
  sim::DgdConfig config{Vector{8.0, -6.0}, opt::Box::centered_cube(2, 10.0), &schedule, 4000, 0,
                        5};
  sim::DgdSimulation simulation(std::move(roster), std::move(config));
  simulation.set_honest_gradient_fn([b_mag](int, const Vector& x, int round) {
    Vector grad = 2.0 * x;
    const double norm = x.norm();
    Vector unit = norm > 1e-12 ? x / norm : Vector{1.0, 0.0};
    // Alternate between pushing outward and sideways: adversarial but
    // bounded by b_mag.
    if (round % 2 == 0) {
      grad.add_scaled(-b_mag, unit);
    } else {
      grad.add_scaled(b_mag, Vector{-unit[1], unit[0]});
    }
    return grad;
  });
  const agg::CgeAggregator cge;  // f = 0: passes the single gradient through
  const auto trace = simulation.run(cge);
  EXPECT_LE(trace.final_estimate().norm(), b_mag / 2.0 + 0.05);
}

TEST(Theorem3, FaultFreeDgdDrivesErrorToZero) {
  // With no perturbation (B = 0) the same setup must converge to x*.
  const opt::SquaredDistanceCost cost(Vector{1.0, 1.0});
  const auto costs = std::vector<const opt::CostFunction*>{&cost};
  const opt::HarmonicSchedule schedule(0.8);
  sim::DgdConfig config{Vector{9.0, -9.0}, opt::Box::centered_cube(2, 10.0), &schedule, 3000, 0,
                        5};
  sim::DgdSimulation simulation(sim::honest_roster(costs), std::move(config));
  const agg::CgeAggregator cge;
  EXPECT_LT(linalg::distance(simulation.run(cge).final_estimate(), Vector{1.0, 1.0}), 1e-3);
}

// --------------------------- Theorems 4/5 (CGE) ----------------------------

struct CgeParam {
  int n;
  int f;
  double noise;
  const char* label;
};

class CgeResilienceTest : public ::testing::TestWithParam<CgeParam> {};

TEST_P(CgeResilienceTest, FinalErrorWithinTheoremBound) {
  const auto param = GetParam();
  util::Rng rng(9000 + static_cast<std::uint64_t>(param.n * 10 + param.f));
  regress::GeneratorOptions options;
  options.num_agents = param.n;
  options.dim = 2;
  options.noise_stddev = param.noise;
  options.rank_check_subset_size = param.n - 2 * param.f;
  const auto problem = regress::random_problem(options, rng);

  const regress::RegressionSubsetSolver solver(problem);
  const double eps = core::measure_redundancy(solver, param.f).epsilon;

  std::vector<int> honest(static_cast<std::size_t>(param.n - param.f));
  std::iota(honest.begin(), honest.end(), param.f);  // agents [f, n) honest
  const double mu = problem.mu(honest);
  const double gamma = problem.gamma(honest);
  const auto t4 = core::cge_bound_theorem4(param.n, param.f, mu, gamma);
  const auto t5 = core::cge_bound_theorem5(param.n, param.f, mu, gamma);
  if (!t4.valid && !t5.valid) {
    GTEST_SKIP() << "neither CGE theorem applies (alpha <= 0) on this instance";
  }
  const double factor = t5.valid ? std::min(t5.factor, t4.valid ? t4.factor : 1e300) : t4.factor;
  const Vector x_h = problem.subset_minimizer(honest);

  const opt::HarmonicSchedule schedule(0.5);
  const attack::GradientReverseFault reverse;
  auto roster = sim::honest_roster(problem.costs());
  for (int i = 0; i < param.f; ++i) sim::assign_fault(roster, i, reverse);
  sim::DgdConfig config{Vector{0.0, 0.0}, opt::Box::centered_cube(2, 1000.0), &schedule, 1200,
                        param.f, 31};
  sim::DgdSimulation simulation(std::move(roster), std::move(config));
  const agg::CgeAggregator cge;
  const auto trace = simulation.run(cge);

  const double error = linalg::distance(trace.final_estimate(), x_h);
  // Theorem guarantee is asymptotic: allow a small delta for the finite run.
  EXPECT_LE(error, factor * eps + 0.05)
      << param.label << ": error " << error << " vs bound " << factor * eps;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CgeResilienceTest,
    ::testing::Values(CgeParam{8, 1, 0.02, "n8_f1_lownoise"},
                      CgeParam{8, 1, 0.10, "n8_f1_midnoise"},
                      CgeParam{12, 1, 0.05, "n12_f1"}, CgeParam{12, 2, 0.05, "n12_f2"},
                      CgeParam{15, 2, 0.10, "n15_f2"}, CgeParam{9, 1, 0.00, "n9_f1_exact"}),
    [](const auto& info) { return info.param.label; });

TEST(Theorem4, ExactRedundancyGivesExactConvergenceWhenAlphaPositive) {
  // eps = 0 (noiseless) and alpha_thm4 > 0: CGE must converge to x_H itself
  // — the exact fault-tolerance special case ((f, 0)-resilience) — even
  // against an omniscient mean-reverse adversary.
  util::Rng rng(404);
  regress::GeneratorOptions options;
  options.num_agents = 15;
  options.dim = 2;
  options.noise_stddev = 0.0;
  options.rank_check_subset_size = 13;
  const auto problem = regress::random_problem(options, rng);
  std::vector<int> honest(14);
  std::iota(honest.begin(), honest.end(), 1);
  const Vector x_h = problem.subset_minimizer(honest);
  const auto t4 = core::cge_bound_theorem4(15, 1, problem.mu(honest), problem.gamma(honest));
  ASSERT_TRUE(t4.valid) << "instance unexpectedly ill-conditioned: alpha = " << t4.alpha;

  const opt::HarmonicSchedule schedule(0.5);
  const attack::MeanReverseFault fault(2.0);
  auto roster = sim::honest_roster(problem.costs());
  sim::assign_fault(roster, 0, fault);
  sim::DgdConfig config{Vector{3.0, 3.0}, opt::Box::centered_cube(2, 100.0), &schedule, 4000, 1,
                        77};
  sim::DgdSimulation simulation(std::move(roster), std::move(config));
  const agg::CgeAggregator cge;
  EXPECT_LT(linalg::distance(simulation.run(cge).final_estimate(), x_h), 5e-3);
}

TEST(Theorem4, AlphaConditionIsNotVacuous) {
  // Documented tightness observation (see EXPERIMENTS.md): with f/n = 2/9
  // the Theorem-4 coefficient gamma(n-f) - 2 mu f is negative on this
  // instance, and an omniscient mean-reverse adversary indeed keeps CGE away
  // from x_H despite exact (eps = 0) redundancy.  Theorem 5's weaker alpha
  // is positive here, so this run also charts the limits of its claim (its
  // Appendix-H proof drops a mu*f*||x_t - x_H|| Lipschitz correction in
  // eq. (104)).
  util::Rng rng(404);
  regress::GeneratorOptions options;
  options.num_agents = 9;
  options.dim = 2;
  options.noise_stddev = 0.0;
  options.rank_check_subset_size = 5;
  const auto problem = regress::random_problem(options, rng);
  std::vector<int> honest{2, 3, 4, 5, 6, 7, 8};
  const Vector x_h = problem.subset_minimizer(honest);
  const auto t4 = core::cge_bound_theorem4(9, 2, problem.mu(honest), problem.gamma(honest));
  ASSERT_FALSE(t4.valid);  // the hypothesis of the convergence theorem fails

  const opt::HarmonicSchedule schedule(0.5);
  const attack::MeanReverseFault fault(2.0);
  auto roster = sim::honest_roster(problem.costs());
  sim::assign_fault(roster, 0, fault);
  sim::assign_fault(roster, 1, fault);
  sim::DgdConfig config{Vector{3.0, 3.0}, opt::Box::centered_cube(2, 100.0), &schedule, 2500, 2,
                        77};
  sim::DgdSimulation simulation(std::move(roster), std::move(config));
  const agg::CgeAggregator cge;
  EXPECT_GT(linalg::distance(simulation.run(cge).final_estimate(), x_h), 0.1);
}

TEST(Theorem4, PhiInequalityHoldsRoundByRound) {
  // The literal statement of Theorem 4: whenever ||x_t - x_H|| >=
  // (4 mu f / (alpha gamma)) eps + delta, the inner product
  // phi_t = <x_t - x_H, GradFilter(...)> is at least
  // alpha n gamma delta ((4 mu f / (alpha gamma)) eps + delta).
  // We verify it at every iteration of a live run via the observer hook.
  util::Rng rng(505);
  regress::GeneratorOptions options;
  options.num_agents = 15;
  options.dim = 2;
  options.noise_stddev = 0.05;
  options.rank_check_subset_size = 13;
  const auto problem = regress::random_problem(options, rng);

  const int n = 15;
  const int f = 1;
  std::vector<int> honest(14);
  std::iota(honest.begin(), honest.end(), 1);
  const Vector x_h = problem.subset_minimizer(honest);
  const double mu = problem.mu(honest);
  const double gamma = problem.gamma(honest);
  const auto t4 = core::cge_bound_theorem4(n, f, mu, gamma);
  ASSERT_TRUE(t4.valid);
  const regress::RegressionSubsetSolver solver(problem);
  const double eps = core::measure_redundancy(solver, f).epsilon;

  const double delta = 0.05;
  const double radius = t4.factor * eps + delta;
  const double phi_floor = t4.alpha * n * gamma * delta * radius;

  const opt::HarmonicSchedule schedule(0.5);
  const attack::GradientReverseFault fault;
  auto roster = sim::honest_roster(problem.costs());
  sim::assign_fault(roster, 0, fault);
  sim::DgdConfig config{Vector{5.0, -5.0}, opt::Box::centered_cube(2, 1000.0), &schedule, 400, f,
                        21};
  sim::DgdSimulation simulation(std::move(roster), std::move(config));
  int rounds_above_radius = 0;
  simulation.set_observer([&](int /*round*/, const Vector& x, const Vector& filtered) {
    if (linalg::distance(x, x_h) >= radius) {
      ++rounds_above_radius;
      const double phi = linalg::dot(x - x_h, filtered);
      EXPECT_GE(phi, phi_floor - 1e-9) << "phi_t inequality violated at distance "
                                       << linalg::distance(x, x_h);
    }
  });
  const agg::CgeAggregator cge;
  simulation.run(cge);
  EXPECT_GT(rounds_above_radius, 0) << "run never exercised the far-field condition";
}

TEST(Theorem4, CgeFilteredNormStaysBounded) {
  // Part 1 of Theorems 4/5: ||GradFilter|| < infinity over the whole run —
  // concretely, bounded by (n - f)(2 n mu eps + mu Gamma) (eq. 88).
  const auto problem = regress::RegressionProblem::paper_instance();
  const std::vector<int> honest{1, 2, 3, 4, 5};
  const Vector x_h = problem.subset_minimizer(honest);
  const double mu = problem.mu(honest);
  const regress::RegressionSubsetSolver solver(problem);
  const double eps = core::measure_redundancy(solver, 1).epsilon;
  const auto box = opt::Box::centered_cube(2, 1000.0);
  const double gamma_box = box.max_distance_from(x_h);
  const double bound = 5.0 * (2.0 * 6.0 * mu * eps + mu * gamma_box);

  const opt::HarmonicSchedule schedule(1.5);
  const attack::RandomGaussianFault fault(200.0);
  auto roster = sim::honest_roster(problem.costs());
  sim::assign_fault(roster, 0, fault);
  sim::DgdConfig config{Vector{900.0, -900.0}, box, &schedule, 300, 1, 77};
  sim::DgdSimulation simulation(std::move(roster), std::move(config));
  simulation.set_observer([&](int, const Vector&, const Vector& filtered) {
    EXPECT_LE(filtered.norm(), bound);
  });
  const agg::CgeAggregator cge;
  simulation.run(cge);
}

// --------------------------- Theorem 6 (CWTM) ------------------------------

TEST(Theorem6, IdenticalCostsMeanLambdaZeroAndExactConvergence) {
  // lambda = 0 < gamma / (mu sqrt(d)): D' = 0, so CWTM must drive the error
  // to zero despite f Byzantine agents.
  std::vector<opt::SquaredDistanceCost> costs_storage;
  for (int i = 0; i < 7; ++i) costs_storage.emplace_back(Vector{2.0, -1.0});
  std::vector<const opt::CostFunction*> costs;
  for (const auto& c : costs_storage) costs.push_back(&c);

  auto roster = sim::honest_roster(costs);
  const attack::RandomGaussianFault fault(50.0);
  sim::assign_fault(roster, 0, fault);
  sim::assign_fault(roster, 1, fault);
  const opt::HarmonicSchedule schedule(0.5);
  sim::DgdConfig config{Vector{-5.0, 5.0}, opt::Box::centered_cube(2, 100.0), &schedule, 3000, 2,
                        13};
  sim::DgdSimulation simulation(std::move(roster), std::move(config));
  const agg::CwtmAggregator cwtm;
  EXPECT_LT(linalg::distance(simulation.run(cwtm).final_estimate(), Vector{2.0, -1.0}), 5e-3);
}

TEST(Theorem6, FactorFormulaMonotoneInLambda) {
  double previous = 0.0;
  for (const double lambda : {0.01, 0.05, 0.1, 0.2}) {
    const auto bound = core::cwtm_bound_theorem6(10, 2, 1.0, 1.0, lambda);
    ASSERT_TRUE(bound.valid);
    EXPECT_GT(bound.factor, previous);
    previous = bound.factor;
  }
}

TEST(Theorem6, CwtmStaysInsideHonestHullThroughoutRun) {
  // The hull property (eqs. 119-120) that powers the CWTM analysis, checked
  // live at every round against the honest gradients recomputed at x_t.
  const auto problem = regress::RegressionProblem::paper_instance();
  const std::vector<int> honest{1, 2, 3, 4, 5};
  const opt::HarmonicSchedule schedule(1.5);
  const attack::RandomGaussianFault fault(200.0);
  auto roster = sim::honest_roster(problem.costs());
  sim::assign_fault(roster, 0, fault);
  sim::DgdConfig config{Vector{-0.0085, -0.5643}, opt::Box::centered_cube(2, 1000.0), &schedule,
                        300, 1, 11};
  sim::DgdSimulation simulation(std::move(roster), std::move(config));
  simulation.set_observer([&](int, const Vector& x, const Vector& filtered) {
    for (int k = 0; k < 2; ++k) {
      double lo = 1e300;
      double hi = -1e300;
      for (int i : honest) {
        const double g = problem.cost(i).gradient(x)[k];
        lo = std::min(lo, g);
        hi = std::max(hi, g);
      }
      EXPECT_GE(filtered[k], lo - 1e-9);
      EXPECT_LE(filtered[k], hi + 1e-9);
    }
  });
  const agg::CwtmAggregator cwtm;
  simulation.run(cwtm);
}

TEST(Theorem6, PaperInstanceEmpiricallyWithinEpsilon) {
  // The paper cannot verify the lambda condition for its instance either;
  // its Section-5 observation is the empirical one: CWTM lands within eps.
  const auto problem = regress::RegressionProblem::paper_instance();
  const Vector x_h = problem.subset_minimizer({1, 2, 3, 4, 5});
  const opt::HarmonicSchedule schedule(1.5);
  const attack::GradientReverseFault fault;
  auto roster = sim::honest_roster(problem.costs());
  sim::assign_fault(roster, 0, fault);
  sim::DgdConfig config{Vector{-0.0085, -0.5643}, opt::Box::centered_cube(2, 1000.0), &schedule,
                        500, 1, 3};
  sim::DgdSimulation simulation(std::move(roster), std::move(config));
  const agg::CwtmAggregator cwtm;
  EXPECT_LT(linalg::distance(simulation.run(cwtm).final_estimate(), x_h), 0.0890);
}

// --------------------------- Lemma 1 / Theorem 1 ---------------------------

TEST(Lemma1, HalfFaultyIsInfeasible) {
  EXPECT_FALSE(core::resilience_feasible(4, 2));
  EXPECT_FALSE(core::resilience_feasible(5, 3));
  EXPECT_TRUE(core::resilience_feasible(5, 2));
}

TEST(Theorem1, NecessityAcrossParameterGrid) {
  // For every (n, f, eps): the constructed worlds are indistinguishable yet
  // no output can satisfy both — the impossibility is witnessed numerically.
  for (int n = 3; n <= 8; ++n) {
    for (int f = 1; 2 * f < n; ++f) {
      for (const double eps : {0.0, 0.1, 1.0}) {
        const auto gap = core::make_gap_instance(n, f, eps, 0.05);
        const double worst_gap = gap.x_b_shat - gap.x_s;
        EXPECT_GT(worst_gap, 2.0 * eps);
        // Candidates across the interval, including both world-minimizers.
        for (const double candidate :
             {gap.x_s, gap.x_b_shat, 0.0, gap.x_s - eps, gap.x_b_shat + eps}) {
          EXPECT_FALSE(core::output_satisfies_both_worlds(gap, candidate))
              << "n=" << n << " f=" << f << " eps=" << eps;
        }
      }
    }
  }
}

TEST(Theorem1, RedundantInstancesDoNotTriggerTheGap) {
  // Sanity inversion: when eps_actual <= eps_target the gap construction's
  // premise fails — measure_redundancy on a tight instance confirms the
  // redundancy direction of the equivalence.
  const core::MeanSubsetSolver solver(
      {Vector{0.0}, Vector{0.01}, Vector{-0.01}, Vector{0.005}, Vector{0.0}});
  const double eps = core::measure_redundancy(solver, 1).epsilon;
  EXPECT_LT(eps, 0.02);
}

}  // namespace

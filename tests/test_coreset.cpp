// Coreset pre-reduction (agg/coreset.hpp): delegation bit-parity when the
// shape cannot shrink, the integer-weight invariants of the construction
// pass, outlier capture as weight-1 singletons, bit-determinism across
// thread counts, replicated-multiset exactness of every weighted kernel
// against a hand-materialized replicated batch, and the seeded per-rule
// drift bounds against the exact flat rules promised in coreset.hpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "abft/agg/batch.hpp"
#include "abft/agg/coreset.hpp"
#include "abft/agg/registry.hpp"
#include "abft/agg/threads.hpp"
#include "abft/util/rng.hpp"

namespace {

using namespace abft;
using agg::CoresetConfig;
using agg::CoresetReducer;
using agg::GradientBatch;
using agg::Vector;

GradientBatch random_batch(int n, int d, std::uint64_t seed) {
  util::Rng rng(seed);
  GradientBatch batch(n, d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) batch.row(i)[j] = rng.normal(0.0, 1.0);
  }
  return batch;
}

Vector aggregate_batched(const agg::GradientAggregator& rule, const GradientBatch& batch,
                         int f, int threads = 1, agg::ThreadPool* pool = nullptr) {
  agg::AggregatorWorkspace ws;
  ws.parallel_threads = threads;
  ws.pool = pool;
  Vector out;
  rule.aggregate_into(out, batch, f, ws);
  return out;
}

double linf_diff(const Vector& a, const Vector& b) {
  EXPECT_EQ(a.dim(), b.dim());
  double worst = 0.0;
  for (int k = 0; k < a.dim(); ++k) worst = std::max(worst, std::abs(a[k] - b[k]));
  return worst;
}

TEST(Coreset, LabelIsStable) {
  EXPECT_EQ(agg::coreset_label({64}, "krum"), "coreset-64-krum");
  EXPECT_EQ(agg::coreset_label({0}, "cwtm"), "coreset-auto-cwtm");
  EXPECT_EQ(agg::coreset_label({CoresetConfig::kAdaptiveSize}, "cwtm"),
            "coreset-adaptive-cwtm");
  EXPECT_EQ(agg::coreset_label({32, CoresetConfig::Kind::sample, 4}, "krum"),
            "sample-32-krum");
  EXPECT_EQ(agg::coreset_label({0, CoresetConfig::Kind::sample, 0}, "cwtm"),
            "sample-auto-cwtm");
}

TEST(Coreset, ConstructorRejectsBadConfig) {
  EXPECT_THROW(CoresetReducer("nope", {16}), std::invalid_argument);
  EXPECT_THROW(CoresetReducer("cwtm", {-2}), std::invalid_argument);
  EXPECT_NO_THROW(CoresetReducer("cwtm", {CoresetConfig::kAdaptiveSize}));
  // adaptive is k-center only; strata is sample only.
  EXPECT_THROW(CoresetReducer("cwtm", CoresetConfig{CoresetConfig::kAdaptiveSize,
                                                    CoresetConfig::Kind::sample, 0}),
               std::invalid_argument);
  EXPECT_THROW(
      CoresetReducer("cwtm", CoresetConfig{16, CoresetConfig::Kind::kcenter, 4}),
      std::invalid_argument);
  EXPECT_THROW(
      CoresetReducer("cwtm", CoresetConfig{16, CoresetConfig::Kind::sample, -1}),
      std::invalid_argument);
  EXPECT_NO_THROW(CoresetReducer("cwtm", CoresetConfig{16, CoresetConfig::Kind::sample, 4}));
}

TEST(Coreset, ShapePredicateAndDerivedSize) {
  const CoresetReducer fixed("cwtm", {12});
  EXPECT_EQ(fixed.centers_for(1000, 5), 12);
  EXPECT_TRUE(fixed.would_reduce(1000, 5));
  EXPECT_FALSE(fixed.would_reduce(17, 5));  // 12 + 5 >= 17
  EXPECT_FALSE(fixed.would_reduce(0, 0));
  const CoresetReducer autosized("cwtm", {});
  EXPECT_EQ(autosized.centers_for(100, 5), 15);  // 5 + ceil(sqrt(100))
  EXPECT_EQ(autosized.centers_for(101, 5), 16);  // ceil rounds up
  // Forwarded inner-rule bounds speak about the replicated multiset (size n).
  const auto flat = agg::make_aggregator("cwtm");
  EXPECT_EQ(autosized.max_usable_f(100), flat->max_usable_f(100));
  EXPECT_EQ(autosized.min_usable_f(), flat->min_usable_f());
}

TEST(Coreset, ReduceRejectsNonReducingShapes) {
  const CoresetReducer reducer("cwtm", {30});
  const auto batch = random_batch(20, 4, 1);
  agg::AggregatorWorkspace ws;
  EXPECT_THROW(reducer.reduce(batch, 2, ws), std::invalid_argument);
}

// The headline delegation criterion: coreset_size >= n cannot shrink the
// batch, so every rule must pass through bit-identically — batched and span
// API alike.
TEST(Coreset, DelegatesBitIdenticallyWhenReductionCannotShrink) {
  const int n = 23, d = 7, f = 3;  // n >= 4f + 3, so even bulyan can run
  const auto batch = random_batch(n, d, 42);
  std::vector<Vector> grads;
  grads.reserve(n);
  for (int i = 0; i < n; ++i) grads.push_back(batch.unpack_row(i));
  for (const auto name : agg::aggregator_names()) {
    SCOPED_TRACE(std::string(name));
    const auto flat = agg::make_aggregator(name);
    const CoresetReducer reducer(name, {n});
    ASSERT_FALSE(reducer.would_reduce(n, f));
    const auto flat_batched = aggregate_batched(*flat, batch, f);
    EXPECT_EQ(aggregate_batched(reducer, batch, f), flat_batched);
    EXPECT_EQ(reducer.aggregate(grads, f), flat_batched);
  }
}

// Construction invariants over a grid of shapes: unique in-range row ids,
// strictly positive integer multiplicity weights summing to exactly n, and
// coreset rows that are verbatim copies of the selected batch rows.
TEST(Coreset, WeightsArePositiveIntegersSummingToN) {
  const CoresetReducer reducer("cwtm", {});
  struct Shape {
    int n, d, f;
    std::uint64_t seed;
  };
  for (const auto& [n, d, f, seed] :
       std::vector<Shape>{{40, 3, 2, 1}, {150, 8, 5, 2}, {400, 2, 0, 3}, {64, 16, 7, 4}}) {
    SCOPED_TRACE("n=" + std::to_string(n) + " f=" + std::to_string(f));
    const auto batch = random_batch(n, d, seed);
    agg::AggregatorWorkspace ws;
    const int m = reducer.reduce(batch, f, ws);
    EXPECT_EQ(m, reducer.centers_for(n, f) + f);
    ASSERT_EQ(static_cast<int>(ws.coreset_ids.size()), m);
    ASSERT_EQ(static_cast<int>(ws.coreset_weights.size()), m);
    EXPECT_EQ(ws.coreset_batch.rows(), m);
    EXPECT_EQ(ws.coreset_batch.cols(), d);
    std::set<int> distinct;
    double total = 0.0;
    for (int s = 0; s < m; ++s) {
      const int id = ws.coreset_ids[static_cast<std::size_t>(s)];
      ASSERT_GE(id, 0);
      ASSERT_LT(id, n);
      distinct.insert(id);
      const double w = ws.coreset_weights[static_cast<std::size_t>(s)];
      EXPECT_GE(w, 1.0);
      EXPECT_EQ(w, std::floor(w)) << "weight must be an integer multiplicity";
      total += w;
      const auto original = batch.row(id);
      const auto copy = ws.coreset_batch.row(s);
      EXPECT_TRUE(std::equal(original.begin(), original.end(), copy.begin()));
    }
    EXPECT_EQ(static_cast<int>(distinct.size()), m) << "selected rows must be distinct";
    EXPECT_EQ(total, static_cast<double>(n)) << "multiplicities must sum to n exactly";
  }
}

// The outlier budget: f planted attack rows, each far from the honest
// cluster, must ride along as weight-1 singletons — never folded into a
// center's multiplicity where they would shift its weight.
TEST(Coreset, PlantedOutliersSurviveAsWeightOneSingletons) {
  const int n = 200, d = 8, f = 5;
  auto batch = random_batch(n, d, 7);
  std::vector<int> planted;
  for (int a = 0; a < f; ++a) {
    const int id = 13 + 31 * a;  // scattered through the batch
    planted.push_back(id);
    const double magnitude = 1e6 * (1.0 + 0.01 * a) * (a % 2 == 0 ? 1.0 : -1.0);
    for (int j = 0; j < d; ++j) batch.row(id)[j] = magnitude;
  }
  const CoresetReducer reducer("cwtm", {});
  agg::AggregatorWorkspace ws;
  const int m = reducer.reduce(batch, f, ws);
  for (const int id : planted) {
    const auto it = std::find(ws.coreset_ids.begin(), ws.coreset_ids.end(), id);
    ASSERT_NE(it, ws.coreset_ids.end()) << "planted row " << id << " missing from coreset";
    const auto slot = static_cast<std::size_t>(it - ws.coreset_ids.begin());
    EXPECT_EQ(ws.coreset_weights[slot], 1.0) << "planted row " << id << " gained weight";
  }
  // No center was dragged to the attack: every other coreset row is honest.
  for (int s = 0; s < m; ++s) {
    const int id = ws.coreset_ids[static_cast<std::size_t>(s)];
    if (std::find(planted.begin(), planted.end(), id) != planted.end()) continue;
    EXPECT_LT(std::abs(ws.coreset_batch.row(s)[0]), 100.0);
  }
  // And the reduced robust aggregate still masks the attack.
  Vector out;
  reducer.aggregate_into(out, batch, f, ws);
  EXPECT_LT(out.norm(), 1.0);
}

// Determinism: construction (including the blocked parallel distance pass)
// and every weighted kernel are pure functions of (batch, f, config, mode) —
// bit-identical across thread counts and repeated calls on a reused
// workspace.  gmom and bulyan ride along now that they run weighted-native.
TEST(Coreset, BitIdenticalAcrossThreadCountsAndRepeatedCalls) {
  const auto batch = random_batch(120, 16, 9);
  agg::ThreadPool pool(4);
  for (const char* rule : {"krum", "gmom", "bulyan"}) {
    SCOPED_TRACE(rule);
    const CoresetReducer reducer(rule, {});
    const auto serial = aggregate_batched(reducer, batch, 5);
    EXPECT_EQ(aggregate_batched(reducer, batch, 5, 4, &pool), serial);
    EXPECT_EQ(aggregate_batched(reducer, batch, 5, 3, &pool), serial);
    EXPECT_EQ(aggregate_batched(reducer, batch, 5, 64, &pool), serial);
    agg::AggregatorWorkspace ws;
    ws.parallel_threads = 4;
    ws.pool = &pool;
    Vector out;
    reducer.aggregate_into(out, batch, 5, ws);
    reducer.aggregate_into(out, batch, 5, ws);
    EXPECT_EQ(out, serial);
  }
}

// The same parity at a shape large enough for the block decomposition to be
// non-trivial (n = 4096, z + 1 = 6 -> 1024-row blocks, 4 block queues
// merging every round), plus the sample reducer (serial by construction,
// but its ids/weights must be workspace-independent too).
TEST(Coreset, ParallelConstructionBitIdenticalAtMultiBlockShapes) {
  const int n = 4096, d = 16, f = 5;
  const auto batch = random_batch(n, d, 33);
  agg::ThreadPool pool(4);
  for (const char* rule : {"cwtm", "krum"}) {
    SCOPED_TRACE(rule);
    const CoresetReducer reducer(rule, {});
    agg::AggregatorWorkspace serial_ws;
    const int serial_m = reducer.reduce(batch, f, serial_ws);
    const auto serial_ids = serial_ws.coreset_ids;
    const auto serial_weights = serial_ws.coreset_weights;
    for (const int threads : {2, 4, 64}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      agg::AggregatorWorkspace ws;
      ws.parallel_threads = threads;
      ws.pool = &pool;
      EXPECT_EQ(reducer.reduce(batch, f, ws), serial_m);
      EXPECT_EQ(ws.coreset_ids, serial_ids);
      EXPECT_EQ(ws.coreset_weights, serial_weights);
    }
    const auto serial_out = aggregate_batched(reducer, batch, f);
    EXPECT_EQ(aggregate_batched(reducer, batch, f, 4, &pool), serial_out);
  }
  const CoresetReducer sampler("cwtm", {0, CoresetConfig::Kind::sample, 0});
  agg::AggregatorWorkspace sm_a, sm_b;
  sm_b.parallel_threads = 4;
  sm_b.pool = &pool;
  EXPECT_EQ(sampler.reduce(batch, f, sm_a), sampler.reduce(batch, f, sm_b));
  EXPECT_EQ(sm_a.coreset_ids, sm_b.coreset_ids);
  EXPECT_EQ(sm_a.coreset_weights, sm_b.coreset_weights);
}

// The replicated-multiset contract: for every registry rule, the reducer's
// output must match the flat rule run on the hand-materialized virtual
// batch where coreset row i appears weight_i times (centers in selection
// order, then the singletons).  Every rule — gmom's weighted bucket means
// and bulyan's slot-simulated selection included — is weighted-native and
// exact up to floating-point summation order.
TEST(Coreset, WeightedKernelsMatchTheMaterializedReplicatedBatch) {
  const int n = 60, d = 7, f = 4;
  const auto batch = random_batch(n, d, 21);
  for (const auto name : agg::aggregator_names()) {
    SCOPED_TRACE(std::string(name));
    const CoresetReducer reducer(name, {12});
    ASSERT_TRUE(reducer.would_reduce(n, f));
    agg::AggregatorWorkspace ws;
    const int m = reducer.reduce(batch, f, ws);
    GradientBatch replicated(n, d);
    int r = 0;
    for (int s = 0; s < m; ++s) {
      const auto copies =
          static_cast<long long>(ws.coreset_weights[static_cast<std::size_t>(s)]);
      for (long long c = 0; c < copies; ++c) {
        replicated.set_row(r++, ws.coreset_batch.row(s));
      }
    }
    ASSERT_EQ(r, n);
    const auto flat = agg::make_aggregator(name);
    const auto expected = aggregate_batched(*flat, replicated, f);
    const auto reduced = aggregate_batched(reducer, batch, f);
    EXPECT_LE(linf_diff(reduced, expected), 1e-8);
  }
}

// The adaptive size policy: k grows from f + 1 by doubling checkpoints
// until the covering radius stops improving by the fixed factor, so the
// realized k must land in [f + 1, n - f - 1] — seeded, and bit-identical
// across thread counts like every construction path.
TEST(Coreset, AdaptiveSizeLandsBetweenFloorAndCap) {
  const int n = 300, d = 6, f = 9;
  const auto batch = random_batch(n, d, 11);
  const CoresetReducer reducer("cwtm", {CoresetConfig::kAdaptiveSize});
  EXPECT_EQ(reducer.name(), "coreset-adaptive-cwtm");
  EXPECT_TRUE(reducer.would_reduce(n, f));
  EXPECT_EQ(reducer.centers_for(n, f), n - f - 1);  // the documented upper bound
  agg::AggregatorWorkspace ws;
  const int m = reducer.reduce(batch, f, ws);
  const int k = m - f;
  EXPECT_GE(k, f + 1);
  EXPECT_LE(k, n - f - 1);
  double total = 0.0;
  for (const double w : ws.coreset_weights) total += w;
  EXPECT_EQ(total, static_cast<double>(n));
  agg::ThreadPool pool(4);
  agg::AggregatorWorkspace pws;
  pws.parallel_threads = 4;
  pws.pool = &pool;
  EXPECT_EQ(reducer.reduce(batch, f, pws), m);
  EXPECT_EQ(pws.coreset_ids, ws.coreset_ids);
  EXPECT_EQ(pws.coreset_weights, ws.coreset_weights);
  // Duplicates-only data cannot grow past the distinct-row count.
  GradientBatch constant(n, d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) constant.row(i)[j] = 1.0;
  }
  agg::AggregatorWorkspace cws;
  EXPECT_LE(reducer.reduce(constant, f, cws), 1 + f);
}

// Sample-reducer construction invariants, mirroring the k-center suite:
// distinct in-range ids, verbatim rows, integer weights summing to n, and
// the f largest-norm rows carried as weight-1 singletons.
TEST(Coreset, SampleReducerInvariantsAndSingletons) {
  const int n = 200, d = 8, f = 5;
  auto batch = random_batch(n, d, 13);
  std::vector<int> planted;
  for (int a = 0; a < f; ++a) {
    const int id = 11 + 29 * a;
    planted.push_back(id);
    const double magnitude = 1e5 * (1.0 + 0.1 * a) * (a % 2 == 0 ? 1.0 : -1.0);
    for (int j = 0; j < d; ++j) batch.row(id)[j] = magnitude;
  }
  const CoresetReducer reducer("cwtm", {32, CoresetConfig::Kind::sample, 4});
  EXPECT_EQ(reducer.name(), "sample-32-cwtm");
  ASSERT_TRUE(reducer.would_reduce(n, f));
  agg::AggregatorWorkspace ws;
  const int m = reducer.reduce(batch, f, ws);
  EXPECT_EQ(m, 32 + f);
  std::set<int> distinct;
  double total = 0.0;
  for (int s = 0; s < m; ++s) {
    const int id = ws.coreset_ids[static_cast<std::size_t>(s)];
    ASSERT_GE(id, 0);
    ASSERT_LT(id, n);
    distinct.insert(id);
    const double w = ws.coreset_weights[static_cast<std::size_t>(s)];
    EXPECT_GE(w, 1.0);
    EXPECT_EQ(w, std::floor(w));
    total += w;
    const auto original = batch.row(id);
    const auto copy = ws.coreset_batch.row(s);
    EXPECT_TRUE(std::equal(original.begin(), original.end(), copy.begin()));
  }
  EXPECT_EQ(static_cast<int>(distinct.size()), m);
  EXPECT_EQ(total, static_cast<double>(n));
  for (const int id : planted) {
    const auto it = std::find(ws.coreset_ids.begin(), ws.coreset_ids.end(), id);
    ASSERT_NE(it, ws.coreset_ids.end()) << "planted row " << id << " missing";
    const auto slot = static_cast<std::size_t>(it - ws.coreset_ids.begin());
    EXPECT_EQ(ws.coreset_weights[slot], 1.0) << "planted row " << id << " gained weight";
  }
  // And the reduced robust aggregate still masks the attack.
  Vector out;
  reducer.aggregate_into(out, batch, f, ws);
  EXPECT_LT(out.norm(), 1.0);
}

// The lossy half of the contract, under the paper's attack presets: on
// clustered data with f attack rows shaped by each preset, both reducer
// kinds' aggregates drift from the exact flat rule by no more than the
// documented per-rule relative tolerance (drift / (1 + |exact|)).  The
// bound reflects each rule's sensitivity to the reduction radius: point
// selectors (krum) may step to a neighboring honest row, mean-like and
// coordinate-wise rules track within the cluster noise.
TEST(Coreset, DriftFromTheExactFlatRuleIsBounded) {
  const std::map<std::string, double> relative_tolerance = {
      {"average", 0.10}, {"cge", 0.10},  {"cwtm", 0.10},     {"cwmed", 0.10},
      {"krum", 0.50},    {"multikrum", 0.10}, {"geomed", 0.10},
      {"gmom", 0.25},    {"bulyan", 0.25},    {"normclip", 0.10}, {"cclip", 0.10}};
  struct AttackPreset {
    const char* name;
    // Overwrites attack row `id` (index a of f) given the honest center.
    void (*apply)(GradientBatch&, int id, int a, const Vector& center);
  };
  const AttackPreset presets[] = {
      {"large-norm",
       [](GradientBatch& b, int id, int a, const Vector&) {
         const double magnitude = 1e6 * (1.0 + 0.01 * a) * (a % 2 == 0 ? 1.0 : -1.0);
         for (int j = 0; j < b.cols(); ++j) b.row(id)[j] = magnitude;
       }},
      {"sign-flip",
       [](GradientBatch& b, int id, int, const Vector& center) {
         for (int j = 0; j < b.cols(); ++j) b.row(id)[j] = -3.0 * center[j];
       }},
      {"coordinate-wise",
       [](GradientBatch& b, int id, int a, const Vector& center) {
         for (int j = 0; j < b.cols(); ++j) b.row(id)[j] = center[j];
         b.row(id)[a % b.cols()] = (a % 2 == 0 ? 1.0 : -1.0) * 1e6;
       }},
  };
  const int n = 400, d = 8, f = 8;
  for (const auto& preset : presets) {
    SCOPED_TRACE(preset.name);
    for (std::uint64_t trial = 0; trial < 3; ++trial) {
      SCOPED_TRACE("trial " + std::to_string(trial));
      util::Rng rng(500 + trial);
      Vector center(d);
      for (int j = 0; j < d; ++j) center[j] = rng.uniform(-5.0, 5.0);
      GradientBatch batch(n, d);
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < d; ++j) batch.row(i)[j] = center[j] + rng.normal(0.0, 0.1);
      }
      for (int a = 0; a < f; ++a) preset.apply(batch, a * 37 + 3, a, center);
      for (const auto name : agg::aggregator_names()) {
        SCOPED_TRACE(std::string(name));
        const double tolerance = relative_tolerance.at(std::string(name));
        const auto exact = aggregate_batched(*agg::make_aggregator(name), batch, f);
        const CoresetReducer reducer(name, {});
        ASSERT_TRUE(reducer.would_reduce(n, f));
        const auto reduced = aggregate_batched(reducer, batch, f);
        EXPECT_LE(linf_diff(reduced, exact) / (1.0 + exact.norm()), tolerance);
        const CoresetReducer sampler(name, {0, CoresetConfig::Kind::sample, 0});
        ASSERT_TRUE(sampler.would_reduce(n, f));
        const auto sampled = aggregate_batched(sampler, batch, f);
        EXPECT_LE(linf_diff(sampled, exact) / (1.0 + exact.norm()), tolerance);
      }
    }
  }
}

}  // namespace

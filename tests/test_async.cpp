// The event-driven engine mode: the MPSC ring's concurrency contract, the
// quorum-or-deadline trigger, staleness weighting/dropping, the sync-parity
// guarantee (full quorum + zero staleness + bounded arrivals replays the
// synchronous trace bit for bit), and thread-count/replay determinism
// through the scenario layer.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "abft/engine/async_engine.hpp"
#include "abft/engine/mpsc_ring.hpp"
#include "abft/scenario/scenario.hpp"
#include "abft/util/json.hpp"

namespace {

using namespace abft;
using linalg::Vector;

// ------------------------------- MpscRing -----------------------------------

TEST(MpscRing, SerialPushDrainRoundTrips) {
  engine::MpscRing<int> ring(5);  // rounds up to a power of two >= 5
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));  // capacity 8: full
  std::vector<int> drained;
  ring.drain([&](int&& value) { drained.push_back(value); });
  EXPECT_EQ(drained, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  // Slots re-arm after a drain: the ring is reusable.
  EXPECT_TRUE(ring.try_push(42));
  drained.clear();
  ring.drain([&](int&& value) { drained.push_back(value); });
  EXPECT_EQ(drained, (std::vector<int>{42}));
}

TEST(MpscRing, ConcurrentProducersLoseNothing) {
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 1000;
  engine::MpscRing<int> ring(kProducers * kPerProducer);
  std::atomic<int> failures{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, &failures, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (!ring.try_push(p * kPerProducer + i)) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(failures.load(), 0);
  std::vector<char> seen(kProducers * kPerProducer, 0);
  int count = 0;
  ring.drain([&](int&& value) {
    ASSERT_GE(value, 0);
    ASSERT_LT(value, kProducers * kPerProducer);
    seen[static_cast<std::size_t>(value)] += 1;
    ++count;
  });
  EXPECT_EQ(count, kProducers * kPerProducer);
  for (const char c : seen) EXPECT_EQ(c, 1);  // every value exactly once
}

// --------------------------- config validation -------------------------------

TEST(AsyncEngine, RejectsInvalidConfigs) {
  const std::vector<unsigned char> roster{0, 0, 1};
  auto config = [](auto mutate) {
    engine::AsyncEngineConfig c;
    c.seed = 1;
    mutate(c.async);
    return c;
  };
  EXPECT_NO_THROW(engine::AsyncRoundEngine(roster, 2, config([](auto&) {})));
  EXPECT_THROW(engine::AsyncRoundEngine(roster, 2, config([](auto& a) { a.quorum = -1; })),
               std::invalid_argument);
  EXPECT_THROW(engine::AsyncRoundEngine(roster, 2, config([](auto& a) { a.deadline = 0.0; })),
               std::invalid_argument);
  EXPECT_THROW(
      engine::AsyncRoundEngine(roster, 2, config([](auto& a) { a.staleness_cap = -1; })),
      std::invalid_argument);
  EXPECT_THROW(
      engine::AsyncRoundEngine(roster, 2, config([](auto& a) { a.arrival.kind = "bursty"; })),
      std::invalid_argument);
  EXPECT_THROW(
      engine::AsyncRoundEngine(roster, 2, config([](auto& a) { a.arrival.scale = 0.0; })),
      std::invalid_argument);
}

// ------------------------- trigger + staleness weighting ---------------------

TEST(AsyncEngine, StalenessWeightIsOneOverOnePlusAge) {
  // One agent with a heavy-tailed compute time: rows routinely span windows,
  // so consumed ages vary.  The consumed row must equal g / (1 + age), and
  // an age-0 row must be the unscaled bitwise row.
  engine::AsyncEngineConfig config;
  config.seed = 11;
  config.async.arrival.kind = "exponential";
  config.async.arrival.scale = 2.0;
  config.async.staleness_cap = 10;
  engine::AsyncRoundEngine eng({0}, 1, config);
  eng.reset(0);
  int birth = -1;
  int consumed = 0;
  for (int t = 0; t < 60; ++t) {
    eng.begin_round(t);
    if (!eng.starting_agents().empty()) birth = t;
    eng.emit_honest([](int, std::span<double> out) { out[0] = 1.0; });
    if (eng.collect(t) == 1) {
      ASSERT_GE(birth, 0);
      const int age = t - birth;
      const double expected = age == 0 ? 1.0 : 1.0 / (1.0 + static_cast<double>(age));
      EXPECT_DOUBLE_EQ(eng.ingest().row(0)[0], expected);
      ++consumed;
    }
  }
  EXPECT_GT(consumed, 0);
  EXPECT_EQ(eng.stats().quorum_fires + eng.stats().deadline_fires, 60);
}

TEST(AsyncEngine, QuorumFiresEarlyAndLeftoversCarryOver) {
  // Uniform scale 0.5 keeps every duration inside the window, so all three
  // rows always arrive — but quorum 2 fires at the second arrival, leaving
  // (at least) one row pending to be consumed a round late at weight 1/2.
  engine::AsyncEngineConfig config;
  config.seed = 5;
  config.async.quorum = 2;
  config.async.staleness_cap = 3;
  engine::AsyncRoundEngine eng({0, 0, 0}, 1, config);
  eng.reset(0);
  for (int t = 0; t < 20; ++t) {
    eng.begin_round(t);
    eng.emit_honest([](int agent, std::span<double> out) {
      out[0] = static_cast<double>(agent + 1);
    });
    const int kept = eng.collect(t);
    EXPECT_GE(kept, t == 0 ? 2 : 1);  // later rounds may consume carried rows
  }
  EXPECT_EQ(eng.stats().quorum_fires + eng.stats().deadline_fires, 20);
  EXPECT_GT(eng.stats().quorum_fires, 0);
  EXPECT_GT(eng.stats().late_rows, 0);
  EXPECT_EQ(eng.stats().stale_dropped, 0);  // nothing ever outlives cap 3
}

TEST(AsyncEngine, StalenessCapDropsWhatItSays) {
  // Same heavy tail, zero tolerance: any row that misses its own window is
  // dropped at the next open instead of ever being aggregated late.
  engine::AsyncEngineConfig config;
  config.seed = 11;
  config.async.arrival.kind = "exponential";
  config.async.arrival.scale = 2.0;
  engine::AsyncRoundEngine eng({0}, 1, config);
  eng.reset(0);
  int held = 0;
  for (int t = 0; t < 60; ++t) {
    eng.begin_round(t);
    eng.emit_honest([](int, std::span<double> out) { out[0] = 1.0; });
    if (eng.collect(t) == 0) ++held;
  }
  EXPECT_EQ(eng.stats().late_rows, 0);
  EXPECT_GT(eng.stats().stale_dropped, 0);
  EXPECT_GT(held, 0);  // the dropped rounds held position
}

// --------------------------- window boundary ---------------------------------

// The round window is half-open, [t*D, (t+1)*D): a row arriving EXACTLY at
// the close belongs to the next window.  The "fixed" arrival kind pins the
// arithmetic: scale == deadline puts every arrival exactly on a boundary.
// (Before the fix, the `<=` window filter consumed the boundary row in its
// birth round at age 0 — the round it provably had not arrived within.)
TEST(AsyncEngine, RowAtExactWindowCloseBelongsToTheNextWindow) {
  engine::AsyncEngineConfig config;
  config.seed = 3;
  config.async.deadline = 1.0;
  config.async.arrival.kind = "fixed";
  config.async.arrival.scale = 1.0;  // arrival lands exactly on the close
  config.async.staleness_cap = 1;
  engine::AsyncRoundEngine eng({0}, 1, config);
  eng.reset(0);

  eng.begin_round(0);
  ASSERT_EQ(eng.starting_agents().size(), 1u);
  eng.emit_honest([](int, std::span<double> out) { out[0] = 1.0; });
  // Round 0: the row arrives at t = 1.0 == the close — NOT consumable here,
  // neither by quorum (full roster) nor by the deadline fire.
  EXPECT_EQ(eng.collect(0), 0);
  EXPECT_EQ(eng.stats().deadline_fires, 1);
  EXPECT_EQ(eng.stats().quorum_fires, 0);

  // Round 1: the agent still has the row in flight (it never restarts), and
  // the row is now age 1 == staleness_cap — kept, consumed at weight 1/2.
  eng.begin_round(1);
  EXPECT_TRUE(eng.starting_agents().empty());
  eng.emit_honest([](int, std::span<double> out) { out[0] = 99.0; });  // no starter
  ASSERT_EQ(eng.collect(1), 1);
  EXPECT_DOUBLE_EQ(eng.ingest().row(0)[0], 0.5);
  EXPECT_EQ(eng.stats().late_rows, 1);
  EXPECT_EQ(eng.stats().stale_dropped, 0);
}

// The staleness contract is strict: a row is dropped only when age > cap.
// With cap 0 the boundary row above ages to 1 at the next open and is
// purged — every round drops and holds, nothing is ever aggregated late.
TEST(AsyncEngine, CapZeroDropsTheBoundaryRowAtTheNextOpen) {
  engine::AsyncEngineConfig config;
  config.seed = 3;
  config.async.deadline = 1.0;
  config.async.arrival.kind = "fixed";
  config.async.arrival.scale = 1.0;
  config.async.staleness_cap = 0;
  engine::AsyncRoundEngine eng({0}, 1, config);
  eng.reset(0);
  for (int t = 0; t < 5; ++t) {
    eng.begin_round(t);
    eng.emit_honest([](int, std::span<double> out) { out[0] = 1.0; });
    EXPECT_EQ(eng.collect(t), 0) << "round " << t;
  }
  // Round 0's row is dropped at open 1, round 1's at open 2, ...
  EXPECT_EQ(eng.stats().stale_dropped, 4);
  EXPECT_EQ(eng.stats().late_rows, 0);
  EXPECT_EQ(eng.stats().deadline_fires, 5);
}

// An agent has at most one row in flight, so one filter call can never
// ingest two rows from the same agent — pinned by recovering the agent id
// from each consumed row ((agent+1) * w in coord 0, the weight probe w in
// coord 1) and checking per-collect distinctness under heavy-tailed
// arrivals that routinely carry rows across windows.
TEST(AsyncEngine, OneCollectNeverIngestsTwoRowsFromOneAgent) {
  engine::AsyncEngineConfig config;
  config.seed = 17;
  config.async.quorum = 2;
  config.async.staleness_cap = 3;
  config.async.arrival.kind = "exponential";
  config.async.arrival.scale = 2.0;
  engine::AsyncRoundEngine eng({0, 0, 0}, 2, config);
  eng.reset(0);
  long long consumed = 0;
  for (int t = 0; t < 80; ++t) {
    eng.begin_round(t);
    eng.emit_honest([](int agent, std::span<double> out) {
      out[0] = static_cast<double>(agent + 1);
      out[1] = 1.0;
    });
    const int kept = eng.collect(t);
    std::vector<int> agents;
    for (int r = 0; r < kept; ++r) {
      const auto row = eng.ingest().row(r);
      ASSERT_GT(row[1], 0.0);
      const int agent = static_cast<int>(std::lround(row[0] / row[1])) - 1;
      ASSERT_GE(agent, 0);
      ASSERT_LT(agent, 3);
      for (const int seen : agents) {
        ASSERT_NE(agent, seen) << "round " << t << " consumed agent " << agent << " twice";
      }
      agents.push_back(agent);
    }
    consumed += kept;
  }
  // The shape exercised the carry-over path, not just fresh rows.
  EXPECT_GT(eng.stats().late_rows, 0);
  EXPECT_GT(consumed, 0);
}

// ------------------------------ sync parity ----------------------------------

scenario::ScenarioSpec parse_spec(const std::string& text) {
  return scenario::parse_scenario(util::parse_json(text));
}

const char* kSyncBase = R"({
  "driver": "dgd", "problem": "quadratic", "num_agents": 7, "dim": 3,
  "iterations": 25, "f": 1, "seed": 3, "box_halfwidth": 50.0,
  "schedule": {"kind": "harmonic", "scale": 0.6},
  "faults": [{"agent": 5, "kind": "random", "param": 10.0},
             {"agent": 6, "kind": "gradient-reverse"}]
})";

TEST(AsyncParity, FullQuorumZeroStalenessReplaysTheSyncTrace) {
  // quorum 0 (= full roster), staleness_cap 0 and uniform durations in
  // [0.25, 0.75) < deadline 1.0: every round consumes exactly the fresh
  // full batch in roster order — the sync engine's exact schedule.  The
  // faults include a stream consumer (random) so this also pins the
  // per-agent fault rng derivation to the synchronous engine's.
  auto sync_spec = parse_spec(kSyncBase);
  auto async_spec = parse_spec(kSyncBase);
  async_spec.async = engine::AsyncConfig{};
  const auto sync = scenario::run_scenario(sync_spec);
  const auto async = scenario::run_scenario(async_spec);
  ASSERT_TRUE(async.async_stats.has_value());
  EXPECT_FALSE(sync.async_stats.has_value());
  ASSERT_EQ(sync.traces.front().estimates.size(), async.traces.front().estimates.size());
  for (std::size_t t = 0; t < sync.traces.front().estimates.size(); ++t) {
    const auto& a = sync.traces.front().estimates[t];
    const auto& b = async.traces.front().estimates[t];
    ASSERT_EQ(a.dim(), b.dim());
    for (int k = 0; k < a.dim(); ++k) {
      ASSERT_EQ(a[k], b[k]) << "round " << t << " coord " << k;
    }
  }
  // Full roster always arrives inside the window, so every fire is a quorum
  // fire with nothing late or dropped.
  EXPECT_EQ(async.async_stats->quorum_fires, 25);
  EXPECT_EQ(async.async_stats->deadline_fires, 0);
  EXPECT_EQ(async.async_stats->late_rows, 0);
  EXPECT_EQ(async.async_stats->stale_dropped, 0);
}

TEST(AsyncParity, FixedArrivalsInsideTheWindowReplayTheSyncTrace) {
  // The deterministic arrival kind through the scenario layer: durations of
  // exactly 0.5 < deadline 1.0 with full quorum and zero staleness replay
  // the synchronous trace bit for bit, like the uniform-bounded case.
  auto sync_spec = parse_spec(kSyncBase);
  auto async_spec = parse_spec(kSyncBase);
  async_spec.async = engine::AsyncConfig{};
  async_spec.async->arrival.kind = "fixed";
  async_spec.async->arrival.scale = 0.5;
  const auto sync = scenario::run_scenario(sync_spec);
  const auto async = scenario::run_scenario(async_spec);
  ASSERT_EQ(sync.traces.front().estimates.size(), async.traces.front().estimates.size());
  for (std::size_t t = 0; t < sync.traces.front().estimates.size(); ++t) {
    const auto& a = sync.traces.front().estimates[t];
    const auto& b = async.traces.front().estimates[t];
    for (int k = 0; k < a.dim(); ++k) ASSERT_EQ(a[k], b[k]) << "round " << t;
  }
  // The spec layer accepts the spelling too (schema round trip).
  const auto spec = parse_spec(R"({
    "driver": "dgd", "problem": "quadratic", "num_agents": 4, "dim": 2,
    "iterations": 2, "schedule": {"kind": "harmonic", "scale": 0.4},
    "async": {"arrival": {"kind": "fixed", "scale": 0.25}}
  })");
  ASSERT_TRUE(spec.async.has_value());
  EXPECT_EQ(spec.async->arrival.kind, "fixed");
}

// ------------------------------ determinism ----------------------------------

const char* kAsyncScenario = R"({
  "driver": "dgd", "problem": "quadratic", "num_agents": 8, "dim": 3,
  "iterations": 40, "f": 1, "seed": 7, "box_halfwidth": 50.0,
  "schedule": {"kind": "harmonic", "scale": 0.6},
  "faults": [{"agent": 7, "kind": "random", "param": 10.0}],
  "async": {"quorum": 5, "staleness_cap": 2,
            "arrival": {"kind": "exponential", "scale": 0.9}}
})";

TEST(AsyncDeterminism, ThreadCountAndReplayInvariant) {
  auto spec1 = parse_spec(kAsyncScenario);
  auto spec4 = parse_spec(kAsyncScenario);
  spec4.threads = 4;
  const auto run1 = scenario::run_scenario(spec1);
  const auto run4 = scenario::run_scenario(spec4);
  const auto replay = scenario::run_scenario(spec4);
  ASSERT_EQ(run1.traces.front().estimates.size(), run4.traces.front().estimates.size());
  for (std::size_t t = 0; t < run1.traces.front().estimates.size(); ++t) {
    const auto& a = run1.traces.front().estimates[t];
    const auto& b = run4.traces.front().estimates[t];
    const auto& c = replay.traces.front().estimates[t];
    for (int k = 0; k < a.dim(); ++k) {
      ASSERT_EQ(a[k], b[k]) << "threads mismatch at round " << t;
      ASSERT_EQ(b[k], c[k]) << "replay mismatch at round " << t;
    }
  }
  ASSERT_TRUE(run1.async_stats && run4.async_stats && replay.async_stats);
  EXPECT_EQ(run1.async_stats->quorum_fires, run4.async_stats->quorum_fires);
  EXPECT_EQ(run1.async_stats->deadline_fires, run4.async_stats->deadline_fires);
  EXPECT_EQ(run1.async_stats->stale_dropped, run4.async_stats->stale_dropped);
  EXPECT_EQ(run1.async_stats->late_rows, run4.async_stats->late_rows);
  // The trigger fires exactly once per round, one way or the other.
  EXPECT_EQ(run1.async_stats->quorum_fires + run1.async_stats->deadline_fires, 40);
  // The heavy-tailed arrivals with a tight cap must exercise both the late
  // and the stale path — otherwise this grid tests nothing.
  EXPECT_GT(run1.async_stats->late_rows, 0);
  EXPECT_GT(run1.async_stats->stale_dropped, 0);
  // Async mode never eliminates: silence is indistinguishable from slowness.
  EXPECT_EQ(run1.eliminated_agents, 0);
}

}  // namespace

// Tolerance-parity harness for the relaxed-parity AggMode::fast kernels.
//
// Fast mode abandons bit-parity with the exact batched path (vectorized
// reductions reorder floating-point sums, Bulyan's stage 2 selects with a
// window sweep instead of a second sort, the Gram tile loop may take a
// runtime-dispatched AVX-512 kernel), so the contract it ships under is the
// one asserted here:
//
//     ||fast(batch, f) - exact(batch, f)||_inf <= tol(rule) * (1 + ||exact||_inf)
//
// per registry rule, across shapes including the headline n = 50, d = 10000
// benchmark shape for GeoMed and Bulyan.  The per-rule bounds below are the
// documented contract (see README "AggMode::exact vs fast"); they are ~100x
// above the worst drift observed on these seeds, and orders of magnitude
// below the eps-resilience envelope any workload cares about.  Rules whose
// fast path is shared with the exact path (average, cge, normclip, cwmed at
// rank-kernel sizes) get near-machine-epsilon bounds so an accidental fast
// fork would fail loudly.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "abft/agg/registry.hpp"
#include "abft/agg/threads.hpp"
#include "abft/util/rng.hpp"

namespace {

using namespace abft;
using agg::Vector;

/// Documented per-rule relative tolerance of fast vs exact mode.
const std::map<std::string, double>& rule_tolerances() {
  static const std::map<std::string, double> tol{
      {"average", 1e-12},    // no fast kernel: identical path
      {"cge", 1e-12},        // no fast kernel: identical path
      {"cwtm", 1e-10},       // laned trimmed sums reorder additions
      {"cwmed", 1e-12},      // selection is positional in both modes
      {"krum", 1e-9},        // AVX-512 Gram dots may flip only exact score ties
      {"multikrum", 1e-9},   // same Gram drift, then an exact average
      {"geomed", 1e-6},      // two Weiszfeld runs stopping near the same fixed point
      {"gmom", 1e-6},        // geomed over exact bucket means
      {"bulyan", 1e-9},      // same selected multiset, laned summation
      {"normclip", 1e-12},   // no fast kernel: identical path
      {"cclip", 1e-8},       // laned distance reductions across 3-5 iterations
  };
  return tol;
}

agg::GradientBatch random_batch(util::Rng& rng, int n, int d, double scale) {
  agg::GradientBatch batch(n, d);
  for (int i = 0; i < n; ++i) {
    auto row = batch.row(i);
    for (int k = 0; k < d; ++k) row[static_cast<std::size_t>(k)] = scale * rng.normal();
  }
  return batch;
}

void expect_fast_parity(std::string_view name, const agg::GradientBatch& batch, int f,
                        const std::string& label) {
  const auto rule = agg::make_aggregator(name);
  agg::AggregatorWorkspace exact_ws;
  agg::AggregatorWorkspace fast_ws;
  fast_ws.mode = agg::AggMode::fast;
  Vector exact;
  Vector fast;
  rule->aggregate_into(exact, batch, f, exact_ws);
  rule->aggregate_into(fast, batch, f, fast_ws);
  ASSERT_EQ(exact.dim(), fast.dim()) << label;
  const double tol =
      rule_tolerances().at(std::string(name)) * (1.0 + exact.norm_inf());
  for (int k = 0; k < exact.dim(); ++k) {
    ASSERT_NEAR(exact[k], fast[k], tol) << label << " coordinate " << k;
  }
}

TEST(FastParity, AllRegistryRulesAcrossShapes) {
  struct Shape {
    int n, d, f;
  };
  // Shapes straddle every routing boundary: d = 1 (fast Weiszfeld routes
  // back to exact), d around the lane width, d past the Gram tile chunk,
  // f = 0, and n = 2f + 1 style minima.
  const Shape shapes[] = {{7, 1, 1},   {11, 8, 2},  {11, 48, 2},  {15, 33, 3},
                          {12, 16, 0}, {23, 200, 5}, {27, 1100, 4}, {50, 257, 10}};
  util::Rng rng(20260731);
  for (const auto name : agg::aggregator_names()) {
    for (const auto& s : shapes) {
      const auto batch = random_batch(rng, s.n, s.d, 1.0);
      const std::string label = std::string(name) + " n=" + std::to_string(s.n) +
                                " d=" + std::to_string(s.d) + " f=" + std::to_string(s.f);
      // Some rules reject some (n, f) shapes; both modes share validation,
      // so just probe with the exact path and skip.
      try {
        agg::AggregatorWorkspace probe;
        Vector out;
        agg::make_aggregator(name)->aggregate_into(out, batch, s.f, probe);
      } catch (const std::invalid_argument&) {
        continue;
      }
      expect_fast_parity(name, batch, s.f, label);
    }
  }
}

TEST(FastParity, ScaleInvarianceOfBounds) {
  // The bounds are relative: huge- and tiny-magnitude gradients must pass
  // with the same per-rule tolerances.
  util::Rng rng(555777);
  for (const double scale : {1e-6, 1e6}) {
    for (const auto name : agg::aggregator_names()) {
      const auto batch = random_batch(rng, 15, 64, scale);
      expect_fast_parity(name, batch, 3,
                         std::string(name) + " scale=" + std::to_string(scale));
    }
  }
}

TEST(FastParity, AcceptanceShapeGeoMedAndBulyan) {
  // The headline bench shape (n = 50, d = 10000): the two rules the fast
  // mode exists for must hold their tolerance contract exactly where the
  // speedup is claimed.
  util::Rng rng(424242);
  const auto batch = random_batch(rng, 50, 10000, 1.0);
  expect_fast_parity("geomed", batch, 10, "geomed 50x10000");
  expect_fast_parity("bulyan", batch, 10, "bulyan 50x10000");
}

TEST(FastParity, DuplicateHeavyColumnsStayBounded) {
  // Quantized gradients drive the coordinate-wise kernels into their
  // duplicate fallbacks; the fast trimmed sums stay positional, so bounds
  // hold.  Bulyan is excluded: with exact ties at equal |. - med| the
  // window sweep and the exact path's (equally unstable) second sort may
  // legitimately pick different same-distance entries — that is the one
  // documented non-tolerance case, and it only arises for exactly-tied
  // distances, which continuous gradients never produce.
  util::Rng rng(31337);
  agg::GradientBatch batch(13, 24);
  for (int i = 0; i < 13; ++i) {
    auto row = batch.row(i);
    for (int k = 0; k < 24; ++k) {
      row[static_cast<std::size_t>(k)] = 0.5 * std::round(2.0 * rng.normal());
    }
  }
  for (const auto name : agg::aggregator_names()) {
    if (name == "bulyan") continue;
    expect_fast_parity(name, batch, 2, std::string(name) + " duplicates");
  }
}

TEST(FastParity, FastModeThreadCountInvariant) {
  // Relaxed parity is between modes, not between thread counts: for a fixed
  // mode the kernel partition rule still guarantees bit-identical results
  // at every width (each coordinate/pair writes its own slot and the laned
  // reductions are per-slot).
  util::Rng rng(98765);
  const auto batch = random_batch(rng, 24, 513, 1.0);
  agg::ThreadPool pool(4);
  for (const auto name : agg::aggregator_names()) {
    const auto rule = agg::make_aggregator(name);
    agg::AggregatorWorkspace serial_ws;
    serial_ws.mode = agg::AggMode::fast;
    agg::AggregatorWorkspace pooled_ws;
    pooled_ws.mode = agg::AggMode::fast;
    pooled_ws.parallel_threads = 4;
    pooled_ws.pool = &pool;
    Vector serial;
    Vector pooled;
    rule->aggregate_into(serial, batch, 5, serial_ws);
    rule->aggregate_into(pooled, batch, 5, pooled_ws);
    EXPECT_EQ(serial, pooled) << name << ": fast-mode partition leaked into the result";
  }
}

TEST(FastParity, ExactModeIsTheDefault) {
  // A default-constructed workspace (and therefore every existing caller)
  // must stay on the exact path.
  agg::AggregatorWorkspace ws;
  EXPECT_EQ(ws.mode, agg::AggMode::exact);
  EXPECT_EQ(agg::agg_mode_from_string("exact"), agg::AggMode::exact);
  EXPECT_EQ(agg::agg_mode_from_string("fast"), agg::AggMode::fast);
  EXPECT_EQ(agg::to_string(agg::AggMode::fast), "fast");
  EXPECT_EQ(agg::to_string(agg::AggMode::exact), "exact");
  EXPECT_THROW(agg::agg_mode_from_string("fastest"), std::invalid_argument);
}

// ------------------------------ float32 lane ---------------------------------
//
// The f32 lane (mode fast + precision f32) demotes the bandwidth-bound
// kernel inputs once and keeps accumulation, selection state and emission in
// f64.  Its contract is the same inequality as fast-vs-exact but with wider
// per-rule envelopes dominated by the one demotion (~1.2e-7 relative per
// entry) plus float-lane Gram accumulation:
//
//     ||f32(batch, f) - exact(batch, f)||_inf <= tol32(rule) * (1 + ||exact||_inf)
//
// Rules with no f32 kernel (average, cge, normclip) keep their f64 bounds:
// the precision knob is a documented no-op there.

/// Documented per-rule relative tolerance of the f32 lane vs exact mode.
const std::map<std::string, double>& rule_tolerances_f32() {
  static const std::map<std::string, double> tol{
      {"average", 1e-12},    // no f32 kernel: identical to the f64 fast path
      {"cge", 1e-12},        // no f32 kernel: identical to the f64 fast path
      {"cwtm", 2e-5},        // demoted columns, double keep-sums
      {"cwmed", 2e-5},       // median entry of the demoted column
      {"krum", 1e-6},        // f32 Gram scores select an exact f64 row
      {"multikrum", 1e-6},   // same selection, f64 average
      {"geomed", 5e-5},      // f32-measured Weiszfeld weights, f64 fixed point
      {"gmom", 5e-5},        // geomed over exact f64 bucket means
      {"bulyan", 2e-5},      // f32 stage-1 scores, demoted stage-2 columns
      {"normclip", 1e-12},   // no f32 kernel: identical to the f64 fast path
      {"cclip", 5e-5},       // f32 distance passes and row reads, f64 update
  };
  return tol;
}

void expect_f32_parity(std::string_view name, const agg::GradientBatch& batch, int f,
                       const std::string& label) {
  const auto rule = agg::make_aggregator(name);
  agg::AggregatorWorkspace exact_ws;
  agg::AggregatorWorkspace f32_ws;
  f32_ws.mode = agg::AggMode::fast;
  f32_ws.precision = agg::Precision::f32;
  Vector exact;
  Vector lane;
  rule->aggregate_into(exact, batch, f, exact_ws);
  rule->aggregate_into(lane, batch, f, f32_ws);
  ASSERT_EQ(exact.dim(), lane.dim()) << label;
  const double tol =
      rule_tolerances_f32().at(std::string(name)) * (1.0 + exact.norm_inf());
  for (int k = 0; k < exact.dim(); ++k) {
    ASSERT_NEAR(exact[k], lane[k], tol) << label << " coordinate " << k;
  }
}

TEST(F32Lane, AllRegistryRulesAcrossShapes) {
  struct Shape {
    int n, d, f;
  };
  // The same routing-boundary shapes as the f64 suite: d = 1 (the laned f32
  // kernels route back), d around the 16-float lane width, d past the Gram
  // chunk, f = 0, and thin-n minima.
  const Shape shapes[] = {{7, 1, 1},   {11, 8, 2},  {11, 48, 2},  {15, 33, 3},
                          {12, 16, 0}, {23, 200, 5}, {27, 1100, 4}, {50, 257, 10}};
  util::Rng rng(20260801);
  for (const auto name : agg::aggregator_names()) {
    for (const auto& s : shapes) {
      const auto batch = random_batch(rng, s.n, s.d, 1.0);
      const std::string label = std::string(name) + " f32 n=" + std::to_string(s.n) +
                                " d=" + std::to_string(s.d) + " f=" + std::to_string(s.f);
      try {
        agg::AggregatorWorkspace probe;
        Vector out;
        agg::make_aggregator(name)->aggregate_into(out, batch, s.f, probe);
      } catch (const std::invalid_argument&) {
        continue;
      }
      expect_f32_parity(name, batch, s.f, label);
    }
  }
}

TEST(F32Lane, ScaleInvarianceOfBounds) {
  // The f32 envelopes are relative too: demotion error scales with the
  // magnitude, so 1e-6- and 1e6-scaled gradients pass the same bounds
  // (both far inside float's exponent range).
  util::Rng rng(667788);
  for (const double scale : {1e-6, 1e6}) {
    for (const auto name : agg::aggregator_names()) {
      const auto batch = random_batch(rng, 15, 64, scale);
      expect_f32_parity(name, batch, 3,
                        std::string(name) + " f32 scale=" + std::to_string(scale));
    }
  }
}

TEST(F32Lane, AcceptanceShapeHoldsEnvelopes) {
  // The headline bandwidth-bound shape (n = 50, d = 10000) — where the f32
  // lane's speedup is claimed, its envelopes must hold.
  util::Rng rng(515151);
  const auto batch = random_batch(rng, 50, 10000, 1.0);
  expect_f32_parity("krum", batch, 10, "krum f32 50x10000");
  expect_f32_parity("cwtm", batch, 10, "cwtm f32 50x10000");
  expect_f32_parity("geomed", batch, 10, "geomed f32 50x10000");
  expect_f32_parity("bulyan", batch, 10, "bulyan f32 50x10000");
}

TEST(F32Lane, ClusteredAttackDriftStaysBounded) {
  // Seeded drift harness on adversarial geometry: honest rows cluster
  // around a shared center, f attack rows sit far outside at a large
  // magnitude.  This stresses exactly what demotion could break — large
  // attack coordinates quantizing against small honest ones in the same
  // Gram dots / column selections — so every rule must hold its f32
  // envelope against the exact aggregate here, not just on i.i.d. noise.
  for (const std::uint64_t seed : {1001ULL, 2002ULL, 3003ULL}) {
    util::Rng rng(seed);
    const int n = 25, d = 300, f = 5;
    agg::GradientBatch batch(n, d);
    std::vector<double> center(static_cast<std::size_t>(d));
    for (int k = 0; k < d; ++k) center[static_cast<std::size_t>(k)] = rng.normal();
    for (int i = 0; i < n - f; ++i) {
      auto row = batch.row(i);
      for (int k = 0; k < d; ++k) {
        row[static_cast<std::size_t>(k)] =
            center[static_cast<std::size_t>(k)] + 0.1 * rng.normal();
      }
    }
    for (int i = n - f; i < n; ++i) {  // attack rows: far, large magnitude
      auto row = batch.row(i);
      for (int k = 0; k < d; ++k) {
        row[static_cast<std::size_t>(k)] = 50.0 + 10.0 * rng.normal();
      }
    }
    for (const auto name : agg::aggregator_names()) {
      expect_f32_parity(name, batch, f,
                        std::string(name) + " f32 attack seed=" + std::to_string(seed));
    }
  }
}

TEST(F32Lane, ThreadCountInvariant) {
  // The f32 lane inherits the one-writer-per-cell partition and fixed-order
  // laned reductions, so for a fixed (mode, precision) the result is
  // bit-identical at every parallel width.
  util::Rng rng(191919);
  const auto batch = random_batch(rng, 24, 513, 1.0);
  agg::ThreadPool pool(4);
  for (const auto name : agg::aggregator_names()) {
    const auto rule = agg::make_aggregator(name);
    agg::AggregatorWorkspace serial_ws;
    serial_ws.mode = agg::AggMode::fast;
    serial_ws.precision = agg::Precision::f32;
    agg::AggregatorWorkspace pooled_ws;
    pooled_ws.mode = agg::AggMode::fast;
    pooled_ws.precision = agg::Precision::f32;
    pooled_ws.parallel_threads = 4;
    pooled_ws.pool = &pool;
    Vector serial;
    Vector pooled;
    rule->aggregate_into(serial, batch, 5, serial_ws);
    rule->aggregate_into(pooled, batch, 5, pooled_ws);
    EXPECT_EQ(serial, pooled) << name << ": f32-lane partition leaked into the result";
  }
}

TEST(F32Lane, PrecisionKnobDefaultsAndGating) {
  // f64 is the default; the lane only engages under fast mode, so an exact
  // workspace carrying precision f32 still runs the bit-exact path.
  agg::AggregatorWorkspace ws;
  EXPECT_EQ(ws.precision, agg::Precision::f64);
  EXPECT_FALSE(ws.f32_lane());
  ws.precision = agg::Precision::f32;
  EXPECT_FALSE(ws.f32_lane());  // mode still exact
  ws.mode = agg::AggMode::fast;
  EXPECT_TRUE(ws.f32_lane());
  EXPECT_EQ(agg::precision_from_string("f64"), agg::Precision::f64);
  EXPECT_EQ(agg::precision_from_string("f32"), agg::Precision::f32);
  EXPECT_EQ(agg::to_string(agg::Precision::f64), "f64");
  EXPECT_EQ(agg::to_string(agg::Precision::f32), "f32");
  EXPECT_THROW(agg::precision_from_string("f16"), std::invalid_argument);

  // precision f32 under exact mode is bit-identical to plain exact: the
  // knob must not fork the exact path.
  util::Rng rng(272727);
  const auto batch = random_batch(rng, 13, 96, 1.0);
  for (const auto name : agg::aggregator_names()) {
    const auto rule = agg::make_aggregator(name);
    agg::AggregatorWorkspace plain_ws;
    agg::AggregatorWorkspace knob_ws;
    knob_ws.precision = agg::Precision::f32;  // mode stays exact
    Vector plain;
    Vector knob;
    rule->aggregate_into(plain, batch, 2, plain_ws);
    rule->aggregate_into(knob, batch, 2, knob_ws);
    EXPECT_EQ(plain, knob) << name << ": precision knob forked the exact path";
  }
}

}  // namespace

// Tests for the distributed linear-regression workload, pinned against the
// numbers the paper reports for its Appendix-J instance: x_H, eps, mu, gamma
// and the rank structure that certifies 2f-redundancy of the noiseless
// system.
#include <gtest/gtest.h>

#include "abft/core/redundancy.hpp"
#include "abft/regress/generator.hpp"
#include "abft/regress/problem.hpp"

namespace {

using namespace abft;
using linalg::Vector;

TEST(PaperInstance, ShapeAndData) {
  const auto problem = regress::RegressionProblem::paper_instance();
  EXPECT_EQ(problem.num_agents(), 6);
  EXPECT_EQ(problem.dim(), 2);
  EXPECT_DOUBLE_EQ(problem.design()(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(problem.observations()[5], -0.3615);
}

TEST(PaperInstance, HonestMinimizerMatchesPaper) {
  // Paper: x_H = (1.0780, 0.9825) for H = {2, ..., 6} (1-indexed).
  const auto problem = regress::RegressionProblem::paper_instance();
  const auto x_h = problem.subset_minimizer({1, 2, 3, 4, 5});
  EXPECT_NEAR(x_h[0], 1.0780, 5e-5);
  EXPECT_NEAR(x_h[1], 0.9825, 5e-5);
}

TEST(PaperInstance, RedundancyEpsilonMatchesPaper) {
  // Paper: the cost functions satisfy (2f, eps)-redundancy with eps = 0.0890.
  const auto problem = regress::RegressionProblem::paper_instance();
  const regress::RegressionSubsetSolver solver(problem);
  const auto report = core::measure_redundancy(solver, 1);
  EXPECT_NEAR(report.epsilon, 0.0890, 5e-5);
  // Appendix J checks all subset sizes >= n - 2f; same value here.
  EXPECT_NEAR(report.epsilon_all_sizes, 0.0890, 5e-5);
}

TEST(PaperInstance, SmoothnessAndConvexityConstants) {
  // Paper (Section 5): mu = 2 and gamma = 0.712 for the honest set
  // (Appendix J states 1 and 0.356 — the same numbers without the Hessian
  // factor 2 of (b - ax)^2; we use the true curvature constants).
  const auto problem = regress::RegressionProblem::paper_instance();
  const std::vector<int> honest{1, 2, 3, 4, 5};
  EXPECT_NEAR(problem.mu(honest), 2.0, 1e-9);
  EXPECT_NEAR(problem.gamma(honest), 0.712, 5e-4);
  // Appendix C: gamma <= mu.
  EXPECT_LE(problem.gamma(honest), problem.mu(honest));
}

TEST(PaperInstance, EveryFourRowSubsetFullRank) {
  // Eq. (135): rank(A_S) = 2 for all |S| >= 4 — the 2f-redundancy
  // certificate for the noiseless system.
  const auto problem = regress::RegressionProblem::paper_instance();
  for (int a = 0; a < 6; ++a) {
    for (int b = a + 1; b < 6; ++b) {
      std::vector<int> subset;
      for (int i = 0; i < 6; ++i) {
        if (i != a && i != b) subset.push_back(i);
      }
      EXPECT_EQ(problem.subset_rank(subset), 2);
    }
  }
}

TEST(PaperInstance, FullSetMinimizerNearTruth) {
  const auto problem = regress::RegressionProblem::paper_instance();
  const auto x_all = problem.subset_minimizer({});
  EXPECT_NEAR(x_all[0], 1.0, 0.1);
  EXPECT_NEAR(x_all[1], 1.0, 0.1);
}

TEST(Costs, AgentCostMatchesResidualForm) {
  const auto problem = regress::RegressionProblem::paper_instance();
  const auto& q0 = problem.cost(0);
  // Q_1(x) = (B_1 - A_1 x)^2 with A_1 = (1, 0), B_1 = 0.9108.
  const Vector x{1.0, 1.0};
  EXPECT_NEAR(q0.value(x), (0.9108 - 1.0) * (0.9108 - 1.0), 1e-12);
  EXPECT_THROW((void)problem.cost(6), std::invalid_argument);
}

TEST(Costs, SelectionAndDefaultAllAgents) {
  const auto problem = regress::RegressionProblem::paper_instance();
  EXPECT_EQ(problem.costs().size(), 6u);
  EXPECT_EQ(problem.costs({1, 3}).size(), 2u);
}

TEST(SubsetSolver, AdapterMatchesDirectCall) {
  const auto problem = regress::RegressionProblem::paper_instance();
  const regress::RegressionSubsetSolver solver(problem);
  EXPECT_EQ(solver.num_agents(), 6);
  EXPECT_EQ(solver.dim(), 2);
  EXPECT_EQ(solver.solve({0, 1, 2, 3}), problem.subset_minimizer({0, 1, 2, 3}));
}

TEST(SubsetSolver, MinimizerHasZeroAggregateGradient) {
  const auto problem = regress::RegressionProblem::paper_instance();
  const std::vector<int> subset{0, 2, 4, 5};
  const auto x = problem.subset_minimizer(subset);
  Vector grad(2);
  for (int i : subset) grad += problem.cost(i).gradient(x);
  EXPECT_LT(grad.norm(), 1e-9);
}

TEST(Lambda, EstimateIsAtMostTwoAndPositive) {
  const auto problem = regress::RegressionProblem::paper_instance();
  const std::vector<Vector> samples{Vector{0.0, 0.0}, Vector{1.0, 1.0}, Vector{-2.0, 3.0}};
  const double lambda = problem.estimate_lambda({1, 2, 3, 4, 5}, samples);
  EXPECT_GT(lambda, 0.0);
  EXPECT_LE(lambda, 2.0 + 1e-9);  // triangle inequality cap (Assumption 5)
}

TEST(Generator, NoiselessInstancesAreTwoFRedundant) {
  util::Rng rng(71);
  regress::GeneratorOptions options;
  options.num_agents = 6;
  options.dim = 2;
  options.noise_stddev = 0.0;
  options.rank_check_subset_size = 4;  // n - 2f with f = 1
  const auto problem = regress::random_problem(options, rng);
  const regress::RegressionSubsetSolver solver(problem);
  const auto report = core::measure_redundancy(solver, 1);
  EXPECT_NEAR(report.epsilon, 0.0, 1e-8);
}

TEST(Generator, NoiseMonotonicallyInflatesEpsilonOnAverage) {
  // Not a per-draw monotonicity claim; average over seeds.
  double mean_low = 0.0;
  double mean_high = 0.0;
  const int seeds = 6;
  for (int s = 0; s < seeds; ++s) {
    util::Rng rng(100 + static_cast<std::uint64_t>(s));
    regress::GeneratorOptions options;
    options.rank_check_subset_size = 4;
    options.noise_stddev = 0.02;
    const auto low = regress::random_problem(options, rng);
    options.noise_stddev = 0.5;
    const auto high = regress::random_problem(options, rng);
    mean_low += core::measure_redundancy(regress::RegressionSubsetSolver(low), 1).epsilon;
    mean_high += core::measure_redundancy(regress::RegressionSubsetSolver(high), 1).epsilon;
  }
  EXPECT_LT(mean_low / seeds, mean_high / seeds);
}

TEST(Generator, RespectsRequestedTruth) {
  util::Rng rng(5);
  regress::GeneratorOptions options;
  options.noise_stddev = 0.0;
  options.x_star = {2.0, -3.0};
  const auto problem = regress::random_problem(options, rng);
  const auto recovered = problem.subset_minimizer({});
  EXPECT_NEAR(recovered[0], 2.0, 1e-8);
  EXPECT_NEAR(recovered[1], -3.0, 1e-8);
}

TEST(Generator, ValidatesOptions) {
  util::Rng rng(1);
  regress::GeneratorOptions bad;
  bad.dim = 3;
  bad.rank_check_subset_size = 2;  // smaller than dim: certificate impossible
  EXPECT_THROW(regress::random_problem(bad, rng), std::invalid_argument);
  regress::GeneratorOptions negative;
  negative.noise_stddev = -0.1;
  EXPECT_THROW(regress::random_problem(negative, rng), std::invalid_argument);
}

TEST(Problem, ValidatesConstruction) {
  EXPECT_THROW(regress::RegressionProblem(linalg::Matrix(2, 2), Vector{1.0}),
               std::invalid_argument);
}

}  // namespace

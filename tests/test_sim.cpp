// Unit tests for the synchronous DGD simulator: roster plumbing, network
// drop injection, the S1 elimination rule, projection onto W, observer
// callbacks, determinism, and trace series.
#include <gtest/gtest.h>

#include "abft/agg/average.hpp"
#include "abft/agg/cge.hpp"
#include "abft/attack/simple_faults.hpp"
#include "abft/opt/quadratic.hpp"
#include "abft/sim/analysis.hpp"
#include "abft/sim/dgd.hpp"

namespace {

using namespace abft;
using linalg::Vector;

struct TwoAgentFixture {
  opt::SquaredDistanceCost c0{Vector{0.0, 0.0}};
  opt::SquaredDistanceCost c1{Vector{2.0, 2.0}};
  opt::HarmonicSchedule schedule{0.5};

  [[nodiscard]] std::vector<sim::AgentSpec> roster() {
    return sim::honest_roster(std::vector<const opt::CostFunction*>{&c0, &c1});
  }

  [[nodiscard]] sim::DgdConfig config(int iterations) {
    return sim::DgdConfig{Vector{5.0, -5.0}, opt::Box::centered_cube(2, 10.0), &schedule,
                          iterations, 0, 42};
  }
};

TEST(Roster, HonestAndByzantineIndices) {
  TwoAgentFixture fx;
  auto roster = fx.roster();
  const attack::ZeroFault fault;
  sim::assign_fault(roster, 1, fault);
  EXPECT_EQ(sim::honest_indices(roster), (std::vector<int>{0}));
  EXPECT_EQ(sim::byzantine_indices(roster), (std::vector<int>{1}));
  EXPECT_THROW(sim::assign_fault(roster, 5, fault), std::invalid_argument);
}

TEST(Roster, RejectsNullCosts) {
  EXPECT_THROW(sim::honest_roster(std::vector<const opt::CostFunction*>{nullptr}),
               std::invalid_argument);
}

TEST(Network, DropInjectionCountsMessages) {
  sim::SyncNetwork network(1.0, 7);  // drop everything
  const auto delivered = network.transmit(0, 0, Vector{1.0});
  EXPECT_FALSE(delivered.has_value());
  EXPECT_EQ(network.messages_sent(), 1);
  EXPECT_EQ(network.messages_dropped(), 1);
  EXPECT_THROW(sim::SyncNetwork(1.5, 0), std::invalid_argument);
}

TEST(Network, TranscriptRecordsWhenEnabled) {
  sim::SyncNetwork network(0.0, 0);
  network.record_transcript(true);
  network.transmit(3, 1, Vector{2.0});
  network.transmit(4, 1, std::nullopt);
  ASSERT_EQ(network.transcript().size(), 2u);
  EXPECT_EQ(network.transcript()[0].agent, 3);
  EXPECT_TRUE(network.transcript()[0].payload.has_value());
  EXPECT_FALSE(network.transcript()[1].payload.has_value());
}

TEST(Dgd, FaultFreeConvergesToAggregateMinimum) {
  TwoAgentFixture fx;
  sim::DgdSimulation simulation(fx.roster(), fx.config(300));
  const agg::AverageAggregator average;
  const auto trace = simulation.run(average);
  // Aggregate of the two squared distances minimizes at the midpoint (1, 1).
  EXPECT_TRUE(linalg::approx_equal(trace.final_estimate(), Vector{1.0, 1.0}, 1e-3));
  EXPECT_EQ(trace.estimates.size(), 301u);
  EXPECT_EQ(trace.eliminated_agents, 0);
}

TEST(Dgd, EstimatesStayInsideBox) {
  TwoAgentFixture fx;
  const auto tight_box = opt::Box::centered_cube(2, 0.25);
  auto config = fx.config(50);
  config.box = tight_box;
  sim::DgdSimulation simulation(fx.roster(), std::move(config));
  const agg::AverageAggregator average;
  const auto trace = simulation.run(average);
  for (const auto& x : trace.estimates) {
    EXPECT_TRUE(tight_box.contains(x, 1e-12));
  }
}

TEST(Dgd, DeterministicAcrossRuns) {
  TwoAgentFixture fx;
  const attack::RandomGaussianFault fault(10.0);
  auto make_trace = [&fx, &fault]() {
    auto roster = fx.roster();
    sim::assign_fault(roster, 1, fault);
    sim::DgdSimulation simulation(std::move(roster), fx.config(40));
    const agg::CgeAggregator cge;
    return simulation.run(cge);
  };
  const auto a = make_trace();
  const auto b = make_trace();
  ASSERT_EQ(a.estimates.size(), b.estimates.size());
  for (std::size_t i = 0; i < a.estimates.size(); ++i) {
    EXPECT_EQ(a.estimates[i], b.estimates[i]);
  }
}

TEST(Dgd, SilentAgentEliminatedAndRunContinues) {
  TwoAgentFixture fx;
  const attack::SilentFault fault;
  auto roster = fx.roster();
  sim::assign_fault(roster, 1, fault);
  auto config = fx.config(100);
  config.f = 1;
  sim::DgdSimulation simulation(std::move(roster), std::move(config));
  const agg::AverageAggregator average;
  const auto trace = simulation.run(average);
  // Eliminated exactly once (first round), after which only agent 0 remains:
  // convergence to agent 0's minimum (0, 0).
  EXPECT_EQ(trace.eliminated_agents, 1);
  EXPECT_TRUE(linalg::approx_equal(trace.final_estimate(), Vector{0.0, 0.0}, 1e-2));
}

TEST(Dgd, DropInjectionEliminatesHonestAgents) {
  TwoAgentFixture fx;
  auto config = fx.config(10);
  config.drop_probability = 1.0;  // every message lost -> everyone eliminated
  sim::DgdSimulation simulation(fx.roster(), std::move(config));
  const agg::AverageAggregator average;
  EXPECT_THROW(simulation.run(average), std::invalid_argument);
}

TEST(Dgd, ObserverSeesEveryRound) {
  TwoAgentFixture fx;
  sim::DgdSimulation simulation(fx.roster(), fx.config(25));
  int calls = 0;
  simulation.set_observer([&calls](int round, const Vector&, const Vector&) {
    EXPECT_EQ(round, calls);
    ++calls;
  });
  const agg::AverageAggregator average;
  simulation.run(average);
  EXPECT_EQ(calls, 25);
}

TEST(Dgd, CustomHonestGradientFunction) {
  TwoAgentFixture fx;
  sim::DgdSimulation simulation(fx.roster(), fx.config(10));
  // Constant pull toward -x halves the estimate each unit step.
  simulation.set_honest_gradient_fn(
      [](int /*agent*/, const Vector& x, int /*round*/) { return x; });
  const agg::AverageAggregator average;
  const auto trace = simulation.run(average);
  // x_{t+1} = x_t (1 - eta_t) with eta_0 = 0.5 -> strictly decreasing norm.
  EXPECT_LT(trace.final_estimate().norm(), trace.estimates.front().norm());
}

TEST(Dgd, ValidatesConfiguration) {
  TwoAgentFixture fx;
  auto bad_schedule = fx.config(10);
  bad_schedule.schedule = nullptr;
  EXPECT_THROW(sim::DgdSimulation(fx.roster(), std::move(bad_schedule)), std::invalid_argument);

  auto bad_dim = fx.config(10);
  bad_dim.x0 = Vector{1.0};
  EXPECT_THROW(sim::DgdSimulation(fx.roster(), std::move(bad_dim)), std::invalid_argument);

  EXPECT_THROW(sim::DgdSimulation({}, fx.config(10)), std::invalid_argument);
}

TEST(Dgd, ByzantineAgentWithoutCostGetsZeroTrueGradient) {
  TwoAgentFixture fx;
  auto roster = fx.roster();
  const attack::GradientReverseFault fault;
  roster[1] = sim::AgentSpec{nullptr, &fault};  // no cost: true gradient = 0
  auto config = fx.config(400);
  config.f = 1;
  sim::DgdSimulation simulation(std::move(roster), std::move(config));
  const agg::AverageAggregator average;
  const auto trace = simulation.run(average);
  // Reversing a zero gradient sends zero; the run still contracts toward
  // agent 0's minimum (at half speed, since the filtered step is halved).
  EXPECT_LT(trace.final_estimate().norm(), 0.1 * trace.estimates.front().norm());
}

TEST(Dgd, TrajectoryInvariantUnderRosterPermutation) {
  // With a deterministic fault and a permutation-invariant filter the
  // trajectory must not depend on agent ordering.
  const opt::SquaredDistanceCost c0{Vector{0.0, 0.0}};
  const opt::SquaredDistanceCost c1{Vector{2.0, 2.0}};
  const opt::SquaredDistanceCost c2{Vector{-1.0, 3.0}};
  const attack::GradientReverseFault fault;
  const opt::HarmonicSchedule schedule(0.5);
  auto run_order = [&](std::vector<const opt::CostFunction*> costs, int faulty_at) {
    auto roster = sim::honest_roster(costs);
    sim::assign_fault(roster, faulty_at, fault);
    sim::DgdConfig config{Vector{4.0, -4.0}, opt::Box::centered_cube(2, 10.0), &schedule, 80, 1,
                          9};
    sim::DgdSimulation simulation(std::move(roster), std::move(config));
    const agg::AverageAggregator average;
    return simulation.run(average);
  };
  // c2 is the faulty agent in both orders.
  const auto a = run_order({&c0, &c1, &c2}, 2);
  const auto b = run_order({&c2, &c0, &c1}, 0);
  ASSERT_EQ(a.estimates.size(), b.estimates.size());
  for (std::size_t t = 0; t < a.estimates.size(); ++t) {
    EXPECT_TRUE(linalg::approx_equal(a.estimates[t], b.estimates[t], 1e-12))
        << "diverged at iteration " << t;
  }
}

TEST(Analysis, SettlingIndexFindsPlateau) {
  const std::vector<double> series{10.0, 5.0, 2.0, 1.01, 1.0, 1.0, 1.0};
  EXPECT_EQ(sim::settling_index(series, 0.05), 3);
  EXPECT_EQ(sim::settling_index(series, 20.0), 0);  // everything within band
  EXPECT_THROW(sim::settling_index({}, 0.1), std::invalid_argument);
}

TEST(Analysis, TailMeanAveragesLastWindow) {
  const std::vector<double> series{100.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(sim::tail_mean(series, 2), 3.0);
  EXPECT_DOUBLE_EQ(sim::tail_mean(series, 10), (100.0 + 2.0 + 4.0) / 3.0);
  EXPECT_THROW(sim::tail_mean(series, 0), std::invalid_argument);
}

TEST(Analysis, DecreasingTrendDetection) {
  std::vector<double> decreasing;
  std::vector<double> increasing;
  for (int t = 0; t < 100; ++t) {
    decreasing.push_back(100.0 / (t + 1.0));
    increasing.push_back(static_cast<double>(t));
  }
  EXPECT_TRUE(sim::is_decreasing_trend(decreasing, 10));
  EXPECT_FALSE(sim::is_decreasing_trend(increasing, 10));
}

TEST(Analysis, DgdLossSeriesSettles) {
  TwoAgentFixture fx;
  sim::DgdSimulation simulation(fx.roster(), fx.config(400));
  const agg::AverageAggregator average;
  const auto trace = simulation.run(average);
  const opt::AggregateCost aggregate(
      std::vector<const opt::CostFunction*>{&fx.c0, &fx.c1});
  const auto losses = trace.loss_series(aggregate);
  EXPECT_TRUE(sim::is_decreasing_trend(losses, 20));
  EXPECT_LT(sim::settling_index(losses, 0.01), 200);
}

TEST(Trace, CsvExport) {
  sim::Trace trace;
  trace.estimates = {Vector{1.0, 2.0}, Vector{3.0, 4.0}};
  std::ostringstream os;
  trace.write_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("t,x0,x1"), std::string::npos);
  EXPECT_NE(out.find("0,1,2"), std::string::npos);
  EXPECT_NE(out.find("1,3,4"), std::string::npos);
  EXPECT_THROW(sim::Trace{}.write_csv(os), std::invalid_argument);
}

TEST(Trace, SeriesHelpers) {
  sim::Trace trace;
  trace.estimates = {Vector{0.0, 0.0}, Vector{1.0, 0.0}};
  const opt::SquaredDistanceCost cost(Vector{1.0, 0.0});
  const auto losses = trace.loss_series(cost);
  ASSERT_EQ(losses.size(), 2u);
  EXPECT_DOUBLE_EQ(losses[0], 1.0);
  EXPECT_DOUBLE_EQ(losses[1], 0.0);
  const auto dists = trace.distance_series(Vector{0.0, 0.0});
  EXPECT_DOUBLE_EQ(dists[1], 1.0);
  EXPECT_THROW((void)sim::Trace{}.final_estimate(), std::invalid_argument);
}

}  // namespace

// The declarative scenario layer: JSON parsing (the self-contained reader in
// util/json.hpp), spec validation, and — the load-bearing check — that a
// spec-driven run is bit-identical to the same workload hand-assembled
// against the driver API, for every driver the layer dispatches to.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>

#include "abft/agg/registry.hpp"
#include "abft/attack/simple_faults.hpp"
#include "abft/opt/schedule.hpp"
#include "abft/regress/problem.hpp"
#include "abft/scenario/scenario.hpp"
#include "abft/sim/dgd.hpp"
#include "abft/util/json.hpp"

namespace {

using namespace abft;
using linalg::Vector;

// ------------------------------- util/json ----------------------------------

TEST(Json, ParsesScalarsArraysObjects) {
  const auto doc = util::parse_json(R"({
    "text": "a\"b\\c\nA",
    "yes": true, "no": false, "nothing": null,
    "pi": 3.25, "negexp": -1.5e2,
    "list": [1, 2, 3],
    "nested": {"inner": [{"k": 7}]}
  })");
  EXPECT_EQ(doc.at("text").as_string(), "a\"b\\c\nA");
  EXPECT_TRUE(doc.at("yes").as_bool());
  EXPECT_FALSE(doc.at("no").as_bool());
  EXPECT_TRUE(doc.at("nothing").is_null());
  EXPECT_DOUBLE_EQ(doc.at("pi").as_number(), 3.25);
  EXPECT_DOUBLE_EQ(doc.at("negexp").as_number(), -150.0);
  ASSERT_EQ(doc.at("list").as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(doc.at("list").as_array()[2].as_number(), 3.0);
  EXPECT_DOUBLE_EQ(doc.at("nested").at("inner").as_array()[0].at("k").as_number(), 7.0);
}

TEST(Json, DefaultsAndErrors) {
  const auto doc = util::parse_json(R"({"a": 1})");
  EXPECT_DOUBLE_EQ(doc.number_or("a", 9.0), 1.0);
  EXPECT_DOUBLE_EQ(doc.number_or("missing", 9.0), 9.0);
  EXPECT_EQ(doc.string_or("missing", "dflt"), "dflt");
  EXPECT_THROW(doc.at("missing"), std::invalid_argument);
  EXPECT_THROW(doc.at("a").as_string(), std::invalid_argument);
  EXPECT_THROW(util::parse_json("{\"a\": 1} trailing"), std::invalid_argument);
  EXPECT_THROW(util::parse_json("{\"a\" 1}"), std::invalid_argument);
  EXPECT_THROW(util::parse_json("[1, 2,,]"), std::invalid_argument);
  EXPECT_THROW(util::parse_json("\"unterminated"), std::invalid_argument);
  EXPECT_THROW(util::parse_json(""), std::invalid_argument);
}

TEST(Json, ErrorsCarryPosition) {
  try {
    util::parse_json("{\n  \"a\": tru\n}");
    FAIL() << "expected a parse error";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("2:"), std::string::npos) << error.what();
  }
}

// ----------------------------- spec parsing ---------------------------------

TEST(ScenarioSpec, ParsesFullSpec) {
  const auto spec = scenario::parse_scenario(util::parse_json(R"({
    "name": "demo", "driver": "p2p", "problem": "paper_regression",
    "aggregator": "cge", "mode": "fast", "iterations": 40, "f": 1,
    "seed": 5, "threads": 2,
    "schedule": {"kind": "polynomial", "scale": 0.7, "power": 0.8},
    "box_halfwidth": 10.0, "x0": [0.5, -0.5],
    "faults": [{"agent": 0, "kind": "random", "param": 30.0}],
    "axes": {"participation": 0.9, "straggler_probability": 0.05,
             "perturbation_seed": 17, "churn": [{"round": 9, "agent": 2}]}
  })"));
  EXPECT_EQ(spec.name, "demo");
  EXPECT_EQ(spec.driver, "p2p");
  EXPECT_EQ(spec.aggregator, "cge");
  EXPECT_EQ(spec.mode, agg::AggMode::fast);
  EXPECT_EQ(spec.iterations, 40);
  EXPECT_EQ(spec.schedule.kind, "polynomial");
  EXPECT_DOUBLE_EQ(spec.schedule.power, 0.8);
  ASSERT_EQ(spec.x0.size(), 2u);
  ASSERT_EQ(spec.faults.size(), 1u);
  EXPECT_EQ(spec.faults[0].kind, "random");
  EXPECT_DOUBLE_EQ(spec.faults[0].param, 30.0);
  EXPECT_TRUE(spec.axes.enabled());
  EXPECT_DOUBLE_EQ(spec.axes.participation, 0.9);
  ASSERT_EQ(spec.axes.churn.size(), 1u);
  EXPECT_EQ(spec.axes.churn[0].round, 9);
}

TEST(ScenarioSpec, RejectsKeysTheDriverWouldIgnore) {
  // A dsgd spec carrying gradient-driver keys must fail loudly instead of
  // silently running a different experiment (and vice versa).
  auto dsgd = scenario::parse_scenario(util::parse_json(
      R"({"driver": "dsgd", "iterations": 5, "schedule": {"kind": "constant", "scale": 0.5}})"));
  EXPECT_THROW(scenario::run_scenario(dsgd), std::invalid_argument);
  auto dgd = scenario::parse_scenario(
      util::parse_json(R"({"driver": "dgd", "iterations": 5, "batch_size": 16})"));
  EXPECT_THROW(scenario::run_scenario(dgd), std::invalid_argument);
  auto p2p = scenario::parse_scenario(
      util::parse_json(R"({"driver": "p2p", "iterations": 5, "drop_probability": 0.5})"));
  EXPECT_THROW(scenario::run_scenario(p2p), std::invalid_argument);
}

TEST(ScenarioSpec, UnsupportableDeclaredFFailsLoudly) {
  // f = 3 on a 5-agent roster can never satisfy krum's n > 2f + 2 — the
  // engine must NOT silently clamp a misconfigured spec; the rule's own
  // precondition has to surface.
  scenario::ScenarioSpec spec;
  spec.driver = "dgd";
  spec.problem = "quadratic";
  spec.num_agents = 5;
  spec.dim = 2;
  spec.aggregator = "krum";
  spec.iterations = 3;
  spec.f = 3;
  spec.seed = 2;
  spec.schedule = {"harmonic", 0.4, 1.0};
  EXPECT_THROW(scenario::run_scenario(spec), std::invalid_argument);
}

TEST(ScenarioSpec, BulyanThinRoundHoldsPositionInsteadOfCrashing) {
  // Valid at full strength (n = 7, f = 1 satisfies n >= 4f + 3), but churn
  // shrinks delivery to 5 rows where Bulyan cannot run at any f — those
  // rounds must hold position, not trip the selection-pool requirement.
  scenario::ScenarioSpec spec;
  spec.driver = "dgd";
  spec.problem = "quadratic";
  spec.num_agents = 7;
  spec.dim = 2;
  spec.aggregator = "bulyan";
  spec.iterations = 8;
  spec.f = 1;
  spec.seed = 4;
  spec.box_halfwidth = 30.0;
  spec.schedule = {"harmonic", 0.4, 1.0};
  spec.axes.churn = {{3, 1}, {3, 2}};
  const auto result = scenario::run_scenario(spec);
  ASSERT_EQ(result.traces.front().estimates.size(), 9u);
  EXPECT_EQ(result.departed_agents, 2);
  // Rounds 3+ hold: the estimate freezes after the churn event.
  const auto& estimates = result.traces.front().estimates;
  for (std::size_t t = 4; t < estimates.size(); ++t) {
    EXPECT_EQ(estimates[t], estimates[3]) << "iteration " << t;
  }
  EXPECT_NE(estimates[3], estimates[0]);  // it did move before the churn
}

TEST(ScenarioSpec, ResultJsonEscapesFreeFormText) {
  scenario::ScenarioSpec spec;
  spec.name = "quo\"te back\\slash\nnewline";
  spec.driver = "dgd";
  spec.problem = "quadratic";
  spec.num_agents = 4;
  spec.aggregator = "average";
  spec.iterations = 2;
  spec.seed = 1;
  spec.schedule = {"harmonic", 0.4, 1.0};
  spec.box_halfwidth = 10.0;
  const auto result = scenario::run_scenario(spec);
  std::ostringstream json;
  scenario::write_result_json(result, json);
  const auto parsed = util::parse_json(json.str());
  EXPECT_EQ(parsed.at("name").as_string(), spec.name);
}

TEST(ScenarioSpec, RejectsUnknownKeysAndEnums) {
  EXPECT_THROW(scenario::parse_scenario(util::parse_json(R"({"agregator": "cwtm"})")),
               std::invalid_argument);
  EXPECT_THROW(scenario::parse_scenario(
                   util::parse_json(R"({"axes": {"participatoin": 0.5}})")),
               std::invalid_argument);
  EXPECT_THROW(scenario::parse_scenario(util::parse_json(R"({"mode": "turbo"})")),
               std::invalid_argument);
  const auto bad_driver = scenario::parse_scenario(util::parse_json(R"({"driver": "mesh"})"));
  EXPECT_THROW(scenario::run_scenario(bad_driver), std::invalid_argument);
  auto bad_fault = scenario::parse_scenario(
      util::parse_json(R"({"faults": [{"agent": 0, "kind": "gremlin"}]})"));
  EXPECT_THROW(scenario::run_scenario(bad_fault), std::invalid_argument);
}

// ----------------------- spec-vs-driver bit parity ---------------------------

TEST(ScenarioRun, DgdSpecMatchesHandBuiltDriverRun) {
  // The scenario layer must add nothing and lose nothing: the same workload
  // assembled by hand against DgdSimulation produces the identical trace.
  scenario::ScenarioSpec spec;
  spec.driver = "dgd";
  spec.problem = "paper_regression";
  spec.aggregator = "cwtm";
  spec.iterations = 120;
  spec.f = 1;
  spec.seed = 2021;
  spec.x0 = {-0.0085, -0.5643};
  spec.schedule = {"harmonic", 1.5, 1.0};
  spec.faults.push_back(scenario::FaultSpec{0, "gradient-reverse", 0.0});
  const auto result = scenario::run_scenario(spec);

  const auto problem = regress::RegressionProblem::paper_instance();
  const opt::HarmonicSchedule schedule(1.5);
  const attack::GradientReverseFault fault;
  auto roster = sim::honest_roster(problem.costs());
  sim::assign_fault(roster, 0, fault);
  sim::DgdConfig config{Vector{-0.0085, -0.5643}, opt::Box::centered_cube(2, 1000.0),
                        &schedule, 120, 1, 2021};
  sim::DgdSimulation simulation(std::move(roster), std::move(config));
  const auto aggregator = agg::make_aggregator("cwtm");
  const auto direct = simulation.run(*aggregator);

  ASSERT_EQ(result.traces.front().estimates.size(), direct.estimates.size());
  for (std::size_t t = 0; t < direct.estimates.size(); ++t) {
    ASSERT_EQ(result.traces.front().estimates[t], direct.estimates[t]) << "iteration " << t;
  }
}

TEST(ScenarioRun, AllDriversExecuteAndSummarize) {
  for (const auto* driver : {"dgd", "p2p", "p2p_auth"}) {
    scenario::ScenarioSpec spec;
    spec.driver = driver;
    spec.aggregator = "cge";
    spec.iterations = 10;
    spec.f = 1;
    spec.seed = 3;
    spec.schedule = {"harmonic", 1.5, 1.0};
    spec.faults.push_back(scenario::FaultSpec{0, "gradient-reverse", 0.0});
    const auto result = scenario::run_scenario(spec);
    ASSERT_FALSE(result.traces.empty()) << driver;
    EXPECT_EQ(result.traces.front().estimates.size(), 11u) << driver;
    ASSERT_TRUE(result.distance_to_reference.has_value()) << driver;
    std::ostringstream json;
    scenario::write_result_json(result, json);
    // The machine summary must itself be valid JSON (our own parser checks).
    const auto parsed = util::parse_json(json.str());
    EXPECT_EQ(parsed.at("driver").as_string(), driver);
    EXPECT_NEAR(parsed.at("final_cost").as_number(), result.final_cost,
                1e-9 * (1.0 + std::abs(result.final_cost)));
  }

  scenario::ScenarioSpec dsgd;
  dsgd.driver = "dsgd";
  dsgd.aggregator = "cwtm";
  dsgd.iterations = 12;
  dsgd.eval_interval = 6;
  dsgd.batch_size = 4;
  dsgd.f = 1;
  dsgd.num_agents = 5;
  dsgd.seed = 77;
  dsgd.faults.push_back(scenario::FaultSpec{0, "label-flip", 0.0});
  const auto result = scenario::run_scenario(dsgd);
  ASSERT_TRUE(result.series.has_value());
  EXPECT_EQ(result.series->eval_iterations.back(), 12);
  std::ostringstream json;
  scenario::write_result_json(result, json);
  const auto parsed = util::parse_json(json.str());
  EXPECT_EQ(parsed.at("driver").as_string(), "dsgd");
  EXPECT_GT(parsed.at("final_test_accuracy").as_number(), 0.0);
}

TEST(ScenarioRun, QuadraticProblemReferenceIsHonestCentroid) {
  scenario::ScenarioSpec spec;
  spec.driver = "dgd";
  spec.problem = "quadratic";
  spec.num_agents = 6;
  spec.dim = 3;
  spec.aggregator = "average";
  spec.iterations = 400;
  spec.f = 0;
  spec.seed = 13;
  spec.box_halfwidth = 50.0;
  spec.schedule = {"harmonic", 0.5, 1.0};
  const auto result = scenario::run_scenario(spec);
  // Fault-free plain averaging on squared-distance costs converges to the
  // centroid — the layer's closed-form reference must agree.
  ASSERT_TRUE(result.distance_to_reference.has_value());
  EXPECT_LT(*result.distance_to_reference, 1e-2);
}

// ------------------------- new workload knobs -------------------------------

TEST(ScenarioRun, DsgdDirichletAlphaDefaultMatchesExplicitInfinity) {
  // A spec that never mentions dirichlet_alpha and one that sets it to the
  // iid limit programmatically must produce the same series — the knob's
  // default is exactly today's split.
  scenario::ScenarioSpec spec;
  spec.driver = "dsgd";
  spec.aggregator = "cwtm";
  spec.iterations = 8;
  spec.eval_interval = 4;
  spec.batch_size = 4;
  spec.num_agents = 5;
  spec.f = 1;
  spec.seed = 31;
  spec.faults.push_back(scenario::FaultSpec{0, "label-flip", 0.0});
  const auto iid = scenario::run_scenario(spec);
  spec.dirichlet_alpha = std::numeric_limits<double>::infinity();
  const auto limit = scenario::run_scenario(spec);
  ASSERT_TRUE(iid.series && limit.series);
  EXPECT_EQ(iid.series->train_loss, limit.series->train_loss);
  EXPECT_EQ(iid.series->final_params, limit.series->final_params);

  // A finite alpha actually changes the shards (and hence the run).
  spec.dirichlet_alpha = 0.1;
  const auto skewed = scenario::run_scenario(spec);
  EXPECT_NE(iid.series->train_loss, skewed.series->train_loss);
}

TEST(ScenarioSpec, DsgdKnobsParseAndValidate) {
  const auto spec = scenario::parse_scenario(util::parse_json(R"({
    "driver": "dsgd", "iterations": 6, "num_agents": 6, "agents": [1, 2, 3],
    "model": {"kind": "mlp", "hidden_dim": 8},
    "dataset": {"num_classes": 3, "feature_dim": 5, "examples_per_class": 20,
                "dirichlet_alpha": 0.3}
  })"));
  EXPECT_EQ(spec.model, "mlp");
  EXPECT_EQ(spec.hidden_dim, 8);
  EXPECT_DOUBLE_EQ(spec.dirichlet_alpha, 0.3);
  ASSERT_EQ(spec.agents.size(), 3u);
  const auto result = scenario::run_scenario(spec);
  ASSERT_TRUE(result.series.has_value());

  EXPECT_THROW(scenario::parse_scenario(
                   util::parse_json(R"({"model": {"kind": "resnet"}})")),
               std::invalid_argument);
  EXPECT_THROW(scenario::parse_scenario(
                   util::parse_json(R"({"dataset": {"dirichlet_alpha": 0}})")),
               std::invalid_argument);
  // The roster subset must name real shards, and must not repeat one (the
  // subset moves shards out; a duplicate would alias a moved-from Dataset).
  auto bad = scenario::parse_scenario(util::parse_json(
      R"({"driver": "dsgd", "iterations": 2, "num_agents": 4, "agents": [4]})"));
  EXPECT_THROW(scenario::run_scenario(bad), std::invalid_argument);
  auto doubled = scenario::parse_scenario(util::parse_json(
      R"({"driver": "dsgd", "iterations": 2, "num_agents": 4, "agents": [1, 1, 2]})"));
  EXPECT_THROW(scenario::run_scenario(doubled), std::invalid_argument);
}

TEST(ScenarioRun, RandomRegressionIsDeterministicAndReferenced) {
  scenario::ScenarioSpec spec;
  spec.driver = "dgd";
  spec.problem = "random_regression";
  spec.num_agents = 8;
  spec.dim = 2;
  spec.noise_stddev = 0.1;
  spec.aggregator = "cge";
  spec.iterations = 30;
  spec.f = 1;
  spec.seed = 1000;
  spec.schedule = {"harmonic", 0.5, 1.0};
  spec.faults.push_back(scenario::FaultSpec{0, "gradient-reverse", 0.0});
  const auto first = scenario::run_scenario(spec);
  const auto second = scenario::run_scenario(spec);
  ASSERT_TRUE(first.distance_to_reference.has_value());
  EXPECT_EQ(*first.distance_to_reference, *second.distance_to_reference);
  EXPECT_EQ(first.traces.front().estimates, second.traces.front().estimates);

  // The exposed instance is the very problem the run used: same design, so
  // the honest-subset minimizer matches the run's reference distance.
  const auto problem = scenario::random_regression_instance(spec);
  EXPECT_EQ(problem.num_agents(), 8);
  EXPECT_EQ(problem.dim(), 2);
  const std::vector<int> honest{1, 2, 3, 4, 5, 6, 7};
  const auto x_h = problem.subset_minimizer(honest);
  EXPECT_NEAR(linalg::distance(first.traces.front().final_estimate(), x_h),
              *first.distance_to_reference, 1e-12);

  // noise_stddev is a random_regression-only key.
  auto wrong = scenario::parse_scenario(util::parse_json(
      R"({"driver": "dgd", "problem": "quadratic", "iterations": 2, "noise_stddev": 0.1})"));
  EXPECT_THROW(scenario::run_scenario(wrong), std::invalid_argument);
  // And the redundancy precondition n - 2f >= d must surface, not hang.
  spec.f = 4;
  EXPECT_THROW(scenario::run_scenario(spec), std::invalid_argument);
}

// ----------------------- hierarchical aggregator ----------------------------

TEST(ScenarioSpec, HierarchyAggregatorParsesObjectForm) {
  const auto spec = scenario::parse_scenario(util::parse_json(R"({
    "driver": "dgd", "problem": "quadratic",
    "aggregator": {"hierarchy": {"shards": 6, "leaf_rule": "krum",
                                 "root_rule": "cwmed", "f_leaf": 2}}
  })"));
  ASSERT_TRUE(spec.hierarchy.has_value());
  EXPECT_EQ(spec.hierarchy->shards, 6);
  EXPECT_EQ(spec.hierarchy->leaf_rule, "krum");
  EXPECT_EQ(spec.hierarchy->root_rule, "cwmed");
  EXPECT_EQ(spec.hierarchy->f_leaf, 2);
  EXPECT_EQ(spec.aggregator, "hier-6-krum-cwmed-fl2");

  // Leaf/root default to cwtm, f_leaf to auto.
  const auto defaults = scenario::parse_scenario(
      util::parse_json(R"({"aggregator": {"hierarchy": {"shards": 4}}})"));
  ASSERT_TRUE(defaults.hierarchy.has_value());
  EXPECT_EQ(defaults.hierarchy->leaf_rule, "cwtm");
  EXPECT_EQ(defaults.hierarchy->root_rule, "cwtm");
  EXPECT_EQ(defaults.hierarchy->f_leaf, -1);
  EXPECT_EQ(defaults.aggregator, "hier-4-cwtm-cwtm");
}

TEST(ScenarioSpec, HierarchyAggregatorRejectsMalformedBlocks) {
  const auto parse = [](const char* text) {
    return scenario::parse_scenario(util::parse_json(text));
  };
  // Unknown key next to (or inside) the hierarchy block.
  EXPECT_THROW(parse(R"({"aggregator": {"hierarchy": {"shards": 2}, "x": 1}})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"aggregator": {"hierarchy": {"shards": 2, "nope": 1}}})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"aggregator": {"hierarchy": {"shards": 0}}})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"aggregator": {"hierarchy": {"leaf_rule": "nope"}}})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"aggregator": {"hierarchy": {"root_rule": "nope"}}})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"aggregator": {"hierarchy": {"f_leaf": -1}}})"),
               std::invalid_argument);
}

TEST(ScenarioSpec, ReductionBlockParsesBothKindsAndAdaptiveSize) {
  const auto sample = scenario::parse_scenario(util::parse_json(R"({
    "aggregator": {"rule": "cwtm",
                   "reduction": {"sample": {"size": 16, "strata": 4}}}
  })"));
  ASSERT_TRUE(sample.coreset.has_value());
  EXPECT_EQ(sample.coreset->kind, agg::CoresetConfig::Kind::sample);
  EXPECT_EQ(sample.coreset->size, 16);
  EXPECT_EQ(sample.coreset->strata, 4);
  EXPECT_EQ(sample.aggregator, "sample-16-cwtm");

  const auto adaptive = scenario::parse_scenario(util::parse_json(R"({
    "aggregator": {"rule": "krum",
                   "reduction": {"coreset": {"size": "adaptive"}}}
  })"));
  ASSERT_TRUE(adaptive.coreset.has_value());
  EXPECT_EQ(adaptive.coreset->kind, agg::CoresetConfig::Kind::kcenter);
  EXPECT_EQ(adaptive.coreset->size, agg::CoresetConfig::kAdaptiveSize);
  EXPECT_EQ(adaptive.aggregator, "coreset-adaptive-krum");

  const auto parse = [](const char* text) {
    return scenario::parse_scenario(util::parse_json(text));
  };
  // "adaptive" is a k-center growth policy; the sampler has no radius to
  // drive it.
  EXPECT_THROW(parse(R"({"aggregator": {"rule": "cwtm",
      "reduction": {"sample": {"size": "adaptive"}}}})"),
               std::invalid_argument);
  // Exactly one reducer kind per reduction block.
  EXPECT_THROW(parse(R"({"aggregator": {"rule": "cwtm",
      "reduction": {"coreset": {"size": 4}, "sample": {"size": 4}}}})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"aggregator": {"rule": "cwtm", "reduction": {}}})"),
               std::invalid_argument);
  // Unknown keys inside either sub-block fail loudly.
  EXPECT_THROW(parse(R"({"aggregator": {"rule": "cwtm",
      "reduction": {"sample": {"size": 4, "temperature": 1}}}})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"aggregator": {"rule": "cwtm",
      "reduction": {"coreset": {"size": 4, "strata": 2}}}})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"aggregator": {"rule": "cwtm",
      "reduction": {"sample": {"size": -1}}}})"),
               std::invalid_argument);
}

TEST(ScenarioRun, HierarchySpecRunsAndReportsBounds) {
  auto spec = scenario::parse_scenario(util::parse_json(R"({
    "name": "hier-run", "driver": "dgd", "problem": "quadratic",
    "num_agents": 60, "dim": 3, "iterations": 30, "f": 6, "seed": 5,
    "box_halfwidth": 50.0,
    "aggregator": {"hierarchy": {"shards": 6, "leaf_rule": "krum",
                                 "root_rule": "cwtm", "f_leaf": 2}}
  })"));
  const auto result = scenario::run_scenario(spec);
  ASSERT_TRUE(result.hierarchy_bounds.has_value());
  const auto& b = *result.hierarchy_bounds;
  EXPECT_EQ(b.n, 60);
  EXPECT_EQ(b.shards, 6);
  EXPECT_EQ(b.shard_rows_min, 10);
  EXPECT_EQ(b.f_leaf, 2);
  EXPECT_EQ(b.f_root, 2);  // floor(6 / 3), within cwtm(6)'s cap
  EXPECT_EQ(b.tolerated_f, 8);
  EXPECT_DOUBLE_EQ(b.resilience_margin, 2.0 * 8 / 60);
  EXPECT_TRUE(std::isfinite(result.final_cost));
  std::ostringstream json;
  scenario::write_result_json(result, json);
  EXPECT_NE(json.str().find("\"hierarchy\""), std::string::npos);
  EXPECT_NE(json.str().find("\"tolerated_f\": 8"), std::string::npos);

  // A non-hierarchy run carries no bounds (and no JSON block).
  const auto flat = scenario::run_scenario(scenario::parse_scenario(util::parse_json(
      R"({"driver": "dgd", "problem": "quadratic", "iterations": 5})")));
  EXPECT_FALSE(flat.hierarchy_bounds.has_value());
}

TEST(ScenarioRun, SingleShardHierarchyMatchesFlatRunBitwise) {
  const char* common = R"("driver": "dgd", "problem": "quadratic",
    "num_agents": 21, "dim": 2, "iterations": 40, "f": 2, "seed": 9,
    "box_halfwidth": 40.0,
    "faults": [{"agent": 0, "kind": "random"}, {"agent": 1, "kind": "sign-flip-scale"}])";
  const auto flat = scenario::run_scenario(scenario::parse_scenario(
      util::parse_json(std::string("{\"aggregator\": \"krum\", ") + common + "}")));
  const auto hier = scenario::run_scenario(scenario::parse_scenario(util::parse_json(
      std::string(R"({"aggregator": {"hierarchy": {"shards": 1, "leaf_rule": "krum"}}, )") +
      common + "}")));
  ASSERT_EQ(flat.traces.size(), hier.traces.size());
  EXPECT_EQ(flat.traces.front().final_estimate(), hier.traces.front().final_estimate());
  EXPECT_EQ(flat.final_cost, hier.final_cost);
}

// --------------------- p2p in-protocol strategies ----------------------------

TEST(ScenarioSpec, StrategyBlocksParseAndValidate) {
  const auto spec = scenario::parse_scenario(util::parse_json(R"({
    "driver": "p2p", "relay_strategy": {"kind": "equivocate", "param": 50.0}
  })"));
  ASSERT_TRUE(spec.relay_strategy.has_value());
  EXPECT_EQ(spec.relay_strategy->kind, "equivocate");
  EXPECT_DOUBLE_EQ(spec.relay_strategy->param, 50.0);

  const auto ds = scenario::parse_scenario(util::parse_json(R"({
    "driver": "p2p_auth",
    "ds_strategy": {"kind": "equivocate", "offset": 7.0, "forward_probability": 0.25}
  })"));
  ASSERT_TRUE(ds.ds_strategy.has_value());
  EXPECT_DOUBLE_EQ(ds.ds_strategy->offset, 7.0);
  EXPECT_DOUBLE_EQ(ds.ds_strategy->forward_probability, 0.25);

  const auto parse = [](const char* text) {
    return scenario::parse_scenario(util::parse_json(text));
  };
  EXPECT_THROW(parse(R"({"relay_strategy": {"kind": "nope"}})"), std::invalid_argument);
  EXPECT_THROW(parse(R"({"relay_strategy": {"kind": "honest", "x": 1}})"),
               std::invalid_argument);
  // param only makes sense for equivocate / fixed-value.
  EXPECT_THROW(parse(R"({"relay_strategy": {"kind": "silent", "param": 1.0}})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"ds_strategy": {"kind": "nope"}})"), std::invalid_argument);
  EXPECT_THROW(parse(R"({"ds_strategy": {"kind": "equivocate", "forward_probability": 1.5}})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"ds_strategy": {"kind": "silent", "offset": 1.0}})"),
               std::invalid_argument);
}

TEST(ScenarioRun, StrategyKeysRejectedOnWrongDriver) {
  const auto run = [](const char* text) {
    return scenario::run_scenario(scenario::parse_scenario(util::parse_json(text)));
  };
  // relay_strategy belongs to the Oral-Messages p2p driver only.
  EXPECT_THROW(run(R"({"driver": "dgd", "problem": "quadratic", "iterations": 2,
                       "relay_strategy": {"kind": "silent"}})"),
               std::invalid_argument);
  EXPECT_THROW(run(R"({"driver": "p2p_auth", "problem": "quadratic", "iterations": 2,
                       "relay_strategy": {"kind": "silent"}})"),
               std::invalid_argument);
  // ds_strategy belongs to the Dolev-Strong p2p_auth driver only.
  EXPECT_THROW(run(R"({"driver": "p2p", "problem": "quadratic", "iterations": 2,
                       "ds_strategy": {"kind": "silent"}})"),
               std::invalid_argument);
  EXPECT_THROW(run(R"({"driver": "dsgd", "iterations": 2,
                       "ds_strategy": {"kind": "silent"}})"),
               std::invalid_argument);
}

TEST(ScenarioRun, P2pStrategiesExecuteAndHonestKindIsTransparent) {
  const char* common = R"("problem": "quadratic", "num_agents": 7, "dim": 2,
    "iterations": 15, "f": 1, "seed": 3, "box_halfwidth": 40.0,
    "faults": [{"agent": 0, "kind": "random"}])";
  const auto run = [&](const std::string& head) {
    return scenario::run_scenario(
        scenario::parse_scenario(util::parse_json("{" + head + ", " + common + "}")));
  };
  // An explicit honest strategy is bit-identical to leaving the key out.
  const auto plain = run(R"("driver": "p2p")");
  const auto honest = run(R"("driver": "p2p", "relay_strategy": {"kind": "honest"})");
  EXPECT_EQ(plain.traces.front().final_estimate(), honest.traces.front().final_estimate());
  // Misbehaving relays still yield a finite, converging run.
  const auto equiv = run(R"("driver": "p2p", "relay_strategy": {"kind": "equivocate"})");
  EXPECT_TRUE(std::isfinite(equiv.final_cost));
  EXPECT_GT(equiv.broadcast_messages, 0);
  const auto fixed =
      run(R"("driver": "p2p", "relay_strategy": {"kind": "fixed-value", "param": 3.0})");
  EXPECT_TRUE(std::isfinite(fixed.final_cost));

  const auto ds_plain = run(R"("driver": "p2p_auth")");
  const auto ds_honest = run(R"("driver": "p2p_auth", "ds_strategy": {"kind": "honest"})");
  EXPECT_EQ(ds_plain.traces.front().final_estimate(),
            ds_honest.traces.front().final_estimate());
  const auto ds_equiv = run(R"("driver": "p2p_auth", "ds_strategy": {"kind": "equivocate"})");
  EXPECT_TRUE(std::isfinite(ds_equiv.final_cost));
}

// ------------------------- async engine mode ---------------------------------

TEST(ScenarioSpec, AsyncBlockParsesAndValidates) {
  const auto spec = scenario::parse_scenario(util::parse_json(R"({
    "driver": "dgd", "problem": "quadratic",
    "async": {"quorum": 5, "deadline": 2.0, "staleness_cap": 3,
              "arrival": {"kind": "exponential", "scale": 0.8}}
  })"));
  ASSERT_TRUE(spec.async.has_value());
  EXPECT_EQ(spec.async->quorum, 5);
  EXPECT_DOUBLE_EQ(spec.async->deadline, 2.0);
  EXPECT_EQ(spec.async->staleness_cap, 3);
  EXPECT_EQ(spec.async->arrival.kind, "exponential");
  EXPECT_DOUBLE_EQ(spec.async->arrival.scale, 0.8);

  // An empty block is the full-quorum zero-staleness default config.
  const auto defaults =
      scenario::parse_scenario(util::parse_json(R"({"async": {}})"));
  ASSERT_TRUE(defaults.async.has_value());
  EXPECT_EQ(defaults.async->quorum, 0);
  EXPECT_EQ(defaults.async->staleness_cap, 0);

  const auto parse = [](const char* text) {
    return scenario::parse_scenario(util::parse_json(text));
  };
  EXPECT_THROW(parse(R"({"async": {"qourum": 3}})"), std::invalid_argument);
  EXPECT_THROW(parse(R"({"async": {"quorum": -1}})"), std::invalid_argument);
  EXPECT_THROW(parse(R"({"async": {"deadline": 0.0}})"), std::invalid_argument);
  EXPECT_THROW(parse(R"({"async": {"staleness_cap": -2}})"), std::invalid_argument);
  EXPECT_THROW(parse(R"({"async": {"arrival": {"kind": "bursty"}}})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"async": {"arrival": {"scale": 0.0}}})"), std::invalid_argument);
  // Lateness/loss live in the virtual clock: the synchronous perturbation
  // axes and drop injection do not compose with async mode.
  EXPECT_THROW(parse(R"({"async": {}, "axes": {"participation": 0.5}})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"async": {}, "drop_probability": 0.1})"), std::invalid_argument);
}

TEST(ScenarioRun, AsyncKeyRejectedOnWrongDriver) {
  const auto run = [](const char* text) {
    return scenario::run_scenario(scenario::parse_scenario(util::parse_json(text)));
  };
  EXPECT_THROW(run(R"({"driver": "p2p", "problem": "quadratic", "iterations": 2,
                       "async": {}})"),
               std::invalid_argument);
  EXPECT_THROW(run(R"({"driver": "p2p_auth", "problem": "quadratic", "iterations": 2,
                       "async": {}})"),
               std::invalid_argument);
  EXPECT_THROW(run(R"({"driver": "dsgd", "iterations": 2, "async": {}})"),
               std::invalid_argument);
}

TEST(ScenarioRun, AsyncResultCarriesTheCounters) {
  const auto result = scenario::run_scenario(scenario::parse_scenario(util::parse_json(R"({
    "driver": "dgd", "problem": "quadratic", "num_agents": 6, "dim": 2,
    "iterations": 10, "seed": 2, "box_halfwidth": 30.0,
    "async": {"quorum": 4, "staleness_cap": 2,
              "arrival": {"kind": "exponential", "scale": 0.7}}
  })")));
  ASSERT_TRUE(result.async_stats.has_value());
  EXPECT_EQ(result.async_stats->quorum_fires + result.async_stats->deadline_fires, 10);
  std::ostringstream json;
  scenario::write_result_json(result, json);
  EXPECT_NE(json.str().find("\"async\": {\"quorum_fires\": "), std::string::npos);
  std::ostringstream text;
  scenario::print_result(result, text);
  EXPECT_NE(text.str().find("async: quorum fires "), std::string::npos);
}

TEST(ScenarioRun, CommittedSpecsParse) {
  for (const auto* path :
       {"fig2_cwtm_reverse.json", "fig2_cge_random.json", "fig2_fault_free.json",
        "table1_cwtm_reverse.json", "scenario_churn_stragglers.json", "smoke_dgd.json",
        "smoke_dsgd.json", "smoke_p2p.json", "async_smoke.json"}) {
    SCOPED_TRACE(path);
    // ctest runs from the build tree; the specs live in the source tree.
    scenario::ScenarioSpec spec;
    ASSERT_NO_THROW(spec = scenario::load_scenario_file(std::string(ABFT_SPEC_DIR "/") + path));
    EXPECT_FALSE(spec.name.empty());
  }
}

}  // namespace

// Unit tests for abft::linalg — vector/matrix arithmetic, factorizations,
// least squares, and the Jacobi symmetric eigensolver.
#include <gtest/gtest.h>

#include "abft/linalg/decompose.hpp"
#include "abft/linalg/eigen_sym.hpp"
#include "abft/linalg/matrix.hpp"
#include "abft/linalg/vector.hpp"
#include "abft/util/rng.hpp"

namespace {

using namespace abft::linalg;

TEST(Vector, ConstructionAndIndexing) {
  Vector v(3);
  EXPECT_EQ(v.dim(), 3);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  v[1] = 2.5;
  EXPECT_DOUBLE_EQ(v[1], 2.5);
  EXPECT_THROW(v[3], std::invalid_argument);
  EXPECT_THROW(v[-1], std::invalid_argument);
  EXPECT_THROW(Vector(-1), std::invalid_argument);
}

TEST(Vector, Arithmetic) {
  const Vector a{1.0, 2.0};
  const Vector b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vector{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vector{-2.0, 3.0}));
  EXPECT_EQ(2.0 * a, (Vector{2.0, 4.0}));
  EXPECT_EQ(a / 2.0, (Vector{0.5, 1.0}));
  EXPECT_EQ(-a, (Vector{-1.0, -2.0}));
  EXPECT_THROW(a / 0.0, std::invalid_argument);
}

TEST(Vector, DimensionMismatchRejected) {
  Vector a{1.0, 2.0};
  const Vector b{1.0};
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(dot(a, b), std::invalid_argument);
  EXPECT_THROW(distance(a, b), std::invalid_argument);
}

TEST(Vector, NormsAndDot) {
  const Vector v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.squared_norm(), 25.0);
  EXPECT_DOUBLE_EQ(v.norm_inf(), 4.0);
  EXPECT_DOUBLE_EQ(dot(v, Vector{1.0, 1.0}), 7.0);
  EXPECT_DOUBLE_EQ(distance(v, Vector{0.0, 0.0}), 5.0);
}

TEST(Vector, AddScaled) {
  Vector v{1.0, 1.0};
  v.add_scaled(2.0, Vector{1.0, -1.0});
  EXPECT_EQ(v, (Vector{3.0, -1.0}));
}

TEST(Vector, MeanOfFamily) {
  const std::vector<Vector> family{Vector{0.0, 0.0}, Vector{2.0, 4.0}};
  EXPECT_EQ(mean(family), (Vector{1.0, 2.0}));
  EXPECT_THROW(mean(std::vector<Vector>{}), std::invalid_argument);
}

TEST(Vector, ApproxEqual) {
  EXPECT_TRUE(approx_equal(Vector{1.0, 2.0}, Vector{1.0 + 1e-12, 2.0}, 1e-9));
  EXPECT_FALSE(approx_equal(Vector{1.0, 2.0}, Vector{1.1, 2.0}, 1e-9));
  EXPECT_FALSE(approx_equal(Vector{1.0}, Vector{1.0, 2.0}, 1e-9));
}

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  m(1, 2) = 7.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 7.0);
  EXPECT_THROW(m(2, 0), std::invalid_argument);
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, RowColumnAccess) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.row(0), (Vector{1.0, 2.0}));
  EXPECT_EQ(m.col(1), (Vector{2.0, 4.0}));
  Matrix w = m;
  w.set_row(0, Vector{9.0, 8.0});
  EXPECT_EQ(w.row(0), (Vector{9.0, 8.0}));
}

TEST(Matrix, MultiplyAndTranspose) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{0.0, 1.0}, {1.0, 0.0}};
  EXPECT_EQ(a * b, (Matrix{{2.0, 1.0}, {4.0, 3.0}}));
  EXPECT_EQ(a.transpose(), (Matrix{{1.0, 3.0}, {2.0, 4.0}}));
  EXPECT_EQ(a * Vector({1.0, 1.0}), (Vector{3.0, 7.0}));
  EXPECT_THROW(a * Vector({1.0}), std::invalid_argument);
}

TEST(Matrix, SelectRowsAndGram) {
  const Matrix m{{1.0, 0.0}, {0.0, 1.0}, {2.0, 2.0}};
  const Matrix sel = m.select_rows({0, 2});
  EXPECT_EQ(sel, (Matrix{{1.0, 0.0}, {2.0, 2.0}}));
  const Matrix g = gram(m);
  EXPECT_EQ(g, (Matrix{{5.0, 4.0}, {4.0, 5.0}}));
}

TEST(Matrix, IdentityAndFrobenius) {
  EXPECT_EQ(Matrix::identity(2), (Matrix{{1.0, 0.0}, {0.0, 1.0}}));
  EXPECT_DOUBLE_EQ(frobenius_norm(Matrix{{3.0, 0.0}, {0.0, 4.0}}), 5.0);
}

TEST(Cholesky, FactorsSpdMatrix) {
  const Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  const auto l = cholesky(a);
  ASSERT_TRUE(l.has_value());
  const Matrix reconstructed = (*l) * l->transpose();
  EXPECT_NEAR(frobenius_norm(reconstructed - a), 0.0, 1e-12);
}

TEST(Cholesky, RejectsIndefiniteMatrix) {
  EXPECT_FALSE(cholesky(Matrix{{1.0, 2.0}, {2.0, 1.0}}).has_value());
  EXPECT_THROW(cholesky(Matrix(2, 3)), std::invalid_argument);
}

TEST(Cholesky, SolvesSpdSystem) {
  const Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  const Vector b{10.0, 9.0};
  const auto x = cholesky_solve(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((a * (*x) - b).norm(), 0.0, 1e-12);
}

TEST(Qr, ReconstructsAndOrthogonal) {
  abft::util::Rng rng(21);
  Matrix a(6, 3);
  for (int r = 0; r < 6; ++r) {
    for (int c = 0; c < 3; ++c) a(r, c) = rng.normal();
  }
  const auto [q, r] = qr_decompose(a);
  EXPECT_NEAR(frobenius_norm(q * r - a), 0.0, 1e-10);
  const Matrix qtq = q.transpose() * q;
  EXPECT_NEAR(frobenius_norm(qtq - Matrix::identity(3)), 0.0, 1e-10);
  // R upper triangular.
  for (int i = 1; i < 3; ++i) {
    for (int j = 0; j < i; ++j) EXPECT_DOUBLE_EQ(r(i, j), 0.0);
  }
}

TEST(LeastSquares, RecoversExactSolution) {
  const Matrix a{{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}};
  const Vector truth{2.0, -1.0};
  const Vector b = a * truth;
  const Vector x = least_squares(a, b);
  EXPECT_TRUE(approx_equal(x, truth, 1e-10));
}

TEST(LeastSquares, MatchesNormalEquationsOnNoisyData) {
  abft::util::Rng rng(33);
  Matrix a(10, 3);
  Vector b(10);
  for (int r = 0; r < 10; ++r) {
    for (int c = 0; c < 3; ++c) a(r, c) = rng.normal();
    b[r] = rng.normal();
  }
  const Vector x_qr = least_squares(a, b);
  // Normal equations: (A^T A) x = A^T b.
  const auto x_ne = cholesky_solve(gram(a), a.transpose() * b);
  ASSERT_TRUE(x_ne.has_value());
  EXPECT_TRUE(approx_equal(x_qr, *x_ne, 1e-8));
}

TEST(LeastSquares, RejectsRankDeficiency) {
  const Matrix a{{1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}};
  EXPECT_THROW(least_squares(a, Vector{1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(Solve, GaussianEliminationWithPivoting) {
  const Matrix a{{0.0, 2.0}, {1.0, 1.0}};  // needs a pivot swap
  const Vector b{4.0, 3.0};
  const auto x = solve(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_TRUE(approx_equal(*x, Vector{1.0, 2.0}, 1e-12));
}

TEST(Solve, SingularMatrixReturnsNullopt) {
  EXPECT_FALSE(solve(Matrix{{1.0, 2.0}, {2.0, 4.0}}, Vector{1.0, 2.0}).has_value());
}

TEST(EigenSym, DiagonalMatrixTrivial) {
  const auto eig = symmetric_eigen(Matrix{{3.0, 0.0}, {0.0, 1.0}});
  EXPECT_NEAR(eig.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[1], 3.0, 1e-12);
}

TEST(EigenSym, KnownTwoByTwo) {
  // Eigenvalues of [[2, 1], [1, 2]] are 1 and 3.
  const auto values = symmetric_eigenvalues(Matrix{{2.0, 1.0}, {1.0, 2.0}});
  EXPECT_NEAR(values[0], 1.0, 1e-10);
  EXPECT_NEAR(values[1], 3.0, 1e-10);
}

TEST(EigenSym, ReconstructionFromRandomSpectrum) {
  abft::util::Rng rng(55);
  const int n = 6;
  Matrix a(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      const double v = rng.normal();
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  const auto eig = symmetric_eigen(a);
  // A V = V diag(lambda).
  Matrix lambda(n, n);
  for (int i = 0; i < n; ++i) lambda(i, i) = eig.eigenvalues[i];
  EXPECT_NEAR(frobenius_norm(a * eig.eigenvectors - eig.eigenvectors * lambda), 0.0, 1e-8);
  // Eigenvalues ascending.
  for (int i = 1; i < n; ++i) EXPECT_LE(eig.eigenvalues[i - 1], eig.eigenvalues[i] + 1e-12);
}

TEST(EigenSym, RejectsAsymmetric) {
  EXPECT_THROW(symmetric_eigen(Matrix{{1.0, 2.0}, {0.0, 1.0}}), std::invalid_argument);
}

// Parameterized sweeps: QR reconstruction / least squares / Jacobi over a
// grid of shapes with random data.
struct ShapeParam {
  int rows;
  int cols;
};

class DecompositionSweep : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(DecompositionSweep, QrReconstructsAndSolves) {
  const auto [rows, cols] = GetParam();
  abft::util::Rng rng(static_cast<std::uint64_t>(rows * 100 + cols));
  Matrix a(rows, cols);
  Vector truth(cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) a(r, c) = rng.normal();
  }
  for (int c = 0; c < cols; ++c) truth[c] = rng.normal();
  const auto [q, r] = qr_decompose(a);
  EXPECT_LT(frobenius_norm(q * r - a), 1e-9 * std::max(1.0, frobenius_norm(a)));
  EXPECT_LT(frobenius_norm(q.transpose() * q - Matrix::identity(cols)), 1e-9);
  // Consistent system: least squares recovers the exact solution.
  const Vector b = a * truth;
  EXPECT_TRUE(approx_equal(least_squares(a, b), truth, 1e-7));
}

TEST_P(DecompositionSweep, GramIsSpdAndCholeskySolves) {
  const auto [rows, cols] = GetParam();
  abft::util::Rng rng(static_cast<std::uint64_t>(rows * 37 + cols));
  Matrix a(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) a(r, c) = rng.normal();
  }
  const Matrix g = gram(a);
  const auto l = cholesky(g);
  ASSERT_TRUE(l.has_value());  // random tall matrices are full rank a.s.
  Vector rhs(cols);
  for (int c = 0; c < cols; ++c) rhs[c] = rng.normal();
  const auto x = cholesky_solve(g, rhs);
  ASSERT_TRUE(x.has_value());
  EXPECT_LT((g * (*x) - rhs).norm(), 1e-8 * std::max(1.0, rhs.norm()));
}

TEST_P(DecompositionSweep, JacobiEigenOfGram) {
  const auto [rows, cols] = GetParam();
  abft::util::Rng rng(static_cast<std::uint64_t>(rows * 53 + cols));
  Matrix a(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) a(r, c) = rng.normal();
  }
  const Matrix g = gram(a);
  const auto values = symmetric_eigenvalues(g);
  // Gram matrices are PSD: all eigenvalues >= 0, and their sum is the trace.
  double trace = 0.0;
  for (int i = 0; i < cols; ++i) trace += g(i, i);
  double sum = 0.0;
  for (double v : values) {
    EXPECT_GE(v, -1e-9);
    sum += v;
  }
  EXPECT_NEAR(sum, trace, 1e-8 * std::max(1.0, trace));
}

INSTANTIATE_TEST_SUITE_P(Shapes, DecompositionSweep,
                         ::testing::Values(ShapeParam{4, 2}, ShapeParam{6, 3}, ShapeParam{8, 8},
                                           ShapeParam{12, 5}, ShapeParam{20, 10},
                                           ShapeParam{30, 4}),
                         [](const auto& info) {
                           return std::to_string(info.param.rows) + "x" +
                                  std::to_string(info.param.cols);
                         });

TEST(Rank, DetectsDeficiency) {
  EXPECT_EQ(column_rank(Matrix{{1.0, 2.0}, {2.0, 4.0}}), 1);
  EXPECT_EQ(column_rank(Matrix{{1.0, 0.0}, {0.0, 1.0}}), 2);
  EXPECT_EQ(column_rank(Matrix(3, 2)), 0);
}

}  // namespace

// Attack-path parity: every fault behaviour applied through the new in-place
// row mutation API (emit_into on batch rows) must match the legacy
// std::vector<Vector> path (emit) bit for bit — same payloads, same rng
// stream consumption — including when the output row aliases the true
// gradient, which is how the batched drivers call it.
#include <gtest/gtest.h>

#include <vector>

#include "abft/agg/batch.hpp"
#include "abft/attack/adaptive_faults.hpp"
#include "abft/attack/simple_faults.hpp"
#include "abft/util/rng.hpp"

namespace {

using namespace abft;
using attack::AttackContext;
using attack::FaultModel;
using attack::HonestRowsView;
using attack::RowAttackContext;
using linalg::Vector;

/// A deterministic but irregular honest family plus estimate/true gradient,
/// materialized both as Vectors (legacy) and as rows of a GradientBatch
/// (batched) so the two paths see identical inputs.
struct ParityFixture {
  int d = 7;
  Vector estimate;
  Vector true_gradient;
  std::vector<Vector> honest;
  agg::GradientBatch payloads;  // honest rows at 0..h-1, faulty row last
  std::vector<int> honest_rows;

  explicit ParityFixture(int honest_count = 4) {
    util::Rng rng(2024);
    estimate = Vector(d);
    true_gradient = Vector(d);
    for (int k = 0; k < d; ++k) {
      estimate[k] = rng.normal(0.0, 3.0);
      true_gradient[k] = rng.normal(0.5, 2.0);
    }
    payloads.reshape(honest_count + 1, d);
    for (int i = 0; i < honest_count; ++i) {
      Vector g(d);
      for (int k = 0; k < d; ++k) g[k] = rng.normal(static_cast<double>(i), 1.5);
      payloads.set_row(i, g);
      honest.push_back(std::move(g));
      honest_rows.push_back(i);
    }
  }

  [[nodiscard]] AttackContext legacy_context(int round = 3) const {
    return AttackContext{estimate, true_gradient, honest, round};
  }

  [[nodiscard]] RowAttackContext row_context(std::span<const double> tg, int round = 3) const {
    return RowAttackContext{estimate, tg,
                            HonestRowsView(payloads.data(), payloads.cols(), honest_rows), round};
  }
};

/// Runs both paths from identical rng states and checks payload and rng
/// stream parity.  `alias` additionally exercises the drivers' calling
/// convention where the output row holds (and aliases) the true gradient.
void expect_parity(const FaultModel& fault, int honest_count = 4, int round = 3) {
  for (const bool alias : {false, true}) {
    ParityFixture fx(honest_count);
    util::Rng legacy_rng(99);
    util::Rng row_rng(99);

    const auto legacy = fault.emit(fx.legacy_context(round), legacy_rng);

    const int faulty_row = static_cast<int>(fx.honest_rows.size());
    fx.payloads.set_row(faulty_row, fx.true_gradient);
    auto out = fx.payloads.row(faulty_row);
    std::vector<double> tg_copy(out.begin(), out.end());
    const std::span<const double> tg =
        alias ? std::span<const double>(out) : std::span<const double>(tg_copy);
    const bool sent = fault.emit_into(out, fx.row_context(tg, round), row_rng);

    ASSERT_EQ(sent, legacy.has_value()) << fault.name() << " alias=" << alias;
    if (sent) {
      for (int k = 0; k < fx.d; ++k) {
        EXPECT_EQ(out[static_cast<std::size_t>(k)], (*legacy)[k])
            << fault.name() << " alias=" << alias << " coordinate " << k;
      }
    }
    // Identical stream consumption: the generators must continue in lockstep.
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(legacy_rng.next_u64(), row_rng.next_u64()) << fault.name();
    }
  }
}

TEST(AttackParity, GradientReverse) { expect_parity(attack::GradientReverseFault{}); }

TEST(AttackParity, RandomGaussian) { expect_parity(attack::RandomGaussianFault{200.0}); }

TEST(AttackParity, Zero) { expect_parity(attack::ZeroFault{}); }

TEST(AttackParity, SignFlipScale) { expect_parity(attack::SignFlipScaleFault{3.5}); }

TEST(AttackParity, Constant) {
  ParityFixture fx;
  Vector payload(fx.d);
  for (int k = 0; k < fx.d; ++k) payload[k] = 0.25 * k - 1.0;
  expect_parity(attack::ConstantFault{payload});
}

TEST(AttackParity, RotatingOverRounds) {
  const attack::RotatingFault fault(5.0, 0.7);
  for (int round = 0; round < 5; ++round) expect_parity(fault, 4, round);
}

TEST(AttackParity, Silent) { expect_parity(attack::SilentFault{}); }

TEST(AttackParity, LittleIsEnough) { expect_parity(attack::LittleIsEnoughFault{1.5}); }

TEST(AttackParity, LittleIsEnoughNoHonest) {
  expect_parity(attack::LittleIsEnoughFault{1.5}, /*honest_count=*/0);
}

TEST(AttackParity, MeanReverse) { expect_parity(attack::MeanReverseFault{2.0}); }

TEST(AttackParity, MeanReverseNoHonest) {
  expect_parity(attack::MeanReverseFault{2.0}, /*honest_count=*/0);
}

TEST(AttackParity, MimicSmallest) { expect_parity(attack::MimicSmallestFault{}); }

TEST(AttackParity, MimicSmallestNoHonest) {
  expect_parity(attack::MimicSmallestFault{}, /*honest_count=*/0);
}

/// A third-party fault that only implements the legacy emit(): the base
/// class adapter must feed it a faithfully reconstructed legacy context.
class LegacyOnlyFault final : public FaultModel {
 public:
  [[nodiscard]] std::optional<Vector> emit(const AttackContext& context,
                                           util::Rng& rng) const override {
    // Mixes every context field with one rng draw so any adapter slip shows.
    Vector out = context.true_gradient;
    for (const auto& g : context.honest_gradients) out += g;
    out.add_scaled(0.5, context.estimate);
    out *= 1.0 + 0.01 * static_cast<double>(context.round);
    out[0] += rng.uniform();
    return out;
  }
  [[nodiscard]] std::string_view name() const noexcept override { return "legacy-only"; }
};

TEST(AttackParity, DefaultAdapterReconstructsLegacyContext) {
  expect_parity(LegacyOnlyFault{});
}

TEST(AttackParity, RowIndirectionInvariant) {
  // The same logical honest family, stored once at identity rows and once
  // scattered through a larger block, must yield identical payloads: all
  // that may matter is the sequence of rows the view resolves to.
  ParityFixture fx;
  const attack::LittleIsEnoughFault fault(0.8);
  agg::GradientBatch scattered(2 * static_cast<int>(fx.honest_rows.size()), fx.d);
  std::vector<int> scattered_rows;
  for (std::size_t i = 0; i < fx.honest_rows.size(); ++i) {
    const int slot = static_cast<int>(2 * i + 1);  // odd rows, same order
    scattered.set_row(slot, fx.payloads.row(fx.honest_rows[i]));
    scattered_rows.push_back(slot);
  }
  util::Rng rng_a(7);
  util::Rng rng_b(7);
  std::vector<double> out_a(static_cast<std::size_t>(fx.d));
  std::vector<double> out_b(static_cast<std::size_t>(fx.d));
  const std::vector<double> tg(fx.true_gradient.coefficients().begin(),
                               fx.true_gradient.coefficients().end());
  const HonestRowsView identity(fx.payloads.data(), fx.d, fx.honest_rows);
  const HonestRowsView indirect(scattered.data(), fx.d, scattered_rows);
  ASSERT_TRUE(fault.emit_into(out_a, RowAttackContext{fx.estimate, tg, identity, 0}, rng_a));
  ASSERT_TRUE(fault.emit_into(out_b, RowAttackContext{fx.estimate, tg, indirect, 0}, rng_b));
  EXPECT_EQ(out_a, out_b);
}

}  // namespace

// Unit and property tests for the resilience core: set distances,
// subset-minimization oracles, the (2f, eps)-redundancy analyzer, the
// Theorem-2 exhaustive algorithm, closed-form bounds, and the Theorem-1 /
// Lemma-1 lower-bound gadgets.
#include <gtest/gtest.h>

#include <numeric>

#include "abft/core/bounds.hpp"
#include "abft/core/certify.hpp"
#include "abft/core/distance.hpp"
#include "abft/core/exhaustive.hpp"
#include "abft/core/lowerbound.hpp"
#include "abft/core/redundancy.hpp"
#include "abft/core/subset_solver.hpp"
#include "abft/opt/quadratic.hpp"
#include "abft/util/combinatorics.hpp"
#include "abft/util/rng.hpp"

namespace {

using namespace abft;
using core::Vector;

TEST(Distance, PointToSet) {
  const std::vector<Vector> set{Vector{0.0, 0.0}, Vector{10.0, 0.0}};
  EXPECT_DOUBLE_EQ(core::distance_to_set(Vector{1.0, 0.0}, set), 1.0);
  EXPECT_DOUBLE_EQ(core::distance_to_set(Vector{6.0, 0.0}, set), 4.0);
  EXPECT_THROW(core::distance_to_set(Vector{0.0}, {}), std::invalid_argument);
}

TEST(Distance, HausdorffBetweenFiniteSets) {
  const std::vector<Vector> a{Vector{0.0}, Vector{1.0}};
  const std::vector<Vector> b{Vector{0.0}, Vector{5.0}};
  // sup over a of dist to b = 1 -> 0? dist(1, b) = 1; sup over b = dist(5, a) = 4.
  EXPECT_DOUBLE_EQ(core::hausdorff_distance(a, b), 4.0);
  EXPECT_DOUBLE_EQ(core::hausdorff_distance(a, a), 0.0);
}

TEST(Distance, HausdorffIsSymmetricAndTriangular) {
  util::Rng rng(5);
  auto random_set = [&rng]() {
    std::vector<Vector> set;
    const int size = 1 + static_cast<int>(rng.uniform_index(4));
    for (int i = 0; i < size; ++i) set.push_back(Vector{rng.normal(), rng.normal()});
    return set;
  };
  for (int trial = 0; trial < 25; ++trial) {
    const auto a = random_set();
    const auto b = random_set();
    const auto c = random_set();
    const double ab = core::hausdorff_distance(a, b);
    EXPECT_DOUBLE_EQ(ab, core::hausdorff_distance(b, a));
    EXPECT_LE(ab, core::hausdorff_distance(a, c) + core::hausdorff_distance(c, b) + 1e-12);
  }
}

TEST(MeanSubsetSolver, SolvesCentroids) {
  const core::MeanSubsetSolver solver(
      {Vector{0.0, 0.0}, Vector{2.0, 0.0}, Vector{0.0, 4.0}});
  EXPECT_EQ(solver.num_agents(), 3);
  EXPECT_EQ(solver.dim(), 2);
  EXPECT_EQ(solver.solve({0, 1}), (Vector{1.0, 0.0}));
  EXPECT_EQ(solver.solve({0, 1, 2}), (Vector{2.0 / 3.0, 4.0 / 3.0}));
}

TEST(SubsetValidation, RejectsBadSubsets) {
  const core::MeanSubsetSolver solver({Vector{0.0}, Vector{1.0}});
  EXPECT_THROW(solver.solve({}), std::invalid_argument);
  EXPECT_THROW(solver.solve({1, 0}), std::invalid_argument);   // unsorted
  EXPECT_THROW(solver.solve({0, 0}), std::invalid_argument);   // duplicate
  EXPECT_THROW(solver.solve({0, 2}), std::invalid_argument);   // out of range
}

TEST(CostSubsetSolver, MatchesClosedFormForSquaredDistances) {
  const opt::SquaredDistanceCost c0(Vector{0.0, 0.0});
  const opt::SquaredDistanceCost c1(Vector{4.0, 2.0});
  const core::CostSubsetSolver solver({&c0, &c1}, opt::Box::centered_cube(2, 10.0));
  EXPECT_TRUE(linalg::approx_equal(solver.solve({0, 1}), Vector{2.0, 1.0}, 1e-6));
}

TEST(CachedSubsetSolver, CachesAndReturnsSameAnswers) {
  const core::MeanSubsetSolver inner({Vector{0.0}, Vector{2.0}, Vector{4.0}});
  const core::CachedSubsetSolver cached(inner);
  const auto first = cached.solve({0, 2});
  const auto second = cached.solve({0, 2});
  EXPECT_EQ(first, second);
  EXPECT_EQ(cached.cache_size(), 1u);
  (void)cached.solve({0, 1});
  EXPECT_EQ(cached.cache_size(), 2u);
}

// --------------------------- redundancy -----------------------------------

TEST(Redundancy, ZeroWhenAllAgentsAgree) {
  // Identical centers: every subset minimizes at the same point.
  const core::MeanSubsetSolver solver(std::vector<Vector>(6, Vector{1.0, 1.0}));
  const auto report = core::measure_redundancy(solver, 2);
  EXPECT_DOUBLE_EQ(report.epsilon, 0.0);
  EXPECT_DOUBLE_EQ(report.epsilon_all_sizes, 0.0);
  EXPECT_GT(report.pairs_checked, 0);
}

TEST(Redundancy, HandComputableInstance) {
  // n = 3, f = 1: centers 0, 1, 2 on the line.  Sets S of size 2, subsets
  // S-hat of size 1.  Worst pair: S = {0, 2} (mean 1) vs {0} or {2} -> 1.
  const core::MeanSubsetSolver solver({Vector{0.0}, Vector{1.0}, Vector{2.0}});
  const auto report = core::measure_redundancy(solver, 1);
  EXPECT_DOUBLE_EQ(report.epsilon, 1.0);
  EXPECT_EQ(report.pairs_checked, 6);  // 3 sets x 2 subsets
}

TEST(Redundancy, FZeroReportsZero) {
  const core::MeanSubsetSolver solver({Vector{0.0}, Vector{5.0}});
  const auto report = core::measure_redundancy(solver, 0);
  EXPECT_DOUBLE_EQ(report.epsilon, 0.0);
  EXPECT_EQ(report.pairs_checked, 0);
}

TEST(Redundancy, EpsilonGrowsWithSpread) {
  util::Rng rng(31);
  double previous = 0.0;
  for (const double spread : {0.1, 1.0, 10.0}) {
    std::vector<Vector> centers;
    util::Rng local(7);  // same shape, different scale
    for (int i = 0; i < 6; ++i) {
      centers.push_back(Vector{spread * local.normal(), spread * local.normal()});
    }
    const core::MeanSubsetSolver solver(centers);
    const double epsilon = core::measure_redundancy(solver, 1).epsilon;
    EXPECT_GT(epsilon, previous);
    previous = epsilon;
  }
}

TEST(Redundancy, HasRedundancyPredicate) {
  const core::MeanSubsetSolver solver({Vector{0.0}, Vector{1.0}, Vector{2.0}});
  EXPECT_TRUE(core::has_redundancy(solver, 1, 1.0));
  EXPECT_FALSE(core::has_redundancy(solver, 1, 0.5));
}

TEST(Redundancy, SampledEstimateIsALowerBoundThatConverges) {
  util::Rng center_rng(61);
  std::vector<Vector> centers;
  for (int i = 0; i < 8; ++i) centers.push_back(Vector{center_rng.normal(), center_rng.normal()});
  const core::MeanSubsetSolver solver(centers);
  const double exact = core::measure_redundancy(solver, 2).epsilon;
  // Same seed for both estimates: the 2000-sample run replays the 5-sample
  // run's draws first, so its max can only grow.
  util::Rng rng_few(62);
  util::Rng rng_many(62);
  const double few = core::estimate_redundancy(solver, 2, 5, rng_few);
  const double many = core::estimate_redundancy(solver, 2, 2000, rng_many);
  EXPECT_LE(few, exact + 1e-12);
  EXPECT_LE(many, exact + 1e-12);
  EXPECT_GE(many, few - 1e-12);                   // superset of draws
  EXPECT_NEAR(many, exact, 0.05 * exact + 1e-9);  // dense sampling ~ exact
}

TEST(Redundancy, SampledEstimateValidation) {
  const core::MeanSubsetSolver solver({Vector{0.0}, Vector{1.0}, Vector{2.0}});
  util::Rng rng(1);
  EXPECT_DOUBLE_EQ(core::estimate_redundancy(solver, 0, 10, rng), 0.0);
  EXPECT_THROW(core::estimate_redundancy(solver, 1, 0, rng), std::invalid_argument);
}

TEST(Redundancy, RequiresEnoughAgents) {
  const core::MeanSubsetSolver solver({Vector{0.0}, Vector{1.0}});
  EXPECT_THROW(core::measure_redundancy(solver, 1), std::invalid_argument);  // n - 2f = 0
}

// --------------------------- exhaustive (Theorem 2) ------------------------

TEST(Exhaustive, FZeroReturnsGlobalArgmin) {
  const core::MeanSubsetSolver solver({Vector{0.0}, Vector{2.0}});
  const auto result = core::exhaustive_resilient_solve(solver, 0);
  EXPECT_EQ(result.output, (Vector{1.0}));
  EXPECT_EQ(result.chosen, (std::vector<int>{0, 1}));
}

TEST(Exhaustive, RejectsInfeasibleF) {
  const core::MeanSubsetSolver solver({Vector{0.0}, Vector{1.0}});
  EXPECT_THROW(core::exhaustive_resilient_solve(solver, 1), std::invalid_argument);  // f >= n/2
}

TEST(Exhaustive, ExactRecoveryUnderTwoFRedundancy) {
  // 2f-redundancy (eps = 0): all agents share one minimizer; with f of them
  // replaced by adversarial costs, the algorithm still returns it exactly
  // (Appendix B: (f, 0)-resilience == exact fault-tolerance).
  std::vector<Vector> centers(5, Vector{3.0, -1.0});  // n = 7, f = 2 honest core
  centers.push_back(Vector{100.0, 100.0});            // faulty
  centers.push_back(Vector{-100.0, 50.0});            // faulty
  const core::MeanSubsetSolver solver(centers);
  const auto result = core::exhaustive_resilient_solve(solver, 2);
  EXPECT_TRUE(linalg::approx_equal(result.output, Vector{3.0, -1.0}, 1e-9));
  EXPECT_NEAR(result.score, 0.0, 1e-12);
}

TEST(Exhaustive, TheoremTwoGuaranteeOnRandomInstances) {
  // Property: for every set G of n - f honest agents, the output is within
  // 2 * eps_received of argmin over G, where eps_received is the redundancy
  // of the *received* costs (honest + faulty), since the algorithm only sees
  // those.  We check the paper's actual guarantee: dist(output, argmin_G)
  // <= 2 * eps_honest where eps_honest comes from the honest instance —
  // via the proof's chain through r_S <= eps.
  util::Rng rng(47);
  for (int trial = 0; trial < 8; ++trial) {
    const int n = 6;
    const int f = 1;
    std::vector<Vector> centers;
    for (int i = 0; i < n - f; ++i) {
      centers.push_back(Vector{rng.normal(), rng.normal()});
    }
    // Byzantine agent's "received" cost: arbitrary center.
    centers.push_back(Vector{10.0 * rng.normal(), 10.0 * rng.normal()});
    const core::MeanSubsetSolver received(centers);

    // eps of the received instance (what the algorithm can rely on).
    const double eps = core::measure_redundancy(received, f).epsilon;
    const auto result = core::exhaustive_resilient_solve(received, f);

    // Honest set = {0, ..., n-f-1}.
    std::vector<int> honest(static_cast<std::size_t>(n - f));
    std::iota(honest.begin(), honest.end(), 0);
    const Vector x_honest = received.solve(honest);
    EXPECT_LE(linalg::distance(result.output, x_honest), 2.0 * eps + 1e-9)
        << "trial " << trial;
  }
}

TEST(Exhaustive, ScoreNeverExceedsHonestEpsilon) {
  // From the proof: r_S <= r_G <= eps for the honest G, so the chosen score
  // is bounded by the honest instance's redundancy.
  util::Rng rng(53);
  const int n = 7;
  const int f = 2;
  std::vector<Vector> centers;
  for (int i = 0; i < n; ++i) centers.push_back(Vector{rng.normal(), rng.normal()});
  const core::MeanSubsetSolver solver(centers);
  const double eps = core::measure_redundancy(solver, f).epsilon;
  const auto result = core::exhaustive_resilient_solve(solver, f);
  EXPECT_LE(result.score, eps + 1e-12);
}

// --------------------------- certification ---------------------------------

TEST(Certify, AcceptsTheoremTwoOutput) {
  util::Rng rng(83);
  std::vector<Vector> centers;
  for (int i = 0; i < 7; ++i) centers.push_back(Vector{rng.normal(), rng.normal()});
  const core::MeanSubsetSolver solver(centers);
  const double eps = core::measure_redundancy(solver, 2).epsilon;
  const auto result = core::exhaustive_resilient_solve(solver, 2);
  const auto cert = core::certify_resilience(solver, 2, result.output, 2.0 * eps);
  EXPECT_TRUE(cert.satisfied);
  EXPECT_LE(cert.worst_distance, 2.0 * eps + 1e-12);
  EXPECT_EQ(cert.subsets_checked, 21);  // C(7, 5)
  EXPECT_EQ(cert.worst_subset.size(), 5u);
}

TEST(Certify, RejectsFarOutput) {
  const core::MeanSubsetSolver solver({Vector{0.0}, Vector{1.0}, Vector{2.0}});
  const auto cert = core::certify_resilience(solver, 1, Vector{100.0}, 1.0);
  EXPECT_FALSE(cert.satisfied);
  EXPECT_GT(cert.worst_distance, 90.0);
}

TEST(Certify, ValidatesArguments) {
  const core::MeanSubsetSolver solver({Vector{0.0}, Vector{1.0}});
  EXPECT_THROW(core::certify_resilience(solver, 1, Vector{0.0}, 1.0), std::invalid_argument);
  EXPECT_THROW(core::certify_resilience(solver, 0, Vector{0.0, 0.0}, 1.0),
               std::invalid_argument);
  EXPECT_THROW(core::certify_resilience(solver, 0, Vector{0.0}, -1.0), std::invalid_argument);
}

// --------------------------- bounds ----------------------------------------

TEST(Bounds, FeasibilityIsLemmaOne) {
  EXPECT_TRUE(core::resilience_feasible(3, 1));
  EXPECT_FALSE(core::resilience_feasible(2, 1));
  EXPECT_FALSE(core::resilience_feasible(6, 3));
  EXPECT_TRUE(core::resilience_feasible(7, 3));
}

TEST(Bounds, Theorem4MatchesFormula) {
  const auto bound = core::cge_bound_theorem4(10, 1, 1.0, 1.0);
  // alpha = 1 - 0.1 * 3 = 0.7; D = 4 * 1 * 1 / 0.7.
  EXPECT_TRUE(bound.valid);
  EXPECT_NEAR(bound.alpha, 0.7, 1e-12);
  EXPECT_NEAR(bound.factor, 4.0 / 0.7, 1e-9);
}

TEST(Bounds, Theorem4InvalidWhenAlphaNonPositive) {
  // The paper's own experiment: n=6, f=1, mu=2, gamma=0.712 -> alpha < 0.
  const auto bound = core::cge_bound_theorem4(6, 1, 2.0, 0.712);
  EXPECT_FALSE(bound.valid);
  EXPECT_LT(bound.alpha, 0.0);
}

TEST(Bounds, Theorem5ValidOnPaperInstance) {
  const auto bound = core::cge_bound_theorem5(6, 1, 2.0, 0.712);
  EXPECT_TRUE(bound.valid);
  EXPECT_NEAR(bound.alpha, 1.0 - (1.0 / 6.0) * (1.0 + 2.0 / 0.712), 1e-12);
  EXPECT_NEAR(bound.factor, 3.0 * 4.0 * 2.0 / (bound.alpha * 6.0 * 0.712), 1e-9);
}

TEST(Bounds, Theorem5RequiresFAtMostThirdOfN) {
  const auto bound = core::cge_bound_theorem5(8, 3, 1.0, 1.0);
  EXPECT_FALSE(bound.valid);  // 3f = 9 > 8
}

TEST(Bounds, Theorem5TighterThanTheorem4WhenBothValid) {
  // With small f/n both alphas are positive; Theorem 5's alpha is larger.
  const auto t4 = core::cge_bound_theorem4(20, 1, 1.0, 1.0);
  const auto t5 = core::cge_bound_theorem5(20, 1, 1.0, 1.0);
  ASSERT_TRUE(t4.valid && t5.valid);
  EXPECT_GT(t5.alpha, t4.alpha);
}

TEST(Bounds, Theorem6ThresholdAndFactor) {
  const double threshold = core::cwtm_lambda_threshold(4, 2.0, 1.0);
  EXPECT_NEAR(threshold, 1.0 / 4.0, 1e-12);  // gamma / (mu sqrt(d)) = 1 / (2*2)
  const auto valid = core::cwtm_bound_theorem6(10, 4, 2.0, 1.0, 0.1);
  EXPECT_TRUE(valid.valid);
  // D' = 2 * 2 * 10 * 2 * 0.1 / (1 - 2*2*0.1) = 8 / 0.6.
  EXPECT_NEAR(valid.factor, 8.0 / 0.6, 1e-9);
  const auto invalid = core::cwtm_bound_theorem6(10, 4, 2.0, 1.0, 0.3);
  EXPECT_FALSE(invalid.valid);
}

TEST(Bounds, GammaGreaterThanMuRejected) {
  EXPECT_THROW(core::cge_bound_theorem4(10, 1, 1.0, 2.0), std::invalid_argument);
}

TEST(Bounds, Lemma4Formulas) {
  const auto bounds = core::lemma4_bounds(6, 1, 2.0, 0.089);
  EXPECT_NEAR(bounds.subset_sum_bound, 4.0 * 2.0 * 0.089, 1e-12);
  EXPECT_NEAR(bounds.single_bound, 2.0 * 4.0 * 2.0 * 0.089, 1e-12);
  EXPECT_THROW(core::lemma4_bounds(6, 3, 1.0, 0.1), std::invalid_argument);  // f > n/3
}

// --------------------------- lower bounds ----------------------------------

TEST(LowerBound, GapInstanceGeometry) {
  const auto gap = core::make_gap_instance(6, 1, 0.5, 0.1);
  EXPECT_EQ(gap.costs.size(), 6u);
  EXPECT_EQ(gap.set_s.size(), 5u);
  EXPECT_EQ(gap.set_shat.size(), 4u);
  EXPECT_EQ(gap.set_b.size(), 1u);
  // Construction promises: argmin over S and over B u S-hat sit 2(eps+delta)
  // apart, symmetric around the S-hat minimizer (0).
  EXPECT_NEAR(core::subset_minimizer(gap, gap.set_s), gap.x_s, 1e-12);
  std::vector<int> b_shat = gap.set_shat;
  b_shat.insert(b_shat.end(), gap.set_b.begin(), gap.set_b.end());
  std::sort(b_shat.begin(), b_shat.end());
  EXPECT_NEAR(core::subset_minimizer(gap, b_shat), gap.x_b_shat, 1e-12);
  EXPECT_NEAR(gap.x_b_shat - gap.x_s, 2.0 * (0.5 + 0.1), 1e-12);
}

TEST(LowerBound, NoOutputSatisfiesBothWorlds) {
  // Theorem 1's contradiction: whatever the deterministic algorithm outputs,
  // it violates (f, eps)-resilience in one of the two indistinguishable
  // worlds.  Scan candidate outputs across the whole relevant interval.
  const auto gap = core::make_gap_instance(5, 2, 0.25, 0.05);
  for (double candidate = -2.0; candidate <= 2.0; candidate += 0.01) {
    EXPECT_FALSE(core::output_satisfies_both_worlds(gap, candidate));
  }
}

TEST(LowerBound, ShrinkingDeltaApproachesTightness) {
  // As delta -> 0 the two admissible intervals close to within any margin:
  // with delta = 0 they would just touch — eps is exactly the threshold.
  const auto gap = core::make_gap_instance(4, 1, 1.0, 1e-9);
  EXPECT_NEAR(gap.x_b_shat - gap.x_s, 2.0, 1e-6);
}

TEST(LowerBound, RejectsDegenerateParameters) {
  EXPECT_THROW(core::make_gap_instance(4, 2, 0.1, 0.1), std::invalid_argument);  // f >= n/2
  EXPECT_THROW(core::make_gap_instance(4, 0, 0.1, 0.1), std::invalid_argument);  // f < 1
  EXPECT_THROW(core::make_gap_instance(4, 1, 0.1, 0.0), std::invalid_argument);  // delta = 0
}

}  // namespace

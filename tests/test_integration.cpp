// End-to-end integration tests: the paper's Table-1 scenario, the Theorem-2
// algorithm on received (partly Byzantine) costs checked against the
// (f, eps)-resilience definition, server-based vs peer-to-peer equivalence,
// and elimination mid-run.
#include <gtest/gtest.h>

#include <numeric>

#include "abft/agg/registry.hpp"
#include "abft/attack/adaptive_faults.hpp"
#include "abft/attack/simple_faults.hpp"
#include "abft/core/exhaustive.hpp"
#include "abft/core/redundancy.hpp"
#include "abft/core/subset_solver.hpp"
#include "abft/p2p/p2p_dgd.hpp"
#include "abft/regress/problem.hpp"
#include "abft/sim/dgd.hpp"
#include "abft/util/combinatorics.hpp"

namespace {

using namespace abft;
using linalg::Vector;

constexpr double kPaperEpsilon = 0.0890;

struct PaperScenario {
  regress::RegressionProblem problem = regress::RegressionProblem::paper_instance();
  opt::HarmonicSchedule schedule{1.5};
  Vector x_h = problem.subset_minimizer({1, 2, 3, 4, 5});

  [[nodiscard]] sim::DgdConfig config(int iterations) {
    // Section 5 parameters: eta_t = 1.5/(t+1), W = [-1000, 1000]^2,
    // x0 = (-0.0085, -0.5643), agent 1 Byzantine.
    return sim::DgdConfig{Vector{-0.0085, -0.5643}, opt::Box::centered_cube(2, 1000.0),
                          &schedule, iterations, 1, 2024};
  }

  [[nodiscard]] sim::Trace run(const attack::FaultModel& fault,
                               const agg::GradientAggregator& aggregator, int iterations = 500) {
    auto roster = sim::honest_roster(problem.costs());
    sim::assign_fault(roster, 0, fault);
    sim::DgdSimulation simulation(std::move(roster), config(iterations));
    return simulation.run(aggregator);
  }
};

TEST(Table1, CgeWithinEpsilonUnderBothAttacks) {
  PaperScenario scenario;
  const auto cge = agg::make_aggregator("cge");
  const attack::GradientReverseFault reverse;
  const attack::RandomGaussianFault random(200.0);
  EXPECT_LT(linalg::distance(scenario.run(reverse, *cge).final_estimate(), scenario.x_h),
            kPaperEpsilon);
  EXPECT_LT(linalg::distance(scenario.run(random, *cge).final_estimate(), scenario.x_h),
            kPaperEpsilon);
}

TEST(Table1, CwtmWithinEpsilonUnderBothAttacks) {
  PaperScenario scenario;
  const auto cwtm = agg::make_aggregator("cwtm");
  const attack::GradientReverseFault reverse;
  const attack::RandomGaussianFault random(200.0);
  EXPECT_LT(linalg::distance(scenario.run(reverse, *cwtm).final_estimate(), scenario.x_h),
            kPaperEpsilon);
  EXPECT_LT(linalg::distance(scenario.run(random, *cwtm).final_estimate(), scenario.x_h),
            kPaperEpsilon);
}

TEST(Table1, PlainAveragingFailsUnderRandomAttack) {
  PaperScenario scenario;
  const auto average = agg::make_aggregator("average");
  const attack::RandomGaussianFault random(200.0);
  EXPECT_GT(linalg::distance(scenario.run(random, *average).final_estimate(), scenario.x_h),
            kPaperEpsilon);
}

TEST(Table1, FaultFreeReferenceConverges) {
  // The blue curve of Figure 2: omit the faulty agent, average the rest.
  PaperScenario scenario;
  auto roster = sim::honest_roster(scenario.problem.costs({1, 2, 3, 4, 5}));
  auto config = scenario.config(1500);
  config.f = 0;
  sim::DgdSimulation simulation(std::move(roster), std::move(config));
  const auto average = agg::make_aggregator("average");
  const auto trace = simulation.run(*average);
  EXPECT_LT(linalg::distance(trace.final_estimate(), scenario.x_h), 5e-3);
}

TEST(Table1, LossDecreasesForRobustFilters) {
  PaperScenario scenario;
  const auto costs = scenario.problem.costs({1, 2, 3, 4, 5});
  const opt::AggregateCost honest_loss(costs);
  const auto cge = agg::make_aggregator("cge");
  const attack::GradientReverseFault reverse;
  const auto losses = scenario.run(reverse, *cge, 500).loss_series(honest_loss);
  EXPECT_LT(losses.back(), 0.1 * losses.front());
}

TEST(Table1, AdaptiveAttacksStayBoundedForCgeAndCwtm) {
  // Beyond the paper: omniscient attacks must not drag the robust filters
  // outside a small multiple of epsilon on the redundant paper instance.
  PaperScenario scenario;
  const attack::LittleIsEnoughFault lie(1.5);
  const attack::MeanReverseFault mean_reverse(3.0);
  const attack::MimicSmallestFault mimic;
  for (const char* name : {"cge", "cwtm"}) {
    const auto rule = agg::make_aggregator(name);
    for (const attack::FaultModel* fault :
         std::initializer_list<const attack::FaultModel*>{&lie, &mean_reverse, &mimic}) {
      const auto trace = scenario.run(*fault, *rule, 800);
      EXPECT_LT(linalg::distance(trace.final_estimate(), scenario.x_h), 5.0 * kPaperEpsilon)
          << name << " vs " << fault->name();
    }
  }
}

TEST(ExhaustiveAlgorithm, SatisfiesResilienceDefinitionOnReceivedCosts) {
  // Definition 2 checked literally: the output must be within 2*eps of the
  // argmin of EVERY (n - f)-subset of the received costs (the server cannot
  // know which subset is honest).  eps is the received instance's
  // redundancy; Theorem 2 guarantees 2*eps.
  const auto problem = regress::RegressionProblem::paper_instance();
  // Received cost from the Byzantine agent 1: a corrupted observation.
  linalg::Matrix a = problem.design();
  Vector b = problem.observations();
  b[0] = 5.0;  // adversarial cost function, same quadratic family
  const regress::RegressionProblem received(a, b);
  const regress::RegressionSubsetSolver solver(received);
  const double eps = core::measure_redundancy(solver, 1).epsilon;
  const auto result = core::exhaustive_resilient_solve(solver, 1);
  util::for_each_combination(6, 5, [&](const std::vector<int>& subset) {
    EXPECT_LE(linalg::distance(result.output, solver.solve(subset)), 2.0 * eps + 1e-9);
    return true;
  });
}

TEST(ServerVsP2p, IdenticalTrajectoriesUnderDeterministicAttack) {
  // gradient-reverse is deterministic, so the server-based run and every
  // honest node of the peer-to-peer run must produce identical estimates.
  PaperScenario scenario;
  const attack::GradientReverseFault reverse;
  const auto cge = agg::make_aggregator("cge");
  const int iterations = 120;

  auto roster = sim::honest_roster(scenario.problem.costs());
  sim::assign_fault(roster, 0, reverse);
  sim::DgdSimulation server_sim(roster, scenario.config(iterations));
  const auto server_trace = server_sim.run(*cge);

  const p2p::P2pDgdConfig p2p_config{Vector{-0.0085, -0.5643},
                                     opt::Box::centered_cube(2, 1000.0), &scenario.schedule,
                                     iterations, 1, 2024};
  const auto p2p_result = p2p::run_p2p_dgd(roster, p2p_config, *cge);

  for (const auto& trace : p2p_result.traces) {
    ASSERT_EQ(trace.estimates.size(), server_trace.estimates.size());
    for (std::size_t t = 0; t < trace.estimates.size(); ++t) {
      EXPECT_TRUE(linalg::approx_equal(trace.estimates[t], server_trace.estimates[t], 1e-12))
          << "diverged at iteration " << t;
    }
  }
}

TEST(Elimination, SilentFaultRemovedThenExactConvergence) {
  PaperScenario scenario;
  const attack::SilentFault silent;
  auto roster = sim::honest_roster(scenario.problem.costs());
  sim::assign_fault(roster, 0, silent);
  sim::DgdSimulation simulation(std::move(roster), scenario.config(600));
  const auto cge = agg::make_aggregator("cge");
  const auto trace = simulation.run(*cge);
  EXPECT_EQ(trace.eliminated_agents, 1);
  // After elimination the system is fault-free over H: converges to x_H.
  EXPECT_LT(linalg::distance(trace.final_estimate(), scenario.x_h), 1e-3);
}

TEST(Elimination, CrashInjectionToleratedWhenWithinF) {
  // An honest agent whose first message is dropped gets eliminated; the run
  // must still land within epsilon of the surviving honest aggregate.
  PaperScenario scenario;
  auto roster = sim::honest_roster(scenario.problem.costs());
  auto config = scenario.config(600);
  config.drop_probability = 0.002;  // rare drops; a few eliminations
  sim::DgdSimulation simulation(std::move(roster), std::move(config));
  const auto cge = agg::make_aggregator("cge");
  const auto trace = simulation.run(*cge);
  // All agents honest here: whatever survives, the estimate stays close to
  // the full aggregate minimizer thanks to the instance's redundancy.
  const auto x_all = scenario.problem.subset_minimizer({});
  EXPECT_LT(linalg::distance(trace.final_estimate(), x_all), 3.0 * kPaperEpsilon);
}

TEST(RobustFilterSweep, AllRegistryRulesStayBoundedOnPaperInstance) {
  PaperScenario scenario;
  const attack::RandomGaussianFault random(200.0);
  for (const auto name : agg::aggregator_names()) {
    if (name == "average") continue;  // demonstrated to fail above
    if (name == "krum" || name == "multikrum" || name == "bulyan") {
      continue;  // need n > 2f + 2 / n >= 4f + 3 with room; n = 6, f = 1 is
                 // fine for krum but the point here is the common bound:
    }
    const auto rule = agg::make_aggregator(name);
    const auto trace = scenario.run(random, *rule, 500);
    EXPECT_LT(linalg::distance(trace.final_estimate(), scenario.x_h), 1.0)
        << "rule " << name << " diverged";
  }
}

// Seed-sweep property: Table 1's claim (dist < eps for CGE and CWTM under
// the random attack) must hold for every Byzantine randomness, not one
// lucky draw.
class Table1SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Table1SeedSweep, RobustFiltersWithinEpsilonForEverySeed) {
  const auto problem = regress::RegressionProblem::paper_instance();
  const Vector x_h = problem.subset_minimizer({1, 2, 3, 4, 5});
  const opt::HarmonicSchedule schedule(1.5);
  const attack::RandomGaussianFault random(200.0);
  for (const char* filter : {"cge", "cwtm"}) {
    auto roster = sim::honest_roster(problem.costs());
    sim::assign_fault(roster, 0, random);
    sim::DgdConfig config{Vector{-0.0085, -0.5643}, opt::Box::centered_cube(2, 1000.0),
                          &schedule, 500, 1, GetParam()};
    sim::DgdSimulation simulation(std::move(roster), std::move(config));
    const auto rule = agg::make_aggregator(filter);
    const auto trace = simulation.run(*rule);
    EXPECT_LT(linalg::distance(trace.final_estimate(), x_h), kPaperEpsilon)
        << filter << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Table1SeedSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u),
                         [](const auto& info) { return "seed" + std::to_string(info.param); });

TEST(RotatingAttack, RobustFiltersRideOutTimeVaryingDirections) {
  // A direction that rotates each round defeats any "drop the fixed bad
  // direction" heuristic; CGE and CWTM must still land within a few eps.
  PaperScenario scenario;
  const attack::RotatingFault fault(50.0, 0.7);
  for (const char* filter : {"cge", "cwtm"}) {
    const auto rule = agg::make_aggregator(filter);
    const auto trace = scenario.run(fault, *rule, 800);
    EXPECT_LT(linalg::distance(trace.final_estimate(), scenario.x_h), 3.0 * kPaperEpsilon)
        << filter;
  }
}

TEST(KrumFamily, BoundedOnPaperInstance) {
  // n = 6 > 2f + 2 for f = 1, so Krum and Multi-Krum apply (Bulyan needs
  // n >= 7).  Krum picks a single honest gradient; with heterogeneous agent
  // costs that biases the fixed point, but it must remain bounded.
  PaperScenario scenario;
  const attack::RandomGaussianFault random(200.0);
  for (const char* name : {"krum", "multikrum"}) {
    const auto rule = agg::make_aggregator(name);
    const auto trace = scenario.run(random, *rule, 500);
    EXPECT_LT(linalg::distance(trace.final_estimate(), scenario.x_h), 1.5) << name;
  }
}

}  // namespace

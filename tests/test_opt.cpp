// Unit tests for abft::opt — cost functions (values + analytic gradients
// validated against finite differences), aggregates, the box constraint W,
// step schedules, and the projected-gradient reference solver.
#include <gtest/gtest.h>

#include <cmath>

#include "abft/opt/box.hpp"
#include "abft/opt/cost.hpp"
#include "abft/opt/quadratic.hpp"
#include "abft/opt/schedule.hpp"
#include "abft/opt/solver.hpp"
#include "abft/util/rng.hpp"

namespace {

using namespace abft;
using opt::Vector;

TEST(ResidualSquaredCost, ValueMatchesDefinition) {
  const opt::ResidualSquaredCost q(Vector{2.0, -1.0}, 3.0);
  // Q(x) = (3 - (2x0 - x1))^2 at x = (1, 1): (3 - 1)^2 = 4.
  EXPECT_DOUBLE_EQ(q.value(Vector{1.0, 1.0}), 4.0);
  EXPECT_DOUBLE_EQ(q.value(Vector{1.5, 0.0}), 0.0);
}

TEST(ResidualSquaredCost, GradientMatchesFiniteDifferences) {
  abft::util::Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    Vector row(3);
    for (int i = 0; i < 3; ++i) row[i] = rng.normal();
    const opt::ResidualSquaredCost q(row, rng.normal());
    Vector x(3);
    for (int i = 0; i < 3; ++i) x[i] = rng.normal();
    EXPECT_TRUE(linalg::approx_equal(q.gradient(x), opt::numerical_gradient(q, x), 1e-5));
  }
}

TEST(ResidualSquaredCost, LipschitzConstantIsTwiceRowNormSquared) {
  const opt::ResidualSquaredCost q(Vector{3.0, 4.0}, 0.0);
  EXPECT_DOUBLE_EQ(q.gradient_lipschitz(), 2.0 * 25.0);
}

TEST(SquaredDistanceCost, MinimizesAtCenter) {
  const opt::SquaredDistanceCost q(Vector{1.0, -2.0});
  EXPECT_DOUBLE_EQ(q.value(Vector{1.0, -2.0}), 0.0);
  EXPECT_DOUBLE_EQ(q.value(Vector{2.0, -2.0}), 1.0);
  EXPECT_EQ(q.gradient(Vector{1.0, -2.0}), (Vector{0.0, 0.0}));
  EXPECT_EQ(q.gradient(Vector{2.0, -2.0}), (Vector{2.0, 0.0}));
}

TEST(SquaredDistanceCost, GradientMatchesFiniteDifferences) {
  const opt::SquaredDistanceCost q(Vector{0.5, 0.25, -1.0});
  const Vector x{1.0, 2.0, 3.0};
  EXPECT_TRUE(linalg::approx_equal(q.gradient(x), opt::numerical_gradient(q, x), 1e-5));
}

TEST(GeneralQuadraticCost, ValueGradientAndValidation) {
  const linalg::Matrix p{{2.0, 0.0}, {0.0, 4.0}};
  const opt::GeneralQuadraticCost q(p, Vector{2.0, 4.0}, 1.0);
  // Q(x) = x0^2 + 2 x1^2 - 2 x0 - 4 x1 + 1, minimized at (1, 1).
  EXPECT_DOUBLE_EQ(q.value(Vector{1.0, 1.0}), -2.0);
  EXPECT_EQ(q.gradient(Vector{1.0, 1.0}), (Vector{0.0, 0.0}));
  const Vector x{3.0, -1.0};
  EXPECT_TRUE(linalg::approx_equal(q.gradient(x), opt::numerical_gradient(q, x), 1e-5));
  EXPECT_THROW(opt::GeneralQuadraticCost(linalg::Matrix{{1.0, 2.0}, {0.0, 1.0}}, Vector{0.0, 0.0}),
               std::invalid_argument);
}

TEST(AggregateCost, SumsValuesAndGradients) {
  const opt::SquaredDistanceCost a(Vector{0.0, 0.0});
  const opt::SquaredDistanceCost b(Vector{2.0, 2.0});
  const opt::AggregateCost sum({&a, &b});
  const Vector x{1.0, 1.0};
  EXPECT_DOUBLE_EQ(sum.value(x), a.value(x) + b.value(x));
  EXPECT_EQ(sum.gradient(x), a.gradient(x) + b.gradient(x));
  EXPECT_EQ(sum.num_terms(), 2);
}

TEST(AggregateCost, WeightsApply) {
  const opt::SquaredDistanceCost a(Vector{0.0});
  const opt::AggregateCost weighted({&a}, {3.0});
  EXPECT_DOUBLE_EQ(weighted.value(Vector{2.0}), 12.0);
}

TEST(AggregateCost, RejectsBadInput) {
  const opt::SquaredDistanceCost a(Vector{0.0});
  const opt::SquaredDistanceCost b(Vector{0.0, 0.0});
  EXPECT_THROW(opt::AggregateCost({}), std::invalid_argument);
  EXPECT_THROW(opt::AggregateCost({&a, &b}), std::invalid_argument);
  EXPECT_THROW(opt::AggregateCost({&a}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(opt::AggregateCost({nullptr}), std::invalid_argument);
}

TEST(Box, ProjectionClampsCoordinatewise) {
  const auto box = opt::Box::centered_cube(2, 1.0);
  EXPECT_EQ(box.project(Vector{2.0, -3.0}), (Vector{1.0, -1.0}));
  EXPECT_EQ(box.project(Vector{0.5, 0.5}), (Vector{0.5, 0.5}));
}

TEST(Box, ProjectionIsIdempotentAndNonExpansive) {
  const opt::Box box(Vector{-1.0, 0.0}, Vector{2.0, 5.0});
  abft::util::Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    Vector x(2);
    Vector y(2);
    for (int i = 0; i < 2; ++i) {
      x[i] = rng.uniform(-10.0, 10.0);
      y[i] = rng.uniform(-10.0, 10.0);
    }
    const Vector px = box.project(x);
    EXPECT_EQ(box.project(px), px);
    EXPECT_TRUE(box.contains(px, 1e-12));
    // Non-expansion: ||P(x) - P(y)|| <= ||x - y||.
    EXPECT_LE(linalg::distance(px, box.project(y)), linalg::distance(x, y) + 1e-12);
  }
}

TEST(Box, ContainsAndGeometry) {
  const opt::Box box(Vector{0.0, 0.0}, Vector{2.0, 2.0});
  EXPECT_TRUE(box.contains(Vector{1.0, 1.0}));
  EXPECT_FALSE(box.contains(Vector{3.0, 1.0}));
  EXPECT_DOUBLE_EQ(box.diameter(), std::sqrt(8.0));
  // Farthest corner from (0, 0) is (2, 2).
  EXPECT_DOUBLE_EQ(box.max_distance_from(Vector{0.0, 0.0}), std::sqrt(8.0));
}

TEST(Box, RejectsInvertedBounds) {
  EXPECT_THROW(opt::Box(Vector{1.0}, Vector{0.0}), std::invalid_argument);
  EXPECT_THROW(opt::Box::centered_cube(0, 1.0), std::invalid_argument);
}

TEST(Schedules, HarmonicMatchesPaper) {
  const opt::HarmonicSchedule schedule(1.5);
  EXPECT_DOUBLE_EQ(schedule.step(0), 1.5);
  EXPECT_DOUBLE_EQ(schedule.step(2), 0.5);
  EXPECT_TRUE(schedule.is_diminishing());
  EXPECT_THROW((void)schedule.step(-1), std::invalid_argument);
  EXPECT_THROW(opt::HarmonicSchedule(0.0), std::invalid_argument);
}

TEST(Schedules, HarmonicSatisfiesTheorem3Conditions) {
  // sum eta_t diverges while sum eta_t^2 converges: check numerically that
  // partial sums behave accordingly.
  const opt::HarmonicSchedule schedule(1.0);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int t = 0; t < 100000; ++t) {
    sum += schedule.step(t);
    sum_sq += schedule.step(t) * schedule.step(t);
  }
  EXPECT_GT(sum, 10.0);                 // diverging (log growth)
  EXPECT_NEAR(sum_sq, 1.644934, 1e-4);  // pi^2 / 6
}

TEST(Schedules, ConstantAndPolynomial) {
  const opt::ConstantSchedule constant(0.01);
  EXPECT_DOUBLE_EQ(constant.step(1000), 0.01);
  EXPECT_FALSE(constant.is_diminishing());

  const opt::PolynomialSchedule poly(2.0, 0.75);
  EXPECT_DOUBLE_EQ(poly.step(0), 2.0);
  EXPECT_GT(poly.step(10), poly.step(100));
  EXPECT_TRUE(poly.is_diminishing());
  EXPECT_THROW(opt::PolynomialSchedule(1.0, 0.4), std::invalid_argument);
  EXPECT_THROW(opt::PolynomialSchedule(1.0, 1.5), std::invalid_argument);
}

TEST(Minimize, SolvesStronglyConvexQuadratic) {
  const opt::SquaredDistanceCost q(Vector{0.3, -0.7});
  const auto box = opt::Box::centered_cube(2, 10.0);
  const auto result = opt::minimize(q, box, Vector{5.0, 5.0});
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(linalg::approx_equal(result.minimizer, Vector{0.3, -0.7}, 1e-6));
  EXPECT_NEAR(result.value, 0.0, 1e-10);
}

TEST(Minimize, RespectsActiveBoxConstraint) {
  // Unconstrained minimum at (3, 0) sits outside the unit box: the
  // constrained minimum is the projection (1, 0).
  const opt::SquaredDistanceCost q(Vector{3.0, 0.0});
  const auto box = opt::Box::centered_cube(2, 1.0);
  const auto result = opt::minimize(q, box, Vector{0.0, 0.0});
  EXPECT_TRUE(linalg::approx_equal(result.minimizer, Vector{1.0, 0.0}, 1e-6));
}

TEST(Minimize, AggregateOfResidualCostsMatchesLeastSquaresSolution) {
  // Two residual costs whose aggregate minimizes at the interpolating point.
  const opt::ResidualSquaredCost q1(Vector{1.0, 0.0}, 2.0);
  const opt::ResidualSquaredCost q2(Vector{0.0, 1.0}, -1.0);
  const opt::AggregateCost sum({&q1, &q2});
  const auto box = opt::Box::centered_cube(2, 10.0);
  const auto result = opt::minimize(sum, box, Vector{0.0, 0.0});
  EXPECT_TRUE(linalg::approx_equal(result.minimizer, Vector{2.0, -1.0}, 1e-6));
}

TEST(Minimize, ValidatesArguments) {
  const opt::SquaredDistanceCost q(Vector{0.0, 0.0});
  const auto box = opt::Box::centered_cube(3, 1.0);
  EXPECT_THROW(opt::minimize(q, box, Vector{0.0, 0.0, 0.0}), std::invalid_argument);
}

TEST(NumericalGradient, RejectsNonPositiveStep) {
  const opt::SquaredDistanceCost q(Vector{0.0});
  EXPECT_THROW(opt::numerical_gradient(q, Vector{1.0}, 0.0), std::invalid_argument);
}

}  // namespace

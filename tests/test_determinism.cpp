// Thread-count invariance: with a fixed seed, every driver must produce
// bit-identical traces at agg_threads = 1 and agg_threads = 4.  The round
// loops parallelize honest-gradient computation, fault emission, the p2p
// per-source broadcasts and per-node filters, and the coordinate/pair loops
// inside the kernels — all of it over disjoint batch rows and per-agent rng
// streams, so the partition must never leak into the results.
#include <gtest/gtest.h>

#include <vector>

#include "abft/agg/registry.hpp"
#include "abft/attack/adaptive_faults.hpp"
#include "abft/attack/simple_faults.hpp"
#include "abft/learn/dataset.hpp"
#include "abft/learn/dsgd.hpp"
#include "abft/learn/softmax.hpp"
#include "abft/opt/quadratic.hpp"
#include "abft/opt/schedule.hpp"
#include "abft/p2p/dolev_strong.hpp"
#include "abft/p2p/p2p_dgd.hpp"
#include "abft/regress/problem.hpp"
#include "abft/sim/dgd.hpp"

namespace {

using namespace abft;
using linalg::Vector;

void expect_identical_traces(const sim::Trace& a, const sim::Trace& b, const char* label) {
  ASSERT_EQ(a.estimates.size(), b.estimates.size()) << label;
  EXPECT_EQ(a.eliminated_agents, b.eliminated_agents) << label;
  for (std::size_t t = 0; t < a.estimates.size(); ++t) {
    ASSERT_EQ(a.estimates[t], b.estimates[t]) << label << ": diverged at iteration " << t;
  }
}

// --------------------------- server-based DGD -------------------------------

/// A mixed roster: honest quadratic agents, an omniscient fault (reads every
/// honest row), an rng-consuming fault, and a silent one (exercises
/// elimination + ingest compaction), plus network drop injection.
sim::Trace run_dgd(std::string_view rule, int agg_threads) {
  static const opt::HarmonicSchedule schedule(0.4);
  std::vector<opt::SquaredDistanceCost> costs;
  for (int i = 0; i < 11; ++i) {
    Vector center{1.0 * i - 4.0, 0.5 * i, -0.25 * i};
    costs.emplace_back(center);
  }
  std::vector<const opt::CostFunction*> cost_ptrs;
  for (const auto& c : costs) cost_ptrs.push_back(&c);
  auto roster = sim::honest_roster(cost_ptrs);
  const attack::LittleIsEnoughFault omniscient(1.2);
  const attack::RandomGaussianFault gaussian(50.0);
  const attack::SilentFault silent;
  sim::assign_fault(roster, 2, omniscient);
  sim::assign_fault(roster, 5, gaussian);
  sim::assign_fault(roster, 7, silent);

  // f = 2 with drop injection: the silent agent's elimination lowers f to 1
  // in round 0 and every subsequent drop lowers it further, so krum's
  // n > 2f + 2 precondition holds along the whole shrinking run.
  sim::DgdConfig config{Vector{3.0, -3.0, 1.0},
                        opt::Box::centered_cube(3, 50.0),
                        &schedule,
                        60,
                        2,
                        1234,
                        0.02,
                        false,
                        agg_threads};
  sim::DgdSimulation simulation(std::move(roster), std::move(config));
  const auto aggregator = agg::make_aggregator(rule);
  return simulation.run(*aggregator);
}

TEST(Determinism, DgdThreadCountInvariant) {
  for (const auto rule : {"cwtm", "krum", "geomed", "cge"}) {
    const auto serial = run_dgd(rule, 1);
    const auto parallel = run_dgd(rule, 4);
    expect_identical_traces(serial, parallel, rule);
  }
}

TEST(Determinism, DgdRepeatedParallelRunsIdentical) {
  const auto a = run_dgd("cwtm", 4);
  const auto b = run_dgd("cwtm", 4);
  expect_identical_traces(a, b, "cwtm repeat");
}

// --------------------------- D-SGD ------------------------------------------

learn::DsgdSeries run_dsgd(int agg_threads) {
  learn::SyntheticOptions options;
  options.num_classes = 3;
  options.feature_dim = 6;
  options.examples_per_class = 30;
  options.noise_stddev = 0.3;
  util::Rng data_rng(31);
  const auto full = learn::make_synthetic(options, data_rng);
  util::Rng split_rng(32);
  auto split = learn::split_train_test(full, 0.2, split_rng);
  util::Rng shard_rng(33);
  const auto shards = learn::shard(split.train, 8, shard_rng);
  std::vector<learn::AgentFault> faults(8, learn::AgentFault::kHonest);
  faults[0] = learn::AgentFault::kGradientReverse;
  faults[3] = learn::AgentFault::kLabelFlip;

  const learn::SoftmaxRegression model(options.feature_dim, options.num_classes);
  learn::DsgdConfig config;
  config.iterations = 50;
  config.batch_size = 8;
  config.step_size = 0.05;
  config.f = 2;
  config.eval_interval = 10;
  config.momentum = 0.5;
  config.seed = 88;
  config.agg_threads = agg_threads;
  const auto aggregator = agg::make_aggregator("cwtm");
  return learn::run_dsgd(model, Vector(model.param_dim()), shards, faults, split.test,
                         *aggregator, config);
}

TEST(Determinism, DsgdThreadCountInvariant) {
  const auto serial = run_dsgd(1);
  const auto parallel = run_dsgd(4);
  EXPECT_EQ(serial.final_params, parallel.final_params);
  EXPECT_EQ(serial.train_loss, parallel.train_loss);
  EXPECT_EQ(serial.test_accuracy, parallel.test_accuracy);
  EXPECT_EQ(serial.eval_iterations, parallel.eval_iterations);
}

// --------------------------- peer-to-peer DGD -------------------------------

p2p::P2pDgdResult run_p2p(int agg_threads, bool authenticated) {
  static const regress::RegressionProblem problem = regress::RegressionProblem::paper_instance();
  static const opt::HarmonicSchedule schedule(1.5);
  auto roster = sim::honest_roster(problem.costs());
  const attack::GradientReverseFault fault;
  sim::assign_fault(roster, 0, fault);
  p2p::P2pDgdConfig config{Vector{0.0, 0.0}, opt::Box::centered_cube(2, 1000.0), &schedule,
                           40,  1,           5,
                           agg_threads};
  const auto aggregator = agg::make_aggregator("cge");
  if (authenticated) {
    const p2p::EquivocatingDsStrategy equivocate(20.0, 0.5);
    return p2p::run_p2p_dgd_authenticated(roster, config, *aggregator, &equivocate);
  }
  const p2p::EquivocateStrategy equivocate(50.0);
  return p2p::run_p2p_dgd(roster, config, *aggregator, &equivocate);
}

TEST(Determinism, P2pThreadCountInvariant) {
  for (const bool authenticated : {false, true}) {
    const auto serial = run_p2p(1, authenticated);
    const auto parallel = run_p2p(4, authenticated);
    EXPECT_EQ(serial.broadcast_messages, parallel.broadcast_messages);
    ASSERT_EQ(serial.traces.size(), parallel.traces.size());
    for (std::size_t k = 0; k < serial.traces.size(); ++k) {
      expect_identical_traces(serial.traces[k], parallel.traces[k],
                              authenticated ? "p2p-auth" : "p2p-om");
    }
  }
}

// --------------------------- kernel level -----------------------------------

TEST(Determinism, BatchedKernelsThreadCountInvariant) {
  // Every registry rule, pooled 4-thread workspace vs serial workspace, on
  // an adversarially clustered batch (exercises the Gram cancellation guard).
  util::Rng rng(4242);
  const int n = 24;
  const int d = 257;  // odd tail exercises the chunked kernels' remainders
  agg::GradientBatch batch(n, d);
  for (int i = 0; i < n; ++i) {
    auto row = batch.row(i);
    for (int k = 0; k < d; ++k) {
      row[static_cast<std::size_t>(k)] = 100.0 + rng.normal(0.0, i < n / 2 ? 1e-4 : 1.0);
    }
  }
  agg::ThreadPool pool(4);
  for (const auto name : agg::aggregator_names()) {
    const auto aggregator = agg::make_aggregator(name);
    agg::AggregatorWorkspace serial_ws;
    agg::AggregatorWorkspace pooled_ws;
    pooled_ws.parallel_threads = 4;
    pooled_ws.pool = &pool;
    Vector serial_out;
    Vector pooled_out;
    aggregator->aggregate_into(serial_out, batch, 5, serial_ws);
    aggregator->aggregate_into(pooled_out, batch, 5, pooled_ws);
    EXPECT_EQ(serial_out, pooled_out) << name;
  }
}

}  // namespace

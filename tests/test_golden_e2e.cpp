// Golden end-to-end regression tests: short CWTM / Krum / GeoMed runs on the
// quadratic and linear-regression workloads with checked-in final-cost
// goldens.  The tolerances are tight enough that a driver or kernel refactor
// that silently changes convergence (a dropped gradient, a reordered filter
// input, a mis-threaded rng stream) fails loudly, yet loose enough to absorb
// ISA-level floating-point noise (-march=native fma contraction differs
// across hosts).  Regenerate goldens only for an *intentional* semantic
// change, by printing honest_cost(final_estimate) from the fixtures below.
#include <gtest/gtest.h>

#include <vector>

#include "abft/agg/registry.hpp"
#include "abft/attack/simple_faults.hpp"
#include "abft/opt/quadratic.hpp"
#include "abft/opt/schedule.hpp"
#include "abft/regress/problem.hpp"
#include "abft/sim/dgd.hpp"

namespace {

using namespace abft;
using linalg::Vector;

struct GoldenCase {
  std::string_view rule;
  double final_cost;
  double tolerance;
};

// --------------------------- quadratic workload -----------------------------

/// 7 squared-distance agents with deliberately irregular centers (evenly
/// spaced centers create exact pairwise-distance ties, and a selection rule
/// like Krum then flips on ISA-level fp noise), gradient-reverse on the
/// last, f = 1; cost measured over the 6 honest agents.
double quadratic_final_cost(std::string_view rule, int agg_threads) {
  const opt::HarmonicSchedule schedule(0.4);
  std::vector<opt::SquaredDistanceCost> costs;
  for (int i = 0; i < 7; ++i) {
    const double a = 1.37 * i - 3.1 + 0.211 * i * i;
    const double b = 0.53 * i - 1.45 - 0.097 * i * i;
    costs.emplace_back(Vector{a, b});
  }
  std::vector<const opt::CostFunction*> ptrs;
  for (auto& c : costs) ptrs.push_back(&c);
  const attack::GradientReverseFault fault;
  auto roster = sim::honest_roster(ptrs);
  sim::assign_fault(roster, 6, fault);
  sim::DgdConfig config{Vector{8.0, -8.0}, opt::Box::centered_cube(2, 20.0), &schedule,
                        300,               1,
                        77,                0.0,
                        false,             agg_threads};
  sim::DgdSimulation simulation(std::move(roster), std::move(config));
  const auto aggregator = agg::make_aggregator(rule);
  const auto trace = simulation.run(*aggregator);
  const opt::AggregateCost honest_cost(
      std::vector<const opt::CostFunction*>(ptrs.begin(), ptrs.end() - 1));
  return honest_cost.value(trace.final_estimate());
}

TEST(GoldenE2e, QuadraticFinalCosts) {
  const GoldenCase cases[] = {
      {"cwtm", 115.525689080964, 1e-3},
      {"krum", 123.794918833372, 1e-3},
      {"geomed", 123.492099419682, 1e-3},
  };
  for (const auto& c : cases) {
    EXPECT_NEAR(quadratic_final_cost(c.rule, 1), c.final_cost, c.tolerance) << c.rule;
  }
}

TEST(GoldenE2e, QuadraticFinalCostsThreaded) {
  // The goldens hold verbatim under round-level parallelism.
  const GoldenCase cases[] = {
      {"cwtm", 115.525689080964, 1e-3},
      {"geomed", 123.492099419682, 1e-3},
  };
  for (const auto& c : cases) {
    EXPECT_NEAR(quadratic_final_cost(c.rule, 4), c.final_cost, c.tolerance) << c.rule;
  }
}

// --------------------------- regression workload ----------------------------

/// The Appendix-J linear-regression instance (n = 6, d = 2), with
/// gradient-reverse on agent 0 and f = 1; cost measured over agents 1..5.
double regression_final_cost(std::string_view rule, double* distance_to_xh = nullptr) {
  const auto problem = regress::RegressionProblem::paper_instance();
  const opt::HarmonicSchedule schedule(1.5);
  const attack::GradientReverseFault fault;
  auto roster = sim::honest_roster(problem.costs());
  sim::assign_fault(roster, 0, fault);
  sim::DgdConfig config{Vector{0.0, 0.0}, opt::Box::centered_cube(2, 1000.0), &schedule,
                        400,              1,
                        11,               0.0,
                        false,            1};
  sim::DgdSimulation simulation(std::move(roster), std::move(config));
  const auto aggregator = agg::make_aggregator(rule);
  const auto trace = simulation.run(*aggregator);
  const std::vector<int> honest_agents{1, 2, 3, 4, 5};
  const opt::AggregateCost honest_cost(problem.costs(honest_agents));
  if (distance_to_xh != nullptr) {
    *distance_to_xh =
        linalg::distance(trace.final_estimate(), problem.subset_minimizer(honest_agents));
  }
  return honest_cost.value(trace.final_estimate());
}

TEST(GoldenE2e, RegressionFinalCosts) {
  const GoldenCase cases[] = {
      {"cwtm", 0.00241259789444486, 1e-5},
      {"krum", 1.82829150050707, 1e-3},
      {"geomed", 0.00243838127920856, 1e-5},
  };
  for (const auto& c : cases) {
    EXPECT_NEAR(regression_final_cost(c.rule), c.final_cost, c.tolerance) << c.rule;
  }
}

TEST(GoldenE2e, RegressionTrimmedRulesApproachHonestMinimizer) {
  // Convergence sanity on top of the goldens: CWTM and GeoMed land close to
  // the honest minimizer x_H (the (2f, eps)-resilience behaviour the paper
  // proves); the honest optimum cost is ~0.00211.
  for (const auto rule : {"cwtm", "geomed"}) {
    double dist = 0.0;
    const double cost = regression_final_cost(rule, &dist);
    EXPECT_LT(dist, 0.02) << rule;
    EXPECT_LT(cost, 0.0025) << rule;
  }
}

}  // namespace

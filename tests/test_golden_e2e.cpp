// Golden end-to-end regression tests: short exact-mode runs of every
// registry rule on the quadratic workload (plus the original CWTM / Krum /
// GeoMed regression-workload goldens) with checked-in final costs.  The
// tolerances are tight enough that a driver or kernel refactor that
// silently changes convergence (a dropped gradient, a reordered filter
// input, a mis-threaded rng stream) fails loudly, yet loose enough to
// absorb ISA-level floating-point noise (-march=native fma contraction
// differs across hosts).  With every rule pinned in exact mode, any drift
// the relaxed-parity fast mode introduces end-to-end is detectable against
// these numbers — the FastMode tests below bound it explicitly.
//
// Regenerate goldens only for an *intentional* semantic change:
//
//   ABFT_PRINT_GOLDENS=1 ./test_golden_e2e --gtest_filter='*RegenerateGoldens*'
//
// prints every fixture's current value in copy-pasteable form.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "abft/agg/registry.hpp"
#include "abft/attack/simple_faults.hpp"
#include "abft/opt/quadratic.hpp"
#include "abft/opt/schedule.hpp"
#include "abft/regress/problem.hpp"
#include "abft/sim/dgd.hpp"
#include "abft/util/rng.hpp"

namespace {

using namespace abft;
using linalg::Vector;

struct GoldenCase {
  std::string_view rule;
  double final_cost;
  double tolerance;
};

// --------------------------- quadratic workload -----------------------------

/// 7 squared-distance agents with deliberately irregular centers (evenly
/// spaced centers create exact pairwise-distance ties, and a selection rule
/// like Krum then flips on ISA-level fp noise), gradient-reverse on the
/// last, f = 1; cost measured over the 6 honest agents.
double quadratic_final_cost(std::string_view rule, int agg_threads,
                            agg::AggMode mode = agg::AggMode::exact) {
  const opt::HarmonicSchedule schedule(0.4);
  std::vector<opt::SquaredDistanceCost> costs;
  for (int i = 0; i < 7; ++i) {
    const double a = 1.37 * i - 3.1 + 0.211 * i * i;
    const double b = 0.53 * i - 1.45 - 0.097 * i * i;
    costs.emplace_back(Vector{a, b});
  }
  std::vector<const opt::CostFunction*> ptrs;
  for (auto& c : costs) ptrs.push_back(&c);
  const attack::GradientReverseFault fault;
  auto roster = sim::honest_roster(ptrs);
  sim::assign_fault(roster, 6, fault);
  sim::DgdConfig config{Vector{8.0, -8.0}, opt::Box::centered_cube(2, 20.0), &schedule,
                        300,               1,
                        77,                0.0,
                        false,             agg_threads};
  config.agg_mode = mode;
  sim::DgdSimulation simulation(std::move(roster), std::move(config));
  const auto aggregator = agg::make_aggregator(rule);
  const auto trace = simulation.run(*aggregator);
  const opt::AggregateCost honest_cost(
      std::vector<const opt::CostFunction*>(ptrs.begin(), ptrs.end() - 1));
  return honest_cost.value(trace.final_estimate());
}

TEST(GoldenE2e, QuadraticFinalCosts) {
  const GoldenCase cases[] = {
      {"cwtm", 115.525689080964, 1e-3},
      {"krum", 123.794918833372, 1e-3},
      {"geomed", 123.492099419682, 1e-3},
  };
  for (const auto& c : cases) {
    EXPECT_NEAR(quadratic_final_cost(c.rule, 1), c.final_cost, c.tolerance) << c.rule;
  }
}

TEST(GoldenE2e, QuadraticFinalCostsAllRemainingRules) {
  // The rules the original golden set skipped, pinned in exact mode so any
  // fast-mode (or kernel-refactor) drift in them is detectable end-to-end.
  // n = 7, f = 1 satisfies every precondition (bulyan's n >= 4f + 3
  // included).  CGE returns the sum of n - f gradients, so its trajectory
  // (and golden) differs in scale from the mean-like rules — intentional.
  const GoldenCase cases[] = {
      {"average", 127.680687386035, 1e-3},
      {"cwmed", 123.115333504718, 1e-3},
      {"bulyan", 120.729426921158, 1e-3},
      {"multikrum", 104.961947167433, 1e-3},
      {"cge", 104.959761666667, 1e-3},
      {"cclip", 120.70991087775, 1e-3},
      {"normclip", 113.14116852692, 1e-3},
      {"gmom", 107.115878901948, 1e-3},
  };
  for (const auto& c : cases) {
    EXPECT_NEAR(quadratic_final_cost(c.rule, 1), c.final_cost, c.tolerance) << c.rule;
  }
}

TEST(GoldenE2e, QuadraticFastModeWithinEnvelope) {
  // The relaxed-parity fast mode on the same fixture: per-round kernel
  // drift is tolerance-bounded (tests/test_agg_fast.cpp), so after 300
  // rounds the final honest cost must still land within a small envelope of
  // the exact golden — far inside the eps-resilience envelope of Theorem 3,
  // where rule-to-rule differences are of order 1e0 on this fixture.
  const GoldenCase cases[] = {
      {"cwtm", 115.525689080964, 1e-3},
      {"cwmed", 123.115333504718, 1e-3},
      {"krum", 123.794918833372, 1e-3},
      {"geomed", 123.492099419682, 1e-2},
      {"gmom", 107.115878901948, 1e-2},
      {"bulyan", 120.729426921158, 1e-3},
      {"multikrum", 104.961947167433, 1e-3},
      {"cclip", 120.70991087775, 1e-2},
      {"average", 127.680687386035, 1e-3},
      {"cge", 104.959761666667, 1e-3},
      {"normclip", 113.14116852692, 1e-3},
  };
  for (const auto& c : cases) {
    EXPECT_NEAR(quadratic_final_cost(c.rule, 1, agg::AggMode::fast), c.final_cost,
                c.tolerance)
        << c.rule << " (fast mode)";
  }
}

/// High-dimensional variant (d = 1100): the d = 2 fixtures above route fast
/// mode back to the exact kernels (the laned Weiszfeld engages at d >= 16,
/// the AVX-512 Gram tile needs a full 1024-wide chunk), so they cannot see
/// a bug in those kernels.  Here every fast kernel actually runs.  Exact
/// and fast final costs are compared in-process, so no checked-in golden is
/// needed — the assertion IS the envelope.
double quadratic_highdim_final_cost(std::string_view rule, agg::AggMode mode) {
  constexpr int kDim = 1100;
  const opt::HarmonicSchedule schedule(0.4);
  util::Rng rng(2027);
  std::vector<opt::SquaredDistanceCost> costs;
  for (int i = 0; i < 7; ++i) {
    std::vector<double> center(kDim);
    for (auto& c : center) c = rng.normal();
    costs.emplace_back(Vector(std::move(center)));
  }
  std::vector<const opt::CostFunction*> ptrs;
  for (auto& c : costs) ptrs.push_back(&c);
  const attack::GradientReverseFault fault;
  auto roster = sim::honest_roster(ptrs);
  sim::assign_fault(roster, 6, fault);
  std::vector<double> start(kDim, 3.0);
  sim::DgdConfig config{Vector(std::move(start)),
                        opt::Box::centered_cube(kDim, 20.0),
                        &schedule,
                        120,
                        1,
                        77,
                        0.0,
                        false,
                        1};
  config.agg_mode = mode;
  sim::DgdSimulation simulation(std::move(roster), std::move(config));
  const auto aggregator = agg::make_aggregator(rule);
  const auto trace = simulation.run(*aggregator);
  const opt::AggregateCost honest_cost(
      std::vector<const opt::CostFunction*>(ptrs.begin(), ptrs.end() - 1));
  return honest_cost.value(trace.final_estimate());
}

TEST(GoldenE2e, QuadraticHighDimFastStaysInEnvelope) {
  // Every rule with a genuine fast fork at this shape: the Weiszfeld pair,
  // the window-sweep Bulyan, the Gram-kernel selection rules, the laned
  // trimmed/clipped sums.
  for (const auto rule :
       {"cwtm", "cwmed", "krum", "multikrum", "geomed", "gmom", "bulyan", "cclip"}) {
    const double exact = quadratic_highdim_final_cost(rule, agg::AggMode::exact);
    const double fast = quadratic_highdim_final_cost(rule, agg::AggMode::fast);
    EXPECT_NEAR(fast, exact, 1e-5 * (1.0 + exact)) << rule << " (high-dim fast envelope)";
  }
}

TEST(GoldenE2e, QuadraticFinalCostsThreaded) {
  // The goldens hold verbatim under round-level parallelism.
  const GoldenCase cases[] = {
      {"cwtm", 115.525689080964, 1e-3},
      {"geomed", 123.492099419682, 1e-3},
  };
  for (const auto& c : cases) {
    EXPECT_NEAR(quadratic_final_cost(c.rule, 4), c.final_cost, c.tolerance) << c.rule;
  }
}

// --------------------------- regression workload ----------------------------

/// The Appendix-J linear-regression instance (n = 6, d = 2), with
/// gradient-reverse on agent 0 and f = 1; cost measured over agents 1..5.
double regression_final_cost(std::string_view rule, double* distance_to_xh = nullptr,
                             agg::AggMode mode = agg::AggMode::exact) {
  const auto problem = regress::RegressionProblem::paper_instance();
  const opt::HarmonicSchedule schedule(1.5);
  const attack::GradientReverseFault fault;
  auto roster = sim::honest_roster(problem.costs());
  sim::assign_fault(roster, 0, fault);
  sim::DgdConfig config{Vector{0.0, 0.0}, opt::Box::centered_cube(2, 1000.0), &schedule,
                        400,              1,
                        11,               0.0,
                        false,            1};
  config.agg_mode = mode;
  sim::DgdSimulation simulation(std::move(roster), std::move(config));
  const auto aggregator = agg::make_aggregator(rule);
  const auto trace = simulation.run(*aggregator);
  const std::vector<int> honest_agents{1, 2, 3, 4, 5};
  const opt::AggregateCost honest_cost(problem.costs(honest_agents));
  if (distance_to_xh != nullptr) {
    *distance_to_xh =
        linalg::distance(trace.final_estimate(), problem.subset_minimizer(honest_agents));
  }
  return honest_cost.value(trace.final_estimate());
}

TEST(GoldenE2e, RegressionFinalCosts) {
  const GoldenCase cases[] = {
      {"cwtm", 0.00241259789444486, 1e-5},
      {"krum", 1.82829150050707, 1e-3},
      {"geomed", 0.00243838127920856, 1e-5},
  };
  for (const auto& c : cases) {
    EXPECT_NEAR(regression_final_cost(c.rule), c.final_cost, c.tolerance) << c.rule;
  }
}

TEST(GoldenE2e, RegressionFinalCostsAllRemainingRules) {
  // Exact-mode goldens for the rules the original regression set skipped.
  // Bulyan is absent: the paper instance has n = 6 < 4f + 3.  CGE's golden
  // reflects its sum-not-mean output scale driving a different trajectory.
  const GoldenCase cases[] = {
      {"average", 0.0318296229643472, 1e-5},
      {"cwmed", 0.00266254802276085, 1e-5},
      {"multikrum", 0.00211278558909893, 1e-5},
      {"cge", 0.00211192186161183, 1e-5},
      {"cclip", 0.00227409924744552, 1e-5},
      {"normclip", 0.00281059664509269, 1e-5},
      {"gmom", 0.124952225193065, 1e-4},
  };
  for (const auto& c : cases) {
    EXPECT_NEAR(regression_final_cost(c.rule), c.final_cost, c.tolerance) << c.rule;
  }
}

TEST(GoldenE2e, RegressionFastModeWithinEnvelope) {
  // Fast mode on the regression fixture: the trimmed rules must still land
  // on the honest minimizer's cost plateau (the paper's (2f, eps)-resilience
  // behaviour), within a slightly relaxed tolerance for the Weiszfeld rule.
  EXPECT_NEAR(regression_final_cost("cwtm", nullptr, agg::AggMode::fast),
              0.00241259789444486, 1e-5);
  EXPECT_NEAR(regression_final_cost("geomed", nullptr, agg::AggMode::fast),
              0.00243838127920856, 1e-4);
  EXPECT_NEAR(regression_final_cost("cclip", nullptr, agg::AggMode::fast),
              0.00227409924744552, 1e-4);
}

TEST(GoldenE2e, RegenerateGoldens) {
  // Not a check: prints every fixture's current value in copy-pasteable
  // form when ABFT_PRINT_GOLDENS is set (see the file comment), so an
  // intentional semantic change can refresh the tables above mechanically.
  if (std::getenv("ABFT_PRINT_GOLDENS") == nullptr) {
    GTEST_SKIP() << "set ABFT_PRINT_GOLDENS=1 to print regeneration values";
  }
  const char* all_rules[] = {"average", "cge",    "cwtm",     "cwmed", "krum", "multikrum",
                             "geomed",  "gmom",   "bulyan",   "normclip", "cclip"};
  std::printf("--- quadratic workload (exact) ---\n");
  for (const auto rule : all_rules) {
    std::printf("  {\"%s\", %.15g, tol},\n", rule, quadratic_final_cost(rule, 1));
  }
  std::printf("--- quadratic workload (fast) ---\n");
  for (const auto rule : all_rules) {
    std::printf("  {\"%s\", %.15g, tol},\n", rule,
                quadratic_final_cost(rule, 1, agg::AggMode::fast));
  }
  std::printf("--- regression workload (exact; bulyan needs n >= 4f+3) ---\n");
  for (const auto rule : all_rules) {
    if (std::string_view(rule) == "bulyan") continue;
    std::printf("  {\"%s\", %.15g, tol},\n", rule, regression_final_cost(rule));
  }
  std::printf("--- regression workload (fast) ---\n");
  for (const auto rule : all_rules) {
    if (std::string_view(rule) == "bulyan") continue;
    std::printf("  {\"%s\", %.15g, tol},\n", rule,
                regression_final_cost(rule, nullptr, agg::AggMode::fast));
  }
}

TEST(GoldenE2e, RegressionTrimmedRulesApproachHonestMinimizer) {
  // Convergence sanity on top of the goldens: CWTM and GeoMed land close to
  // the honest minimizer x_H (the (2f, eps)-resilience behaviour the paper
  // proves); the honest optimum cost is ~0.00211.
  for (const auto rule : {"cwtm", "geomed"}) {
    double dist = 0.0;
    const double cost = regression_final_cost(rule, &dist);
    EXPECT_LT(dist, 0.02) << rule;
    EXPECT_LT(cost, 0.0025) << rule;
  }
}

}  // namespace

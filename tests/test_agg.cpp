// Unit and property tests for the gradient-filter library.  Each rule gets
// exact small-case checks; a parameterized suite then asserts the shared
// robustness contract across every robust rule: permutation invariance and
// bounded output under f arbitrarily-large outliers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>

#include "abft/agg/average.hpp"
#include "abft/agg/bulyan.hpp"
#include "abft/agg/cclip.hpp"
#include "abft/agg/cge.hpp"
#include "abft/agg/cwmed.hpp"
#include "abft/agg/cwtm.hpp"
#include "abft/agg/geomed.hpp"
#include "abft/agg/krum.hpp"
#include "abft/agg/normclip.hpp"
#include "abft/agg/registry.hpp"
#include "abft/util/rng.hpp"

namespace {

using namespace abft;
using agg::Vector;

std::vector<Vector> make_gradients(std::initializer_list<Vector> list) { return {list}; }

TEST(Validate, SharedPreconditions) {
  const auto grads = make_gradients({Vector{1.0, 0.0}, Vector{0.0, 1.0}});
  EXPECT_EQ(agg::validate_gradients(grads, 0), 2);
  EXPECT_THROW(agg::validate_gradients({}, 0), std::invalid_argument);
  EXPECT_THROW(agg::validate_gradients(grads, -1), std::invalid_argument);
  EXPECT_THROW(agg::validate_gradients(grads, 2), std::invalid_argument);
  const auto ragged = make_gradients({Vector{1.0}, Vector{1.0, 2.0}});
  EXPECT_THROW(agg::validate_gradients(ragged, 0), std::invalid_argument);
}

TEST(Average, IsTheMean) {
  const agg::AverageAggregator rule;
  const auto grads = make_gradients({Vector{2.0, 0.0}, Vector{0.0, 2.0}});
  EXPECT_EQ(rule.aggregate(grads, 0), (Vector{1.0, 1.0}));
}

TEST(Cge, SumsSmallestNormGradients) {
  const agg::CgeAggregator rule;
  // Norms: 1, 2, 10 -> with f = 1, keep the two smallest.
  const auto grads = make_gradients({Vector{1.0, 0.0}, Vector{0.0, 2.0}, Vector{10.0, 0.0}});
  EXPECT_EQ(rule.aggregate(grads, 1), (Vector{1.0, 2.0}));
}

TEST(Cge, KeepsEverythingWhenFZero) {
  const agg::CgeAggregator rule;
  const auto grads = make_gradients({Vector{1.0}, Vector{2.0}, Vector{3.0}});
  EXPECT_EQ(rule.aggregate(grads, 0), (Vector{6.0}));
}

TEST(Cge, KeptIndicesSortedByNorm) {
  const auto grads = make_gradients({Vector{3.0}, Vector{1.0}, Vector{2.0}});
  const auto kept = agg::CgeAggregator::kept_indices(grads, 1);
  EXPECT_EQ(kept, (std::vector<int>{1, 2}));
}

TEST(Cge, TieBreakIsStableByIndex) {
  const auto grads = make_gradients({Vector{1.0, 0.0}, Vector{0.0, 1.0}, Vector{-1.0, 0.0}});
  const auto kept = agg::CgeAggregator::kept_indices(grads, 1);
  EXPECT_EQ(kept, (std::vector<int>{0, 1}));  // equal norms: earlier index first
}

TEST(Cwtm, TrimsPerCoordinate) {
  const agg::CwtmAggregator rule;
  // Coordinate 0 sorted: 0, 1, 2, 100 -> trim 0 and 100, mean(1, 2) = 1.5.
  const auto grads = make_gradients(
      {Vector{0.0, 5.0}, Vector{1.0, 6.0}, Vector{2.0, 7.0}, Vector{100.0, 8.0}});
  const Vector out = rule.aggregate(grads, 1);
  EXPECT_DOUBLE_EQ(out[0], 1.5);
  EXPECT_DOUBLE_EQ(out[1], 6.5);
}

TEST(Cwtm, FZeroIsPlainMean) {
  const agg::CwtmAggregator rule;
  const auto grads = make_gradients({Vector{2.0}, Vector{4.0}});
  EXPECT_EQ(rule.aggregate(grads, 0), (Vector{3.0}));
}

TEST(Cwtm, RequiresMoreThanTwoFGradients) {
  const agg::CwtmAggregator rule;
  const auto grads = make_gradients({Vector{1.0}, Vector{2.0}});
  EXPECT_THROW(rule.aggregate(grads, 1), std::invalid_argument);
}

TEST(Cwtm, OutputInsideHonestHullPerCoordinate) {
  // With at most f corrupt entries per coordinate, the trimmed mean stays
  // within [min honest, max honest] per coordinate (paper, eq. 119-120).
  util::Rng rng(3);
  const agg::CwtmAggregator rule;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Vector> grads;
    const int honest = 5;
    for (int i = 0; i < honest; ++i) {
      grads.push_back(Vector{rng.normal(), rng.normal()});
    }
    double lo0 = 1e300, hi0 = -1e300, lo1 = 1e300, hi1 = -1e300;
    for (const auto& g : grads) {
      lo0 = std::min(lo0, g[0]);
      hi0 = std::max(hi0, g[0]);
      lo1 = std::min(lo1, g[1]);
      hi1 = std::max(hi1, g[1]);
    }
    grads.push_back(Vector{1e9, -1e9});  // one Byzantine outlier, f = 1
    const Vector out = rule.aggregate(grads, 1);
    EXPECT_GE(out[0], lo0 - 1e-12);
    EXPECT_LE(out[0], hi0 + 1e-12);
    EXPECT_GE(out[1], lo1 - 1e-12);
    EXPECT_LE(out[1], hi1 + 1e-12);
  }
}

TEST(Cwmed, OddAndEvenCounts) {
  const agg::CwmedAggregator rule;
  const auto odd = make_gradients({Vector{1.0}, Vector{5.0}, Vector{3.0}});
  EXPECT_EQ(rule.aggregate(odd, 0), (Vector{3.0}));
  const auto even = make_gradients({Vector{1.0}, Vector{5.0}, Vector{3.0}, Vector{4.0}});
  EXPECT_EQ(rule.aggregate(even, 0), (Vector{3.5}));
}

TEST(Krum, SelectsFromTheHonestCluster) {
  const agg::KrumAggregator rule;
  // Five clustered gradients + one far outlier; Krum must return a cluster
  // member (n = 6 > 2f + 2 with f = 1).
  auto grads = make_gradients({Vector{1.0, 1.0}, Vector{1.1, 1.0}, Vector{0.9, 1.0},
                               Vector{1.0, 1.1}, Vector{1.0, 0.9}, Vector{50.0, 50.0}});
  const Vector out = rule.aggregate(grads, 1);
  EXPECT_LT(linalg::distance(out, Vector{1.0, 1.0}), 0.5);
  // Krum returns one of its inputs verbatim.
  EXPECT_NE(std::find(grads.begin(), grads.end(), out), grads.end());
}

TEST(Krum, RequiresNGreaterThanTwoFPlusTwo) {
  const agg::KrumAggregator rule;
  const auto grads = make_gradients({Vector{1.0}, Vector{2.0}, Vector{3.0}, Vector{4.0}});
  EXPECT_THROW(rule.aggregate(grads, 1), std::invalid_argument);  // 4 <= 2*1+2
}

TEST(MultiKrum, AveragesLowScoreGradients) {
  const agg::MultiKrumAggregator rule(2);
  const auto grads = make_gradients({Vector{1.0, 0.0}, Vector{1.2, 0.0}, Vector{0.8, 0.0},
                                     Vector{1.1, 0.0}, Vector{0.9, 0.0}, Vector{99.0, 0.0}});
  const Vector out = rule.aggregate(grads, 1);
  EXPECT_NEAR(out[0], 1.0, 0.3);
  EXPECT_DOUBLE_EQ(out[1], 0.0);
}

TEST(GeometricMedian, MatchesMedianInOneDimension) {
  const auto points = make_gradients({Vector{1.0}, Vector{2.0}, Vector{100.0}});
  const Vector med = agg::geometric_median(points);
  EXPECT_NEAR(med[0], 2.0, 1e-6);
}

TEST(GeometricMedian, FirstOrderOptimality) {
  // At the geometric median the sum of unit vectors toward the points
  // (sub)vanishes.
  util::Rng rng(9);
  std::vector<Vector> points;
  for (int i = 0; i < 7; ++i) points.push_back(Vector{rng.normal(), rng.normal()});
  const Vector med = agg::geometric_median(points, 1e-12, 500);
  Vector subgradient(2);
  for (const auto& p : points) {
    const double dist = linalg::distance(med, p);
    ASSERT_GT(dist, 1e-9);
    subgradient.add_scaled(1.0 / dist, med - p);
  }
  EXPECT_LT(subgradient.norm(), 1e-4);
}

TEST(Gmom, SingleBucketIsGeometricMedianOfMean) {
  const agg::GmomAggregator rule(1);
  const auto grads = make_gradients({Vector{0.0}, Vector{2.0}});
  EXPECT_NEAR(rule.aggregate(grads, 0)[0], 1.0, 1e-9);
}

TEST(Gmom, DefaultBucketCountResistsOutlier) {
  const agg::GmomAggregator rule;  // 2f + 1 = 3 buckets
  const auto grads = make_gradients({Vector{1.0}, Vector{1.1}, Vector{0.9}, Vector{1.05},
                                     Vector{0.95}, Vector{1e6}});
  EXPECT_LT(std::abs(rule.aggregate(grads, 1)[0] - 1.0), 0.6);
}

TEST(Bulyan, RequiresFourFPlusThree) {
  const agg::BulyanAggregator rule;
  const auto grads = make_gradients({Vector{1.0}, Vector{2.0}, Vector{3.0}, Vector{4.0},
                                     Vector{5.0}, Vector{6.0}});
  EXPECT_THROW(rule.aggregate(grads, 1), std::invalid_argument);  // 6 < 4*1+3
}

TEST(Bulyan, StaysInsideHonestCluster) {
  const agg::BulyanAggregator rule;
  std::vector<Vector> grads;
  util::Rng rng(12);
  for (int i = 0; i < 6; ++i) grads.push_back(Vector{1.0 + 0.01 * rng.normal()});
  grads.push_back(Vector{-1e7});  // f = 1, n = 7 >= 4f + 3
  const Vector out = rule.aggregate(grads, 1);
  EXPECT_NEAR(out[0], 1.0, 0.1);
}

TEST(NormClip, BoundsOutlierInfluence) {
  const agg::NormClipAggregator rule;
  const auto grads = make_gradients({Vector{1.0}, Vector{1.0}, Vector{1e9}});
  // Median norm = 1, so the outlier is scaled to norm 1: mean = 1.
  EXPECT_NEAR(rule.aggregate(grads, 1)[0], 1.0, 1e-9);
}

TEST(CenteredClip, PassesCleanGradientsThrough) {
  // When every gradient sits within the clip radius of the pivot, centered
  // clipping converges to the plain mean.
  const agg::CenteredClipAggregator rule(10.0, 5);
  const auto grads = make_gradients({Vector{1.0, 0.0}, Vector{3.0, 0.0}});
  EXPECT_NEAR(rule.aggregate(grads, 0)[0], 2.0, 1e-9);
}

TEST(CenteredClip, OutlierInfluenceBoundedByTau) {
  const agg::CenteredClipAggregator rule(1.0, 1);
  const auto grads = make_gradients({Vector{0.0}, Vector{0.0}, Vector{1e9}});
  // Pivot = median = 0; the outlier contributes at most tau/n = 1/3.
  EXPECT_NEAR(rule.aggregate(grads, 1)[0], 1.0 / 3.0, 1e-9);
}

TEST(CenteredClip, AdaptiveRadiusResistsOutliers) {
  const agg::CenteredClipAggregator rule;  // adaptive tau, 3 iterations
  util::Rng rng(55);
  std::vector<Vector> grads;
  for (int i = 0; i < 8; ++i) grads.push_back(Vector{1.0 + 0.05 * rng.normal()});
  grads.push_back(Vector{1e7});
  EXPECT_NEAR(rule.aggregate(grads, 1)[0], 1.0, 0.3);
}

TEST(CenteredClip, IdenticalGradientsShortCircuit) {
  const agg::CenteredClipAggregator rule;
  const auto grads = make_gradients({Vector{2.0, -1.0}, Vector{2.0, -1.0}, Vector{2.0, -1.0}});
  EXPECT_EQ(rule.aggregate(grads, 1), (Vector{2.0, -1.0}));
}

TEST(ClippedInput, CapsNormsBeforeInnerRule) {
  const agg::AverageAggregator inner;
  const agg::ClippedInputAggregator rule(inner);
  const auto grads = make_gradients({Vector{1.0}, Vector{1.0}, Vector{1e9}});
  // Median norm 1 caps the outlier: mean = 1.
  EXPECT_NEAR(rule.aggregate(grads, 1)[0], 1.0, 1e-9);
}

// Structural property of CGE across an (n, f) grid: the output is exactly
// the sum of some n - f of the inputs, all with norms no larger than every
// dropped input's norm.
struct CgeGridParam {
  int n;
  int f;
};

class CgeStructure : public ::testing::TestWithParam<CgeGridParam> {};

TEST_P(CgeStructure, OutputIsSumOfSmallestNormSubset) {
  const auto [n, f] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(n * 10 + f));
  std::vector<Vector> grads;
  for (int i = 0; i < n; ++i) {
    grads.push_back(Vector{rng.normal(), rng.normal(), rng.normal()});
  }
  const agg::CgeAggregator rule;
  const Vector out = rule.aggregate(grads, f);
  const auto kept = agg::CgeAggregator::kept_indices(grads, f);
  ASSERT_EQ(kept.size(), static_cast<std::size_t>(n - f));
  Vector expected(3);
  double max_kept_norm = 0.0;
  for (int idx : kept) {
    expected += grads[static_cast<std::size_t>(idx)];
    max_kept_norm = std::max(max_kept_norm, grads[static_cast<std::size_t>(idx)].norm());
  }
  EXPECT_TRUE(linalg::approx_equal(out, expected, 1e-12));
  // Every dropped gradient has norm >= every kept one.
  std::vector<bool> is_kept(grads.size(), false);
  for (int idx : kept) is_kept[static_cast<std::size_t>(idx)] = true;
  for (std::size_t i = 0; i < grads.size(); ++i) {
    if (!is_kept[i]) {
      EXPECT_GE(grads[i].norm() + 1e-12, max_kept_norm);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, CgeStructure,
                         ::testing::Values(CgeGridParam{3, 0}, CgeGridParam{5, 1},
                                           CgeGridParam{6, 2}, CgeGridParam{9, 3},
                                           CgeGridParam{12, 5}),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param.n) + "_f" +
                                  std::to_string(info.param.f);
                         });

TEST(Registry, ConstructsEveryKnownRule) {
  for (const auto name : agg::aggregator_names()) {
    const auto rule = agg::make_aggregator(name);
    ASSERT_NE(rule, nullptr);
    EXPECT_EQ(rule->name(), name);
  }
  EXPECT_THROW(agg::make_aggregator("nope"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Shared robustness contract, parameterized across robust rules.
// n = 11, f = 2 satisfies every rule's precondition (n > 2f+2, n >= 4f+3).
// ---------------------------------------------------------------------------

class RobustRuleTest : public ::testing::TestWithParam<std::string> {
 protected:
  static constexpr int kN = 11;
  static constexpr int kF = 2;

  static std::vector<Vector> honest_cluster(util::Rng& rng, int count, double spread) {
    std::vector<Vector> grads;
    for (int i = 0; i < count; ++i) {
      grads.push_back(Vector{1.0 + spread * rng.normal(), -2.0 + spread * rng.normal(),
                             0.5 + spread * rng.normal()});
    }
    return grads;
  }
};

TEST_P(RobustRuleTest, OutputBoundedUnderHugeOutliers) {
  const auto rule = agg::make_aggregator(GetParam());
  util::Rng rng(101);
  auto grads = honest_cluster(rng, kN - kF, 0.05);
  double honest_norm_cap = 0.0;
  for (const auto& g : grads) honest_norm_cap = std::max(honest_norm_cap, g.norm());
  for (int i = 0; i < kF; ++i) grads.push_back(Vector{1e8, -1e8, 1e8});
  const Vector out = rule->aggregate(grads, kF);
  // A robust rule's output is bounded by a constant multiple of the honest
  // norms (for CGE, the sum of n - f of them), never by the outlier scale.
  EXPECT_LE(out.norm(), static_cast<double>(kN) * honest_norm_cap + 1e-9)
      << "rule " << GetParam() << " was dragged by outliers";
}

TEST_P(RobustRuleTest, PermutationInvariant) {
  if (GetParam() == "gmom") {
    GTEST_SKIP() << "gmom buckets by index; permutation invariance does not apply";
  }
  const auto rule = agg::make_aggregator(GetParam());
  util::Rng rng(202);
  auto grads = honest_cluster(rng, kN - kF, 0.2);
  for (int i = 0; i < kF; ++i) {
    grads.push_back(Vector{10.0 + rng.normal(), 10.0, -10.0});
  }
  const Vector base = rule->aggregate(grads, kF);
  auto shuffled = grads;
  const auto perm = rng.permutation(static_cast<int>(shuffled.size()));
  for (std::size_t i = 0; i < shuffled.size(); ++i) {
    shuffled[i] = grads[static_cast<std::size_t>(perm[i])];
  }
  const Vector permuted = rule->aggregate(shuffled, kF);
  EXPECT_TRUE(linalg::approx_equal(base, permuted, 1e-9))
      << "rule " << GetParam() << " depends on input order";
}

TEST_P(RobustRuleTest, IdenticalGradientsAreAFixedPoint) {
  // When every agent reports the same vector g, any sensible rule returns g
  // itself — except CGE, which by definition returns the SUM of n - f
  // copies.
  const auto rule = agg::make_aggregator(GetParam());
  const Vector g{0.7, -1.3, 2.1};
  const std::vector<Vector> grads(kN, g);
  const Vector out = rule->aggregate(grads, kF);
  const Vector expected = GetParam() == "cge" ? static_cast<double>(kN - kF) * g : g;
  EXPECT_TRUE(linalg::approx_equal(out, expected, 1e-9)) << GetParam();
}

TEST_P(RobustRuleTest, CleanInputStaysNearHonestMean) {
  const auto rule = agg::make_aggregator(GetParam());
  util::Rng rng(303);
  const auto grads = honest_cluster(rng, kN, 0.01);
  Vector out = rule->aggregate(grads, kF);
  if (GetParam() == "cge") out /= static_cast<double>(kN - kF);  // CGE returns a sum
  EXPECT_LT(linalg::distance(out, Vector{1.0, -2.0, 0.5}), 0.1);
}

INSTANTIATE_TEST_SUITE_P(AllRobustRules, RobustRuleTest,
                         ::testing::Values("cge", "cwtm", "cwmed", "krum", "multikrum",
                                           "geomed", "gmom", "bulyan", "normclip", "cclip"),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------------
// GradientBatch / AggregatorWorkspace and the batched aggregate_into path.
// ---------------------------------------------------------------------------

TEST(GradientBatch, PackRoundTrips) {
  const auto grads = make_gradients({Vector{1.0, 2.0}, Vector{3.0, 4.0}, Vector{5.0, 6.0}});
  agg::GradientBatch batch;
  batch.pack(grads);
  EXPECT_EQ(batch.rows(), 3);
  EXPECT_EQ(batch.cols(), 2);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(batch.unpack_row(i), grads[static_cast<std::size_t>(i)]);
  const auto unpacked = batch.unpack();
  EXPECT_EQ(unpacked, grads);
}

TEST(GradientBatch, ReshapeReusesStorageAndSetRowWrites) {
  agg::GradientBatch batch(4, 8);
  batch.reshape(2, 3);
  EXPECT_EQ(batch.rows(), 2);
  EXPECT_EQ(batch.cols(), 3);
  batch.set_row(0, Vector{1.0, 2.0, 3.0});
  batch.set_row(1, Vector{4.0, 5.0, 6.0});
  EXPECT_EQ(batch.unpack_row(1), (Vector{4.0, 5.0, 6.0}));
  EXPECT_THROW(batch.set_row(0, Vector{1.0}), std::invalid_argument);
  EXPECT_THROW(batch.set_row(2, Vector{1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(GradientBatch, PackRejectsBadInput) {
  agg::GradientBatch batch;
  EXPECT_THROW(batch.pack({}), std::invalid_argument);
  const auto ragged = make_gradients({Vector{1.0}, Vector{1.0, 2.0}});
  EXPECT_THROW(batch.pack(ragged), std::invalid_argument);
}

TEST(BatchedAdapter, DefaultRoutesThroughSpanPath) {
  // A rule that only implements the span API still works batched via the
  // base-class adapter.
  class SpanOnlyMean final : public agg::GradientAggregator {
   public:
    [[nodiscard]] Vector aggregate(std::span<const Vector> gradients, int f) const override {
      agg::validate_gradients(gradients, f);
      return linalg::mean(gradients);
    }
    [[nodiscard]] std::string_view name() const noexcept override { return "span-only-mean"; }
  };
  const SpanOnlyMean rule;
  const auto grads = make_gradients({Vector{2.0, 0.0}, Vector{0.0, 2.0}});
  agg::GradientBatch batch;
  batch.pack(grads);
  agg::AggregatorWorkspace ws;
  EXPECT_EQ(rule.aggregate_batched(batch, 0, ws), (Vector{1.0, 1.0}));
}

namespace parity {

std::vector<Vector> random_gradients(util::Rng& rng, int n, int d, double scale = 1.0) {
  std::vector<Vector> grads;
  grads.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Vector g(d);
    for (int k = 0; k < d; ++k) g[k] = scale * rng.normal();
    grads.push_back(std::move(g));
  }
  return grads;
}

/// Asserts the batched path agrees with the span path to 1e-12 (relative to
/// the output's own magnitude), or that both paths reject the shape.
void expect_parity(const agg::GradientAggregator& rule, std::span<const Vector> grads, int f,
                   agg::AggregatorWorkspace& ws, const std::string& label) {
  agg::GradientBatch batch;
  batch.pack(grads);
  Vector legacy;
  bool legacy_threw = false;
  try {
    legacy = rule.aggregate(grads, f);
  } catch (const std::invalid_argument&) {
    legacy_threw = true;
  }
  Vector batched;
  bool batched_threw = false;
  try {
    rule.aggregate_into(batched, batch, f, ws);
  } catch (const std::invalid_argument&) {
    batched_threw = true;
  }
  ASSERT_EQ(legacy_threw, batched_threw) << label << ": one path rejected the shape";
  if (legacy_threw) return;
  ASSERT_EQ(legacy.dim(), batched.dim()) << label;
  const double tol = 1e-12 * std::max(1.0, legacy.norm_inf());
  for (int k = 0; k < legacy.dim(); ++k) {
    ASSERT_NEAR(legacy[k], batched[k], tol) << label << " coordinate " << k;
  }
}

}  // namespace parity

TEST(BatchedParity, AllRegistryRulesAcrossShapes) {
  struct Shape {
    int n, d, f;
  };
  // Includes the edge shapes n = 2f + 1 and d = 1, plus f = 0.
  const Shape shapes[] = {{3, 1, 1},  {5, 3, 1},   {7, 16, 1},  {11, 4, 2},
                          {12, 8, 0}, {15, 9, 3},  {25, 33, 4}, {50, 17, 10},
                          {9, 1, 2},  {20, 257, 3}};
  util::Rng rng(7777);
  agg::AggregatorWorkspace ws;  // shared across every rule and shape on purpose
  for (const auto name : agg::aggregator_names()) {
    const auto rule = agg::make_aggregator(name);
    for (const auto& s : shapes) {
      const auto grads = parity::random_gradients(rng, s.n, s.d);
      parity::expect_parity(*rule, grads, s.f,  ws,
                            std::string(name) + " n=" + std::to_string(s.n) +
                                " d=" + std::to_string(s.d) + " f=" + std::to_string(s.f));
    }
  }
}

TEST(BatchedParity, DuplicateHeavyColumns) {
  // Quantized gradients produce exact ties in every coordinate, driving the
  // coordinate-wise rank kernels into their duplicate-detection fallback.
  util::Rng rng(31337);
  agg::AggregatorWorkspace ws;
  for (const auto name : agg::aggregator_names()) {
    const auto rule = agg::make_aggregator(name);
    std::vector<Vector> grads;
    const int n = 13, d = 24, f = 2;
    for (int i = 0; i < n; ++i) {
      Vector g(d);
      for (int k = 0; k < d; ++k) {
        g[k] = 0.5 * std::round(2.0 * rng.normal());  // heavy ties, incl. +-0
      }
      grads.push_back(std::move(g));
    }
    parity::expect_parity(*rule, grads, f, ws, std::string(name) + " duplicates");
  }
}

TEST(BatchedParity, LargeNSelectionFallback) {
  // n above the rank-kernel cutoff exercises the nth_element column path.
  util::Rng rng(909);
  agg::AggregatorWorkspace ws;
  const auto grads = parity::random_gradients(rng, 300, 3, 2.0);
  for (const auto name : {"cwtm", "cwmed", "normclip", "cge"}) {
    const auto rule = agg::make_aggregator(name);
    parity::expect_parity(*rule, grads, 60, ws, std::string(name) + " n=300");
  }
}

TEST(BatchedParity, ParallelThreadsMatchSingleThread) {
  util::Rng rng(4242);
  const auto grads = parity::random_gradients(rng, 20, 103, 1.0);
  agg::GradientBatch batch;
  batch.pack(grads);
  for (const auto name : agg::aggregator_names()) {
    const auto rule = agg::make_aggregator(name);
    agg::AggregatorWorkspace serial_ws;
    agg::AggregatorWorkspace parallel_ws;
    parallel_ws.parallel_threads = 4;
    const Vector serial = rule->aggregate_batched(batch, 3, serial_ws);
    const Vector parallel = rule->aggregate_batched(batch, 3, parallel_ws);
    EXPECT_EQ(serial, parallel) << name << ": parallel partition changed the result";
  }
}

TEST(BatchedParity, WorkspaceReuseAcrossCallsIsStable) {
  // The same workspace reused across rules, shapes and repeated calls must
  // keep producing identical outputs (buffers are recomputed, never stale).
  util::Rng rng(555);
  agg::AggregatorWorkspace ws;
  const auto big = parity::random_gradients(rng, 30, 40, 1.0);
  const auto small = parity::random_gradients(rng, 7, 5, 1.0);
  agg::GradientBatch batch;
  for (const auto name : agg::aggregator_names()) {
    const auto rule = agg::make_aggregator(name);
    batch.pack(big);
    const Vector first = rule->aggregate_batched(batch, 5, ws);
    batch.pack(small);
    (void)rule->aggregate_batched(batch, 1, ws);
    batch.pack(big);
    const Vector again = rule->aggregate_batched(batch, 5, ws);
    EXPECT_EQ(first, again) << name << ": workspace reuse changed the result";
  }
}

TEST(BatchedParity, GramCancellationGuard) {
  // Gradients sharing a huge common component while differing by tiny
  // deltas: the naive Gram identity loses all digits of the pairwise
  // distances here, so this locks in the guarded recompute.  The batched
  // Krum family must still rank the outlier-adjacent scores like the span
  // path's direct distances do.
  util::Rng rng(86);
  const int n = 9, d = 6, f = 1;
  std::vector<Vector> grads;
  for (int i = 0; i < n; ++i) {
    Vector g(d);
    for (int k = 0; k < d; ++k) g[k] = 1e8 + 1e-2 * rng.normal();
    grads.push_back(std::move(g));
  }
  agg::AggregatorWorkspace ws;
  for (const auto name : {"krum", "multikrum", "bulyan", "geomed", "cclip"}) {
    const auto rule = agg::make_aggregator(name);
    parity::expect_parity(*rule, grads, f, ws, std::string(name) + " gram-cancellation");
  }
}

TEST(BatchedParity, ClippedInputAdapterMatches) {
  util::Rng rng(2024);
  const auto grads = parity::random_gradients(rng, 12, 19, 3.0);
  const agg::CwtmAggregator inner;
  const agg::ClippedInputAggregator rule(inner);
  agg::AggregatorWorkspace ws;
  parity::expect_parity(rule, grads, 2, ws, "clipped-input");
}

}  // namespace

// Unit tests for the Byzantine fault behaviours.
#include <gtest/gtest.h>

#include "abft/attack/adaptive_faults.hpp"
#include "abft/attack/simple_faults.hpp"

namespace {

using namespace abft;
using attack::AttackContext;
using attack::Vector;

struct ContextFixture {
  Vector estimate{0.5, 0.5};
  Vector true_gradient{1.0, -2.0};
  std::vector<Vector> honest{Vector{1.0, 0.0}, Vector{3.0, 0.0}};
  util::Rng rng{99};

  [[nodiscard]] AttackContext context(int round = 0) {
    return AttackContext{estimate, true_gradient, honest, round};
  }
};

TEST(GradientReverse, NegatesTrueGradient) {
  ContextFixture fx;
  const attack::GradientReverseFault fault;
  const auto out = fault.emit(fx.context(), fx.rng);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, (Vector{-1.0, 2.0}));
}

TEST(RandomGaussian, MatchesDimensionAndScale) {
  ContextFixture fx;
  const attack::RandomGaussianFault fault(200.0);
  double sum_sq = 0.0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    const auto out = fault.emit(fx.context(i), fx.rng);
    ASSERT_TRUE(out.has_value());
    ASSERT_EQ(out->dim(), 2);
    sum_sq += out->squared_norm();
  }
  // E||g||^2 = d * stddev^2 = 2 * 40000.
  EXPECT_NEAR(sum_sq / trials, 80000.0, 8000.0);
  EXPECT_THROW(attack::RandomGaussianFault(-1.0), std::invalid_argument);
}

TEST(Zero, SendsZeroVector) {
  ContextFixture fx;
  const attack::ZeroFault fault;
  const auto out = fault.emit(fx.context(), fx.rng);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, Vector(2));
}

TEST(SignFlipScale, AmplifiesReversal) {
  ContextFixture fx;
  const attack::SignFlipScaleFault fault(3.0);
  const auto out = fault.emit(fx.context(), fx.rng);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, (Vector{-3.0, 6.0}));
  EXPECT_THROW(attack::SignFlipScaleFault(0.0), std::invalid_argument);
}

TEST(Constant, AlwaysSendsPayload) {
  ContextFixture fx;
  const attack::ConstantFault fault(Vector{7.0, 7.0});
  for (int round = 0; round < 3; ++round) {
    const auto out = fault.emit(fx.context(round), fx.rng);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, (Vector{7.0, 7.0}));
  }
}

TEST(Constant, RejectsDimensionMismatch) {
  ContextFixture fx;
  const attack::ConstantFault fault(Vector{7.0});
  EXPECT_THROW(fault.emit(fx.context(), fx.rng), std::invalid_argument);
}

TEST(Rotating, SweepsDirectionsOverRounds) {
  ContextFixture fx;
  const attack::RotatingFault fault(5.0, 1.5707963267948966);  // quarter turn per round
  const auto r0 = fault.emit(fx.context(0), fx.rng);
  const auto r1 = fault.emit(fx.context(1), fx.rng);
  const auto r2 = fault.emit(fx.context(2), fx.rng);
  ASSERT_TRUE(r0 && r1 && r2);
  EXPECT_NEAR((*r0)[0], 5.0, 1e-9);
  EXPECT_NEAR((*r0)[1], 0.0, 1e-9);
  EXPECT_NEAR((*r1)[0], 0.0, 1e-9);
  EXPECT_NEAR((*r1)[1], 5.0, 1e-9);
  EXPECT_NEAR((*r2)[0], -5.0, 1e-9);
  EXPECT_NEAR(r0->norm(), 5.0, 1e-9);
  EXPECT_THROW(attack::RotatingFault(0.0, 1.0), std::invalid_argument);
}

TEST(Silent, NeverSends) {
  ContextFixture fx;
  const attack::SilentFault fault;
  EXPECT_FALSE(fault.emit(fx.context(), fx.rng).has_value());
}

TEST(LittleIsEnough, HidesInsideHonestSpread) {
  ContextFixture fx;
  const attack::LittleIsEnoughFault fault(1.0);
  const auto out = fault.emit(fx.context(), fx.rng);
  ASSERT_TRUE(out.has_value());
  // Honest coordinate 0: mean 2, population stddev 1 -> 2 - 1 = 1.
  EXPECT_NEAR((*out)[0], 1.0, 1e-12);
  EXPECT_NEAR((*out)[1], 0.0, 1e-12);
}

TEST(LittleIsEnough, FallsBackWithoutHonestView) {
  ContextFixture fx;
  fx.honest.clear();
  const attack::LittleIsEnoughFault fault(1.0);
  const auto out = fault.emit(fx.context(), fx.rng);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, fx.true_gradient);
}

TEST(MeanReverse, ReversesHonestMean) {
  ContextFixture fx;
  const attack::MeanReverseFault fault(2.0);
  const auto out = fault.emit(fx.context(), fx.rng);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, (Vector{-4.0, 0.0}));
}

TEST(MimicSmallest, CopiesSmallestHonestGradient) {
  ContextFixture fx;
  const attack::MimicSmallestFault fault;
  const auto out = fault.emit(fx.context(), fx.rng);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, (Vector{1.0, 0.0}));
}

TEST(FaultNames, AreStable) {
  EXPECT_EQ(attack::GradientReverseFault{}.name(), "gradient-reverse");
  EXPECT_EQ(attack::RandomGaussianFault{1.0}.name(), "random");
  EXPECT_EQ(attack::SilentFault{}.name(), "silent");
  EXPECT_EQ(attack::LittleIsEnoughFault{1.0}.name(), "little-is-enough");
}

}  // namespace

// Routing tests for the rank-kernel cutoff (rank_kernel.hpp).
//
// Two defects pinned here (both present before effective_rank_cutoff
// existed): the ABFT_RANK_KERNEL_CUTOFF override was read once inside the
// calibration path and baked into the per-process cache — so flipping it
// after the first aggregate call was silently ignored — and exact mode
// never consulted the override at all, so the documented "force the rank
// kernel off" escape hatch (=0) only worked under fast mode.  The contract
// now: the env var wins in BOTH modes, is parsed per call, clamps to
// [0, kRankKernelCapacity], and 0 disables the rank kernel outright;
// without it fast mode takes the cached pure-measurement calibration and
// exact mode pins the historical constant.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "abft/agg/rank_kernel.hpp"
#include "abft/agg/registry.hpp"
#include "abft/util/rng.hpp"

namespace {

using namespace abft;
using agg::Vector;

/// Scoped override of ABFT_RANK_KERNEL_CUTOFF, restored on destruction so
/// the suite cannot leak routing state into other tests.
class ScopedCutoffEnv {
 public:
  explicit ScopedCutoffEnv(const char* value) {
    const char* old = std::getenv("ABFT_RANK_KERNEL_CUTOFF");
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      ::setenv("ABFT_RANK_KERNEL_CUTOFF", value, 1);
    } else {
      ::unsetenv("ABFT_RANK_KERNEL_CUTOFF");
    }
  }
  ~ScopedCutoffEnv() {
    if (had_old_) {
      ::setenv("ABFT_RANK_KERNEL_CUTOFF", old_.c_str(), 1);
    } else {
      ::unsetenv("ABFT_RANK_KERNEL_CUTOFF");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

TEST(RankKernelCutoff, DefaultsWithoutOverride) {
  ScopedCutoffEnv env(nullptr);
  // Exact mode pins the historical constant; fast mode takes the cached
  // calibration, which by construction lies in [0, capacity].
  EXPECT_EQ(agg::detail::effective_rank_cutoff(agg::AggMode::exact),
            agg::detail::kRankKernelExactCutoff);
  const int fast = agg::detail::effective_rank_cutoff(agg::AggMode::fast);
  EXPECT_EQ(fast, agg::detail::rank_kernel_cutoff());
  EXPECT_GE(fast, 0);
  EXPECT_LE(fast, agg::detail::kRankKernelCapacity);
}

TEST(RankKernelCutoff, ZeroForcesRankKernelOffInBothModes) {
  ScopedCutoffEnv env("0");
  EXPECT_EQ(agg::detail::effective_rank_cutoff(agg::AggMode::exact), 0);
  EXPECT_EQ(agg::detail::effective_rank_cutoff(agg::AggMode::fast), 0);
}

TEST(RankKernelCutoff, OverrideWinsInBothModesAndClamps) {
  {
    ScopedCutoffEnv env("100");
    EXPECT_EQ(agg::detail::effective_rank_cutoff(agg::AggMode::exact), 100);
    EXPECT_EQ(agg::detail::effective_rank_cutoff(agg::AggMode::fast), 100);
  }
  {
    ScopedCutoffEnv env("999999");  // above capacity: clamps down
    EXPECT_EQ(agg::detail::effective_rank_cutoff(agg::AggMode::exact),
              agg::detail::kRankKernelCapacity);
    EXPECT_EQ(agg::detail::effective_rank_cutoff(agg::AggMode::fast),
              agg::detail::kRankKernelCapacity);
  }
  {
    ScopedCutoffEnv env("-7");  // negative: clamps to "off"
    EXPECT_EQ(agg::detail::effective_rank_cutoff(agg::AggMode::exact), 0);
    EXPECT_EQ(agg::detail::effective_rank_cutoff(agg::AggMode::fast), 0);
  }
}

TEST(RankKernelCutoff, ParsedPerCallNotBakedIntoTheCache) {
  // Force the calibration cache to materialize with no override in scope,
  // then flip the env var: the effective cutoff must follow immediately.
  // Before the fix the first calibration consumed the env var and froze it
  // for the process lifetime.
  {
    ScopedCutoffEnv env(nullptr);
    (void)agg::detail::effective_rank_cutoff(agg::AggMode::fast);  // caches calibration
  }
  {
    ScopedCutoffEnv env("0");
    EXPECT_EQ(agg::detail::effective_rank_cutoff(agg::AggMode::fast), 0);
  }
  {
    ScopedCutoffEnv env(nullptr);
    EXPECT_EQ(agg::detail::effective_rank_cutoff(agg::AggMode::fast),
              agg::detail::rank_kernel_cutoff());
  }
}

TEST(RankKernelCutoff, CwmedOutputInvariantUnderRouting) {
  // The rank-classified median selects the same element(s) as nth_element,
  // so forcing the rank kernel off must not change cwmed's exact-mode
  // output at all — routing is a performance decision, never a semantic
  // one.
  util::Rng rng(20260802);
  const int n = 21, d = 64;
  agg::GradientBatch batch(n, d);
  for (int i = 0; i < n; ++i) {
    auto row = batch.row(i);
    for (int k = 0; k < d; ++k) row[static_cast<std::size_t>(k)] = rng.normal();
  }
  const auto rule = agg::make_aggregator("cwmed");
  Vector with_kernel;
  Vector without_kernel;
  {
    ScopedCutoffEnv env(nullptr);
    agg::AggregatorWorkspace ws;
    rule->aggregate_into(with_kernel, batch, 3, ws);
  }
  {
    ScopedCutoffEnv env("0");
    agg::AggregatorWorkspace ws;
    rule->aggregate_into(without_kernel, batch, 3, ws);
  }
  EXPECT_EQ(with_kernel, without_kernel);
}

TEST(RankKernelCutoff, F32RankCountsMatchPortable) {
  // The 16-wide f32 rank kernel must agree with the scalar definition
  // lt[j] = #{i : col[i] < col[j]} on duplicate-free and duplicate-heavy
  // columns alike.
  util::Rng rng(778899);
  for (const int n : {1, 7, 16, 17, 33, 512}) {
    std::vector<float> col(static_cast<std::size_t>(n));
    for (auto& v : col) v = static_cast<float>(rng.normal());
    if (n >= 16) col[5] = col[11];  // plant a duplicate
    std::vector<std::int32_t> lt(static_cast<std::size_t>(n));
    agg::detail::rank_counts(col.data(), n, lt.data());
    for (int j = 0; j < n; ++j) {
      std::int32_t expected = 0;
      for (int i = 0; i < n; ++i) expected += col[static_cast<std::size_t>(i)] <
                                              col[static_cast<std::size_t>(j)];
      EXPECT_EQ(lt[static_cast<std::size_t>(j)], expected) << "n=" << n << " j=" << j;
    }
  }
}

}  // namespace

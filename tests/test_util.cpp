// Unit tests for abft::util — RNG determinism and distribution sanity,
// combinatorics, statistics, and table/CSV formatting.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "abft/util/check.hpp"
#include "abft/util/combinatorics.hpp"
#include "abft/util/csv.hpp"
#include "abft/util/rng.hpp"
#include "abft/util/stats.hpp"
#include "abft/util/table.hpp"

namespace {

using namespace abft::util;

TEST(Check, RequireThrowsInvalidArgument) {
  EXPECT_THROW(ABFT_REQUIRE(false, "boom"), std::invalid_argument);
  EXPECT_NO_THROW(ABFT_REQUIRE(true, "fine"));
}

TEST(Check, EnsureThrowsLogicError) {
  EXPECT_THROW(ABFT_ENSURE(false, "bug"), std::logic_error);
}

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformStaysInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
  EXPECT_THROW(rng.uniform(2.0, 1.0), std::invalid_argument);
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(11);
  std::vector<int> counts(5, 0);
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) ++counts[rng.uniform_index(5)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / draws, 0.2, 0.02);
  }
  EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
}

TEST(Rng, NormalMomentsMatchStandardGaussian) {
  Rng rng(13);
  const int draws = 100000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < draws; ++i) {
    const double z = rng.normal();
    sum += z;
    sum_sq += z * z;
  }
  EXPECT_NEAR(sum / draws, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / draws, 1.0, 0.03);
}

TEST(Rng, ScaledNormalRejectsNegativeStddev) {
  Rng rng(1);
  EXPECT_THROW(rng.normal(0.0, -1.0), std::invalid_argument);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(3);
  const auto perm = rng.permutation(50);
  std::set<int> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 49);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(5);
  const auto sample = rng.sample_without_replacement(20, 8);
  EXPECT_EQ(sample.size(), 8u);
  std::set<int> seen(sample.begin(), sample.end());
  EXPECT_EQ(seen.size(), 8u);
  for (int v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 20);
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(9);
  Rng child = parent.split();
  // The child stream differs from the parent's continuation.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Combinatorics, BinomialSmallValues) {
  EXPECT_EQ(binomial(6, 5), 6u);
  EXPECT_EQ(binomial(6, 4), 15u);
  EXPECT_EQ(binomial(10, 0), 1u);
  EXPECT_EQ(binomial(10, 10), 1u);
  EXPECT_EQ(binomial(5, 7), 0u);
  EXPECT_EQ(binomial(52, 5), 2598960u);
}

TEST(Combinatorics, BinomialOverflowDetected) {
  EXPECT_THROW(binomial(200, 100), std::invalid_argument);
}

TEST(Combinatorics, EnumerationCountsMatchBinomial) {
  for (int n = 0; n <= 8; ++n) {
    for (int k = 0; k <= n; ++k) {
      long count = 0;
      for_each_combination(n, k, [&count](const std::vector<int>&) {
        ++count;
        return true;
      });
      EXPECT_EQ(static_cast<std::uint64_t>(count), binomial(n, k)) << "n=" << n << " k=" << k;
    }
  }
}

TEST(Combinatorics, LexicographicOrderAndSortedness) {
  const auto combos = all_combinations(5, 3);
  ASSERT_EQ(combos.size(), 10u);
  EXPECT_EQ(combos.front(), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(combos.back(), (std::vector<int>{2, 3, 4}));
  for (std::size_t i = 1; i < combos.size(); ++i) {
    EXPECT_LT(combos[i - 1], combos[i]);
    EXPECT_TRUE(std::is_sorted(combos[i].begin(), combos[i].end()));
  }
}

TEST(Combinatorics, EarlyStopHonored) {
  int calls = 0;
  for_each_combination(10, 3, [&calls](const std::vector<int>&) {
    ++calls;
    return calls < 4;
  });
  EXPECT_EQ(calls, 4);
}

TEST(Combinatorics, SubsetsOfBaseKeepElements) {
  const std::vector<int> base{2, 5, 7};
  const auto subsets = all_subsets_of(base, 2);
  ASSERT_EQ(subsets.size(), 3u);
  EXPECT_EQ(subsets[0], (std::vector<int>{2, 5}));
  EXPECT_EQ(subsets[1], (std::vector<int>{2, 7}));
  EXPECT_EQ(subsets[2], (std::vector<int>{5, 7}));
}

TEST(Combinatorics, ComplementWorks) {
  EXPECT_EQ(complement({1, 3}, 5), (std::vector<int>{0, 2, 4}));
  EXPECT_EQ(complement({}, 3), (std::vector<int>{0, 1, 2}));
  EXPECT_THROW(complement({7}, 5), std::invalid_argument);
}

TEST(Combinatorics, SubsetPredicate) {
  EXPECT_TRUE(is_subset_sorted({1, 3}, {0, 1, 2, 3}));
  EXPECT_FALSE(is_subset_sorted({1, 5}, {0, 1, 2, 3}));
  EXPECT_TRUE(is_subset_sorted({}, {0}));
}

TEST(Stats, BasicMoments) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(variance(xs), 1.25);
  EXPECT_DOUBLE_EQ(min_value(xs), 1.0);
  EXPECT_DOUBLE_EQ(max_value(xs), 4.0);
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 10.0);
  EXPECT_THROW(quantile(xs, 1.5), std::invalid_argument);
}

TEST(Stats, EmptyRangeRejected) {
  const std::vector<double> empty;
  EXPECT_THROW(mean(empty), std::invalid_argument);
  EXPECT_THROW(min_value(empty), std::invalid_argument);
}

TEST(Stats, SummaryBundlesAllFields) {
  const std::vector<double> xs{3.0, 1.0, 2.0};
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 2.0);
}

TEST(Table, RendersAlignedColumns) {
  Table table({"name", "value"});
  table.add_row({"x", "1.5"});
  table.add_row({"longer", "2"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("| longer"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(Table, RejectsRaggedRows) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(format_scientific(0.00151, 2), "1.51e-03");
  EXPECT_EQ(format_double(1.0780, 4), "1.078");
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WritesHeaderAndRows) {
  std::ostringstream os;
  CsvWriter csv(os, {"t", "loss"});
  csv.add_numeric_row({1.0, 0.5});
  const std::string out = os.str();
  EXPECT_NE(out.find("t,loss"), std::string::npos);
  EXPECT_NE(out.find("1,0.5"), std::string::npos);
}

TEST(Csv, RejectsWrongWidth) {
  std::ostringstream os;
  CsvWriter csv(os, {"a"});
  EXPECT_THROW(csv.add_row({"1", "2"}), std::invalid_argument);
}

}  // namespace

// Tests for the Byzantine-broadcast substrate and the peer-to-peer DGD
// built on it: the IC1/IC2 conditions of Oral Messages under adversarial
// relay strategies, and lockstep agreement of the honest P2P estimates with
// the server-based run.
#include <gtest/gtest.h>

#include "abft/agg/cge.hpp"
#include "abft/attack/simple_faults.hpp"
#include "abft/p2p/dolev_strong.hpp"
#include "abft/p2p/eig.hpp"
#include "abft/p2p/p2p_dgd.hpp"
#include "abft/regress/problem.hpp"

namespace {

using namespace abft;
using linalg::Vector;
using p2p::Payload;

std::vector<const p2p::RelayStrategy*> no_faults(int n) {
  return std::vector<const p2p::RelayStrategy*>(static_cast<std::size_t>(n), nullptr);
}

TEST(OralMessages, RequiresNGreaterThanThreeF) {
  EXPECT_THROW(p2p::OralMessagesBroadcast(3, 1), std::invalid_argument);
  EXPECT_NO_THROW(p2p::OralMessagesBroadcast(4, 1));
  EXPECT_THROW(p2p::OralMessagesBroadcast(6, 2), std::invalid_argument);
  EXPECT_NO_THROW(p2p::OralMessagesBroadcast(7, 2));
}

TEST(OralMessages, FaultFreeBroadcastDeliversEverywhere) {
  const p2p::OralMessagesBroadcast bcast(4, 1);
  const Payload value{1.5, -2.5};
  const auto outcome = bcast.broadcast(0, value, no_faults(4), 9);
  for (const auto& decision : outcome.decisions) EXPECT_EQ(decision, value);
  EXPECT_GT(outcome.messages_sent, 0);
}

TEST(OralMessages, ValidityWithFaultyRelay) {
  // Honest source, one equivocating relay: every honest node must still
  // decide the source's value (IC2).
  const p2p::OralMessagesBroadcast bcast(4, 1);
  const p2p::EquivocateStrategy equivocate(10.0);
  const Payload value{3.0};
  for (int faulty = 1; faulty < 4; ++faulty) {
    auto strategies = no_faults(4);
    strategies[static_cast<std::size_t>(faulty)] = &equivocate;
    const auto outcome = bcast.broadcast(0, value, strategies, 31);
    for (int node = 0; node < 4; ++node) {
      if (node == faulty) continue;
      EXPECT_EQ(outcome.decisions[static_cast<std::size_t>(node)], value)
          << "faulty relay " << faulty << " broke validity at node " << node;
    }
  }
}

TEST(OralMessages, AgreementWithFaultySource) {
  // Byzantine source equivocating: all honest nodes must still agree (IC1).
  const p2p::OralMessagesBroadcast bcast(4, 1);
  const p2p::EquivocateStrategy equivocate(5.0);
  auto strategies = no_faults(4);
  strategies[0] = &equivocate;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto outcome = bcast.broadcast(0, Payload{1.0, 1.0}, strategies, seed);
    const auto& reference = outcome.decisions[1];
    EXPECT_EQ(outcome.decisions[2], reference) << "seed " << seed;
    EXPECT_EQ(outcome.decisions[3], reference) << "seed " << seed;
  }
}

TEST(OralMessages, AgreementWithSilentSource) {
  const p2p::OralMessagesBroadcast bcast(4, 1);
  const p2p::SilentStrategy silent;
  auto strategies = no_faults(4);
  strategies[0] = &silent;
  const auto outcome = bcast.broadcast(0, Payload{9.0}, strategies, 3);
  // Everyone falls back to the protocol default (zero vector), consistently.
  for (int node = 1; node < 4; ++node) {
    EXPECT_EQ(outcome.decisions[static_cast<std::size_t>(node)], Payload{0.0});
  }
}

TEST(OralMessages, TwoFaultsWithSevenNodes) {
  const p2p::OralMessagesBroadcast bcast(7, 2);
  const p2p::EquivocateStrategy equivocate(8.0);
  const p2p::FixedValueStrategy fixed(Payload{-4.0});
  // Faulty source + one faulty relay: honest agreement must survive.
  auto strategies = no_faults(7);
  strategies[0] = &equivocate;
  strategies[3] = &fixed;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto outcome = bcast.broadcast(0, Payload{1.0}, strategies, seed);
    const auto& reference = outcome.decisions[1];
    for (int node = 2; node < 7; ++node) {
      if (node == 3) continue;
      EXPECT_EQ(outcome.decisions[static_cast<std::size_t>(node)], reference)
          << "seed " << seed << " node " << node;
    }
  }
}

TEST(OralMessages, HonestSourceWithTwoFaultyRelays) {
  const p2p::OralMessagesBroadcast bcast(7, 2);
  const p2p::EquivocateStrategy equivocate(8.0);
  auto strategies = no_faults(7);
  strategies[2] = &equivocate;
  strategies[5] = &equivocate;
  const Payload value{2.5, 0.5};
  const auto outcome = bcast.broadcast(1, value, strategies, 13);
  for (int node = 0; node < 7; ++node) {
    if (node == 2 || node == 5) continue;
    EXPECT_EQ(outcome.decisions[static_cast<std::size_t>(node)], value);
  }
}

TEST(OralMessages, RejectsTooManyFaulty) {
  const p2p::OralMessagesBroadcast bcast(4, 1);
  const p2p::SilentStrategy silent;
  std::vector<const p2p::RelayStrategy*> strategies(4, &silent);
  EXPECT_THROW(bcast.broadcast(0, Payload{1.0}, strategies, 0), std::invalid_argument);
}

TEST(OralMessages, MessageCountMatchesRecursionFormula) {
  // OM(m) over L lieutenants sends L + L * OM(m-1) over L-1 messages:
  // f = 1, L = n - 1:  (n-1) + (n-1)(n-2).
  for (const int n : {4, 5, 6, 7}) {
    const p2p::OralMessagesBroadcast bcast(n, 1);
    const auto outcome =
        bcast.broadcast(0, Payload{1.0},
                        std::vector<const p2p::RelayStrategy*>(static_cast<std::size_t>(n),
                                                               nullptr),
                        0);
    const long lieutenants = n - 1;
    EXPECT_EQ(outcome.messages_sent, lieutenants + lieutenants * (lieutenants - 1)) << n;
  }
  // f = 2: L + L((L-1) + (L-1)(L-2)).
  const p2p::OralMessagesBroadcast deep(7, 2);
  const auto outcome = deep.broadcast(
      0, Payload{1.0}, std::vector<const p2p::RelayStrategy*>(7, nullptr), 0);
  const long l = 6;
  EXPECT_EQ(outcome.messages_sent, l + l * ((l - 1) + (l - 1) * (l - 2)));
}

TEST(OralMessages, MixedStrategiesAgreementSweep) {
  // Every combination of two distinct faulty nodes with different strategy
  // types: honest nodes must always agree.
  const p2p::OralMessagesBroadcast bcast(7, 2);
  const p2p::EquivocateStrategy equivocate(3.0);
  const p2p::SilentStrategy silent;
  const p2p::FixedValueStrategy fixed(Payload{9.0, -9.0});
  const std::vector<const p2p::RelayStrategy*> kinds{&equivocate, &silent, &fixed};
  const Payload value{1.0, 2.0};
  for (std::size_t a = 0; a < kinds.size(); ++a) {
    for (std::size_t b = 0; b < kinds.size(); ++b) {
      auto strategies = no_faults(7);
      strategies[2] = kinds[a];
      strategies[4] = kinds[b];
      const auto outcome = bcast.broadcast(0, value, strategies, 5);
      // Source honest: validity must hold at every honest node.
      for (int node = 0; node < 7; ++node) {
        if (node == 2 || node == 4) continue;
        EXPECT_EQ(outcome.decisions[static_cast<std::size_t>(node)], value)
            << "strategies " << a << "/" << b << " node " << node;
      }
    }
  }
}

TEST(OralMessages, MessageComplexityGrowsWithF) {
  const p2p::OralMessagesBroadcast shallow(7, 1);
  const p2p::OralMessagesBroadcast deep(7, 2);
  const auto a = shallow.broadcast(0, Payload{1.0}, no_faults(7), 0);
  const auto b = deep.broadcast(0, Payload{1.0}, no_faults(7), 0);
  EXPECT_GT(b.messages_sent, a.messages_sent);
}

// --------------------------- Dolev-Strong ----------------------------------

std::vector<const p2p::DsStrategy*> ds_no_faults(int n) {
  return std::vector<const p2p::DsStrategy*>(static_cast<std::size_t>(n), nullptr);
}

TEST(DolevStrong, HonestSourceDeliversEverywhere) {
  const p2p::DolevStrongBroadcast bcast(5, 2);
  const p2p::DsPayload value{3.5, -1.0};
  const auto outcome = bcast.broadcast(1, value, ds_no_faults(5), 9);
  for (const auto& decision : outcome.decisions) EXPECT_EQ(decision, value);
  EXPECT_EQ(outcome.rounds_used, 3);  // f + 1
}

TEST(DolevStrong, ToleratesAnyFBelowN) {
  // The authenticated protocol has no n > 3f restriction: n = 4, f = 3.
  EXPECT_NO_THROW(p2p::DolevStrongBroadcast(4, 3));
  EXPECT_THROW(p2p::DolevStrongBroadcast(4, 4), std::invalid_argument);

  // With 3 of 4 nodes faulty, the lone honest node still "agrees" (with
  // itself) — protocol runs to completion.
  const p2p::DolevStrongBroadcast bcast(4, 3);
  const p2p::SilentDsStrategy silent;
  std::vector<const p2p::DsStrategy*> strategies(4, &silent);
  strategies[2] = nullptr;  // the honest one
  const auto outcome = bcast.broadcast(0, p2p::DsPayload{1.0}, strategies, 4);
  EXPECT_EQ(outcome.decisions[2], p2p::DsPayload{0.0});  // silent source -> default
}

TEST(DolevStrong, ValidityWithFaultyRelays) {
  // Honest source, two selectively-forwarding faulty relays: every honest
  // node must still decide the source's value.
  const p2p::DolevStrongBroadcast bcast(6, 2);
  const p2p::EquivocatingDsStrategy flaky(10.0, 0.3);
  const p2p::DsPayload value{7.0};
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto strategies = ds_no_faults(6);
    strategies[3] = &flaky;
    strategies[5] = &flaky;
    const auto outcome = bcast.broadcast(0, value, strategies, seed);
    for (int node = 0; node < 6; ++node) {
      if (node == 3 || node == 5) continue;
      EXPECT_EQ(outcome.decisions[static_cast<std::size_t>(node)], value)
          << "seed " << seed << " node " << node;
    }
  }
}

TEST(DolevStrong, AgreementUnderEquivocatingSource) {
  // Byzantine source signs a different value for every receiver, plus a
  // selective-forwarding accomplice.  All honest nodes must agree (they
  // extract >= 2 values and fall back to the default, or all extract the
  // same single value).
  const p2p::DolevStrongBroadcast bcast(6, 2);
  const p2p::EquivocatingDsStrategy equivocate(5.0, 0.5);
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    auto strategies = ds_no_faults(6);
    strategies[0] = &equivocate;  // the source
    strategies[4] = &equivocate;  // accomplice relay
    const auto outcome = bcast.broadcast(0, p2p::DsPayload{1.0, 1.0}, strategies, seed);
    const auto& reference = outcome.decisions[1];
    for (int node = 2; node < 6; ++node) {
      if (node == 4) continue;
      EXPECT_EQ(outcome.decisions[static_cast<std::size_t>(node)], reference)
          << "seed " << seed << " node " << node;
    }
  }
}

TEST(DolevStrong, AgreementWithMaximalFaultCount) {
  // n = 5, f = 4: only one honest node — agreement is vacuous but the
  // protocol must terminate after f + 1 rounds; sweep seeds for crashes.
  const p2p::DolevStrongBroadcast bcast(5, 4);
  const p2p::EquivocatingDsStrategy equivocate(2.0, 0.4);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    std::vector<const p2p::DsStrategy*> strategies(5, &equivocate);
    strategies[3] = nullptr;
    const auto outcome = bcast.broadcast(0, p2p::DsPayload{2.0}, strategies, seed);
    EXPECT_EQ(outcome.rounds_used, 5);
  }
}

TEST(DolevStrong, RejectsTooManyFaulty) {
  const p2p::DolevStrongBroadcast bcast(4, 1);
  const p2p::SilentDsStrategy silent;
  std::vector<const p2p::DsStrategy*> strategies(4, &silent);
  EXPECT_THROW(bcast.broadcast(0, p2p::DsPayload{1.0}, strategies, 0), std::invalid_argument);
}

TEST(DolevStrong, FZeroIsSingleRound) {
  const p2p::DolevStrongBroadcast bcast(4, 0);
  const auto outcome = bcast.broadcast(2, p2p::DsPayload{4.0}, ds_no_faults(4), 0);
  EXPECT_EQ(outcome.rounds_used, 1);
  EXPECT_EQ(outcome.messages_sent, 3);
  for (const auto& decision : outcome.decisions) EXPECT_EQ(decision, p2p::DsPayload{4.0});
}

// --------------------------- P2P DGD ---------------------------------------

struct P2pFixture {
  regress::RegressionProblem problem = regress::RegressionProblem::paper_instance();
  opt::HarmonicSchedule schedule{1.5};

  [[nodiscard]] p2p::P2pDgdConfig config(int iterations, int f) {
    return p2p::P2pDgdConfig{Vector{0.0, 0.0}, opt::Box::centered_cube(2, 1000.0), &schedule,
                             iterations, f, 5};
  }
};

TEST(P2pDgd, FaultFreeMatchesAggregateMinimum) {
  P2pFixture fx;
  const auto roster = sim::honest_roster(fx.problem.costs());
  const agg::CgeAggregator cge;
  const auto result = p2p::run_p2p_dgd(roster, fx.config(300, 0), cge);
  EXPECT_EQ(result.honest_nodes.size(), 6u);
  const auto x_all = fx.problem.subset_minimizer({});
  for (const auto& trace : result.traces) {
    EXPECT_LT(linalg::distance(trace.final_estimate(), x_all), 1e-2);
  }
}

TEST(P2pDgd, HonestEstimatesStayInLockstep) {
  P2pFixture fx;
  auto roster = sim::honest_roster(fx.problem.costs());
  const attack::GradientReverseFault fault;
  sim::assign_fault(roster, 0, fault);
  const agg::CgeAggregator cge;
  const p2p::EquivocateStrategy equivocate(50.0);
  const auto result = p2p::run_p2p_dgd(roster, fx.config(100, 1), cge, &equivocate);
  ASSERT_EQ(result.traces.size(), 5u);
  // Byzantine broadcast forces identical honest views, hence identical
  // estimates at every iteration.
  for (std::size_t k = 1; k < result.traces.size(); ++k) {
    ASSERT_EQ(result.traces[k].estimates.size(), result.traces[0].estimates.size());
    for (std::size_t t = 0; t < result.traces[0].estimates.size(); ++t) {
      EXPECT_EQ(result.traces[k].estimates[t], result.traces[0].estimates[t])
          << "node " << k << " diverged at iteration " << t;
    }
  }
}

TEST(P2pDgd, ConvergesNearHonestMinimizerUnderAttack) {
  P2pFixture fx;
  auto roster = sim::honest_roster(fx.problem.costs());
  const attack::GradientReverseFault fault;
  sim::assign_fault(roster, 0, fault);
  const agg::CgeAggregator cge;
  const auto result = p2p::run_p2p_dgd(roster, fx.config(400, 1), cge);
  const auto x_h = fx.problem.subset_minimizer({1, 2, 3, 4, 5});
  // (2f, eps)-redundancy holds with eps = 0.0890: the honest estimates land
  // within eps of x_H, as in the server-based run.
  EXPECT_LT(linalg::distance(result.traces.front().final_estimate(), x_h), 0.0890);
}

TEST(P2pDgd, CountsBroadcastMessages) {
  P2pFixture fx;
  const auto roster = sim::honest_roster(fx.problem.costs());
  const agg::CgeAggregator cge;
  const auto result = p2p::run_p2p_dgd(roster, fx.config(2, 1), cge);
  // Per round: 6 sources, each OM(1) among 5 lieutenants = 5 + 5*4 = 25.
  EXPECT_EQ(result.broadcast_messages, 2L * 6L * 25L);
}

TEST(P2pDgdAuthenticated, WorksWhereOralMessagesCannot) {
  // n = 6, f = 2: unauthenticated broadcast needs n > 3f = 6 and is
  // impossible; Dolev-Strong handles it, and the optimization layer still
  // satisfies Lemma 1 (f < n/2).
  P2pFixture fx;
  auto roster = sim::honest_roster(fx.problem.costs());
  const attack::GradientReverseFault fault;
  sim::assign_fault(roster, 0, fault);
  sim::assign_fault(roster, 1, fault);
  const agg::CgeAggregator cge;

  EXPECT_THROW(p2p::run_p2p_dgd(roster, fx.config(10, 2), cge), std::invalid_argument);

  const p2p::EquivocatingDsStrategy equivocate(20.0, 0.5);
  const auto result = p2p::run_p2p_dgd_authenticated(roster, fx.config(200, 2), cge, &equivocate);
  ASSERT_EQ(result.traces.size(), 4u);
  // Honest estimates in lockstep despite in-protocol equivocation.
  for (std::size_t k = 1; k < result.traces.size(); ++k) {
    for (std::size_t t = 0; t < result.traces[0].estimates.size(); ++t) {
      ASSERT_EQ(result.traces[k].estimates[t], result.traces[0].estimates[t])
          << "node " << k << " diverged at iteration " << t;
    }
  }
  // And the run makes optimization progress toward the honest minimizer.
  const auto x_h = fx.problem.subset_minimizer({2, 3, 4, 5});
  EXPECT_LT(linalg::distance(result.traces.front().final_estimate(), x_h), 0.5);
}

TEST(P2pDgdAuthenticated, MatchesUnauthenticatedRunWhenBothApply) {
  // With f = 1 and faithful relays both transports deliver the same values,
  // so the trajectories coincide exactly.
  P2pFixture fx;
  auto roster = sim::honest_roster(fx.problem.costs());
  const attack::GradientReverseFault fault;
  sim::assign_fault(roster, 0, fault);
  const agg::CgeAggregator cge;
  const auto om = p2p::run_p2p_dgd(roster, fx.config(60, 1), cge);
  const auto ds = p2p::run_p2p_dgd_authenticated(roster, fx.config(60, 1), cge);
  ASSERT_EQ(om.traces.size(), ds.traces.size());
  for (std::size_t k = 0; k < om.traces.size(); ++k) {
    for (std::size_t t = 0; t < om.traces[k].estimates.size(); ++t) {
      EXPECT_EQ(om.traces[k].estimates[t], ds.traces[k].estimates[t]);
    }
  }
}

TEST(P2pDgdAuthenticated, RejectsHalfFaulty) {
  P2pFixture fx;
  const auto roster = sim::honest_roster(fx.problem.costs());
  const agg::CgeAggregator cge;
  EXPECT_THROW(p2p::run_p2p_dgd_authenticated(roster, fx.config(10, 3), cge),
               std::invalid_argument);  // f = n/2
}

TEST(P2pDgd, ValidatesConfiguration) {
  P2pFixture fx;
  const auto roster = sim::honest_roster(fx.problem.costs());
  const agg::CgeAggregator cge;
  EXPECT_THROW(p2p::run_p2p_dgd(roster, fx.config(10, 2), cge), std::invalid_argument);  // 6 <= 3*2
  auto config = fx.config(10, 1);
  config.schedule = nullptr;
  EXPECT_THROW(p2p::run_p2p_dgd(roster, config, cge), std::invalid_argument);
}

}  // namespace

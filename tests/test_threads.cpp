// ThreadPool edge cases: empty and thread-starved ranges, the nested
// dispatch fallback, and exception propagation out of worker chunks — the
// corners a happy-path determinism test never touches but a driver refactor
// can trip (a zero-row round after mass elimination, a kernel accidentally
// re-entering the pool it runs on, a throwing cost function inside a
// parallel phase).
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "abft/agg/batch.hpp"
#include "abft/agg/threads.hpp"

namespace {

using namespace abft;

void hits_add(std::vector<std::atomic<int>>& hits, int i) {
  hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
}

TEST(ThreadPool, ZeroRangeNeverInvokes) {
  agg::ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(5, 5, 4, [&](int, int) { ++calls; });
  pool.parallel_for(7, 3, 4, [&](int, int) { ++calls; });  // inverted == empty
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, RangeSmallerThanWidthCoversEveryIndexOnce) {
  // 3 rows on an 8-wide pool: workers clamp to the range, every index runs
  // exactly once, and no chunk is empty.
  agg::ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(0, 3, 8, [&](int lo, int hi) {
    ASSERT_LT(lo, hi);
    for (int i = lo; i < hi; ++i) hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleIndexRunsOnCaller) {
  agg::ThreadPool pool(4);
  int lo_seen = -1;
  int hi_seen = -1;
  pool.parallel_for(41, 42, 4, [&](int lo, int hi) {
    lo_seen = lo;
    hi_seen = hi;
  });
  EXPECT_EQ(lo_seen, 41);
  EXPECT_EQ(hi_seen, 42);
}

TEST(ThreadPool, NestedDispatchFallsBackToSerial) {
  // A chunk that re-enters the pool must not deadlock on the job slot: the
  // nested call detects it is inside a chunk and degenerates to one direct
  // serial invocation covering its whole range.
  agg::ThreadPool pool(4);
  constexpr int kOuter = 4;
  constexpr int kInner = 32;
  std::mutex mutex;
  std::vector<std::pair<int, int>> inner_chunks;
  std::vector<std::atomic<int>> inner_hits(kInner);
  pool.parallel_for(0, kOuter, 4, [&](int outer_lo, int outer_hi) {
    for (int o = outer_lo; o < outer_hi; ++o) {
      pool.parallel_for(0, kInner, 4, [&](int lo, int hi) {
        {
          std::lock_guard<std::mutex> lock(mutex);
          inner_chunks.emplace_back(lo, hi);
        }
        for (int i = lo; i < hi; ++i) hits_add(inner_hits, i);
      });
    }
  });
  // Every nested dispatch ran as exactly one full-range serial chunk...
  ASSERT_EQ(inner_chunks.size(), static_cast<std::size_t>(kOuter));
  for (const auto& [lo, hi] : inner_chunks) {
    EXPECT_EQ(lo, 0);
    EXPECT_EQ(hi, kInner);
  }
  // ...and the work happened once per outer index.
  for (const auto& h : inner_hits) EXPECT_EQ(h.load(), kOuter);
}

TEST(ThreadPool, WorkspaceRunParallelNestedIsSafe) {
  // The kernel-facing wrapper: a workspace whose pool is mid-job falls back
  // the same way, so an aggregation kernel invoked from a round-level phase
  // can never hang the driver.
  agg::ThreadPool pool(4);
  agg::AggregatorWorkspace ws;
  ws.pool = &pool;
  ws.parallel_threads = 4;
  std::vector<std::atomic<int>> hits(64);
  ws.run_parallel(0, 8, [&](int outer_lo, int outer_hi) {
    for (int o = outer_lo; o < outer_hi; ++o) {
      ws.run_parallel(0, 8, [&](int lo, int hi) {
        for (int i = lo; i < hi; ++i) hits_add(hits, o * 8 + i);
      });
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ExceptionFromWorkerChunkPropagates) {
  // 8 indices over width 4: chunks are [0,2) caller, [2,4), [4,6), [6,8)
  // workers.  A throw in a worker chunk must surface in the caller, and the
  // non-throwing chunks must still have run.
  agg::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(8);
  EXPECT_THROW(
      pool.parallel_for(0, 8, 4,
                        [&](int lo, int hi) {
                          if (lo == 6) throw std::runtime_error("worker boom");
                          for (int i = lo; i < hi; ++i) hits_add(hits, i);
                        }),
      std::runtime_error);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << i;
}

TEST(ThreadPool, CallerChunkExceptionWinsAndPoolStaysUsable) {
  agg::ThreadPool pool(4);
  try {
    pool.parallel_for(0, 8, 4, [&](int lo, int) {
      if (lo == 0) throw std::logic_error("caller boom");
      if (lo == 6) throw std::runtime_error("worker boom");
    });
    FAIL() << "expected an exception";
  } catch (const std::logic_error& error) {
    EXPECT_STREQ(error.what(), "caller boom");
  }
  // The job slot must be clean again: a fresh job runs normally.
  std::vector<std::atomic<int>> hits(8);
  pool.parallel_for(0, 8, 4, [&](int lo, int hi) {
    for (int i = lo; i < hi; ++i) hits_add(hits, i);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SpawningParallelForZeroAndSmallRanges) {
  // The legacy spawning fallback in batch.hpp shares the clamping rules.
  int calls = 0;
  agg::parallel_for(3, 3, 4, [&](int, int) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::vector<std::atomic<int>> hits(2);
  agg::parallel_for(0, 2, 8, [&](int lo, int hi) {
    for (int i = lo; i < hi; ++i) hits_add(hits, i);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace

// The sweep orchestration layer: grid expansion (cartesian size/ordering,
// deterministic run ids, seed ranges), spec validation (unknown/duplicate/
// conflicting keys), and — the load-bearing checks — that sweep execution is
// bit-identical to run-by-run run_scenario and row-for-row identical at
// every thread count.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "abft/sweep/sweep.hpp"
#include "abft/util/json.hpp"

namespace {

using namespace abft;

sweep::SweepSpec parse(const std::string& text) {
  return sweep::parse_sweep(util::parse_json(text));
}

const char* kQuadraticGrid = R"({
  "name": "grid",
  "base": {
    "driver": "dgd", "problem": "quadratic", "num_agents": 6, "dim": 2,
    "iterations": 12, "box_halfwidth": 30.0,
    "schedule": {"kind": "harmonic", "scale": 0.4}
  },
  "sweep": {
    "aggregator": ["cwtm", "cge"],
    "f": [0, 1],
    "seed": {"from": 5, "count": 3}
  }
})";

// ------------------------------ expansion -----------------------------------

TEST(SweepExpand, CartesianSizeAndRowMajorOrdering) {
  const auto runs = sweep::expand_sweep(parse(kQuadraticGrid));
  // |aggregator| x |f| x |seed| in canonical order, last axis fastest.
  ASSERT_EQ(runs.size(), 2u * 2u * 3u);
  EXPECT_EQ(runs[0].spec.aggregator, "cwtm");
  EXPECT_EQ(runs[0].spec.f, 0);
  EXPECT_EQ(runs[0].spec.seed, 5u);
  EXPECT_EQ(runs[1].spec.seed, 6u);  // seed varies fastest
  EXPECT_EQ(runs[2].spec.seed, 7u);
  EXPECT_EQ(runs[3].spec.f, 1);  // then f
  EXPECT_EQ(runs[3].spec.seed, 5u);
  EXPECT_EQ(runs[6].spec.aggregator, "cge");  // aggregator outermost
  EXPECT_EQ(runs[6].spec.f, 0);
  EXPECT_EQ(runs[6].spec.seed, 5u);
  // Axis cells mirror the spec values, in canonical order.
  ASSERT_EQ(runs[0].axes.size(), 3u);
  EXPECT_EQ(runs[0].axes[0].axis, "aggregator");
  EXPECT_EQ(runs[0].axes[1].axis, "f");
  EXPECT_EQ(runs[0].axes[2].axis, "seed");
}

TEST(SweepExpand, DeterministicRunIds) {
  const auto runs = sweep::expand_sweep(parse(kQuadraticGrid));
  EXPECT_EQ(runs[0].run_id, "000_aggregator=cwtm_f=0_seed=5");
  EXPECT_EQ(runs[7].run_id, "007_aggregator=cge_f=0_seed=6");
  EXPECT_EQ(runs[11].run_id, "011_aggregator=cge_f=1_seed=7");
  // Expansion is a pure function of the spec.
  const auto again = sweep::expand_sweep(parse(kQuadraticGrid));
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].run_id, again[i].run_id);
  }
}

TEST(SweepExpand, SeedRangeAndExplicitListAgree) {
  const auto ranged = parse(kQuadraticGrid);
  auto listed = parse(R"({
    "base": {"driver": "dgd", "problem": "quadratic", "num_agents": 6, "dim": 2,
             "iterations": 12, "box_halfwidth": 30.0,
             "schedule": {"kind": "harmonic", "scale": 0.4}},
    "sweep": {"aggregator": ["cwtm", "cge"], "f": [0, 1], "seed": [5, 6, 7]}
  })");
  EXPECT_EQ(ranged.seed, listed.seed);
  EXPECT_EQ(ranged.seed, (std::vector<std::uint64_t>{5, 6, 7}));
}

TEST(SweepExpand, FaultPresetsAndVariantPatchesApply) {
  // The fig2 shape: an attack axis replaced wholesale by a variant that
  // clears the faults and shrinks the roster — variants apply last.
  const auto runs = sweep::expand_sweep(parse(R"({
    "base": {"driver": "dgd", "problem": "paper_regression", "iterations": 5,
             "f": 1, "seed": 2021, "schedule": {"kind": "harmonic", "scale": 1.5}},
    "sweep": {
      "faults": [
        {"label": "reverse", "faults": [{"agent": 0, "kind": "gradient-reverse"}]},
        {"label": "random", "faults": [{"agent": 0, "kind": "random", "param": 200.0}]}
      ],
      "variants": [
        {"label": "fault-free",
         "patch": {"aggregator": "average", "f": 0, "agents": [1, 2, 3, 4, 5], "faults": []}},
        {"label": "CWTM", "patch": {"aggregator": "cwtm"}}
      ]
    }
  })"));
  ASSERT_EQ(runs.size(), 4u);
  // fault-free under both attacks: faults cleared, subset roster, f = 0.
  EXPECT_TRUE(runs[0].spec.faults.empty());
  EXPECT_EQ(runs[0].spec.f, 0);
  EXPECT_EQ(runs[0].spec.agents.size(), 5u);
  EXPECT_EQ(runs[0].spec.aggregator, "average");
  // CWTM keeps the axis's fault assignment.
  ASSERT_EQ(runs[1].spec.faults.size(), 1u);
  EXPECT_EQ(runs[1].spec.faults[0].kind, "gradient-reverse");
  EXPECT_EQ(runs[1].spec.aggregator, "cwtm");
  ASSERT_EQ(runs[3].spec.faults.size(), 1u);
  EXPECT_EQ(runs[3].spec.faults[0].kind, "random");
  EXPECT_EQ(runs[3].run_id, "003_faults=random_variants=CWTM");
}

TEST(SweepExpand, ParticipationAxisMergesIntoNestedAxes) {
  const auto runs = sweep::expand_sweep(parse(R"({
    "base": {"driver": "dgd", "problem": "quadratic", "num_agents": 5, "dim": 2,
             "iterations": 4, "schedule": {"kind": "harmonic", "scale": 0.4},
             "axes": {"perturbation_seed": 9}},
    "sweep": {"participation": [1.0, 0.8], "straggler_probability": [0.0, 0.25]}
  })"));
  ASSERT_EQ(runs.size(), 4u);
  // The nested merge must preserve the base's other axes keys.
  EXPECT_EQ(runs[3].spec.axes.perturbation_seed, 9u);
  EXPECT_DOUBLE_EQ(runs[3].spec.axes.participation, 0.8);
  EXPECT_DOUBLE_EQ(runs[3].spec.axes.straggler_probability, 0.25);
  EXPECT_DOUBLE_EQ(runs[0].spec.axes.participation, 1.0);
  EXPECT_DOUBLE_EQ(runs[0].spec.axes.straggler_probability, 0.0);
}

// The shards axis rebuilds the nested aggregator/hierarchy object per run
// and lands in canonical position (between f and seed) in ids and cells.
TEST(SweepExpand, ShardsAxisSetsNestedHierarchyMember) {
  const auto runs = sweep::expand_sweep(parse(R"({
    "base": {"driver": "dgd", "problem": "quadratic", "num_agents": 24, "dim": 2,
             "iterations": 4, "f": 2, "box_halfwidth": 40.0,
             "schedule": {"kind": "harmonic", "scale": 0.4},
             "aggregator": {"hierarchy": {"leaf_rule": "krum", "root_rule": "cwtm"}}},
    "sweep": {"shards": [1, 4], "seed": [7, 8]}
  })"));
  ASSERT_EQ(runs.size(), 4u);
  EXPECT_EQ(runs[0].run_id, "000_shards=1_seed=7");
  EXPECT_EQ(runs[3].run_id, "003_shards=4_seed=8");
  ASSERT_TRUE(runs[3].spec.hierarchy.has_value());
  EXPECT_EQ(runs[3].spec.hierarchy->shards, 4);
  // The base's other hierarchy keys survive the per-run rebuild.
  EXPECT_EQ(runs[3].spec.hierarchy->leaf_rule, "krum");
  EXPECT_EQ(runs[3].spec.aggregator, "hier-4-krum-cwtm");
  EXPECT_EQ(runs[0].spec.hierarchy->shards, 1);
  EXPECT_EQ(runs[0].axes.front().axis, "shards");
  // A base with no aggregator at all defaults to an all-cwtm tree.
  const auto defaulted = sweep::expand_sweep(parse(R"({
    "base": {"driver": "dgd", "problem": "quadratic", "num_agents": 12, "dim": 2,
             "iterations": 3},
    "sweep": {"shards": [3]}
  })"));
  ASSERT_EQ(defaulted.size(), 1u);
  ASSERT_TRUE(defaulted[0].spec.hierarchy.has_value());
  EXPECT_EQ(defaulted[0].spec.aggregator, "hier-3-cwtm-cwtm");
}

// The coreset_size axis rebuilds aggregator/reduction/coreset per run, lands
// after shards in canonical order, and composes with the shards axis into
// per-shard coresets.
TEST(SweepExpand, CoresetSizeAxisSetsNestedReductionMember) {
  const auto runs = sweep::expand_sweep(parse(R"({
    "base": {"driver": "dgd", "problem": "quadratic", "num_agents": 30, "dim": 2,
             "iterations": 4, "f": 2, "box_halfwidth": 40.0,
             "schedule": {"kind": "harmonic", "scale": 0.4},
             "aggregator": {"rule": "cwtm"}},
    "sweep": {"coreset_size": [8, 0], "seed": [7, 8]}
  })"));
  ASSERT_EQ(runs.size(), 4u);
  EXPECT_EQ(runs[0].run_id, "000_coreset_size=8_seed=7");
  EXPECT_EQ(runs[3].run_id, "003_coreset_size=0_seed=8");
  ASSERT_TRUE(runs[0].spec.coreset.has_value());
  EXPECT_EQ(runs[0].spec.coreset->size, 8);
  EXPECT_EQ(runs[0].spec.coreset_rule, "cwtm");
  EXPECT_EQ(runs[0].spec.aggregator, "coreset-8-cwtm");
  // size 0 = the auto budget f + ceil(sqrt n).
  EXPECT_EQ(runs[2].spec.coreset->size, 0);
  EXPECT_EQ(runs[2].spec.aggregator, "coreset-auto-cwtm");
  // Composing with the shards axis: the reduction object lands beside the
  // hierarchy object and becomes the per-shard leaf coreset.
  const auto composed = sweep::expand_sweep(parse(R"({
    "base": {"driver": "dgd", "problem": "quadratic", "num_agents": 30, "dim": 2,
             "iterations": 3, "f": 2,
             "aggregator": {"hierarchy": {"leaf_rule": "cwtm", "root_rule": "cwtm"}}},
    "sweep": {"shards": [2], "coreset_size": [6]}
  })"));
  ASSERT_EQ(composed.size(), 1u);
  EXPECT_EQ(composed[0].run_id, "000_shards=2_coreset_size=6");
  ASSERT_TRUE(composed[0].spec.hierarchy.has_value());
  ASSERT_TRUE(composed[0].spec.hierarchy->coreset.has_value());
  EXPECT_EQ(composed[0].spec.hierarchy->coreset->size, 6);
  EXPECT_EQ(composed[0].spec.aggregator, "hier-2-cwtm-cwtm-cs6");
}

// The reduction_kind axis re-keys the reduction object per run, lands after
// coreset_size in canonical order, and composes with it: the size axis
// writes the inner config, the kind axis renames the strategy around it.
TEST(SweepExpand, ReductionKindAxisRekeysTheReductionObject) {
  const auto runs = sweep::expand_sweep(parse(R"({
    "base": {"driver": "dgd", "problem": "quadratic", "num_agents": 30, "dim": 2,
             "iterations": 4, "f": 2, "aggregator": {"rule": "cwtm"}},
    "sweep": {"coreset_size": [8], "reduction_kind": ["coreset", "sample"]}
  })"));
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].run_id, "000_coreset_size=8_reduction_kind=coreset");
  EXPECT_EQ(runs[1].run_id, "001_coreset_size=8_reduction_kind=sample");
  ASSERT_TRUE(runs[0].spec.coreset.has_value());
  EXPECT_EQ(runs[0].spec.coreset->kind, agg::CoresetConfig::Kind::kcenter);
  EXPECT_EQ(runs[0].spec.coreset->size, 8);
  EXPECT_EQ(runs[0].spec.aggregator, "coreset-8-cwtm");
  ASSERT_TRUE(runs[1].spec.coreset.has_value());
  EXPECT_EQ(runs[1].spec.coreset->kind, agg::CoresetConfig::Kind::sample);
  EXPECT_EQ(runs[1].spec.coreset->size, 8);
  EXPECT_EQ(runs[1].spec.aggregator, "sample-8-cwtm");
  // Alone, the axis creates a default (auto-size) reduction of each kind.
  const auto alone = sweep::expand_sweep(parse(R"({
    "base": {"driver": "dgd", "problem": "quadratic", "num_agents": 30, "dim": 2,
             "iterations": 3, "f": 2},
    "sweep": {"reduction_kind": ["sample"]}
  })"));
  ASSERT_EQ(alone.size(), 1u);
  ASSERT_TRUE(alone[0].spec.coreset.has_value());
  EXPECT_EQ(alone[0].spec.coreset->kind, agg::CoresetConfig::Kind::sample);
  EXPECT_EQ(alone[0].spec.aggregator, "sample-auto-cwtm");
}

// ------------------------------ validation ----------------------------------

TEST(SweepParse, RejectsUnknownAndDuplicateKeys) {
  // Unknown axis.
  EXPECT_THROW(parse(R"({"base": {}, "sweep": {"aggregatr": ["cwtm"]}})"),
               std::invalid_argument);
  // Unknown top-level key.
  EXPECT_THROW(parse(R"({"base": {}, "sweep": {"f": [1]}, "thread": 2})"),
               std::invalid_argument);
  // Duplicate axis key (the reader resolves last-wins; the sweep layer must
  // reject the contradiction instead).
  EXPECT_THROW(parse(R"({"base": {}, "sweep": {"f": [1], "f": [2]}})"),
               std::invalid_argument);
  // Duplicate key inside the base.
  EXPECT_THROW(parse(R"({"base": {"seed": 1, "seed": 2}, "sweep": {"f": [1]}})"),
               std::invalid_argument);
  // Empty axis list.
  EXPECT_THROW(parse(R"({"base": {}, "sweep": {"f": []}})"), std::invalid_argument);
  // No axes at all.
  EXPECT_THROW(parse(R"({"base": {}, "sweep": {}})"), std::invalid_argument);
  // Duplicate labels.
  EXPECT_THROW(parse(R"({"base": {}, "sweep": {"variants": [
    {"label": "a", "patch": {"f": 1}}, {"label": "a", "patch": {"f": 2}}]}})"),
               std::invalid_argument);
  // Labels that only differ in sanitized-away characters would emit
  // indistinguishable run ids / CSV cells — duplicates too.
  EXPECT_THROW(parse(R"({"base": {}, "sweep": {"variants": [
    {"label": "a b", "patch": {"f": 1}}, {"label": "a-b", "patch": {"f": 2}}]}})"),
               std::invalid_argument);
}

TEST(SweepParse, RejectsAxesConflictingWithBase) {
  // A swept key the base also sets is a spec contradicting itself.
  EXPECT_THROW(parse(R"({"base": {"aggregator": "cwtm"},
                         "sweep": {"aggregator": ["cge"]}})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"base": {"axes": {"participation": 0.9}},
                         "sweep": {"participation": [0.5]}})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"base": {"faults": [{"agent": 0, "kind": "zero"}]},
                         "sweep": {"faults": [{"label": "a", "faults": []}]}})"),
               std::invalid_argument);
  // Variants are exempt: patches exist to override the base.
  EXPECT_NO_THROW(parse(R"({"base": {"aggregator": "cwtm"},
                            "sweep": {"variants": [{"label": "a",
                                                    "patch": {"aggregator": "cge"}}]}})"));
}

TEST(SweepParse, ShardsAxisRejectsConflictingAggregatorShapes) {
  // A string base aggregator has no hierarchy object to patch.
  EXPECT_THROW(parse(R"({"base": {"aggregator": "cwtm"}, "sweep": {"shards": [2]}})"),
               std::invalid_argument);
  // Combining with an aggregator axis would clobber the hierarchy object.
  EXPECT_THROW(parse(R"({"base": {}, "sweep": {"shards": [2], "aggregator": ["cge"]}})"),
               std::invalid_argument);
  // The base already pins shards: the spec contradicts itself.
  EXPECT_THROW(parse(R"({"base": {"aggregator": {"hierarchy": {"shards": 4}}},
                         "sweep": {"shards": [2]}})"),
               std::invalid_argument);
  // Malformed entries.
  EXPECT_THROW(parse(R"({"base": {}, "sweep": {"shards": [0]}})"), std::invalid_argument);
  EXPECT_THROW(parse(R"({"base": {}, "sweep": {"shards": [1.5]}})"), std::invalid_argument);
  // Other hierarchy keys in the base are fine alongside the axis.
  EXPECT_NO_THROW(parse(R"({"base": {"aggregator": {"hierarchy": {"leaf_rule": "krum"}}},
                            "sweep": {"shards": [2]}})"));
}

TEST(SweepParse, CoresetSizeAxisValidates) {
  // Malformed entries fail at parse, not mid-sweep.
  EXPECT_THROW(parse(R"({"base": {}, "sweep": {"coreset_size": [-1]}})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"base": {}, "sweep": {"coreset_size": [1.5]}})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"base": {}, "sweep": {"coreset_size": []}})"),
               std::invalid_argument);
  // A string base aggregator has no reduction object to patch.
  EXPECT_THROW(parse(R"({"base": {"aggregator": "cwtm"},
                         "sweep": {"coreset_size": [8]}})"),
               std::invalid_argument);
  // Combining with an aggregator axis would clobber the reduction object.
  EXPECT_THROW(parse(R"({"base": {}, "sweep": {"coreset_size": [8],
                                               "aggregator": ["cge"]}})"),
               std::invalid_argument);
  // The base already pins the size: the spec contradicts itself.
  EXPECT_THROW(parse(R"({"base": {"aggregator": {"reduction": {"coreset": {"size": 4}}}},
                         "sweep": {"coreset_size": [8]}})"),
               std::invalid_argument);
  // An object base aggregator with just a rule is fine alongside the axis.
  EXPECT_NO_THROW(parse(R"({"base": {"aggregator": {"rule": "cge"}},
                            "sweep": {"coreset_size": [8]}})"));
}

TEST(SweepParse, ReductionKindAxisValidates) {
  // Only the two reducer kinds are legal entries.
  EXPECT_THROW(parse(R"({"base": {}, "sweep": {"reduction_kind": ["kmeans"]}})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"base": {}, "sweep": {"reduction_kind": []}})"),
               std::invalid_argument);
  // A string base aggregator has no reduction object to re-key.
  EXPECT_THROW(parse(R"({"base": {"aggregator": "cwtm"},
                         "sweep": {"reduction_kind": ["sample"]}})"),
               std::invalid_argument);
  // Combining with an aggregator axis would clobber the reduction object.
  EXPECT_THROW(parse(R"({"base": {}, "sweep": {"reduction_kind": ["sample"],
                                               "aggregator": ["cge"]}})"),
               std::invalid_argument);
  // The base already pins a reduction block: the kind axis would silently
  // replace it — the spec contradicts itself.
  EXPECT_THROW(parse(R"({"base": {"aggregator": {"reduction": {"coreset": {"size": 4}}}},
                         "sweep": {"reduction_kind": ["sample"]}})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"base": {"aggregator": {"reduction": {"sample": {"size": 4}}}},
                         "sweep": {"reduction_kind": ["coreset"]}})"),
               std::invalid_argument);
  // An object base aggregator with just a rule is fine alongside the axis.
  EXPECT_NO_THROW(parse(R"({"base": {"aggregator": {"rule": "cge"}},
                            "sweep": {"reduction_kind": ["coreset", "sample"]}})"));
}

TEST(SweepParse, RejectsMalformedAxes) {
  // Bad seed range.
  EXPECT_THROW(parse(R"({"base": {}, "sweep": {"seed": {"from": 1}}})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"base": {}, "sweep": {"seed": {"from": 1, "count": 0}}})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"base": {}, "sweep": {"seed": [1.5]}})"), std::invalid_argument);
  // Non-integer f.
  EXPECT_THROW(parse(R"({"base": {}, "sweep": {"f": [0.5]}})"), std::invalid_argument);
  // Unknown mode spelling fails at parse, not mid-sweep.
  EXPECT_THROW(parse(R"({"base": {}, "sweep": {"mode": ["turbo"]}})"),
               std::invalid_argument);
  // A run whose merged spec fails parse-time validation names the run id.
  try {
    sweep::expand_sweep(parse(R"({
      "base": {"driver": "dgd", "problem": "quadratic", "num_agents": 4, "dim": 2,
               "iterations": 2, "schedule": {"kind": "harmonic", "scale": 0.4}},
      "sweep": {"variants": [{"label": "bad", "patch": {"mode": "turbo"}}]}
    })"));
    FAIL() << "expected the unknown-mode rejection to surface";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("000_variants=bad"), std::string::npos)
        << error.what();
  }
  // Run-time validation (driver-inapplicable keys) also names the run id.
  try {
    sweep::run_sweep(parse(R"({
      "base": {"driver": "dgd", "problem": "quadratic", "num_agents": 4, "dim": 2,
               "iterations": 2, "schedule": {"kind": "harmonic", "scale": 0.4}},
      "sweep": {"variants": [{"label": "bad", "patch": {"batch_size": 8}}]}
    })"));
    FAIL() << "expected the dgd/batch_size rejection to surface";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("000_variants=bad"), std::string::npos)
        << error.what();
  }
}

TEST(SweepParse, AsyncAxesValidateAndRejectBaseConflicts) {
  // Malformed entries fail at parse, not mid-sweep.
  EXPECT_THROW(parse(R"({"base": {}, "sweep": {"quorum": [-1]}})"), std::invalid_argument);
  EXPECT_THROW(parse(R"({"base": {}, "sweep": {"quorum": [1.5]}})"), std::invalid_argument);
  EXPECT_THROW(parse(R"({"base": {}, "sweep": {"staleness_cap": [-1]}})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"base": {}, "sweep": {"staleness_cap": []}})"),
               std::invalid_argument);
  // The base already pins the swept key inside its async block: contradiction.
  EXPECT_THROW(parse(R"({"base": {"async": {"quorum": 3}},
                         "sweep": {"quorum": [2]}})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"base": {"async": {"staleness_cap": 1}},
                         "sweep": {"staleness_cap": [2]}})"),
               std::invalid_argument);
  // Other async keys in the base are fine alongside the axes.
  EXPECT_NO_THROW(parse(R"({"base": {"async": {"arrival": {"scale": 0.8}}},
                            "sweep": {"quorum": [2], "staleness_cap": [0, 1]}})"));
}

TEST(SweepExpand, AsyncAxesLandInTheAsyncBlock) {
  const auto runs = sweep::expand_sweep(parse(R"({
    "base": {"driver": "dgd", "problem": "quadratic", "num_agents": 6, "dim": 2,
             "iterations": 4, "schedule": {"kind": "harmonic", "scale": 0.4},
             "async": {"arrival": {"kind": "exponential", "scale": 0.9}}},
    "sweep": {"quorum": [0, 4], "staleness_cap": [0, 2], "seed": [1]}
  })"));
  // quorum outermost of the three, seed fastest (canonical order).
  ASSERT_EQ(runs.size(), 4u);
  EXPECT_EQ(runs[0].run_id, "000_quorum=0_staleness_cap=0_seed=1");
  EXPECT_EQ(runs[3].run_id, "003_quorum=4_staleness_cap=2_seed=1");
  for (const auto& run : runs) {
    ASSERT_TRUE(run.spec.async.has_value()) << run.run_id;
    // The axes merged into the base block without clobbering its arrival.
    EXPECT_EQ(run.spec.async->arrival.kind, "exponential") << run.run_id;
  }
  EXPECT_EQ(runs[0].spec.async->quorum, 0);
  EXPECT_EQ(runs[3].spec.async->quorum, 4);
  EXPECT_EQ(runs[3].spec.async->staleness_cap, 2);
  // Either axis alone creates the async block on a base without one.
  const auto created = sweep::expand_sweep(parse(R"({
    "base": {"driver": "dgd", "problem": "quadratic", "num_agents": 6, "dim": 2,
             "iterations": 4, "schedule": {"kind": "harmonic", "scale": 0.4}},
    "sweep": {"staleness_cap": [1]}
  })"));
  ASSERT_EQ(created.size(), 1u);
  ASSERT_TRUE(created[0].spec.async.has_value());
  EXPECT_EQ(created[0].spec.async->staleness_cap, 1);
}

TEST(SweepRun, AsyncCountersAppearInCsvAndJson) {
  const auto outcome = sweep::run_sweep(parse(R"({
    "base": {"driver": "dgd", "problem": "quadratic", "num_agents": 6, "dim": 2,
             "iterations": 6, "seed": 2, "schedule": {"kind": "harmonic", "scale": 0.4},
             "async": {"arrival": {"kind": "exponential", "scale": 0.7}}},
    "sweep": {"quorum": [0, 4]}
  })"));
  std::ostringstream csv;
  sweep::write_sweep_csv(outcome, csv);
  std::istringstream lines(csv.str());
  std::string header;
  std::getline(lines, header);
  EXPECT_EQ(header,
            "run_id,quorum,final_dist,final_loss,eliminated,"
            "quorum_fires,deadline_fires,stale_dropped,late_rows,wall_ms");
  std::ostringstream json;
  sweep::write_sweep_json(outcome, json);
  const auto parsed = util::parse_json(json.str());
  for (const auto& run : parsed.at("runs").as_array()) {
    const auto& async = run.at("async");
    EXPECT_DOUBLE_EQ(async.at("quorum_fires").as_number() +
                         async.at("deadline_fires").as_number(),
                     6.0);
  }
}

// ------------------------------ execution -----------------------------------

TEST(SweepRun, MatchesRunByRunScenarioBitIdentically) {
  const auto spec = parse(kQuadraticGrid);
  const auto runs = sweep::expand_sweep(spec);
  const auto outcome = sweep::run_sweep(spec);
  ASSERT_EQ(outcome.runs.size(), runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto direct = scenario::run_scenario(runs[i].spec);
    EXPECT_EQ(outcome.runs[i].run_id, runs[i].run_id);
    EXPECT_EQ(outcome.runs[i].result.final_cost, direct.final_cost) << runs[i].run_id;
    ASSERT_EQ(outcome.runs[i].result.traces.size(), direct.traces.size());
    const auto& sweep_estimates = outcome.runs[i].result.traces.front().estimates;
    const auto& direct_estimates = direct.traces.front().estimates;
    ASSERT_EQ(sweep_estimates.size(), direct_estimates.size());
    for (std::size_t t = 0; t < direct_estimates.size(); ++t) {
      ASSERT_EQ(sweep_estimates[t], direct_estimates[t]) << runs[i].run_id << " @" << t;
    }
  }
}

TEST(SweepRun, ThreadCountDoesNotChangeAnyRow) {
  const auto spec = parse(kQuadraticGrid);
  const auto serial = sweep::run_sweep(spec, 1);
  const auto pooled = sweep::run_sweep(spec, 4);
  ASSERT_EQ(serial.runs.size(), pooled.runs.size());
  for (std::size_t i = 0; i < serial.runs.size(); ++i) {
    EXPECT_EQ(serial.runs[i].run_id, pooled.runs[i].run_id);
    EXPECT_EQ(serial.runs[i].result.final_cost, pooled.runs[i].result.final_cost);
    EXPECT_EQ(serial.runs[i].result.traces.front().estimates,
              pooled.runs[i].result.traces.front().estimates)
        << serial.runs[i].run_id;
    EXPECT_EQ(serial.runs[i].result.eliminated_agents,
              pooled.runs[i].result.eliminated_agents);
  }
}

TEST(SweepRun, CsvAndJsonCarryTheGrid) {
  const auto outcome = sweep::run_sweep(parse(kQuadraticGrid));
  std::ostringstream csv;
  sweep::write_sweep_csv(outcome, csv);
  std::istringstream lines(csv.str());
  std::string header;
  std::getline(lines, header);
  EXPECT_EQ(header, "run_id,aggregator,f,seed,final_dist,final_loss,eliminated,wall_ms");
  std::size_t rows = 0;
  for (std::string line; std::getline(lines, line);) ++rows;
  EXPECT_EQ(rows, outcome.runs.size());

  std::ostringstream json;
  sweep::write_sweep_json(outcome, json);
  const auto parsed = util::parse_json(json.str());  // must be valid JSON
  ASSERT_EQ(parsed.at("runs").as_array().size(), outcome.runs.size());
  const auto& first = parsed.at("runs").as_array().front();
  EXPECT_EQ(first.at("run_id").as_string(), outcome.runs.front().run_id);
  EXPECT_EQ(first.at("axes").at("aggregator").as_string(), "cwtm");
  // The writer rounds to 12 significant digits (same contract as
  // write_result_json).
  EXPECT_NEAR(first.at("final_cost").as_number(), outcome.runs.front().result.final_cost,
              1e-9 * (1.0 + std::abs(outcome.runs.front().result.final_cost)));
}

// A comma-bearing fault/variant label must reach the CSV as ONE quoted cell
// carrying the author's exact text; only the run id gets sanitized.  (The
// expansion layer used to sanitize the AxisCell value itself, mangling the
// label before the RFC-4180 writer ever saw it.)
TEST(SweepRun, RawLabelsSurviveToCsvCells) {
  const auto spec = parse(R"({
    "base": {"driver": "dgd", "problem": "quadratic", "num_agents": 6, "dim": 2,
             "iterations": 3, "f": 1, "seed": 4,
             "schedule": {"kind": "harmonic", "scale": 0.4}},
    "sweep": {"faults": [
      {"label": "sign-flip, strong", "faults": [{"agent": 0, "kind": "gradient-reverse"}]}
    ]}
  })");
  const auto runs = sweep::expand_sweep(spec);
  ASSERT_EQ(runs.size(), 1u);
  // Raw label in the cell, sanitized token in the id.
  EXPECT_EQ(runs[0].axes.front().value, "sign-flip, strong");
  EXPECT_EQ(runs[0].run_id, "000_faults=sign-flip--strong");

  const auto outcome = sweep::run_sweep(spec);
  std::ostringstream csv;
  sweep::write_sweep_csv(outcome, csv);
  std::istringstream lines(csv.str());
  std::string header;
  std::string row;
  std::getline(lines, header);
  std::getline(lines, row);
  // The label cell is quoted, so the row still splits into header-many
  // columns at the unquoted commas.
  EXPECT_NE(row.find("\"sign-flip, strong\""), std::string::npos) << row;
  const auto count_unquoted_commas = [](const std::string& line) {
    std::size_t count = 0;
    bool quoted = false;
    for (const char c : line) {
      if (c == '"') quoted = !quoted;
      if (c == ',' && !quoted) ++count;
    }
    return count;
  };
  EXPECT_EQ(count_unquoted_commas(row), count_unquoted_commas(header)) << row;
}

// A diverged run's final_cost is nan, which has no JSON spelling; the sweep
// JSON writer must emit null there and stay parseable end to end.
TEST(SweepRun, NonFiniteSummaryFieldsWriteParseableJson) {
  sweep::SweepOutcome outcome;
  outcome.name = "nan-run";
  sweep::SweepRunResult run;
  run.run_id = "000_f=1";
  run.axes.push_back(sweep::AxisCell{"f", "1"});
  run.result.final_cost = std::nan("");
  run.result.distance_to_reference = std::numeric_limits<double>::infinity();
  outcome.runs.push_back(std::move(run));

  std::ostringstream json;
  sweep::write_sweep_json(outcome, json);
  util::JsonValue parsed;
  ASSERT_NO_THROW(parsed = util::parse_json(json.str())) << json.str();
  const auto& first = parsed.at("runs").as_array().front();
  EXPECT_TRUE(first.at("final_cost").is_null());
  EXPECT_TRUE(first.at("distance_to_reference").is_null());
}

// Hierarchical grids carry the tree bookkeeping: the EFFECTIVE shard count
// (clamped to the roster when n < S), the end-to-end tolerated f and the
// paper's 2f/n resilience margin — in the CSV columns and the JSON block.
TEST(SweepRun, HierarchyColumnsReportEffectiveShards) {
  const auto outcome = sweep::run_sweep(parse(R"({
    "base": {"driver": "dgd", "problem": "quadratic", "num_agents": 4, "dim": 2,
             "iterations": 3, "f": 0, "seed": 5,
             "schedule": {"kind": "harmonic", "scale": 0.4},
             "aggregator": {"hierarchy": {"leaf_rule": "cwtm", "root_rule": "cwtm"}}},
    "sweep": {"shards": [8]}
  })"));
  ASSERT_EQ(outcome.runs.size(), 1u);
  std::ostringstream csv;
  sweep::write_sweep_csv(outcome, csv);
  std::istringstream lines(csv.str());
  std::string header;
  std::string row;
  std::getline(lines, header);
  std::getline(lines, row);
  EXPECT_EQ(header,
            "run_id,shards,final_dist,final_loss,eliminated,"
            "eff_shards,tolerated_f,resilience_margin,wall_ms");
  // The requested S = 8 exceeds the 4-agent roster: the axis cell keeps the
  // requested value, the eff_shards column reports the clamped tree.
  EXPECT_NE(row.find("000_shards=8,8,"), std::string::npos) << row;
  EXPECT_NE(row.find(",4,"), std::string::npos) << row;

  std::ostringstream json;
  sweep::write_sweep_json(outcome, json);
  const auto parsed = util::parse_json(json.str());
  const auto& first = parsed.at("runs").as_array().front();
  const auto& hierarchy = first.at("hierarchy");
  EXPECT_EQ(hierarchy.at("shards").as_number(), 4.0);
  EXPECT_EQ(hierarchy.at("requested_shards").as_number(), 8.0);
  // The label is restamped to the tree that actually ran.
  EXPECT_EQ(first.at("aggregator").as_string(), "hier-4-cwtm-cwtm");
}

TEST(SweepRun, SetBaseMemberOverridesCommittedGrids) {
  auto spec = parse(kQuadraticGrid);
  sweep::set_base_member(&spec, "iterations", util::JsonValue::make_number(3));
  const auto runs = sweep::expand_sweep(spec);
  for (const auto& run : runs) EXPECT_EQ(run.spec.iterations, 3);
}

TEST(SweepRun, CommittedSweepSpecsParseAndExpand) {
  const struct {
    const char* file;
    std::size_t grid;
  } specs[] = {
      {"sweep_fig2.json", 8},    {"sweep_table1.json", 4}, {"sweep_fig4.json", 6},
      {"sweep_fig5.json", 6},    {"sweep_epsilon.json", 36}, {"sweep_smoke.json", 8},
      {"sweep_async.json", 27},  {"sweep_hier_smoke.json", 4},
      {"sweep_coreset_smoke.json", 4},
  };
  for (const auto& entry : specs) {
    SCOPED_TRACE(entry.file);
    sweep::SweepSpec spec;
    ASSERT_NO_THROW(spec = sweep::load_sweep_file(std::string(ABFT_SPEC_DIR "/") + entry.file));
    EXPECT_FALSE(spec.name.empty());
    EXPECT_EQ(sweep::expand_sweep(spec).size(), entry.grid);
  }
}

}  // namespace

// Tests for the learning workload: dataset generation/sharding/poisoning,
// model gradients against finite differences, and D-SGD behaviour with and
// without faults.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <set>

#include "abft/agg/average.hpp"
#include "abft/agg/cge.hpp"
#include "abft/agg/cwtm.hpp"
#include "abft/learn/dataset.hpp"
#include "abft/learn/dsgd.hpp"
#include "abft/learn/mlp.hpp"
#include "abft/learn/softmax.hpp"

namespace {

using namespace abft;
using linalg::Vector;

learn::Dataset tiny_dataset(int classes, int per_class, std::uint64_t seed,
                            double noise = 0.25) {
  learn::SyntheticOptions options;
  options.num_classes = classes;
  options.feature_dim = 8;
  options.examples_per_class = per_class;
  options.noise_stddev = noise;
  util::Rng rng(seed);
  return learn::make_synthetic(options, rng);
}

TEST(Dataset, SyntheticShapeAndLabels) {
  const auto data = tiny_dataset(4, 10, 1);
  EXPECT_EQ(data.num_examples(), 40);
  EXPECT_EQ(data.feature_dim(), 8);
  EXPECT_EQ(data.num_classes, 4);
  std::set<int> labels(data.labels.begin(), data.labels.end());
  EXPECT_EQ(labels.size(), 4u);
  for (int y : data.labels) {
    EXPECT_GE(y, 0);
    EXPECT_LT(y, 4);
  }
}

TEST(Dataset, GenerationIsDeterministic) {
  const auto a = tiny_dataset(3, 5, 7);
  const auto b = tiny_dataset(3, 5, 7);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.features, b.features);
}

TEST(Dataset, ShardsPartitionTheData) {
  const auto data = tiny_dataset(4, 10, 2);
  util::Rng rng(9);
  const auto shards = learn::shard(data, 5, rng);
  ASSERT_EQ(shards.size(), 5u);
  int total = 0;
  for (const auto& s : shards) total += s.num_examples();
  EXPECT_EQ(total, data.num_examples());
  for (const auto& s : shards) EXPECT_EQ(s.num_classes, 4);
}

TEST(Dataset, ShardDirichletInfiniteAlphaIsTheIidSplitBitIdentically) {
  // alpha -> infinity must be *today's* split, not merely statistically
  // similar: shard_dirichlet(inf) delegates to shard() on the same rng, so
  // the scenario layer's dirichlet_alpha default changes nothing.
  const auto data = tiny_dataset(4, 12, 3);
  util::Rng iid_rng(21);
  util::Rng dirichlet_rng(21);
  const auto iid = learn::shard(data, 5, iid_rng);
  const auto skewless = learn::shard_dirichlet(
      data, 5, std::numeric_limits<double>::infinity(), dirichlet_rng);
  ASSERT_EQ(iid.size(), skewless.size());
  for (std::size_t s = 0; s < iid.size(); ++s) {
    ASSERT_EQ(iid[s].labels, skewless[s].labels) << "shard " << s;
    ASSERT_EQ(iid[s].num_examples(), skewless[s].num_examples());
    for (int i = 0; i < iid[s].num_examples(); ++i) {
      for (int k = 0; k < iid[s].feature_dim(); ++k) {
        ASSERT_EQ(iid[s].features(i, k), skewless[s].features(i, k))
            << "shard " << s << " example " << i;
      }
    }
  }
  // And the two rngs stayed in lockstep (identical consumption).
  EXPECT_EQ(iid_rng.next_u64(), dirichlet_rng.next_u64());
}

TEST(Dataset, ShardDirichletPartitionsAndSkewsLabels) {
  const auto data = tiny_dataset(4, 30, 7);
  util::Rng rng(13);
  const auto shards = learn::shard_dirichlet(data, 4, 0.05, rng);
  ASSERT_EQ(shards.size(), 4u);
  int total = 0;
  for (const auto& s : shards) {
    EXPECT_GT(s.num_examples(), 0);  // every shard stays samplable
    total += s.num_examples();
  }
  EXPECT_EQ(total, data.num_examples());

  // Label concentration: at alpha = 0.05 a shard's dominant class should
  // hold far more than the iid ~1/4 share, on average.
  double dominant_share = 0.0;
  for (const auto& s : shards) {
    std::vector<int> counts(4, 0);
    for (const int y : s.labels) ++counts[static_cast<std::size_t>(y)];
    dominant_share += static_cast<double>(*std::max_element(counts.begin(), counts.end())) /
                      static_cast<double>(s.num_examples());
  }
  dominant_share /= 4.0;
  EXPECT_GT(dominant_share, 0.5);

  // Determinism: the same seed deals the same shards.
  util::Rng again(13);
  const auto repeat = learn::shard_dirichlet(data, 4, 0.05, again);
  for (std::size_t s = 0; s < shards.size(); ++s) {
    EXPECT_EQ(shards[s].labels, repeat[s].labels) << "shard " << s;
  }
}

TEST(Rng, GammaAndDirichletMomentsAreSane) {
  util::Rng rng(77);
  // Gamma(k) has mean k; 4000 samples put the sample mean within ~10%.
  for (const double shape : {0.5, 1.0, 4.0}) {
    double sum = 0.0;
    for (int i = 0; i < 4000; ++i) sum += rng.gamma(shape);
    EXPECT_NEAR(sum / 4000.0, shape, 0.1 * shape + 0.02) << "shape " << shape;
  }
  const auto simplex = rng.dirichlet(0.3, 6);
  double total = 0.0;
  for (const double w : simplex) {
    EXPECT_GE(w, 0.0);
    total += w;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Dataset, LabelFlipIsAnInvolution) {
  const auto data = tiny_dataset(10, 3, 3);
  const auto flipped = learn::label_flipped(data);
  for (std::size_t i = 0; i < data.labels.size(); ++i) {
    EXPECT_EQ(flipped.labels[i], 9 - data.labels[i]);
  }
  const auto twice = learn::label_flipped(flipped);
  EXPECT_EQ(twice.labels, data.labels);
  EXPECT_EQ(twice.features, data.features);
}

TEST(Dataset, SelectExamplesExtractsRows) {
  const auto data = tiny_dataset(2, 4, 4);
  const auto sub = learn::select_examples(data, {0, 3});
  EXPECT_EQ(sub.num_examples(), 2);
  EXPECT_EQ(sub.labels[1], data.labels[3]);
  EXPECT_THROW(learn::select_examples(data, {99}), std::invalid_argument);
}

TEST(Dataset, DifficultyPresetsDiffer) {
  EXPECT_LT(learn::synth_digits_options().noise_stddev,
            learn::synth_fashion_options().noise_stddev);
}

template <typename ModelType>
void check_gradient_against_finite_differences(const ModelType& model, const Vector& params,
                                               const learn::Dataset& data) {
  const std::vector<int> batch{0, 1, 2};
  Vector analytic(model.param_dim());
  model.loss(params, data, batch, &analytic);
  Vector probe = params;
  const double h = 1e-6;
  // Spot-check a spread of coordinates (full sweep is O(d^2)).
  for (int k = 0; k < model.param_dim(); k += std::max(1, model.param_dim() / 17)) {
    const double original = probe[k];
    probe[k] = original + h;
    const double plus = model.loss(probe, data, batch, nullptr);
    probe[k] = original - h;
    const double minus = model.loss(probe, data, batch, nullptr);
    probe[k] = original;
    EXPECT_NEAR(analytic[k], (plus - minus) / (2.0 * h), 1e-4) << "coordinate " << k;
  }
}

TEST(Softmax, GradientMatchesFiniteDifferences) {
  const auto data = tiny_dataset(3, 4, 11);
  const learn::SoftmaxRegression model(data.feature_dim(), data.num_classes);
  util::Rng rng(12);
  Vector params(model.param_dim());
  for (int i = 0; i < params.dim(); ++i) params[i] = 0.1 * rng.normal();
  check_gradient_against_finite_differences(model, params, data);
}

TEST(Softmax, LossDecreasesUnderGradientSteps) {
  const auto data = tiny_dataset(3, 20, 13);
  const learn::SoftmaxRegression model(data.feature_dim(), data.num_classes);
  Vector params(model.param_dim());
  std::vector<int> all(static_cast<std::size_t>(data.num_examples()));
  std::iota(all.begin(), all.end(), 0);
  Vector grad(model.param_dim());
  double last = model.loss(params, data, all, &grad);
  for (int step = 0; step < 30; ++step) {
    params.add_scaled(-0.5, grad);
    const double now = model.loss(params, data, all, &grad);
    EXPECT_LE(now, last + 1e-9);
    last = now;
  }
  EXPECT_GT(learn::accuracy(model, params, data), 0.9);
}

TEST(Softmax, UniformParamsGiveLogCLoss) {
  const auto data = tiny_dataset(4, 5, 14);
  const learn::SoftmaxRegression model(data.feature_dim(), data.num_classes);
  const Vector zeros(model.param_dim());
  EXPECT_NEAR(learn::dataset_loss(model, zeros, data), std::log(4.0), 1e-9);
}

TEST(Mlp, GradientMatchesFiniteDifferences) {
  const auto data = tiny_dataset(3, 4, 15);
  const learn::Mlp model(data.feature_dim(), 6, data.num_classes);
  util::Rng rng(16);
  const Vector params = model.initial_params(rng);
  check_gradient_against_finite_differences(model, params, data);
}

TEST(Mlp, ParamDimAccountsForAllLayers) {
  const learn::Mlp model(8, 6, 3);
  EXPECT_EQ(model.param_dim(), 6 * 8 + 6 + 3 * 6 + 3);
}

TEST(Mlp, TrainsAboveChance) {
  const auto data = tiny_dataset(3, 30, 17, 0.2);
  const learn::Mlp model(data.feature_dim(), 8, data.num_classes);
  util::Rng rng(18);
  Vector params = model.initial_params(rng);
  std::vector<int> all(static_cast<std::size_t>(data.num_examples()));
  std::iota(all.begin(), all.end(), 0);
  Vector grad(model.param_dim());
  for (int step = 0; step < 150; ++step) {
    model.loss(params, data, all, &grad);
    params.add_scaled(-0.5, grad);
  }
  EXPECT_GT(learn::accuracy(model, params, data), 0.8);
}

TEST(Confusion, MatrixEntriesAndDerivedMetrics) {
  const auto data = tiny_dataset(3, 30, 57, 0.1);
  const learn::SoftmaxRegression model(data.feature_dim(), data.num_classes);
  // Train briefly so most predictions are right.
  Vector params(model.param_dim());
  std::vector<int> all(static_cast<std::size_t>(data.num_examples()));
  std::iota(all.begin(), all.end(), 0);
  Vector grad(model.param_dim());
  for (int step = 0; step < 60; ++step) {
    model.loss(params, data, all, &grad);
    params.add_scaled(-0.5, grad);
  }
  const auto confusion = learn::confusion_matrix(model, params, data);
  // Totals add up to the dataset size.
  double total = 0.0;
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) total += confusion.counts(r, c);
  }
  EXPECT_DOUBLE_EQ(total, 90.0);
  // Overall accuracy agrees with the scalar accuracy helper.
  EXPECT_NEAR(confusion.overall_accuracy(), learn::accuracy(model, params, data), 1e-12);
  for (int c = 0; c < 3; ++c) {
    EXPECT_GE(confusion.recall(c), 0.0);
    EXPECT_LE(confusion.recall(c), 1.0);
    EXPECT_GE(confusion.precision(c), 0.0);
    EXPECT_LE(confusion.precision(c), 1.0);
  }
  EXPECT_THROW((void)confusion.recall(5), std::invalid_argument);
}

TEST(Accuracy, PerfectAndChanceBaselines) {
  const auto data = tiny_dataset(2, 10, 19, 0.05);
  const learn::SoftmaxRegression model(data.feature_dim(), data.num_classes);
  const Vector zeros(model.param_dim());
  // Zero params predict class 0 everywhere: accuracy = share of class 0.
  const double acc = learn::accuracy(model, zeros, data);
  EXPECT_NEAR(acc, 0.5, 1e-9);
}

// --------------------------- D-SGD -----------------------------------------

struct DsgdFixture {
  learn::Dataset train;
  learn::Dataset test;
  learn::SoftmaxRegression model;

  DsgdFixture() : model(8, 4) {
    const auto full = tiny_dataset(4, 50, 21, 0.25);
    util::Rng rng(22);
    auto split = learn::split_train_test(full, 0.2, rng);
    train = std::move(split.train);
    test = std::move(split.test);
  }

  [[nodiscard]] std::vector<learn::Dataset> shards(int k) {
    util::Rng rng(23);
    return learn::shard(train, k, rng);
  }

  [[nodiscard]] learn::DsgdConfig config(int iterations, int f) const {
    learn::DsgdConfig cfg;
    cfg.iterations = iterations;
    cfg.batch_size = 16;
    cfg.step_size = 0.05;
    cfg.f = f;
    cfg.eval_interval = 10;
    cfg.seed = 77;
    return cfg;
  }
};

TEST(Dsgd, FaultFreeLearns) {
  DsgdFixture fx;
  const agg::AverageAggregator average;
  const auto series =
      learn::run_dsgd(fx.model, Vector(fx.model.param_dim()), fx.shards(10),
                      std::vector<learn::AgentFault>(10, learn::AgentFault::kHonest), fx.test,
                      average, fx.config(300, 0));
  EXPECT_GT(series.test_accuracy.back(), 0.8);
  EXPECT_LT(series.train_loss.back(), series.train_loss.front());
  EXPECT_EQ(series.eval_iterations.front(), 0);
  EXPECT_EQ(series.eval_iterations.back(), 300);
}

TEST(Dsgd, CgeBeatsPlainAveragingUnderGradientReverse) {
  // Appendix K, n = 10, f = 3: plain averaging degrades badly under
  // gradient-reverse while CGE tracks the fault-free curve.
  DsgdFixture fx;
  std::vector<learn::AgentFault> faults(10, learn::AgentFault::kHonest);
  for (int i = 0; i < 3; ++i) faults[i] = learn::AgentFault::kGradientReverse;
  const agg::AverageAggregator average;
  const auto broken = learn::run_dsgd(fx.model, Vector(fx.model.param_dim()), fx.shards(10),
                                      faults, fx.test, average, fx.config(300, 3));
  const agg::CgeAggregator cge;
  const auto robust = learn::run_dsgd(fx.model, Vector(fx.model.param_dim()), fx.shards(10),
                                      faults, fx.test, cge, fx.config(300, 3));
  EXPECT_GT(robust.test_accuracy.back(), broken.test_accuracy.back() + 0.15);
}

TEST(Dsgd, LabelFlipToleratedByRobustFilters) {
  DsgdFixture fx;
  std::vector<learn::AgentFault> faults(10, learn::AgentFault::kHonest);
  for (int i = 0; i < 3; ++i) faults[i] = learn::AgentFault::kLabelFlip;
  const agg::CwtmAggregator cwtm;
  const auto series_cwtm = learn::run_dsgd(fx.model, Vector(fx.model.param_dim()), fx.shards(10),
                                           faults, fx.test, cwtm, fx.config(300, 3));
  EXPECT_GT(series_cwtm.test_accuracy.back(), 0.7);
  const agg::CgeAggregator cge;
  const auto series_cge = learn::run_dsgd(fx.model, Vector(fx.model.param_dim()), fx.shards(10),
                                          faults, fx.test, cge, fx.config(300, 3));
  EXPECT_GT(series_cge.test_accuracy.back(), 0.7);
}

TEST(Dsgd, DeterministicForFixedSeed) {
  DsgdFixture fx;
  const agg::CwtmAggregator cwtm;
  const std::vector<learn::AgentFault> faults(5, learn::AgentFault::kHonest);
  const auto a = learn::run_dsgd(fx.model, Vector(fx.model.param_dim()), fx.shards(5), faults,
                                 fx.test, cwtm, fx.config(40, 1));
  const auto b = learn::run_dsgd(fx.model, Vector(fx.model.param_dim()), fx.shards(5), faults,
                                 fx.test, cwtm, fx.config(40, 1));
  EXPECT_EQ(a.final_params, b.final_params);
  EXPECT_EQ(a.train_loss, b.train_loss);
}

TEST(Dsgd, ValidatesConfiguration) {
  DsgdFixture fx;
  const agg::AverageAggregator average;
  const std::vector<learn::AgentFault> faults(5, learn::AgentFault::kHonest);
  EXPECT_THROW(learn::run_dsgd(fx.model, Vector(3), fx.shards(5), faults, fx.test, average,
                               fx.config(10, 0)),
               std::invalid_argument);
  EXPECT_THROW(learn::run_dsgd(fx.model, Vector(fx.model.param_dim()), fx.shards(4), faults,
                               fx.test, average, fx.config(10, 0)),
               std::invalid_argument);
  auto cfg = fx.config(10, 0);
  cfg.f = 5;
  EXPECT_THROW(learn::run_dsgd(fx.model, Vector(fx.model.param_dim()), fx.shards(5), faults,
                               fx.test, average, cfg),
               std::invalid_argument);
}

TEST(Dataset, NonIidShardingExtremes) {
  const auto data = tiny_dataset(4, 25, 31);
  util::Rng rng(32);
  // h = 1: label-sorted chunks — most shards should be single-class.
  const auto sorted_shards = learn::shard_non_iid(data, 4, 1.0, rng);
  int single_class = 0;
  for (const auto& s : sorted_shards) {
    std::set<int> classes(s.labels.begin(), s.labels.end());
    if (classes.size() == 1) ++single_class;
  }
  EXPECT_GE(single_class, 3);
  // h = 0: iid — every shard should see most classes.
  const auto iid_shards = learn::shard_non_iid(data, 4, 0.0, rng);
  for (const auto& s : iid_shards) {
    std::set<int> classes(s.labels.begin(), s.labels.end());
    EXPECT_GE(classes.size(), 3u);
  }
}

TEST(Dataset, NonIidShardingPartitions) {
  const auto data = tiny_dataset(3, 20, 33);
  util::Rng rng(34);
  for (const double h : {0.0, 0.5, 1.0}) {
    const auto shards = learn::shard_non_iid(data, 5, h, rng);
    int total = 0;
    for (const auto& s : shards) total += s.num_examples();
    EXPECT_EQ(total, data.num_examples());
  }
  EXPECT_THROW(learn::shard_non_iid(data, 5, 1.5, rng), std::invalid_argument);
}

TEST(Dataset, TrainTestSplitPartitionsAndValidates) {
  const auto data = tiny_dataset(3, 20, 35);
  util::Rng rng(36);
  const auto split = learn::split_train_test(data, 0.25, rng);
  EXPECT_EQ(split.train.num_examples() + split.test.num_examples(), data.num_examples());
  EXPECT_EQ(split.test.num_examples(), 15);
  EXPECT_THROW(learn::split_train_test(data, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(learn::split_train_test(data, 1.0, rng), std::invalid_argument);
}

TEST(Dsgd, MomentumLearnsAndIsDeterministic) {
  DsgdFixture fx;
  const agg::CgeAggregator cge;
  std::vector<learn::AgentFault> faults(10, learn::AgentFault::kHonest);
  for (int i = 0; i < 3; ++i) faults[static_cast<std::size_t>(i)] = learn::AgentFault::kGradientReverse;
  auto cfg = fx.config(300, 3);
  cfg.momentum = 0.9;
  const auto a = learn::run_dsgd(fx.model, Vector(fx.model.param_dim()), fx.shards(10), faults,
                                 fx.test, cge, cfg);
  const auto b = learn::run_dsgd(fx.model, Vector(fx.model.param_dim()), fx.shards(10), faults,
                                 fx.test, cge, cfg);
  EXPECT_EQ(a.final_params, b.final_params);
  EXPECT_GT(a.test_accuracy.back(), 0.7);
  EXPECT_THROW((cfg.momentum = 1.0,
                learn::run_dsgd(fx.model, Vector(fx.model.param_dim()), fx.shards(10), faults,
                                fx.test, cge, cfg)),
               std::invalid_argument);
}

TEST(Dsgd, AllFaultyRejected) {
  DsgdFixture fx;
  const agg::AverageAggregator average;
  const std::vector<learn::AgentFault> faults(5, learn::AgentFault::kLabelFlip);
  EXPECT_THROW(learn::run_dsgd(fx.model, Vector(fx.model.param_dim()), fx.shards(5), faults,
                               fx.test, average, fx.config(10, 0)),
               std::invalid_argument);
}

}  // namespace

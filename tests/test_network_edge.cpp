// SyncNetwork edge cases and the driver behaviour they induce: a round in
// which every agent stays silent, certain loss (drop_probability = 1.0), and
// elimination shrinking the roster below the declared fault bound (the
// usable-f clamp).
#include <gtest/gtest.h>

#include <vector>

#include "abft/agg/registry.hpp"
#include "abft/attack/simple_faults.hpp"
#include "abft/engine/round_engine.hpp"
#include "abft/opt/quadratic.hpp"
#include "abft/opt/schedule.hpp"
#include "abft/sim/dgd.hpp"
#include "abft/sim/network.hpp"

namespace {

using namespace abft;
using linalg::Vector;

// ----------------------------- network level --------------------------------

TEST(SyncNetworkEdge, CertainDropLosesEveryPayload) {
  sim::SyncNetwork network(1.0, 42);
  std::vector<double> payload{1.0, 2.0};
  std::vector<double> dst(2, 0.0);
  for (int round = 0; round < 20; ++round) {
    EXPECT_FALSE(network.transmit_row(0, round, payload, dst));
  }
  EXPECT_EQ(network.messages_sent(), 20);
  EXPECT_EQ(network.messages_dropped(), 20);
}

TEST(SyncNetworkEdge, SilentPayloadConsumesNoDropRandomness) {
  // An empty payload means the agent stayed silent: no drop coin may be
  // tossed, so the stream seen by later messages is identical whether or
  // not silent slots preceded them.
  sim::SyncNetwork with_silent(0.5, 7);
  sim::SyncNetwork without(0.5, 7);
  std::vector<double> payload{3.0};
  std::vector<double> dst(1, 0.0);
  std::vector<bool> a;
  std::vector<bool> b;
  for (int k = 0; k < 50; ++k) {
    with_silent.transmit_row(0, k, {}, dst);  // silent slot
    a.push_back(with_silent.transmit_row(1, k, payload, dst));
    b.push_back(without.transmit_row(1, k, payload, dst));
  }
  EXPECT_EQ(a, b);
  EXPECT_EQ(with_silent.messages_sent(), 100);
  EXPECT_EQ(without.messages_sent(), 50);
}

TEST(SyncNetworkEdge, TransmitRowMatchesLegacyTransmit) {
  sim::SyncNetwork row_net(0.4, 99);
  sim::SyncNetwork legacy_net(0.4, 99);
  std::vector<double> payload{1.5, -2.5};
  std::vector<double> dst(2, 0.0);
  for (int k = 0; k < 40; ++k) {
    const bool delivered = row_net.transmit_row(0, k, payload, dst);
    const auto received =
        legacy_net.transmit(0, k, Vector(std::vector<double>(payload.begin(), payload.end())));
    ASSERT_EQ(delivered, received.has_value()) << "round " << k;
    if (delivered) {
      EXPECT_EQ(dst[0], (*received)[0]);
      EXPECT_EQ(dst[1], (*received)[1]);
    }
  }
  EXPECT_EQ(row_net.messages_dropped(), legacy_net.messages_dropped());
}

// ------------------------------ driver level --------------------------------

std::vector<opt::SquaredDistanceCost> centers(int n) {
  std::vector<opt::SquaredDistanceCost> costs;
  for (int i = 0; i < n; ++i) {
    costs.emplace_back(Vector{0.9 * i - 2.0 + 0.07 * i * i, -0.4 * i + 1.1});
  }
  return costs;
}

TEST(SyncNetworkEdge, AllAgentsSilentRoundThrows) {
  // Step S1 eliminates every silent agent; a round that silences the whole
  // roster leaves nobody to aggregate and must fail loudly.
  auto costs = centers(4);
  std::vector<const opt::CostFunction*> ptrs;
  for (auto& c : costs) ptrs.push_back(&c);
  const attack::SilentFault silent;
  auto roster = sim::honest_roster(ptrs);
  for (int i = 0; i < 4; ++i) sim::assign_fault(roster, i, silent);
  const opt::HarmonicSchedule schedule(0.4);
  sim::DgdConfig config{Vector{1.0, 1.0}, opt::Box::centered_cube(2, 10.0), &schedule, 5, 3, 1};
  sim::DgdSimulation simulation(std::move(roster), std::move(config));
  const auto aggregator = agg::make_aggregator("cwmed");
  EXPECT_THROW(
      {
        try {
          simulation.run(*aggregator);
        } catch (const std::invalid_argument& error) {
          EXPECT_NE(std::string(error.what()).find("every agent was eliminated"),
                    std::string::npos)
              << error.what();
          throw;
        }
      },
      std::invalid_argument);
}

TEST(SyncNetworkEdge, CertainDropEliminatesEveryoneInRoundZero) {
  auto costs = centers(5);
  std::vector<const opt::CostFunction*> ptrs;
  for (auto& c : costs) ptrs.push_back(&c);
  auto roster = sim::honest_roster(ptrs);
  const opt::HarmonicSchedule schedule(0.4);
  sim::DgdConfig config{Vector{1.0, 1.0}, opt::Box::centered_cube(2, 10.0), &schedule,
                        5,                0,
                        1,                1.0};
  sim::DgdSimulation simulation(std::move(roster), std::move(config));
  const auto aggregator = agg::make_aggregator("average");
  EXPECT_THROW(simulation.run(*aggregator), std::invalid_argument);
}

TEST(SyncNetworkEdge, EliminationBelowDeclaredFClampsTheFilter) {
  // Declared f = 3 on n = 6, but four agents go silent in round 0: the
  // survivors (n = 2) cannot support f = 3, so the engine clamps the usable
  // f to what the rule tolerates (CWTM: n > 2f, so f = 0 at n = 2) and the
  // run completes instead of tripping the rule's precondition.
  auto costs = centers(6);
  std::vector<const opt::CostFunction*> ptrs;
  for (auto& c : costs) ptrs.push_back(&c);
  const attack::SilentFault silent;
  auto roster = sim::honest_roster(ptrs);
  for (const int agent : {0, 2, 3, 5}) sim::assign_fault(roster, agent, silent);
  const opt::HarmonicSchedule schedule(0.4);
  sim::DgdConfig config{Vector{2.0, -2.0}, opt::Box::centered_cube(2, 10.0), &schedule,
                        30,               3,
                        1};
  sim::DgdSimulation simulation(std::move(roster), std::move(config));
  const auto aggregator = agg::make_aggregator("cwtm");
  const auto trace = simulation.run(*aggregator);
  EXPECT_EQ(trace.eliminated_agents, 4);
  EXPECT_EQ(trace.estimates.size(), 31u);
  // With the silent four gone the run is a clean 2-agent average descent:
  // it must make real progress toward the surviving agents' centroid.
  Vector centroid = 0.5 * (costs[1].center() + costs[4].center());
  EXPECT_LT(linalg::distance(trace.final_estimate(), centroid), 0.5);
}

TEST(SyncNetworkEdge, KrumBelowMinimumRosterHoldsPosition) {
  // Krum supports f = 2 on the full n = 7 roster (n > 2f + 2), but cannot
  // run at all on two gradients; once elimination shrinks the roster that
  // far, the engine holds position instead of throwing, and the trace stays
  // full-length.
  auto costs = centers(7);
  std::vector<const opt::CostFunction*> ptrs;
  for (auto& c : costs) ptrs.push_back(&c);
  const attack::SilentFault silent;
  auto roster = sim::honest_roster(ptrs);
  for (const int agent : {1, 2, 4, 5, 6}) sim::assign_fault(roster, agent, silent);
  const opt::HarmonicSchedule schedule(0.4);
  sim::DgdConfig config{Vector{2.0, 2.0}, opt::Box::centered_cube(2, 10.0), &schedule,
                        10,              2,
                        1};
  sim::DgdSimulation simulation(std::move(roster), std::move(config));
  const auto aggregator = agg::make_aggregator("krum");
  const auto trace = simulation.run(*aggregator);
  EXPECT_EQ(trace.eliminated_agents, 5);
  ASSERT_EQ(trace.estimates.size(), 11u);
  // Every post-elimination round held position: the estimate never moved.
  for (std::size_t t = 1; t < trace.estimates.size(); ++t) {
    EXPECT_EQ(trace.estimates[t], trace.estimates[0]) << "iteration " << t;
  }
  EXPECT_EQ(trace.final_estimate(), trace.estimates.front());
}

// Regression: the membership-vs-current_f soundness check.  After honest
// churn shrinks the membership below what the rule needs for the adversaries
// known to remain, NO clamped budget is sound — the engine must hold, not
// run the filter weakened.
TEST(UsableFaultBound, ShrunkMembershipBelowAdversaryCountHolds) {
  const auto krum = agg::make_aggregator("krum");
  // Full roster: declared f = 2 is valid on n = 7 and runs as declared.
  EXPECT_EQ(engine::usable_fault_bound(*krum, 2, 2, 7, 7, 7), 2);
  // Honest churn down to 4 members: current_f = 2 > krum's cap at n = 4
  // (= 0), so the round holds.  (Was: clamped to 0 and ran weakened.)
  EXPECT_EQ(engine::usable_fault_bound(*krum, 2, 2, 4, 4, 7), -1);
  // Eliminations shrink current_f alongside the membership and keep running.
  EXPECT_EQ(engine::usable_fault_bound(*krum, 2, 0, 5, 5, 7), 0);
  // A merely thin round (stragglers) of an intact membership still clamps.
  EXPECT_EQ(engine::usable_fault_bound(*krum, 2, 2, 5, 7, 7), 1);
}

TEST(SyncNetworkEdge, HonestChurnBelowAdversaryCountHoldsPosition) {
  // Krum with declared f = 2 on n = 7, two gradient-reverse adversaries.
  // Three HONEST agents churn out at round 3: membership drops to 4 while
  // current_f stays 2 — krum at n = 4 tolerates 0 < 2 faults, so every
  // round from then on must hold position instead of running the filter
  // with a weaker budget than the adversaries present.
  auto costs = centers(7);
  std::vector<const opt::CostFunction*> ptrs;
  for (auto& c : costs) ptrs.push_back(&c);
  const attack::GradientReverseFault reverse;
  auto roster = sim::honest_roster(ptrs);
  sim::assign_fault(roster, 5, reverse);
  sim::assign_fault(roster, 6, reverse);
  const opt::HarmonicSchedule schedule(0.4);
  sim::DgdConfig config{Vector{2.0, 2.0}, opt::Box::centered_cube(2, 10.0), &schedule,
                        12,              2,
                        1};
  config.axes.churn = {{3, 0}, {3, 1}, {3, 2}};
  sim::DgdSimulation simulation(std::move(roster), std::move(config));
  const auto aggregator = agg::make_aggregator("krum");
  const auto trace = simulation.run(*aggregator);
  EXPECT_EQ(trace.eliminated_agents, 0);
  EXPECT_EQ(trace.departed_agents, 3);
  ASSERT_EQ(trace.estimates.size(), 13u);
  // Rounds before the churn made real progress...
  EXPECT_NE(trace.estimates[3], trace.estimates[0]);
  // ...and every round from the churn on held position.
  for (std::size_t t = 4; t < trace.estimates.size(); ++t) {
    EXPECT_EQ(trace.estimates[t], trace.estimates[3]) << "iteration " << t;
  }
}

}  // namespace

// Property-based randomized tests for every registry rule: ~100 seeded
// cases per rule over varied (n, f, d, scale), asserting the structural
// invariants a gradient filter must keep regardless of kernel details —
// permutation invariance, translation equivariance where the rule's
// definition implies it — plus the fast-vs-exact tolerance contract on
// every generated case.  The generator is fully seeded (util::Rng), so a
// failure reproduces exactly; shapes are drawn to satisfy every rule's
// precondition (n >= 4f + 3 covers Bulyan's, the strictest).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "abft/agg/registry.hpp"
#include "abft/util/rng.hpp"

namespace {

using namespace abft;
using agg::Vector;

struct RuleProperties {
  std::string_view name;
  bool translation_equivariant;
  double fast_tol;   // fast vs exact, relative (the documented contract)
  double f32_tol;    // f32 lane vs exact, relative (demotion-dominated)
  double prop_tol;   // permutation / translation drift, relative
};

// Translation equivariance R(x + c) = R(x) + c holds for rules built from
// coordinate ranks, pairwise distances or means; it does NOT hold for the
// norm-anchored rules (CGE keeps smallest-norm gradients, NormClip and
// CClip clip against norm/median-distance radii measured from the origin
// or a pivot — adding c changes which inputs are clipped).
constexpr RuleProperties kRules[] = {
    {"average", true, 1e-12, 1e-12, 1e-9},   // f32 lane: no f32 kernel
    {"cge", false, 1e-12, 1e-12, 1e-9},      // f32 lane: no f32 kernel
    {"cwtm", true, 1e-10, 2e-5, 1e-9},
    {"cwmed", true, 1e-12, 2e-5, 1e-9},
    {"krum", true, 1e-9, 1e-6, 1e-9},
    {"multikrum", true, 1e-9, 1e-6, 1e-9},
    {"geomed", true, 1e-6, 5e-5, 1e-5},   // Weiszfeld stopping scale moves with c
    {"gmom", true, 1e-6, 5e-5, 1e-5},
    {"bulyan", true, 1e-9, 2e-5, 1e-9},
    {"normclip", false, 1e-12, 1e-12, 1e-9},  // f32 lane: no f32 kernel
    {"cclip", false, 1e-8, 5e-5, 1e-7},
};

/// Permutation invariance holds only up to argmin tie-breaking, and the
/// Krum-family selection has a *structural* exact tie whenever a scoring
/// round runs with a single neighbor: the two mutually-nearest rows then
/// share the identical score d(i, j)^2, and min_element breaks the tie by
/// input position.  That happens for Krum/Multi-Krum at n = f + 3 (the
/// relaxed clamp) and for Bulyan whenever its shrinking pool reaches
/// f + 3 rows, i.e. for every f <= 2.  GMoM buckets by index, so it is
/// exempt outright.  Everywhere else invariance must hold to fp noise.
bool permutation_check_applies(std::string_view name, int n, int f) {
  if (name == "gmom") return false;
  if (name == "krum" || name == "multikrum") return n >= f + 4;
  if (name == "bulyan") return f >= 3;
  return true;
}

constexpr int kCasesPerRule = 100;

void expect_close(const Vector& a, const Vector& b, double rel_tol, const std::string& label) {
  ASSERT_EQ(a.dim(), b.dim()) << label;
  const double tol = rel_tol * (1.0 + a.norm_inf());
  for (int k = 0; k < a.dim(); ++k) {
    ASSERT_NEAR(a[k], b[k], tol) << label << " coordinate " << k;
  }
}

class AggPropertyTest : public ::testing::TestWithParam<RuleProperties> {};

TEST_P(AggPropertyTest, RandomizedInvariants) {
  const auto& props = GetParam();
  const auto rule = agg::make_aggregator(props.name);
  // One deterministic stream per rule, derived from the rule name so adding
  // a rule never reshuffles another rule's cases.
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
  for (const char c : props.name) seed = seed * 31 + static_cast<std::uint64_t>(c);
  util::Rng rng(seed);

  for (int trial = 0; trial < kCasesPerRule; ++trial) {
    const int f = static_cast<int>(rng.uniform_index(4));          // 0..3
    const int n = 4 * f + 3 + static_cast<int>(rng.uniform_index(13));
    const int d = 1 + static_cast<int>(rng.uniform_index(40));
    const double scale = std::pow(10.0, rng.uniform(-2.0, 2.0));
    const std::string label = std::string(props.name) + " trial=" + std::to_string(trial) +
                              " n=" + std::to_string(n) + " f=" + std::to_string(f) +
                              " d=" + std::to_string(d);

    agg::GradientBatch batch(n, d);
    for (int i = 0; i < n; ++i) {
      auto row = batch.row(i);
      for (int k = 0; k < d; ++k) row[static_cast<std::size_t>(k)] = scale * rng.normal();
    }

    agg::AggregatorWorkspace ws;
    Vector base;
    try {
      rule->aggregate_into(base, batch, f, ws);
    } catch (const std::invalid_argument&) {
      // Shape outside the rule's precondition (e.g. bulyan rejects f = 0);
      // generation stays in lockstep across rules, so just skip the case.
      continue;
    }

    // --- fast-vs-exact tolerance contract ---------------------------------
    {
      agg::AggregatorWorkspace fast_ws;
      fast_ws.mode = agg::AggMode::fast;
      Vector fast;
      rule->aggregate_into(fast, batch, f, fast_ws);
      expect_close(base, fast, props.fast_tol, label + " [fast]");
    }

    // --- f32-lane tolerance contract --------------------------------------
    {
      agg::AggregatorWorkspace f32_ws;
      f32_ws.mode = agg::AggMode::fast;
      f32_ws.precision = agg::Precision::f32;
      Vector lane;
      rule->aggregate_into(lane, batch, f, f32_ws);
      expect_close(base, lane, props.f32_tol, label + " [f32]");
    }

    // --- permutation invariance -------------------------------------------
    if (permutation_check_applies(props.name, n, f)) {
      const auto perm = rng.permutation(n);
      agg::GradientBatch shuffled(n, d);
      for (int i = 0; i < n; ++i) {
        shuffled.set_row(i, batch.row(perm[static_cast<std::size_t>(i)]));
      }
      Vector permuted;
      rule->aggregate_into(permuted, shuffled, f, ws);
      expect_close(base, permuted, props.prop_tol, label + " [permutation]");
    }

    // --- translation equivariance -----------------------------------------
    if (props.translation_equivariant) {
      Vector shift(d);
      for (int k = 0; k < d; ++k) shift[k] = scale * rng.normal();
      agg::GradientBatch translated(n, d);
      for (int i = 0; i < n; ++i) {
        const auto src = batch.row(i);
        auto dst = translated.row(i);
        for (int k = 0; k < d; ++k) {
          dst[static_cast<std::size_t>(k)] = src[static_cast<std::size_t>(k)] + shift[k];
        }
      }
      Vector out_translated;
      rule->aggregate_into(out_translated, translated, f, ws);
      // Compare R(x + c) - c against R(x).  CGE-style sum rules would need
      // (n - f) c; none of the translation-equivariant rules here sum.
      Vector expected = base + shift;
      expect_close(expected, out_translated, props.prop_tol, label + " [translation]");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllRules, AggPropertyTest, ::testing::ValuesIn(kRules),
                         [](const auto& info) { return std::string(info.param.name); });

}  // namespace

#!/usr/bin/env python3
"""Unit tests for sweep_stats.py (invoked from CI ahead of the sweep gates).

Covers the aggregation semantics — seed-axis collapse, sample stddev
(ddof=1, 0.0 for single-seed cells), nan propagation for reference-free
grids, first-appearance cell ordering — and the exit-code contract shared
with compare_sweep.py (2 on schema errors such as a missing seed column).
"""

import io
import math
import os
import sys
import tempfile
import unittest
from contextlib import redirect_stdout

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import sweep_stats  # noqa: E402

HEADER = "run_id,f,shards,seed,final_dist,final_loss,eliminated,wall_ms\n"


def run(argv):
    out = io.StringIO()
    with redirect_stdout(out):
        code = sweep_stats.main(argv)
    return code, out.getvalue()


def parse_csv(text):
    lines = [line for line in text.strip().split("\n") if line]
    header = lines[0].split(",")
    return header, [dict(zip(header, line.split(","))) for line in lines[1:]]


class SweepStatsTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write(self, name, text):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w") as handle:
            handle.write(text)
        return path

    def test_collapses_seed_axis_per_cell(self):
        text = HEADER + (
            "000_f=1_shards=1_seed=1,1,1,1,0.5,10.0,0,1.0\n"
            "001_f=1_shards=1_seed=2,1,1,2,0.7,14.0,0,1.0\n"
            "002_f=1_shards=4_seed=1,1,4,1,0.9,20.0,0,1.0\n"
            "003_f=1_shards=4_seed=2,1,4,2,0.9,20.0,0,1.0\n"
        )
        code, out = run([self.write("s.csv", text)])
        self.assertEqual(code, 0)
        header, rows = parse_csv(out)
        self.assertEqual(
            header,
            ["f", "shards", "final_dist_mean", "final_dist_stddev", "final_dist_n",
             "final_loss_mean", "final_loss_stddev", "final_loss_n"],
        )
        self.assertEqual(len(rows), 2)
        cell = rows[0]
        self.assertEqual((cell["f"], cell["shards"]), ("1", "1"))
        self.assertAlmostEqual(float(cell["final_dist_mean"]), 0.6)
        # Sample stddev of {0.5, 0.7} = sqrt(0.02).
        self.assertAlmostEqual(float(cell["final_dist_stddev"]), math.sqrt(0.02))
        self.assertEqual(cell["final_dist_n"], "2")
        self.assertAlmostEqual(float(rows[1]["final_dist_stddev"]), 0.0)

    def test_single_seed_cell_has_zero_stddev(self):
        text = HEADER + "000_f=1_shards=1_seed=1,1,1,1,0.5,10.0,0,1.0\n"
        code, out = run([self.write("s.csv", text)])
        self.assertEqual(code, 0)
        _, rows = parse_csv(out)
        self.assertEqual(float(rows[0]["final_dist_stddev"]), 0.0)
        self.assertEqual(rows[0]["final_dist_n"], "1")

    def test_nan_metric_propagates_instead_of_failing(self):
        # dsgd grids have no closed-form reference: final_dist is "nan".
        text = HEADER + (
            "000_f=1_shards=1_seed=1,1,1,1,nan,10.0,0,1.0\n"
            "001_f=1_shards=1_seed=2,1,1,2,nan,14.0,0,1.0\n"
        )
        code, out = run([self.write("s.csv", text)])
        self.assertEqual(code, 0)
        _, rows = parse_csv(out)
        self.assertTrue(math.isnan(float(rows[0]["final_dist_mean"])))
        self.assertAlmostEqual(float(rows[0]["final_loss_mean"]), 12.0)

    def test_cells_keep_first_appearance_order(self):
        text = HEADER + (
            "000_f=2_shards=8_seed=1,2,8,1,0.1,1.0,0,1.0\n"
            "001_f=1_shards=1_seed=1,1,1,1,0.2,2.0,0,1.0\n"
        )
        code, out = run([self.write("s.csv", text)])
        self.assertEqual(code, 0)
        _, rows = parse_csv(out)
        self.assertEqual([(r["f"], r["shards"]) for r in rows], [("2", "8"), ("1", "1")])

    def test_custom_metrics_and_out_file(self):
        text = HEADER + "000_f=1_shards=1_seed=1,1,1,1,0.5,10.0,0,1.0\n"
        out_path = os.path.join(self.tmp.name, "stats.csv")
        code, _ = run([self.write("s.csv", text), "--metrics", "final_loss",
                       "--out", out_path])
        self.assertEqual(code, 0)
        with open(out_path) as handle:
            header, rows = parse_csv(handle.read())
        self.assertEqual(header, ["f", "shards", "final_loss_mean",
                                  "final_loss_stddev", "final_loss_n"])
        self.assertEqual(len(rows), 1)

    def test_missing_seed_column_is_schema_error(self):
        text = "run_id,f,final_dist,final_loss,eliminated,wall_ms\n" \
               "000_f=1,1,0.5,10.0,0,1.0\n"
        code, out = run([self.write("s.csv", text)])
        self.assertEqual(code, 2)
        self.assertIn("no seed column", out)

    def test_unknown_metric_and_bad_cells_are_errors(self):
        text = HEADER + "000_f=1_shards=1_seed=1,1,1,1,0.5,10.0,0,1.0\n"
        path = self.write("s.csv", text)
        code, out = run([path, "--metrics", "nope"])
        self.assertEqual(code, 2)
        self.assertIn("unknown metric", out)
        ragged = HEADER + "000_f=1_shards=1_seed=1,1,1\n"
        code, _ = run([self.write("r.csv", ragged)])
        self.assertEqual(code, 2)
        broken = HEADER + "000_f=1_shards=1_seed=1,1,1,1,oops,10.0,0,1.0\n"
        code, out = run([self.write("b.csv", broken)])
        self.assertEqual(code, 2)
        self.assertIn("non-numeric", out)

    def test_missing_file_is_io_error(self):
        code, _ = run([os.path.join(self.tmp.name, "absent.csv")])
        self.assertEqual(code, 2)


if __name__ == "__main__":
    unittest.main()

#!/usr/bin/env python3
"""Slice one precision out of a sweep CSV so compare_sweep.py can diff
precision lanes against each other.

Usage: split_sweep_precision.py SWEEP.csv PRECISION OUT.csv

Keeps only the rows whose "precision" axis cell equals PRECISION, drops the
precision column, and strips both the zero-padded grid index and the
precision token from run_id — the f64 and f32 halves of a
rule x precision x seed grid then carry identical run_ids and headers, so

  split_sweep_precision.py sweep.csv f64 f64.csv
  split_sweep_precision.py sweep.csv f32 f32.csv
  compare_sweep.py f64.csv f32.csv --rtol <envelope>

checks the f32 lane's end-to-end drift against the f64 lane under the
committed tolerance envelope.  Exits 2 on a malformed CSV (no precision
column, no rows at the requested precision).
"""

import csv
import re
import sys


def split(src_path, precision, dst_path):
    """Returns the number of rows written, raising ValueError on misuse."""
    with open(src_path, newline="") as handle:
        rows = list(csv.reader(handle))
    if not rows:
        raise ValueError(f"{src_path}: empty CSV")
    header = rows[0]
    if "precision" not in header:
        raise ValueError(f"{src_path}: no precision column in {header}")
    if "run_id" not in header:
        raise ValueError(f"{src_path}: no run_id column")
    precision_idx = header.index("precision")
    run_id_idx = header.index("run_id")

    out = [[cell for i, cell in enumerate(header) if i != precision_idx]]
    for cells in rows[1:]:
        if len(cells) != len(header):
            raise ValueError(f"{src_path}: ragged row {cells}")
        if cells[precision_idx] != precision:
            continue
        cells = list(cells)
        run_id = re.sub(r"^\d+_", "", cells[run_id_idx])
        run_id = re.sub(r"_?precision=[^_]+", "", run_id)
        cells[run_id_idx] = run_id
        out.append([cell for i, cell in enumerate(cells) if i != precision_idx])
    if len(out) == 1:
        raise ValueError(f"{src_path}: no rows at precision {precision!r}")

    with open(dst_path, "w", newline="") as handle:
        csv.writer(handle).writerows(out)
    return len(out) - 1


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    src, precision, dst = argv
    try:
        count = split(src, precision, dst)
    except (OSError, ValueError) as error:
        print(f"split_sweep_precision: {error}", file=sys.stderr)
        return 2
    print(f"split_sweep_precision: wrote {count} {precision} row(s) to {dst}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

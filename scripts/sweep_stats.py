#!/usr/bin/env python3
"""Aggregate a multi-seed abft_run --sweep CSV into per-cell statistics.

Usage: sweep_stats.py SWEEP.csv [--out STATS.csv] [--metrics col1,col2,...]

A sweep over a seed axis produces one row per (grid cell, seed); figures and
tables want the cell's mean +/- stddev instead.  This collapses the seed
axis: rows are grouped by every axis column except "seed" (the columns
between run_id and the metrics), and each metric column becomes three output
columns <metric>_mean, <metric>_stddev, <metric>_n.

  run_id,f,shards,seed,final_dist,final_loss,eliminated,wall_ms
  -> f,shards,final_dist_mean,final_dist_stddev,final_dist_n,...

Default metrics: final_dist and final_loss (the summary columns every sweep
CSV carries).  The stddev is the sample standard deviation (ddof=1), 0.0 for
a single-seed cell; a metric whose cell holds any nan yields nan mean and
stddev (a dsgd grid has no closed-form reference — that is data, not an
error).  Cells appear in first-appearance order, so the output is
deterministic and diff-stable across reruns of the same sweep.

Exit codes: 0 ok, 2 usage/IO/schema error (no seed column, unknown metric,
ragged rows) — matching compare_sweep.py's error code.
"""

import argparse
import csv
import math
import sys


def read_sweep(path):
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path}: empty CSV")
        if "run_id" not in header:
            raise ValueError(f"{path}: no run_id column")
        if "seed" not in header:
            raise ValueError(f"{path}: no seed column — nothing to aggregate over")
        rows = []
        for line_number, cells in enumerate(reader, start=2):
            if len(cells) != len(header):
                raise ValueError(
                    f"{path}:{line_number}: {len(cells)} cells, expected {len(header)}"
                )
            rows.append(dict(zip(header, cells)))
        return header, rows


def mean_stddev(values):
    """(mean, sample stddev); stddev 0.0 for n = 1, nan poisons the cell."""
    if any(math.isnan(v) for v in values):
        return float("nan"), float("nan")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, math.sqrt(variance)


def aggregate(header, rows, metrics):
    """Returns (output_header, output_rows) collapsing the seed axis."""
    for metric in metrics:
        if metric not in header:
            raise ValueError(f"unknown metric column {metric!r}")
    # Axis columns: everything between run_id and the first metric/summary
    # column, minus seed.  The sweep CSV contract puts swept axes right
    # after run_id, so "not run_id, not seed, not a metric, and not one of
    # the fixed summary tails" is exactly the axis set.
    summary_tail = {"final_dist", "final_loss", "eliminated", "wall_ms"}
    group_columns = [
        column
        for column in header
        if column not in {"run_id", "seed"} and column not in summary_tail
    ]
    groups = {}  # key tuple -> {"cells": axis values, metric: [floats]}
    order = []
    for row in rows:
        key = tuple(row[column] for column in group_columns)
        if key not in groups:
            groups[key] = {metric: [] for metric in metrics}
            order.append(key)
        for metric in metrics:
            try:
                value = float(row[metric])
            except ValueError:
                raise ValueError(
                    f"non-numeric {metric!r} cell {row[metric]!r} in run {row['run_id']}"
                )
            groups[key][metric].append(value)
    out_header = list(group_columns)
    for metric in metrics:
        out_header += [f"{metric}_mean", f"{metric}_stddev", f"{metric}_n"]
    out_rows = []
    for key in order:
        cells = list(key)
        for metric in metrics:
            values = groups[key][metric]
            mean, stddev = mean_stddev(values)
            cells += [repr(mean), repr(stddev), str(len(values))]
        out_rows.append(cells)
    return out_header, out_rows


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Collapse a multi-seed sweep CSV into mean/stddev per grid cell"
    )
    parser.add_argument("sweep_csv")
    parser.add_argument("--out", default="-", help="output CSV path (default stdout)")
    parser.add_argument(
        "--metrics",
        default="final_dist,final_loss",
        help="comma-separated metric columns (default final_dist,final_loss)",
    )
    args = parser.parse_args(argv)
    metrics = [m for m in args.metrics.split(",") if m]
    if not metrics:
        print("ERROR: no metric columns named")
        return 2
    try:
        header, rows = read_sweep(args.sweep_csv)
        out_header, out_rows = aggregate(header, rows, metrics)
    except (OSError, ValueError) as error:
        print(f"ERROR: {error}")
        return 2
    handle = sys.stdout if args.out == "-" else open(args.out, "w", newline="")
    try:
        writer = csv.writer(handle, lineterminator="\n")
        writer.writerow(out_header)
        writer.writerows(out_rows)
    finally:
        if handle is not sys.stdout:
            handle.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())

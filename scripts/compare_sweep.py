#!/usr/bin/env python3
"""Compare an abft_run --sweep CSV against a committed golden.

Usage: compare_sweep.py GOLDEN.csv CURRENT.csv [--rtol 1e-4] [--atol 1e-9]
                        [--ignore wall_ms[,col2,...]]

Rows are keyed by run_id and must cover the same grid (a missing or extra
run is a failure — a grid that silently changed shape is not the same
experiment).  Headers must agree after dropping the ignored columns.
Numeric cells must agree within tolerance (relative OR absolute; "nan"
matches "nan"); other cells exactly.  wall_ms is ignored by default — it is
the one column two correct runs never share, and the threads=1 vs threads=N
parity check in CI depends on ignoring it.

Exit codes: 0 match, 1 mismatch, 2 usage/IO error, 3 golden file missing
(distinct so CI can say "regenerate the golden" instead of "broken run").

The tolerance exists for cross-host libm differences (the random streams
use log/cos, whose last-ulp behaviour is implementation-defined); a genuine
regression moves these numbers by orders of magnitude more.
"""

import argparse
import csv
import os
import sys


def read_rows(path):
    """Returns (kept_header, {run_id: row_cells}) with ignored columns intact;
    filtering happens in compare()."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path}: empty CSV")
        if "run_id" not in header:
            raise ValueError(f"{path}: no run_id column")
        rows = {}
        for line_number, cells in enumerate(reader, start=2):
            if len(cells) != len(header):
                raise ValueError(
                    f"{path}:{line_number}: {len(cells)} cells, expected {len(header)}"
                )
            row = dict(zip(header, cells))
            run_id = row["run_id"]
            if run_id in rows:
                raise ValueError(f"{path}:{line_number}: duplicate run_id {run_id}")
            rows[run_id] = row
        return header, rows


def cells_match(golden, current, rtol, atol):
    try:
        a, b = float(golden), float(current)
    except ValueError:
        return golden == current
    if a != a and b != b:  # nan on both sides
        return True
    return abs(a - b) <= max(atol, rtol * max(abs(a), abs(b)))


def compare(golden_path, current_path, rtol, atol, ignore):
    """Returns a list of human-readable mismatch strings."""
    golden_header, golden_rows = read_rows(golden_path)
    current_header, current_rows = read_rows(current_path)
    kept_golden = [c for c in golden_header if c not in ignore]
    kept_current = [c for c in current_header if c not in ignore]
    if kept_golden != kept_current:
        return [f"headers differ: {kept_golden} vs {kept_current}"]

    errors = []
    for run_id, golden_row in golden_rows.items():
        current_row = current_rows.get(run_id)
        if current_row is None:
            errors.append(f"{run_id}: missing from {current_path}")
            continue
        for column in kept_golden:
            if not cells_match(golden_row[column], current_row[column], rtol, atol):
                errors.append(
                    f"{run_id}.{column}: {current_row[column]!r} differs from golden "
                    f"{golden_row[column]!r}"
                )
    for run_id in current_rows:
        if run_id not in golden_rows:
            errors.append(f"{run_id}: not in the golden grid {golden_path}")
    return errors


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("golden")
    parser.add_argument("current")
    parser.add_argument("--rtol", type=float, default=1e-4)
    parser.add_argument("--atol", type=float, default=1e-9)
    parser.add_argument(
        "--ignore",
        default="wall_ms",
        help="comma-separated columns excluded from the comparison (default: wall_ms)",
    )
    args = parser.parse_args(argv)

    if not os.path.exists(args.golden):
        print(
            f"compare_sweep: golden file {args.golden} is missing — regenerate it with\n"
            f"  abft_run --sweep <spec> --csv={args.golden}",
            file=sys.stderr,
        )
        return 3

    ignore = {c for c in args.ignore.split(",") if c}
    try:
        errors = compare(args.golden, args.current, args.rtol, args.atol, ignore)
    except (OSError, ValueError) as error:
        print(f"compare_sweep: {error}", file=sys.stderr)
        return 2

    if errors:
        print(f"compare_sweep: {args.current} does not match {args.golden}:")
        for error in errors:
            print(f"  {error}")
        return 1
    print(f"compare_sweep: {args.current} matches {args.golden} (rtol {args.rtol})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

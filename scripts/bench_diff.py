#!/usr/bin/env python3
"""Warn-only diff of a fresh BENCH_agg.json against the committed baseline.

Usage: bench_diff.py <baseline.json> <current.json> [--threshold PCT]

Matches results on (rule, path, n, d, f) and reports ns/op deltas beyond the
threshold (default 25%, generous because CI machines are noisy).  Always
exits 0 unless an input is missing or malformed — this is a tripwire for the
humans reading the log, not a gate; tighten it into a failure once numbers
stabilize across runs (see ROADMAP).
"""

import argparse
import json
import sys


def load(path):
    with open(path) as handle:
        doc = json.load(handle)
    return {
        (r["rule"], r["path"], r["n"], r["d"], r["f"]): r["ns_per_op"]
        for r in doc["results"]
    }


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=25.0,
                        help="warn when |delta| exceeds this percentage")
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)

    regressions = []
    improvements = []
    for key in sorted(baseline.keys() & current.keys()):
        old, new = baseline[key], current[key]
        if old <= 0:
            continue
        delta = 100.0 * (new - old) / old
        if abs(delta) >= args.threshold:
            (regressions if delta > 0 else improvements).append((key, old, new, delta))

    def describe(key):
        rule, path, n, d, f = key
        return f"{rule}/{path} n={n} d={d} f={f}"

    for key, old, new, delta in regressions:
        print(f"WARNING: {describe(key)}: {old:.1f} -> {new:.1f} ns/op ({delta:+.1f}%)")
    for key, old, new, delta in improvements:
        print(f"improved: {describe(key)}: {old:.1f} -> {new:.1f} ns/op ({delta:+.1f}%)")

    only_old = baseline.keys() - current.keys()
    only_new = current.keys() - baseline.keys()
    if only_old:
        print(f"note: {len(only_old)} baseline entries missing from the current run")
    if only_new:
        print(f"note: {len(only_new)} new entries absent from the baseline")

    matched = len(baseline.keys() & current.keys())
    print(f"bench_diff: {matched} matched entries, {len(regressions)} above "
          f"+{args.threshold:.0f}%, {len(improvements)} improved (warn-only)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

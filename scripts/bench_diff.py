#!/usr/bin/env python3
"""Diff a fresh BENCH_agg.json against the committed baseline.

Usage: bench_diff.py <baseline.json> <current.json>
           [--threshold PCT] [--fail-threshold PCT] [--gate-paths P1,P2]

Matches results on (rule, path, precision, n, d) and reports ns/op deltas
beyond --threshold (default 25%, generous because CI machines are noisy).
Records without a "precision" field (every BENCH file written before the
f32 lane landed) match as "f64", so old committed baselines keep diffing
cleanly against new runs.

Robustness: a key present in only one of baseline/current, or a malformed
result record (missing/odd-typed fields), is WARNED about and skipped —
never a crash.  Only an unreadable or structurally invalid file (no usable
"results" list at all) is a hard error (exit 2).

Gating: by default the script is warn-only (exit 0).  With --fail-threshold
set, regressions at or beyond that percentage on the gated paths (default
"legacy,batched" — the exact-mode kernels with stable semantics) fail the
run with exit 1.  The relaxed-parity "fast" path and the host-dependent
"pooled" path are never gated: their numbers are reported for the log only.

The gate is normalized for host speed: the raw new/old ratios of the gated
entries are divided by their median before thresholding, so a CI runner
that is uniformly 2x slower (or faster) than the machine that produced the
committed baseline does not trip (or mask) the gate — only a kernel that
regressed RELATIVE to its peers does.  Raw deltas still drive the warnings.
"""

import argparse
import json
import math
import statistics
import sys


def warn(message):
    print(f"WARNING: {message}")


def load(path):
    """Returns {(rule, path, precision, n, d): ns_per_op} or None on a hard
    error."""
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"ERROR: cannot read {path}: {error}")
        return None
    results = doc.get("results") if isinstance(doc, dict) else None
    if not isinstance(results, list):
        print(f"ERROR: {path} has no 'results' list")
        return None
    out = {}
    skipped = 0
    for record in results:
        try:
            precision = record.get("precision", "f64")
            if not isinstance(precision, str):
                raise TypeError("precision must be a string")
            key = (record["rule"], record["path"], precision,
                   int(record["n"]), int(record["d"]))
            # An explicit null ns_per_op means "deliberately not measured at
            # this shape" (e.g. the O(n^2 d) flat baseline past its limit):
            # treat the entry as absent, not malformed.
            if record["ns_per_op"] is None:
                continue
            out[key] = float(record["ns_per_op"])
        except (AttributeError, KeyError, TypeError, ValueError):
            skipped += 1
    if skipped:
        warn(f"{path}: skipped {skipped} malformed result record(s)")
    return out


def describe(key):
    rule, path, precision, n, d = key
    return f"{rule}/{path}/{precision} n={n} d={d}"


def main(argv=None):
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=25.0,
                        help="warn when |delta| exceeds this percentage")
    parser.add_argument("--fail-threshold", type=float, default=None,
                        help="exit 1 when a gated-path regression reaches this "
                             "percentage (default: warn-only)")
    parser.add_argument("--gate-paths", default="legacy,batched",
                        help="comma-separated result paths the fail gate applies "
                             "to (default: the exact-mode kernels)")
    args = parser.parse_args(argv)

    baseline = load(args.baseline)
    current = load(args.current)
    if baseline is None or current is None:
        return 2

    gate_paths = {p.strip() for p in args.gate_paths.split(",") if p.strip()}
    matched_keys = []
    regressions = []
    improvements = []
    nan_mismatches = []
    for key in sorted(baseline.keys() & current.keys()):
        old, new = baseline[key], current[key]
        # Non-finite values would sail through every comparison below (nan
        # fails <=, >= and abs() thresholds alike) and poison the gate's
        # median.  Both-nan is a match (same failure on both sides); a
        # one-sided nan is a real mismatch the gate must see.
        if not math.isfinite(old) and not math.isfinite(new):
            continue
        if not math.isfinite(old) or not math.isfinite(new):
            warn(f"{describe(key)}: non-finite on one side only "
                 f"({old} -> {new}), treated as a mismatch")
            nan_mismatches.append((key, old, new))
            continue
        if old <= 0:
            warn(f"{describe(key)}: non-positive baseline value {old}, skipped")
            continue
        matched_keys.append(key)
        delta = 100.0 * (new - old) / old
        if abs(delta) >= args.threshold:
            (regressions if delta > 0 else improvements).append((key, old, new, delta))

    # Host-speed-normalized gate: divide every gated ratio by the median
    # gated ratio, so only relative outliers fail.
    gate_failures = []
    speed_norm = 1.0
    if args.fail_threshold is not None:
        gated = [key for key in matched_keys if key[1] in gate_paths]
        if gated:
            speed_norm = statistics.median(current[key] / baseline[key] for key in gated)
            print(f"bench_diff: host speed normalization x{speed_norm:.3f} "
                  f"(median current/baseline over {len(gated)} gated entries)")
        for key in gated:
            normalized_delta = 100.0 * (current[key] / baseline[key] / speed_norm - 1.0)
            if normalized_delta >= args.fail_threshold:
                gate_failures.append((key, baseline[key], current[key], normalized_delta))

    for key, old, new, delta in regressions:
        print(f"WARNING: {describe(key)}: {old:.1f} -> {new:.1f} ns/op ({delta:+.1f}%)")
    for key, old, new, delta in improvements:
        print(f"improved: {describe(key)}: {old:.1f} -> {new:.1f} ns/op ({delta:+.1f}%)")

    only_old = baseline.keys() - current.keys()
    only_new = current.keys() - baseline.keys()
    for key in sorted(only_old):
        warn(f"baseline-only entry (not measured in current run): {describe(key)}")
    for key in sorted(only_new):
        warn(f"new entry absent from the baseline: {describe(key)}")

    matched = len(baseline.keys() & current.keys())
    mode = ("gate on " + ",".join(sorted(gate_paths)) +
            f" at +{args.fail_threshold:.0f}% (speed-normalized)"
            if args.fail_threshold is not None else "warn-only")
    print(f"bench_diff: {matched} matched entries, {len(regressions)} above "
          f"+{args.threshold:.0f}%, {len(improvements)} improved ({mode})")

    if gate_failures:
        for key, old, new, delta in gate_failures:
            print(f"FAIL: {describe(key)}: {old:.1f} -> {new:.1f} ns/op "
                  f"({delta:+.1f}% after speed normalization) exceeds the gate")
        return 1
    if nan_mismatches and args.fail_threshold is not None:
        for key, old, new in nan_mismatches:
            print(f"FAIL: {describe(key)}: non-finite on one side only ({old} -> {new})")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

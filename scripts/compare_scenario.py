#!/usr/bin/env python3
"""Compare an abft_run --out result against a committed golden.

Usage: compare_scenario.py GOLDEN.json CURRENT.json [--rtol 1e-4] [--atol 1e-9]

Every key in the golden must be present in the current result with the same
type; numbers must agree within the tolerance (relative OR absolute),
strings and integers exactly, arrays elementwise.  Extra keys in the current
result are allowed (the summary may grow), so adding fields never breaks old
goldens.  Exit code 0 on match, 1 on mismatch, 2 on usage/IO errors, 3 when
the golden file is missing (distinct so CI can say "regenerate the golden"
instead of "broken run").

The tolerance exists for cross-host libm differences (the random streams use
log/cos, whose last-ulp behaviour is implementation-defined); a genuine
regression — a dropped round, a reordered filter input, a changed
elimination — moves these numbers by orders of magnitude more.
"""

import argparse
import json
import os
import sys


def compare(golden, current, rtol, atol, path="$"):
    """Returns a list of human-readable mismatch strings."""
    errors = []
    if isinstance(golden, dict):
        if not isinstance(current, dict):
            return [f"{path}: expected an object, found {type(current).__name__}"]
        for key, value in golden.items():
            if key not in current:
                errors.append(f"{path}.{key}: missing from current result")
                continue
            errors.extend(compare(value, current[key], rtol, atol, f"{path}.{key}"))
        return errors
    if isinstance(golden, list):
        if not isinstance(current, list):
            return [f"{path}: expected an array, found {type(current).__name__}"]
        if len(golden) != len(current):
            return [f"{path}: length {len(current)}, expected {len(golden)}"]
        for index, (g, c) in enumerate(zip(golden, current)):
            errors.extend(compare(g, c, rtol, atol, f"{path}[{index}]"))
        return errors
    if isinstance(golden, bool) or isinstance(current, bool):
        if golden is not current:
            errors.append(f"{path}: {current!r}, expected {golden!r}")
        return errors
    if isinstance(golden, (int, float)) and isinstance(current, (int, float)):
        if isinstance(golden, int) and isinstance(current, int):
            if golden != current:
                errors.append(f"{path}: {current}, expected exactly {golden}")
            return errors
        tolerance = max(atol, rtol * max(abs(golden), abs(current)))
        if abs(golden - current) > tolerance:
            errors.append(
                f"{path}: {current!r} differs from golden {golden!r} "
                f"by {abs(golden - current):.3e} (> {tolerance:.3e})"
            )
        return errors
    if golden != current:
        errors.append(f"{path}: {current!r}, expected {golden!r}")
    return errors


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("golden")
    parser.add_argument("current")
    parser.add_argument("--rtol", type=float, default=1e-4)
    parser.add_argument("--atol", type=float, default=1e-9)
    args = parser.parse_args(argv)

    if not os.path.exists(args.golden):
        print(
            f"compare_scenario: golden file {args.golden} is missing — regenerate it with\n"
            f"  abft_run <spec> --out={args.golden}",
            file=sys.stderr,
        )
        return 3

    try:
        with open(args.golden) as handle:
            golden = json.load(handle)
        with open(args.current) as handle:
            current = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"compare_scenario: {error}", file=sys.stderr)
        return 2

    errors = compare(golden, current, args.rtol, args.atol)
    if errors:
        print(f"compare_scenario: {args.current} does not match {args.golden}:")
        for error in errors:
            print(f"  {error}")
        return 1
    print(f"compare_scenario: {args.current} matches {args.golden} (rtol {args.rtol})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

#!/usr/bin/env python3
"""Unit tests for compare_sweep.py (invoked from CI ahead of the sweep gate).

Covers the comparison semantics — tolerance on numeric cells, nan-matches-
nan, exact matching on id/label cells, the default wall_ms exemption, grid
shape mismatches — and the exit-code contract, including the distinct
missing-golden code CI keys off.
"""

import io
import os
import sys
import tempfile
import unittest
from contextlib import redirect_stdout

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import compare_sweep  # noqa: E402

HEADER = "run_id,aggregator,seed,final_dist,final_loss,eliminated,wall_ms\n"


def run(argv):
    out = io.StringIO()
    with redirect_stdout(out):
        code = compare_sweep.main(argv)
    return code, out.getvalue()


class CompareSweepTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write(self, name, text):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w") as handle:
            handle.write(text)
        return path

    def test_identical_grids_match(self):
        text = HEADER + "000_aggregator=cwtm_seed=1,cwtm,1,0.5,2.25,0,1.234\n"
        code, out = run([self.write("g.csv", text), self.write("c.csv", text)])
        self.assertEqual(code, 0)
        self.assertIn("matches", out)

    def test_wall_ms_is_exempt_by_default(self):
        golden = HEADER + "000_aggregator=cwtm_seed=1,cwtm,1,0.5,2.25,0,1.234\n"
        current = HEADER + "000_aggregator=cwtm_seed=1,cwtm,1,0.5,2.25,0,99.9\n"
        code, _ = run([self.write("g.csv", golden), self.write("c.csv", current)])
        self.assertEqual(code, 0)

    def test_tolerance_absorbs_libm_noise_but_not_regressions(self):
        golden = HEADER + "000_aggregator=cwtm_seed=1,cwtm,1,0.5,2.25,0,1.0\n"
        close = HEADER + "000_aggregator=cwtm_seed=1,cwtm,1,0.500004,2.25,0,1.0\n"
        far = HEADER + "000_aggregator=cwtm_seed=1,cwtm,1,0.51,2.25,0,1.0\n"
        g = self.write("g.csv", golden)
        code, _ = run([g, self.write("close.csv", close), "--rtol", "1e-4"])
        self.assertEqual(code, 0)
        code, out = run([g, self.write("far.csv", far), "--rtol", "1e-4"])
        self.assertEqual(code, 1)
        self.assertIn("final_dist", out)

    def test_nan_matches_nan_and_label_cells_compare_exactly(self):
        golden = HEADER + "000_aggregator=cwtm_seed=1,cwtm,1,nan,2.25,0,1.0\n"
        same = HEADER + "000_aggregator=cwtm_seed=1,cwtm,1,nan,2.25,0,2.0\n"
        relabeled = HEADER + "000_aggregator=cwtm_seed=1,cge,1,nan,2.25,0,1.0\n"
        g = self.write("g.csv", golden)
        code, _ = run([g, self.write("same.csv", same)])
        self.assertEqual(code, 0)
        code, out = run([g, self.write("relabeled.csv", relabeled)])
        self.assertEqual(code, 1)
        self.assertIn("aggregator", out)

    def test_quoted_comma_bearing_labels_round_trip(self):
        # The sweep CSV writer RFC-4180-quotes cells; a fault/variant label
        # like "sign-flip, strong" must parse back as ONE cell, and a label
        # differing only inside the quotes must mismatch (not shift columns).
        header = "run_id,faults,seed,final_dist,final_loss,eliminated,wall_ms\n"
        golden = header + '000_faults=sign-flip--strong_seed=1,"sign-flip, strong",1,0.5,2.25,0,1.0\n'
        same = header + '000_faults=sign-flip--strong_seed=1,"sign-flip, strong",1,0.5,2.25,0,9.0\n'
        relabeled = header + '000_faults=sign-flip--strong_seed=1,"sign-flip, weak",1,0.5,2.25,0,1.0\n'
        g = self.write("g.csv", golden)
        code, _ = run([g, self.write("same.csv", same)])
        self.assertEqual(code, 0)
        code, out = run([g, self.write("relabeled.csv", relabeled)])
        self.assertEqual(code, 1)
        self.assertIn("faults", out)

    def test_embedded_quotes_in_labels_parse(self):
        # A doubled quote inside a quoted cell is one literal quote.
        header = "run_id,variants,seed,final_dist,final_loss,eliminated,wall_ms\n"
        text = header + '000_variants=the--fast--run_seed=1,"the ""fast"" run",1,0.5,2.25,0,1.0\n'
        path = self.write("q.csv", text)
        code, _ = run([path, path])
        self.assertEqual(code, 0)

    def test_grid_shape_mismatch_fails(self):
        golden = HEADER + "000_aggregator=cwtm_seed=1,cwtm,1,0.5,2.25,0,1.0\n"
        extra = (
            HEADER
            + "000_aggregator=cwtm_seed=1,cwtm,1,0.5,2.25,0,1.0\n"
            + "001_aggregator=cge_seed=1,cge,1,0.5,2.25,0,1.0\n"
        )
        g = self.write("g.csv", golden)
        code, out = run([g, self.write("extra.csv", extra)])
        self.assertEqual(code, 1)
        self.assertIn("not in the golden grid", out)
        code, out = run([self.write("g2.csv", extra), self.write("c2.csv", golden)])
        self.assertEqual(code, 1)
        self.assertIn("missing", out)

    def test_header_drift_fails(self):
        golden = HEADER + "000_aggregator=cwtm_seed=1,cwtm,1,0.5,2.25,0,1.0\n"
        reshaped = (
            "run_id,aggregator,f,final_dist,final_loss,eliminated,wall_ms\n"
            + "000_aggregator=cwtm_seed=1,cwtm,1,0.5,2.25,0,1.0\n"
        )
        code, out = run(
            [self.write("g.csv", golden), self.write("c.csv", reshaped)]
        )
        self.assertEqual(code, 1)
        self.assertIn("headers differ", out)

    def test_missing_golden_exits_three(self):
        current = self.write("c.csv", HEADER)
        code, _ = run([os.path.join(self.tmp.name, "absent.csv"), current])
        self.assertEqual(code, 3)

    def test_malformed_csv_exits_two(self):
        golden = self.write("g.csv", HEADER + "000,cwtm,1,0.5\n")  # short row
        current = self.write("c.csv", HEADER)
        code, _ = run([golden, current])
        self.assertEqual(code, 2)
        # No run_id column at all.
        no_id = self.write("n.csv", "a,b\n1,2\n")
        code, _ = run([no_id, no_id])
        self.assertEqual(code, 2)

    def test_duplicate_run_id_exits_two(self):
        doubled = (
            HEADER
            + "000_aggregator=cwtm_seed=1,cwtm,1,0.5,2.25,0,1.0\n"
            + "000_aggregator=cwtm_seed=1,cwtm,1,0.5,2.25,0,1.0\n"
        )
        path = self.write("d.csv", doubled)
        code, _ = run([path, path])
        self.assertEqual(code, 2)


if __name__ == "__main__":
    unittest.main()

#!/usr/bin/env python3
"""Unit tests for bench_diff.py (invoked from CI ahead of the bench gate).

Covers the failure modes the script must absorb gracefully — a benchmark
key present in only one of baseline/current, malformed result records,
unreadable files — and the gate semantics: exact-mode kernel regressions
fail at --fail-threshold while the ungated "fast"/"pooled" paths never do.
"""

import io
import json
import os
import sys
import tempfile
import unittest
from contextlib import redirect_stdout

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_diff  # noqa: E402


def result(rule, path, n, d, f, ns, precision=None):
    record = {"rule": rule, "path": path, "n": n, "d": d, "f": f,
              "ns_per_op": ns, "iters": 10}
    if precision is not None:
        record["precision"] = precision
    return record


def write_doc(directory, name, results):
    path = os.path.join(directory, name)
    with open(path, "w") as handle:
        json.dump({"results": results, "speedups": {}}, handle)
    return path


def run(argv):
    out = io.StringIO()
    with redirect_stdout(out):
        code = bench_diff.main(argv)
    return code, out.getvalue()


class BenchDiffTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def test_matching_runs_exit_zero(self):
        results = [result("cge", "batched", 10, 10, 2, 100.0)]
        base = write_doc(self.tmp.name, "base.json", results)
        cur = write_doc(self.tmp.name, "cur.json", results)
        code, out = run([base, cur])
        self.assertEqual(code, 0)
        self.assertIn("1 matched entries", out)

    def test_one_sided_keys_warn_but_do_not_fail(self):
        base = write_doc(self.tmp.name, "base.json",
                         [result("cge", "batched", 10, 10, 2, 100.0),
                          result("krum", "batched", 10, 10, 2, 100.0)])
        cur = write_doc(self.tmp.name, "cur.json",
                        [result("cge", "batched", 10, 10, 2, 100.0),
                         result("cge", "fast", 10, 10, 2, 80.0)])
        code, out = run([base, cur, "--fail-threshold", "25"])
        self.assertEqual(code, 0)
        self.assertIn("baseline-only entry", out)
        self.assertIn("new entry absent from the baseline", out)

    def test_malformed_records_are_skipped_with_warning(self):
        base = write_doc(self.tmp.name, "base.json",
                         [result("cge", "batched", 10, 10, 2, 100.0),
                          {"rule": "broken"},  # missing every other field
                          {"rule": "cwtm", "path": "batched", "n": 10, "d": 10,
                           "f": 1, "ns_per_op": "not-a-number"}])
        cur = write_doc(self.tmp.name, "cur.json",
                        [result("cge", "batched", 10, 10, 2, 101.0)])
        code, out = run([base, cur])
        self.assertEqual(code, 0)
        self.assertIn("skipped 2 malformed result record(s)", out)

    def test_unreadable_or_invalid_file_is_a_hard_error(self):
        cur = write_doc(self.tmp.name, "cur.json", [])
        code, out = run([os.path.join(self.tmp.name, "missing.json"), cur])
        self.assertEqual(code, 2)
        self.assertIn("ERROR", out)
        bad = os.path.join(self.tmp.name, "bad.json")
        with open(bad, "w") as handle:
            handle.write("{not json")
        code, _ = run([bad, cur])
        self.assertEqual(code, 2)
        no_results = os.path.join(self.tmp.name, "no_results.json")
        with open(no_results, "w") as handle:
            json.dump({"speedups": {}}, handle)
        code, out = run([no_results, cur])
        self.assertEqual(code, 2)
        self.assertIn("no 'results' list", out)

    def test_gate_fails_on_exact_kernel_regression(self):
        # Three gated entries; one regresses 40% while its peers hold, so
        # the median normalization is ~1.0 and the outlier trips the gate.
        base = write_doc(self.tmp.name, "base.json",
                         [result("bulyan", "batched", 50, 10000, 10, 100.0),
                          result("geomed", "batched", 50, 10000, 10, 100.0),
                          result("cwtm", "legacy", 50, 10000, 10, 100.0)])
        cur = write_doc(self.tmp.name, "cur.json",
                        [result("bulyan", "batched", 50, 10000, 10, 140.0),
                         result("geomed", "batched", 50, 10000, 10, 101.0),
                         result("cwtm", "legacy", 50, 10000, 10, 99.0)])
        code, out = run([base, cur, "--fail-threshold", "25"])
        self.assertEqual(code, 1)
        self.assertIn("FAIL", out)
        self.assertIn("bulyan", out)
        # The same delta is warn-only without the flag.
        code, _ = run([base, cur])
        self.assertEqual(code, 0)

    def test_gate_tolerates_uniform_host_speed_difference(self):
        # A CI runner uniformly 2x slower than the baseline host must not
        # trip the gate: the median normalization absorbs the common factor.
        results = [result("bulyan", "batched", 50, 10000, 10, 100.0),
                   result("geomed", "batched", 50, 10000, 10, 100.0),
                   result("cwtm", "legacy", 50, 10000, 10, 100.0)]
        base = write_doc(self.tmp.name, "base.json", results)
        slow = [dict(r, ns_per_op=r["ns_per_op"] * 2.0) for r in results]
        cur = write_doc(self.tmp.name, "cur.json", slow)
        code, out = run([base, cur, "--fail-threshold", "25"])
        self.assertEqual(code, 0)
        self.assertIn("speed normalization x2.000", out)

    def test_gate_ignores_fast_and_pooled_paths(self):
        base = write_doc(self.tmp.name, "base.json",
                         [result("geomed", "fast", 50, 10000, 10, 100.0),
                          result("geomed", "pooled", 50, 10000, 10, 100.0)])
        cur = write_doc(self.tmp.name, "cur.json",
                        [result("geomed", "fast", 50, 10000, 10, 300.0),
                         result("geomed", "pooled", 50, 10000, 10, 300.0)])
        code, out = run([base, cur, "--fail-threshold", "25"])
        self.assertEqual(code, 0)
        self.assertIn("WARNING", out)  # still visible in the log

    def test_improvements_are_reported_not_failed(self):
        base = write_doc(self.tmp.name, "base.json",
                         [result("cwtm", "legacy", 10, 10, 2, 200.0)])
        cur = write_doc(self.tmp.name, "cur.json",
                        [result("cwtm", "legacy", 10, 10, 2, 100.0)])
        code, out = run([base, cur, "--fail-threshold", "25"])
        self.assertEqual(code, 0)
        self.assertIn("improved", out)

    def test_both_sided_nan_is_a_match(self):
        # A measurement that failed the same way on both sides is not a
        # regression; before the nan handling this pair silently inflated
        # nothing but a one-sided nan ALSO passed — see the next test.
        base = write_doc(self.tmp.name, "base.json",
                         [result("cge", "batched", 10, 10, 2, float("nan")),
                          result("cwtm", "legacy", 10, 10, 2, 100.0)])
        cur = write_doc(self.tmp.name, "cur.json",
                        [result("cge", "batched", 10, 10, 2, float("nan")),
                         result("cwtm", "legacy", 10, 10, 2, 100.0)])
        code, out = run([base, cur, "--fail-threshold", "25"])
        self.assertEqual(code, 0)
        self.assertNotIn("FAIL", out)

    def test_one_sided_nan_fails_the_gate(self):
        # nan sails through every numeric comparison (<=, >=, abs()
        # thresholds are all False), so before the fix a kernel whose
        # current measurement went nan passed the gate silently and
        # poisoned the normalization median.
        base = write_doc(self.tmp.name, "base.json",
                         [result("bulyan", "batched", 50, 10000, 10, 100.0),
                          result("geomed", "batched", 50, 10000, 10, 100.0)])
        cur = write_doc(self.tmp.name, "cur.json",
                        [result("bulyan", "batched", 50, 10000, 10, float("nan")),
                         result("geomed", "batched", 50, 10000, 10, 100.0)])
        code, out = run([base, cur, "--fail-threshold", "25"])
        self.assertEqual(code, 1)
        self.assertIn("non-finite on one side only", out)
        # Warn-only mode still surfaces it without failing.
        code, out = run([base, cur])
        self.assertEqual(code, 0)
        self.assertIn("non-finite on one side only", out)

    def test_nan_does_not_poison_the_gate_median(self):
        # One nan pair plus one genuine 40% regression: the median over the
        # gated ratios must exclude the nan pair, so the regression still
        # trips the gate (a nan median would mask it).
        base = write_doc(self.tmp.name, "base.json",
                         [result("cge", "batched", 10, 10, 2, float("nan")),
                          result("bulyan", "batched", 50, 10000, 10, 100.0),
                          result("geomed", "batched", 50, 10000, 10, 100.0),
                          result("cwtm", "legacy", 50, 10000, 10, 100.0)])
        cur = write_doc(self.tmp.name, "cur.json",
                        [result("cge", "batched", 10, 10, 2, float("nan")),
                         result("bulyan", "batched", 50, 10000, 10, 140.0),
                         result("geomed", "batched", 50, 10000, 10, 101.0),
                         result("cwtm", "legacy", 50, 10000, 10, 99.0)])
        code, out = run([base, cur, "--fail-threshold", "25"])
        self.assertEqual(code, 1)
        self.assertIn("bulyan", out)

    def test_null_ns_per_op_is_treated_as_absent(self):
        # bench_coreset writes null (not 0) when a baseline is deliberately
        # not measured (the O(n^2 d) flat krum past 10^5): the entry must
        # count as absent — a "new entry" warning at most — never as a
        # malformed record or a gate mismatch.
        base = write_doc(self.tmp.name, "base.json",
                         [result("krum", "flat", 1000000, 8, 10000, None),
                          result("krum", "coreset", 1000000, 8, 10000, 100.0)])
        cur = write_doc(self.tmp.name, "cur.json",
                        [result("krum", "flat", 1000000, 8, 10000, None),
                         result("krum", "coreset", 1000000, 8, 10000, 101.0)])
        code, out = run([base, cur, "--fail-threshold", "25"])
        self.assertEqual(code, 0)
        self.assertNotIn("malformed", out)
        self.assertNotIn("FAIL", out)
        self.assertIn("1 matched entries", out)
        # One-sided null: the measured side surfaces as a one-sided key
        # (warn-only), not a crash or a nan mismatch.
        cur_measured = write_doc(
            self.tmp.name, "cur2.json",
            [result("krum", "flat", 1000000, 8, 10000, 500.0),
             result("krum", "coreset", 1000000, 8, 10000, 100.0)])
        code, out = run([base, cur_measured, "--fail-threshold", "25"])
        self.assertEqual(code, 0)
        self.assertIn("new entry absent from the baseline", out)

    def test_missing_precision_matches_explicit_f64(self):
        # Baselines written before the f32 lane carry no "precision" field;
        # they must keep matching new runs that spell out "f64".
        base = write_doc(self.tmp.name, "base.json",
                         [result("cwtm", "fast", 50, 10000, 10, 100.0)])
        cur = write_doc(self.tmp.name, "cur.json",
                        [result("cwtm", "fast", 50, 10000, 10, 101.0,
                                precision="f64")])
        code, out = run([base, cur])
        self.assertEqual(code, 0)
        self.assertIn("1 matched entries", out)
        self.assertNotIn("baseline-only", out)

    def test_f32_rows_are_distinct_keys(self):
        # Same (rule, path, n, d) at two precisions: two independent
        # entries, and an f32 regression on the ungated "fast" path warns
        # without failing.
        base = write_doc(self.tmp.name, "base.json",
                         [result("cwtm", "fast", 50, 10000, 10, 100.0,
                                 precision="f64"),
                          result("cwtm", "fast", 50, 10000, 10, 60.0,
                                 precision="f32")])
        cur = write_doc(self.tmp.name, "cur.json",
                        [result("cwtm", "fast", 50, 10000, 10, 100.0,
                                 precision="f64"),
                         result("cwtm", "fast", 50, 10000, 10, 120.0,
                                 precision="f32")])
        code, out = run([base, cur, "--fail-threshold", "25"])
        self.assertEqual(code, 0)
        self.assertIn("2 matched entries", out)
        self.assertIn("cwtm/fast/f32", out)

    def test_non_string_precision_is_malformed(self):
        base = write_doc(self.tmp.name, "base.json",
                         [result("cwtm", "fast", 50, 10000, 10, 100.0,
                                 precision=32),
                          result("cge", "batched", 10, 10, 2, 100.0)])
        cur = write_doc(self.tmp.name, "cur.json",
                        [result("cge", "batched", 10, 10, 2, 100.0)])
        code, out = run([base, cur])
        self.assertEqual(code, 0)
        self.assertIn("skipped 1 malformed result record(s)", out)

    def test_non_positive_baseline_is_skipped(self):
        base = write_doc(self.tmp.name, "base.json",
                         [result("cge", "batched", 10, 10, 2, 0.0)])
        cur = write_doc(self.tmp.name, "cur.json",
                        [result("cge", "batched", 10, 10, 2, 100.0)])
        code, out = run([base, cur, "--fail-threshold", "25"])
        self.assertEqual(code, 0)
        self.assertIn("non-positive baseline", out)


if __name__ == "__main__":
    unittest.main()

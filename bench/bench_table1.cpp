// Reproduces Table 1: distributed linear regression on the exact Appendix-J
// instance (n = 6, d = 2, f = 1, agent 0 Byzantine), eta_t = 1.5/(t+1),
// W = [-1000, 1000]^2, 500 iterations.  Prints x_out and dist(x_H, x_out)
// for the CGE and CWTM gradient-filters under the gradient-reverse and
// random fault behaviours, next to the paper's reported values.
//
// The 2x2 grid is the committed sweep spec specs/sweep_table1.json run
// through the sweep layer (`abft_run --sweep` executes the same file);
// --mode=fast switches every run to the relaxed-parity fast kernels.
#include <iostream>
#include <sstream>

#include "abft/core/bounds.hpp"
#include "abft/core/redundancy.hpp"
#include "abft/util/table.hpp"
#include "fig_common.hpp"

using namespace abft;
using linalg::Vector;

namespace {

std::string format_point(const Vector& x) {
  std::ostringstream os;
  os << '(' << util::format_double(x[0], 5) << ", " << util::format_double(x[1], 5) << ')';
  return os.str();
}

/// The paper's reported distance for one (filter, fault) grid cell.
const char* paper_dist(const std::string& filter, const std::string& fault) {
  if (filter == "cge") return fault == "gradient-reverse" ? "2.39e-02" : "4.72e-05";
  return fault == "gradient-reverse" ? "1.67e-02" : "1.51e-03";
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = fig::parse_bench_options(argc, argv);
  const auto problem = regress::RegressionProblem::paper_instance();
  const std::vector<int> honest{1, 2, 3, 4, 5};
  const Vector x_h = problem.subset_minimizer(honest);
  const regress::RegressionSubsetSolver solver(problem);
  const auto redundancy = core::measure_redundancy(solver, 1);
  const double mu = problem.mu(honest);
  const double gamma = problem.gamma(honest);

  std::cout << "Table 1 — fault-tolerant distributed linear regression (paper instance)\n";
  std::cout << "n = 6, d = 2, f = 1 (agent 0 Byzantine), eta_t = 1.5/(t+1), 500 iterations\n";
  std::cout << "mode: " << agg::to_string(options.mode) << "\n";
  std::cout << "x_H = " << format_point(x_h) << "  (paper: (1.0780, 0.9825))\n";
  std::cout << "(2f, eps)-redundancy eps = " << util::format_double(redundancy.epsilon, 4)
            << "  (paper: 0.0890)\n";
  std::cout << "mu = " << util::format_double(mu, 4)
            << ", gamma = " << util::format_double(gamma, 4) << "  (paper: 2, 0.712)\n";
  const auto t5 = core::cge_bound_theorem5(6, 1, mu, gamma);
  std::cout << "Theorem-5 CGE bound: alpha = " << util::format_double(t5.alpha, 4)
            << ", D*eps = " << util::format_double(t5.factor * redundancy.epsilon, 4) << "\n\n";

  auto spec = fig::load_sweep_spec("sweep_table1.json");
  sweep::set_base_member(&spec, "mode",
                         util::JsonValue::make_string(std::string(agg::to_string(options.mode))));
  const auto outcome = sweep::run_sweep(spec);

  util::Table table({"filter", "fault", "x_out", "dist(x_H, x_out)", "paper dist", "< eps"});
  for (const auto& run : outcome.runs) {
    const std::string filter = run.axis_value("aggregator");
    const std::string fault = run.axis_value("faults");
    const auto& x_out = run.result.traces.front().final_estimate();
    const double dist = linalg::distance(x_out, x_h);
    table.add_row({filter, fault, format_point(x_out), util::format_scientific(dist, 2),
                   paper_dist(filter, fault), dist < redundancy.epsilon ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "\nPaper's claim to reproduce: every distance < eps = 0.0890.  Absolute values\n"
               "differ from the paper's (different Byzantine randomness / tie-breaks); the\n"
               "shape — both filters inside eps, per Section 5 — must hold.\n";
  return 0;
}

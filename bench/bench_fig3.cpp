// Reproduces Figure 3: the magnified view of Figure 2 over the first 80
// iterations, where the transient behaviour of the four algorithms separates
// (plain GD's excursions under attack vs the filters' steady descent).
#include <iostream>

#include "fig_common.hpp"

int main() {
  constexpr int kIterations = 80;
  constexpr int kStride = 4;

  std::cout << "Figure 3 — first " << kIterations << " iterations (magnified view of Fig. 2)\n\n";

  const abft::attack::GradientReverseFault reverse;
  fig::print_figure(fig::run_figure(reverse, kIterations), kStride, std::cout);

  const abft::attack::RandomGaussianFault random(200.0);
  fig::print_figure(fig::run_figure(random, kIterations), kStride, std::cout);
  return 0;
}

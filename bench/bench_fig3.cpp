// Reproduces Figure 3: the magnified view of Figure 2 over the first 80
// iterations, where the transient behaviour of the four algorithms separates
// (plain GD's excursions under attack vs the filters' steady descent).
//
// Same committed grid as Figure 2 (specs/sweep_fig2.json) with the horizon
// patched down to 80 — one spec, two figures.  --mode=fast runs every curve
// on the relaxed-parity fast kernels.
#include <iostream>

#include "fig_common.hpp"

int main(int argc, char** argv) {
  constexpr int kIterations = 80;
  constexpr int kStride = 4;
  const auto options = fig::parse_bench_options(argc, argv);

  std::cout << "Figure 3 — first " << kIterations << " iterations (magnified view of Fig. 2)\n"
            << "mode: " << abft::agg::to_string(options.mode) << "\n\n";

  for (const auto& figure : fig::run_figures(kIterations, options.mode)) {
    fig::print_figure(figure, kStride, std::cout);
  }
  return 0;
}

// Coreset pre-reduction vs the flat and hierarchical baselines at scale:
// agg::CoresetReducer against the exact flat rule and the sharded tree
// (agg/hierarchy.hpp) on n = 10^4 .. 10^6 received gradients.  The coreset
// targets the Gram-based family — flat Krum is O(n^2 d), the reduced path is
// O(n k d) construction plus O(m^2 d) on the m = k + f weighted rows — so
// Krum is the headline rule; cwtm rides along to document honestly that the
// mean-like O(n d log n) rules do NOT benefit (construction dominates).
//
// Bench policy: d = 8, f = n/100, coreset size k = ceil(sqrt(n)).  The
// outlier budget carries z = f rows verbatim, so m = k + f and the fault
// fraction directly bounds the reduced problem: 1% keeps the weighted Gram
// kernel feasible at n = 10^6 (m = 11000), where bench_hier's n/20 would
// not.  The flat Krum baseline is the same self-checked O(n)-memory
// streaming kernel as bench_hier's, and past 10^5 it is not measured at all.
//
// Emits BENCH_coreset.json:
//
//   {"results": [{"rule", "path": "flat"|"coreset"|"coreset-construct"|
//                 "coreset-kernel"|"sample"|"sample-construct"|"hier",
//                 "precision": "f64"|"f32", "n", "d", "f", "ns_per_op",
//                 "iters"}, ...],
//    "comparisons": {"<rule>/<n>x<d>": {"flat_ns", "coreset_ns",
//                 "construct_ns", "kernel_ns", "coreset_f32_ns",
//                 "construct_f32_ns", "sample_ns",
//                 "sample_construct_ns", "hier_ns", "speedup_vs_flat",
//                 "speedup_vs_hier", "f32_construct_speedup", "drift_inf",
//                 "centers", "coreset_rows"}}}
//
// The "coreset"/"coreset-construct" rows are additionally measured at
// precision "f32" (the fast-mode float32 lane): the k-center construction
// is the memory-bandwidth-bound pass the f32 lane targets, so its
// f32-vs-f64 ratio is the headline number (f32_construct_speedup).
//
// The construct/kernel split makes the cost attributable: "*-construct"
// times CoresetReducer::reduce alone (the k-center / sampling pass), and
// "coreset-kernel" is total minus construction — the weighted-native rule on
// the m reduced rows (derived, iters 0).  A flat baseline that is infeasible
// at the shape (krum past 10^5) writes null, never 0, for flat_ns and
// speedup_vs_flat, so the nan-aware bench_diff.py gate treats it as absent.
//
// "results" matches the scripts/bench_diff.py schema, so the JSON slots into
// the warn-only regression gate next to BENCH_agg.json.  drift_inf is the
// price of reduction: ||coreset - flat||_inf on the same honest batch (for
// Krum both paths return a received row, so drift is the distance between
// two near-central rows, not a numerical error).
//
// Flags:
//   --quick       n = {10^3, 10^4} only (CI smoke)
//   --out=FILE    JSON destination (default BENCH_coreset.json)
//   --threads=N   dispatch hier shards and the blocked coreset construction
//                 over a persistent N-thread pool (default 1 keeps the JSON
//                 shape diff-stable; construction is bit-identical at every
//                 width by design)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <numeric>
#include <string>
#include <vector>

#include "abft/agg/batch.hpp"
#include "abft/agg/coreset.hpp"
#include "abft/agg/hierarchy.hpp"
#include "abft/agg/registry.hpp"
#include "abft/agg/threads.hpp"
#include "abft/util/json.hpp"
#include "abft/util/rng.hpp"

namespace {

using namespace abft;
using agg::GradientBatch;
using linalg::Vector;

void fill_batch(GradientBatch& batch, int n, int d, std::uint64_t seed) {
  util::Rng rng(seed);
  batch.reshape(n, d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) batch.row(i)[j] = rng.normal();
  }
}

/// Exact flat Krum in O(n) memory (same kernel as bench_hier's baseline):
/// score_i = sum of the n - f - 2 smallest squared distances to the other
/// rows, output = the arg-min row, lowest index on ties.
Vector streaming_krum(const GradientBatch& batch, int f) {
  const int n = batch.rows();
  const int d = batch.cols();
  const int neighbors = n - f - 2;
  std::vector<double> distances(static_cast<std::size_t>(n) - 1);
  double best_score = std::numeric_limits<double>::infinity();
  int best = 0;
  for (int i = 0; i < n; ++i) {
    const auto row_i = batch.row(i);
    std::size_t k = 0;
    for (int j = 0; j < n; ++j) {
      if (j == i) continue;
      const auto row_j = batch.row(j);
      double dist = 0.0;
      for (int c = 0; c < d; ++c) {
        const double delta = row_i[c] - row_j[c];
        dist += delta * delta;
      }
      distances[k++] = dist;
    }
    std::nth_element(distances.begin(), distances.begin() + (neighbors - 1), distances.end());
    const double score =
        std::accumulate(distances.begin(), distances.begin() + neighbors, 0.0);
    if (score < best_score) {
      best_score = score;
      best = i;
    }
  }
  return batch.unpack_row(best);
}

struct BenchResult {
  std::string rule;
  std::string path;       // "flat" | "coreset" | "hier"
  std::string precision;  // "f64" | "f32" (f32 only on the coreset rows)
  int n = 0;
  int d = 0;
  int f = 0;
  double ns_per_op = 0.0;
  long iters = 0;
};

struct Comparison {
  // NaN = flat not measured at this shape (serialized as null).
  double flat_ns = std::numeric_limits<double>::quiet_NaN();
  double coreset_ns = 0.0;
  double construct_ns = 0.0;  // k-center construction alone
  double kernel_ns = 0.0;     // total minus construction (derived)
  double coreset_f32_ns = 0.0;
  double construct_f32_ns = 0.0;  // f32-lane k-center construction
  double sample_ns = 0.0;
  double sample_construct_ns = 0.0;
  double hier_ns = 0.0;
  double drift_inf = 0.0;
  int centers = 0;
  int coreset_rows = 0;
};

/// Adaptive-iteration timer with min_iters = 1: a multi-second flat
/// aggregation at n = 10^5 must run exactly once, not three times.
template <typename Fn>
double time_ns_per_op(Fn&& fn, long& iters_out, double min_seconds) {
  using clock = std::chrono::steady_clock;
  long iters = 0;
  long batch = 1;
  const auto start = clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(clock::now() - start).count();
  };
  double seconds = 0.0;
  do {
    const double before = seconds;
    for (long b = 0; b < batch; ++b) fn();
    iters += batch;
    seconds = elapsed();
    if (seconds - before < min_seconds / 8.0) batch *= 2;
  } while (seconds < min_seconds);
  iters_out = iters;
  return seconds * 1e9 / static_cast<double>(iters);
}

/// bench_hier's committed shard policy, reused for the hier baseline.
int shard_count(int n) {
  const double s = std::cbrt(static_cast<double>(n) * n / 2.0);
  return std::min(4096, std::max(4, static_cast<int>(s)));
}

int run(bool quick, const std::string& out_path, int threads) {
  const std::vector<int> sizes =
      quick ? std::vector<int>{1000, 10000} : std::vector<int>{10000, 100000, 1000000};
  const int d = 8;
  const double min_seconds = quick ? 0.02 : 0.05;
  const int flat_krum_limit = 100000;  // O(n^2 d): seconds at 10^5, hopeless past it

  // Self-check 1: the streaming Krum baseline against the library kernel.
  {
    GradientBatch batch;
    fill_batch(batch, 500, d, 7);
    const auto library = agg::make_aggregator("krum");
    agg::AggregatorWorkspace ws;
    Vector out;
    library->aggregate_into(out, batch, 25, ws);
    if (out != streaming_krum(batch, 25)) {
      std::cerr << "error: streaming krum baseline diverged from the library kernel\n";
      return 1;
    }
    // Self-check 2: a coreset that cannot shrink delegates bit-identically.
    const agg::CoresetReducer degenerate("krum", {500});
    agg::AggregatorWorkspace dws;
    Vector dout;
    degenerate.aggregate_into(dout, batch, 25, dws);
    if (dout != out) {
      std::cerr << "error: coreset_size >= n is not bit-identical to exact\n";
      return 1;
    }
  }

  agg::ThreadPool pool(std::max(1, threads));
  std::vector<BenchResult> results;
  std::vector<std::pair<std::string, Comparison>> comparisons;

  for (const int n : sizes) {
    const int f = n / 100;
    const int k = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n))));
    const int shards = shard_count(n);
    const int f_leaf = std::max(1, (2 * f + shards - 1) / shards);
    GradientBatch batch;
    fill_batch(batch, n, d, 42);

    for (const std::string rule : {"cwtm", "krum"}) {
      const agg::CoresetReducer reducer(rule, {k});
      if (!reducer.would_reduce(n, f)) {
        std::cerr << "error: bench shape does not reduce at " << rule << " n=" << n << "\n";
        return 1;
      }
      const agg::HierarchicalAggregator hier({shards, rule, rule, f_leaf, 1234});
      if (hier.bounds(n, f).tolerated_f < f) {
        std::cerr << "error: shard policy does not cover f at " << rule << " n=" << n << "\n";
        return 1;
      }
      const std::string key = rule + "/" + std::to_string(n) + "x" + std::to_string(d);
      Comparison cmp;
      cmp.centers = k;
      cmp.coreset_rows = k + f;

      agg::AggregatorWorkspace cs_ws;
      cs_ws.parallel_threads = std::max(1, threads);
      cs_ws.pool = &pool;
      Vector cs_out;
      reducer.aggregate_into(cs_out, batch, f, cs_ws);  // untimed: warm allocation
      BenchResult cs_result{rule, "coreset", "f64", n, d, f, 0.0, 0};
      cs_result.ns_per_op = time_ns_per_op(
          [&] {
            reducer.aggregate_into(cs_out, batch, f, cs_ws);
            volatile double sink = cs_out[0];
            (void)sink;
          },
          cs_result.iters, min_seconds);
      results.push_back(cs_result);
      cmp.coreset_ns = cs_result.ns_per_op;

      // Construction alone (the k-center pass into the warm workspace); the
      // kernel share is the remainder of the total.
      BenchResult construct_result{rule, "coreset-construct", "f64", n, d, f, 0.0, 0};
      construct_result.ns_per_op = time_ns_per_op(
          [&] {
            const int m = reducer.reduce(batch, f, cs_ws);
            volatile int sink = m;
            (void)sink;
          },
          construct_result.iters, min_seconds);
      results.push_back(construct_result);
      cmp.construct_ns = construct_result.ns_per_op;
      cmp.kernel_ns = std::max(0.0, cs_result.ns_per_op - construct_result.ns_per_op);
      BenchResult kernel_result{rule, "coreset-kernel", "f64", n, d, f, cmp.kernel_ns, 0};
      results.push_back(kernel_result);

      // The same coreset path through the fast-mode f32 lane: demoted
      // col-major distance pass, f64 selection state.  Construction is the
      // bandwidth-bound share, so its ratio is the headline f32 number.
      agg::AggregatorWorkspace f32_ws;
      f32_ws.mode = agg::AggMode::fast;
      f32_ws.precision = agg::Precision::f32;
      f32_ws.parallel_threads = std::max(1, threads);
      f32_ws.pool = &pool;
      Vector f32_out;
      reducer.aggregate_into(f32_out, batch, f, f32_ws);  // untimed: warm allocation
      BenchResult f32_result{rule, "coreset", "f32", n, d, f, 0.0, 0};
      f32_result.ns_per_op = time_ns_per_op(
          [&] {
            reducer.aggregate_into(f32_out, batch, f, f32_ws);
            volatile double sink = f32_out[0];
            (void)sink;
          },
          f32_result.iters, min_seconds);
      results.push_back(f32_result);
      cmp.coreset_f32_ns = f32_result.ns_per_op;
      BenchResult f32_construct_result{rule, "coreset-construct", "f32", n, d, f, 0.0, 0};
      f32_construct_result.ns_per_op = time_ns_per_op(
          [&] {
            const int m = reducer.reduce(batch, f, f32_ws);
            volatile int sink = m;
            (void)sink;
          },
          f32_construct_result.iters, min_seconds);
      results.push_back(f32_construct_result);
      cmp.construct_f32_ns = f32_construct_result.ns_per_op;

      // The sampling reducer at the same budget k.
      const agg::CoresetReducer sampler(
          rule, {k, agg::CoresetConfig::Kind::sample, 0});
      agg::AggregatorWorkspace sm_ws;
      Vector sm_out;
      sampler.aggregate_into(sm_out, batch, f, sm_ws);  // untimed: warm allocation
      BenchResult sm_result{rule, "sample", "f64", n, d, f, 0.0, 0};
      sm_result.ns_per_op = time_ns_per_op(
          [&] {
            sampler.aggregate_into(sm_out, batch, f, sm_ws);
            volatile double sink = sm_out[0];
            (void)sink;
          },
          sm_result.iters, min_seconds);
      results.push_back(sm_result);
      cmp.sample_ns = sm_result.ns_per_op;
      BenchResult sm_construct_result{rule, "sample-construct", "f64", n, d, f, 0.0, 0};
      sm_construct_result.ns_per_op = time_ns_per_op(
          [&] {
            const int m = sampler.reduce(batch, f, sm_ws);
            volatile int sink = m;
            (void)sink;
          },
          sm_construct_result.iters, min_seconds);
      results.push_back(sm_construct_result);
      cmp.sample_construct_ns = sm_construct_result.ns_per_op;

      std::cout << key << "  coreset(k=" << k << ", m=" << cmp.coreset_rows << ") "
                << static_cast<long>(cs_result.ns_per_op) << " ns/op (construct "
                << static_cast<long>(cmp.construct_ns) << ")  f32 "
                << static_cast<long>(cmp.coreset_f32_ns) << " ns/op (construct "
                << static_cast<long>(cmp.construct_f32_ns) << ", "
                << cmp.construct_ns / cmp.construct_f32_ns << "x)  sample "
                << static_cast<long>(sm_result.ns_per_op) << " ns/op";

      agg::AggregatorWorkspace hier_ws;
      hier_ws.parallel_threads = std::max(1, threads);
      hier_ws.pool = &pool;
      Vector hier_out;
      hier.aggregate_into(hier_out, batch, f, hier_ws);
      BenchResult hier_result{rule, "hier", "f64", n, d, f, 0.0, 0};
      hier_result.ns_per_op = time_ns_per_op(
          [&] {
            hier.aggregate_into(hier_out, batch, f, hier_ws);
            volatile double sink = hier_out[0];
            (void)sink;
          },
          hier_result.iters, min_seconds);
      results.push_back(hier_result);
      cmp.hier_ns = hier_result.ns_per_op;
      std::cout << "  hier(S=" << shards << ") " << static_cast<long>(hier_result.ns_per_op)
                << " ns/op";

      Vector flat_out;
      bool have_flat = true;
      BenchResult flat_result{rule, "flat", "f64", n, d, f, 0.0, 0};
      if (rule == "krum" && n > flat_krum_limit) {
        have_flat = false;
      } else if (rule == "krum") {
        flat_out = streaming_krum(batch, f);
        flat_result.ns_per_op = time_ns_per_op(
            [&] {
              flat_out = streaming_krum(batch, f);
              volatile double sink = flat_out[0];
              (void)sink;
            },
            flat_result.iters, min_seconds);
      } else {
        const auto flat = agg::make_aggregator(rule);
        agg::AggregatorWorkspace flat_ws;
        flat->aggregate_into(flat_out, batch, f, flat_ws);
        flat_result.ns_per_op = time_ns_per_op(
            [&] {
              flat->aggregate_into(flat_out, batch, f, flat_ws);
              volatile double sink = flat_out[0];
              (void)sink;
            },
            flat_result.iters, min_seconds);
      }
      if (have_flat) {
        results.push_back(flat_result);
        cmp.flat_ns = flat_result.ns_per_op;
        for (int c = 0; c < d; ++c) {
          cmp.drift_inf = std::max(cmp.drift_inf, std::abs(cs_out[c] - flat_out[c]));
        }
        std::cout << "  flat " << static_cast<long>(flat_result.ns_per_op)
                  << " ns/op  speedup " << flat_result.ns_per_op / cs_result.ns_per_op
                  << "x  drift " << cmp.drift_inf;
      } else {
        std::cout << "  flat skipped (O(n^2 d) at n=" << n << ")";
      }
      std::cout << "\n";
      comparisons.emplace_back(key, cmp);
    }
  }

  std::ofstream json(out_path);
  json << "{\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    json << "    {\"rule\": \"" << r.rule << "\", \"path\": \"" << r.path
         << "\", \"precision\": \"" << r.precision << "\", \"n\": " << r.n
         << ", \"d\": " << r.d << ", \"f\": " << r.f
         << ", \"ns_per_op\": " << r.ns_per_op << ", \"iters\": " << r.iters << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"comparisons\": {\n";
  for (std::size_t i = 0; i < comparisons.size(); ++i) {
    const auto& [key, cmp] = comparisons[i];
    json << "    \"" << key << "\": {\"flat_ns\": ";
    util::write_json_number(json, cmp.flat_ns);  // NaN (flat infeasible) -> null
    json << ", \"coreset_ns\": " << cmp.coreset_ns << ", \"construct_ns\": "
         << cmp.construct_ns << ", \"kernel_ns\": " << cmp.kernel_ns
         << ", \"coreset_f32_ns\": " << cmp.coreset_f32_ns
         << ", \"construct_f32_ns\": " << cmp.construct_f32_ns
         << ", \"sample_ns\": " << cmp.sample_ns << ", \"sample_construct_ns\": "
         << cmp.sample_construct_ns << ", \"hier_ns\": " << cmp.hier_ns
         << ", \"speedup_vs_flat\": ";
    util::write_json_number(json, cmp.flat_ns / cmp.coreset_ns);
    json << ", \"speedup_vs_hier\": " << cmp.hier_ns / cmp.coreset_ns
         << ", \"f32_construct_speedup\": " << cmp.construct_ns / cmp.construct_f32_ns
         << ", \"drift_inf\": " << cmp.drift_inf << ", \"centers\": " << cmp.centers
         << ", \"coreset_rows\": " << cmp.coreset_rows << "}"
         << (i + 1 < comparisons.size() ? "," : "") << "\n";
  }
  json << "  }\n}\n";
  json.flush();
  if (!json) {
    std::cerr << "error: could not write " << out_path << "\n";
    return 1;
  }
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  int threads = 1;
  std::string out_path = "BENCH_coreset.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
    if (std::strncmp(argv[i], "--threads=", 10) == 0) threads = std::atoi(argv[i] + 10);
  }
  return run(quick, out_path, threads);
}

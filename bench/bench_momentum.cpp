// Extension experiment X8 (DESIGN.md): worker-momentum ablation.  The
// paper's ref [28] (Karimireddy et al., "Learning from history") argues that
// sending momentum-averaged gradients shrinks the honest variance a filter
// must tolerate, defeating time-coupled attacks.  We charts final accuracy
// with and without momentum (beta = 0.9) for CGE/CWTM/CClip under
// gradient-reverse and label-flip faults.
#include <iostream>

#include "abft/agg/registry.hpp"
#include "abft/learn/dataset.hpp"
#include "abft/learn/dsgd.hpp"
#include "abft/learn/softmax.hpp"
#include "abft/util/table.hpp"

using namespace abft;
using linalg::Vector;

int main() {
  auto options = learn::synth_fashion_options();  // the harder dataset
  options.examples_per_class = 100;
  util::Rng data_rng(17);
  const auto full = learn::make_synthetic(options, data_rng);
  util::Rng split_rng(18);
  const auto split = learn::split_train_test(full, 0.2, split_rng);
  util::Rng shard_rng(19);
  const auto shards = learn::shard(split.train, 10, shard_rng);
  const learn::SoftmaxRegression model(split.train.feature_dim(), split.train.num_classes);

  learn::DsgdConfig base;
  base.iterations = 600;
  base.batch_size = 64;
  base.step_size = 0.02;
  base.f = 3;
  base.eval_interval = 600;
  base.seed = 21;

  std::cout << "X8 — worker-momentum ablation (SynthFashion, n = 10, f = 3)\n\n";
  for (const auto kind : {learn::AgentFault::kGradientReverse, learn::AgentFault::kLabelFlip}) {
    std::vector<learn::AgentFault> faults(10, learn::AgentFault::kHonest);
    for (int i = 0; i < 3; ++i) faults[static_cast<std::size_t>(i)] = kind;
    std::cout << "fault: "
              << (kind == learn::AgentFault::kGradientReverse ? "gradient-reverse"
                                                              : "label-flip")
              << '\n';
    util::Table table({"filter", "accuracy (beta=0)", "accuracy (beta=0.9)"});
    for (const char* name : {"cge", "cwtm", "cclip", "average"}) {
      const auto aggregator = agg::make_aggregator(name);
      std::vector<std::string> row{name};
      for (const double beta : {0.0, 0.9}) {
        learn::DsgdConfig config = base;
        config.momentum = beta;
        const auto series = learn::run_dsgd(model, Vector(model.param_dim()), shards, faults,
                                            split.test, *aggregator, config);
        row.push_back(util::format_double(series.test_accuracy.back() * 100.0, 4));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Expected shape: momentum never hurts the robust filters and typically\n"
               "recovers a few accuracy points under gradient-reverse.\n";
  return 0;
}

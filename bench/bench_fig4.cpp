// Reproduces Figure 4 (Appendix K): D-SGD cross-entropy loss and model
// accuracy over 1000 iterations with n = 10 agents, f = 3 faulty, batch 128,
// eta = 0.01, on the MNIST substitute "SynthDigits" (well-separated
// synthetic classes; see DESIGN.md).  Curves: fault-free reference, CWTM and
// CGE each under label-flip (LF) and gradient-reverse (GR), plus the plain
// averaging failure case.
//
// Paper shape to reproduce: all filtered runs converge to within a close
// range of the fault-free loss; plain averaging under GR lags far behind.
#include <iostream>

#include "learn_common.hpp"

int main(int argc, char** argv) {
  learnfig::Options options;
  options.dataset = abft::learn::synth_digits_options();
  // The paper plots 1000 iterations of LeNet/MNIST; our substitute needs a
  // longer horizon for the averaging-based curves to plateau (CGE sums
  // n - f gradients, so it moves ~7x faster per round at equal eta).
  options.iterations = 2500;
  options.eval_interval = 125;
  options.seed = 42;
  learnfig::parse_mode_flag(argc, argv, &options);

  std::cout << "Figure 4 — D-SGD on SynthDigits (MNIST substitute), n = 10, f = 3\n"
            << "mode: " << abft::agg::to_string(options.mode) << "\n\n";
  const auto curves = learnfig::run_learning_figure(options);
  learnfig::print_learning_figure(curves, std::cout);
  return 0;
}

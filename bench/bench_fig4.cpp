// Reproduces Figure 4 (Appendix K): D-SGD cross-entropy loss and model
// accuracy over 2500 iterations with n = 10 agents, f = 3 faulty, batch 128,
// eta = 0.01, on the MNIST substitute "SynthDigits" (well-separated
// synthetic classes; see DESIGN.md).  Curves: fault-free reference, CWTM and
// CGE each under label-flip (LF) and gradient-reverse (GR), plus the plain
// averaging failure case.  The grid is the committed sweep spec
// specs/sweep_fig4.json (MLP model knob, dsgd roster subset for the
// fault-free curve) run through the sweep layer.
//
// Paper shape to reproduce: all filtered runs converge to within a close
// range of the fault-free loss; plain averaging under GR lags far behind.
#include <iostream>

#include "learn_common.hpp"

int main(int argc, char** argv) {
  const auto mode = learnfig::parse_mode_flag(argc, argv);

  std::cout << "Figure 4 — D-SGD on SynthDigits (MNIST substitute), n = 10, f = 3\n"
            << "mode: " << abft::agg::to_string(mode) << "\n\n";
  const auto curves = learnfig::run_learning_figure("sweep_fig4.json", mode);
  learnfig::print_learning_figure(curves, std::cout);
  return 0;
}

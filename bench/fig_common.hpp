// Shared harness for the Figure-2/3 family: the paper's distributed
// linear-regression scenario (Appendix J; n = 6, f = 1, agent 0 faulty)
// under each attack for each of the four plotted algorithms — fault-free
// DGD (faulty agent omitted, plain averaging), DGD+CWTM, DGD+CGE, and plain
// DGD with the faulty agent included.
//
// The whole grid is ONE committed sweep spec (specs/sweep_fig2.json: a
// faults axis x a variants axis over the Appendix-J base), executed through
// the sweep runner — the same grid `abft_run --sweep specs/sweep_fig2.json`
// emits as CSV.  The benches only patch the committed base (--mode=fast,
// fig3's truncated horizon) and render the per-iteration series.
#pragma once

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "abft/agg/registry.hpp"
#include "abft/regress/problem.hpp"
#include "abft/sweep/sweep.hpp"
#include "abft/util/check.hpp"
#include "abft/util/csv.hpp"
#include "abft/util/table.hpp"

namespace fig {

using namespace abft;
using linalg::Vector;

struct Series {
  std::string label;
  std::vector<double> loss;
  std::vector<double> distance;
};

struct FigureData {
  std::string attack;
  std::vector<Series> series;
  Vector x_h;
};

/// Command-line switches shared by the fig/table benches.
struct BenchOptions {
  agg::AggMode mode = agg::AggMode::exact;
  bool csv = false;
  bool csv_random = false;
};

/// `allow_csv` = whether the calling binary implements the CSV exports;
/// binaries that do not must reject the flags rather than silently print
/// their table format.
inline BenchOptions parse_bench_options(int argc, char** argv, bool allow_csv = false) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--mode=fast") {
      options.mode = agg::AggMode::fast;
    } else if (arg == "--mode=exact") {
      options.mode = agg::AggMode::exact;
    } else if (allow_csv && arg == "--csv") {
      options.csv = true;
    } else if (allow_csv && arg == "--csv-random") {
      options.csv = true;
      options.csv_random = true;
    } else {
      std::cerr << "unknown option " << arg << " (known: --mode=exact|fast"
                << (allow_csv ? ", --csv, --csv-random" : "") << ")\n";
      std::exit(2);
    }
  }
  return options;
}

/// Loads a committed sweep grid from specs/.
inline sweep::SweepSpec load_sweep_spec(const std::string& filename) {
  return sweep::load_sweep_file(std::string(ABFT_SPEC_DIR "/") + filename);
}

/// Runs the committed Figure-2 grid at the given horizon/mode and renders
/// the per-iteration series, one FigureData per attack in grid order.  A
/// non-empty `attack_filter` restricts the faults axis to that preset (the
/// --csv paths render one panel and need not run the other's sub-grid).
inline std::vector<FigureData> run_figures(int iterations, agg::AggMode mode,
                                           std::string_view attack_filter = "") {
  auto spec = load_sweep_spec("sweep_fig2.json");
  sweep::set_base_member(&spec, "iterations", util::JsonValue::make_number(iterations));
  sweep::set_base_member(&spec, "mode",
                         util::JsonValue::make_string(std::string(agg::to_string(mode))));
  if (!attack_filter.empty()) {
    std::erase_if(spec.faults,
                  [&](const sweep::FaultPreset& preset) { return preset.label != attack_filter; });
    // An empty axis would expand as "not swept" and silently render the
    // un-attacked base as the requested panel — the filter strings here and
    // the committed preset labels must stay in lockstep.
    ABFT_REQUIRE(!spec.faults.empty(),
                 "sweep_fig2.json has no fault preset with the requested label");
  }
  const auto outcome = sweep::run_sweep(spec);

  const auto problem = regress::RegressionProblem::paper_instance();
  const std::vector<int> honest{1, 2, 3, 4, 5};
  const auto honest_costs = problem.costs(honest);
  const opt::AggregateCost honest_aggregate(honest_costs);
  const Vector x_h = problem.subset_minimizer(honest);

  std::vector<FigureData> figures;
  for (const auto& run : outcome.runs) {
    const std::string attack = run.axis_value("faults");
    if (figures.empty() || figures.back().attack != attack) {
      figures.push_back(FigureData{attack, {}, x_h});
    }
    const auto& trace = run.result.traces.front();
    figures.back().series.push_back(Series{run.axis_value("variants"),
                                           trace.loss_series(honest_aggregate),
                                           trace.distance_series(x_h)});
  }
  // The attack-contiguity grouping above assumes faults x variants are the
  // only swept axes; an extra axis in the committed spec (whose cells this
  // renderer would not show) must fail loudly, not duplicate panels.
  ABFT_REQUIRE(figures.size() == spec.faults.size(),
               "sweep_fig2.json must sweep exactly the faults and variants axes");
  return figures;
}

/// Emits the full-resolution series as CSV (columns: step, then one
/// loss/distance pair per algorithm) for re-plotting.
inline void print_figure_csv(const FigureData& data, std::ostream& os) {
  std::vector<std::string> header{"step"};
  for (const auto& s : data.series) {
    header.push_back(s.label + ":loss");
    header.push_back(s.label + ":distance");
  }
  util::CsvWriter csv(os, std::move(header));
  const std::size_t length = data.series.front().loss.size();
  for (std::size_t t = 0; t < length; ++t) {
    std::vector<double> row{static_cast<double>(t)};
    for (const auto& s : data.series) {
      row.push_back(s.loss[t]);
      row.push_back(s.distance[t]);
    }
    csv.add_numeric_row(row);
  }
}

/// Emits the series, downsampled to every `stride` iterations, as aligned
/// tables (one for loss, one for distance) plus the final-error annotations
/// the paper prints on the plots.
inline void print_figure(const FigureData& data, int stride, std::ostream& os) {
  os << "=== attack: " << data.attack << " ===\n";
  for (const bool distance_table : {false, true}) {
    std::vector<std::string> header{"step"};
    for (const auto& s : data.series) header.push_back(s.label);
    util::Table table(std::move(header));
    const std::size_t length = data.series.front().loss.size();
    for (std::size_t t = 0; t < length; t += static_cast<std::size_t>(stride)) {
      std::vector<std::string> row{std::to_string(t)};
      for (const auto& s : data.series) {
        row.push_back(util::format_scientific(distance_table ? s.distance[t] : s.loss[t], 3));
      }
      table.add_row(std::move(row));
    }
    os << (distance_table ? "-- distance ||x_t - x_H||\n" : "-- loss sum_{i in H} Q_i(x_t)\n");
    table.print(os);
  }
  os << "final approximation errors ||x_T - x_H||:\n";
  for (const auto& s : data.series) {
    os << "  " << s.label << ": " << util::format_scientific(s.distance.back(), 2) << '\n';
  }
  os << '\n';
}

}  // namespace fig

// Shared harness for the Figure-2/3 family: runs the paper's distributed
// linear-regression scenario (Appendix J; n = 6, f = 1, agent 1 faulty)
// under a chosen attack for each of the four algorithms plotted in the
// paper — fault-free DGD (faulty agent omitted, plain averaging), DGD+CWTM,
// DGD+CGE, and plain DGD with the faulty agent included — and emits the
// loss / distance series.
//
// Every run goes through the declarative scenario layer (scenario.hpp): one
// ScenarioSpec per curve instead of hand-built rosters/configs, the same
// specs the abft_run CLI executes from specs/*.json.  --mode=fast switches
// every curve to the relaxed-parity fast kernels.
#pragma once

#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "abft/agg/registry.hpp"
#include "abft/regress/problem.hpp"
#include "abft/scenario/scenario.hpp"
#include "abft/util/csv.hpp"
#include "abft/util/table.hpp"

namespace fig {

using namespace abft;
using linalg::Vector;

struct Series {
  std::string label;
  std::vector<double> loss;
  std::vector<double> distance;
};

struct FigureData {
  std::string attack;
  std::vector<Series> series;
  Vector x_h;
};

/// Command-line switches shared by the fig/table benches.
struct BenchOptions {
  agg::AggMode mode = agg::AggMode::exact;
  bool csv = false;
  bool csv_random = false;
};

/// `allow_csv` = whether the calling binary implements the CSV exports;
/// binaries that do not must reject the flags rather than silently print
/// their table format.
inline BenchOptions parse_bench_options(int argc, char** argv, bool allow_csv = false) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--mode=fast") {
      options.mode = agg::AggMode::fast;
    } else if (arg == "--mode=exact") {
      options.mode = agg::AggMode::exact;
    } else if (allow_csv && arg == "--csv") {
      options.csv = true;
    } else if (allow_csv && arg == "--csv-random") {
      options.csv = true;
      options.csv_random = true;
    } else {
      std::cerr << "unknown option " << arg << " (known: --mode=exact|fast"
                << (allow_csv ? ", --csv, --csv-random" : "") << ")\n";
      std::exit(2);
    }
  }
  return options;
}

/// The ScenarioSpec behind one Figure-2/3 curve: the Appendix-J regression
/// instance with the given rule, under `fault_kind` on agent 0 when the
/// faulty agent is included, or restricted to the honest five when not.
inline scenario::ScenarioSpec figure_spec(std::string_view fault_kind, double fault_param,
                                          std::string_view aggregator_name,
                                          bool include_faulty_agent, int iterations,
                                          agg::AggMode mode) {
  scenario::ScenarioSpec spec;
  spec.driver = "dgd";
  spec.problem = "paper_regression";
  spec.aggregator = std::string(aggregator_name);
  spec.mode = mode;
  spec.iterations = iterations;
  spec.f = include_faulty_agent ? 1 : 0;
  spec.seed = 2021;
  spec.x0 = {-0.0085, -0.5643};
  spec.schedule = {"harmonic", 1.5, 1.0};
  if (include_faulty_agent) {
    spec.faults.push_back(
        scenario::FaultSpec{0, std::string(fault_kind), fault_param});
  } else {
    spec.agents = {1, 2, 3, 4, 5};
  }
  return spec;
}

inline sim::Trace run_one(std::string_view fault_kind, double fault_param,
                          std::string_view aggregator_name, bool include_faulty_agent,
                          int iterations, agg::AggMode mode) {
  return scenario::run_scenario(figure_spec(fault_kind, fault_param, aggregator_name,
                                            include_faulty_agent, iterations, mode))
      .traces.front();
}

/// Runs the four algorithms of Figures 2-3 under one attack.
inline FigureData run_figure(std::string_view fault_kind, double fault_param, int iterations,
                             agg::AggMode mode = agg::AggMode::exact) {
  const auto problem = regress::RegressionProblem::paper_instance();
  const std::vector<int> honest{1, 2, 3, 4, 5};
  const auto honest_costs = problem.costs(honest);
  const opt::AggregateCost honest_aggregate(honest_costs);

  FigureData data;
  data.attack = fault_kind;
  data.x_h = problem.subset_minimizer(honest);

  const struct {
    const char* label;
    const char* aggregator;
    bool include_faulty;
  } algorithms[] = {
      {"fault-free", "average", false},
      {"CWTM", "cwtm", true},
      {"CGE", "cge", true},
      {"plain GD", "average", true},
  };
  for (const auto& algorithm : algorithms) {
    const auto trace = run_one(fault_kind, fault_param, algorithm.aggregator,
                               algorithm.include_faulty, iterations, mode);
    data.series.push_back(Series{algorithm.label, trace.loss_series(honest_aggregate),
                                 trace.distance_series(data.x_h)});
  }
  return data;
}

/// Emits the full-resolution series as CSV (columns: step, then one
/// loss/distance pair per algorithm) for re-plotting.
inline void print_figure_csv(const FigureData& data, std::ostream& os) {
  std::vector<std::string> header{"step"};
  for (const auto& s : data.series) {
    header.push_back(s.label + ":loss");
    header.push_back(s.label + ":distance");
  }
  util::CsvWriter csv(os, std::move(header));
  const std::size_t length = data.series.front().loss.size();
  for (std::size_t t = 0; t < length; ++t) {
    std::vector<double> row{static_cast<double>(t)};
    for (const auto& s : data.series) {
      row.push_back(s.loss[t]);
      row.push_back(s.distance[t]);
    }
    csv.add_numeric_row(row);
  }
}

/// Emits the series, downsampled to every `stride` iterations, as aligned
/// tables (one for loss, one for distance) plus the final-error annotations
/// the paper prints on the plots.
inline void print_figure(const FigureData& data, int stride, std::ostream& os) {
  os << "=== attack: " << data.attack << " ===\n";
  for (const bool distance_table : {false, true}) {
    std::vector<std::string> header{"step"};
    for (const auto& s : data.series) header.push_back(s.label);
    util::Table table(std::move(header));
    const std::size_t length = data.series.front().loss.size();
    for (std::size_t t = 0; t < length; t += static_cast<std::size_t>(stride)) {
      std::vector<std::string> row{std::to_string(t)};
      for (const auto& s : data.series) {
        row.push_back(util::format_scientific(distance_table ? s.distance[t] : s.loss[t], 3));
      }
      table.add_row(std::move(row));
    }
    os << (distance_table ? "-- distance ||x_t - x_H||\n" : "-- loss sum_{i in H} Q_i(x_t)\n");
    table.print(os);
  }
  os << "final approximation errors ||x_T - x_H||:\n";
  for (const auto& s : data.series) {
    os << "  " << s.label << ": " << util::format_scientific(s.distance.back(), 2) << '\n';
  }
  os << '\n';
}

}  // namespace fig

// Shared harness for the Figure-2/3 family: runs the paper's distributed
// linear-regression scenario (Appendix J; n = 6, f = 1, agent 1 faulty)
// under a chosen attack for each of the four algorithms plotted in the
// paper — fault-free DGD (faulty agent omitted, plain averaging), DGD+CWTM,
// DGD+CGE, and plain DGD with the faulty agent included — and emits the
// loss / distance series.
#pragma once

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "abft/agg/registry.hpp"
#include "abft/attack/simple_faults.hpp"
#include "abft/opt/schedule.hpp"
#include "abft/regress/problem.hpp"
#include "abft/sim/dgd.hpp"
#include "abft/util/csv.hpp"
#include "abft/util/table.hpp"

namespace fig {

using namespace abft;
using linalg::Vector;

struct Series {
  std::string label;
  std::vector<double> loss;
  std::vector<double> distance;
};

struct FigureData {
  std::string attack;
  std::vector<Series> series;
  Vector x_h;
};

inline sim::Trace run_one(const regress::RegressionProblem& problem,
                          const attack::FaultModel* fault, std::string_view aggregator_name,
                          bool include_faulty_agent, int iterations) {
  const opt::HarmonicSchedule schedule(1.5);
  const auto aggregator = agg::make_aggregator(aggregator_name);
  std::vector<int> agents;
  for (int i = include_faulty_agent ? 0 : 1; i < problem.num_agents(); ++i) agents.push_back(i);
  auto roster = sim::honest_roster(problem.costs(agents));
  if (include_faulty_agent && fault != nullptr) sim::assign_fault(roster, 0, *fault);
  sim::DgdConfig config{Vector{-0.0085, -0.5643}, opt::Box::centered_cube(2, 1000.0), &schedule,
                        iterations, include_faulty_agent ? 1 : 0, 2021};
  sim::DgdSimulation simulation(std::move(roster), std::move(config));
  return simulation.run(*aggregator);
}

/// Runs the four algorithms of Figures 2-3 under one attack.
inline FigureData run_figure(const attack::FaultModel& fault, int iterations) {
  const auto problem = regress::RegressionProblem::paper_instance();
  const std::vector<int> honest{1, 2, 3, 4, 5};
  const auto honest_costs = problem.costs(honest);
  const opt::AggregateCost honest_aggregate(honest_costs);

  FigureData data;
  data.attack = fault.name();
  data.x_h = problem.subset_minimizer(honest);

  const struct {
    const char* label;
    const char* aggregator;
    bool include_faulty;
  } algorithms[] = {
      {"fault-free", "average", false},
      {"CWTM", "cwtm", true},
      {"CGE", "cge", true},
      {"plain GD", "average", true},
  };
  for (const auto& algorithm : algorithms) {
    const auto trace =
        run_one(problem, &fault, algorithm.aggregator, algorithm.include_faulty, iterations);
    data.series.push_back(Series{algorithm.label, trace.loss_series(honest_aggregate),
                                 trace.distance_series(data.x_h)});
  }
  return data;
}

/// Emits the full-resolution series as CSV (columns: step, then one
/// loss/distance pair per algorithm) for re-plotting.
inline void print_figure_csv(const FigureData& data, std::ostream& os) {
  std::vector<std::string> header{"step"};
  for (const auto& s : data.series) {
    header.push_back(s.label + ":loss");
    header.push_back(s.label + ":distance");
  }
  util::CsvWriter csv(os, std::move(header));
  const std::size_t length = data.series.front().loss.size();
  for (std::size_t t = 0; t < length; ++t) {
    std::vector<double> row{static_cast<double>(t)};
    for (const auto& s : data.series) {
      row.push_back(s.loss[t]);
      row.push_back(s.distance[t]);
    }
    csv.add_numeric_row(row);
  }
}

/// Emits the series, downsampled to every `stride` iterations, as aligned
/// tables (one for loss, one for distance) plus the final-error annotations
/// the paper prints on the plots.
inline void print_figure(const FigureData& data, int stride, std::ostream& os) {
  os << "=== attack: " << data.attack << " ===\n";
  for (const bool distance_table : {false, true}) {
    std::vector<std::string> header{"step"};
    for (const auto& s : data.series) header.push_back(s.label);
    util::Table table(std::move(header));
    const std::size_t length = data.series.front().loss.size();
    for (std::size_t t = 0; t < length; t += static_cast<std::size_t>(stride)) {
      std::vector<std::string> row{std::to_string(t)};
      for (const auto& s : data.series) {
        row.push_back(util::format_scientific(distance_table ? s.distance[t] : s.loss[t], 3));
      }
      table.add_row(std::move(row));
    }
    os << (distance_table ? "-- distance ||x_t - x_H||\n" : "-- loss sum_{i in H} Q_i(x_t)\n");
    table.print(os);
  }
  os << "final approximation errors ||x_T - x_H||:\n";
  for (const auto& s : data.series) {
    os << "  " << s.label << ": " << util::format_scientific(s.distance.back(), 2) << '\n';
  }
  os << '\n';
}

}  // namespace fig

// Extension experiment X3 (DESIGN.md): head-to-head comparison of every
// gradient filter in the registry on (a) the paper's regression instance and
// (b) a robust-mean workload (Section 2.3 mapping), across four fault
// behaviours including the omniscient ones.  The paper evaluates only CGE
// and CWTM; this chart places them among the related-work baselines of
// Section 2.2 (Krum, Bulyan, geometric median, ...).
#include <iostream>

#include "abft/agg/registry.hpp"
#include "abft/attack/adaptive_faults.hpp"
#include "abft/attack/simple_faults.hpp"
#include "abft/opt/quadratic.hpp"
#include "abft/opt/schedule.hpp"
#include "abft/regress/problem.hpp"
#include "abft/sim/dgd.hpp"
#include "abft/util/table.hpp"

using namespace abft;
using linalg::Vector;

namespace {

struct Workload {
  std::string name;
  std::vector<const opt::CostFunction*> costs;
  Vector x_h;           // honest minimizer (faulty agent excluded)
  int faulty_agent;     // index marked Byzantine
};

double final_error(const Workload& workload, std::string_view filter,
                   const attack::FaultModel& fault) {
  const opt::HarmonicSchedule schedule(1.0);
  auto roster = sim::honest_roster(workload.costs);
  sim::assign_fault(roster, workload.faulty_agent, fault);
  const int dim = workload.x_h.dim();
  sim::DgdConfig config{Vector(dim), opt::Box::centered_cube(dim, 1000.0), &schedule, 800, 1,
                        17};
  sim::DgdSimulation simulation(std::move(roster), std::move(config));
  const auto aggregator = agg::make_aggregator(filter);
  return linalg::distance(simulation.run(*aggregator).final_estimate(), workload.x_h);
}

}  // namespace

int main() {
  // Workload (a): the paper's regression instance.
  const auto regression = regress::RegressionProblem::paper_instance();
  Workload wa{"regression (paper, n=6 f=1)", regression.costs(),
              regression.subset_minimizer({1, 2, 3, 4, 5}), 0};

  // Workload (b): robust mean over 7 points in R^3 — Q_i(x) = ||x - c_i||^2,
  // honest minimizer = centroid of the honest centers (Section 2.3).
  std::vector<opt::SquaredDistanceCost> mean_costs;
  util::Rng rng(5);
  Vector centroid(3);
  for (int i = 0; i < 7; ++i) {
    Vector c{1.0 + 0.3 * rng.normal(), -0.5 + 0.3 * rng.normal(), 0.25 + 0.3 * rng.normal()};
    if (i > 0) centroid += c;  // agent 0 will be the Byzantine one
    mean_costs.emplace_back(std::move(c));
  }
  centroid /= 6.0;
  Workload wb{"robust mean (n=7 f=1, d=3)", {}, centroid, 0};
  for (const auto& cost : mean_costs) wb.costs.push_back(&cost);

  const attack::GradientReverseFault reverse;
  const attack::RandomGaussianFault random(200.0);
  const attack::LittleIsEnoughFault lie(1.5);
  const attack::MeanReverseFault omniscient(3.0);
  const std::vector<std::pair<std::string, const attack::FaultModel*>> faults{
      {"grad-rev", &reverse}, {"random", &random}, {"LIE", &lie}, {"mean-rev", &omniscient}};

  for (const auto& workload : {wa, wb}) {
    std::cout << "X3 — final error by filter, workload: " << workload.name << "\n";
    std::vector<std::string> header{"filter"};
    for (const auto& [label, fault] : faults) header.push_back(label);
    util::Table table(std::move(header));
    for (const auto name : agg::aggregator_names()) {
      if (name == "bulyan" && workload.costs.size() < 7) continue;  // needs n >= 4f+3
      std::vector<std::string> row{std::string(name)};
      for (const auto& [label, fault] : faults) {
        row.push_back(util::format_scientific(final_error(workload, name, *fault), 2));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Expected shape: average fails under random/mean-rev; cge + cwtm stay near\n"
               "eps; distance-based rules (krum/bulyan/geomed) are competitive, with krum\n"
               "biased on heterogeneous costs (it returns a single agent's gradient).\n";
  return 0;
}

// Extension experiment X2 (DESIGN.md): fault-fraction breakdown sweep.
// Fixes a randomized regression family at n = 15 and sweeps f = 0..7,
// charting the Theorem-4/5 alpha values, the Lemma-1 feasibility bound
// (f < n/2), and the measured final error of DGD+CGE under both a mild
// (gradient-reverse) and an omniscient (mean-reverse) adversary.
//
// Expected shape: errors stay ~eps-sized while alpha > 0, grow sharply as
// alpha crosses zero, and all resilience is impossible at f >= n/2.
#include <iostream>

#include "abft/agg/registry.hpp"
#include "abft/attack/adaptive_faults.hpp"
#include "abft/attack/simple_faults.hpp"
#include "abft/core/bounds.hpp"
#include "abft/core/redundancy.hpp"
#include "abft/opt/schedule.hpp"
#include "abft/regress/generator.hpp"
#include "abft/sim/dgd.hpp"
#include "abft/util/table.hpp"

using namespace abft;
using linalg::Vector;

namespace {

Vector run_final(const regress::RegressionProblem& problem, int f,
                 const attack::FaultModel& fault, std::string_view rule, agg::AggMode mode) {
  const opt::HarmonicSchedule schedule(0.5);
  auto roster = sim::honest_roster(problem.costs());
  for (int i = 0; i < f; ++i) sim::assign_fault(roster, i, fault);
  sim::DgdConfig config{Vector{0.0, 0.0}, opt::Box::centered_cube(2, 1000.0), &schedule, 1500, f,
                        7};
  config.agg_mode = mode;
  sim::DgdSimulation simulation(std::move(roster), std::move(config));
  const auto aggregator = agg::make_aggregator(rule);
  return simulation.run(*aggregator).final_estimate();
}

double run_error(const regress::RegressionProblem& problem, int f,
                 const attack::FaultModel& fault, const Vector& x_h) {
  return linalg::distance(run_final(problem, f, fault, "cge", agg::AggMode::exact), x_h);
}

/// End-to-end drift of the relaxed-parity fast mode: ||x_fast - x_exact||
/// for a GeoMed run under the same adversary — the per-round kernel drift
/// after 1500 iterations, demonstrably inside the eps-resilience envelope.
double fast_mode_drift(const regress::RegressionProblem& problem, int f,
                       const attack::FaultModel& fault) {
  const Vector exact = run_final(problem, f, fault, "geomed", agg::AggMode::exact);
  const Vector fast = run_final(problem, f, fault, "geomed", agg::AggMode::fast);
  return linalg::distance(exact, fast);
}

}  // namespace

int main() {
  constexpr int kN = 15;
  util::Rng rng(2025);
  regress::GeneratorOptions options;
  options.num_agents = kN;
  options.dim = 2;
  options.noise_stddev = 0.05;
  options.rank_check_subset_size = 2;  // every pair full rank: redundancy at every f
  const auto problem = regress::random_problem(options, rng);

  std::cout << "X2 — CGE breakdown sweep, n = " << kN << ", noise 0.05, 1500 iterations\n\n";
  util::Table table({"f", "feasible", "alpha4", "alpha5", "eps", "err grad-rev",
                     "err mean-rev", "gmed fast drift"});
  const attack::GradientReverseFault reverse;
  const attack::MeanReverseFault omniscient(2.0);
  for (int f = 0; f <= 7; ++f) {
    std::vector<int> honest;
    for (int i = f; i < kN; ++i) honest.push_back(i);
    const Vector x_h = problem.subset_minimizer(honest);
    const double mu = problem.mu(honest);
    const double gamma = problem.gamma(honest);
    const auto t4 = core::cge_bound_theorem4(kN, f, mu, gamma);
    const auto t5 = core::cge_bound_theorem5(kN, f, mu, gamma);
    double eps = 0.0;
    if (f >= 1 && kN - 2 * f >= 2) {
      const regress::RegressionSubsetSolver solver(problem);
      eps = core::measure_redundancy(solver, f).epsilon;
    }
    table.add_row({std::to_string(f), core::resilience_feasible(kN, f) ? "yes" : "NO",
                   util::format_double(t4.alpha, 3), util::format_double(t5.alpha, 3),
                   util::format_scientific(eps, 2),
                   util::format_scientific(run_error(problem, f, reverse, x_h), 2),
                   util::format_scientific(run_error(problem, f, omniscient, x_h), 2),
                   util::format_scientific(fast_mode_drift(problem, f, reverse), 2)});
  }
  table.print(std::cout);
  std::cout << "\nNote: alpha4 governs the provable regime (Theorem 4); the omniscient\n"
               "mean-reverse column shows errors escalating once alpha4 <= 0 even though\n"
               "alpha5 > 0 — see EXPERIMENTS.md on the Theorem-5 proof gap.\n";
  return 0;
}

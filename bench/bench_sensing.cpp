// Extension experiment X6 (DESIGN.md): the Section-2.4 application —
// distributed state estimation under sensor attacks.  Generates random
// 2f-sparse-observable sensor systems (each sensor sees ONE linear
// projection of a d-dimensional state, so no sensor alone is observable),
// corrupts f sensors' measurements, and compares:
//   * stacked least squares over all sensors (non-robust baseline),
//   * the Theorem-2 exhaustive algorithm,
//   * DGD + CGE / CWTM over the sensor costs Q_i(x) = ||y_i - H_i x||^2.
//
// Expected shape: the naive estimate degrades linearly with the corruption
// magnitude; the robust estimators stay at the noise floor as long as
// 2f-sparse observability (= 2f-redundancy) holds.
#include <iostream>

#include "abft/agg/registry.hpp"
#include "abft/core/exhaustive.hpp"
#include "abft/core/redundancy.hpp"
#include "abft/opt/schedule.hpp"
#include "abft/sensing/sensor_system.hpp"
#include "abft/sim/dgd.hpp"
#include "abft/util/table.hpp"

using namespace abft;
using linalg::Vector;

namespace {

double dgd_error(const sensing::SensorSystem& system, std::string_view filter, int f,
                 const Vector& truth) {
  const opt::HarmonicSchedule schedule(0.4);
  // Corruption lives in the measurements (data-level fault), so every agent
  // behaves protocol-honestly over its (possibly corrupted) cost.
  sim::DgdConfig config{Vector(system.state_dim()),
                        opt::Box::centered_cube(system.state_dim(), 100.0), &schedule, 1200, f,
                        3};
  sim::DgdSimulation simulation(sim::honest_roster(system.costs()), std::move(config));
  const auto aggregator = agg::make_aggregator(filter);
  return linalg::distance(simulation.run(*aggregator).final_estimate(), truth);
}

}  // namespace

int main() {
  constexpr int kSensors = 10;
  constexpr int kStateDim = 3;
  constexpr int kF = 2;

  util::Rng rng(31);
  sensing::SensorGeneratorOptions options;
  options.num_sensors = kSensors;
  options.state_dim = kStateDim;
  options.rows_per_sensor = 1;
  options.noise_stddev = 0.01;
  options.sparse_observability = 2 * kF;
  const auto generated = sensing::random_sensor_system(options, rng);

  std::cout << "X6 — state estimation under sensor attacks: n = " << kSensors
            << " single-projection sensors, d = " << kStateDim << ", f = " << kF << "\n";
  std::cout << "system is 2f-sparse observable: "
            << (generated.system.sparse_observable(2 * kF) ? "yes" : "NO")
            << "; no single sensor is observable: "
            << (!generated.system.jointly_observable({0}) ? "confirmed" : "NO") << "\n\n";

  util::Table table({"corruption", "eps", "naive LSQ", "theorem-2", "dgd+cge", "dgd+cwtm"});
  for (const double magnitude : {0.0, 1.0, 5.0, 25.0, 125.0}) {
    // Corrupt sensors 0..f-1 with a constant measurement offset.
    sensing::SensorSystem corrupted = generated.system;
    for (int s = 0; s < kF; ++s) {
      Vector fake = generated.system.measurements(s);
      for (int r = 0; r < fake.dim(); ++r) fake[r] += magnitude;
      corrupted = corrupted.with_corrupted_sensor(s, fake);
    }
    const sensing::SensorSubsetSolver solver(corrupted);
    const double eps = core::measure_redundancy(solver, kF).epsilon;

    std::vector<int> everyone;
    for (int s = 0; s < kSensors; ++s) everyone.push_back(s);
    const double naive =
        linalg::distance(corrupted.subset_estimate(everyone), generated.true_state);
    const auto exhaustive = core::exhaustive_resilient_solve(solver, kF);
    const double exact =
        linalg::distance(exhaustive.output, generated.true_state);

    table.add_row({util::format_double(magnitude, 4), util::format_scientific(eps, 2),
                   util::format_scientific(naive, 2), util::format_scientific(exact, 2),
                   util::format_scientific(dgd_error(corrupted, "cge", kF, generated.true_state), 2),
                   util::format_scientific(dgd_error(corrupted, "cwtm", kF, generated.true_state), 2)});
  }
  table.print(std::cout);
  std::cout << "\nNote: eps here is measured on the *received* (corrupted) costs, so it grows\n"
               "with the corruption; the robust estimators' error stays near the noise floor\n"
               "because honest (n - f)-subsets still pin the state down.\n";
  return 0;
}

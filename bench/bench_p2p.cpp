// Extension experiment X9 (DESIGN.md): cost of the peer-to-peer transport.
// Charts per-broadcast message counts and wall time for the two Byzantine
// broadcast protocols — recursive Oral Messages (unauthenticated, n > 3f,
// exponential in f) and Dolev-Strong (authenticated, any f < n, polynomial)
// — across n and f, plus the end-to-end message cost of one p2p DGD round.
#include <chrono>
#include <iostream>

#include "abft/agg/registry.hpp"
#include "abft/p2p/dolev_strong.hpp"
#include "abft/p2p/eig.hpp"
#include "abft/p2p/p2p_dgd.hpp"
#include "abft/regress/generator.hpp"
#include "abft/util/table.hpp"

using namespace abft;
using linalg::Vector;

namespace {

template <typename Fn>
double time_ms(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  std::cout << "X9 — Byzantine broadcast transport costs (payload d = 2)\n\n";
  util::Table table({"n", "f", "OM messages", "OM ms", "DS messages", "DS ms"});
  const Vector payload{1.0, 2.0};
  for (const auto& [n, f] : std::initializer_list<std::pair<int, int>>{
           {4, 1}, {7, 1}, {7, 2}, {10, 2}, {10, 3}, {13, 3}, {13, 4}}) {
    std::string om_messages = "n/a";
    std::string om_ms = "n/a";
    if (n > 3 * f) {
      const p2p::OralMessagesBroadcast om(n, f);
      const std::vector<const p2p::RelayStrategy*> honest(static_cast<std::size_t>(n), nullptr);
      long messages = 0;
      const double ms = time_ms([&] {
        messages = om.broadcast(0, payload, honest, 1).messages_sent;
      });
      om_messages = std::to_string(messages);
      om_ms = util::format_double(ms, 3);
    }
    const p2p::DolevStrongBroadcast ds(n, f);
    const std::vector<const p2p::DsStrategy*> honest_ds(static_cast<std::size_t>(n), nullptr);
    long ds_messages = 0;
    const double ds_ms = time_ms([&] {
      ds_messages = ds.broadcast(0, payload, honest_ds, 1).messages_sent;
    });
    table.add_row({std::to_string(n), std::to_string(f), om_messages, om_ms,
                   std::to_string(ds_messages), util::format_double(ds_ms, 3)});
  }
  table.print(std::cout);

  std::cout << "\nEnd-to-end: one p2p DGD iteration (n broadcasts) on a random regression\n"
               "instance, n = 7, f = 2:\n";
  util::Rng rng(3);
  regress::GeneratorOptions options;
  options.num_agents = 7;
  options.dim = 2;
  options.noise_stddev = 0.05;
  const auto problem = regress::random_problem(options, rng);
  const auto roster = sim::honest_roster(problem.costs());
  const opt::HarmonicSchedule schedule(0.5);
  const p2p::P2pDgdConfig config{Vector{0.0, 0.0}, opt::Box::centered_cube(2, 100.0), &schedule,
                                 1, 2, 5};
  const auto cge = agg::make_aggregator("cge");
  const auto om_run = p2p::run_p2p_dgd(roster, config, *cge);
  const auto ds_run = p2p::run_p2p_dgd_authenticated(roster, config, *cge);
  std::cout << "  oral messages: " << om_run.broadcast_messages
            << " msgs/round;  dolev-strong: " << ds_run.broadcast_messages << " msgs/round\n";
  std::cout << "\nExpected shape: OM grows ~n^(f+1) and hits its n > 3f wall; DS stays\n"
               "polynomial (~n^2 per broadcast for honest runs) at any f < n.\n";
  return 0;
}

// The async quorum-or-deadline engine as an experiment: how the trigger
// quorum and the staleness cap trade convergence against waiting, on the
// committed grid specs/sweep_async.json (quorum x staleness_cap x seeds,
// dgd quadratic with a gradient-reverse fault, heavy-tailed exponential
// arrivals).  Each cell is averaged over the seed axis and printed next to
// its trigger/staleness counters; a synchronous-engine run of the same base
// (async block stripped) anchors the comparison.
//
// `abft_run --sweep specs/sweep_async.json` emits the same grid as CSV.
//
// Flags: --mode=exact|fast (relaxed-parity fast kernels).
#include <cstdio>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "abft/scenario/scenario.hpp"
#include "fig_common.hpp"

namespace {

using namespace abft;

struct Cell {
  std::string quorum;
  std::string staleness_cap;
  double dist = 0.0;
  double quorum_fires = 0.0;
  double deadline_fires = 0.0;
  double stale_dropped = 0.0;
  double late_rows = 0.0;
  int runs = 0;
};

/// Per-run counter means are small integers-and-a-fraction: fixed one-digit
/// notation reads better than format_double's significant-digit rounding.
std::string counter_mean(double total, double runs) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.1f", total / runs);
  return buffer;
}

/// The committed base with the async block stripped: the synchronous engine
/// on the identical workload, averaged over the same seed axis.
double sync_reference(const sweep::SweepSpec& spec) {
  std::vector<std::pair<std::string, util::JsonValue>> members;
  for (const auto& [key, value] : spec.base.as_object()) {
    if (key != "async") members.emplace_back(key, value);
  }
  double total = 0.0;
  for (const std::uint64_t seed : spec.seed) {
    auto run_members = members;
    run_members.emplace_back("seed",
                             util::JsonValue::make_number(static_cast<double>(seed)));
    const auto result = scenario::run_scenario(
        scenario::parse_scenario(util::JsonValue::make_object(std::move(run_members))));
    ABFT_REQUIRE(result.distance_to_reference.has_value(),
                 "the async grid's base problem must have a closed-form reference");
    total += *result.distance_to_reference;
  }
  return total / static_cast<double>(spec.seed.size());
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = fig::parse_bench_options(argc, argv);
  auto spec = fig::load_sweep_spec("sweep_async.json");
  sweep::set_base_member(&spec, "mode",
                         util::JsonValue::make_string(std::string(agg::to_string(options.mode))));
  ABFT_REQUIRE(!spec.seed.empty(), "sweep_async.json must sweep a seed axis");

  std::cout << "Async quorum-or-deadline engine — " << spec.name << "\n"
            << "mode: " << agg::to_string(options.mode) << ", " << spec.seed.size()
            << " seeds per cell; dist = ||x_T - x_H|| averaged over seeds\n\n";

  const auto outcome = sweep::run_sweep(spec);
  std::vector<Cell> cells;
  for (const auto& run : outcome.runs) {
    const std::string quorum = run.axis_value("quorum");
    const std::string cap = run.axis_value("staleness_cap");
    Cell* cell = nullptr;
    for (auto& existing : cells) {
      if (existing.quorum == quorum && existing.staleness_cap == cap) cell = &existing;
    }
    if (cell == nullptr) {
      cells.push_back(Cell{quorum, cap});
      cell = &cells.back();
    }
    ABFT_REQUIRE(run.result.distance_to_reference.has_value() &&
                     run.result.async_stats.has_value(),
                 "async grid runs must carry a reference distance and the async counters");
    cell->dist += *run.result.distance_to_reference;
    cell->quorum_fires += static_cast<double>(run.result.async_stats->quorum_fires);
    cell->deadline_fires += static_cast<double>(run.result.async_stats->deadline_fires);
    cell->stale_dropped += static_cast<double>(run.result.async_stats->stale_dropped);
    cell->late_rows += static_cast<double>(run.result.async_stats->late_rows);
    cell->runs += 1;
  }

  util::Table table({"quorum", "staleness_cap", "dist", "quorum_fires", "deadline_fires",
                     "stale_dropped", "late_rows"});
  for (const auto& cell : cells) {
    const double n = static_cast<double>(cell.runs);
    table.add_row({cell.quorum == "0" ? "full" : cell.quorum, cell.staleness_cap,
                   util::format_double(cell.dist / n, 4), counter_mean(cell.quorum_fires, n),
                   counter_mean(cell.deadline_fires, n), counter_mean(cell.stale_dropped, n),
                   counter_mean(cell.late_rows, n)});
  }
  table.print(std::cout);
  std::cout << "\nsync engine reference (same base, async stripped): dist = "
            << util::format_double(sync_reference(spec), 4) << "\n";
  return 0;
}

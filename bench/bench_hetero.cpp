// Extension experiment X7 (DESIGN.md): Appendix K's closing observation made
// quantitative — "the accuracy of the learning process depends upon the
// correlation between the data points of non-faulty agents".  We sweep the
// non-iid heterogeneity of the agent shards (0 = iid, 1 = label-sorted) and
// chart final accuracy for CGE, CWTM and centered clipping under
// gradient-reverse faults, plus the fault-free reference.
//
// Expected shape: all filters degrade as heterogeneity grows (honest
// gradients decorrelate, shrinking effective redundancy), with the
// fault-free baseline degrading the least.
#include <iostream>

#include "abft/agg/registry.hpp"
#include "abft/learn/dataset.hpp"
#include "abft/learn/dsgd.hpp"
#include "abft/learn/softmax.hpp"
#include "abft/util/table.hpp"

using namespace abft;
using linalg::Vector;

int main() {
  auto options = learn::synth_digits_options();
  options.examples_per_class = 100;
  util::Rng data_rng(7);
  const auto full = learn::make_synthetic(options, data_rng);
  util::Rng split_rng(8);
  const auto split = learn::split_train_test(full, 0.2, split_rng);
  const learn::SoftmaxRegression model(split.train.feature_dim(), split.train.num_classes);

  learn::DsgdConfig config;
  config.iterations = 600;
  config.batch_size = 64;
  config.step_size = 0.02;
  config.f = 3;
  config.eval_interval = 600;
  config.seed = 11;

  std::cout << "X7 — accuracy vs shard heterogeneity (n = 10, f = 3 gradient-reverse)\n\n";
  util::Table table({"heterogeneity", "fault-free", "cge", "cwtm", "cclip", "average"});
  for (const double h : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    util::Rng shard_rng(13);
    const auto shards = learn::shard_non_iid(split.train, 10, h, shard_rng);
    std::vector<std::string> row{util::format_double(h, 3)};

    // Fault-free reference: the 7 honest shards only.
    {
      const std::vector<learn::Dataset> honest(shards.begin() + 3, shards.end());
      learn::DsgdConfig ff = config;
      ff.f = 0;
      const auto average = agg::make_aggregator("average");
      const auto series =
          learn::run_dsgd(model, Vector(model.param_dim()), honest,
                          std::vector<learn::AgentFault>(7, learn::AgentFault::kHonest),
                          split.test, *average, ff);
      row.push_back(util::format_double(series.test_accuracy.back() * 100.0, 4));
    }
    std::vector<learn::AgentFault> faults(10, learn::AgentFault::kHonest);
    for (int i = 0; i < 3; ++i) faults[static_cast<std::size_t>(i)] = learn::AgentFault::kGradientReverse;
    for (const char* name : {"cge", "cwtm", "cclip", "average"}) {
      const auto aggregator = agg::make_aggregator(name);
      const auto series = learn::run_dsgd(model, Vector(model.param_dim()), shards, faults,
                                          split.test, *aggregator, config);
      row.push_back(util::format_double(series.test_accuracy.back() * 100.0, 4));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: accuracy of every robust filter decays as shards become\n"
               "label-sorted (redundancy vanishes); the fault-free run is the upper bound.\n";
  return 0;
}

// Shared harness for the Figure-4/5 family (Appendix K): D-SGD on a
// synthetic multiclass dataset with n = 10 agents, f = 3 faulty, batch 128,
// eta = 0.01, comparing {fault-free, CWTM-LF, CWTM-GR, CGE-LF, CGE-GR,
// average-GR}.  The paper trains LeNet on MNIST / Fashion-MNIST; offline we
// train a one-hidden-layer MLP on SynthDigits / SynthFashion (see DESIGN.md
// for the substitution argument).
//
// Each figure is ONE committed sweep spec (specs/sweep_fig4.json /
// sweep_fig5.json: a variants axis over the dsgd base with the MLP model
// knob) run through the sweep layer; the fault-free curve omits the
// would-be faulty agents via the dsgd "agents" roster subset, exactly like
// the paper's blue curves.  `abft_run --sweep` executes the same files.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "abft/agg/registry.hpp"
#include "abft/learn/dsgd.hpp"
#include "abft/sweep/sweep.hpp"
#include "abft/util/check.hpp"
#include "abft/util/table.hpp"

namespace learnfig {

using namespace abft;

struct Curve {
  std::string label;
  learn::DsgdSeries series;
};

/// Parses the fig4/5 command line (--mode=exact|fast).
inline agg::AggMode parse_mode_flag(int argc, char** argv) {
  agg::AggMode mode = agg::AggMode::exact;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--mode=fast") {
      mode = agg::AggMode::fast;
    } else if (arg == "--mode=exact") {
      mode = agg::AggMode::exact;
    } else {
      std::cerr << "unknown option " << arg << " (known: --mode=exact|fast)\n";
      std::exit(2);
    }
  }
  return mode;
}

/// Runs the committed learning grid: one curve per variant, in grid order.
inline std::vector<Curve> run_learning_figure(const std::string& spec_filename,
                                              agg::AggMode mode) {
  auto spec = sweep::load_sweep_file(std::string(ABFT_SPEC_DIR "/") + spec_filename);
  sweep::set_base_member(&spec, "mode",
                         util::JsonValue::make_string(std::string(agg::to_string(mode))));
  const auto outcome = sweep::run_sweep(spec);

  std::vector<Curve> curves;
  for (const auto& run : outcome.runs) {
    ABFT_REQUIRE(run.result.series.has_value(),
                 "the learning grids run on the dsgd driver (series output)");
    curves.push_back(Curve{run.axis_value("variants"), *run.result.series});
  }
  return curves;
}

inline void print_learning_figure(const std::vector<Curve>& curves, std::ostream& os) {
  for (const bool accuracy_table : {false, true}) {
    std::vector<std::string> header{"iteration"};
    for (const auto& curve : curves) header.push_back(curve.label);
    util::Table table(std::move(header));
    const auto& ticks = curves.front().series.eval_iterations;
    for (std::size_t k = 0; k < ticks.size(); ++k) {
      std::vector<std::string> row{std::to_string(ticks[k])};
      for (const auto& curve : curves) {
        const double value = accuracy_table ? curve.series.test_accuracy[k] * 100.0
                                            : curve.series.train_loss[k];
        row.push_back(util::format_double(value, 4));
      }
      table.add_row(std::move(row));
    }
    os << (accuracy_table ? "-- test accuracy (%)\n" : "-- cross-entropy loss (honest data)\n");
    table.print(os);
  }
  os << "final: ";
  for (const auto& curve : curves) {
    os << curve.label << " " << util::format_double(curve.series.test_accuracy.back() * 100.0, 3)
       << "%  ";
  }
  os << "\n\n";
}

}  // namespace learnfig

// Shared harness for the Figure-4/5 family (Appendix K): D-SGD on a
// synthetic multiclass dataset with n = 10 agents, f = 3 faulty, batch 128,
// eta = 0.01, comparing {fault-free, CWTM-LF, CWTM-GR, CGE-LF, CGE-GR}.
// The paper trains LeNet on MNIST / Fashion-MNIST; offline we train a
// one-hidden-layer MLP on SynthDigits / SynthFashion (see DESIGN.md for the
// substitution argument).
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "abft/agg/registry.hpp"
#include "abft/learn/dataset.hpp"
#include "abft/learn/dsgd.hpp"
#include "abft/learn/mlp.hpp"
#include "abft/util/table.hpp"

namespace learnfig {

using namespace abft;
using linalg::Vector;

struct Curve {
  std::string label;
  learn::DsgdSeries series;
};

struct Options {
  learn::SyntheticOptions dataset;
  int iterations = 1000;
  int eval_interval = 50;
  int hidden_dim = 24;
  std::uint64_t seed = 42;
  /// Numerical mode of the gradient filter (--mode=fast on the fig4/5
  /// command line switches every curve to the relaxed-parity kernels).
  agg::AggMode mode = agg::AggMode::exact;
};

/// Parses the fig4/5 command line (--mode=exact|fast) into `options`.
inline void parse_mode_flag(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--mode=fast") {
      options->mode = agg::AggMode::fast;
    } else if (arg == "--mode=exact") {
      options->mode = agg::AggMode::exact;
    } else {
      std::cerr << "unknown option " << arg << " (known: --mode=exact|fast)\n";
      std::exit(2);
    }
  }
}

inline std::vector<Curve> run_learning_figure(const Options& options) {
  util::Rng data_rng(options.seed);
  const auto full = learn::make_synthetic(options.dataset, data_rng);
  util::Rng split_rng(options.seed + 1);
  const auto split = learn::split_train_test(full, 0.2, split_rng);
  util::Rng shard_rng(options.seed + 2);
  const auto shards = learn::shard(split.train, 10, shard_rng);

  const learn::Mlp model(split.train.feature_dim(), options.hidden_dim, split.train.num_classes);
  util::Rng init_rng(options.seed + 3);
  const Vector params0 = model.initial_params(init_rng);

  learn::DsgdConfig config;
  config.iterations = options.iterations;
  config.batch_size = 128;
  config.step_size = 0.01;
  config.eval_interval = options.eval_interval;
  config.seed = options.seed + 4;
  config.agg_mode = options.mode;

  auto faults_of = [](learn::AgentFault kind, int count) {
    std::vector<learn::AgentFault> faults(10, learn::AgentFault::kHonest);
    for (int i = 0; i < count; ++i) faults[static_cast<std::size_t>(i)] = kind;
    return faults;
  };

  std::vector<Curve> curves;
  const struct {
    const char* label;
    const char* aggregator;
    learn::AgentFault kind;
    int f;
  } runs[] = {
      {"fault-free", "average", learn::AgentFault::kHonest, 0},
      {"CWTM-LF", "cwtm", learn::AgentFault::kLabelFlip, 3},
      {"CWTM-GR", "cwtm", learn::AgentFault::kGradientReverse, 3},
      {"CGE-LF", "cge", learn::AgentFault::kLabelFlip, 3},
      {"CGE-GR", "cge", learn::AgentFault::kGradientReverse, 3},
      {"average-GR", "average", learn::AgentFault::kGradientReverse, 3},
  };
  for (const auto& run : runs) {
    config.f = run.f;
    const auto aggregator = agg::make_aggregator(run.aggregator);
    // Fault-free means the would-be faulty agents are omitted entirely
    // (the paper's blue curves), not merely marked honest.
    if (run.f == 0) {
      const std::vector<learn::Dataset> honest_shards(shards.begin() + 3, shards.end());
      const std::vector<learn::AgentFault> honest(7, learn::AgentFault::kHonest);
      learn::DsgdConfig ff = config;
      ff.f = 0;
      curves.push_back(Curve{run.label, learn::run_dsgd(model, params0, honest_shards, honest,
                                                        split.test, *aggregator, ff)});
    } else {
      curves.push_back(Curve{run.label,
                             learn::run_dsgd(model, params0, shards, faults_of(run.kind, run.f),
                                             split.test, *aggregator, config)});
    }
  }
  return curves;
}

inline void print_learning_figure(const std::vector<Curve>& curves, std::ostream& os) {
  for (const bool accuracy_table : {false, true}) {
    std::vector<std::string> header{"iteration"};
    for (const auto& curve : curves) header.push_back(curve.label);
    util::Table table(std::move(header));
    const auto& ticks = curves.front().series.eval_iterations;
    for (std::size_t k = 0; k < ticks.size(); ++k) {
      std::vector<std::string> row{std::to_string(ticks[k])};
      for (const auto& curve : curves) {
        const double value = accuracy_table ? curve.series.test_accuracy[k] * 100.0
                                            : curve.series.train_loss[k];
        row.push_back(util::format_double(value, 4));
      }
      table.add_row(std::move(row));
    }
    os << (accuracy_table ? "-- test accuracy (%)\n" : "-- cross-entropy loss (honest data)\n");
    table.print(os);
  }
  os << "final: ";
  for (const auto& curve : curves) {
    os << curve.label << " " << util::format_double(curve.series.test_accuracy.back() * 100.0, 3)
       << "%  ";
  }
  os << "\n\n";
}

}  // namespace learnfig

// Extension experiment X5 (DESIGN.md): cost and accuracy of the Theorem-2
// exhaustive algorithm.  The paper notes the algorithm is "computationally
// expensive" without quantifying it; this bench charts the subset-solve
// count and wall time as n grows (f = 2), and verifies the (f, 2eps)
// guarantee on each instance.
#include <chrono>
#include <iostream>
#include <numeric>

#include "abft/core/exhaustive.hpp"
#include "abft/core/redundancy.hpp"
#include "abft/core/subset_solver.hpp"
#include "abft/util/combinatorics.hpp"
#include "abft/util/rng.hpp"
#include "abft/util/table.hpp"

using namespace abft;
using linalg::Vector;

int main() {
  constexpr int kF = 2;
  std::cout << "X5 — Theorem-2 exhaustive algorithm cost (robust-mean workload, f = " << kF
            << ")\n\n";
  util::Table table({"n", "C(n,n-f)", "subsets solved", "time (ms)", "score r_S",
                     "resilient (<= 2 eps)"});
  for (const int n : {6, 8, 10, 12, 14, 16, 18}) {
    util::Rng rng(900 + static_cast<std::uint64_t>(n));
    std::vector<Vector> centers;
    for (int i = 0; i < n; ++i) {
      centers.push_back(Vector{rng.normal(), rng.normal(), rng.normal()});
    }
    const core::MeanSubsetSolver solver(centers);
    const double eps = core::measure_redundancy(solver, kF).epsilon;

    const auto start = std::chrono::steady_clock::now();
    const auto result = core::exhaustive_resilient_solve(solver, kF);
    const auto elapsed = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();

    // Definition-2 check: within 2 eps of every (n - f)-subset argmin.
    bool resilient = true;
    util::for_each_combination(n, n - kF, [&](const std::vector<int>& subset) {
      if (linalg::distance(result.output, solver.solve(subset)) > 2.0 * eps + 1e-9) {
        resilient = false;
        return false;
      }
      return true;
    });

    table.add_row({std::to_string(n), std::to_string(util::binomial(n, n - kF)),
                   std::to_string(result.subsets_solved), util::format_double(elapsed, 4),
                   util::format_scientific(result.score, 2), resilient ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: subset count (and time) grows combinatorially in n — the\n"
               "reason the paper calls the construction impractical and studies DGD+filters\n"
               "instead; the resilience column must read yes everywhere.\n";
  return 0;
}

// Microbenchmarks of every gradient filter across (n, d) shapes, charting
// the per-round server cost — and, since the batched aggregation engine
// landed, comparing the legacy span path against the zero-allocation
// aggregate_into path in the same binary.
//
// The primary harness is built in (adaptive-iteration wall-clock timing) so
// the binary works without google-benchmark and always emits a
// machine-readable BENCH_agg.json:
//
//   {"meta": {"repeats": K},
//    "results": [{"rule", "path", "precision", "n", "d", "f", "ns_per_op",
//                 "iters"}, ...],
//    "speedups": {"<rule>/<n>x<d>": {"legacy_ns", "batched_ns", "speedup",
//                                    "fast_ns", "fast_speedup",
//                                    "f32_ns", "f32_speedup"}}}
//
// Paths: "legacy" (span API), "batched" (aggregate_into, AggMode::exact),
// "fast" (aggregate_into, AggMode::fast — relaxed parity; measured at both
// precision "f64" and, for the rules with an f32 kernel, precision "f32"),
// and optionally "pooled" (see --threads).  fast_speedup is
// batched_ns / fast_ns: what the relaxed-parity mode buys over the exact
// batched kernels; f32_speedup is fast_ns / f32_ns: what demoting the
// bandwidth-bound kernels to float32 buys on top of that.
//
// Every measurement is the MINIMUM of --repeats independent adaptive
// timings (warm-up excluded from each), so the committed BENCH_agg.json
// carries stable minima for the bench_diff.py gates rather than one noisy
// sample.
//
// Flags:
//   --quick       small shapes only (CI smoke)
//   --out=FILE    JSON destination (default BENCH_agg.json)
//   --repeats=K   independent timing repetitions per cell, min-of-K
//                 reported (default 3)
//   --threads=N   additionally measure a "pooled" path: the batched kernels
//                 dispatching coordinate/pair work over a persistent
//                 N-thread ThreadPool (worthwhile on multi-core hosts only;
//                 the default 1 keeps the JSON shape diff-stable)
//   --gbench ...  delegate to google-benchmark instead (when compiled in)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "abft/agg/registry.hpp"
#include "abft/agg/threads.hpp"
#include "abft/util/rng.hpp"

#if defined(ABFT_HAVE_GBENCH)
#include <benchmark/benchmark.h>
#endif

namespace {

using namespace abft;
using linalg::Vector;

std::vector<Vector> make_gradients(int n, int d, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Vector> gradients;
  gradients.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    std::vector<double> coeffs(static_cast<std::size_t>(d));
    for (auto& c : coeffs) c = rng.normal();
    gradients.emplace_back(std::move(coeffs));
  }
  return gradients;
}

struct BenchResult {
  std::string rule;
  std::string path;       // "legacy" | "batched" | "fast" | "pooled"
  std::string precision;  // "f64" | "f32" (f32 only on the fast path)
  int n = 0;
  int d = 0;
  int f = 0;
  double ns_per_op = 0.0;
  long iters = 0;
};

struct SpeedupEntry {
  double legacy_ns = 0.0;
  double batched_ns = 0.0;
  double fast_ns = 0.0;
  double f32_ns = 0.0;
};

/// Times fn() with adaptive iteration count: warm up once, then repeat until
/// both a minimum number of iterations and a minimum wall-clock budget are
/// met.  The clock is only read between mini-batches whose size doubles as
/// long as a batch stays under ~1/8 of the budget, so fast operations are
/// not inflated by per-iteration clock overhead.  Returns ns per call.
template <typename Fn>
double time_ns_per_op(Fn&& fn, long& iters_out, double min_seconds, long min_iters,
                      long max_iters) {
  using clock = std::chrono::steady_clock;
  fn();  // warm-up: first-call allocations land outside the timed region
  long iters = 0;
  long batch = 1;
  const auto start = clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(clock::now() - start).count();
  };
  double seconds = 0.0;
  do {
    const double before = seconds;
    for (long b = 0; b < batch; ++b) fn();
    iters += batch;
    seconds = elapsed();
    if (seconds - before < min_seconds / 8.0 && batch < max_iters) batch *= 2;
  } while (iters < max_iters && (iters < min_iters || seconds < min_seconds));
  iters_out = iters;
  return seconds * 1e9 / static_cast<double>(iters);
}

/// Min-of-K wrapper around time_ns_per_op: K independent adaptive timings
/// (each with its own warm-up call), reporting the fastest — the estimator
/// least contaminated by scheduler noise and frequency transitions on a
/// shared CI host.  iters_out reports the winning repetition's count.
template <typename Fn>
double min_ns_per_op(Fn&& fn, long& iters_out, double min_seconds, long min_iters,
                     long max_iters, int repeats) {
  double best = 0.0;
  long best_iters = 0;
  for (int r = 0; r < repeats; ++r) {
    long iters = 0;
    const double ns = time_ns_per_op(fn, iters, min_seconds, min_iters, max_iters);
    if (r == 0 || ns < best) {
      best = ns;
      best_iters = iters;
    }
  }
  iters_out = best_iters;
  return best;
}

struct Shape {
  int n;
  int d;
};

int run_builtin(bool quick, const std::string& out_path, int threads, int repeats) {
  const std::vector<Shape> shapes =
      quick ? std::vector<Shape>{{10, 10}, {10, 100}, {25, 200}}
            : std::vector<Shape>{{10, 10}, {10, 1000}, {50, 100}, {100, 1000}, {50, 10000}};
  // Time budget per measurement: enough for stable numbers on the big
  // shapes without letting the O(n^2 d) rules blow up total runtime.
  const double min_seconds = quick ? 0.02 : 0.10;
  const long min_iters = 3;
  // Generous: min_seconds is the effective stop for fast operations, and
  // slow ones stop at min_iters; this only backstops a broken clock.
  const long max_iters = quick ? 1000000 : 10000000;

  std::vector<BenchResult> results;
  std::map<std::string, SpeedupEntry> speedup_pairs;

  for (const auto name : agg::aggregator_names()) {
    const auto rule = agg::make_aggregator(name);
    for (const auto shape : shapes) {
      const int n = shape.n;
      const int d = shape.d;
      const int f = std::max(1, n / 5);
      const auto gradients = make_gradients(n, d, 42);

      // Some rules reject certain (n, f) shapes (krum: n > 2f+2; bulyan:
      // n >= 4f+3); probe once and skip instead of aborting the binary.
      try {
        (void)rule->aggregate(gradients, f);
      } catch (const std::invalid_argument&) {
        continue;
      }

      const std::string key =
          std::string(name) + "/" + std::to_string(n) + "x" + std::to_string(d);

      BenchResult legacy{std::string(name), "legacy", "f64", n, d, f, 0.0, 0};
      legacy.ns_per_op = min_ns_per_op(
          [&] {
            Vector out = rule->aggregate(gradients, f);
            // The result feeds the next model update in the real loop; fold
            // it into a sink so the call cannot be optimized away.
            volatile double sink = out[0];
            (void)sink;
          },
          legacy.iters, min_seconds, min_iters, max_iters, repeats);
      results.push_back(legacy);

      agg::GradientBatch batch;
      batch.pack(gradients);
      agg::AggregatorWorkspace workspace;
      Vector out;
      BenchResult batched{std::string(name), "batched", "f64", n, d, f, 0.0, 0};
      batched.ns_per_op = min_ns_per_op(
          [&] {
            rule->aggregate_into(out, batch, f, workspace);
            volatile double sink = out[0];
            (void)sink;
          },
          batched.iters, min_seconds, min_iters, max_iters, repeats);
      results.push_back(batched);

      agg::AggregatorWorkspace fast_ws;
      fast_ws.mode = agg::AggMode::fast;
      BenchResult fast{std::string(name), "fast", "f64", n, d, f, 0.0, 0};
      fast.ns_per_op = min_ns_per_op(
          [&] {
            rule->aggregate_into(out, batch, f, fast_ws);
            volatile double sink = out[0];
            (void)sink;
          },
          fast.iters, min_seconds, min_iters, max_iters, repeats);
      results.push_back(fast);

      agg::AggregatorWorkspace f32_ws;
      f32_ws.mode = agg::AggMode::fast;
      f32_ws.precision = agg::Precision::f32;
      BenchResult f32{std::string(name), "fast", "f32", n, d, f, 0.0, 0};
      f32.ns_per_op = min_ns_per_op(
          [&] {
            rule->aggregate_into(out, batch, f, f32_ws);
            volatile double sink = out[0];
            (void)sink;
          },
          f32.iters, min_seconds, min_iters, max_iters, repeats);
      results.push_back(f32);

      speedup_pairs[key] = {legacy.ns_per_op, batched.ns_per_op, fast.ns_per_op,
                            f32.ns_per_op};
      std::cout << key << "  legacy " << static_cast<long>(legacy.ns_per_op)
                << " ns/op  batched " << static_cast<long>(batched.ns_per_op)
                << " ns/op  speedup " << legacy.ns_per_op / batched.ns_per_op << "x"
                << "  fast " << static_cast<long>(fast.ns_per_op) << " ns/op ("
                << batched.ns_per_op / fast.ns_per_op << "x vs exact)"
                << "  f32 " << static_cast<long>(f32.ns_per_op) << " ns/op ("
                << fast.ns_per_op / f32.ns_per_op << "x vs f64 fast)";
      if (threads > 1) {
        agg::ThreadPool pool(threads);
        agg::AggregatorWorkspace pooled_ws;
        pooled_ws.parallel_threads = threads;
        pooled_ws.pool = &pool;
        BenchResult pooled{std::string(name), "pooled", "f64", n, d, f, 0.0, 0};
        pooled.ns_per_op = min_ns_per_op(
            [&] {
              rule->aggregate_into(out, batch, f, pooled_ws);
              volatile double sink = out[0];
              (void)sink;
            },
            pooled.iters, min_seconds, min_iters, max_iters, repeats);
        results.push_back(pooled);
        std::cout << "  pooled(" << threads << ") " << static_cast<long>(pooled.ns_per_op)
                  << " ns/op";
      }
      std::cout << "\n";
    }
  }

  std::ofstream json(out_path);
  json << "{\n  \"meta\": {\"repeats\": " << repeats << "},\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    json << "    {\"rule\": \"" << r.rule << "\", \"path\": \"" << r.path
         << "\", \"precision\": \"" << r.precision << "\", \"n\": " << r.n
         << ", \"d\": " << r.d << ", \"f\": " << r.f
         << ", \"ns_per_op\": " << r.ns_per_op << ", \"iters\": " << r.iters << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"speedups\": {\n";
  std::size_t written = 0;
  for (const auto& [key, entry] : speedup_pairs) {
    json << "    \"" << key << "\": {\"legacy_ns\": " << entry.legacy_ns
         << ", \"batched_ns\": " << entry.batched_ns
         << ", \"speedup\": " << entry.legacy_ns / entry.batched_ns
         << ", \"fast_ns\": " << entry.fast_ns
         << ", \"fast_speedup\": " << entry.batched_ns / entry.fast_ns
         << ", \"f32_ns\": " << entry.f32_ns
         << ", \"f32_speedup\": " << entry.fast_ns / entry.f32_ns << "}"
         << (++written < speedup_pairs.size() ? "," : "") << "\n";
  }
  json << "  }\n}\n";
  json.flush();
  if (!json) {
    std::cerr << "error: could not write " << out_path << "\n";
    return 1;
  }
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

#if defined(ABFT_HAVE_GBENCH)
void aggregate_benchmark(benchmark::State& state, const std::string& name, bool batched) {
  const int n = static_cast<int>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  const int f = std::max(1, n / 5);
  const auto rule = agg::make_aggregator(name);
  const auto gradients = make_gradients(n, d, 42);
  try {
    benchmark::DoNotOptimize(rule->aggregate(gradients, f));
  } catch (const std::invalid_argument& error) {
    state.SkipWithError(error.what());
    return;
  }
  if (batched) {
    agg::GradientBatch batch;
    batch.pack(gradients);
    agg::AggregatorWorkspace workspace;
    Vector out;
    for (auto _ : state) {
      rule->aggregate_into(out, batch, f, workspace);
      benchmark::DoNotOptimize(out);
    }
  } else {
    for (auto _ : state) {
      benchmark::DoNotOptimize(rule->aggregate(gradients, f));
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void register_all() {
  for (const auto name : agg::aggregator_names()) {
    for (const bool batched : {false, true}) {
      const std::string title =
          std::string(batched ? "batched" : "legacy") + "/" + std::string(name);
      auto* bench = benchmark::RegisterBenchmark(
          title.c_str(), [name = std::string(name), batched](benchmark::State& state) {
            aggregate_benchmark(state, name, batched);
          });
      bench->Args({10, 10})->Args({10, 1000})->Args({50, 100})->Args({100, 1000})->Args(
          {50, 10000});
    }
  }
}
#endif  // ABFT_HAVE_GBENCH

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool use_gbench = false;
  int threads = 1;
  int repeats = 3;
  std::string out_path = "BENCH_agg.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--gbench") == 0) use_gbench = true;
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
    if (std::strncmp(argv[i], "--threads=", 10) == 0) threads = std::atoi(argv[i] + 10);
    if (std::strncmp(argv[i], "--repeats=", 10) == 0) repeats = std::atoi(argv[i] + 10);
  }
  if (use_gbench) {
#if defined(ABFT_HAVE_GBENCH)
    register_all();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
#else
    std::cerr << "google-benchmark not compiled in; using the built-in harness\n";
#endif
  }
  return run_builtin(quick, out_path, std::max(1, threads), std::max(1, repeats));
}

// Extension experiment X4 (DESIGN.md): google-benchmark microbenchmarks of
// every gradient filter across (n, d) shapes, charting the per-round server
// cost.  CGE/CWTM are near-linear scans; Krum/Bulyan pay O(n^2 d) distance
// matrices; the geometric median pays Weiszfeld iterations.
#include <benchmark/benchmark.h>

#include "abft/agg/registry.hpp"
#include "abft/util/rng.hpp"

namespace {

using namespace abft;
using linalg::Vector;

std::vector<Vector> make_gradients(int n, int d, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Vector> gradients;
  gradients.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Vector g(d);
    for (int k = 0; k < d; ++k) g[k] = rng.normal();
    gradients.push_back(std::move(g));
  }
  return gradients;
}

void aggregate_benchmark(benchmark::State& state, const std::string& name) {
  const int n = static_cast<int>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  const int f = std::max(1, n / 5);
  const auto rule = agg::make_aggregator(name);
  const auto gradients = make_gradients(n, d, 42);
  // Some rules reject certain (n, f) shapes (krum: n > 2f+2; bulyan:
  // n >= 4f+3); probe once and skip instead of aborting the whole binary.
  try {
    benchmark::DoNotOptimize(rule->aggregate(gradients, f));
  } catch (const std::invalid_argument& error) {
    state.SkipWithError(error.what());
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rule->aggregate(gradients, f));
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void register_all() {
  for (const auto name : agg::aggregator_names()) {
    const std::string title = "aggregate/" + std::string(name);
    auto* bench = benchmark::RegisterBenchmark(
        title.c_str(), [name = std::string(name)](benchmark::State& state) {
          aggregate_benchmark(state, name);
        });
    bench->Args({10, 10})->Args({10, 1000})->Args({50, 100})->Args({100, 1000});
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

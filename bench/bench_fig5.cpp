// Reproduces Figure 5 (Appendix K): the Fashion-MNIST experiment, here on
// the harder "SynthFashion" substitute (overlapping synthetic classes, 2x
// the class noise of SynthDigits; see DESIGN.md).
//
// Paper shape to reproduce: same ordering as Figure 4 but a lower accuracy
// plateau than SynthDigits — the harder dataset caps every algorithm,
// faulty or not.
#include <iostream>

#include "learn_common.hpp"

int main(int argc, char** argv) {
  learnfig::Options options;
  options.dataset = abft::learn::synth_fashion_options();
  // Same horizon note as bench_fig4.
  options.iterations = 2500;
  options.eval_interval = 125;
  options.seed = 43;
  learnfig::parse_mode_flag(argc, argv, &options);

  std::cout << "Figure 5 — D-SGD on SynthFashion (Fashion-MNIST substitute), n = 10, f = 3\n"
            << "mode: " << abft::agg::to_string(options.mode) << "\n\n";
  const auto curves = learnfig::run_learning_figure(options);
  learnfig::print_learning_figure(curves, std::cout);
  return 0;
}

// Reproduces Figure 5 (Appendix K): the Fashion-MNIST experiment, here on
// the harder "SynthFashion" substitute (overlapping synthetic classes, 1.5x
// the class noise of SynthDigits; see DESIGN.md).  The grid is the
// committed sweep spec specs/sweep_fig5.json run through the sweep layer.
//
// Paper shape to reproduce: same ordering as Figure 4 but a lower accuracy
// plateau than SynthDigits — the harder dataset caps every algorithm,
// faulty or not.
#include <iostream>

#include "learn_common.hpp"

int main(int argc, char** argv) {
  const auto mode = learnfig::parse_mode_flag(argc, argv);

  std::cout << "Figure 5 — D-SGD on SynthFashion (Fashion-MNIST substitute), n = 10, f = 3\n"
            << "mode: " << abft::agg::to_string(mode) << "\n\n";
  const auto curves = learnfig::run_learning_figure("sweep_fig5.json", mode);
  learnfig::print_learning_figure(curves, std::cout);
  return 0;
}

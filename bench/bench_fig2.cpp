// Reproduces Figure 2: loss sum_{i in H} Q_i(x_t) and distance ||x_t - x_H||
// for t in [0, 1500] on the Appendix-J regression instance, for the four
// plotted algorithms (fault-free, CWTM, CGE, plain GD) under the
// gradient-reverse and random fault behaviours.  Final errors are annotated
// below each table, as on the paper's plots.
//
// The grid itself is the committed sweep spec specs/sweep_fig2.json run
// through the sweep layer (`abft_run --sweep` executes the same file); this
// binary only renders the series.  --mode=fast runs every curve on the
// relaxed-parity fast kernels; --csv / --csv-random emit the
// full-resolution series for re-plotting.
#include <iostream>

#include "fig_common.hpp"

int main(int argc, char** argv) {
  constexpr int kIterations = 1500;
  constexpr int kStride = 100;
  const auto options = fig::parse_bench_options(argc, argv, /*allow_csv=*/true);

  if (options.csv) {
    // Full-resolution series for re-plotting: --csv emits the
    // gradient-reverse panel, --csv-random the random panel (only that
    // panel's sub-grid runs).
    const auto panel = fig::run_figures(
        kIterations, options.mode, options.csv_random ? "random" : "gradient-reverse");
    fig::print_figure_csv(panel.front(), std::cout);
    return 0;
  }

  const auto figures = fig::run_figures(kIterations, options.mode);
  std::cout << "Figure 2 — loss and distance vs iteration (t in [0, " << kIterations << "])\n"
            << "mode: " << abft::agg::to_string(options.mode) << "\n"
            << "Paper shape to reproduce: fault-free / CWTM / CGE all converge (distance\n"
            << "within eps = 0.0890 of x_H); plain GD stays biased (gradient-reverse) or\n"
            << "noisy-divergent (random).\n\n";
  for (const auto& figure : figures) fig::print_figure(figure, kStride, std::cout);
  return 0;
}

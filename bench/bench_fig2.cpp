// Reproduces Figure 2: loss sum_{i in H} Q_i(x_t) and distance ||x_t - x_H||
// for t in [0, 1500] on the Appendix-J regression instance, for the four
// plotted algorithms (fault-free, CWTM, CGE, plain GD) under the
// gradient-reverse and random fault behaviours.  Final errors are annotated
// below each table, as on the paper's plots.
//
// --mode=fast runs every curve on the relaxed-parity fast kernels;
// --csv / --csv-random emit the full-resolution series for re-plotting.
#include <iostream>

#include "fig_common.hpp"

int main(int argc, char** argv) {
  constexpr int kIterations = 1500;
  constexpr int kStride = 100;
  const auto options = fig::parse_bench_options(argc, argv, /*allow_csv=*/true);

  if (options.csv) {
    // Full-resolution series for re-plotting: --csv emits the
    // gradient-reverse panel, --csv-random the random panel.
    if (options.csv_random) {
      fig::print_figure_csv(fig::run_figure("random", 200.0, kIterations, options.mode),
                            std::cout);
    } else {
      fig::print_figure_csv(
          fig::run_figure("gradient-reverse", 0.0, kIterations, options.mode), std::cout);
    }
    return 0;
  }

  std::cout << "Figure 2 — loss and distance vs iteration (t in [0, " << kIterations << "])\n"
            << "mode: " << abft::agg::to_string(options.mode) << "\n"
            << "Paper shape to reproduce: fault-free / CWTM / CGE all converge (distance\n"
            << "within eps = 0.0890 of x_H); plain GD stays biased (gradient-reverse) or\n"
            << "noisy-divergent (random).\n\n";
  fig::print_figure(fig::run_figure("gradient-reverse", 0.0, kIterations, options.mode),
                    kStride, std::cout);
  fig::print_figure(fig::run_figure("random", 200.0, kIterations, options.mode), kStride,
                    std::cout);
  return 0;
}

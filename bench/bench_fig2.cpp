// Reproduces Figure 2: loss sum_{i in H} Q_i(x_t) and distance ||x_t - x_H||
// for t in [0, 1500] on the Appendix-J regression instance, for the four
// plotted algorithms (fault-free, CWTM, CGE, plain GD) under the
// gradient-reverse and random fault behaviours.  Final errors are annotated
// below each table, as on the paper's plots.
#include <cstring>
#include <iostream>

#include "fig_common.hpp"

int main(int argc, char** argv) {
  constexpr int kIterations = 1500;
  constexpr int kStride = 100;
  const bool random_panel = argc > 1 && std::strcmp(argv[1], "--csv-random") == 0;
  const bool csv = random_panel || (argc > 1 && std::strcmp(argv[1], "--csv") == 0);

  const abft::attack::GradientReverseFault reverse;
  const abft::attack::RandomGaussianFault random(200.0);
  if (csv) {
    // Full-resolution series for re-plotting: --csv emits the
    // gradient-reverse panel, --csv-random the random panel.
    fig::print_figure_csv(
        fig::run_figure(random_panel ? static_cast<const abft::attack::FaultModel&>(random)
                                     : reverse,
                        kIterations),
        std::cout);
    return 0;
  }

  std::cout << "Figure 2 — loss and distance vs iteration (t in [0, " << kIterations << "])\n"
            << "Paper shape to reproduce: fault-free / CWTM / CGE all converge (distance\n"
            << "within eps = 0.0890 of x_H); plain GD stays biased (gradient-reverse) or\n"
            << "noisy-divergent (random).\n\n";
  fig::print_figure(fig::run_figure(reverse, kIterations), kStride, std::cout);
  fig::print_figure(fig::run_figure(random, kIterations), kStride, std::cout);
  return 0;
}

// Extension experiment X1 (DESIGN.md): sweep the observation-noise level of
// randomized regression instances, measure the induced (2f, eps)-redundancy
// eps, and chart how the final DGD error of CGE and CWTM scales with eps —
// the D*eps error model of Theorems 4/5/6 — together with the theorem
// bounds where their hypotheses hold.
#include <iostream>

#include "abft/agg/registry.hpp"
#include "abft/attack/simple_faults.hpp"
#include "abft/core/bounds.hpp"
#include "abft/core/redundancy.hpp"
#include "abft/opt/schedule.hpp"
#include "abft/regress/generator.hpp"
#include "abft/sim/dgd.hpp"
#include "abft/util/stats.hpp"
#include "abft/util/table.hpp"

using namespace abft;
using linalg::Vector;

namespace {

double run_error(const regress::RegressionProblem& problem, std::string_view filter,
                 const attack::FaultModel& fault, const Vector& x_h) {
  const opt::HarmonicSchedule schedule(0.5);
  auto roster = sim::honest_roster(problem.costs());
  sim::assign_fault(roster, 0, fault);
  sim::DgdConfig config{Vector{0.0, 0.0}, opt::Box::centered_cube(2, 1000.0), &schedule, 1200, 1,
                        99};
  sim::DgdSimulation simulation(std::move(roster), std::move(config));
  const auto aggregator = agg::make_aggregator(filter);
  return linalg::distance(simulation.run(*aggregator).final_estimate(), x_h);
}

}  // namespace

int main() {
  constexpr int kN = 8;
  constexpr int kF = 1;
  constexpr int kSeedsPerNoise = 3;
  const attack::GradientReverseFault fault;

  std::cout << "X1 — noise -> redundancy eps -> final error (n = " << kN << ", f = " << kF
            << ", gradient-reverse, mean over " << kSeedsPerNoise << " seeds)\n\n";

  util::Table table({"noise", "eps", "err(cge)", "err(cwtm)", "thm4 D*eps", "thm5 D*eps"});
  for (const double noise : {0.0, 0.02, 0.05, 0.1, 0.2, 0.4}) {
    std::vector<double> epsilons, cge_errors, cwtm_errors, t4_bounds, t5_bounds;
    for (int seed = 0; seed < kSeedsPerNoise; ++seed) {
      util::Rng rng(1000 + static_cast<std::uint64_t>(seed));
      regress::GeneratorOptions options;
      options.num_agents = kN;
      options.dim = 2;
      options.noise_stddev = noise;
      options.rank_check_subset_size = kN - 2 * kF;
      const auto problem = regress::random_problem(options, rng);
      const regress::RegressionSubsetSolver solver(problem);
      const double eps = core::measure_redundancy(solver, kF).epsilon;
      std::vector<int> honest;
      for (int i = kF; i < kN; ++i) honest.push_back(i);
      const Vector x_h = problem.subset_minimizer(honest);
      epsilons.push_back(eps);
      cge_errors.push_back(run_error(problem, "cge", fault, x_h));
      cwtm_errors.push_back(run_error(problem, "cwtm", fault, x_h));
      const double mu = problem.mu(honest);
      const double gamma = problem.gamma(honest);
      const auto t4 = core::cge_bound_theorem4(kN, kF, mu, gamma);
      const auto t5 = core::cge_bound_theorem5(kN, kF, mu, gamma);
      t4_bounds.push_back(t4.valid ? t4.factor * eps : -1.0);
      t5_bounds.push_back(t5.valid ? t5.factor * eps : -1.0);
    }
    auto cell = [](double v) {
      return v < 0.0 ? std::string("n/a") : util::format_scientific(v, 2);
    };
    table.add_row({util::format_double(noise, 3), util::format_scientific(util::mean(epsilons), 2),
                   util::format_scientific(util::mean(cge_errors), 2),
                   util::format_scientific(util::mean(cwtm_errors), 2),
                   cell(util::mean(t4_bounds)), cell(util::mean(t5_bounds))});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: eps grows ~linearly with noise; measured errors track eps\n"
               "well below the (conservative) theorem bounds; noise = 0 recovers exact\n"
               "fault-tolerance (error ~ 0).\n";
  return 0;
}

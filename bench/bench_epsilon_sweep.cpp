// Extension experiment X1 (DESIGN.md): sweep the observation-noise level of
// randomized regression instances, measure the induced (2f, eps)-redundancy
// eps, and chart how the final DGD error of CGE and CWTM scales with eps —
// the D*eps error model of Theorems 4/5/6 — together with the theorem
// bounds where their hypotheses hold.
//
// The run grid (rules x seeds x noise levels) is the committed sweep spec
// specs/sweep_epsilon.json over the scenario layer's random_regression
// problem; this binary adds the redundancy / theorem-bound analysis, which
// it computes on the very instances the sweep ran
// (scenario::random_regression_instance is deterministic in the spec).
#include <iostream>
#include <map>

#include "abft/core/bounds.hpp"
#include "abft/core/redundancy.hpp"
#include "abft/regress/problem.hpp"
#include "abft/sweep/sweep.hpp"
#include "abft/util/check.hpp"
#include "abft/util/stats.hpp"
#include "abft/util/table.hpp"

using namespace abft;

int main() {
  const auto spec = sweep::load_sweep_file(std::string(ABFT_SPEC_DIR "/sweep_epsilon.json"));
  const auto outcome = sweep::run_sweep(spec);

  // Fold the grid: per noise level, the mean over seeds of eps, the two
  // rules' final errors, and the theorem bounds.  eps / mu / gamma depend
  // only on (noise, seed), so compute them once per instance (on the cge
  // pass) from the run's own spec.
  struct NoiseRow {
    std::vector<double> epsilons, cge_errors, cwtm_errors, t4_bounds, t5_bounds;
  };
  std::vector<std::string> noise_order;
  std::map<std::string, NoiseRow> rows;
  for (const auto& run : outcome.runs) {
    const std::string noise = run.axis_value("variants");
    if (!rows.count(noise)) noise_order.push_back(noise);
    auto& row = rows[noise];
    ABFT_REQUIRE(run.result.distance_to_reference.has_value(),
                 "sweep_epsilon.json runs must have a closed-form honest reference");
    const double error = *run.result.distance_to_reference;
    if (run.axis_value("aggregator") == "cge") {
      row.cge_errors.push_back(error);
      const auto& rspec = run.result.spec;
      const auto problem = scenario::random_regression_instance(rspec);
      const regress::RegressionSubsetSolver solver(problem);
      const double eps = core::measure_redundancy(solver, rspec.f).epsilon;
      std::vector<int> honest;
      for (int i = rspec.f; i < rspec.num_agents; ++i) honest.push_back(i);
      const double mu = problem.mu(honest);
      const double gamma = problem.gamma(honest);
      const auto t4 = core::cge_bound_theorem4(rspec.num_agents, rspec.f, mu, gamma);
      const auto t5 = core::cge_bound_theorem5(rspec.num_agents, rspec.f, mu, gamma);
      row.epsilons.push_back(eps);
      row.t4_bounds.push_back(t4.valid ? t4.factor * eps : -1.0);
      row.t5_bounds.push_back(t5.valid ? t5.factor * eps : -1.0);
    } else {
      row.cwtm_errors.push_back(error);
    }
  }

  std::cout << "X1 — noise -> redundancy eps -> final error (n = 8, f = 1, gradient-reverse,\n"
               "mean over " << rows.begin()->second.cge_errors.size()
            << " seeds; grid: specs/sweep_epsilon.json)\n\n";

  util::Table table({"noise", "eps", "err(cge)", "err(cwtm)", "thm4 D*eps", "thm5 D*eps"});
  auto cell = [](double v) {
    return v < 0.0 ? std::string("n/a") : util::format_scientific(v, 2);
  };
  for (const auto& noise : noise_order) {
    const auto& row = rows.at(noise);
    table.add_row({noise, util::format_scientific(util::mean(row.epsilons), 2),
                   util::format_scientific(util::mean(row.cge_errors), 2),
                   util::format_scientific(util::mean(row.cwtm_errors), 2),
                   cell(util::mean(row.t4_bounds)), cell(util::mean(row.t5_bounds))});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: eps grows ~linearly with noise; measured errors track eps\n"
               "well below the (conservative) theorem bounds; noise = 0 recovers exact\n"
               "fault-tolerance (error ~ 0).\n";
  return 0;
}

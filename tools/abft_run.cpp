// abft_run — the scenario/sweep CLI: executes one declarative ScenarioSpec
// (src/abft/scenario/scenario.hpp for the schema) or one grid SweepSpec
// (src/abft/sweep/sweep.hpp) and reports the outcome.
//
//   abft_run spec.json                     run, print a human summary
//   abft_run spec.json --out=result.json   also write the machine summary
//   abft_run spec.json --csv               dump the estimate trace as CSV
//   abft_run spec.json --agg=cge --mode=fast --iterations=200 --seed=7
//                                          override spec fields inline
//   abft_run --sweep sweep.json            expand + run the grid, print a
//                                          summary table
//   abft_run --sweep sweep.json --csv=grid.csv --out=grid.json --threads=4
//                                          aggregated CSV/JSON result set,
//                                          runner width override
//   abft_run --compare a.json b.json --rtol=1e-9
//                                          run both specs (scenario or
//                                          sweep) and diff their outcomes
//                                          within tolerance; exit 1 on drift
//   abft_run --list                        known rules / drivers / faults
//
// Documents carrying a "sweep" block are auto-detected, so --sweep is
// optional but self-documenting.  The committed specs under specs/
// reproduce the paper's setups (fig2, table1, the sweep grids) and the CI
// smoke goldens.
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "abft/agg/registry.hpp"
#include "abft/scenario/scenario.hpp"
#include "abft/sweep/sweep.hpp"

namespace {

void print_usage(std::ostream& os) {
  os << "usage: abft_run <spec.json> [--out=FILE] [--csv[=FILE]] [--agg=RULE] [--mode=exact|fast]\n"
        "                [--iterations=N] [--seed=N] [--threads=N] [--quiet]\n"
        "       abft_run --sweep <sweep.json> [--csv[=FILE]] [--out=FILE] [--threads=N]\n"
        "                [--quiet]\n"
        "       abft_run --compare <a.json> <b.json> [--rtol=X] [--threads=N]\n"
        "       abft_run --list\n";
}

void print_list() {
  std::cout << "drivers: dgd, dsgd, p2p, p2p_auth\n";
  std::cout << "problems: paper_regression, quadratic, random_regression (dgd/p2p); "
               "synthetic (dsgd)\n";
  std::cout << "aggregation rules:";
  for (const auto name : abft::agg::aggregator_names()) std::cout << ' ' << name;
  std::cout << "\n  or hierarchical: \"aggregator\": {\"hierarchy\": {\"shards\", \"leaf_rule\","
               " \"root_rule\", \"f_leaf\"}}\n"
               "fault kinds (dgd/p2p): gradient-reverse, random, zero, sign-flip-scale,\n"
               "  rotating, little-is-enough, mean-reverse, mimic-smallest, silent\n"
               "fault kinds (dsgd): label-flip, gradient-reverse\n"
               "p2p relay_strategy kinds: honest, equivocate, silent, fixed-value;\n"
               "  p2p_auth ds_strategy kinds: honest, equivocate, silent\n"
               "axes: participation, straggler_probability, perturbation_seed, churn\n"
               "async (dgd): quorum, deadline, staleness_cap, arrival {kind: uniform |\n"
               "  exponential, scale} — event-driven quorum-or-deadline rounds\n"
               "sweep axes: aggregator, mode, f, shards, quorum, staleness_cap, seed,\n"
               "  drop_probability, participation, straggler_probability, faults (presets),\n"
               "  variants (patches)\n";
}

bool take_value(std::string_view arg, std::string_view flag, std::string* value) {
  if (arg.substr(0, flag.size()) != flag) return false;
  *value = std::string(arg.substr(flag.size()));
  return true;
}

/// Opens `path` and streams `write(out)` into it; false (with a message on
/// stderr) when the file cannot be created.
template <typename Writer>
bool write_file(const std::string& path, Writer&& write) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "abft_run: cannot write " << path << "\n";
    return false;
  }
  write(out);
  return true;
}

// ------------------------------- compare ------------------------------------

/// The comparable outcome of one spec execution: scalar summaries keyed by
/// run id ("" for a lone scenario).  wall_ms is deliberately absent — it is
/// the one column two correct runs never share.
struct OutcomeRow {
  double final_cost = 0.0;
  std::optional<double> distance;
  int eliminated = 0;
  int departed = 0;
};

std::map<std::string, OutcomeRow> execute_for_compare(const std::string& path, int threads) {
  std::map<std::string, OutcomeRow> rows;
  const auto json = abft::util::parse_json_file(path);
  if (abft::sweep::is_sweep_json(json)) {
    const auto outcome = abft::sweep::run_sweep(abft::sweep::parse_sweep(json), threads);
    for (const auto& run : outcome.runs) {
      rows[run.run_id] = OutcomeRow{run.result.final_cost, run.result.distance_to_reference,
                                    run.result.eliminated_agents, run.result.departed_agents};
    }
  } else {
    auto spec = abft::scenario::parse_scenario(json);
    if (threads > 0) spec.threads = threads;
    const auto result = abft::scenario::run_scenario(spec);
    rows[""] = OutcomeRow{result.final_cost, result.distance_to_reference,
                          result.eliminated_agents, result.departed_agents};
  }
  return rows;
}

// The shared nan-matches-nan contract (util::numbers_match) keeps --compare
// in lockstep with compare_sweep.py / compare_scenario.py / bench_diff.py.
using abft::util::numbers_match;

int compare_specs(const std::string& path_a, const std::string& path_b, double rtol,
                  int threads) {
  const auto rows_a = execute_for_compare(path_a, threads);
  const auto rows_b = execute_for_compare(path_b, threads);
  int mismatches = 0;
  auto complain = [&](const std::string& run, const std::string& what) {
    std::cout << "  " << (run.empty() ? "(scenario)" : run) << ": " << what << "\n";
    ++mismatches;
  };
  for (const auto& [run_id, a] : rows_a) {
    const auto found = rows_b.find(run_id);
    if (found == rows_b.end()) {
      complain(run_id, "only in " + path_a);
      continue;
    }
    const auto& b = found->second;
    if (!numbers_match(a.final_cost, b.final_cost, rtol)) {
      complain(run_id, "final_cost " + std::to_string(a.final_cost) + " vs " +
                           std::to_string(b.final_cost));
    }
    if (a.distance.has_value() != b.distance.has_value() ||
        (a.distance && !numbers_match(*a.distance, *b.distance, rtol))) {
      complain(run_id,
               "distance_to_reference " +
                   (a.distance ? std::to_string(*a.distance) : std::string("none")) + " vs " +
                   (b.distance ? std::to_string(*b.distance) : std::string("none")));
    }
    if (a.eliminated != b.eliminated) {
      complain(run_id, "eliminated " + std::to_string(a.eliminated) + " vs " +
                           std::to_string(b.eliminated));
    }
    if (a.departed != b.departed) {
      complain(run_id, "departed " + std::to_string(a.departed) + " vs " +
                           std::to_string(b.departed));
    }
  }
  for (const auto& [run_id, b] : rows_b) {
    if (!rows_a.count(run_id)) complain(run_id, "only in " + path_b);
  }
  if (mismatches > 0) {
    std::cout << "abft_run --compare: " << mismatches << " difference(s) between " << path_a
              << " and " << path_b << " (rtol " << rtol << ")\n";
    return 1;
  }
  std::cout << "abft_run --compare: " << path_a << " and " << path_b << " match ("
            << rows_a.size() << " run(s), rtol " << rtol << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> spec_paths;
  std::string out_path;
  std::string csv_path;
  bool sweep_requested = false;
  bool compare_requested = false;
  bool csv = false;
  bool quiet = false;
  std::string agg_override;
  std::string mode_override;
  std::string iterations_override;
  std::string seed_override;
  std::string threads_override;
  std::string rtol_text;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--list") {
      print_list();
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    }
    if (arg == "--sweep") {
      sweep_requested = true;
    } else if (arg == "--compare") {
      compare_requested = true;
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (take_value(arg, "--csv=", &csv_path)) {
      csv = true;
    } else if (take_value(arg, "--out=", &out_path) ||
               take_value(arg, "--agg=", &agg_override) ||
               take_value(arg, "--mode=", &mode_override) ||
               take_value(arg, "--iterations=", &iterations_override) ||
               take_value(arg, "--seed=", &seed_override) ||
               take_value(arg, "--threads=", &threads_override) ||
               take_value(arg, "--rtol=", &rtol_text)) {
      // handled
    } else if (!arg.empty() && arg.front() == '-') {
      std::cerr << "abft_run: unknown option " << arg << "\n";
      print_usage(std::cerr);
      return 2;
    } else {
      spec_paths.emplace_back(arg);
    }
  }

  try {
    const int threads = threads_override.empty() ? 0 : std::stoi(threads_override);

    if (compare_requested) {
      if (spec_paths.size() != 2) {
        std::cerr << "abft_run: --compare needs exactly two spec files\n";
        return 2;
      }
      if (csv || !csv_path.empty() || !out_path.empty() || !agg_override.empty() ||
          !mode_override.empty() || !iterations_override.empty() || !seed_override.empty() ||
          quiet || sweep_requested) {
        std::cerr << "abft_run: --compare takes only --rtol and --threads\n";
        return 2;
      }
      const double rtol = rtol_text.empty() ? 1e-12 : std::stod(rtol_text);
      return compare_specs(spec_paths[0], spec_paths[1], rtol, threads);
    }
    if (!rtol_text.empty()) {
      std::cerr << "abft_run: --rtol applies to --compare only\n";
      return 2;
    }

    if (spec_paths.size() != 1) {
      std::cerr << (spec_paths.empty() ? "abft_run: no spec file given\n"
                                       : "abft_run: more than one spec file given\n");
      print_usage(std::cerr);
      return 2;
    }
    const auto json = abft::util::parse_json_file(spec_paths.front());

    if (sweep_requested || abft::sweep::is_sweep_json(json)) {
      if (!agg_override.empty() || !mode_override.empty() || !iterations_override.empty() ||
          !seed_override.empty()) {
        std::cerr << "abft_run: spec-field overrides apply to scenario specs; edit the sweep's"
                     " base instead\n";
        return 2;
      }
      const auto outcome = abft::sweep::run_sweep(abft::sweep::parse_sweep(json), threads);
      if (csv && csv_path.empty()) {
        abft::sweep::write_sweep_csv(outcome, std::cout);
      } else if (!quiet) {
        abft::sweep::print_sweep(outcome, std::cout);
      }
      if (!csv_path.empty() && !write_file(csv_path, [&](std::ostream& out) {
            abft::sweep::write_sweep_csv(outcome, out);
          })) {
        return 1;
      }
      if (!out_path.empty() && !write_file(out_path, [&](std::ostream& out) {
            abft::sweep::write_sweep_json(outcome, out);
          })) {
        return 1;
      }
      return 0;
    }

    abft::scenario::ScenarioSpec spec = abft::scenario::parse_scenario(json);
    if (!agg_override.empty()) spec.aggregator = agg_override;
    if (!mode_override.empty()) spec.mode = abft::agg::agg_mode_from_string(mode_override);
    if (!iterations_override.empty()) spec.iterations = std::stoi(iterations_override);
    if (!seed_override.empty()) spec.seed = std::stoull(seed_override);
    if (threads > 0) spec.threads = threads;

    const auto result = abft::scenario::run_scenario(spec);
    if (csv && csv_path.empty()) {
      abft::scenario::write_trace_csv(result, std::cout);
    } else if (!quiet) {
      abft::scenario::print_result(result, std::cout);
    }
    if (!csv_path.empty() && !write_file(csv_path, [&](std::ostream& out) {
          abft::scenario::write_trace_csv(result, out);
        })) {
      return 1;
    }
    if (!out_path.empty() && !write_file(out_path, [&](std::ostream& out) {
          abft::scenario::write_result_json(result, out);
        })) {
      return 1;
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "abft_run: " << error.what() << "\n";
    return 1;
  }
}

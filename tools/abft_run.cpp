// abft_run — the scenario CLI: executes one declarative ScenarioSpec (see
// src/abft/scenario/scenario.hpp for the schema) on any of the three
// drivers and reports the outcome.
//
//   abft_run spec.json                     run, print a human summary
//   abft_run spec.json --out=result.json   also write the machine summary
//   abft_run spec.json --csv               dump the estimate trace as CSV
//   abft_run spec.json --agg=cge --mode=fast --iterations=200 --seed=7
//                                          override spec fields inline
//   abft_run --list                        known rules / drivers / faults
//
// The committed specs under specs/ reproduce the paper's setups (fig2, fig3,
// table1) and the CI smoke goldens.
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>

#include "abft/agg/registry.hpp"
#include "abft/scenario/scenario.hpp"

namespace {

void print_usage(std::ostream& os) {
  os << "usage: abft_run <spec.json> [--out=FILE] [--csv] [--agg=RULE] [--mode=exact|fast]\n"
        "                [--iterations=N] [--seed=N] [--threads=N] [--quiet]\n"
        "       abft_run --list\n";
}

void print_list() {
  std::cout << "drivers: dgd, dsgd, p2p, p2p_auth\n";
  std::cout << "problems: paper_regression, quadratic (dgd/p2p); synthetic (dsgd)\n";
  std::cout << "aggregation rules:";
  for (const auto name : abft::agg::aggregator_names()) std::cout << ' ' << name;
  std::cout << "\nfault kinds (dgd/p2p): gradient-reverse, random, zero, sign-flip-scale,\n"
               "  rotating, little-is-enough, mean-reverse, mimic-smallest, silent\n"
               "fault kinds (dsgd): label-flip, gradient-reverse\n"
               "axes: participation, straggler_probability, perturbation_seed, churn\n";
}

bool take_value(std::string_view arg, std::string_view flag, std::string* value) {
  if (arg.substr(0, flag.size()) != flag) return false;
  *value = std::string(arg.substr(flag.size()));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path;
  std::string out_path;
  bool csv = false;
  bool quiet = false;
  std::string agg_override;
  std::string mode_override;
  std::string iterations_override;
  std::string seed_override;
  std::string threads_override;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--list") {
      print_list();
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    }
    if (arg == "--csv") {
      csv = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (take_value(arg, "--out=", &out_path) ||
               take_value(arg, "--agg=", &agg_override) ||
               take_value(arg, "--mode=", &mode_override) ||
               take_value(arg, "--iterations=", &iterations_override) ||
               take_value(arg, "--seed=", &seed_override) ||
               take_value(arg, "--threads=", &threads_override)) {
      // handled
    } else if (!arg.empty() && arg.front() == '-') {
      std::cerr << "abft_run: unknown option " << arg << "\n";
      print_usage(std::cerr);
      return 2;
    } else if (spec_path.empty()) {
      spec_path = std::string(arg);
    } else {
      std::cerr << "abft_run: more than one spec file given\n";
      return 2;
    }
  }
  if (spec_path.empty()) {
    print_usage(std::cerr);
    return 2;
  }

  try {
    abft::scenario::ScenarioSpec spec = abft::scenario::load_scenario_file(spec_path);
    if (!agg_override.empty()) spec.aggregator = agg_override;
    if (!mode_override.empty()) spec.mode = abft::agg::agg_mode_from_string(mode_override);
    if (!iterations_override.empty()) spec.iterations = std::stoi(iterations_override);
    if (!seed_override.empty()) spec.seed = std::stoull(seed_override);
    if (!threads_override.empty()) spec.threads = std::stoi(threads_override);

    const auto result = abft::scenario::run_scenario(spec);
    if (csv) {
      abft::scenario::write_trace_csv(result, std::cout);
    } else if (!quiet) {
      abft::scenario::print_result(result, std::cout);
    }
    if (!out_path.empty()) {
      std::ofstream out(out_path);
      if (!out) {
        std::cerr << "abft_run: cannot write " << out_path << "\n";
        return 1;
      }
      abft::scenario::write_result_json(result, out);
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "abft_run: " << error.what() << "\n";
    return 1;
  }
}

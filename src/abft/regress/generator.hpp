// Randomized regression instance generator with controllable redundancy.
// B = A x* + N with N ~ N(0, noise^2): noise = 0 gives exact 2f-redundancy
// (Definition 1) provided every (n-2f)-row submatrix of A is full rank;
// increasing noise grows the measured (2f, eps)-redundancy eps roughly
// linearly — the knob behind bench_epsilon_sweep.
#pragma once

#include "abft/regress/problem.hpp"
#include "abft/util/rng.hpp"

namespace abft::regress {

struct GeneratorOptions {
  int num_agents = 6;
  int dim = 2;
  double noise_stddev = 0.05;
  /// Verify that every subset of this size has full column rank (0 disables;
  /// pass n - 2f to certify the 2f-redundancy precondition).
  int rank_check_subset_size = 0;
  /// The ground truth x*; defaults to the all-ones vector.
  std::vector<double> x_star = {};
};

/// Draws rows uniformly on the unit sphere and observations B = A x* + N.
/// Retries (bounded) until the rank certificate holds.
RegressionProblem random_problem(const GeneratorOptions& options, util::Rng& rng);

}  // namespace abft::regress

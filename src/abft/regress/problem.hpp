// Distributed linear regression — the workload of Section 5 / Appendix J.
// Agent i holds a row A_i and observation B_i = A_i x* + N_i and the cost
// Q_i(x) = (B_i - A_i x)^2.  Subset aggregates minimize in closed form via
// least squares, which makes the redundancy sweep and the exhaustive
// algorithm exact.
#pragma once

#include <memory>
#include <vector>

#include "abft/core/subset_solver.hpp"
#include "abft/linalg/matrix.hpp"
#include "abft/opt/quadratic.hpp"

namespace abft::regress {

using linalg::Matrix;
using linalg::Vector;

class RegressionProblem {
 public:
  /// a: n x d design matrix (one row per agent); b: n observations.
  RegressionProblem(Matrix a, Vector b);

  /// The exact instance of Appendix J (eq. 132): n = 6, d = 2,
  /// B = A x* + N with x* = (1, 1).
  static RegressionProblem paper_instance();

  [[nodiscard]] int num_agents() const noexcept { return a_.rows(); }
  [[nodiscard]] int dim() const noexcept { return a_.cols(); }

  [[nodiscard]] const Matrix& design() const noexcept { return a_; }
  [[nodiscard]] const Vector& observations() const noexcept { return b_; }

  /// Agent i's cost Q_i.
  [[nodiscard]] const opt::ResidualSquaredCost& cost(int agent) const;

  /// Cost pointers for the given agents (all agents when empty()).
  [[nodiscard]] std::vector<const opt::CostFunction*> costs(
      const std::vector<int>& agents = {}) const;

  /// Closed-form argmin of sum_{i in S} Q_i: least squares on (A_S, B_S).
  /// Requires A_S to have full column rank.
  [[nodiscard]] Vector subset_minimizer(const std::vector<int>& agents) const;

  /// Column rank of A_S.
  [[nodiscard]] int subset_rank(const std::vector<int>& agents) const;

  /// Lipschitz-smoothness constant over the given agents (Assumption 2):
  /// max_i 2 ||A_i||^2.
  [[nodiscard]] double mu(const std::vector<int>& agents = {}) const;

  /// Strong-convexity constant of the *average* cost over the given agents
  /// (Assumption 3): (2/|S|) lambda_min(A_S^T A_S).
  [[nodiscard]] double gamma(const std::vector<int>& agents = {}) const;

  /// Empirical estimate of the Assumption-5 constant lambda: the max over
  /// sampled points x of ||grad Q_i(x) - grad Q_j(x)|| /
  /// max(||grad Q_i(x)||, ||grad Q_j(x)||) over honest pairs.
  [[nodiscard]] double estimate_lambda(const std::vector<int>& agents,
                                       const std::vector<Vector>& sample_points) const;

 private:
  [[nodiscard]] std::vector<int> resolve(const std::vector<int>& agents) const;

  Matrix a_;
  Vector b_;
  std::vector<opt::ResidualSquaredCost> costs_;
};

/// core::SubsetSolver adapter backed by closed-form least squares.
class RegressionSubsetSolver final : public core::SubsetSolver {
 public:
  explicit RegressionSubsetSolver(const RegressionProblem& problem) : problem_(problem) {}

  [[nodiscard]] int num_agents() const noexcept override { return problem_.num_agents(); }
  [[nodiscard]] int dim() const noexcept override { return problem_.dim(); }
  [[nodiscard]] Vector solve(const std::vector<int>& agents) const override {
    return problem_.subset_minimizer(agents);
  }

 private:
  const RegressionProblem& problem_;
};

}  // namespace abft::regress

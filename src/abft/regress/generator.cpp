#include "abft/regress/generator.hpp"

#include <cmath>

#include "abft/util/check.hpp"
#include "abft/util/combinatorics.hpp"

namespace abft::regress {

namespace {

bool all_subsets_full_rank(const RegressionProblem& problem, int subset_size) {
  bool ok = true;
  util::for_each_combination(problem.num_agents(), subset_size,
                             [&](const std::vector<int>& subset) {
                               if (problem.subset_rank(subset) < problem.dim()) {
                                 ok = false;
                                 return false;
                               }
                               return true;
                             });
  return ok;
}

}  // namespace

RegressionProblem random_problem(const GeneratorOptions& options, util::Rng& rng) {
  ABFT_REQUIRE(options.num_agents > 0 && options.dim > 0, "generator needs n, d > 0");
  ABFT_REQUIRE(options.noise_stddev >= 0.0, "noise stddev must be non-negative");
  ABFT_REQUIRE(options.rank_check_subset_size <= options.num_agents,
               "rank-check subset size exceeds n");
  ABFT_REQUIRE(options.rank_check_subset_size == 0 ||
                   options.rank_check_subset_size >= options.dim,
               "rank certificate impossible: subset smaller than dimension");

  Vector x_star(options.dim);
  if (options.x_star.empty()) {
    for (int i = 0; i < options.dim; ++i) x_star[i] = 1.0;
  } else {
    ABFT_REQUIRE(static_cast<int>(options.x_star.size()) == options.dim,
                 "x_star dimension mismatch");
    for (int i = 0; i < options.dim; ++i) x_star[i] = options.x_star[static_cast<std::size_t>(i)];
  }

  constexpr int kMaxAttempts = 64;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    linalg::Matrix a(options.num_agents, options.dim);
    for (int r = 0; r < options.num_agents; ++r) {
      // Uniform direction on the sphere: normalized Gaussian.
      Vector row(options.dim);
      double norm = 0.0;
      do {
        for (int c = 0; c < options.dim; ++c) row[c] = rng.normal();
        norm = row.norm();
      } while (norm < 1e-9);
      row /= norm;
      a.set_row(r, row);
    }
    Vector b(options.num_agents);
    for (int r = 0; r < options.num_agents; ++r) {
      b[r] = linalg::dot(a.row(r), x_star) + rng.normal(0.0, options.noise_stddev);
    }
    RegressionProblem problem(std::move(a), std::move(b));
    if (options.rank_check_subset_size == 0 ||
        all_subsets_full_rank(problem, options.rank_check_subset_size)) {
      return problem;
    }
  }
  ABFT_REQUIRE(false, "could not generate a full-rank instance (raise n or d)");
}

}  // namespace abft::regress

#include "abft/regress/problem.hpp"

#include <algorithm>
#include <numeric>

#include "abft/linalg/decompose.hpp"
#include "abft/linalg/eigen_sym.hpp"
#include "abft/util/check.hpp"

namespace abft::regress {

RegressionProblem::RegressionProblem(Matrix a, Vector b) : a_(std::move(a)), b_(std::move(b)) {
  ABFT_REQUIRE(a_.rows() == b_.dim(), "design/observation shape mismatch");
  ABFT_REQUIRE(a_.rows() > 0 && a_.cols() > 0, "regression needs a non-empty design");
  costs_.reserve(static_cast<std::size_t>(a_.rows()));
  for (int i = 0; i < a_.rows(); ++i) costs_.emplace_back(a_.row(i), b_[i]);
}

RegressionProblem RegressionProblem::paper_instance() {
  // Appendix J, eq. (132).
  const Matrix a{{1.0, 0.0}, {0.8, 0.5}, {0.5, 0.8}, {0.0, 1.0}, {-0.5, 0.8}, {-0.8, 0.5}};
  const Vector b{0.9108, 1.3349, 1.3376, 1.0033, 0.2142, -0.3615};
  return RegressionProblem(a, b);
}

const opt::ResidualSquaredCost& RegressionProblem::cost(int agent) const {
  ABFT_REQUIRE(0 <= agent && agent < num_agents(), "agent index out of range");
  return costs_[static_cast<std::size_t>(agent)];
}

std::vector<int> RegressionProblem::resolve(const std::vector<int>& agents) const {
  if (!agents.empty()) return agents;
  std::vector<int> everyone(static_cast<std::size_t>(num_agents()));
  std::iota(everyone.begin(), everyone.end(), 0);
  return everyone;
}

std::vector<const opt::CostFunction*> RegressionProblem::costs(
    const std::vector<int>& agents) const {
  std::vector<const opt::CostFunction*> out;
  for (int i : resolve(agents)) {
    ABFT_REQUIRE(0 <= i && i < num_agents(), "agent index out of range");
    out.push_back(&costs_[static_cast<std::size_t>(i)]);
  }
  return out;
}

Vector RegressionProblem::subset_minimizer(const std::vector<int>& agents) const {
  const auto selected = resolve(agents);
  const Matrix a_s = a_.select_rows(selected);
  Vector b_s(static_cast<int>(selected.size()));
  for (std::size_t i = 0; i < selected.size(); ++i) b_s[static_cast<int>(i)] = b_[selected[i]];
  return linalg::least_squares(a_s, b_s);
}

int RegressionProblem::subset_rank(const std::vector<int>& agents) const {
  return linalg::column_rank(a_.select_rows(resolve(agents)));
}

double RegressionProblem::mu(const std::vector<int>& agents) const {
  double worst = 0.0;
  for (int i : resolve(agents)) {
    worst = std::max(worst, costs_[static_cast<std::size_t>(i)].gradient_lipschitz());
  }
  return worst;
}

double RegressionProblem::gamma(const std::vector<int>& agents) const {
  const auto selected = resolve(agents);
  const Matrix a_s = a_.select_rows(selected);
  const double lambda_min = linalg::smallest_eigenvalue(linalg::gram(a_s));
  return 2.0 * lambda_min / static_cast<double>(selected.size());
}

double RegressionProblem::estimate_lambda(const std::vector<int>& agents,
                                          const std::vector<Vector>& sample_points) const {
  ABFT_REQUIRE(!sample_points.empty(), "lambda estimate needs sample points");
  const auto selected = resolve(agents);
  ABFT_REQUIRE(selected.size() >= 2, "lambda estimate needs at least two agents");
  double lambda = 0.0;
  for (const auto& x : sample_points) {
    for (std::size_t i = 0; i < selected.size(); ++i) {
      const Vector gi = costs_[static_cast<std::size_t>(selected[i])].gradient(x);
      for (std::size_t j = i + 1; j < selected.size(); ++j) {
        const Vector gj = costs_[static_cast<std::size_t>(selected[j])].gradient(x);
        const double denom = std::max(gi.norm(), gj.norm());
        if (denom <= 1e-12) continue;
        lambda = std::max(lambda, linalg::distance(gi, gj) / denom);
      }
    }
  }
  return lambda;
}

}  // namespace abft::regress

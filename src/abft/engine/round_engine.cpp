#include "abft/engine/round_engine.hpp"

#include <algorithm>

#include "abft/util/check.hpp"

namespace abft::engine {

RoundEngine::RoundEngine(std::vector<unsigned char> faulty, int dim, RoundEngineConfig config)
    : faulty_(std::move(faulty)), dim_(dim), config_(std::move(config)) {
  ABFT_REQUIRE(!faulty_.empty(), "round engine needs at least one agent");
  ABFT_REQUIRE(dim_ > 0, "round engine needs a positive dimension");
  // ThreadPool(1) spawns no workers and parallel_for degenerates to a direct
  // call, so the pool is constructed unconditionally and every phase
  // dispatches through it without a serial/parallel branch.
  threads_ = std::max(1, config_.threads);
  pool_ = std::make_unique<agg::ThreadPool>(threads_);
  workspace_.parallel_threads = threads_;
  workspace_.pool = pool_.get();
  workspace_.mode = config_.mode;
  workspace_.precision = config_.precision;
  planner_ = RoundPlanner(config_.axes, roster_size());
  payload_row_.assign(faulty_.size(), -1);
  reset(0);
}

void RoundEngine::reset(int declared_f) {
  ABFT_REQUIRE(declared_f >= 0, "declared fault bound must be non-negative");
  // Independent stream per agent so behaviour is invariant to roster order
  // (and to the thread count: each agent owns its stream outright).  Streams
  // are re-derived per run, so repeated runs replay identically.
  util::Rng master(config_.seed);
  agent_rng_.clear();
  agent_rng_.reserve(faulty_.size());
  for (std::size_t i = 0; i < faulty_.size(); ++i) agent_rng_.push_back(master.split());
  planner_.reset();
  members_.resize(faulty_.size());
  for (std::size_t i = 0; i < faulty_.size(); ++i) members_[i] = static_cast<int>(i);
  member_mask_.assign(faulty_.size(), 1);
  declared_f_ = declared_f;
  current_f_ = declared_f;
  eliminated_ = 0;
  departed_ = 0;
  kept_ = 0;
}

void RoundEngine::begin_round(int round) {
  planner_.begin_round(round);
  for (const int agent : planner_.churned_this_round()) {
    if (is_member(agent)) depart(agent);
  }
  ABFT_REQUIRE(!members_.empty(), "every agent has left the system");

  present_.clear();
  honest_rows_.clear();
  faulty_rows_.clear();
  std::fill(payload_row_.begin(), payload_row_.end(), -1);
  for (const int agent : members_) {
    if (!planner_.participates(agent)) continue;
    const int row = static_cast<int>(present_.size());
    payload_row_[static_cast<std::size_t>(agent)] = row;
    present_.push_back(agent);
    (faulty_[static_cast<std::size_t>(agent)] != 0 ? faulty_rows_ : honest_rows_).push_back(row);
  }
  // The payload buffer itself is shaped lazily on the first emit_* call:
  // drivers that run their own produce buffers (p2p) never pay for the
  // engine's n x d double buffer.
  payload_shaped_ = false;
  silent_.assign(present_.size(), 0);
  kept_ = 0;
}

void RoundEngine::ensure_payload() {
  if (!payload_shaped_) {
    payload_.reshape(static_cast<int>(present_.size()), dim_);
    payload_shaped_ = true;
  }
}

int usable_fault_bound(const agg::GradientAggregator& rule, int declared_f, int current_f,
                       int kept, int members_n, int roster_n) {
  if (kept <= 0) return -1;
  if (declared_f > rule.max_usable_f(roster_n) || declared_f < rule.min_usable_f()) {
    // Misconfigured from the start: the legacy clamp, under which rules
    // with a real precondition (CWTM/Krum/Bulyan) throw it and rules with
    // only the generic f < n bound ran clamped — exactly the pre-engine
    // driver behaviour.
    return std::max(0, std::min(current_f, kept - 1));
  }
  // A permanently shrunk membership that can no longer tolerate the
  // adversaries known to remain is unsound to aggregate over at ANY clamped
  // budget — the filter would run weaker than the adversary count.  Hold.
  // (Eliminations shrink current_f alongside members_n and never trip this;
  // honest churn shrinks members_n alone and can.)
  if (current_f > rule.max_usable_f(members_n)) return -1;
  // A thin round of a valid configuration aggregates with the strongest f
  // the rule tolerates at this row count, or holds position when the rule
  // cannot run that thin at all.
  const int rule_cap = rule.max_usable_f(kept);
  if (rule_cap < 0) return -1;
  const int usable_f = std::max(0, std::min({current_f, kept - 1, rule_cap}));
  if (usable_f < rule.min_usable_f()) return -1;
  return usable_f;
}

bool RoundEngine::aggregate(const agg::GradientAggregator& rule, Vector& out) {
  const int usable_f = usable_fault_bound(rule, declared_f_, current_f_, kept_,
                                          static_cast<int>(members_.size()), roster_size());
  if (usable_f < 0) return false;
  rule.aggregate_into(out, ingest_, usable_f, workspace_);
  return true;
}

void RoundEngine::eliminate(int agent) {
  // Step S1: a missing reply in a synchronous system is necessarily faulty —
  // eliminate the sender and shrink both n and f.
  remove_member(agent);
  current_f_ = std::max(0, current_f_ - 1);
  ++eliminated_;
}

void RoundEngine::depart(int agent) {
  // Churn: a faulty departure means one fewer adversary the filter must
  // tolerate; an honest departure only shrinks n.
  remove_member(agent);
  if (faulty_[static_cast<std::size_t>(agent)] != 0) current_f_ = std::max(0, current_f_ - 1);
  ++departed_;
}

void RoundEngine::remove_member(int agent) {
  const auto it = std::find(members_.begin(), members_.end(), agent);
  ABFT_ENSURE(it != members_.end(), "removing an agent that is not a member");
  members_.erase(it);
  member_mask_[static_cast<std::size_t>(agent)] = 0;
}

}  // namespace abft::engine

#include "abft/engine/axes.hpp"

#include <algorithm>

#include "abft/util/check.hpp"

namespace abft::engine {

RoundPlanner::RoundPlanner(ScenarioAxes axes, int roster_size)
    : axes_(std::move(axes)), roster_size_(roster_size), rng_(axes_.perturbation_seed) {
  ABFT_REQUIRE(roster_size_ > 0, "planner needs a non-empty roster");
  ABFT_REQUIRE(0.0 < axes_.participation && axes_.participation <= 1.0,
               "participation must be in (0, 1]");
  ABFT_REQUIRE(0.0 <= axes_.straggler_probability && axes_.straggler_probability < 1.0,
               "straggler probability must be in [0, 1)");
  for (const auto& event : axes_.churn) {
    ABFT_REQUIRE(event.round >= 0, "churn round must be non-negative");
    ABFT_REQUIRE(0 <= event.agent && event.agent < roster_size_,
                 "churn agent out of roster range");
  }
  // Fire events in round order regardless of spec order.
  std::stable_sort(axes_.churn.begin(), axes_.churn.end(),
                   [](const ChurnEvent& a, const ChurnEvent& b) { return a.round < b.round; });
  reset();
}

void RoundPlanner::reset() {
  rng_ = util::Rng(axes_.perturbation_seed);
  churn_cursor_ = 0;
  churned_now_.clear();
  out_this_round_.assign(static_cast<std::size_t>(roster_size_), 0);
  straggle_this_round_.assign(static_cast<std::size_t>(roster_size_), 0);
}

void RoundPlanner::begin_round(int round) {
  churned_now_.clear();
  while (churn_cursor_ < axes_.churn.size() &&
         axes_.churn[churn_cursor_].round <= round) {
    churned_now_.push_back(axes_.churn[churn_cursor_].agent);
    ++churn_cursor_;
  }
  // One coin per roster agent, in roster order, every round the axis is
  // enabled — including churned or eliminated agents — so membership changes
  // can never shift the stream under later agents' feet.
  if (axes_.participation < 1.0) {
    for (int i = 0; i < roster_size_; ++i) {
      out_this_round_[static_cast<std::size_t>(i)] =
          rng_.uniform() >= axes_.participation ? 1 : 0;
    }
  }
  if (axes_.straggler_probability > 0.0) {
    for (int i = 0; i < roster_size_; ++i) {
      straggle_this_round_[static_cast<std::size_t>(i)] =
          rng_.uniform() < axes_.straggler_probability ? 1 : 0;
    }
  }
}

bool RoundPlanner::participates(int agent) const noexcept {
  return out_this_round_[static_cast<std::size_t>(agent)] == 0;
}

bool RoundPlanner::straggles(int agent) const noexcept {
  return straggle_this_round_[static_cast<std::size_t>(agent)] != 0;
}

}  // namespace abft::engine

// Bounded lock-free multi-producer ring buffer (Vyukov bounded-queue
// sequence scheme), used by the async engine's produce phase: pool workers
// push finished gradient rows concurrently, and the single consumer drains
// the ring after the parallel emit has joined.
//
// Determinism contract: the ring only carries WHICH rows finished — the
// consumer re-sorts the drained set by virtual arrival time, so the
// (thread-schedule-dependent) push order never reaches the numerics.  The
// ring exists to make the concurrent produce phase safe, not ordered.
//
// Each slot carries a sequence counter: `seq == pos` means free for the
// producer claiming `pos`, `seq == pos + 1` means published and readable by
// the consumer at `pos`, and after consumption the slot is re-armed for the
// producer one lap ahead (`seq = pos + capacity`).  Producers claim slots
// with a CAS on tail_; the consumer is single-threaded and uses a plain
// head cursor.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "abft/util/check.hpp"

namespace abft::engine {

template <typename T>
class MpscRing {
 public:
  /// Capacity is `min_capacity` rounded up to a power of two (>= 2).
  explicit MpscRing(std::size_t min_capacity) {
    ABFT_REQUIRE(min_capacity >= 1, "mpsc ring needs a positive capacity");
    std::size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    capacity_ = cap;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Thread-safe against concurrent try_push calls.  Returns false when the
  /// ring is full (the caller decides whether that is an error).
  bool try_push(const T& value) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const auto diff =
          static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          cell.value = value;
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS failure reloaded pos; retry against the new slot.
      } else if (diff < 0) {
        return false;  // a full lap behind: the ring is full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Single-consumer drain: calls fn(value) for every published element, in
  /// push-completion order, and returns how many were consumed.  Must not
  /// race with try_push on the same elements — the engine drains only after
  /// the parallel produce phase has joined, so every claimed slot is
  /// published by the time drain runs.
  template <typename Fn>
  std::size_t drain(Fn&& fn) {
    std::size_t drained = 0;
    for (;;) {
      Cell& cell = cells_[head_ & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      if (static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(head_ + 1) != 0) {
        break;  // empty (or an unpublished claim, which cannot happen post-join)
      }
      fn(std::move(cell.value));
      cell.seq.store(head_ + capacity_, std::memory_order_release);
      ++head_;
      ++drained;
    }
    return drained;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    T value{};
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  std::atomic<std::size_t> tail_{0};
  std::size_t head_ = 0;  // single consumer: no atomicity needed
};

}  // namespace abft::engine

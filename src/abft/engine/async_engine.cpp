#include "abft/engine/async_engine.hpp"

#include <algorithm>
#include <cmath>

#include "abft/util/check.hpp"

namespace abft::engine {

namespace {

constexpr std::uint64_t kArrivalSeedTag = 0xa11c10c4a55a1edULL;

bool arrival_kind_known(const std::string& kind) {
  return kind == "uniform" || kind == "exponential" || kind == "fixed";
}

}  // namespace

AsyncRoundEngine::AsyncRoundEngine(std::vector<unsigned char> faulty, int dim,
                                   AsyncEngineConfig config)
    : faulty_(std::move(faulty)),
      dim_(dim),
      config_(std::move(config)),
      ring_(faulty_.empty() ? 1 : faulty_.size()) {
  ABFT_REQUIRE(!faulty_.empty(), "async engine needs at least one agent");
  ABFT_REQUIRE(dim_ > 0, "async engine needs a positive dimension");
  const AsyncConfig& a = config_.async;
  ABFT_REQUIRE(a.quorum >= 0, "async quorum must be non-negative (0 = full roster)");
  ABFT_REQUIRE(a.deadline > 0.0 && std::isfinite(a.deadline),
               "async deadline must be positive and finite");
  ABFT_REQUIRE(a.staleness_cap >= 0, "async staleness_cap must be non-negative");
  ABFT_REQUIRE(arrival_kind_known(a.arrival.kind),
               "async arrival kind must be 'uniform', 'exponential' or 'fixed'");
  ABFT_REQUIRE(a.arrival.scale > 0.0 && std::isfinite(a.arrival.scale),
               "async arrival scale must be positive and finite");
  threads_ = std::max(1, config_.threads);
  pool_ = std::make_unique<agg::ThreadPool>(threads_);
  workspace_.parallel_threads = threads_;
  workspace_.pool = pool_.get();
  workspace_.mode = config_.mode;
  workspace_.precision = config_.precision;
  payload_.reshape(roster_size(), dim_);
  computing_.assign(faulty_.size(), 0);
  arrival_time_.assign(faulty_.size(), 0.0);
  reset(0);
}

void AsyncRoundEngine::reset(int declared_f) {
  ABFT_REQUIRE(declared_f >= 0, "declared fault bound must be non-negative");
  // Fault streams: identical derivation to the synchronous engine (master
  // split per agent), so a full-quorum zero-staleness run replays the sync
  // trace bit for bit.  Arrival streams are split from a tagged master so
  // the virtual clock never perturbs the fault randomness.
  util::Rng master(config_.seed);
  agent_rng_.clear();
  agent_rng_.reserve(faulty_.size());
  for (std::size_t i = 0; i < faulty_.size(); ++i) agent_rng_.push_back(master.split());
  util::Rng arrival_master(config_.seed ^ kArrivalSeedTag);
  arrival_rng_.clear();
  arrival_rng_.reserve(faulty_.size());
  for (std::size_t i = 0; i < faulty_.size(); ++i) arrival_rng_.push_back(arrival_master.split());
  ring_.drain([](const PendingRow&) {});
  pending_.clear();
  std::fill(computing_.begin(), computing_.end(), 0);
  std::fill(arrival_time_.begin(), arrival_time_.end(), 0.0);
  declared_f_ = declared_f;
  round_ = 0;
  kept_ = 0;
  stats_ = AsyncStats{};
}

double AsyncRoundEngine::draw_duration(int agent) {
  // "fixed": every computation takes exactly `scale`, consuming no
  // randomness — the deterministic model the window-boundary and staleness
  // contract tests pin their arithmetic on.
  if (config_.async.arrival.kind == "fixed") return config_.async.arrival.scale;
  util::Rng& rng = arrival_rng_[static_cast<std::size_t>(agent)];
  const double u = rng.uniform();
  if (config_.async.arrival.kind == "exponential") {
    // Inverse-CDF with u in [0, 1): 1 - u in (0, 1], so the log is finite.
    return -config_.async.arrival.scale * std::log(1.0 - u);
  }
  return config_.async.arrival.scale * (0.5 + u);
}

void AsyncRoundEngine::begin_round(int round) {
  round_ = round;
  // Window open: drop rows that aged past the cap — they would never be
  // aggregated again, and their agents go back to work instead of waiting.
  std::erase_if(pending_, [&](const PendingRow& p) {
    if (round - p.birth_round > config_.async.staleness_cap) {
      ++stats_.stale_dropped;
      computing_[static_cast<std::size_t>(p.agent)] = 0;
      return true;
    }
    return false;
  });
  // Every idle agent starts computing against the current estimate; its
  // virtual completion time comes from its own arrival stream, so the draw
  // order (roster order, serial) never affects another agent's stream.
  starting_.clear();
  starting_honest_.clear();
  starting_faulty_.clear();
  const double window_open = static_cast<double>(round) * config_.async.deadline;
  for (int agent = 0; agent < roster_size(); ++agent) {
    if (computing_[static_cast<std::size_t>(agent)] != 0) continue;
    computing_[static_cast<std::size_t>(agent)] = 1;
    arrival_time_[static_cast<std::size_t>(agent)] = window_open + draw_duration(agent);
    starting_.push_back(agent);
    (faulty_[static_cast<std::size_t>(agent)] != 0 ? starting_faulty_ : starting_honest_)
        .push_back(agent);
  }
  kept_ = 0;
}

void AsyncRoundEngine::push_row(int agent) {
  const bool pushed = ring_.try_push(
      PendingRow{agent, round_, arrival_time_[static_cast<std::size_t>(agent)]});
  // One outstanding row per agent and capacity >= roster size: cannot fill.
  ABFT_ENSURE(pushed, "async ring overflow");
}

int AsyncRoundEngine::collect(int round) {
  // Drain the concurrent pushes, then impose the deterministic order the
  // thread schedule cannot provide.
  ring_.drain([this](PendingRow&& p) { pending_.push_back(p); });
  std::sort(pending_.begin(), pending_.end(), [](const PendingRow& a, const PendingRow& b) {
    return a.birth_round != b.birth_round ? a.birth_round < b.birth_round : a.agent < b.agent;
  });

  // The round window is half-open, [t*D, (t+1)*D): a row arriving exactly at
  // the close belongs to the NEXT window — it neither counts toward this
  // round's quorum nor gets consumed at the deadline fire below.  (The old
  // `<=` here let a boundary row jump its window, skewing both.)
  const double window_close = static_cast<double>(round + 1) * config_.async.deadline;
  arrived_.clear();
  for (const PendingRow& p : pending_) {
    if (p.arrival_time < window_close) arrived_.push_back(p);
  }
  std::sort(arrived_.begin(), arrived_.end(), [](const PendingRow& a, const PendingRow& b) {
    return a.arrival_time != b.arrival_time ? a.arrival_time < b.arrival_time
                                            : a.agent < b.agent;
  });

  const int quorum = config_.async.quorum == 0
                         ? roster_size()
                         : std::min(config_.async.quorum, roster_size());
  double fire_time = window_close;
  if (static_cast<int>(arrived_.size()) >= quorum) {
    fire_time = arrived_[static_cast<std::size_t>(quorum - 1)].arrival_time;
    ++stats_.quorum_fires;
  } else {
    ++stats_.deadline_fires;
  }

  // Consume every row arrived by the trigger, in (birth_round, agent) order,
  // scaled by its staleness weight; the rest stay pending for later rounds.
  ingest_.reshape(roster_size(), dim_);
  int kept = 0;
  std::erase_if(pending_, [&](const PendingRow& p) {
    // A deadline fire has fire_time == window_close, which the half-open
    // window excludes — hence the second guard.
    if (p.arrival_time > fire_time || p.arrival_time >= window_close) return false;
    const int age = round - p.birth_round;
    const auto src = payload_.row(p.agent);
    const auto dst = ingest_.row(kept);
    if (age <= 0) {
      std::copy(src.begin(), src.end(), dst.begin());
    } else {
      const double weight = 1.0 / (1.0 + static_cast<double>(age));
      for (std::size_t j = 0; j < src.size(); ++j) dst[j] = weight * src[j];
      ++stats_.late_rows;
    }
    computing_[static_cast<std::size_t>(p.agent)] = 0;
    ++kept;
    return true;
  });
  ingest_.truncate_rows(kept);
  kept_ = kept;
  return kept;
}

bool AsyncRoundEngine::aggregate(const agg::GradientAggregator& rule, Vector& out) {
  // No synchronous close means no step-S1 detectability: the membership (and
  // with it the adversary bound) never shrinks, so current_f == declared_f.
  const int n = roster_size();
  const int usable_f = usable_fault_bound(rule, declared_f_, declared_f_, kept_, n, n);
  if (usable_f < 0) return false;
  rule.aggregate_into(out, ingest_, usable_f, workspace_);
  return true;
}

}  // namespace abft::engine

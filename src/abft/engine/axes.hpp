// Declarative round-perturbation axes shared by every driver.
//
// A ScenarioSpec (see scenario.hpp) composes a roster, fault model and
// aggregation rule with the axes here: per-round partial participation,
// seedable straggler schedules, and mid-run churn.  The RoundPlanner turns
// the axes into a per-round plan, drawing all of its randomness from a
// dedicated perturbation stream so that enabling an axis never perturbs the
// agent / fault / network streams — and, crucially, so that the default
// (all axes off) consumes no randomness at all and every driver behaves
// bit-identically to a plain run.
//
// Axis semantics (identical across the three drivers):
//   participation p < 1   — each round, each agent independently sits the
//                           round out with probability 1 - p: it computes no
//                           gradient, sends nothing, and is NOT eliminated.
//   straggler q > 0       — each round, each participating agent's message
//                           independently misses the round's close with
//                           probability q: the gradient IS computed (an
//                           omniscient adversary observes it) but never
//                           reaches the transport, and the agent is NOT
//                           eliminated (step S1 does not apply — the message
//                           was late, not missing).
//   churn                 — at the start of round r, the listed agent leaves
//                           the system permanently.  A faulty departure
//                           shrinks the declared fault bound f (one fewer
//                           adversary to tolerate); an honest departure only
//                           shrinks n.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "abft/util/rng.hpp"

namespace abft::engine {

/// Agent `agent` leaves the system permanently at the start of round
/// `round` (the driver's own round counter: 0-based for DGD / p2p, 1-based
/// for D-SGD).
struct ChurnEvent {
  int round = 0;
  int agent = 0;
};

struct ScenarioAxes {
  /// Per-round probability that an agent participates.  1.0 = every agent,
  /// every round (the default; draws no randomness).
  double participation = 1.0;
  /// Per-round probability that a participating agent's message straggles
  /// past the round's close.  0.0 = never (the default; draws no randomness).
  double straggler_probability = 0.0;
  /// Seed of the dedicated perturbation stream (independent of the driver
  /// seed, so the same scenario randomness can be replayed under any roster
  /// seed and vice versa).
  std::uint64_t perturbation_seed = 0;
  /// Mid-run departures, applied in round order.
  std::vector<ChurnEvent> churn;

  /// True when any axis deviates from the no-op default.
  [[nodiscard]] bool enabled() const noexcept {
    return participation < 1.0 || straggler_probability > 0.0 || !churn.empty();
  }
};

/// Per-round realization of the axes.  begin_round(t) must be called once
/// per round with the driver's monotonically increasing round counter; it
/// draws this round's participation/straggler coins (in agent order, so the
/// stream is invariant to membership changes) and surfaces the churn events
/// that fall due.  When the axes are all at their defaults every query is
/// constant and the perturbation stream is never advanced.
class RoundPlanner {
 public:
  RoundPlanner() = default;
  RoundPlanner(ScenarioAxes axes, int roster_size);

  /// Restarts the perturbation stream and the churn cursor (drivers call
  /// this at the top of a run so repeated runs replay identically).
  void reset();

  /// Draws the plan for round `round`.  Rounds must be passed in increasing
  /// order; churn events with event.round <= round that have not fired yet
  /// fire now (so a 1-based driver still honours a round-0 event).
  void begin_round(int round);

  [[nodiscard]] bool participates(int agent) const noexcept;
  [[nodiscard]] bool straggles(int agent) const noexcept;

  /// Agents leaving at the start of the current round, in spec order.
  [[nodiscard]] std::span<const int> churned_this_round() const noexcept {
    return churned_now_;
  }

  [[nodiscard]] const ScenarioAxes& axes() const noexcept { return axes_; }

 private:
  ScenarioAxes axes_;
  int roster_size_ = 0;
  util::Rng rng_{0};
  std::size_t churn_cursor_ = 0;
  std::vector<int> churned_now_;
  std::vector<unsigned char> out_this_round_;       // participation coin
  std::vector<unsigned char> straggle_this_round_;  // straggler coin
};

}  // namespace abft::engine

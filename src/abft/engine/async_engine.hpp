// Event-driven counterpart of the RoundEngine: a deterministic virtual-clock
// loop in which agents take a random (seeded, per-agent-stream) amount of
// virtual time to compute each gradient and push the finished row into a
// bounded MPSC ring.  The filter fires on a quorum-or-deadline trigger:
//
//   * the round window t covers virtual time [t*D, (t+1)*D) with D =
//     `deadline`; an idle agent starts computing at the window open, against
//     the CURRENT estimate x_t (so a slow agent's row is a stale gradient by
//     construction);
//   * if at least `quorum` pending rows have arrived inside the window, the
//     filter fires at the quorum-th arrival time and aggregates every row
//     arrived by then (quorum 0 = the full roster); otherwise it fires at
//     the window close with whatever arrived — nothing blocks.  The window
//     is genuinely half-open: a row arriving exactly at (t+1)*D belongs to
//     window t+1 — it neither counts toward round t's quorum nor is
//     consumed by round t's deadline fire;
//   * a consumed row of age a = round - birth_round enters the batch scaled
//     by the staleness weight 1/(1+a) (age 0 rows are bit-identical to the
//     unscaled row); un-consumed rows stay pending for later rounds;
//   * rows STRICTLY older than `staleness_cap` rounds are dropped at the
//     window open and the agent starts afresh: at exactly age ==
//     staleness_cap the row is kept and consumable at weight
//     1/(1 + staleness_cap);
//   * an agent has at most one row in flight (it only starts computing once
//     its previous row is consumed or dropped), so one filter call can never
//     ingest two rows from the same agent.
//
// Unlike the synchronous engine there is NO step-S1 elimination: a missing
// reply is indistinguishable from slowness without a synchronous close, so
// silence costs the adversary a round of presence instead of its membership,
// and the membership never shrinks.
//
// Determinism contract: arrivals are ordered by the virtual clock — seeded
// per-agent arrival streams, never wall time — and the ring is drained and
// re-sorted after the parallel produce phase joins, so traces are
// bit-identical at every thread count and across repeated runs.  With
// quorum = n, staleness_cap = 0 and an arrival model whose durations never
// exceed the deadline, every round consumes exactly the full fresh batch in
// roster order and the mode reproduces the synchronous engine's exact trace.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "abft/agg/aggregator.hpp"
#include "abft/agg/batch.hpp"
#include "abft/agg/threads.hpp"
#include "abft/attack/fault.hpp"
#include "abft/engine/mpsc_ring.hpp"
#include "abft/engine/round_engine.hpp"
#include "abft/util/rng.hpp"

namespace abft::engine {

/// Per-agent virtual compute-time model.
struct ArrivalModel {
  /// "uniform": duration = scale * (0.5 + U[0,1)) in [0.5*scale, 1.5*scale);
  /// "exponential": duration = scale * Exp(1) (mean scale, unbounded tail);
  /// "fixed": duration = scale exactly, consuming no randomness — the
  /// deterministic model for pinning window-boundary and staleness
  /// arithmetic in tests.
  std::string kind = "uniform";
  double scale = 0.5;
};

struct AsyncConfig {
  /// Rows that fire the filter early; 0 means the full roster.  Values above
  /// the roster size clamp to it.
  int quorum = 0;
  /// Virtual-time length D of one round window (> 0).
  double deadline = 1.0;
  /// Maximum age (in rounds) a pending row may reach before it is dropped.
  int staleness_cap = 0;
  ArrivalModel arrival;
};

/// Trigger/staleness counters accumulated over a run (reset() zeroes them).
struct AsyncStats {
  long long quorum_fires = 0;    ///< rounds fired by the quorum arriving early
  long long deadline_fires = 0;  ///< rounds fired by the window close
  long long stale_dropped = 0;   ///< pending rows dropped past staleness_cap
  long long late_rows = 0;       ///< aggregated rows with age >= 1
};

struct AsyncEngineConfig {
  /// Seed of the master stream split into per-agent fault streams (same
  /// derivation as the synchronous engine, so traces can match exactly) and,
  /// xor-tagged, into per-agent arrival-time streams.
  std::uint64_t seed = 0;
  int threads = 1;
  agg::AggMode mode = agg::AggMode::exact;
  /// Compute precision of the workspace's fast lane (f32 demotes the
  /// bandwidth-bound kernel inputs; only meaningful under AggMode::fast).
  agg::Precision precision = agg::Precision::f64;
  AsyncConfig async;
};

class AsyncRoundEngine {
 public:
  /// Throws std::invalid_argument on an empty roster, non-positive dim, or
  /// an invalid AsyncConfig (negative quorum/staleness_cap, non-positive
  /// deadline/scale, unknown arrival kind).
  AsyncRoundEngine(std::vector<unsigned char> faulty, int dim, AsyncEngineConfig config);

  [[nodiscard]] int roster_size() const noexcept { return static_cast<int>(faulty_.size()); }
  [[nodiscard]] int dim() const noexcept { return dim_; }
  [[nodiscard]] int threads() const noexcept { return threads_; }
  [[nodiscard]] util::Rng& agent_rng(int agent) noexcept {
    return agent_rng_[static_cast<std::size_t>(agent)];
  }

  void set_observer(RoundObserver observer) { observer_ = std::move(observer); }
  void notify(int round, const Vector& estimate, const Vector& filtered) const {
    if (observer_) observer_(round, estimate, filtered);
  }

  /// Restarts a run: every agent idle, empty stream, zeroed stats, fresh
  /// per-agent fault and arrival streams.
  void reset(int declared_f);

  /// Opens round window t: drops pending rows past the staleness cap and
  /// starts every idle agent computing (drawing its virtual duration).
  void begin_round(int round);

  /// Agents that began computing this round, in roster order (their payload
  /// rows are about to be written; row index == agent id).
  [[nodiscard]] std::span<const int> starting_agents() const noexcept { return starting_; }
  [[nodiscard]] std::span<const int> starting_honest() const noexcept {
    return starting_honest_;
  }
  [[nodiscard]] std::span<const int> starting_faulty() const noexcept {
    return starting_faulty_;
  }

  /// The omniscient adversary's view: the honest rows being computed this
  /// round (complete once emit_honest has run).
  [[nodiscard]] attack::HonestRowsView honest_view() const noexcept {
    return {payload_.data(), dim_, starting_honest_};
  }

  /// Produce phase, honest starters: writer(agent, row) fills the agent's
  /// payload row; the finished row is pushed into the ring concurrently.
  template <typename Writer>
  void emit_honest(Writer&& writer) {
    pool_->parallel_for(0, static_cast<int>(starting_honest_.size()), threads_,
                        [this, &writer](int begin, int end) {
                          for (int k = begin; k < end; ++k) {
                            const int agent = starting_honest_[static_cast<std::size_t>(k)];
                            writer(agent, payload_.row(agent));
                            push_row(agent);
                          }
                        });
  }

  /// Produce phase, Byzantine starters (after emit_honest, so the view is
  /// complete): emitter(agent, row, honest_view) mutates the row in place;
  /// returning false keeps the agent silent — nothing enters the stream and
  /// it simply starts over next round (never eliminated: see header).
  template <typename Emitter>
  void emit_faulty(Emitter&& emitter) {
    const attack::HonestRowsView view = honest_view();
    pool_->parallel_for(0, static_cast<int>(starting_faulty_.size()), threads_,
                        [this, &emitter, &view](int begin, int end) {
                          for (int k = begin; k < end; ++k) {
                            const int agent = starting_faulty_[static_cast<std::size_t>(k)];
                            if (emitter(agent, payload_.row(agent), view)) {
                              push_row(agent);
                            } else {
                              computing_[static_cast<std::size_t>(agent)] = 0;
                            }
                          }
                        });
  }

  /// Trigger + consume phase: drains the ring, fires on quorum-or-deadline,
  /// and copies every row arrived by the fire time into the ingest batch in
  /// (birth_round, agent) order, scaled by its staleness weight.  Returns
  /// the number of rows kept (0 = hold position).
  int collect(int round);

  /// Rows the last collect() kept.
  [[nodiscard]] int last_kept() const noexcept { return kept_; }

  /// Filter phase over the ingest batch, under the same usable_fault_bound
  /// policy as the synchronous engine (membership never shrinks, so the
  /// declared f stays the current f).  Returns false to hold position.
  bool aggregate(const agg::GradientAggregator& rule, Vector& out);

  [[nodiscard]] agg::GradientBatch& ingest() noexcept { return ingest_; }
  [[nodiscard]] const AsyncStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const AsyncConfig& async_config() const noexcept { return config_.async; }

 private:
  /// A finished gradient travelling through the ring / pending set.
  struct PendingRow {
    int agent = 0;
    int birth_round = 0;
    double arrival_time = 0.0;
  };

  void push_row(int agent);
  [[nodiscard]] double draw_duration(int agent);

  std::vector<unsigned char> faulty_;
  int dim_ = 0;
  AsyncEngineConfig config_;
  int threads_ = 1;
  std::unique_ptr<agg::ThreadPool> pool_;
  agg::AggregatorWorkspace workspace_;
  std::vector<util::Rng> agent_rng_;    // fault streams (parity with sync)
  std::vector<util::Rng> arrival_rng_;  // virtual compute-time streams
  RoundObserver observer_;

  int declared_f_ = 0;
  int round_ = 0;
  int kept_ = 0;
  AsyncStats stats_;

  /// Persistent n x d payload: row i is agent i's in-flight gradient (an
  /// agent has at most one row outstanding, so slots never collide).
  agg::GradientBatch payload_;
  agg::GradientBatch ingest_;
  /// 1 while the agent has a row in flight or pending, 0 when idle.
  std::vector<unsigned char> computing_;
  std::vector<double> arrival_time_;

  MpscRing<PendingRow> ring_;
  std::vector<PendingRow> pending_;  // drained + deterministically ordered
  std::vector<PendingRow> arrived_;  // scratch: this window's candidates

  std::vector<int> starting_;
  std::vector<int> starting_honest_;
  std::vector<int> starting_faulty_;
};

}  // namespace abft::engine

// RoundEngine — the shared double-buffered batch round loop under all three
// drivers (server-based DGD, D-SGD, peer-to-peer DGD).
//
// Before this layer each driver re-implemented the same machinery: split a
// master rng into per-agent streams, stand up a persistent ThreadPool and a
// mode-configured AggregatorWorkspace, reshape a payload GradientBatch per
// round, partition honest/faulty rows, compact delivered messages into an
// ingest batch, track eliminations and the shrinking fault bound, and clamp
// f before handing the batch to the gradient filter.  The engine owns all of
// it once; a driver is reduced to its policies — a gradient producer (what
// goes into a payload row), a delivery transport (how a row reaches the
// ingest buffer), and an update rule (what happens to the estimate).
//
// The engine is also where the scenario axes (axes.hpp) plug in: partial
// participation, straggler schedules and churn are realized by the embedded
// RoundPlanner and applied uniformly to every driver — present/absent agents
// in begin_round, lost-but-not-eliminated messages in deliver(), permanent
// departures with f bookkeeping in the membership list.  With the axes at
// their defaults the engine is bit-identical to the pre-engine round loops
// at every thread count (the golden / determinism / parity suites pin this).
//
// Round lifecycle (server-style drivers call all phases; p2p uses the
// resources, membership and plan queries and runs its own broadcast fan-out
// between produce and update):
//
//   reset(f)                      once per run: fresh agent streams, full
//                                 membership, declared fault bound
//   begin_round(t)                plan perturbations, apply churn, reshape
//                                 the payload batch over present agents
//   emit_honest / emit_faulty     produce phase (parallel over agents); the
//     or emit_present             faulty phase sees the honest rows through
//                                 a HonestRowsView (omniscient adversary)
//   deliver(transport)            delivery phase (serial: transports own
//                                 ordered rng streams): straggled messages
//                                 are lost but keep membership, undelivered
//                                 messages eliminate the sender (step S1)
//   aggregate(rule, out)          filter phase: usable f clamped to the
//                                 delivered row count; false when nothing
//                                 was delivered (the driver holds position)
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "abft/agg/aggregator.hpp"
#include "abft/agg/batch.hpp"
#include "abft/agg/threads.hpp"
#include "abft/attack/fault.hpp"
#include "abft/engine/axes.hpp"
#include "abft/linalg/vector.hpp"
#include "abft/util/check.hpp"
#include "abft/util/rng.hpp"

namespace abft::engine {

using linalg::Vector;

struct RoundEngineConfig {
  /// Seed of the master stream split into per-agent streams.
  std::uint64_t seed = 0;
  /// Width of the persistent thread pool (1 = fully single-threaded; results
  /// are bit-identical for every value).
  int threads = 1;
  /// Numerical mode of the engine-owned gradient-filter workspace.
  agg::AggMode mode = agg::AggMode::exact;
  /// Compute precision of the workspace's fast lane (f32 demotes the
  /// bandwidth-bound kernel inputs; only meaningful under AggMode::fast).
  agg::Precision precision = agg::Precision::f64;
  /// Round-perturbation axes (defaults = plain run, bit-identical).
  ScenarioAxes axes;
};

/// Called after the filter phase with (round, estimate, filtered gradient),
/// before the driver applies its update rule.
using RoundObserver = std::function<void(int round, const Vector& estimate, const Vector& filtered)>;

/// The one clamp policy for every driver's filter phase: the fault bound to
/// aggregate `kept` delivered rows with, or -1 when the round must hold
/// position (nothing delivered, or the rule cannot run that thin).  A
/// declared f the rule could not support even on the full `roster_n`
/// (above its max, or below its minimum) is a misconfiguration, not a thin
/// round: it gets the legacy min(current_f, kept - 1) clamp so the rule's
/// own precondition still fails loudly where it always did.
///
/// `members_n` is the CURRENT membership size (after churn/elimination has
/// permanently shrunk the roster), while `roster_n` stays the size the run
/// was configured with — the misconfiguration check is judged against
/// `roster_n` because a config valid at reset never becomes "misconfigured"
/// later.  But once the surviving membership itself can no longer tolerate
/// the `current_f` adversaries known to remain
/// (current_f > rule.max_usable_f(members_n)), no clamp is sound: running
/// the filter with a weaker budget than the adversary count would hand the
/// round to the faulty agents, so the engine holds position instead.  A
/// merely thin round (kept < members_n from stragglers or sit-outs) still
/// takes the kept-row clamp below.
int usable_fault_bound(const agg::GradientAggregator& rule, int declared_f, int current_f,
                       int kept, int members_n, int roster_n);

class RoundEngine {
 public:
  /// `faulty[i]` marks roster slot i Byzantine (used to partition the
  /// produce phase and to shrink f when a faulty agent churns out).
  RoundEngine(std::vector<unsigned char> faulty, int dim, RoundEngineConfig config);

  // --- shared resources ----------------------------------------------------
  [[nodiscard]] int roster_size() const noexcept { return static_cast<int>(faulty_.size()); }
  [[nodiscard]] int dim() const noexcept { return dim_; }
  [[nodiscard]] int threads() const noexcept { return threads_; }
  [[nodiscard]] agg::ThreadPool& pool() noexcept { return *pool_; }
  [[nodiscard]] agg::AggregatorWorkspace& workspace() noexcept { return workspace_; }
  [[nodiscard]] util::Rng& agent_rng(int agent) noexcept {
    return agent_rng_[static_cast<std::size_t>(agent)];
  }

  void set_observer(RoundObserver observer) { observer_ = std::move(observer); }
  void notify(int round, const Vector& estimate, const Vector& filtered) const {
    if (observer_) observer_(round, estimate, filtered);
  }

  /// Engine-level parallel dispatch over [0, count) at the configured width.
  template <typename Fn>
  void parallel(int count, Fn&& fn) {
    pool_->parallel_for(0, count, threads_, std::forward<Fn>(fn));
  }

  // --- membership & fault-bound bookkeeping --------------------------------
  /// Restarts a run: full membership, declared fault bound f, fresh
  /// per-agent rng streams (master split, as every driver did), fresh
  /// perturbation stream.  The driver's own transport state (e.g. the
  /// network's drop stream) is deliberately not engine-owned.
  void reset(int declared_f);

  /// Agents still in the system, in roster order.
  [[nodiscard]] std::span<const int> members() const noexcept { return members_; }
  [[nodiscard]] bool is_member(int agent) const noexcept {
    return member_mask_[static_cast<std::size_t>(agent)] != 0;
  }
  /// The declared fault bound, shrunk by eliminations and faulty churn.
  [[nodiscard]] int current_f() const noexcept { return current_f_; }
  /// Agents eliminated by step S1 (undelivered non-straggler messages).
  [[nodiscard]] int eliminated_count() const noexcept { return eliminated_; }
  /// Agents that left via churn.
  [[nodiscard]] int departed_count() const noexcept { return departed_; }

  // --- round lifecycle -----------------------------------------------------
  /// Applies due churn, draws this round's plan, reshapes the payload batch
  /// over the present agents and partitions their rows honest/faulty.
  void begin_round(int round);

  /// Members participating this round, in roster order; payload row k
  /// belongs to present_agents()[k].
  [[nodiscard]] std::span<const int> present_agents() const noexcept { return present_; }
  [[nodiscard]] bool is_present(int agent) const noexcept {
    return payload_row_[static_cast<std::size_t>(agent)] >= 0;
  }
  /// Payload row of a present agent (-1 when absent this round).
  [[nodiscard]] int payload_row(int agent) const noexcept {
    return payload_row_[static_cast<std::size_t>(agent)];
  }
  /// Whether a present agent's message misses this round's close.
  [[nodiscard]] bool straggles(int agent) const noexcept { return planner_.straggles(agent); }

  [[nodiscard]] std::span<const int> honest_rows() const noexcept { return honest_rows_; }
  [[nodiscard]] std::span<const int> faulty_rows() const noexcept { return faulty_rows_; }

  [[nodiscard]] agg::GradientBatch& payload() noexcept { return payload_; }
  [[nodiscard]] agg::GradientBatch& ingest() noexcept { return ingest_; }

  /// The omniscient adversary's view: the honest payload rows of this round.
  [[nodiscard]] attack::HonestRowsView honest_view() const noexcept {
    return {payload_.data(), dim_, honest_rows_};
  }

  /// Produce phase, honest agents: writer(agent, row) fills the agent's
  /// payload row (parallel over agents; each owns its row and rng stream).
  template <typename Writer>
  void emit_honest(Writer&& writer) {
    ensure_payload();
    pool_->parallel_for(0, static_cast<int>(honest_rows_.size()), threads_,
                        [this, &writer](int begin, int end) {
                          for (int h = begin; h < end; ++h) {
                            const int row = honest_rows_[static_cast<std::size_t>(h)];
                            writer(present_[static_cast<std::size_t>(row)], payload_.row(row));
                          }
                        });
  }

  /// Produce phase, Byzantine agents (after emit_honest, so the view is
  /// complete): emitter(agent, row, honest_view) mutates the row in place
  /// and returns false to stay silent.
  template <typename Emitter>
  void emit_faulty(Emitter&& emitter) {
    ensure_payload();
    const attack::HonestRowsView view = honest_view();
    pool_->parallel_for(0, static_cast<int>(faulty_rows_.size()), threads_,
                        [this, &emitter, &view](int begin, int end) {
                          for (int b = begin; b < end; ++b) {
                            const int row = faulty_rows_[static_cast<std::size_t>(b)];
                            const bool sent = emitter(present_[static_cast<std::size_t>(row)],
                                                      payload_.row(row), view);
                            silent_[static_cast<std::size_t>(row)] = sent ? 0 : 1;
                          }
                        });
  }

  /// Produce phase without an honest/faulty split (D-SGD: faults are data-
  /// or gradient-level): writer(agent, row) runs for every present agent.
  template <typename Writer>
  void emit_present(Writer&& writer) {
    ensure_payload();
    pool_->parallel_for(0, static_cast<int>(present_.size()), threads_,
                        [this, &writer](int begin, int end) {
                          for (int row = begin; row < end; ++row) {
                            writer(present_[static_cast<std::size_t>(row)], payload_.row(row));
                          }
                        });
  }

  /// Delivery phase (serial: transports own ordered streams).  For each
  /// present agent in roster order: a straggled message is lost but keeps
  /// membership; otherwise transport(agent, payload, dst) moves the message
  /// (payload is empty when the agent stayed silent) and returning false
  /// eliminates the sender (step S1: silent => faulty; shrinks n and f).
  /// Returns the number of ingest rows kept.
  template <typename Transport>
  int deliver(Transport&& transport) {
    const int present = static_cast<int>(present_.size());
    ingest_.reshape(present, dim_);
    int kept = 0;
    for (int row = 0; row < present; ++row) {
      const int agent = present_[static_cast<std::size_t>(row)];
      if (planner_.straggles(agent)) continue;
      std::span<const double> message;
      if (silent_[static_cast<std::size_t>(row)] == 0) message = payload_.row(row);
      if (transport(agent, message, ingest_.row(kept))) {
        ++kept;
      } else {
        eliminate(agent);
      }
    }
    ingest_.truncate_rows(kept);
    ABFT_REQUIRE(!members_.empty(), "every agent was eliminated");
    kept_ = kept;
    return kept;
  }

  /// Number of rows the last deliver() kept.
  [[nodiscard]] int last_kept() const noexcept { return kept_; }

  /// Filter phase over the ingest batch: the usable fault bound is
  /// min(current_f, kept - 1, rule.max_usable_f(kept)) clamped at 0, so a
  /// thin round aggregates with the strongest f the rule tolerates.
  /// Returns false (out untouched) when no rows were delivered, the rule
  /// cannot run on them at all, or the surviving membership can no longer
  /// tolerate current_f adversaries (see usable_fault_bound) — the driver
  /// holds position that round.  A declared f the rule could not support
  /// even on the full roster is a misconfiguration and is NOT clamped: the
  /// rule's own precondition throws, as it always did.
  bool aggregate(const agg::GradientAggregator& rule, Vector& out);

 private:
  void ensure_payload();
  void eliminate(int agent);
  void depart(int agent);
  void remove_member(int agent);

  std::vector<unsigned char> faulty_;
  int dim_ = 0;
  RoundEngineConfig config_;
  int threads_ = 1;
  std::unique_ptr<agg::ThreadPool> pool_;
  agg::AggregatorWorkspace workspace_;
  std::vector<util::Rng> agent_rng_;
  RoundPlanner planner_;
  RoundObserver observer_;

  std::vector<int> members_;
  std::vector<unsigned char> member_mask_;
  int declared_f_ = 0;
  int current_f_ = 0;
  int eliminated_ = 0;
  int departed_ = 0;

  std::vector<int> present_;
  std::vector<int> payload_row_;
  std::vector<int> honest_rows_;
  std::vector<int> faulty_rows_;
  std::vector<unsigned char> silent_;
  bool payload_shaped_ = false;
  agg::GradientBatch payload_;
  agg::GradientBatch ingest_;
  int kept_ = 0;
};

}  // namespace abft::engine

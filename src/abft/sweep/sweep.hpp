// Sweep orchestration: the paper's headline results (Fig. 2-5, Table 1) are
// grids — one (2f, eps)-redundancy experiment repeated over rules, attacks,
// fault bounds and seeds.  A SweepSpec makes that grid declarative: a "sweep"
// block of list-valued axes over a "base" ScenarioSpec, expanded into the
// cartesian product with deterministic run ids, executed in parallel across
// an agg::ThreadPool, and emitted as one CSV / JSON result set.  The
// bench_fig2/3/4/5, bench_table1 and bench_epsilon_sweep binaries are thin
// wrappers over committed specs/sweep_*.json through this layer, and
// `abft_run --sweep` executes any of them from the command line.
//
// Sweep spec schema:
//   name        free-form label ("")
//   threads     number of runs executed concurrently (1); per-run kernel
//               threading (base "threads") degenerates to serial inside a
//               pool worker, so sweep- and run-level parallelism compose
//               safely but not multiplicatively
//   base        a full ScenarioSpec object (scenario.hpp schema)
//   sweep       list-valued axes, all optional, at least one required:
//     aggregator             ["cwtm", "cge", ...]       registry rule names
//     mode                   ["exact", "fast"]
//     precision              ["f64", "f32"]    fast-lane compute precision;
//                            rows pairing f32 with mode "exact" are
//                            rejected by parse_scenario after the merge
//     f                      [0, 1, 2]
//     shards                 [1, 4, 16]        sets aggregator.hierarchy
//                            .shards; the base aggregator must be (or be
//                            absent and default to) a {"hierarchy": ...}
//                            object, and combining with an aggregator axis
//                            is rejected (the string axis would clobber
//                            the hierarchy object)
//     coreset_size           [16, 64, 0]       sets aggregator.reduction
//                            .coreset.size (0 = the auto budget f+ceil(sqrt n));
//                            the base aggregator must be an object or absent,
//                            and an aggregator string axis is rejected for the
//                            same clobbering reason as shards; composes with
//                            the shards axis (per-shard coresets)
//     reduction_kind         ["coreset", "sample"]    re-keys the reduction
//                            object: {"reduction": {<kind>: {...}}} with the
//                            inner config (size/strata where applicable)
//                            carried over.  Same base-shape rules as
//                            coreset_size, which it composes with (the size
//                            axis writes the inner object first, the kind
//                            axis re-keys it); the base must not already
//                            set aggregator.reduction
//     quorum                 [0, 3, 5]         sets async.quorum; the base
//     staleness_cap          [0, 1, 2]         (resp. async.staleness_cap);
//                            the base must run the async engine — either
//                            axis creates the "async" sub-object if absent,
//                            so a default quorum-or-deadline config applies
//     seed                   [1, 2, 3] or {"from": s, "count": n}
//     drop_probability       [0.0, 0.1]
//     participation          [1.0, 0.8]        (spec "axes" sub-object keys)
//     straggler_probability  [0.0, 0.1]
//     faults                 [{"label": l, "faults": [fault objects]}, ...]
//                            named fault presets; the whole preset replaces
//                            the base "faults" array
//     variants               [{"label": l, "patch": {spec keys}}, ...]
//                            free-form spec patches for grid rows that are
//                            not a single-key change (e.g. fig2's
//                            "fault-free" = average + honest subset + f=0)
//
// Expansion contract: the grid is the cartesian product of the axes in the
// canonical order above (aggregator outermost, variants innermost /
// fastest-varying).  Each run starts from "base", applies one value per
// axis in canonical order — variants last, so a variant patch overrides
// both base keys and earlier axes (that is its purpose) — and is then
// parsed/validated exactly like a standalone scenario spec.  Run ids are
// deterministic: a zero-padded grid index followed by axis=value tokens,
// e.g. "003_aggregator=cge_faults=random".  Axis cells keep the author's
// raw label (the CSV layer RFC-4180-quotes commas and quotes); only the
// run-id token is sanitized.  An axis naming a key the base already sets
// is rejected (the spec would silently contradict itself); unknown or
// duplicate sweep keys are rejected.
//
// Determinism: expansion is a pure function of the spec, each expanded run
// is bit-deterministic given its ScenarioSpec, and results land in
// grid-index order — so a threads=N sweep is row-for-row identical to
// threads=1, which is in turn identical to calling run_scenario on each
// expanded spec by hand (wall_ms excepted).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "abft/scenario/scenario.hpp"
#include "abft/util/json.hpp"

namespace abft::sweep {

/// One named fault assignment (stored as the raw JSON array so it merges
/// into the base spec verbatim).
struct FaultPreset {
  std::string label;
  util::JsonValue faults;  // array of {"agent", "kind", "param"} objects
};

/// One named free-form spec patch.
struct Variant {
  std::string label;
  util::JsonValue patch;  // object of scenario keys, applied last
};

struct SweepSpec {
  std::string name;
  /// Number of runs executed concurrently (>= 1).
  int threads = 1;
  /// The base ScenarioSpec as JSON (axes merge into it textually, then the
  /// merged object goes through parse_scenario's full validation).
  util::JsonValue base;

  // Axes in canonical application order; empty = not swept.
  std::vector<std::string> aggregator;
  std::vector<std::string> mode;
  std::vector<std::string> precision;
  std::vector<int> f;
  std::vector<int> shards;
  std::vector<int> coreset_size;
  std::vector<std::string> reduction_kind;
  std::vector<int> quorum;
  std::vector<int> staleness_cap;
  std::vector<std::uint64_t> seed;
  std::vector<double> drop_probability;
  std::vector<double> participation;
  std::vector<double> straggler_probability;
  std::vector<FaultPreset> faults;
  std::vector<Variant> variants;
};

/// Parses a sweep document ({"name", "threads", "base", "sweep"}).  Throws
/// std::invalid_argument naming unknown keys, duplicate keys, empty or
/// base-conflicting axes, and malformed axis entries.
SweepSpec parse_sweep(const util::JsonValue& json);
SweepSpec load_sweep_file(const std::string& path);

/// True when the document carries a "sweep" block (abft_run uses this to
/// dispatch between scenario and sweep execution).
bool is_sweep_json(const util::JsonValue& json);

/// Replaces (or adds) one key in the sweep's base spec — how the figure
/// benches apply --mode=fast or a truncated iteration count onto a
/// committed grid instead of forking the spec file.
void set_base_member(SweepSpec* spec, std::string_view key, util::JsonValue value);

/// One cell of a run's grid coordinates: axis name + human-readable value
/// token (the CSV axis columns and the run-id tokens).
struct AxisCell {
  std::string axis;
  std::string value;
};

struct ExpandedRun {
  std::string run_id;
  std::vector<AxisCell> axes;
  scenario::ScenarioSpec spec;
};

/// Expands the cartesian grid in canonical order.  Every expanded spec has
/// been through parse_scenario; a run whose merged spec fails validation
/// throws with the run id in the message.
std::vector<ExpandedRun> expand_sweep(const SweepSpec& spec);

struct SweepRunResult {
  std::string run_id;
  std::vector<AxisCell> axes;
  scenario::ScenarioResult result;
  double wall_ms = 0.0;

  /// The value this run takes on the named sweep axis ("" when not swept) —
  /// how the figure/table renderers group a grid's rows.
  [[nodiscard]] std::string axis_value(std::string_view axis) const;
};

struct SweepOutcome {
  std::string name;
  /// In grid-index order, independent of the thread count.
  std::vector<SweepRunResult> runs;
};

/// Expands and executes the sweep, `threads_override` > 0 replacing the
/// spec's runner width.  Runs execute concurrently across an
/// agg::ThreadPool; results are ordered by grid index either way.
SweepOutcome run_sweep(const SweepSpec& spec, int threads_override = 0);

/// Aggregated result CSV, one row per run:
///   run_id, <one column per swept axis>, final_dist, final_loss,
///   eliminated, [eff_shards, tolerated_f, resilience_margin,]
///   [quorum_fires, deadline_fires, stale_dropped, late_rows,] wall_ms
/// final_dist is "nan" when the run has no closed-form reference (dsgd);
/// the hierarchy columns appear only when the grid runs a hierarchical
/// aggregator (eff_shards is the clamped shard count the tree actually
/// ran, which can differ from a swept "shards" axis cell when n < S);
/// the async counter columns appear only when the grid runs the async
/// engine mode.
void write_sweep_csv(const SweepOutcome& outcome, std::ostream& os);

/// Machine-readable result set: {"name", "runs": [{run_id, axes, summary
/// fields, wall_ms}, ...]} with the same stable keys as write_result_json.
void write_sweep_json(const SweepOutcome& outcome, std::ostream& os);

/// Human-readable summary table.
void print_sweep(const SweepOutcome& outcome, std::ostream& os);

}  // namespace abft::sweep

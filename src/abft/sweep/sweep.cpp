#include "abft/sweep/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <ostream>
#include <sstream>
#include <utility>

#include "abft/agg/registry.hpp"
#include "abft/agg/threads.hpp"
#include "abft/util/check.hpp"
#include "abft/util/csv.hpp"
#include "abft/util/table.hpp"

namespace abft::sweep {

namespace {

using util::JsonValue;
using Members = std::vector<std::pair<std::string, JsonValue>>;

// ------------------------------- parsing ------------------------------------

void require_known_keys(const JsonValue& object, std::string_view where,
                        std::initializer_list<std::string_view> allowed) {
  util::require_known_keys(object, "sweep", where, allowed);
}

/// The JSON reader resolves duplicate keys last-wins; a sweep block where
/// the same axis appears twice is a spec contradicting itself, so it must
/// fail loudly instead of silently dropping the first list.
void reject_duplicate_keys(const JsonValue& object, std::string_view where) {
  auto keys = object.keys();
  std::sort(keys.begin(), keys.end());
  const auto dup = std::adjacent_find(keys.begin(), keys.end());
  if (dup != keys.end()) {
    std::ostringstream os;
    os << "sweep: duplicate key \"" << *dup << "\" in " << where;
    throw std::invalid_argument(os.str());
  }
}

std::vector<std::string> parse_string_axis(const JsonValue& values, std::string_view axis) {
  std::vector<std::string> out;
  for (const auto& value : values.as_array()) out.push_back(value.as_string());
  if (out.empty()) {
    throw std::invalid_argument("sweep: the " + std::string(axis) + " axis list is empty");
  }
  return out;
}

std::vector<double> parse_number_axis(const JsonValue& values) {
  std::vector<double> out;
  for (const auto& value : values.as_array()) out.push_back(value.as_number());
  ABFT_REQUIRE(!out.empty(), "sweep axis lists must be non-empty");
  return out;
}

std::uint64_t checked_seed(double value) {
  ABFT_REQUIRE(value >= 0.0 && value <= 9007199254740992.0 && value == std::floor(value),
               "sweep seeds must be integers in [0, 2^53]");
  return static_cast<std::uint64_t>(value);
}

/// Seed axis: an explicit list, or a contiguous range {"from": s, "count": n}.
std::vector<std::uint64_t> parse_seed_axis(const JsonValue& values) {
  std::vector<std::uint64_t> out;
  if (values.is_object()) {
    require_known_keys(values, "seed range", {"from", "count"});
    const std::uint64_t from = checked_seed(values.at("from").as_number());
    const double count = values.at("count").as_number();
    ABFT_REQUIRE(count >= 1.0 && count == std::floor(count) && count <= 1e6,
                 "seed range count must be an integer in [1, 1e6]");
    for (std::uint64_t i = 0; i < static_cast<std::uint64_t>(count); ++i) {
      out.push_back(from + i);
    }
    return out;
  }
  for (const auto& value : values.as_array()) out.push_back(checked_seed(value.as_number()));
  ABFT_REQUIRE(!out.empty(), "sweep axis lists must be non-empty");
  return out;
}

std::string sanitize_token(std::string_view text);

/// Labels are compared after run-id/CSV sanitization: two labels that only
/// differ in characters the tokens drop (e.g. "a b" vs "a-b") would emit
/// indistinguishable axis cells and run ids, so they are duplicates too.
void reject_duplicate_labels(const std::vector<std::string>& labels, std::string_view axis) {
  std::vector<std::string> sorted;
  sorted.reserve(labels.size());
  for (const auto& label : labels) sorted.push_back(sanitize_token(label));
  std::sort(sorted.begin(), sorted.end());
  const auto dup = std::adjacent_find(sorted.begin(), sorted.end());
  if (dup != sorted.end()) {
    std::ostringstream os;
    os << "sweep: duplicate label \"" << *dup << "\" in the " << axis
       << " axis (labels are compared after run-id sanitization)";
    throw std::invalid_argument(os.str());
  }
}

/// A named axis re-specifying a key the base already sets would make the
/// spec contradict itself (which value did the author mean?) — reject.
/// Variants are exempt: a patch exists to override, and applies last.
void reject_base_conflict(const SweepSpec& spec, std::string_view axis, bool swept) {
  if (!swept) return;
  const JsonValue* collision = nullptr;
  if (axis == "participation" || axis == "straggler_probability") {
    if (const auto* axes = spec.base.find("axes")) collision = axes->find(axis);
  } else if (axis == "quorum" || axis == "staleness_cap") {
    // Lives one level down, at base.async.{quorum, staleness_cap}.
    if (const auto* async = spec.base.find("async")) collision = async->find(axis);
  } else if (axis == "shards") {
    // Lives two levels down, at base.aggregator.hierarchy.shards.
    if (const auto* aggregator = spec.base.find("aggregator")) {
      if (aggregator->is_object()) {
        if (const auto* hierarchy = aggregator->find("hierarchy")) {
          collision = hierarchy->find(axis);
        }
      }
    }
  } else if (axis == "coreset_size") {
    // Lives three levels down, at base.aggregator.reduction.coreset.size.
    if (const auto* aggregator = spec.base.find("aggregator")) {
      if (aggregator->is_object()) {
        if (const auto* reduction = aggregator->find("reduction")) {
          if (const auto* coreset = reduction->find("coreset")) {
            collision = coreset->find("size");
          }
        }
      }
    }
  } else if (axis == "reduction_kind") {
    // Re-keys base.aggregator.reduction wholesale, so any base reduction
    // block conflicts (the base kind would be silently replaced).
    if (const auto* aggregator = spec.base.find("aggregator")) {
      if (aggregator->is_object()) collision = aggregator->find("reduction");
    }
  } else {
    collision = spec.base.find(axis);
  }
  if (collision != nullptr) {
    std::ostringstream os;
    os << "sweep: axis \"" << axis << "\" is also set in the base spec — remove one";
    throw std::invalid_argument(os.str());
  }
}

// ------------------------------ expansion -----------------------------------

void set_member(Members& members, std::string_view key, JsonValue value) {
  for (auto& [name, existing] : members) {
    if (name == key) {
      existing = std::move(value);
      return;
    }
  }
  members.emplace_back(std::string(key), std::move(value));
}

/// Sets one key inside the spec's "axes" sub-object (creating it if the base
/// has none) — the participation / straggler axes live a level down.
void set_axes_member(Members& members, std::string_view key, double value) {
  Members axes_members;
  for (const auto& [name, existing] : members) {
    if (name == "axes") axes_members = existing.as_object();
  }
  set_member(axes_members, key, JsonValue::make_number(value));
  set_member(members, "axes", JsonValue::make_object(std::move(axes_members)));
}

/// Sets one key inside the spec's "async" sub-object (creating it if the
/// base has none — an absent async block becomes the default
/// quorum-or-deadline config) — the quorum / staleness_cap axes live a
/// level down.
void set_async_member(Members& members, std::string_view key, double value) {
  Members async_members;
  for (const auto& [name, existing] : members) {
    if (name == "async") async_members = existing.as_object();
  }
  set_member(async_members, key, JsonValue::make_number(value));
  set_member(members, "async", JsonValue::make_object(std::move(async_members)));
}

/// Sets one key inside "aggregator"/"hierarchy" (creating both levels if
/// absent — an absent base aggregator becomes a default hierarchy) — the
/// shards axis lives two levels down.  parse_sweep has already rejected a
/// non-object base aggregator.
void set_hierarchy_member(Members& members, std::string_view key, double value) {
  Members aggregator_members;
  for (const auto& [name, existing] : members) {
    if (name == "aggregator") aggregator_members = existing.as_object();
  }
  Members hierarchy_members;
  for (const auto& [name, existing] : aggregator_members) {
    if (name == "hierarchy") hierarchy_members = existing.as_object();
  }
  set_member(hierarchy_members, key, JsonValue::make_number(value));
  set_member(aggregator_members, "hierarchy",
             JsonValue::make_object(std::move(hierarchy_members)));
  set_member(members, "aggregator", JsonValue::make_object(std::move(aggregator_members)));
}

/// Sets "aggregator"/"reduction"/"coreset"/"size" (creating every level if
/// absent — an absent base aggregator becomes a default-rule coreset
/// reduction) — the coreset_size axis lives three levels down.  parse_sweep
/// has already rejected a non-object base aggregator.  Existing aggregator
/// members (e.g. a hierarchy block the shards axis writes) are preserved,
/// so the two axes compose into per-shard coresets.
void set_coreset_member(Members& members, double value) {
  Members aggregator_members;
  for (const auto& [name, existing] : members) {
    if (name == "aggregator") aggregator_members = existing.as_object();
  }
  Members reduction_members;
  for (const auto& [name, existing] : aggregator_members) {
    if (name == "reduction") reduction_members = existing.as_object();
  }
  Members coreset_members;
  for (const auto& [name, existing] : reduction_members) {
    if (name == "coreset") coreset_members = existing.as_object();
  }
  set_member(coreset_members, "size", JsonValue::make_number(value));
  set_member(reduction_members, "coreset", JsonValue::make_object(std::move(coreset_members)));
  set_member(aggregator_members, "reduction",
             JsonValue::make_object(std::move(reduction_members)));
  set_member(members, "aggregator", JsonValue::make_object(std::move(aggregator_members)));
}

/// Re-keys "aggregator"/"reduction" to {"<kind>": {inner config}} (creating
/// every level if absent) — the reduction_kind axis.  The inner config
/// object a coreset_size axis wrote earlier in the canonical order is
/// carried over under the new key, so the two axes compose (the size axis
/// picks k, the kind axis picks the construction).  parse_sweep has already
/// rejected a non-object base aggregator and a base reduction block.
void set_reduction_kind_member(Members& members, std::string_view kind) {
  Members aggregator_members;
  for (const auto& [name, existing] : members) {
    if (name == "aggregator") aggregator_members = existing.as_object();
  }
  Members reduction_members;
  for (const auto& [name, existing] : aggregator_members) {
    if (name == "reduction") reduction_members = existing.as_object();
  }
  Members inner;
  if (!reduction_members.empty()) inner = reduction_members.front().second.as_object();
  Members rekeyed;
  set_member(rekeyed, kind, JsonValue::make_object(std::move(inner)));
  set_member(aggregator_members, "reduction", JsonValue::make_object(std::move(rekeyed)));
  set_member(members, "aggregator", JsonValue::make_object(std::move(aggregator_members)));
}

std::string number_token(double value) { return util::format_json_number(value); }

/// Run-id / CSV token: labels are free-form, ids must stay shell- and
/// csv-friendly.
std::string sanitize_token(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    out.push_back(keep ? c : '-');
  }
  return out.empty() ? std::string("-") : out;
}

std::string pad_index(std::size_t index, std::size_t total) {
  std::string digits = std::to_string(total == 0 ? 0 : total - 1);
  std::string out = std::to_string(index);
  const std::size_t width = std::max<std::size_t>(3, digits.size());
  while (out.size() < width) out.insert(out.begin(), '0');
  return out;
}

// ------------------------------ output --------------------------------------

using util::write_json_string;

std::string format_wall_ms(double wall_ms) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.3f", wall_ms);
  return buffer;
}

std::string final_dist_cell(const scenario::ScenarioResult& result) {
  return result.distance_to_reference ? number_token(*result.distance_to_reference)
                                      : std::string("nan");
}

/// The async counter columns appear only when the grid ran the async engine
/// (every run of a grid shares the base driver config, so the front run
/// decides for the whole table).
bool has_async_columns(const SweepOutcome& outcome) {
  return !outcome.runs.empty() && outcome.runs.front().result.async_stats.has_value();
}

/// The hierarchy bookkeeping columns appear only when the grid ran a
/// hierarchical aggregator.  eff_shards is the EFFECTIVE shard count the
/// tree ran with — on a roster of n < S agents it clamps to n, so it can
/// legitimately differ from the swept "shards" axis cell.
bool has_hierarchy_columns(const SweepOutcome& outcome) {
  return !outcome.runs.empty() && outcome.runs.front().result.hierarchy_bounds.has_value();
}

/// Which optional column groups a table carries.
struct RowShape {
  bool hierarchy = false;
  bool async_stats = false;
};

RowShape row_shape(const SweepOutcome& outcome) {
  return RowShape{has_hierarchy_columns(outcome), has_async_columns(outcome)};
}

/// One header/row shape shared by the CSV writer and the summary table.
std::vector<std::string> result_header(const SweepOutcome& outcome) {
  std::vector<std::string> header{"run_id"};
  if (!outcome.runs.empty()) {
    for (const auto& cell : outcome.runs.front().axes) header.push_back(cell.axis);
  }
  header.insert(header.end(), {"final_dist", "final_loss", "eliminated"});
  const RowShape shape = row_shape(outcome);
  if (shape.hierarchy) {
    header.insert(header.end(), {"eff_shards", "tolerated_f", "resilience_margin"});
  }
  if (shape.async_stats) {
    header.insert(header.end(),
                  {"quorum_fires", "deadline_fires", "stale_dropped", "late_rows"});
  }
  header.push_back("wall_ms");
  return header;
}

std::vector<std::string> result_row(const SweepRunResult& run, RowShape shape) {
  std::vector<std::string> row{run.run_id};
  for (const auto& cell : run.axes) row.push_back(cell.value);
  row.push_back(final_dist_cell(run.result));
  row.push_back(number_token(run.result.final_cost));
  row.push_back(std::to_string(run.result.eliminated_agents));
  if (shape.hierarchy) {
    const auto bounds = run.result.hierarchy_bounds.value_or(agg::HierarchyBounds{});
    row.push_back(std::to_string(bounds.shards));
    row.push_back(std::to_string(bounds.tolerated_f));
    row.push_back(number_token(bounds.resilience_margin));
  }
  if (shape.async_stats) {
    const auto stats = run.result.async_stats.value_or(engine::AsyncStats{});
    row.push_back(std::to_string(stats.quorum_fires));
    row.push_back(std::to_string(stats.deadline_fires));
    row.push_back(std::to_string(stats.stale_dropped));
    row.push_back(std::to_string(stats.late_rows));
  }
  row.push_back(format_wall_ms(run.wall_ms));
  return row;
}

}  // namespace

bool is_sweep_json(const JsonValue& json) { return json.find("sweep") != nullptr; }

std::string SweepRunResult::axis_value(std::string_view axis) const {
  for (const auto& cell : axes) {
    if (cell.axis == axis) return cell.value;
  }
  return "";
}

void set_base_member(SweepSpec* spec, std::string_view key, JsonValue value) {
  ABFT_REQUIRE(spec->base.is_object(), "sweep base must be a scenario object");
  Members members = spec->base.as_object();
  set_member(members, key, std::move(value));
  spec->base = JsonValue::make_object(std::move(members));
}

SweepSpec parse_sweep(const JsonValue& json) {
  require_known_keys(json, "sweep document", {"name", "threads", "base", "sweep"});
  reject_duplicate_keys(json, "sweep document");
  SweepSpec spec;
  spec.name = json.string_or("name", "");
  const double threads = json.number_or("threads", 1);
  ABFT_REQUIRE(threads >= 1.0 && threads == std::floor(threads),
               "sweep threads must be an integer >= 1");
  spec.threads = static_cast<int>(threads);
  spec.base = json.at("base");
  ABFT_REQUIRE(spec.base.is_object(), "sweep base must be a scenario object");
  reject_duplicate_keys(spec.base, "base");

  const JsonValue& sw = json.at("sweep");
  ABFT_REQUIRE(sw.is_object(), "the sweep block must be an object of axes");
  require_known_keys(sw, "sweep block",
                     {"aggregator", "mode", "precision", "f", "shards", "coreset_size",
                      "reduction_kind", "quorum", "staleness_cap", "seed",
                      "drop_probability", "participation", "straggler_probability", "faults",
                      "variants"});
  reject_duplicate_keys(sw, "sweep block");

  if (const auto* axis = sw.find("aggregator")) {
    spec.aggregator = parse_string_axis(*axis, "aggregator");
  }
  if (const auto* axis = sw.find("mode")) {
    spec.mode = parse_string_axis(*axis, "mode");
    for (const auto& mode : spec.mode) agg::agg_mode_from_string(mode);  // early validation
  }
  if (const auto* axis = sw.find("precision")) {
    spec.precision = parse_string_axis(*axis, "precision");
    for (const auto& precision : spec.precision) {
      agg::precision_from_string(precision);  // early validation
    }
  }
  if (const auto* axis = sw.find("f")) {
    for (const double value : parse_number_axis(*axis)) {
      ABFT_REQUIRE(value >= 0.0 && value == std::floor(value), "f axis entries must be"
                   " non-negative integers");
      spec.f.push_back(static_cast<int>(value));
    }
  }
  if (const auto* axis = sw.find("shards")) {
    for (const double value : parse_number_axis(*axis)) {
      ABFT_REQUIRE(value >= 1.0 && value == std::floor(value),
                   "shards axis entries must be integers >= 1");
      spec.shards.push_back(static_cast<int>(value));
    }
    ABFT_REQUIRE(spec.aggregator.empty(),
                 "the shards axis cannot combine with an aggregator axis — the rule strings "
                 "would clobber the hierarchy object; use variants instead");
    const auto* base_aggregator = spec.base.find("aggregator");
    ABFT_REQUIRE(base_aggregator == nullptr ||
                     (base_aggregator->is_object() &&
                      base_aggregator->find("hierarchy") != nullptr),
                 "the shards axis needs the base aggregator to be a {\"hierarchy\": ...} "
                 "object (or absent, defaulting to one)");
  }
  if (const auto* axis = sw.find("coreset_size")) {
    for (const double value : parse_number_axis(*axis)) {
      ABFT_REQUIRE(value >= 0.0 && value == std::floor(value),
                   "coreset_size axis entries must be non-negative integers (0 = auto)");
      spec.coreset_size.push_back(static_cast<int>(value));
    }
    ABFT_REQUIRE(spec.aggregator.empty(),
                 "the coreset_size axis cannot combine with an aggregator axis — the rule "
                 "strings would clobber the reduction object; use variants instead");
    const auto* base_aggregator = spec.base.find("aggregator");
    ABFT_REQUIRE(base_aggregator == nullptr || base_aggregator->is_object(),
                 "the coreset_size axis needs the base aggregator to be an object "
                 "(or absent, defaulting to the default rule)");
  }
  if (const auto* axis = sw.find("reduction_kind")) {
    spec.reduction_kind = parse_string_axis(*axis, "reduction_kind");
    for (const auto& kind : spec.reduction_kind) {
      ABFT_REQUIRE(kind == "coreset" || kind == "sample",
                   "reduction_kind axis entries must be \"coreset\" or \"sample\"");
    }
    ABFT_REQUIRE(spec.aggregator.empty(),
                 "the reduction_kind axis cannot combine with an aggregator axis — the rule "
                 "strings would clobber the reduction object; use variants instead");
    const auto* base_aggregator = spec.base.find("aggregator");
    ABFT_REQUIRE(base_aggregator == nullptr || base_aggregator->is_object(),
                 "the reduction_kind axis needs the base aggregator to be an object "
                 "(or absent, defaulting to the default rule)");
  }
  if (const auto* axis = sw.find("quorum")) {
    for (const double value : parse_number_axis(*axis)) {
      ABFT_REQUIRE(value >= 0.0 && value == std::floor(value),
                   "quorum axis entries must be non-negative integers (0 = full roster)");
      spec.quorum.push_back(static_cast<int>(value));
    }
  }
  if (const auto* axis = sw.find("staleness_cap")) {
    for (const double value : parse_number_axis(*axis)) {
      ABFT_REQUIRE(value >= 0.0 && value == std::floor(value),
                   "staleness_cap axis entries must be non-negative integers");
      spec.staleness_cap.push_back(static_cast<int>(value));
    }
  }
  if (const auto* axis = sw.find("seed")) spec.seed = parse_seed_axis(*axis);
  if (const auto* axis = sw.find("drop_probability")) {
    spec.drop_probability = parse_number_axis(*axis);
  }
  if (const auto* axis = sw.find("participation")) {
    spec.participation = parse_number_axis(*axis);
  }
  if (const auto* axis = sw.find("straggler_probability")) {
    spec.straggler_probability = parse_number_axis(*axis);
  }
  if (const auto* axis = sw.find("faults")) {
    std::vector<std::string> labels;
    for (const auto& preset : axis->as_array()) {
      require_known_keys(preset, "fault preset", {"label", "faults"});
      FaultPreset parsed{preset.at("label").as_string(), preset.at("faults")};
      ABFT_REQUIRE(parsed.faults.is_array(), "a fault preset's faults must be an array");
      labels.push_back(parsed.label);
      spec.faults.push_back(std::move(parsed));
    }
    ABFT_REQUIRE(!spec.faults.empty(), "sweep axis lists must be non-empty");
    reject_duplicate_labels(labels, "faults");
  }
  if (const auto* axis = sw.find("variants")) {
    std::vector<std::string> labels;
    for (const auto& variant : axis->as_array()) {
      require_known_keys(variant, "variant", {"label", "patch"});
      Variant parsed{variant.at("label").as_string(), variant.at("patch")};
      ABFT_REQUIRE(parsed.patch.is_object(), "a variant's patch must be an object");
      reject_duplicate_keys(parsed.patch, "variant patch \"" + parsed.label + "\"");
      labels.push_back(parsed.label);
      spec.variants.push_back(std::move(parsed));
    }
    ABFT_REQUIRE(!spec.variants.empty(), "sweep axis lists must be non-empty");
    reject_duplicate_labels(labels, "variants");
  }

  const bool any_axis = !spec.aggregator.empty() || !spec.mode.empty() ||
                        !spec.precision.empty() || !spec.f.empty() ||
                        !spec.shards.empty() || !spec.coreset_size.empty() ||
                        !spec.reduction_kind.empty() ||
                        !spec.quorum.empty() || !spec.staleness_cap.empty() ||
                        !spec.seed.empty() || !spec.drop_probability.empty() ||
                        !spec.participation.empty() || !spec.straggler_probability.empty() ||
                        !spec.faults.empty() || !spec.variants.empty();
  ABFT_REQUIRE(any_axis, "the sweep block must sweep at least one axis");

  reject_base_conflict(spec, "aggregator", !spec.aggregator.empty());
  reject_base_conflict(spec, "mode", !spec.mode.empty());
  reject_base_conflict(spec, "precision", !spec.precision.empty());
  reject_base_conflict(spec, "f", !spec.f.empty());
  reject_base_conflict(spec, "shards", !spec.shards.empty());
  reject_base_conflict(spec, "coreset_size", !spec.coreset_size.empty());
  reject_base_conflict(spec, "reduction_kind", !spec.reduction_kind.empty());
  reject_base_conflict(spec, "quorum", !spec.quorum.empty());
  reject_base_conflict(spec, "staleness_cap", !spec.staleness_cap.empty());
  reject_base_conflict(spec, "seed", !spec.seed.empty());
  reject_base_conflict(spec, "drop_probability", !spec.drop_probability.empty());
  reject_base_conflict(spec, "participation", !spec.participation.empty());
  reject_base_conflict(spec, "straggler_probability", !spec.straggler_probability.empty());
  reject_base_conflict(spec, "faults", !spec.faults.empty());
  return spec;
}

SweepSpec load_sweep_file(const std::string& path) {
  return parse_sweep(util::parse_json_file(path));
}

std::vector<ExpandedRun> expand_sweep(const SweepSpec& spec) {
  ABFT_REQUIRE(spec.base.is_object(), "sweep base must be a scenario object");

  // Active axes in canonical order; each knows how to apply one position
  // onto the merged member list and to name its value.  apply returns the
  // RAW human-readable value: it lands verbatim in the AxisCell (the CSV
  // layer quotes commas and quotes per RFC 4180), and the expansion loop
  // sanitizes it separately for the run-id token.  Sanitizing here used to
  // mangle comma-bearing fault/variant labels in the CSV cells themselves.
  struct Axis {
    std::string name;
    std::size_t size;
    std::function<std::string(std::size_t, Members&)> apply;  // returns raw value
  };
  std::vector<Axis> axes;
  if (!spec.aggregator.empty()) {
    axes.push_back({"aggregator", spec.aggregator.size(), [&](std::size_t i, Members& m) {
                      set_member(m, "aggregator", JsonValue::make_string(spec.aggregator[i]));
                      return spec.aggregator[i];
                    }});
  }
  if (!spec.mode.empty()) {
    axes.push_back({"mode", spec.mode.size(), [&](std::size_t i, Members& m) {
                      set_member(m, "mode", JsonValue::make_string(spec.mode[i]));
                      return spec.mode[i];
                    }});
  }
  if (!spec.precision.empty()) {
    axes.push_back({"precision", spec.precision.size(), [&](std::size_t i, Members& m) {
                      set_member(m, "precision", JsonValue::make_string(spec.precision[i]));
                      return spec.precision[i];
                    }});
  }
  if (!spec.f.empty()) {
    axes.push_back({"f", spec.f.size(), [&](std::size_t i, Members& m) {
                      set_member(m, "f", JsonValue::make_number(spec.f[i]));
                      return std::to_string(spec.f[i]);
                    }});
  }
  if (!spec.shards.empty()) {
    axes.push_back({"shards", spec.shards.size(), [&](std::size_t i, Members& m) {
                      set_hierarchy_member(m, "shards", spec.shards[i]);
                      return std::to_string(spec.shards[i]);
                    }});
  }
  if (!spec.coreset_size.empty()) {
    axes.push_back({"coreset_size", spec.coreset_size.size(), [&](std::size_t i, Members& m) {
                      set_coreset_member(m, spec.coreset_size[i]);
                      return std::to_string(spec.coreset_size[i]);
                    }});
  }
  if (!spec.reduction_kind.empty()) {
    axes.push_back(
        {"reduction_kind", spec.reduction_kind.size(), [&](std::size_t i, Members& m) {
           set_reduction_kind_member(m, spec.reduction_kind[i]);
           return spec.reduction_kind[i];
         }});
  }
  if (!spec.quorum.empty()) {
    axes.push_back({"quorum", spec.quorum.size(), [&](std::size_t i, Members& m) {
                      set_async_member(m, "quorum", spec.quorum[i]);
                      return std::to_string(spec.quorum[i]);
                    }});
  }
  if (!spec.staleness_cap.empty()) {
    axes.push_back({"staleness_cap", spec.staleness_cap.size(), [&](std::size_t i, Members& m) {
                      set_async_member(m, "staleness_cap", spec.staleness_cap[i]);
                      return std::to_string(spec.staleness_cap[i]);
                    }});
  }
  if (!spec.seed.empty()) {
    axes.push_back({"seed", spec.seed.size(), [&](std::size_t i, Members& m) {
                      set_member(m, "seed",
                                 JsonValue::make_number(static_cast<double>(spec.seed[i])));
                      return std::to_string(spec.seed[i]);
                    }});
  }
  if (!spec.drop_probability.empty()) {
    axes.push_back(
        {"drop_probability", spec.drop_probability.size(), [&](std::size_t i, Members& m) {
           set_member(m, "drop_probability", JsonValue::make_number(spec.drop_probability[i]));
           return number_token(spec.drop_probability[i]);
         }});
  }
  if (!spec.participation.empty()) {
    axes.push_back({"participation", spec.participation.size(), [&](std::size_t i, Members& m) {
                      set_axes_member(m, "participation", spec.participation[i]);
                      return number_token(spec.participation[i]);
                    }});
  }
  if (!spec.straggler_probability.empty()) {
    axes.push_back({"straggler_probability", spec.straggler_probability.size(),
                    [&](std::size_t i, Members& m) {
                      set_axes_member(m, "straggler_probability",
                                      spec.straggler_probability[i]);
                      return number_token(spec.straggler_probability[i]);
                    }});
  }
  if (!spec.faults.empty()) {
    axes.push_back({"faults", spec.faults.size(), [&](std::size_t i, Members& m) {
                      set_member(m, "faults", spec.faults[i].faults);
                      return spec.faults[i].label;
                    }});
  }
  if (!spec.variants.empty()) {
    axes.push_back({"variants", spec.variants.size(), [&](std::size_t i, Members& m) {
                      for (const auto& [key, value] : spec.variants[i].patch.as_object()) {
                        set_member(m, key, value);
                      }
                      return spec.variants[i].label;
                    }});
  }
  ABFT_REQUIRE(!axes.empty(), "the sweep block must sweep at least one axis");

  std::size_t total = 1;
  for (const auto& axis : axes) {
    ABFT_REQUIRE(axis.size > 0 && total <= 1000000 / axis.size,
                 "sweep grid exceeds 1e6 runs — split the spec");
    total *= axis.size;
  }

  std::vector<ExpandedRun> runs;
  runs.reserve(total);
  for (std::size_t index = 0; index < total; ++index) {
    // Row-major decomposition: the LAST axis varies fastest.
    std::vector<std::size_t> position(axes.size());
    std::size_t remainder = index;
    for (std::size_t a = axes.size(); a-- > 0;) {
      position[a] = remainder % axes[a].size;
      remainder /= axes[a].size;
    }

    ExpandedRun run;
    Members members = spec.base.as_object();
    std::string run_id = pad_index(index, total);
    for (std::size_t a = 0; a < axes.size(); ++a) {
      std::string value = axes[a].apply(position[a], members);
      run_id += '_' + axes[a].name + '=' + sanitize_token(value);
      run.axes.push_back(AxisCell{axes[a].name, std::move(value)});
    }
    run.run_id = std::move(run_id);
    try {
      run.spec = scenario::parse_scenario(JsonValue::make_object(std::move(members)));
    } catch (const std::exception& error) {
      throw std::invalid_argument("sweep run " + run.run_id + ": " + error.what());
    }
    if (run.spec.name.empty()) run.spec.name = run.run_id;
    runs.push_back(std::move(run));
  }
  return runs;
}

SweepOutcome run_sweep(const SweepSpec& spec, int threads_override) {
  const int threads = threads_override > 0 ? threads_override : spec.threads;
  ABFT_REQUIRE(threads >= 1, "sweep threads must be >= 1");
  std::vector<ExpandedRun> runs = expand_sweep(spec);

  SweepOutcome outcome;
  outcome.name = spec.name;
  outcome.runs.resize(runs.size());
  // Independent engines per run: results land in their grid slot, so the
  // outcome is row-for-row identical at every thread count (and identical
  // to run-by-run run_scenario).  Inside a pool worker the per-run engines'
  // own parallel_for degenerates to serial (nested-dispatch rule), so a
  // parallel sweep never oversubscribes.
  agg::ThreadPool pool(std::min(threads, static_cast<int>(std::max<std::size_t>(
                                             runs.size(), 1))));
  // Dynamic scheduling: run costs are heterogeneous (and grid order
  // correlates cost with position — e.g. a mode axis groups all the slow
  // exact runs together), so workers drain a shared cursor instead of
  // taking parallel_for's static chunks.  Each run still lands in its own
  // grid slot, so the outcome stays row-for-row identical.
  std::atomic<int> cursor{0};
  const int total_runs = static_cast<int>(runs.size());
  pool.parallel_for(0, total_runs, threads, [&](int, int) {
    for (int i = cursor.fetch_add(1); i < total_runs; i = cursor.fetch_add(1)) {
      auto& slot = outcome.runs[static_cast<std::size_t>(i)];
      auto& run = runs[static_cast<std::size_t>(i)];
      const auto start = std::chrono::steady_clock::now();
      try {
        slot.result = scenario::run_scenario(run.spec);
      } catch (const std::exception& error) {
        // Re-anchor the failure to its grid cell; parallel_for rethrows the
        // first failing chunk's exception to the caller.
        throw std::invalid_argument("sweep run " + run.run_id + ": " + error.what());
      }
      const auto stop = std::chrono::steady_clock::now();
      slot.wall_ms = std::chrono::duration<double, std::milli>(stop - start).count();
      slot.run_id = std::move(run.run_id);
      slot.axes = std::move(run.axes);
    }
  });
  return outcome;
}

void write_sweep_csv(const SweepOutcome& outcome, std::ostream& os) {
  util::CsvWriter csv(os, result_header(outcome));
  const RowShape shape = row_shape(outcome);
  for (const auto& run : outcome.runs) csv.add_row(result_row(run, shape));
}

void write_sweep_json(const SweepOutcome& outcome, std::ostream& os) {
  os << "{\n  \"name\": ";
  write_json_string(os, outcome.name);
  os << ",\n  \"runs\": [";
  for (std::size_t i = 0; i < outcome.runs.size(); ++i) {
    const auto& run = outcome.runs[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"run_id\": ";
    write_json_string(os, run.run_id);
    os << ", \"axes\": {";
    for (std::size_t c = 0; c < run.axes.size(); ++c) {
      if (c > 0) os << ", ";
      write_json_string(os, run.axes[c].axis);
      os << ": ";
      write_json_string(os, run.axes[c].value);
    }
    os << "}, \"driver\": ";
    write_json_string(os, run.result.spec.driver);
    os << ", \"aggregator\": ";
    write_json_string(os, run.result.spec.aggregator);
    os << ", \"mode\": \"" << agg::to_string(run.result.spec.mode) << "\"";
    os << ", \"precision\": \"" << agg::to_string(run.result.spec.precision) << "\"";
    // A diverged run's final_cost/distance can be nan or inf, which have no
    // JSON spelling; write_json_number emits null instead of an unparseable
    // bare token.
    os << ", \"final_cost\": ";
    util::write_json_number(os, run.result.final_cost);
    if (run.result.distance_to_reference) {
      os << ", \"distance_to_reference\": ";
      util::write_json_number(os, *run.result.distance_to_reference);
    }
    os << ", \"eliminated_agents\": " << run.result.eliminated_agents;
    os << ", \"departed_agents\": " << run.result.departed_agents;
    if (run.result.hierarchy_bounds) {
      const auto& b = *run.result.hierarchy_bounds;
      os << ", \"hierarchy\": {\"shards\": " << b.shards
         << ", \"requested_shards\": " << run.result.spec.hierarchy->shards
         << ", \"f_leaf\": " << b.f_leaf << ", \"f_root\": " << b.f_root
         << ", \"tolerated_f\": " << b.tolerated_f
         << ", \"resilience_margin\": " << number_token(b.resilience_margin) << "}";
    }
    if (run.result.async_stats) {
      const auto& a = *run.result.async_stats;
      os << ", \"async\": {\"quorum_fires\": " << a.quorum_fires
         << ", \"deadline_fires\": " << a.deadline_fires
         << ", \"stale_dropped\": " << a.stale_dropped
         << ", \"late_rows\": " << a.late_rows << "}";
    }
    os << ", \"wall_ms\": " << format_wall_ms(run.wall_ms) << "}";
  }
  os << "\n  ]\n}\n";
}

void print_sweep(const SweepOutcome& outcome, std::ostream& os) {
  os << "sweep: " << (outcome.name.empty() ? "(unnamed)" : outcome.name) << " — "
     << outcome.runs.size() << " runs\n";
  util::Table table(result_header(outcome));
  const RowShape shape = row_shape(outcome);
  for (const auto& run : outcome.runs) table.add_row(result_row(run, shape));
  table.print(os);
}

}  // namespace abft::sweep

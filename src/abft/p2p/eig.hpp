// Byzantine broadcast for the peer-to-peer architecture of Figure 1.  The
// paper (Section 1.4) notes the server-based algorithm can be simulated on a
// complete peer-to-peer network when f < n/3 using a Byzantine broadcast
// primitive [Lynch 96].  We implement the classic recursive Oral-Messages
// protocol OM(f) of Lamport, Shostak and Pease — the protocol whose
// information flow the EIG (exponential information gathering) tree records —
// with pluggable misbehaviour for faulty relays.
//
// Guarantees for n > 3f (validated by tests):
//   IC1 (agreement)  all honest nodes decide the same value;
//   IC2 (validity)   if the source is honest they decide the source's value.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "abft/linalg/vector.hpp"
#include "abft/util/rng.hpp"

namespace abft::p2p {

using Payload = linalg::Vector;

/// How a faulty node behaves when relaying inside the protocol (including
/// the initial send when it is the source).
class RelayStrategy {
 public:
  virtual ~RelayStrategy() = default;

  /// The value this faulty node forwards to `receiver`, given the value it
  /// actually `held` (what an honest node would forward) and the commander
  /// chain `path` so far.  Return std::nullopt to stay silent (the receiver
  /// substitutes the protocol default).  The p2p driver runs broadcasts
  /// from distinct sources concurrently when agg_threads > 1, so
  /// implementations must be safe to call concurrently (each call gets its
  /// own rng; the built-in strategies are stateless).
  [[nodiscard]] virtual std::optional<Payload> relay(int receiver, std::span<const int> path,
                                                     const Payload& held,
                                                     util::Rng& rng) const = 0;
};

/// Sends held + per-receiver Gaussian noise: full equivocation.
class EquivocateStrategy final : public RelayStrategy {
 public:
  explicit EquivocateStrategy(double stddev);
  [[nodiscard]] std::optional<Payload> relay(int receiver, std::span<const int> path,
                                             const Payload& held, util::Rng& rng) const override;

 private:
  double stddev_;
};

/// Never forwards anything.
class SilentStrategy final : public RelayStrategy {
 public:
  [[nodiscard]] std::optional<Payload> relay(int receiver, std::span<const int> path,
                                             const Payload& held, util::Rng& rng) const override;
};

/// Forwards a fixed payload to everyone, regardless of what it holds.
class FixedValueStrategy final : public RelayStrategy {
 public:
  explicit FixedValueStrategy(Payload payload);
  [[nodiscard]] std::optional<Payload> relay(int receiver, std::span<const int> path,
                                             const Payload& held, util::Rng& rng) const override;

 private:
  Payload payload_;
};

struct BroadcastOutcome {
  /// decisions[i] is node i's decision; meaningful for honest nodes only.
  std::vector<Payload> decisions;
  long messages_sent = 0;
};

class OralMessagesBroadcast {
 public:
  /// n nodes tolerating up to f Byzantine nodes; requires n > 3f.
  OralMessagesBroadcast(int n, int f);

  /// Runs OM(f) from `source` holding `value`.  `strategies[i]` non-null
  /// marks node i as faulty with that relay behaviour (honest relays copy
  /// faithfully).  The protocol default value is the zero vector.
  [[nodiscard]] BroadcastOutcome broadcast(int source, const Payload& value,
                                           const std::vector<const RelayStrategy*>& strategies,
                                           std::uint64_t seed) const;

  /// Row-writer entry point: the source value arrives as a raw batch-row
  /// span (how the batched p2p driver stores per-source values).  The span
  /// is copied into a Payload exactly once at protocol entry.
  [[nodiscard]] BroadcastOutcome broadcast(int source, std::span<const double> value,
                                           const std::vector<const RelayStrategy*>& strategies,
                                           std::uint64_t seed) const;

  [[nodiscard]] int num_nodes() const noexcept { return n_; }
  [[nodiscard]] int fault_bound() const noexcept { return f_; }

 private:
  int n_;
  int f_;
};

}  // namespace abft::p2p

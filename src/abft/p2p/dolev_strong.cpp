#include "abft/p2p/dolev_strong.hpp"

#include <algorithm>

#include "abft/util/check.hpp"

namespace abft::p2p {

EquivocatingDsStrategy::EquivocatingDsStrategy(double offset, double forward_probability)
    : offset_(offset), forward_probability_(forward_probability) {
  ABFT_REQUIRE(0.0 <= forward_probability && forward_probability <= 1.0,
               "forward probability must be in [0, 1]");
}

std::vector<std::optional<DsPayload>> EquivocatingDsStrategy::initial_sends(
    int num_nodes, const DsPayload& value, util::Rng& /*rng*/) const {
  std::vector<std::optional<DsPayload>> sends(static_cast<std::size_t>(num_nodes));
  for (int k = 0; k < num_nodes; ++k) {
    DsPayload variant = value;
    variant[0] += offset_ * static_cast<double>(k);
    sends[static_cast<std::size_t>(k)] = std::move(variant);
  }
  return sends;
}

bool EquivocatingDsStrategy::forward_to(int /*receiver*/, int /*round*/, util::Rng& rng) const {
  return rng.uniform() < forward_probability_;
}

std::vector<std::optional<DsPayload>> SilentDsStrategy::initial_sends(
    int num_nodes, const DsPayload& /*value*/, util::Rng& /*rng*/) const {
  return std::vector<std::optional<DsPayload>>(static_cast<std::size_t>(num_nodes));
}

bool SilentDsStrategy::forward_to(int /*receiver*/, int /*round*/, util::Rng& /*rng*/) const {
  return false;
}

DolevStrongBroadcast::DolevStrongBroadcast(int n, int f) : n_(n), f_(f) {
  ABFT_REQUIRE(n > 0, "need at least one node");
  ABFT_REQUIRE(0 <= f && f < n, "dolev-strong needs 0 <= f < n");
}

namespace {

struct ChainMessage {
  DsPayload value;
  std::vector<int> chain;  // signer ids, chain[0] == source, all distinct
};

bool already_extracted(const std::vector<DsPayload>& extracted, const DsPayload& value) {
  return std::find(extracted.begin(), extracted.end(), value) != extracted.end();
}

}  // namespace

DsOutcome DolevStrongBroadcast::broadcast(int source, const DsPayload& value,
                                          const std::vector<const DsStrategy*>& strategies,
                                          std::uint64_t seed) const {
  ABFT_REQUIRE(0 <= source && source < n_, "source out of range");
  ABFT_REQUIRE(static_cast<int>(strategies.size()) == n_, "one strategy slot per node");
  ABFT_REQUIRE(value.dim() > 0, "broadcast payload must be non-empty");
  int faulty = 0;
  for (const auto* s : strategies) {
    if (s != nullptr) ++faulty;
  }
  ABFT_REQUIRE(faulty <= f_, "more faulty nodes than the declared bound");

  util::Rng master(seed);
  std::vector<util::Rng> node_rng;
  node_rng.reserve(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) node_rng.push_back(master.split());

  DsOutcome outcome;
  const DsPayload default_value(value.dim());

  // Per-node extracted value sets.  Honest nodes only ever need the first
  // two distinct values (two is already proof of source equivocation), which
  // keeps the message complexity polynomial — the classic optimization.
  std::vector<std::vector<DsPayload>> extracted(static_cast<std::size_t>(n_));
  std::vector<std::vector<ChainMessage>> inbox(static_cast<std::size_t>(n_));
  std::vector<std::vector<ChainMessage>> next_inbox(static_cast<std::size_t>(n_));

  // Round 1: the source signs and sends.
  const auto* source_strategy = strategies[static_cast<std::size_t>(source)];
  if (source_strategy == nullptr) {
    extracted[static_cast<std::size_t>(source)].push_back(value);
    for (int k = 0; k < n_; ++k) {
      if (k == source) continue;
      inbox[static_cast<std::size_t>(k)].push_back(ChainMessage{value, {source}});
      ++outcome.messages_sent;
    }
  } else {
    const auto sends = source_strategy->initial_sends(
        n_, value, node_rng[static_cast<std::size_t>(source)]);
    ABFT_REQUIRE(static_cast<int>(sends.size()) == n_, "strategy must address every node");
    for (int k = 0; k < n_; ++k) {
      if (k == source || !sends[static_cast<std::size_t>(k)].has_value()) continue;
      inbox[static_cast<std::size_t>(k)].push_back(
          ChainMessage{*sends[static_cast<std::size_t>(k)], {source}});
      ++outcome.messages_sent;
    }
  }

  // Rounds 1 .. f+1: process inboxes; new extractions are re-signed and
  // forwarded into the next round.
  for (int round = 1; round <= f_ + 1; ++round) {
    outcome.rounds_used = round;
    for (int node = 0; node < n_; ++node) {
      auto& my_extracted = extracted[static_cast<std::size_t>(node)];
      for (auto& message : inbox[static_cast<std::size_t>(node)]) {
        // Signature-chain validation (the simulator constructs only honest
        // chains, but faulty delivery timing must still be rejected).
        if (static_cast<int>(message.chain.size()) != round) continue;
        if (message.chain.front() != source) continue;
        if (std::find(message.chain.begin(), message.chain.end(), node) !=
            message.chain.end()) {
          continue;
        }
        if (already_extracted(my_extracted, message.value)) continue;
        if (my_extracted.size() >= 2) continue;  // two values already prove equivocation
        my_extracted.push_back(message.value);

        if (round == f_ + 1) continue;  // no forwarding after the last round
        const auto* strategy = strategies[static_cast<std::size_t>(node)];
        std::vector<int> chain = message.chain;
        chain.push_back(node);
        for (int receiver = 0; receiver < n_; ++receiver) {
          if (receiver == node ||
              std::find(chain.begin(), chain.end(), receiver) != chain.end()) {
            continue;
          }
          if (strategy != nullptr &&
              !strategy->forward_to(receiver, round + 1,
                                    node_rng[static_cast<std::size_t>(node)])) {
            continue;
          }
          next_inbox[static_cast<std::size_t>(receiver)].push_back(
              ChainMessage{message.value, chain});
          ++outcome.messages_sent;
        }
      }
      inbox[static_cast<std::size_t>(node)].clear();
    }
    std::swap(inbox, next_inbox);
  }

  outcome.decisions.assign(static_cast<std::size_t>(n_), default_value);
  for (int node = 0; node < n_; ++node) {
    const auto& values = extracted[static_cast<std::size_t>(node)];
    if (values.size() == 1) outcome.decisions[static_cast<std::size_t>(node)] = values.front();
  }
  return outcome;
}

DsOutcome DolevStrongBroadcast::broadcast(int source, std::span<const double> value,
                                          const std::vector<const DsStrategy*>& strategies,
                                          std::uint64_t seed) const {
  return broadcast(source, DsPayload(std::vector<double>(value.begin(), value.end())), strategies,
                   seed);
}

}  // namespace abft::p2p

// Peer-to-peer DGD (Figure 1, right): no trusted server; every agent
// maintains its own estimate, gradients are exchanged with Byzantine
// broadcast so all honest agents agree on the same n-vector multiset each
// round, and each honest agent then applies the same gradient filter and
// update locally.  With f < n/3 this simulates the server-based algorithm
// exactly — all honest estimates remain identical (asserted by tests).
#pragma once

#include "abft/agg/aggregator.hpp"
#include "abft/engine/axes.hpp"
#include "abft/p2p/eig.hpp"
#include "abft/sim/agent.hpp"
#include "abft/sim/dgd.hpp"
#include "abft/sim/trace.hpp"

namespace abft::p2p {

struct P2pDgdConfig {
  linalg::Vector x0;
  opt::Box box;
  const opt::StepSchedule* schedule = nullptr;
  int iterations = 0;
  /// Declared fault bound; the broadcast layer requires n > 3f.
  int f = 0;
  std::uint64_t seed = 0;
  /// Round-level parallelism: width of the persistent thread pool that
  /// parallelizes honest-gradient computation, the per-source broadcasts and
  /// the per-node filter loop (each node owns its decision batch, workspace
  /// and estimate, so traces are bit-identical at every thread count).
  /// 1 = fully single-threaded.
  int agg_threads = 1;
  /// Numerical mode of every honest node's gradient filter (see
  /// agg/batch.hpp).  All honest nodes share one mode, so agreement among
  /// honest estimates is preserved in either mode.
  agg::AggMode agg_mode = agg::AggMode::exact;
  /// Compute precision of every honest node's fast lane (agg/batch.hpp):
  /// f32 demotes the bandwidth-bound kernel inputs.  Only meaningful with
  /// agg_mode == fast; a no-op under exact.
  agg::Precision agg_precision = agg::Precision::f64;
  /// Round-perturbation axes (engine/axes.hpp): a non-participating node
  /// skips the round (no gradient, no broadcast, no update); a straggling
  /// source's broadcast misses the round's close for every receiver (it
  /// still computes and updates — its outbound message lagged, not its
  /// inbound); churned agents leave for good and a churned honest node's
  /// trace stops growing.  Defaults are a no-op (bit-identical run).
  engine::ScenarioAxes axes;
};

struct P2pDgdResult {
  std::vector<int> honest_nodes;
  /// traces[k] belongs to honest_nodes[k]; identical across k by agreement
  /// when every axis is off (partial participation breaks lockstep by
  /// design).
  std::vector<sim::Trace> traces;
  long broadcast_messages = 0;
  /// Agents eliminated by step S1 / departed via the churn axis.
  int eliminated_agents = 0;
  int departed_agents = 0;
};

/// Runs peer-to-peer DGD.  Faulty agents pick their gradient message with
/// their FaultModel (as in the server-based simulation) and additionally
/// misbehave inside the broadcast protocol with `faulty_relay` when provided
/// (nullptr = they relay faithfully and only lie at the source).
P2pDgdResult run_p2p_dgd(const std::vector<sim::AgentSpec>& roster, const P2pDgdConfig& config,
                         const agg::GradientAggregator& aggregator,
                         const RelayStrategy* faulty_relay = nullptr);

/// Peer-to-peer DGD over authenticated (Dolev-Strong) broadcast: the
/// signature layer lifts the transport requirement from n > 3f to any
/// f < n, so the binding constraint becomes the OPTIMIZATION bound f < n/2
/// of Lemma 1.  `faulty_ds` (optional) is the faulty nodes' in-protocol
/// behaviour.
P2pDgdResult run_p2p_dgd_authenticated(const std::vector<sim::AgentSpec>& roster,
                                       const P2pDgdConfig& config,
                                       const agg::GradientAggregator& aggregator,
                                       const class DsStrategy* faulty_ds = nullptr);

}  // namespace abft::p2p

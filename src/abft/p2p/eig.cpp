#include "abft/p2p/eig.hpp"

#include <algorithm>
#include <map>

#include "abft/util/check.hpp"

namespace abft::p2p {

EquivocateStrategy::EquivocateStrategy(double stddev) : stddev_(stddev) {
  ABFT_REQUIRE(stddev >= 0.0, "equivocation stddev must be non-negative");
}

std::optional<Payload> EquivocateStrategy::relay(int /*receiver*/, std::span<const int> /*path*/,
                                                 const Payload& held, util::Rng& rng) const {
  Payload out = held;
  for (int i = 0; i < out.dim(); ++i) out[i] += rng.normal(0.0, stddev_);
  return out;
}

std::optional<Payload> SilentStrategy::relay(int /*receiver*/, std::span<const int> /*path*/,
                                             const Payload& /*held*/, util::Rng& /*rng*/) const {
  return std::nullopt;
}

FixedValueStrategy::FixedValueStrategy(Payload payload) : payload_(std::move(payload)) {
  ABFT_REQUIRE(payload_.dim() > 0, "fixed strategy payload must be non-empty");
}

std::optional<Payload> FixedValueStrategy::relay(int /*receiver*/, std::span<const int> /*path*/,
                                                 const Payload& /*held*/,
                                                 util::Rng& /*rng*/) const {
  return payload_;
}

OralMessagesBroadcast::OralMessagesBroadcast(int n, int f) : n_(n), f_(f) {
  ABFT_REQUIRE(n > 0 && f >= 0, "need n > 0, f >= 0");
  ABFT_REQUIRE(n > 3 * f, "oral messages requires n > 3f");
}

namespace {

/// Exact-match majority of a non-empty multiset of payloads; ties and
/// no-majority fall back to `fallback` (the protocol default).
Payload exact_majority(const std::vector<Payload>& votes, const Payload& fallback) {
  const std::size_t need = votes.size() / 2 + 1;
  for (std::size_t i = 0; i < votes.size(); ++i) {
    std::size_t count = 0;
    for (std::size_t j = 0; j < votes.size(); ++j) {
      if (votes[i] == votes[j]) ++count;
    }
    if (count >= need) return votes[i];
  }
  return fallback;
}

struct OmContext {
  const std::vector<const RelayStrategy*>& strategies;
  std::vector<util::Rng>& node_rng;
  const Payload& default_value;
  long messages = 0;
};

/// Runs OM(m) with the given commander holding `held`, over `lieutenants`
/// (excluding everyone in `path` and the commander).  Returns each
/// lieutenant's decision about the commander's value.
std::map<int, Payload> om_round(OmContext& ctx, int commander, const Payload& held, int m,
                                const std::vector<int>& lieutenants, std::vector<int>& path) {
  // Step 1: commander sends its value to every lieutenant.
  std::map<int, Payload> received;
  for (int lt : lieutenants) {
    ++ctx.messages;
    std::optional<Payload> sent;
    const auto* strategy = ctx.strategies[static_cast<std::size_t>(commander)];
    if (strategy == nullptr) {
      sent = held;  // honest relay is faithful
    } else {
      sent = strategy->relay(lt, path, held, ctx.node_rng[static_cast<std::size_t>(commander)]);
    }
    received.emplace(lt, sent.value_or(ctx.default_value));
  }

  if (m == 0) return received;

  // Step 2: every lieutenant relays what it received via OM(m - 1).
  path.push_back(commander);
  std::map<int, std::map<int, Payload>> relayed;  // relayed[relayer][peer]
  for (int lt : lieutenants) {
    std::vector<int> rest;
    rest.reserve(lieutenants.size() - 1);
    for (int other : lieutenants) {
      if (other != lt) rest.push_back(other);
    }
    relayed[lt] = om_round(ctx, lt, received.at(lt), m - 1, rest, path);
  }
  path.pop_back();

  // Step 3: each lieutenant takes the majority of its direct value and the
  // values decided through the other relays.
  std::map<int, Payload> decisions;
  for (int lt : lieutenants) {
    std::vector<Payload> votes;
    votes.reserve(lieutenants.size());
    votes.push_back(received.at(lt));
    for (int other : lieutenants) {
      if (other != lt) votes.push_back(relayed.at(other).at(lt));
    }
    decisions.emplace(lt, exact_majority(votes, ctx.default_value));
  }
  return decisions;
}

}  // namespace

BroadcastOutcome OralMessagesBroadcast::broadcast(
    int source, const Payload& value, const std::vector<const RelayStrategy*>& strategies,
    std::uint64_t seed) const {
  ABFT_REQUIRE(0 <= source && source < n_, "source out of range");
  ABFT_REQUIRE(static_cast<int>(strategies.size()) == n_, "one strategy slot per node");
  ABFT_REQUIRE(value.dim() > 0, "broadcast payload must be non-empty");
  int faulty = 0;
  for (const auto* s : strategies) {
    if (s != nullptr) ++faulty;
  }
  ABFT_REQUIRE(faulty <= f_, "more faulty nodes than the declared bound");

  const Payload default_value(value.dim());
  util::Rng master(seed);
  std::vector<util::Rng> node_rng;
  node_rng.reserve(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) node_rng.push_back(master.split());

  std::vector<int> lieutenants;
  lieutenants.reserve(static_cast<std::size_t>(n_) - 1);
  for (int i = 0; i < n_; ++i) {
    if (i != source) lieutenants.push_back(i);
  }

  OmContext ctx{strategies, node_rng, default_value};
  std::vector<int> path;
  const auto decisions = om_round(ctx, source, value, f_, lieutenants, path);

  BroadcastOutcome outcome;
  outcome.decisions.assign(static_cast<std::size_t>(n_), default_value);
  outcome.decisions[static_cast<std::size_t>(source)] = value;  // source keeps its own value
  for (const auto& [node, decision] : decisions) {
    outcome.decisions[static_cast<std::size_t>(node)] = decision;
  }
  outcome.messages_sent = ctx.messages;
  return outcome;
}

BroadcastOutcome OralMessagesBroadcast::broadcast(
    int source, std::span<const double> value, const std::vector<const RelayStrategy*>& strategies,
    std::uint64_t seed) const {
  return broadcast(source, Payload(std::vector<double>(value.begin(), value.end())), strategies,
                   seed);
}

}  // namespace abft::p2p

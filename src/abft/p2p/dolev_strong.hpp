// Dolev-Strong authenticated Byzantine broadcast.  With unforgeable
// signatures the f < n/3 bound of Oral Messages disappears: f + 1 rounds of
// signature-chain relaying reach agreement for ANY f < n.  This extends the
// peer-to-peer substrate of Section 1.4 beyond the paper's unauthenticated
// setting (the DGD layer itself still requires f < n/2 by Lemma 1).
//
// Model: a message is (value, chain) where chain is the list of distinct
// signer ids, starting with the source.  Honest node i, on first extracting
// a value in round r <= f, re-signs and forwards it to everyone in round
// r + 1.  After round f + 1 a node decides the unique extracted value, or
// the default (zero vector) if it extracted zero or several values.
// Signatures are simulated by construction: the simulator only lets node i
// append its own id, so faulty nodes can equivocate (a faulty SOURCE can
// sign several values) but can never forge an honest signature.
//
// Guarantees (validated by tests), for any number of faulty nodes f < n:
//   agreement  — all honest nodes decide the same value;
//   validity   — if the source is honest, they decide its value.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "abft/linalg/vector.hpp"
#include "abft/util/rng.hpp"

namespace abft::p2p {

using DsPayload = linalg::Vector;

/// What a faulty node does in the Dolev-Strong protocol.  The p2p driver
/// runs broadcasts from distinct sources concurrently when agg_threads > 1,
/// so implementations must be safe to call concurrently (each call gets its
/// own rng; the built-in strategies are stateless).
class DsStrategy {
 public:
  virtual ~DsStrategy() = default;

  /// Values a faulty SOURCE signs and injects in round 1; entry k is the
  /// value sent to receiver k (std::nullopt = send nothing to k).  `value`
  /// is the value the source was supposed to broadcast.
  [[nodiscard]] virtual std::vector<std::optional<DsPayload>> initial_sends(
      int num_nodes, const DsPayload& value, util::Rng& rng) const = 0;

  /// Whether a faulty RELAY forwards an extracted value to `receiver`
  /// (honest behaviour: always true).  Selective forwarding is the classic
  /// adversarial move against naive authenticated broadcast.
  [[nodiscard]] virtual bool forward_to(int receiver, int round, util::Rng& rng) const = 0;
};

/// Source signs `value + k * offset` for receiver k (full equivocation);
/// relays forward with probability `forward_probability`.
class EquivocatingDsStrategy final : public DsStrategy {
 public:
  EquivocatingDsStrategy(double offset, double forward_probability);
  [[nodiscard]] std::vector<std::optional<DsPayload>> initial_sends(
      int num_nodes, const DsPayload& value, util::Rng& rng) const override;
  [[nodiscard]] bool forward_to(int receiver, int round, util::Rng& rng) const override;

 private:
  double offset_;
  double forward_probability_;
};

/// Sends nothing, forwards nothing.
class SilentDsStrategy final : public DsStrategy {
 public:
  [[nodiscard]] std::vector<std::optional<DsPayload>> initial_sends(
      int num_nodes, const DsPayload& value, util::Rng& rng) const override;
  [[nodiscard]] bool forward_to(int receiver, int round, util::Rng& rng) const override;
};

struct DsOutcome {
  std::vector<DsPayload> decisions;  // meaningful for honest nodes
  long messages_sent = 0;
  int rounds_used = 0;
};

class DolevStrongBroadcast {
 public:
  /// n nodes tolerating up to f faults; requires 0 <= f < n.
  DolevStrongBroadcast(int n, int f);

  [[nodiscard]] DsOutcome broadcast(int source, const DsPayload& value,
                                    const std::vector<const DsStrategy*>& strategies,
                                    std::uint64_t seed) const;

  /// Row-writer entry point: the source value arrives as a raw batch-row
  /// span; copied into a DsPayload exactly once at protocol entry.
  [[nodiscard]] DsOutcome broadcast(int source, std::span<const double> value,
                                    const std::vector<const DsStrategy*>& strategies,
                                    std::uint64_t seed) const;

  [[nodiscard]] int num_nodes() const noexcept { return n_; }
  [[nodiscard]] int fault_bound() const noexcept { return f_; }

 private:
  int n_;
  int f_;
};

}  // namespace abft::p2p

#include "abft/p2p/p2p_dgd.hpp"

#include <algorithm>
#include <functional>

#include "abft/engine/round_engine.hpp"
#include "abft/p2p/dolev_strong.hpp"
#include "abft/util/check.hpp"

namespace abft::p2p {

namespace {

/// The transport-independent round structure: a broadcast function runs one
/// Byzantine broadcast from `source` holding `value` and hands node i's
/// decided value to sink(i, source, decided); it returns the message count.
/// The sink writes straight into the receiving node's decision-batch row
/// (row = the source's delivery slot of the round), so the round loop never
/// stages messages in vectors.
using DecisionSink =
    std::function<void(int node, int source, std::span<const double> decided)>;
using BroadcastFn = std::function<long(int source, std::span<const double> value, int round,
                                       const DecisionSink& sink)>;

P2pDgdResult run_p2p_core(const std::vector<sim::AgentSpec>& roster, const P2pDgdConfig& config,
                          const agg::GradientAggregator& aggregator,
                          const BroadcastFn& broadcast) {
  const int n = static_cast<int>(roster.size());
  ABFT_REQUIRE(n > 0, "p2p run needs at least one agent");
  ABFT_REQUIRE(config.schedule != nullptr, "p2p run needs a step schedule");
  ABFT_REQUIRE(config.iterations >= 0, "iterations must be non-negative");
  ABFT_REQUIRE(config.x0.dim() == config.box.dim(), "x0/box dimension mismatch");

  const int dim = config.box.dim();
  // Shared round machinery: per-agent rng streams, the pool, membership /
  // fault-bound bookkeeping and the scenario plan.  The p2p-specific
  // broadcast fan-out and per-node filter state stay in this driver.
  engine::RoundEngine eng(sim::faulty_mask(roster), dim,
                          engine::RoundEngineConfig{config.seed, config.agg_threads,
                                                    config.agg_mode, config.agg_precision,
                                                    config.axes});
  eng.reset(config.f);

  P2pDgdResult result;
  std::vector<int> honest_slot(roster.size(), -1);
  for (int i = 0; i < n; ++i) {
    if (roster[static_cast<std::size_t>(i)].is_honest()) {
      honest_slot[static_cast<std::size_t>(i)] = static_cast<int>(result.honest_nodes.size());
      result.honest_nodes.push_back(i);
    }
  }
  const int h = static_cast<int>(result.honest_nodes.size());
  ABFT_REQUIRE(h > 0, "p2p run needs at least one honest agent");

  // Per-honest-node estimates (they stay in lockstep; keeping them separate
  // is the point — the tests verify agreement rather than assume it).
  std::vector<linalg::Vector> estimates(static_cast<std::size_t>(h),
                                        config.box.project(config.x0));
  result.traces.resize(static_cast<std::size_t>(h));
  for (std::size_t k = 0; k < result.traces.size(); ++k) {
    result.traces[k].estimates.push_back(estimates[k]);
  }

  // Persistent double-buffered round state.  honest_batch holds the honest
  // gradients of the round (row k = honest node k) — the source values for
  // honest broadcasters and the omniscient adversary's view.  source_batch
  // holds the values faulty sources inject.  Each honest node owns a
  // decision batch (row s = the value the round's s-th delivered source
  // decided on that node) plus its own filter workspace and output, so the
  // per-node filter loop parallelizes with zero sharing; the per-node
  // aggregation itself is a pure function of the decided multiset, so
  // traces are bit-identical at every thread count.
  agg::GradientBatch honest_batch(h, dim);
  // Faulty sources stage their injected value in a row of their own; honest
  // sources broadcast straight from their honest_batch row, so the staging
  // batch only needs one row per faulty node.
  std::vector<int> faulty_slot(roster.size(), -1);
  int num_faulty = 0;
  for (int i = 0; i < n; ++i) {
    if (!roster[static_cast<std::size_t>(i)].is_honest()) {
      faulty_slot[static_cast<std::size_t>(i)] = num_faulty++;
    }
  }
  agg::GradientBatch source_batch(std::max(1, num_faulty), dim);
  std::vector<agg::GradientBatch> node_batches(static_cast<std::size_t>(h));
  std::vector<agg::AggregatorWorkspace> node_workspaces(static_cast<std::size_t>(h));
  std::vector<linalg::Vector> node_filtered(static_cast<std::size_t>(h));
  for (auto& node_ws : node_workspaces) {
    node_ws.mode = config.agg_mode;
    node_ws.precision = config.agg_precision;
  }
  for (auto& batch : node_batches) batch.reshape(n, dim);
  std::vector<long> source_messages(static_cast<std::size_t>(n), 0);

  // Per-round rosters.  round_honest holds the honest slots computing this
  // round (the omniscient adversary's view indexes honest_batch by these
  // rows — identity when every axis is off); round_faulty the present
  // faulty sources (they pick their message whether or not it straggles);
  // sources holds the delivered broadcasters of the round, and source_slot
  // their decision-batch rows.
  std::vector<int> round_honest;
  round_honest.reserve(static_cast<std::size_t>(h));
  std::vector<int> round_faulty;
  round_faulty.reserve(roster.size());
  std::vector<int> sources;
  sources.reserve(roster.size());
  std::vector<int> source_slot(roster.size(), -1);

  for (int t = 0; t < config.iterations; ++t) {
    eng.begin_round(t);

    // Phase 1: honest gradients, computed on each present honest node's own
    // estimate and written straight into the honest batch rows (parallel
    // over nodes).  A straggling node still computes (its message is late,
    // not missing); a non-participating node skips the round entirely.
    round_honest.clear();
    for (int k = 0; k < h; ++k) {
      if (eng.is_present(result.honest_nodes[static_cast<std::size_t>(k)])) {
        round_honest.push_back(k);
      }
    }
    eng.parallel(static_cast<int>(round_honest.size()), [&](int begin, int end) {
      for (int u = begin; u < end; ++u) {
        const int k = round_honest[static_cast<std::size_t>(u)];
        const auto& spec =
            roster[static_cast<std::size_t>(result.honest_nodes[static_cast<std::size_t>(k)])];
        spec.cost->gradient_into(estimates[static_cast<std::size_t>(k)], honest_batch.row(k));
      }
    });
    // Identity row indices when all axes are off: HonestRowsView is always
    // index-based (see fault.hpp on why a dense fast path would break bit
    // parity between drivers).
    const attack::HonestRowsView honest_view(honest_batch.data(), dim, round_honest);

    // Delivered broadcasters of the round: present members whose message
    // makes the round's close.  Slot s of every node's decision batch holds
    // the broadcast of sources[s].
    sources.clear();
    std::fill(source_slot.begin(), source_slot.end(), -1);
    for (const int agent : eng.members()) {
      if (!eng.is_present(agent) || eng.straggles(agent)) continue;
      source_slot[static_cast<std::size_t>(agent)] = static_cast<int>(sources.size());
      sources.push_back(agent);
    }
    const int kept = static_cast<int>(sources.size());
    for (auto& batch : node_batches) batch.reshape(kept, dim);

    const DecisionSink sink = [&honest_slot, &node_batches, &source_slot](
                                  int node, int source, std::span<const double> decided) {
      const int slot = honest_slot[static_cast<std::size_t>(node)];
      if (slot >= 0) {
        node_batches[static_cast<std::size_t>(slot)].set_row(
            source_slot[static_cast<std::size_t>(source)], decided);
      }
    };

    // Phase 2a: every PRESENT faulty source picks its message — a straggler
    // computes and sends too, its message is merely late, so its rng stream
    // advances exactly as in the server-based driver (the axis semantics
    // are identical across drivers by contract).
    round_faulty.clear();
    for (const int agent : eng.members()) {
      if (eng.is_present(agent) && !roster[static_cast<std::size_t>(agent)].is_honest()) {
        round_faulty.push_back(agent);
      }
    }
    eng.parallel(static_cast<int>(round_faulty.size()), [&](int begin, int end) {
      for (int b = begin; b < end; ++b) {
        const int source = round_faulty[static_cast<std::size_t>(b)];
        const auto& spec = roster[static_cast<std::size_t>(source)];
        auto row = source_batch.row(faulty_slot[static_cast<std::size_t>(source)]);
        if (spec.cost != nullptr) {
          spec.cost->gradient_into(estimates.front(), row);
        } else {
          std::fill(row.begin(), row.end(), 0.0);
        }
        const attack::RowAttackContext context{estimates.front(), row, honest_view, t};
        const bool sent = spec.fault->emit_into(row, context, eng.agent_rng(source));
        if (!sent) std::fill(row.begin(), row.end(), 0.0);
      }
    });

    // Phase 2b: every delivered source broadcasts its value; the broadcast
    // writes each honest node's decision straight into that node's batch
    // row for this source.  Sources are independent (own rng stream, own
    // source row, own decision rows, protocol rng derived from the
    // per-source seed), so the phase parallelizes over sources without
    // reordering any stream.
    eng.parallel(kept, [&](int begin, int end) {
      for (int s = begin; s < end; ++s) {
        const int source = sources[static_cast<std::size_t>(s)];
        const auto& spec = roster[static_cast<std::size_t>(source)];
        const std::span<const double> value =
            spec.is_honest()
                ? honest_batch.row(honest_slot[static_cast<std::size_t>(source)])
                : source_batch.row(faulty_slot[static_cast<std::size_t>(source)]);
        source_messages[static_cast<std::size_t>(source)] = broadcast(source, value, t, sink);
      }
    });
    for (int s = 0; s < kept; ++s) {
      result.broadcast_messages += source_messages[static_cast<std::size_t>(sources[static_cast<std::size_t>(s)])];
    }

    // Phase 3: local filter + update on every present honest node
    // (parallel; each node owns its batch, workspace, filtered vector,
    // estimate and trace).  Straggling nodes still update — their outbound
    // message lagged, not their inbound.  A churned node's trace stops
    // growing; a round in which nobody broadcast holds position.
    const int usable_f =
        engine::usable_fault_bound(aggregator, config.f, eng.current_f(), kept,
                                   static_cast<int>(eng.members().size()), n);
    eng.parallel(static_cast<int>(round_honest.size()), [&](int begin, int end) {
      for (int u = begin; u < end; ++u) {
        const auto idx = static_cast<std::size_t>(round_honest[static_cast<std::size_t>(u)]);
        if (usable_f >= 0) {
          aggregator.aggregate_into(node_filtered[idx], node_batches[idx], usable_f,
                                    node_workspaces[idx]);
          estimates[idx] = config.box.project(estimates[idx] -
                                              config.schedule->step(t) * node_filtered[idx]);
        }
        result.traces[idx].estimates.push_back(estimates[idx]);
      }
    });
    // A sitting-out node holds position but still records, so traces stay
    // time-aligned; only a churned node's trace stops growing.
    for (int k = 0; k < h; ++k) {
      const int node = result.honest_nodes[static_cast<std::size_t>(k)];
      if (eng.is_member(node) && !eng.is_present(node)) {
        const auto idx = static_cast<std::size_t>(k);
        result.traces[idx].estimates.push_back(estimates[idx]);
      }
    }
  }
  result.eliminated_agents = eng.eliminated_count();
  result.departed_agents = eng.departed_count();
  return result;
}

std::uint64_t round_seed(std::uint64_t base, int round, int source) {
  return base ^ (static_cast<std::uint64_t>(round) << 20) ^ static_cast<std::uint64_t>(source);
}

/// Adapts either broadcast protocol (Oral Messages / Dolev-Strong) to the
/// core's BroadcastFn: run the protocol, then fan the decided values out to
/// the sink.  One definition so the two transports cannot drift.
template <typename Broadcast, typename Strategies>
BroadcastFn make_broadcast_fn(const Broadcast& broadcast, const Strategies& strategies,
                              std::uint64_t seed) {
  return [&broadcast, &strategies, seed](int source, std::span<const double> value, int round,
                                         const DecisionSink& sink) {
    const auto outcome = broadcast.broadcast(source, value, strategies,
                                             round_seed(seed, round, source));
    for (std::size_t i = 0; i < outcome.decisions.size(); ++i) {
      sink(static_cast<int>(i), source, outcome.decisions[i].coefficients());
    }
    return outcome.messages_sent;
  };
}

}  // namespace

P2pDgdResult run_p2p_dgd(const std::vector<sim::AgentSpec>& roster, const P2pDgdConfig& config,
                         const agg::GradientAggregator& aggregator,
                         const RelayStrategy* faulty_relay) {
  const int n = static_cast<int>(roster.size());
  ABFT_REQUIRE(n > 3 * config.f, "unauthenticated p2p broadcast requires n > 3f");
  const OralMessagesBroadcast broadcast(n, config.f);

  // Broadcast-layer strategies: faulty agents get `faulty_relay` (or honest
  // relay when none is given — they still lie at the source via FaultModel).
  std::vector<const RelayStrategy*> strategies(roster.size(), nullptr);
  if (faulty_relay != nullptr) {
    for (std::size_t i = 0; i < roster.size(); ++i) {
      if (!roster[i].is_honest()) strategies[i] = faulty_relay;
    }
  }

  return run_p2p_core(roster, config, aggregator,
                      make_broadcast_fn(broadcast, strategies, config.seed));
}

P2pDgdResult run_p2p_dgd_authenticated(const std::vector<sim::AgentSpec>& roster,
                                       const P2pDgdConfig& config,
                                       const agg::GradientAggregator& aggregator,
                                       const DsStrategy* faulty_ds) {
  const int n = static_cast<int>(roster.size());
  ABFT_REQUIRE(n > 2 * config.f,
               "p2p DGD needs f < n/2 (Lemma 1) even with authenticated broadcast");
  const DolevStrongBroadcast broadcast(n, config.f);

  std::vector<const DsStrategy*> strategies(roster.size(), nullptr);
  if (faulty_ds != nullptr) {
    for (std::size_t i = 0; i < roster.size(); ++i) {
      if (!roster[i].is_honest()) strategies[i] = faulty_ds;
    }
  }

  return run_p2p_core(roster, config, aggregator,
                      make_broadcast_fn(broadcast, strategies, config.seed));
}

}  // namespace abft::p2p

#include "abft/p2p/p2p_dgd.hpp"

#include <algorithm>
#include <functional>

#include "abft/p2p/dolev_strong.hpp"
#include "abft/util/check.hpp"

namespace abft::p2p {

namespace {

/// The transport-independent round structure: a broadcast function maps
/// (source, value, round) to the per-node decisions plus a message count.
struct BroadcastResultView {
  std::vector<linalg::Vector> decisions;
  long messages = 0;
};
using BroadcastFn =
    std::function<BroadcastResultView(int source, const linalg::Vector& value, int round)>;

P2pDgdResult run_p2p_core(const std::vector<sim::AgentSpec>& roster, const P2pDgdConfig& config,
                          const agg::GradientAggregator& aggregator,
                          const BroadcastFn& broadcast) {
  const int n = static_cast<int>(roster.size());
  ABFT_REQUIRE(n > 0, "p2p run needs at least one agent");
  ABFT_REQUIRE(config.schedule != nullptr, "p2p run needs a step schedule");
  ABFT_REQUIRE(config.iterations >= 0, "iterations must be non-negative");
  ABFT_REQUIRE(config.x0.dim() == config.box.dim(), "x0/box dimension mismatch");

  util::Rng master(config.seed);
  std::vector<util::Rng> agent_rng;
  agent_rng.reserve(roster.size());
  for (std::size_t i = 0; i < roster.size(); ++i) agent_rng.push_back(master.split());

  P2pDgdResult result;
  for (int i = 0; i < n; ++i) {
    if (roster[static_cast<std::size_t>(i)].is_honest()) result.honest_nodes.push_back(i);
  }
  ABFT_REQUIRE(!result.honest_nodes.empty(), "p2p run needs at least one honest agent");

  // Per-honest-node estimates (they stay in lockstep; keeping them separate
  // is the point — the tests verify agreement rather than assume it).
  std::vector<linalg::Vector> estimates(result.honest_nodes.size(),
                                        config.box.project(config.x0));
  result.traces.resize(result.honest_nodes.size());
  for (std::size_t k = 0; k < result.traces.size(); ++k) {
    result.traces[k].estimates.push_back(estimates[k]);
  }

  const int dim = config.box.dim();
  // Each honest node runs its own GradFilter every round; one batch and one
  // workspace are reused across all nodes and all rounds so the per-call
  // cost is pack + filter with no allocation.
  agg::GradientBatch batch;
  agg::AggregatorWorkspace workspace;
  workspace.parallel_threads = std::max(1, config.agg_threads);
  linalg::Vector filtered;
  for (int t = 0; t < config.iterations; ++t) {
    // Honest gradients, computed on each honest node's own estimate.
    std::vector<linalg::Vector> honest_grads;
    honest_grads.reserve(result.honest_nodes.size());
    for (std::size_t k = 0; k < result.honest_nodes.size(); ++k) {
      const auto& spec = roster[static_cast<std::size_t>(result.honest_nodes[k])];
      honest_grads.push_back(spec.cost->gradient(estimates[k]));
    }

    // Every agent broadcasts one value; honest nodes collect the decided
    // multiset.  decided[receiver_slot][source].
    std::vector<std::vector<linalg::Vector>> decided(
        result.honest_nodes.size(), std::vector<linalg::Vector>(static_cast<std::size_t>(n)));
    std::size_t honest_cursor = 0;
    for (int source = 0; source < n; ++source) {
      const auto& spec = roster[static_cast<std::size_t>(source)];
      linalg::Vector value(dim);
      if (spec.is_honest()) {
        value = honest_grads[honest_cursor++];
      } else {
        const linalg::Vector reference = estimates.front();
        const linalg::Vector true_grad =
            spec.cost != nullptr ? spec.cost->gradient(reference) : linalg::Vector(dim);
        const attack::AttackContext context{reference, true_grad, honest_grads, t};
        auto payload = spec.fault->emit(context, agent_rng[static_cast<std::size_t>(source)]);
        value = payload.value_or(linalg::Vector(dim));
      }
      const auto outcome = broadcast(source, value, t);
      result.broadcast_messages += outcome.messages;
      for (std::size_t k = 0; k < result.honest_nodes.size(); ++k) {
        decided[k][static_cast<std::size_t>(source)] =
            outcome.decisions[static_cast<std::size_t>(result.honest_nodes[k])];
      }
    }

    // Local filter + update on every honest node.
    for (std::size_t k = 0; k < result.honest_nodes.size(); ++k) {
      batch.pack(decided[k]);
      aggregator.aggregate_into(filtered, batch, config.f, workspace);
      estimates[k] =
          config.box.project(estimates[k] - config.schedule->step(t) * filtered);
      result.traces[k].estimates.push_back(estimates[k]);
    }
  }
  return result;
}

std::uint64_t round_seed(std::uint64_t base, int round, int source) {
  return base ^ (static_cast<std::uint64_t>(round) << 20) ^ static_cast<std::uint64_t>(source);
}

}  // namespace

P2pDgdResult run_p2p_dgd(const std::vector<sim::AgentSpec>& roster, const P2pDgdConfig& config,
                         const agg::GradientAggregator& aggregator,
                         const RelayStrategy* faulty_relay) {
  const int n = static_cast<int>(roster.size());
  ABFT_REQUIRE(n > 3 * config.f, "unauthenticated p2p broadcast requires n > 3f");
  const OralMessagesBroadcast broadcast(n, config.f);

  // Broadcast-layer strategies: faulty agents get `faulty_relay` (or honest
  // relay when none is given — they still lie at the source via FaultModel).
  std::vector<const RelayStrategy*> strategies(roster.size(), nullptr);
  if (faulty_relay != nullptr) {
    for (std::size_t i = 0; i < roster.size(); ++i) {
      if (!roster[i].is_honest()) strategies[i] = faulty_relay;
    }
  }

  return run_p2p_core(roster, config, aggregator,
                      [&broadcast, &strategies, &config](int source, const linalg::Vector& value,
                                                         int round) {
                        auto outcome = broadcast.broadcast(
                            source, value, strategies, round_seed(config.seed, round, source));
                        return BroadcastResultView{std::move(outcome.decisions),
                                                   outcome.messages_sent};
                      });
}

P2pDgdResult run_p2p_dgd_authenticated(const std::vector<sim::AgentSpec>& roster,
                                       const P2pDgdConfig& config,
                                       const agg::GradientAggregator& aggregator,
                                       const DsStrategy* faulty_ds) {
  const int n = static_cast<int>(roster.size());
  ABFT_REQUIRE(n > 2 * config.f,
               "p2p DGD needs f < n/2 (Lemma 1) even with authenticated broadcast");
  const DolevStrongBroadcast broadcast(n, config.f);

  std::vector<const DsStrategy*> strategies(roster.size(), nullptr);
  if (faulty_ds != nullptr) {
    for (std::size_t i = 0; i < roster.size(); ++i) {
      if (!roster[i].is_honest()) strategies[i] = faulty_ds;
    }
  }

  return run_p2p_core(roster, config, aggregator,
                      [&broadcast, &strategies, &config](int source, const linalg::Vector& value,
                                                         int round) {
                        auto outcome = broadcast.broadcast(
                            source, value, strategies, round_seed(config.seed, round, source));
                        return BroadcastResultView{std::move(outcome.decisions),
                                                   outcome.messages_sent};
                      });
}

}  // namespace abft::p2p

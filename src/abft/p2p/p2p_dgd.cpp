#include "abft/p2p/p2p_dgd.hpp"

#include <algorithm>
#include <functional>

#include "abft/agg/threads.hpp"
#include "abft/p2p/dolev_strong.hpp"
#include "abft/util/check.hpp"

namespace abft::p2p {

namespace {

/// The transport-independent round structure: a broadcast function runs one
/// Byzantine broadcast from `source` holding `value` and hands node i's
/// decided value to sink(i, source, decided); it returns the message count.
/// The sink writes straight into the receiving node's decision-batch row
/// (row = source), so the round loop never stages messages in vectors.
using DecisionSink =
    std::function<void(int node, int source, std::span<const double> decided)>;
using BroadcastFn = std::function<long(int source, std::span<const double> value, int round,
                                       const DecisionSink& sink)>;

P2pDgdResult run_p2p_core(const std::vector<sim::AgentSpec>& roster, const P2pDgdConfig& config,
                          const agg::GradientAggregator& aggregator,
                          const BroadcastFn& broadcast) {
  const int n = static_cast<int>(roster.size());
  ABFT_REQUIRE(n > 0, "p2p run needs at least one agent");
  ABFT_REQUIRE(config.schedule != nullptr, "p2p run needs a step schedule");
  ABFT_REQUIRE(config.iterations >= 0, "iterations must be non-negative");
  ABFT_REQUIRE(config.x0.dim() == config.box.dim(), "x0/box dimension mismatch");

  util::Rng master(config.seed);
  std::vector<util::Rng> agent_rng;
  agent_rng.reserve(roster.size());
  for (std::size_t i = 0; i < roster.size(); ++i) agent_rng.push_back(master.split());

  P2pDgdResult result;
  std::vector<int> honest_slot(roster.size(), -1);
  for (int i = 0; i < n; ++i) {
    if (roster[static_cast<std::size_t>(i)].is_honest()) {
      honest_slot[static_cast<std::size_t>(i)] = static_cast<int>(result.honest_nodes.size());
      result.honest_nodes.push_back(i);
    }
  }
  const int h = static_cast<int>(result.honest_nodes.size());
  ABFT_REQUIRE(h > 0, "p2p run needs at least one honest agent");

  // Per-honest-node estimates (they stay in lockstep; keeping them separate
  // is the point — the tests verify agreement rather than assume it).
  std::vector<linalg::Vector> estimates(static_cast<std::size_t>(h),
                                        config.box.project(config.x0));
  result.traces.resize(static_cast<std::size_t>(h));
  for (std::size_t k = 0; k < result.traces.size(); ++k) {
    result.traces[k].estimates.push_back(estimates[k]);
  }

  const int dim = config.box.dim();
  const int threads = std::max(1, config.agg_threads);
  // ThreadPool(1) spawns no workers and dispatches directly, so the pool is
  // constructed unconditionally and every phase runs through it.
  agg::ThreadPool pool(threads);

  // Persistent double-buffered round state.  honest_batch holds the honest
  // gradients of the round (row k = honest node k) — the source values for
  // honest broadcasters and the omniscient adversary's view.  source_batch
  // holds the values faulty sources inject.  Each honest node owns a
  // decision batch (row s = the value the broadcast from source s decided on
  // that node) plus its own filter workspace and output, so the per-node
  // filter loop parallelizes with zero sharing; the per-node aggregation
  // itself is a pure function of the decided multiset, so traces are
  // bit-identical at every thread count.
  agg::GradientBatch honest_batch(h, dim);
  // Faulty sources stage their injected value in a row of their own; honest
  // sources broadcast straight from their honest_batch row, so the staging
  // batch only needs one row per faulty node.
  std::vector<int> faulty_slot(roster.size(), -1);
  int num_faulty = 0;
  for (int i = 0; i < n; ++i) {
    if (!roster[static_cast<std::size_t>(i)].is_honest()) {
      faulty_slot[static_cast<std::size_t>(i)] = num_faulty++;
    }
  }
  agg::GradientBatch source_batch(std::max(1, num_faulty), dim);
  // Identity row indices: HonestRowsView is always index-based (see
  // fault.hpp on why a dense fast path would break bit parity).
  std::vector<int> honest_row_ids(static_cast<std::size_t>(h));
  for (int k = 0; k < h; ++k) honest_row_ids[static_cast<std::size_t>(k)] = k;
  std::vector<agg::GradientBatch> node_batches(static_cast<std::size_t>(h));
  std::vector<agg::AggregatorWorkspace> node_workspaces(static_cast<std::size_t>(h));
  std::vector<linalg::Vector> node_filtered(static_cast<std::size_t>(h));
  for (auto& node_ws : node_workspaces) node_ws.mode = config.agg_mode;
  for (auto& batch : node_batches) batch.reshape(n, dim);
  std::vector<long> source_messages(static_cast<std::size_t>(n), 0);

  const attack::HonestRowsView honest_view(honest_batch.data(), dim, honest_row_ids);
  const DecisionSink sink = [&honest_slot, &node_batches](int node, int source,
                                                          std::span<const double> decided) {
    const int slot = honest_slot[static_cast<std::size_t>(node)];
    if (slot >= 0) node_batches[static_cast<std::size_t>(slot)].set_row(source, decided);
  };

  for (int t = 0; t < config.iterations; ++t) {
    // Phase 1: honest gradients, computed on each honest node's own estimate
    // and written straight into the honest batch rows (parallel over nodes).
    pool.parallel_for(0, h, threads, [&](int begin, int end) {
      for (int k = begin; k < end; ++k) {
        const auto& spec =
            roster[static_cast<std::size_t>(result.honest_nodes[static_cast<std::size_t>(k)])];
        spec.cost->gradient_into(estimates[static_cast<std::size_t>(k)], honest_batch.row(k));
      }
    });

    // Phase 2: every agent broadcasts one value; the broadcast writes each
    // honest node's decision straight into that node's batch row for this
    // source.  Sources are independent (own rng stream, own source row, own
    // decision rows, protocol rng derived from the per-source seed), so the
    // phase parallelizes over sources without reordering any stream.
    pool.parallel_for(0, n, threads, [&](int begin, int end) {
      for (int source = begin; source < end; ++source) {
        const auto& spec = roster[static_cast<std::size_t>(source)];
        std::span<const double> value;
        if (spec.is_honest()) {
          value = honest_batch.row(honest_slot[static_cast<std::size_t>(source)]);
        } else {
          auto row = source_batch.row(faulty_slot[static_cast<std::size_t>(source)]);
          if (spec.cost != nullptr) {
            spec.cost->gradient_into(estimates.front(), row);
          } else {
            std::fill(row.begin(), row.end(), 0.0);
          }
          const attack::RowAttackContext context{estimates.front(), row, honest_view, t};
          const bool sent =
              spec.fault->emit_into(row, context, agent_rng[static_cast<std::size_t>(source)]);
          if (!sent) std::fill(row.begin(), row.end(), 0.0);
          value = row;
        }
        source_messages[static_cast<std::size_t>(source)] = broadcast(source, value, t, sink);
      }
    });
    for (int source = 0; source < n; ++source) {
      result.broadcast_messages += source_messages[static_cast<std::size_t>(source)];
    }

    // Phase 3: local filter + update on every honest node (parallel; each
    // node owns its batch, workspace, filtered vector, estimate and trace).
    pool.parallel_for(0, h, threads, [&](int begin, int end) {
      for (int k = begin; k < end; ++k) {
        const auto idx = static_cast<std::size_t>(k);
        aggregator.aggregate_into(node_filtered[idx], node_batches[idx], config.f,
                                  node_workspaces[idx]);
        estimates[idx] = config.box.project(estimates[idx] -
                                            config.schedule->step(t) * node_filtered[idx]);
        result.traces[idx].estimates.push_back(estimates[idx]);
      }
    });
  }
  return result;
}

std::uint64_t round_seed(std::uint64_t base, int round, int source) {
  return base ^ (static_cast<std::uint64_t>(round) << 20) ^ static_cast<std::uint64_t>(source);
}

/// Adapts either broadcast protocol (Oral Messages / Dolev-Strong) to the
/// core's BroadcastFn: run the protocol, then fan the decided values out to
/// the sink.  One definition so the two transports cannot drift.
template <typename Broadcast, typename Strategies>
BroadcastFn make_broadcast_fn(const Broadcast& broadcast, const Strategies& strategies,
                              std::uint64_t seed) {
  return [&broadcast, &strategies, seed](int source, std::span<const double> value, int round,
                                         const DecisionSink& sink) {
    const auto outcome = broadcast.broadcast(source, value, strategies,
                                             round_seed(seed, round, source));
    for (std::size_t i = 0; i < outcome.decisions.size(); ++i) {
      sink(static_cast<int>(i), source, outcome.decisions[i].coefficients());
    }
    return outcome.messages_sent;
  };
}

}  // namespace

P2pDgdResult run_p2p_dgd(const std::vector<sim::AgentSpec>& roster, const P2pDgdConfig& config,
                         const agg::GradientAggregator& aggregator,
                         const RelayStrategy* faulty_relay) {
  const int n = static_cast<int>(roster.size());
  ABFT_REQUIRE(n > 3 * config.f, "unauthenticated p2p broadcast requires n > 3f");
  const OralMessagesBroadcast broadcast(n, config.f);

  // Broadcast-layer strategies: faulty agents get `faulty_relay` (or honest
  // relay when none is given — they still lie at the source via FaultModel).
  std::vector<const RelayStrategy*> strategies(roster.size(), nullptr);
  if (faulty_relay != nullptr) {
    for (std::size_t i = 0; i < roster.size(); ++i) {
      if (!roster[i].is_honest()) strategies[i] = faulty_relay;
    }
  }

  return run_p2p_core(roster, config, aggregator,
                      make_broadcast_fn(broadcast, strategies, config.seed));
}

P2pDgdResult run_p2p_dgd_authenticated(const std::vector<sim::AgentSpec>& roster,
                                       const P2pDgdConfig& config,
                                       const agg::GradientAggregator& aggregator,
                                       const DsStrategy* faulty_ds) {
  const int n = static_cast<int>(roster.size());
  ABFT_REQUIRE(n > 2 * config.f,
               "p2p DGD needs f < n/2 (Lemma 1) even with authenticated broadcast");
  const DolevStrongBroadcast broadcast(n, config.f);

  std::vector<const DsStrategy*> strategies(roster.size(), nullptr);
  if (faulty_ds != nullptr) {
    for (std::size_t i = 0; i < roster.size(); ++i) {
      if (!roster[i].is_honest()) strategies[i] = faulty_ds;
    }
  }

  return run_p2p_core(roster, config, aggregator,
                      make_broadcast_fn(broadcast, strategies, config.seed));
}

}  // namespace abft::p2p

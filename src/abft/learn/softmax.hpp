// Multinomial logistic regression: logits = W x + b, cross-entropy loss.
// Parameter layout: W row-major (classes x features), then b (classes).
#pragma once

#include "abft/learn/model.hpp"

namespace abft::learn {

class SoftmaxRegression final : public Model {
 public:
  SoftmaxRegression(int feature_dim, int num_classes);

  [[nodiscard]] int param_dim() const noexcept override;
  double loss(const Vector& params, const Dataset& data, std::span<const int> examples,
              Vector* gradient) const override;
  [[nodiscard]] int predict(const Vector& params, const Vector& features) const override;

  [[nodiscard]] int feature_dim() const noexcept { return feature_dim_; }
  [[nodiscard]] int num_classes() const noexcept { return num_classes_; }

 private:
  /// Softmax probabilities for one example.
  void class_probabilities(const Vector& params, const Dataset& data, int example,
                           std::vector<double>& probs) const;

  int feature_dim_;
  int num_classes_;
};

}  // namespace abft::learn

#include "abft/learn/dataset.hpp"

#include <algorithm>
#include <cmath>

#include "abft/util/check.hpp"

namespace abft::learn {

SyntheticOptions synth_digits_options() {
  SyntheticOptions options;
  options.noise_stddev = 0.3;
  return options;
}

SyntheticOptions synth_fashion_options() {
  // 1.5x the SynthDigits noise: calibrated so the accuracy plateau sits
  // ~10-15 points below SynthDigits, mirroring the paper's MNIST vs
  // Fashion-MNIST gap (Figures 4-5).
  SyntheticOptions options;
  options.noise_stddev = 0.45;
  return options;
}

Dataset make_synthetic(const SyntheticOptions& options, util::Rng& rng) {
  ABFT_REQUIRE(options.num_classes >= 2, "need at least two classes");
  ABFT_REQUIRE(options.feature_dim > 0, "feature dimension must be positive");
  ABFT_REQUIRE(options.examples_per_class > 0, "need at least one example per class");
  ABFT_REQUIRE(options.prototype_scale > 0.0, "prototype scale must be positive");
  ABFT_REQUIRE(options.noise_stddev >= 0.0, "noise stddev must be non-negative");

  // Class prototypes: random directions scaled to the prototype radius.
  std::vector<Vector> prototypes;
  prototypes.reserve(static_cast<std::size_t>(options.num_classes));
  for (int c = 0; c < options.num_classes; ++c) {
    Vector proto(options.feature_dim);
    double norm = 0.0;
    do {
      for (int k = 0; k < options.feature_dim; ++k) proto[k] = rng.normal();
      norm = proto.norm();
    } while (norm < 1e-9);
    proto *= options.prototype_scale / norm;
    prototypes.push_back(std::move(proto));
  }

  const int total = options.num_classes * options.examples_per_class;
  Dataset data{Matrix(total, options.feature_dim), std::vector<int>(static_cast<std::size_t>(total)),
               options.num_classes};
  int row = 0;
  for (int c = 0; c < options.num_classes; ++c) {
    for (int e = 0; e < options.examples_per_class; ++e, ++row) {
      for (int k = 0; k < options.feature_dim; ++k) {
        data.features(row, k) = prototypes[static_cast<std::size_t>(c)][k] +
                                rng.normal(0.0, options.noise_stddev);
      }
      data.labels[static_cast<std::size_t>(row)] = c;
    }
  }

  // Shuffle rows so shards are class-balanced in expectation.
  const std::vector<int> order = rng.permutation(total);
  return select_examples(data, order);
}

std::vector<Dataset> shard(const Dataset& data, int k, util::Rng& rng) {
  ABFT_REQUIRE(k > 0, "shard count must be positive");
  ABFT_REQUIRE(data.num_examples() >= k, "fewer examples than shards");
  const std::vector<int> order = rng.permutation(data.num_examples());
  std::vector<Dataset> shards;
  shards.reserve(static_cast<std::size_t>(k));
  int start = 0;
  for (int s = 0; s < k; ++s) {
    const int size = (data.num_examples() - start) / (k - s);
    std::vector<int> indices(order.begin() + start, order.begin() + start + size);
    shards.push_back(select_examples(data, indices));
    start += size;
  }
  return shards;
}

std::vector<Dataset> shard_dirichlet(const Dataset& data, int k, double alpha, util::Rng& rng) {
  ABFT_REQUIRE(k > 0, "shard count must be positive");
  ABFT_REQUIRE(data.num_examples() >= k, "fewer examples than shards");
  ABFT_REQUIRE(alpha > 0.0, "dirichlet alpha must be positive");
  // The iid limit must be *exactly* today's split: same code path, same rng
  // consumption — a spec flipping alpha from infinity to a finite value is
  // the only thing that changes the shards.
  if (std::isinf(alpha)) return shard(data, k, rng);

  // One shuffle up front so within-class assignment order is unbiased, then
  // per-class Dirichlet proportions turned into counts by largest remainder
  // (all m_c examples of a class are always dealt out).
  const std::vector<int> order = rng.permutation(data.num_examples());
  std::vector<std::vector<int>> by_class(static_cast<std::size_t>(data.num_classes));
  for (const int example : order) {
    by_class[static_cast<std::size_t>(data.labels[static_cast<std::size_t>(example)])]
        .push_back(example);
  }

  std::vector<std::vector<int>> assigned(static_cast<std::size_t>(k));
  for (const auto& members : by_class) {
    if (members.empty()) continue;
    const auto m_c = static_cast<int>(members.size());
    const std::vector<double> p = rng.dirichlet(alpha, k);
    std::vector<int> counts(static_cast<std::size_t>(k));
    std::vector<std::pair<double, int>> remainders;  // (-fraction, agent)
    int dealt = 0;
    for (int agent = 0; agent < k; ++agent) {
      const double share = p[static_cast<std::size_t>(agent)] * m_c;
      counts[static_cast<std::size_t>(agent)] = static_cast<int>(share);
      dealt += counts[static_cast<std::size_t>(agent)];
      remainders.emplace_back(-(share - std::floor(share)), agent);
    }
    std::sort(remainders.begin(), remainders.end());  // ties break by agent id
    for (int extra = 0; extra < m_c - dealt; ++extra) {
      ++counts[static_cast<std::size_t>(remainders[static_cast<std::size_t>(extra)].second)];
    }
    int next = 0;
    for (int agent = 0; agent < k; ++agent) {
      for (int j = 0; j < counts[static_cast<std::size_t>(agent)]; ++j) {
        assigned[static_cast<std::size_t>(agent)].push_back(
            members[static_cast<std::size_t>(next++)]);
      }
    }
  }

  // Severe skew can starve an agent entirely; the dsgd driver needs every
  // shard samplable, so rebalance deterministically from the largest shard.
  for (auto& shard_indices : assigned) {
    while (shard_indices.empty()) {
      auto largest = std::max_element(
          assigned.begin(), assigned.end(),
          [](const auto& a, const auto& b) { return a.size() < b.size(); });
      ABFT_REQUIRE(largest->size() > 1, "cannot rebalance: not enough examples");
      shard_indices.push_back(largest->back());
      largest->pop_back();
    }
  }

  std::vector<Dataset> shards;
  shards.reserve(static_cast<std::size_t>(k));
  for (const auto& indices : assigned) shards.push_back(select_examples(data, indices));
  return shards;
}

Dataset label_flipped(const Dataset& data) {
  Dataset out = data;
  for (auto& y : out.labels) y = (data.num_classes - 1) - y;
  return out;
}

std::vector<Dataset> shard_non_iid(const Dataset& data, int k, double heterogeneity,
                                   util::Rng& rng) {
  ABFT_REQUIRE(k > 0, "shard count must be positive");
  ABFT_REQUIRE(data.num_examples() >= k, "fewer examples than shards");
  ABFT_REQUIRE(0.0 <= heterogeneity && heterogeneity <= 1.0, "heterogeneity must be in [0, 1]");
  const int m = data.num_examples();

  // Start from a label-sorted order (ties broken by a random permutation so
  // within-class order is unbiased), then re-shuffle a (1 - h) fraction of
  // positions among themselves.
  std::vector<int> order = rng.permutation(m);
  std::stable_sort(order.begin(), order.end(), [&data](int a, int b) {
    return data.labels[static_cast<std::size_t>(a)] < data.labels[static_cast<std::size_t>(b)];
  });
  const int to_shuffle = static_cast<int>((1.0 - heterogeneity) * m);
  const std::vector<int> positions = rng.sample_without_replacement(m, to_shuffle);
  std::vector<int> values;
  values.reserve(positions.size());
  for (int p : positions) values.push_back(order[static_cast<std::size_t>(p)]);
  const std::vector<int> perm = rng.permutation(to_shuffle);
  for (std::size_t i = 0; i < positions.size(); ++i) {
    order[static_cast<std::size_t>(positions[i])] =
        values[static_cast<std::size_t>(perm[i])];
  }

  std::vector<Dataset> shards;
  shards.reserve(static_cast<std::size_t>(k));
  int start = 0;
  for (int s = 0; s < k; ++s) {
    const int size = (m - start) / (k - s);
    std::vector<int> indices(order.begin() + start, order.begin() + start + size);
    shards.push_back(select_examples(data, indices));
    start += size;
  }
  return shards;
}

TrainTestSplit split_train_test(const Dataset& data, double test_fraction, util::Rng& rng) {
  ABFT_REQUIRE(0.0 < test_fraction && test_fraction < 1.0, "test fraction must be in (0, 1)");
  const int total = data.num_examples();
  const int test_count = std::max(1, static_cast<int>(test_fraction * total));
  ABFT_REQUIRE(test_count < total, "split leaves no training data");
  const std::vector<int> order = rng.permutation(total);
  const std::vector<int> test_idx(order.begin(), order.begin() + test_count);
  const std::vector<int> train_idx(order.begin() + test_count, order.end());
  return TrainTestSplit{select_examples(data, train_idx), select_examples(data, test_idx)};
}

Dataset select_examples(const Dataset& data, const std::vector<int>& indices) {
  Dataset out{Matrix(static_cast<int>(indices.size()), data.feature_dim()),
              std::vector<int>(indices.size()), data.num_classes};
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const int src = indices[i];
    ABFT_REQUIRE(0 <= src && src < data.num_examples(), "example index out of range");
    for (int k = 0; k < data.feature_dim(); ++k) {
      out.features(static_cast<int>(i), k) = data.features(src, k);
    }
    out.labels[i] = data.labels[static_cast<std::size_t>(src)];
  }
  return out;
}

}  // namespace abft::learn

// Multiclass datasets for the distributed-learning experiments (Appendix K).
// The paper uses MNIST / Fashion-MNIST; offline we substitute synthetic
// Gaussian-prototype datasets whose class overlap is a generator knob:
// "SynthDigits" (well separated, MNIST-like difficulty) and "SynthFashion"
// (overlapping, Fashion-MNIST-like difficulty).  The Appendix-K observations
// depend on gradient correlation across agents, which the overlap knob
// controls directly; see DESIGN.md for the substitution rationale.
#pragma once

#include <vector>

#include "abft/linalg/matrix.hpp"
#include "abft/util/rng.hpp"

namespace abft::learn {

using linalg::Matrix;
using linalg::Vector;

struct Dataset {
  Matrix features;          // m x d
  std::vector<int> labels;  // m entries in [0, num_classes)
  int num_classes = 0;

  [[nodiscard]] int num_examples() const noexcept { return features.rows(); }
  [[nodiscard]] int feature_dim() const noexcept { return features.cols(); }
};

struct SyntheticOptions {
  int num_classes = 10;
  int feature_dim = 64;
  int examples_per_class = 100;
  /// Prototypes are drawn on the sphere of this radius.
  double prototype_scale = 1.0;
  /// Per-example isotropic noise around the class prototype; the ratio
  /// prototype_scale / noise_stddev controls task difficulty.
  double noise_stddev = 0.3;
};

/// "SynthDigits" defaults: separation ~3x noise, plateaus near-perfect.
SyntheticOptions synth_digits_options();

/// "SynthFashion": same geometry with ~2x the noise, plateaus lower —
/// mirroring the MNIST vs Fashion-MNIST gap in Figures 4-5.
SyntheticOptions synth_fashion_options();

/// Samples a dataset; examples are shuffled so class order is not encoded.
Dataset make_synthetic(const SyntheticOptions& options, util::Rng& rng);

/// Splits into `k` near-equal shards after a random permutation — the
/// paper's "randomly and evenly divided" agent data assignment.
std::vector<Dataset> shard(const Dataset& data, int k, util::Rng& rng);

/// Dirichlet-alpha label-skew sharding (the federated-learning standard for
/// non-iid splits): for each class, agent proportions are drawn from
/// Dirichlet(alpha, ..., alpha), so small alpha concentrates each class on
/// few agents and alpha -> infinity recovers the class-balanced iid split.
/// alpha = +infinity delegates to shard() outright — bit-identical to
/// today's iid split, same rng consumption.  Every shard is guaranteed
/// non-empty (deterministic rebalance from the largest shard).
std::vector<Dataset> shard_dirichlet(const Dataset& data, int k, double alpha, util::Rng& rng);

/// Non-iid sharding with a heterogeneity knob in [0, 1]: 0 reproduces the
/// iid split; 1 deals label-sorted contiguous chunks (each agent sees few
/// classes).  Appendix K observes that learning accuracy degrades as
/// inter-agent data correlation (cost redundancy) drops — this is the knob
/// behind that experiment (bench_hetero).
std::vector<Dataset> shard_non_iid(const Dataset& data, int k, double heterogeneity,
                                   util::Rng& rng);

/// Label-flipping fault (Appendix K): y -> (num_classes - 1) - y.
Dataset label_flipped(const Dataset& data);

/// Selects a subset of examples by index.
Dataset select_examples(const Dataset& data, const std::vector<int>& indices);

/// Random train/test split of one dataset (so both halves share the class
/// geometry).  test_fraction in (0, 1); both halves non-empty.
struct TrainTestSplit {
  Dataset train;
  Dataset test;
};
TrainTestSplit split_train_test(const Dataset& data, double test_fraction, util::Rng& rng);

}  // namespace abft::learn

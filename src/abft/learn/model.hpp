// Differentiable classifiers trained by D-SGD.  Parameters are a flat
// Vector so the server-side update and the gradient filters stay oblivious
// to model structure — exactly how the paper treats the d = 431,080 LeNet
// parameter vector.
#pragma once

#include <span>

#include "abft/learn/dataset.hpp"

namespace abft::learn {

class Model {
 public:
  virtual ~Model() = default;

  [[nodiscard]] virtual int param_dim() const noexcept = 0;

  /// Average cross-entropy loss over the given examples; when `gradient` is
  /// non-null it receives the average loss gradient (resized to param_dim).
  virtual double loss(const Vector& params, const Dataset& data, std::span<const int> examples,
                      Vector* gradient) const = 0;

  /// Predicted class for one feature row.
  [[nodiscard]] virtual int predict(const Vector& params, const Vector& features) const = 0;
};

/// Average loss over an entire dataset (no gradient).
double dataset_loss(const Model& model, const Vector& params, const Dataset& data);

/// Fraction of correctly classified examples.
double accuracy(const Model& model, const Vector& params, const Dataset& data);

/// Row-major confusion matrix: entry (true_class, predicted_class) counts.
struct ConfusionMatrix {
  linalg::Matrix counts;  // num_classes x num_classes

  /// Recall of one class: correct / total-of-class (0 if the class is empty).
  [[nodiscard]] double recall(int label) const;
  /// Precision of one class: correct / total-predicted (0 if never predicted).
  [[nodiscard]] double precision(int label) const;
  [[nodiscard]] double overall_accuracy() const;
};

ConfusionMatrix confusion_matrix(const Model& model, const Vector& params, const Dataset& data);

}  // namespace abft::learn

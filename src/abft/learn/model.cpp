#include "abft/learn/model.hpp"

#include <numeric>

#include "abft/util/check.hpp"

namespace abft::learn {

double dataset_loss(const Model& model, const Vector& params, const Dataset& data) {
  std::vector<int> everyone(static_cast<std::size_t>(data.num_examples()));
  std::iota(everyone.begin(), everyone.end(), 0);
  return model.loss(params, data, everyone, nullptr);
}

double accuracy(const Model& model, const Vector& params, const Dataset& data) {
  ABFT_REQUIRE(data.num_examples() > 0, "accuracy needs a non-empty dataset");
  int correct = 0;
  for (int i = 0; i < data.num_examples(); ++i) {
    if (model.predict(params, data.features.row(i)) == data.labels[static_cast<std::size_t>(i)]) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(data.num_examples());
}

double ConfusionMatrix::recall(int label) const {
  ABFT_REQUIRE(0 <= label && label < counts.rows(), "label out of range");
  double total = 0.0;
  for (int c = 0; c < counts.cols(); ++c) total += counts(label, c);
  return total > 0.0 ? counts(label, label) / total : 0.0;
}

double ConfusionMatrix::precision(int label) const {
  ABFT_REQUIRE(0 <= label && label < counts.cols(), "label out of range");
  double total = 0.0;
  for (int r = 0; r < counts.rows(); ++r) total += counts(r, label);
  return total > 0.0 ? counts(label, label) / total : 0.0;
}

double ConfusionMatrix::overall_accuracy() const {
  double correct = 0.0;
  double total = 0.0;
  for (int r = 0; r < counts.rows(); ++r) {
    for (int c = 0; c < counts.cols(); ++c) {
      total += counts(r, c);
      if (r == c) correct += counts(r, c);
    }
  }
  return total > 0.0 ? correct / total : 0.0;
}

ConfusionMatrix confusion_matrix(const Model& model, const Vector& params, const Dataset& data) {
  ABFT_REQUIRE(data.num_examples() > 0, "confusion matrix needs a non-empty dataset");
  ConfusionMatrix out{linalg::Matrix(data.num_classes, data.num_classes)};
  for (int i = 0; i < data.num_examples(); ++i) {
    const int truth = data.labels[static_cast<std::size_t>(i)];
    const int predicted = model.predict(params, data.features.row(i));
    ABFT_REQUIRE(0 <= predicted && predicted < data.num_classes, "prediction out of range");
    out.counts(truth, predicted) += 1.0;
  }
  return out;
}

}  // namespace abft::learn

#include "abft/learn/dsgd.hpp"

#include <algorithm>

#include "abft/util/check.hpp"

namespace abft::learn {

namespace {

/// Concatenates the honest shards for the reference loss measurements.
Dataset merge_honest(const std::vector<Dataset>& shards, const std::vector<AgentFault>& faults) {
  int total = 0;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (faults[i] == AgentFault::kHonest) total += shards[i].num_examples();
  }
  ABFT_REQUIRE(total > 0, "no honest data to evaluate on");
  Dataset merged{linalg::Matrix(total, shards.front().feature_dim()),
                 std::vector<int>(static_cast<std::size_t>(total)), shards.front().num_classes};
  int row = 0;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (faults[i] != AgentFault::kHonest) continue;
    for (int r = 0; r < shards[i].num_examples(); ++r, ++row) {
      for (int k = 0; k < merged.feature_dim(); ++k) {
        merged.features(row, k) = shards[i].features(r, k);
      }
      merged.labels[static_cast<std::size_t>(row)] = shards[i].labels[static_cast<std::size_t>(r)];
    }
  }
  return merged;
}

std::vector<int> sample_batch(util::Rng& rng, int shard_size, int batch_size) {
  // Sampling with replacement keeps every iteration O(batch) regardless of
  // shard size, matching the i.i.d. mini-batch model in Appendix K.
  std::vector<int> batch(static_cast<std::size_t>(std::min(batch_size, shard_size)));
  for (auto& idx : batch) idx = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(shard_size)));
  return batch;
}

std::vector<unsigned char> faulty_mask(const std::vector<AgentFault>& faults) {
  std::vector<unsigned char> mask(faults.size(), 0);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    mask[i] = faults[i] == AgentFault::kHonest ? 0 : 1;
  }
  return mask;
}

}  // namespace

DsgdSeries run_dsgd(const Model& model, const Vector& initial_params,
                    const std::vector<Dataset>& shards, const std::vector<AgentFault>& faults,
                    const Dataset& test_set, const agg::GradientAggregator& aggregator,
                    const DsgdConfig& config) {
  ABFT_REQUIRE(!shards.empty(), "dsgd needs at least one agent");
  ABFT_REQUIRE(shards.size() == faults.size(), "one fault assignment per agent");
  ABFT_REQUIRE(initial_params.dim() == model.param_dim(), "initial parameter dimension mismatch");
  ABFT_REQUIRE(config.iterations >= 0 && config.batch_size > 0, "bad dsgd config");
  ABFT_REQUIRE(config.step_size > 0.0, "step size must be positive");
  ABFT_REQUIRE(config.eval_interval > 0, "eval interval must be positive");
  ABFT_REQUIRE(config.f >= 0 && config.f < static_cast<int>(shards.size()),
               "declared fault bound out of range");
  ABFT_REQUIRE(0.0 <= config.momentum && config.momentum < 1.0, "momentum must be in [0, 1)");

  // Label-flip faults act at the data level: pre-poison their shards.
  std::vector<Dataset> effective = shards;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (faults[i] == AgentFault::kLabelFlip) effective[i] = label_flipped(shards[i]);
  }
  const Dataset honest_data = merge_honest(shards, faults);

  // The engine owns the round machinery: per-agent rng streams, the pool,
  // the payload/ingest double-buffer and the scenario plan.  Every agent
  // owns its stream, gradient scratch, momentum buffer and batch row, so
  // the series is bit-identical at every thread count.
  engine::RoundEngine eng(faulty_mask(faults), model.param_dim(),
                          engine::RoundEngineConfig{config.seed, config.agg_threads,
                                                    config.agg_mode, config.agg_precision,
                                                    config.axes});
  eng.reset(config.f);
  if (config.observer) eng.set_observer(config.observer);

  DsgdSeries series;
  Vector params = initial_params;
  auto evaluate = [&](int iteration) {
    series.eval_iterations.push_back(iteration);
    series.train_loss.push_back(dataset_loss(model, params, honest_data));
    series.test_accuracy.push_back(accuracy(model, params, test_set));
  };
  evaluate(0);

  Vector filtered;
  std::vector<Vector> momenta(shards.size(), Vector(model.param_dim()));
  std::vector<Vector> grads(shards.size(), Vector(model.param_dim()));
  for (int t = 1; t <= config.iterations; ++t) {
    eng.begin_round(t);
    eng.emit_present([&](int agent, std::span<double> out) {
      const auto i = static_cast<std::size_t>(agent);
      Vector& grad = grads[i];
      const auto batch =
          sample_batch(eng.agent_rng(agent), effective[i].num_examples(), config.batch_size);
      model.loss(params, effective[i], batch, &grad);
      if (config.momentum > 0.0) {
        // Worker momentum: the message is the agent's running average,
        // which shrinks the honest variance the filter must tolerate.
        momenta[i] *= config.momentum;
        momenta[i].add_scaled(1.0 - config.momentum, grad);
        grad = momenta[i];
      }
      if (faults[i] == AgentFault::kGradientReverse) grad *= -1.0;
      const auto src = grad.coefficients();
      std::copy(src.begin(), src.end(), out.begin());
    });
    // No transport layer: every non-straggled message reaches the server.
    eng.deliver([](int /*agent*/, std::span<const double> payload, std::span<double> dst) {
      std::copy(payload.begin(), payload.end(), dst.begin());
      return true;
    });
    if (eng.aggregate(aggregator, filtered)) {
      eng.notify(t, params, filtered);
      params.add_scaled(-config.step_size, filtered);
    }
    if (t % config.eval_interval == 0 || t == config.iterations) evaluate(t);
  }
  series.departed_agents = eng.departed_count();
  series.final_params = std::move(params);
  return series;
}

}  // namespace abft::learn

#include "abft/learn/softmax.hpp"

#include <algorithm>
#include <cmath>

#include "abft/util/check.hpp"

namespace abft::learn {

SoftmaxRegression::SoftmaxRegression(int feature_dim, int num_classes)
    : feature_dim_(feature_dim), num_classes_(num_classes) {
  ABFT_REQUIRE(feature_dim > 0, "feature dimension must be positive");
  ABFT_REQUIRE(num_classes >= 2, "need at least two classes");
}

int SoftmaxRegression::param_dim() const noexcept {
  return num_classes_ * feature_dim_ + num_classes_;
}

void SoftmaxRegression::class_probabilities(const Vector& params, const Dataset& data,
                                            int example, std::vector<double>& probs) const {
  probs.assign(static_cast<std::size_t>(num_classes_), 0.0);
  double max_logit = -1e300;
  for (int c = 0; c < num_classes_; ++c) {
    double logit = params[num_classes_ * feature_dim_ + c];  // bias
    const int w_offset = c * feature_dim_;
    for (int k = 0; k < feature_dim_; ++k) logit += params[w_offset + k] * data.features(example, k);
    probs[static_cast<std::size_t>(c)] = logit;
    max_logit = std::max(max_logit, logit);
  }
  double denom = 0.0;
  for (auto& p : probs) {
    p = std::exp(p - max_logit);
    denom += p;
  }
  for (auto& p : probs) p /= denom;
}

double SoftmaxRegression::loss(const Vector& params, const Dataset& data,
                               std::span<const int> examples, Vector* gradient) const {
  ABFT_REQUIRE(params.dim() == param_dim(), "parameter dimension mismatch");
  ABFT_REQUIRE(data.feature_dim() == feature_dim_, "dataset feature dimension mismatch");
  ABFT_REQUIRE(!examples.empty(), "loss needs at least one example");
  if (gradient != nullptr) *gradient = Vector(param_dim());

  double total_loss = 0.0;
  std::vector<double> probs;
  for (int example : examples) {
    ABFT_REQUIRE(0 <= example && example < data.num_examples(), "example index out of range");
    class_probabilities(params, data, example, probs);
    const int label = data.labels[static_cast<std::size_t>(example)];
    ABFT_REQUIRE(0 <= label && label < num_classes_, "label out of range");
    total_loss += -std::log(std::max(probs[static_cast<std::size_t>(label)], 1e-300));
    if (gradient != nullptr) {
      for (int c = 0; c < num_classes_; ++c) {
        const double err = probs[static_cast<std::size_t>(c)] - (c == label ? 1.0 : 0.0);
        const int w_offset = c * feature_dim_;
        for (int k = 0; k < feature_dim_; ++k) {
          (*gradient)[w_offset + k] += err * data.features(example, k);
        }
        (*gradient)[num_classes_ * feature_dim_ + c] += err;
      }
    }
  }
  const double scale = 1.0 / static_cast<double>(examples.size());
  if (gradient != nullptr) *gradient *= scale;
  return total_loss * scale;
}

int SoftmaxRegression::predict(const Vector& params, const Vector& features) const {
  ABFT_REQUIRE(params.dim() == param_dim(), "parameter dimension mismatch");
  ABFT_REQUIRE(features.dim() == feature_dim_, "feature dimension mismatch");
  int best = 0;
  double best_logit = -1e300;
  for (int c = 0; c < num_classes_; ++c) {
    double logit = params[num_classes_ * feature_dim_ + c];
    const int w_offset = c * feature_dim_;
    for (int k = 0; k < feature_dim_; ++k) logit += params[w_offset + k] * features[k];
    if (logit > best_logit) {
      best_logit = logit;
      best = c;
    }
  }
  return best;
}

}  // namespace abft::learn

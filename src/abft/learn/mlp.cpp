#include "abft/learn/mlp.hpp"

#include <algorithm>
#include <cmath>

#include "abft/util/check.hpp"

namespace abft::learn {

Mlp::Mlp(int feature_dim, int hidden_dim, int num_classes)
    : feature_dim_(feature_dim), hidden_dim_(hidden_dim), num_classes_(num_classes) {
  ABFT_REQUIRE(feature_dim > 0, "feature dimension must be positive");
  ABFT_REQUIRE(hidden_dim > 0, "hidden dimension must be positive");
  ABFT_REQUIRE(num_classes >= 2, "need at least two classes");
}

Mlp::Offsets Mlp::offsets() const noexcept {
  Offsets off{};
  off.w1 = 0;
  off.b1 = hidden_dim_ * feature_dim_;
  off.w2 = off.b1 + hidden_dim_;
  off.b2 = off.w2 + num_classes_ * hidden_dim_;
  return off;
}

int Mlp::param_dim() const noexcept {
  const Offsets off = offsets();
  return off.b2 + num_classes_;
}

Vector Mlp::initial_params(util::Rng& rng) const {
  Vector params(param_dim());
  const Offsets off = offsets();
  const double w1_scale = 1.0 / std::sqrt(static_cast<double>(feature_dim_));
  const double w2_scale = 1.0 / std::sqrt(static_cast<double>(hidden_dim_));
  for (int i = 0; i < off.b1; ++i) params[i] = rng.normal(0.0, w1_scale);
  for (int i = off.w2; i < off.b2; ++i) params[i] = rng.normal(0.0, w2_scale);
  return params;  // biases start at zero
}

void Mlp::forward(const Vector& params, const Dataset& data, int example,
                  std::vector<double>& hidden, std::vector<double>& probs) const {
  const Offsets off = offsets();
  hidden.assign(static_cast<std::size_t>(hidden_dim_), 0.0);
  for (int h = 0; h < hidden_dim_; ++h) {
    double pre = params[off.b1 + h];
    const int row = off.w1 + h * feature_dim_;
    for (int k = 0; k < feature_dim_; ++k) pre += params[row + k] * data.features(example, k);
    hidden[static_cast<std::size_t>(h)] = std::tanh(pre);
  }
  probs.assign(static_cast<std::size_t>(num_classes_), 0.0);
  double max_logit = -1e300;
  for (int c = 0; c < num_classes_; ++c) {
    double logit = params[off.b2 + c];
    const int row = off.w2 + c * hidden_dim_;
    for (int h = 0; h < hidden_dim_; ++h) logit += params[row + h] * hidden[static_cast<std::size_t>(h)];
    probs[static_cast<std::size_t>(c)] = logit;
    max_logit = std::max(max_logit, logit);
  }
  double denom = 0.0;
  for (auto& p : probs) {
    p = std::exp(p - max_logit);
    denom += p;
  }
  for (auto& p : probs) p /= denom;
}

double Mlp::loss(const Vector& params, const Dataset& data, std::span<const int> examples,
                 Vector* gradient) const {
  ABFT_REQUIRE(params.dim() == param_dim(), "parameter dimension mismatch");
  ABFT_REQUIRE(data.feature_dim() == feature_dim_, "dataset feature dimension mismatch");
  ABFT_REQUIRE(!examples.empty(), "loss needs at least one example");
  if (gradient != nullptr) *gradient = Vector(param_dim());
  const Offsets off = offsets();

  double total_loss = 0.0;
  std::vector<double> hidden;
  std::vector<double> probs;
  std::vector<double> delta_hidden(static_cast<std::size_t>(hidden_dim_));
  for (int example : examples) {
    ABFT_REQUIRE(0 <= example && example < data.num_examples(), "example index out of range");
    forward(params, data, example, hidden, probs);
    const int label = data.labels[static_cast<std::size_t>(example)];
    ABFT_REQUIRE(0 <= label && label < num_classes_, "label out of range");
    total_loss += -std::log(std::max(probs[static_cast<std::size_t>(label)], 1e-300));
    if (gradient == nullptr) continue;

    // Backprop.  Output layer: dL/dlogit_c = p_c - 1{c == label}.
    std::fill(delta_hidden.begin(), delta_hidden.end(), 0.0);
    for (int c = 0; c < num_classes_; ++c) {
      const double err = probs[static_cast<std::size_t>(c)] - (c == label ? 1.0 : 0.0);
      const int row = off.w2 + c * hidden_dim_;
      for (int h = 0; h < hidden_dim_; ++h) {
        (*gradient)[row + h] += err * hidden[static_cast<std::size_t>(h)];
        delta_hidden[static_cast<std::size_t>(h)] += err * params[row + h];
      }
      (*gradient)[off.b2 + c] += err;
    }
    // Hidden layer: tanh' = 1 - tanh^2.
    for (int h = 0; h < hidden_dim_; ++h) {
      const double act = hidden[static_cast<std::size_t>(h)];
      const double delta = delta_hidden[static_cast<std::size_t>(h)] * (1.0 - act * act);
      if (delta == 0.0) continue;
      const int row = off.w1 + h * feature_dim_;
      for (int k = 0; k < feature_dim_; ++k) {
        (*gradient)[row + k] += delta * data.features(example, k);
      }
      (*gradient)[off.b1 + h] += delta;
    }
  }
  const double scale = 1.0 / static_cast<double>(examples.size());
  if (gradient != nullptr) *gradient *= scale;
  return total_loss * scale;
}

int Mlp::predict(const Vector& params, const Vector& features) const {
  ABFT_REQUIRE(params.dim() == param_dim(), "parameter dimension mismatch");
  ABFT_REQUIRE(features.dim() == feature_dim_, "feature dimension mismatch");
  const Offsets off = offsets();
  std::vector<double> hidden(static_cast<std::size_t>(hidden_dim_));
  for (int h = 0; h < hidden_dim_; ++h) {
    double pre = params[off.b1 + h];
    const int row = off.w1 + h * feature_dim_;
    for (int k = 0; k < feature_dim_; ++k) pre += params[row + k] * features[k];
    hidden[static_cast<std::size_t>(h)] = std::tanh(pre);
  }
  int best = 0;
  double best_logit = -1e300;
  for (int c = 0; c < num_classes_; ++c) {
    double logit = params[off.b2 + c];
    const int row = off.w2 + c * hidden_dim_;
    for (int h = 0; h < hidden_dim_; ++h) logit += params[row + h] * hidden[static_cast<std::size_t>(h)];
    if (logit > best_logit) {
      best_logit = logit;
      best = c;
    }
  }
  return best;
}

}  // namespace abft::learn

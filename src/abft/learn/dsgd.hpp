// Distributed stochastic gradient descent with robust aggregation — the
// Appendix-K training loop.  Each agent samples a mini-batch from its local
// shard per iteration; faulty agents either train on label-flipped data
// (data-level fault) or corrupt their gradient through a FaultModel
// (message-level fault, e.g. gradient-reverse).
//
// The round machinery (per-agent rng streams, thread pool, batch
// double-buffer, scenario axes) is the shared engine::RoundEngine; this
// driver supplies the mini-batch gradient producer and the constant-step
// update rule.  Under the axes: a non-participating agent skips the round
// entirely (its batch-sampling stream does not advance); a straggler samples
// and computes (stream advances, momentum updates) but its message misses
// the round; churned agents leave for good (a faulty departure shrinks the
// usable f).
#pragma once

#include <functional>
#include <optional>

#include "abft/agg/aggregator.hpp"
#include "abft/attack/fault.hpp"
#include "abft/engine/round_engine.hpp"
#include "abft/learn/model.hpp"

namespace abft::learn {

enum class AgentFault {
  kHonest,
  kLabelFlip,       // trains honestly on label_flipped(shard)
  kGradientReverse  // sends the negated mini-batch gradient
};

struct DsgdConfig {
  int iterations = 1000;
  int batch_size = 128;
  double step_size = 0.01;  // the paper's eta = 0.01
  /// Declared fault bound handed to the gradient filter.
  int f = 0;
  /// Evaluate loss/accuracy every this many iterations (and at the end).
  int eval_interval = 25;
  /// Worker momentum beta in [0, 1): agents send m_t = beta m_{t-1} +
  /// (1 - beta) g_t instead of the raw gradient — the "learning from
  /// history" robustification of Karimireddy et al. (the paper's ref [28]).
  /// 0 disables momentum (the paper's own setting).
  double momentum = 0.0;
  std::uint64_t seed = 0;
  /// Round-level parallelism: width of the persistent thread pool that
  /// parallelizes the per-agent mini-batch gradient computation (each agent
  /// owns its rng stream, momentum buffer and batch row, so the series is
  /// bit-identical at every thread count) and the coordinate/pair loops
  /// inside the gradient filter.  1 = fully single-threaded.
  int agg_threads = 1;
  /// Numerical mode of the gradient filter (see agg/batch.hpp): exact keeps
  /// bit-parity with the span path, fast enables the relaxed-parity
  /// vectorized kernels.
  agg::AggMode agg_mode = agg::AggMode::exact;
  /// Compute precision of the filter's fast lane (agg/batch.hpp): f32
  /// demotes the bandwidth-bound kernel inputs.  Only meaningful with
  /// agg_mode == fast; a no-op under exact.
  agg::Precision agg_precision = agg::Precision::f64;
  /// Round-perturbation axes (engine/axes.hpp).  The driver's round counter
  /// is 1-based (t = 1..iterations), so churn at round r <= 1 fires before
  /// the first update.  Defaults are a no-op (bit-identical run).
  engine::ScenarioAxes axes;
  /// Optional per-round hook (t, params, filtered gradient), invoked before
  /// the update — the engine's observer, exposed for scenario tooling.
  engine::RoundObserver observer;
};

struct DsgdSeries {
  std::vector<int> eval_iterations;
  std::vector<double> train_loss;     // honest-shard cross-entropy
  std::vector<double> test_accuracy;  // on the held-out test set
  Vector final_params;
  /// Agents that left mid-run via the churn axis.
  int departed_agents = 0;
};

/// Runs D-SGD.  `shards[i]` is agent i's local data; `faults[i]` its
/// behaviour.  The train-loss series is measured on the union of honest
/// shards (the paper's fault-free reference loss).
DsgdSeries run_dsgd(const Model& model, const Vector& initial_params,
                    const std::vector<Dataset>& shards, const std::vector<AgentFault>& faults,
                    const Dataset& test_set, const agg::GradientAggregator& aggregator,
                    const DsgdConfig& config);

}  // namespace abft::learn

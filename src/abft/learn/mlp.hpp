// One-hidden-layer perceptron with tanh activation and softmax output —
// the nonconvex stand-in for the paper's LeNet (Appendix K notes the theory
// is motivated by strong convexity near minimizers, and the experiments only
// need a nonconvex multi-parameter model).
//
// Parameter layout (flat): W1 row-major (hidden x features), b1 (hidden),
// W2 row-major (classes x hidden), b2 (classes).
#pragma once

#include "abft/learn/model.hpp"

namespace abft::learn {

class Mlp final : public Model {
 public:
  Mlp(int feature_dim, int hidden_dim, int num_classes);

  [[nodiscard]] int param_dim() const noexcept override;
  double loss(const Vector& params, const Dataset& data, std::span<const int> examples,
              Vector* gradient) const override;
  [[nodiscard]] int predict(const Vector& params, const Vector& features) const override;

  /// He/Xavier-style random initialization.
  [[nodiscard]] Vector initial_params(util::Rng& rng) const;

  [[nodiscard]] int hidden_dim() const noexcept { return hidden_dim_; }

 private:
  struct Offsets {
    int w1, b1, w2, b2;
  };
  [[nodiscard]] Offsets offsets() const noexcept;

  /// Forward pass for one example; fills hidden activations and class
  /// probabilities.
  void forward(const Vector& params, const Dataset& data, int example,
               std::vector<double>& hidden, std::vector<double>& probs) const;

  int feature_dim_;
  int hidden_dim_;
  int num_classes_;
};

}  // namespace abft::learn

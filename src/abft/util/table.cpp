#include "abft/util/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "abft/util/check.hpp"

namespace abft::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  ABFT_REQUIRE(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  ABFT_REQUIRE(row.size() == header_.size(), "row width must match header width");
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      os << (c + 1 < row.size() ? " | " : " |\n");
    }
  };
  print_row(header_);
  os << '|';
  for (std::size_t c = 0; c < widths.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string format_double(double value, int digits) {
  std::ostringstream os;
  os << std::setprecision(digits) << value;
  return os.str();
}

std::string format_scientific(double value, int digits) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(digits) << value;
  return os.str();
}

}  // namespace abft::util

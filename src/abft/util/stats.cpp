#include "abft/util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "abft/util/check.hpp"

namespace abft::util {

double mean(std::span<const double> xs) {
  ABFT_REQUIRE(!xs.empty(), "mean of empty range");
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  const double m = mean(xs);
  double sum = 0.0;
  for (double x : xs) sum += (x - m) * (x - m);
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min_value(std::span<const double> xs) {
  ABFT_REQUIRE(!xs.empty(), "min of empty range");
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) {
  ABFT_REQUIRE(!xs.empty(), "max of empty range");
  return *std::max_element(xs.begin(), xs.end());
}

double quantile(std::span<const double> xs, double q) {
  ABFT_REQUIRE(!xs.empty(), "quantile of empty range");
  ABFT_REQUIRE(0.0 <= q && q <= 1.0, "quantile needs q in [0, 1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.min = min_value(xs);
  s.median = median(xs);
  s.max = max_value(xs);
  return s;
}

}  // namespace abft::util

// Subset enumeration used by the redundancy analyzer and the exhaustive
// (f, 2eps)-resilient algorithm of Theorem 2, both of which quantify over all
// (n-f)- and (n-2f)-element subsets of agents.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace abft::util {

/// Number of k-element subsets of an n-element set.  Throws on overflow.
std::uint64_t binomial(int n, int k);

/// Invokes `fn` once for every k-element subset of {0, ..., n-1}, in
/// lexicographic order.  The span passed to `fn` is only valid during the
/// call.  If `fn` returns false, enumeration stops early.
void for_each_combination(int n, int k, const std::function<bool(const std::vector<int>&)>& fn);

/// All k-element subsets of {0, ..., n-1} in lexicographic order.
std::vector<std::vector<int>> all_combinations(int n, int k);

/// All k-element subsets of the given base set, in lexicographic order of
/// positions (elements keep their base order).
std::vector<std::vector<int>> all_subsets_of(const std::vector<int>& base, int k);

/// Complement of `subset` (sorted, must be a subset of {0, ..., n-1}) within
/// {0, ..., n-1}.
std::vector<int> complement(const std::vector<int>& subset, int n);

/// True if `sub` (sorted) is a subset of `super` (sorted).
bool is_subset_sorted(const std::vector<int>& sub, const std::vector<int>& super);

}  // namespace abft::util

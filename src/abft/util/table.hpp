// Fixed-width console table printing, used by the bench binaries to emit the
// same rows the paper's tables and figure annotations report.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace abft::util {

/// A simple left-aligned text table.  Columns are sized to the widest cell.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds a row; must have the same number of cells as the header.
  void add_row(std::vector<std::string> row);

  /// Renders with column separators and a header rule.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant digits (general format).
std::string format_double(double value, int digits = 4);

/// Formats a double in scientific notation with `digits` digits after the
/// point, e.g. 1.51e-03 — the style of the paper's figure annotations.
std::string format_scientific(double value, int digits = 2);

}  // namespace abft::util

#include "abft/util/combinatorics.hpp"

#include <algorithm>
#include <limits>

#include "abft/util/check.hpp"

namespace abft::util {

std::uint64_t binomial(int n, int k) {
  ABFT_REQUIRE(n >= 0 && k >= 0, "binomial needs n, k >= 0");
  if (k > n) return 0;
  k = std::min(k, n - k);
  std::uint64_t result = 1;
  for (int i = 1; i <= k; ++i) {
    const auto numer = static_cast<std::uint64_t>(n - k + i);
    ABFT_REQUIRE(result <= std::numeric_limits<std::uint64_t>::max() / numer,
                 "binomial(n, k) overflows 64 bits");
    result = result * numer / static_cast<std::uint64_t>(i);
  }
  return result;
}

void for_each_combination(int n, int k, const std::function<bool(const std::vector<int>&)>& fn) {
  ABFT_REQUIRE(n >= 0 && k >= 0, "for_each_combination needs n, k >= 0");
  if (k > n) return;
  std::vector<int> comb(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) comb[static_cast<std::size_t>(i)] = i;
  for (;;) {
    if (!fn(comb)) return;
    // Advance to the next lexicographic combination.
    int i = k - 1;
    while (i >= 0 && comb[static_cast<std::size_t>(i)] == n - k + i) --i;
    if (i < 0) return;
    ++comb[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < k; ++j) {
      comb[static_cast<std::size_t>(j)] = comb[static_cast<std::size_t>(j - 1)] + 1;
    }
  }
}

std::vector<std::vector<int>> all_combinations(int n, int k) {
  std::vector<std::vector<int>> out;
  for_each_combination(n, k, [&out](const std::vector<int>& comb) {
    out.push_back(comb);
    return true;
  });
  return out;
}

std::vector<std::vector<int>> all_subsets_of(const std::vector<int>& base, int k) {
  std::vector<std::vector<int>> out;
  const int n = static_cast<int>(base.size());
  for_each_combination(n, k, [&](const std::vector<int>& positions) {
    std::vector<int> subset;
    subset.reserve(positions.size());
    for (int p : positions) subset.push_back(base[static_cast<std::size_t>(p)]);
    out.push_back(std::move(subset));
    return true;
  });
  return out;
}

std::vector<int> complement(const std::vector<int>& subset, int n) {
  ABFT_REQUIRE(std::is_sorted(subset.begin(), subset.end()), "complement needs a sorted subset");
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(n) - subset.size());
  std::size_t j = 0;
  for (int i = 0; i < n; ++i) {
    if (j < subset.size() && subset[j] == i) {
      ++j;
    } else {
      out.push_back(i);
    }
  }
  ABFT_REQUIRE(j == subset.size(), "complement: subset must lie within {0, ..., n-1}");
  return out;
}

bool is_subset_sorted(const std::vector<int>& sub, const std::vector<int>& super) {
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

}  // namespace abft::util

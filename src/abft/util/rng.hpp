// Deterministic pseudo-random number generation.
//
// The simulator must be bit-for-bit reproducible across platforms and
// standard-library implementations, so we implement both the generator
// (xoshiro256++) and the distributions (uniform, Gaussian via Box–Muller)
// ourselves instead of relying on std::<distribution> (whose output is
// implementation-defined).
#pragma once

#include <cstdint>
#include <vector>

namespace abft::util {

/// xoshiro256++ generator (Blackman & Vigna).  Seeded via splitmix64 so any
/// 64-bit seed produces a well-mixed state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Next raw 64-bit output.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).  Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [0, bound).  Requires bound > 0.
  /// Uses rejection sampling so the result is exactly unbiased.
  std::uint64_t uniform_index(std::uint64_t bound);

  /// Standard normal sample (Box–Muller; one cached spare per pair).
  double normal() noexcept;

  /// Normal sample with the given mean and standard deviation (stddev >= 0).
  double normal(double mean, double stddev);

  /// Vector of k i.i.d. standard normal samples.
  std::vector<double> normal_vector(int k);

  /// Gamma(shape, 1) sample via Marsaglia–Tsang squeeze (shape > 0; shapes
  /// below 1 use the standard U^(1/shape) boost).  Like every distribution
  /// here it is built on our own generator, so draws are bit-reproducible
  /// across platforms.
  double gamma(double shape);

  /// Dirichlet(alpha, ..., alpha) sample over k categories (alpha > 0,
  /// k >= 1): normalized i.i.d. Gamma(alpha) draws.
  std::vector<double> dirichlet(double alpha, int k);

  /// Fisher–Yates shuffle of indices [0, n).
  std::vector<int> permutation(int n);

  /// k distinct indices sampled uniformly from [0, n) (k <= n).
  std::vector<int> sample_without_replacement(int n, int k);

  /// Derive an independent generator (for per-agent streams).
  Rng split() noexcept;

 private:
  std::uint64_t state_[4];
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace abft::util

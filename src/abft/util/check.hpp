// Precondition and invariant checking used across all abft modules.
//
// ABFT_REQUIRE  — validates a caller-supplied precondition; throws
//                 std::invalid_argument with a source-located message.
// ABFT_ENSURE   — validates an internal invariant / postcondition; throws
//                 std::logic_error (a failure indicates a library bug).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace abft::util {

[[noreturn]] inline void throw_require_failure(const char* expr, const char* file, int line,
                                               const std::string& message) {
  std::ostringstream os;
  os << file << ':' << line << ": requirement `" << expr << "` failed";
  if (!message.empty()) os << ": " << message;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_ensure_failure(const char* expr, const char* file, int line,
                                              const std::string& message) {
  std::ostringstream os;
  os << file << ':' << line << ": invariant `" << expr << "` violated";
  if (!message.empty()) os << ": " << message;
  throw std::logic_error(os.str());
}

}  // namespace abft::util

#define ABFT_REQUIRE(expr, msg)                                              \
  do {                                                                       \
    if (!(expr)) ::abft::util::throw_require_failure(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#define ABFT_ENSURE(expr, msg)                                               \
  do {                                                                       \
    if (!(expr)) ::abft::util::throw_ensure_failure(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

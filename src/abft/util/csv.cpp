#include "abft/util/csv.hpp"

#include <ostream>
#include <sstream>

#include "abft/util/check.hpp"
#include "abft/util/table.hpp"

namespace abft::util {

std::string csv_escape(const std::string& field) {
  // RFC 4180: a field containing the separator, a quote, or a line break
  // (either half of CRLF) must be quoted, with embedded quotes doubled.
  const bool needs_quoting = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(std::ostream& os, std::vector<std::string> header)
    : os_(os), width_(header.size()) {
  ABFT_REQUIRE(width_ > 0, "csv needs at least one column");
  add_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& row) {
  ABFT_REQUIRE(row.size() == width_, "csv row width must match header");
  for (std::size_t i = 0; i < row.size(); ++i) {
    os_ << csv_escape(row[i]) << (i + 1 < row.size() ? "," : "\n");
  }
}

void CsvWriter::add_numeric_row(const std::vector<double>& row) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) cells.push_back(format_double(v, 10));
  add_row(cells);
}

}  // namespace abft::util

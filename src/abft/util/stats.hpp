// Small descriptive-statistics helpers used by benches and tests.
#pragma once

#include <span>
#include <vector>

namespace abft::util {

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  // population variance
double stddev(std::span<const double> xs);
double min_value(std::span<const double> xs);
double max_value(std::span<const double> xs);

/// Linear-interpolation quantile, q in [0, 1].
double quantile(std::span<const double> xs, double q);

/// Median (quantile 0.5) — convenience wrapper.
double median(std::span<const double> xs);

/// Summary bundle for reporting.
struct Summary {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double median = 0.0;
  double max = 0.0;
};

Summary summarize(std::span<const double> xs);

}  // namespace abft::util

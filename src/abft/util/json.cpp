#include "abft/util/json.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace abft::util {

namespace {

[[noreturn]] void kind_error(const char* wanted, JsonValue::Kind got) {
  static const char* names[] = {"null", "bool", "number", "string", "array", "object"};
  std::ostringstream os;
  os << "json: expected " << wanted << ", found " << names[static_cast<int>(got)];
  throw std::invalid_argument(os.str());
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing content after the document");
    return value;
  }

 private:
  JsonValue parse_value() {
    skip_whitespace();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue::make_string(parse_string());
      case 't':
        expect_literal("true");
        return JsonValue::make_bool(true);
      case 'f':
        expect_literal("false");
        return JsonValue::make_bool(false);
      case 'n':
        expect_literal("null");
        return JsonValue::make_null();
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, JsonValue>> members;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    while (true) {
      skip_whitespace();
      if (peek() != '"') fail("expected an object key");
      std::string key = parse_string();
      skip_whitespace();
      if (peek() != ':') fail("expected ':' after object key");
      ++pos_;
      members.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return JsonValue::make_object(std::move(members));
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return JsonValue::make_array(std::move(items));
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int k = 0; k < 4; ++k) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad hex digit in \\u escape");
            }
            // UTF-8 encode the BMP code point (specs are ASCII in practice;
            // surrogate pairs are out of scope and flagged).
            if (code >= 0xD800 && code <= 0xDFFF) fail("surrogate pairs are not supported");
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            fail("unknown escape character");
        }
        continue;
      }
      out.push_back(c);
    }
    fail("unterminated string");
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc{} || ptr != text_.data() + pos_ || pos_ == start) {
      pos_ = start;
      fail("malformed number");
    }
    return JsonValue::make_number(value);
  }

  void expect_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) fail("malformed literal");
    pos_ += literal.size();
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  [[noreturn]] void fail(const char* message) const {
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    std::ostringstream os;
    os << "json parse error at " << line << ':' << column << ": " << message;
    throw std::invalid_argument(os.str());
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("bool", kind_);
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) kind_error("number", kind_);
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) kind_error("string", kind_);
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) kind_error("array", kind_);
  return array_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::as_object() const {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  // Last value wins for duplicate keys, matching common JSON readers.
  const JsonValue* found = nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) found = &value;
  }
  return found;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* found = find(key);
  if (found == nullptr) {
    throw std::invalid_argument("json: missing required key \"" + std::string(key) + "\"");
  }
  return *found;
}

bool JsonValue::bool_or(std::string_view key, bool fallback) const {
  const JsonValue* found = find(key);
  return found == nullptr ? fallback : found->as_bool();
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* found = find(key);
  return found == nullptr ? fallback : found->as_number();
}

std::string JsonValue::string_or(std::string_view key, std::string fallback) const {
  const JsonValue* found = find(key);
  return found == nullptr ? std::move(fallback) : found->as_string();
}

std::vector<std::string> JsonValue::keys() const {
  std::vector<std::string> out;
  if (kind_ == Kind::kObject) {
    out.reserve(object_.size());
    for (const auto& [name, value] : object_) out.push_back(name);
  }
  return out;
}

JsonValue JsonValue::make_null() { return JsonValue{}; }

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double x) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = x;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::make_object(std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

JsonValue parse_json(std::string_view text) { return Parser(text).parse_document(); }

JsonValue parse_json_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot read json file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_json(buffer.str());
}

void write_json_string(std::ostream& os, std::string_view text) {
  os << '"';
  for (const char c : text) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          os << buffer;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

std::string format_json_number(double value) {
  std::ostringstream os;
  os.precision(12);
  os << value;
  return os.str();
}

void write_json_number(std::ostream& os, double value) {
  if (!std::isfinite(value)) {
    // JSON has no nan/inf literal; a bare "nan" token would make the whole
    // document unparseable.  null is the lossless-enough stand-in the
    // comparators treat as "non-finite here".
    os << "null";
    return;
  }
  os << format_json_number(value);
}

bool numbers_match(double a, double b, double rtol) {
  if (std::isnan(a) && std::isnan(b)) return true;
  return std::abs(a - b) <= rtol * std::max({std::abs(a), std::abs(b), 1.0});
}

void require_known_keys(const JsonValue& object, std::string_view layer,
                        std::string_view where,
                        std::initializer_list<std::string_view> allowed) {
  for (const auto& key : object.keys()) {
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      std::ostringstream os;
      os << layer << ": unknown key \"" << key << "\" in " << where;
      throw std::invalid_argument(os.str());
    }
  }
}

}  // namespace abft::util

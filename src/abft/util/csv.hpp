// CSV emission for figure-series data (loss/distance/accuracy vs iteration),
// so the bench output can be re-plotted directly.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace abft::util {

/// Streams rows of a CSV document.  All rows must match the header width.
class CsvWriter {
 public:
  CsvWriter(std::ostream& os, std::vector<std::string> header);

  void add_row(const std::vector<std::string>& row);
  void add_numeric_row(const std::vector<double>& row);

 private:
  std::ostream& os_;
  std::size_t width_;
};

/// Escapes a CSV field (quotes fields containing commas/quotes/newlines).
std::string csv_escape(const std::string& field);

}  // namespace abft::util

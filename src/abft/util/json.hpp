// Minimal JSON reader for the declarative scenario layer.  Self-contained
// (the container bakes in no JSON dependency) and deliberately small: full
// JSON syntax on input — objects, arrays, strings with the standard escapes,
// numbers, booleans, null — with an ergonomic read-side API (typed accessors
// with defaults, error messages carrying the offending key).  Insertion
// order of object keys is preserved; duplicate keys keep the last value.
#pragma once

#include <initializer_list>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace abft::util {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const noexcept { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const noexcept { return kind_ == Kind::kObject; }

  /// Typed reads; throw std::invalid_argument on a kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& as_array() const;
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& as_object() const;

  // --- object navigation ---------------------------------------------------
  /// Member lookup; nullptr when absent (or when this is not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  /// Member lookup; throws naming the key when absent.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;

  /// Typed member reads with defaults for absent keys (kind mismatches
  /// still throw, naming the key).
  [[nodiscard]] bool bool_or(std::string_view key, bool fallback) const;
  [[nodiscard]] double number_or(std::string_view key, double fallback) const;
  [[nodiscard]] std::string string_or(std::string_view key, std::string fallback) const;

  /// All keys of an object, in insertion order (empty otherwise).
  [[nodiscard]] std::vector<std::string> keys() const;

  // --- construction (parser + tests) ---------------------------------------
  static JsonValue make_null();
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double x);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parses one JSON document (trailing whitespace allowed, trailing content
/// not).  Throws std::invalid_argument with a line:column position on
/// malformed input.
JsonValue parse_json(std::string_view text);

/// Reads and parses a JSON file; throws std::invalid_argument naming the
/// path when the file cannot be read.
JsonValue parse_json_file(const std::string& path);

// --- emission / validation helpers shared by the spec layers ---------------

/// Writes `text` as a JSON string literal with the mandatory escapes (spec
/// names are free-form user text).
void write_json_string(std::ostream& os, std::string_view text);

/// Number formatted to 12 significant digits — the stable contract of every
/// machine summary (write_result_json, the sweep CSV/JSON writers) and of
/// the tolerances in scripts/compare_scenario.py / compare_sweep.py.
/// Non-finite values render as "nan"/"inf" — fine inside a CSV cell, NOT
/// valid JSON; JSON emitters must go through write_json_number instead.
std::string format_json_number(double value);

/// format_json_number for JSON documents: non-finite values (a diverged
/// run's nan final_dist, an inf cost) are emitted as `null`, which JSON can
/// carry and parse_json round-trips; finite values are unchanged.
void write_json_number(std::ostream& os, double value);

/// The one numeric comparison contract shared by abft_run --compare and the
/// Python comparators (compare_scenario / compare_sweep / bench_diff):
/// nan matches nan (a reproducibly diverged run is a *match*, a one-sided
/// nan is a mismatch), otherwise |a - b| <= rtol * max(|a|, |b|, 1).
bool numbers_match(double a, double b, double rtol);

/// Throws std::invalid_argument naming the first key of `object` not in
/// `allowed`, as "<layer>: unknown key \"k\" in <where>".
void require_known_keys(const JsonValue& object, std::string_view layer,
                        std::string_view where,
                        std::initializer_list<std::string_view> allowed);

}  // namespace abft::util

#include "abft/util/rng.hpp"

#include <cmath>
#include <numbers>

#include "abft/util/check.hpp"

namespace abft::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  ABFT_REQUIRE(lo <= hi, "uniform(lo, hi) needs lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t bound) {
  ABFT_REQUIRE(bound > 0, "uniform_index needs bound > 0");
  const std::uint64_t threshold = -bound % bound;  // 2^64 mod bound
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::normal() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  // Box–Muller on (0,1] to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double angle = 2.0 * std::numbers::pi * u2;
  spare_normal_ = radius * std::sin(angle);
  has_spare_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  ABFT_REQUIRE(stddev >= 0.0, "normal(mean, stddev) needs stddev >= 0");
  return mean + stddev * normal();
}

std::vector<double> Rng::normal_vector(int k) {
  ABFT_REQUIRE(k >= 0, "normal_vector needs k >= 0");
  std::vector<double> out(static_cast<std::size_t>(k));
  for (auto& v : out) v = normal();
  return out;
}

double Rng::gamma(double shape) {
  ABFT_REQUIRE(shape > 0.0, "gamma needs shape > 0");
  if (shape < 1.0) {
    // Boost: X ~ Gamma(shape + 1), U^(1/shape) X ~ Gamma(shape).
    const double u = 1.0 - uniform();  // (0, 1]: the exponent may be huge
    return gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia & Tsang (2000): squeeze on d (V)^3 with V = (1 + c Z)^3.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double z = 0.0;
    double v = 0.0;
    do {
      z = normal();
      v = 1.0 + c * z;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = 1.0 - uniform();  // (0, 1]: log(u) must be finite
    if (u < 1.0 - 0.0331 * (z * z) * (z * z)) return d * v;
    if (std::log(u) < 0.5 * z * z + d * (1.0 - v + std::log(v))) return d * v;
  }
}

std::vector<double> Rng::dirichlet(double alpha, int k) {
  ABFT_REQUIRE(k >= 1, "dirichlet needs k >= 1");
  std::vector<double> weights(static_cast<std::size_t>(k));
  double total = 0.0;
  for (auto& w : weights) {
    w = gamma(alpha);
    total += w;
  }
  if (total <= 0.0) {
    // All draws underflowed (alpha so small every Gamma mass sits below
    // double range).  The alpha -> 0 limit is winner-take-all — one
    // category holds all the mass — so degrade to that, not to the uniform
    // simplex (which is the alpha -> infinity limit).
    const auto winner = static_cast<std::size_t>(uniform_index(static_cast<std::uint64_t>(k)));
    for (auto& w : weights) w = 0.0;
    weights[winner] = 1.0;
    return weights;
  }
  for (auto& w : weights) w /= total;
  return weights;
}

std::vector<int> Rng::permutation(int n) {
  ABFT_REQUIRE(n >= 0, "permutation needs n >= 0");
  std::vector<int> idx(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) idx[static_cast<std::size_t>(i)] = i;
  for (int i = n - 1; i > 0; --i) {
    const auto j = static_cast<std::size_t>(uniform_index(static_cast<std::uint64_t>(i) + 1));
    std::swap(idx[static_cast<std::size_t>(i)], idx[j]);
  }
  return idx;
}

std::vector<int> Rng::sample_without_replacement(int n, int k) {
  ABFT_REQUIRE(0 <= k && k <= n, "sample_without_replacement needs 0 <= k <= n");
  std::vector<int> perm = permutation(n);
  perm.resize(static_cast<std::size_t>(k));
  return perm;
}

Rng Rng::split() noexcept {
  // A fresh generator seeded from this one's stream; streams are
  // independent for all practical purposes.
  return Rng(next_u64());
}

}  // namespace abft::util

#include "abft/linalg/eigen_sym.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "abft/util/check.hpp"

namespace abft::linalg {

namespace {

double off_diagonal_norm(const Matrix& a) {
  double sum = 0.0;
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) {
      if (i != j) sum += a(i, j) * a(i, j);
    }
  }
  return std::sqrt(sum);
}

}  // namespace

SymmetricEigen symmetric_eigen(const Matrix& a) {
  ABFT_REQUIRE(a.rows() == a.cols(), "symmetric_eigen needs a square matrix");
  const int n = a.rows();
  const double scale = std::max(1.0, frobenius_norm(a));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      ABFT_REQUIRE(std::abs(a(i, j) - a(j, i)) <= 1e-9 * scale,
                   "symmetric_eigen needs a symmetric matrix");
    }
  }

  Matrix d = a;
  Matrix v = Matrix::identity(n);
  constexpr int kMaxSweeps = 64;
  const double tol = 1e-14 * scale;
  for (int sweep = 0; sweep < kMaxSweeps && off_diagonal_norm(d) > tol; ++sweep) {
    for (int p = 0; p < n - 1; ++p) {
      for (int q = p + 1; q < n; ++q) {
        const double apq = d(p, q);
        if (std::abs(apq) <= tol / std::max(1, n)) continue;
        const double app = d(p, p);
        const double aqq = d(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Rotate rows/columns p and q of d.
        for (int k = 0; k < n; ++k) {
          const double dkp = d(k, p);
          const double dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        for (int k = 0; k < n; ++k) {
          const double dpk = d(p, k);
          const double dqk = d(q, k);
          d(p, k) = c * dpk - s * dqk;
          d(q, k) = s * dpk + c * dqk;
        }
        // Accumulate the rotation into the eigenvector matrix.
        for (int k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort ascending by eigenvalue, permuting eigenvector columns to match.
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&d](int i, int j) { return d(i, i) < d(j, j); });

  SymmetricEigen out{Vector(n), Matrix(n, n)};
  for (int k = 0; k < n; ++k) {
    const int src = order[static_cast<std::size_t>(k)];
    out.eigenvalues[k] = d(src, src);
    for (int r = 0; r < n; ++r) out.eigenvectors(r, k) = v(r, src);
  }
  return out;
}

std::vector<double> symmetric_eigenvalues(const Matrix& a) {
  const auto decomposition = symmetric_eigen(a);
  std::vector<double> out(static_cast<std::size_t>(decomposition.eigenvalues.dim()));
  for (int i = 0; i < decomposition.eigenvalues.dim(); ++i) {
    out[static_cast<std::size_t>(i)] = decomposition.eigenvalues[i];
  }
  return out;
}

double largest_eigenvalue(const Matrix& a) { return symmetric_eigenvalues(a).back(); }

double smallest_eigenvalue(const Matrix& a) { return symmetric_eigenvalues(a).front(); }

}  // namespace abft::linalg

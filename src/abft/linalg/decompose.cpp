#include "abft/linalg/decompose.hpp"

#include <cmath>

#include "abft/linalg/eigen_sym.hpp"
#include "abft/util/check.hpp"

namespace abft::linalg {

std::optional<Matrix> cholesky(const Matrix& a) {
  ABFT_REQUIRE(a.rows() == a.cols(), "cholesky needs a square matrix");
  const int n = a.rows();
  Matrix l(n, n);
  for (int j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (int k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) return std::nullopt;
    l(j, j) = std::sqrt(diag);
    for (int i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (int k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      l(i, j) = sum / l(j, j);
    }
  }
  return l;
}

std::optional<Vector> cholesky_solve(const Matrix& a, const Vector& b) {
  ABFT_REQUIRE(a.rows() == b.dim(), "cholesky_solve shape mismatch");
  auto l = cholesky(a);
  if (!l) return std::nullopt;
  const int n = a.rows();
  // Forward substitution: L y = b.
  Vector y(n);
  for (int i = 0; i < n; ++i) {
    double sum = b[i];
    for (int k = 0; k < i; ++k) sum -= (*l)(i, k) * y[k];
    y[i] = sum / (*l)(i, i);
  }
  // Back substitution: L^T x = y.
  Vector x(n);
  for (int i = n - 1; i >= 0; --i) {
    double sum = y[i];
    for (int k = i + 1; k < n; ++k) sum -= (*l)(k, i) * x[k];
    x[i] = sum / (*l)(i, i);
  }
  return x;
}

QrDecomposition qr_decompose(const Matrix& a) {
  ABFT_REQUIRE(a.rows() >= a.cols(), "qr_decompose needs rows >= cols");
  const int m = a.rows();
  const int n = a.cols();
  Matrix work = a;                 // will become R in its top block
  Matrix q_full = Matrix::identity(m);
  for (int k = 0; k < n; ++k) {
    // Householder vector for column k below the diagonal.
    double norm_x = 0.0;
    for (int i = k; i < m; ++i) norm_x += work(i, k) * work(i, k);
    norm_x = std::sqrt(norm_x);
    if (norm_x == 0.0) continue;
    const double alpha = work(k, k) >= 0.0 ? -norm_x : norm_x;
    Vector v(m);
    for (int i = k; i < m; ++i) v[i] = work(i, k);
    v[k] -= alpha;
    const double v_norm_sq = v.squared_norm();
    if (v_norm_sq == 0.0) continue;
    // Apply H = I - 2 v v^T / (v^T v) to work (left) and accumulate into Q.
    for (int j = 0; j < n; ++j) {
      double proj = 0.0;
      for (int i = k; i < m; ++i) proj += v[i] * work(i, j);
      const double scale = 2.0 * proj / v_norm_sq;
      for (int i = k; i < m; ++i) work(i, j) -= scale * v[i];
    }
    for (int j = 0; j < m; ++j) {
      double proj = 0.0;
      for (int i = k; i < m; ++i) proj += v[i] * q_full(j, i);
      const double scale = 2.0 * proj / v_norm_sq;
      for (int i = k; i < m; ++i) q_full(j, i) -= scale * v[i];
    }
  }
  QrDecomposition out{Matrix(m, n), Matrix(n, n)};
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) out.q(i, j) = q_full(i, j);
  }
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) out.r(i, j) = work(i, j);
  }
  return out;
}

Vector least_squares(const Matrix& a, const Vector& b) {
  ABFT_REQUIRE(a.rows() == b.dim(), "least_squares shape mismatch");
  ABFT_REQUIRE(a.rows() >= a.cols(), "least_squares needs rows >= cols");
  const auto [q, r] = qr_decompose(a);
  const int n = a.cols();
  // x solves R x = Q^T b.
  Vector rhs(n);
  for (int j = 0; j < n; ++j) {
    double sum = 0.0;
    for (int i = 0; i < a.rows(); ++i) sum += q(i, j) * b[i];
    rhs[j] = sum;
  }
  double max_diag = 0.0;
  for (int i = 0; i < n; ++i) max_diag = std::max(max_diag, std::abs(r(i, i)));
  Vector x(n);
  for (int i = n - 1; i >= 0; --i) {
    ABFT_REQUIRE(std::abs(r(i, i)) > 1e-12 * std::max(1.0, max_diag),
                 "least_squares: rank-deficient system");
    double sum = rhs[i];
    for (int k = i + 1; k < n; ++k) sum -= r(i, k) * x[k];
    x[i] = sum / r(i, i);
  }
  return x;
}

std::optional<Vector> solve(const Matrix& a, const Vector& b) {
  ABFT_REQUIRE(a.rows() == a.cols(), "solve needs a square matrix");
  ABFT_REQUIRE(a.rows() == b.dim(), "solve shape mismatch");
  const int n = a.rows();
  Matrix work = a;
  Vector rhs = b;
  for (int col = 0; col < n; ++col) {
    // Partial pivoting.
    int pivot = col;
    for (int r = col + 1; r < n; ++r) {
      if (std::abs(work(r, col)) > std::abs(work(pivot, col))) pivot = r;
    }
    if (std::abs(work(pivot, col)) < 1e-14) return std::nullopt;
    if (pivot != col) {
      for (int c = 0; c < n; ++c) std::swap(work(pivot, c), work(col, c));
      std::swap(rhs[pivot], rhs[col]);
    }
    for (int r = col + 1; r < n; ++r) {
      const double factor = work(r, col) / work(col, col);
      if (factor == 0.0) continue;
      for (int c = col; c < n; ++c) work(r, c) -= factor * work(col, c);
      rhs[r] -= factor * rhs[col];
    }
  }
  Vector x(n);
  for (int i = n - 1; i >= 0; --i) {
    double sum = rhs[i];
    for (int k = i + 1; k < n; ++k) sum -= work(i, k) * x[k];
    x[i] = sum / work(i, i);
  }
  return x;
}

int column_rank(const Matrix& a, double rel_tol) {
  const Matrix g = gram(a);
  const auto eigenvalues = symmetric_eigenvalues(g);
  if (eigenvalues.empty()) return 0;
  const double largest = eigenvalues.back();  // ascending order
  if (largest <= 0.0) return 0;
  int rank = 0;
  for (double ev : eigenvalues) {
    if (ev > rel_tol * largest) ++rank;
  }
  return rank;
}

}  // namespace abft::linalg

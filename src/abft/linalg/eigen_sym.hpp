// Symmetric eigenvalue computation via the cyclic Jacobi method.  Used to
// compute the paper's smoothness / strong-convexity constants:
//   mu    = 2 * lambda_max(A_i^T A_i)          (Assumption 2, eq. 138)
//   gamma = (2/|S|) * lambda_min(A_S^T A_S)    (Assumption 3, eq. 139)
#pragma once

#include "abft/linalg/matrix.hpp"
#include "abft/linalg/vector.hpp"

namespace abft::linalg {

/// Eigen-decomposition of a symmetric matrix.
struct SymmetricEigen {
  Vector eigenvalues;   // ascending
  Matrix eigenvectors;  // column k pairs with eigenvalues[k]
};

/// Full decomposition.  `a` must be square and symmetric (checked to a small
/// tolerance).  Classic cyclic Jacobi; cubic per sweep, converges in a few
/// sweeps for the sizes used here.
SymmetricEigen symmetric_eigen(const Matrix& a);

/// Eigenvalues only, ascending.
std::vector<double> symmetric_eigenvalues(const Matrix& a);

double largest_eigenvalue(const Matrix& a);
double smallest_eigenvalue(const Matrix& a);

}  // namespace abft::linalg

// Dense real vector with the small set of operations the optimization and
// aggregation layers need: arithmetic, dot products, norms, projections.
#pragma once

#include <initializer_list>
#include <iosfwd>
#include <span>
#include <vector>

namespace abft::linalg {

class Vector {
 public:
  Vector() = default;

  /// Zero vector of the given dimension (dim >= 0).
  explicit Vector(int dim);

  /// Takes ownership of the given coefficients.
  explicit Vector(std::vector<double> values) noexcept;

  Vector(std::initializer_list<double> values);

  [[nodiscard]] int dim() const noexcept { return static_cast<int>(values_.size()); }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }

  double& operator[](int i);
  double operator[](int i) const;

  [[nodiscard]] std::span<const double> coefficients() const noexcept { return values_; }
  [[nodiscard]] std::span<double> coefficients() noexcept { return values_; }

  Vector& operator+=(const Vector& other);
  Vector& operator-=(const Vector& other);
  Vector& operator*=(double scalar) noexcept;
  Vector& operator/=(double scalar);

  /// this += scalar * other  (the classic axpy).
  Vector& add_scaled(double scalar, const Vector& other);

  [[nodiscard]] double norm() const noexcept;          // Euclidean
  [[nodiscard]] double squared_norm() const noexcept;
  [[nodiscard]] double norm_inf() const noexcept;      // max |x_i|

  friend bool operator==(const Vector&, const Vector&) = default;

 private:
  std::vector<double> values_;
};

Vector operator+(Vector lhs, const Vector& rhs);
Vector operator-(Vector lhs, const Vector& rhs);
Vector operator*(double scalar, Vector v) noexcept;
Vector operator*(Vector v, double scalar) noexcept;
Vector operator/(Vector v, double scalar);
Vector operator-(Vector v) noexcept;

double dot(const Vector& a, const Vector& b);

/// Euclidean distance ||a - b||.
double distance(const Vector& a, const Vector& b);

/// True if ||a - b||_inf <= tol.
bool approx_equal(const Vector& a, const Vector& b, double tol);

/// Arithmetic mean of a non-empty family of equal-dimension vectors.
Vector mean(std::span<const Vector> vectors);

std::ostream& operator<<(std::ostream& os, const Vector& v);

}  // namespace abft::linalg

#include "abft/linalg/matrix.hpp"

#include <cmath>
#include <ostream>

#include "abft/util/check.hpp"

namespace abft::linalg {

Matrix::Matrix(int rows, int cols) : rows_(rows), cols_(cols) {
  ABFT_REQUIRE(rows >= 0 && cols >= 0, "matrix shape must be non-negative");
  data_.assign(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols), 0.0);
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = static_cast<int>(rows.size());
  cols_ = rows_ == 0 ? 0 : static_cast<int>(rows.begin()->size());
  data_.reserve(static_cast<std::size_t>(rows_) * static_cast<std::size_t>(cols_));
  for (const auto& row : rows) {
    ABFT_REQUIRE(static_cast<int>(row.size()) == cols_, "ragged matrix initializer");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

double& Matrix::operator()(int r, int c) {
  ABFT_REQUIRE(0 <= r && r < rows_ && 0 <= c && c < cols_, "matrix index out of range");
  return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
               static_cast<std::size_t>(c)];
}

double Matrix::operator()(int r, int c) const {
  ABFT_REQUIRE(0 <= r && r < rows_ && 0 <= c && c < cols_, "matrix index out of range");
  return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
               static_cast<std::size_t>(c)];
}

Vector Matrix::row(int r) const {
  ABFT_REQUIRE(0 <= r && r < rows_, "matrix row out of range");
  std::vector<double> out(static_cast<std::size_t>(cols_));
  for (int c = 0; c < cols_; ++c) out[static_cast<std::size_t>(c)] = (*this)(r, c);
  return Vector(std::move(out));
}

Vector Matrix::col(int c) const {
  ABFT_REQUIRE(0 <= c && c < cols_, "matrix column out of range");
  std::vector<double> out(static_cast<std::size_t>(rows_));
  for (int r = 0; r < rows_; ++r) out[static_cast<std::size_t>(r)] = (*this)(r, c);
  return Vector(std::move(out));
}

void Matrix::set_row(int r, const Vector& values) {
  ABFT_REQUIRE(values.dim() == cols_, "set_row dimension mismatch");
  for (int c = 0; c < cols_; ++c) (*this)(r, c) = values[c];
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

Matrix Matrix::select_rows(const std::vector<int>& row_indices) const {
  Matrix out(static_cast<int>(row_indices.size()), cols_);
  for (std::size_t i = 0; i < row_indices.size(); ++i) {
    const int r = row_indices[i];
    ABFT_REQUIRE(0 <= r && r < rows_, "select_rows index out of range");
    for (int c = 0; c < cols_; ++c) out(static_cast<int>(i), c) = (*this)(r, c);
  }
  return out;
}

Matrix Matrix::identity(int n) {
  Matrix out(n, n);
  for (int i = 0; i < n; ++i) out(i, i) = 1.0;
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  ABFT_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_, "matrix shape mismatch in +=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  ABFT_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_, "matrix shape mismatch in -=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) noexcept {
  for (auto& v : data_) v *= scalar;
  return *this;
}

Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
Matrix operator*(double scalar, Matrix m) noexcept { return m *= scalar; }

Matrix operator*(const Matrix& a, const Matrix& b) {
  ABFT_REQUIRE(a.cols() == b.rows(), "matrix shape mismatch in multiply");
  Matrix out(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (int j = 0; j < b.cols(); ++j) out(i, j) += aik * b(k, j);
    }
  }
  return out;
}

Vector operator*(const Matrix& m, const Vector& v) {
  ABFT_REQUIRE(m.cols() == v.dim(), "matrix-vector shape mismatch");
  Vector out(m.rows());
  for (int r = 0; r < m.rows(); ++r) {
    double sum = 0.0;
    for (int c = 0; c < m.cols(); ++c) sum += m(r, c) * v[c];
    out[r] = sum;
  }
  return out;
}

Matrix gram(const Matrix& a) {
  Matrix out(a.cols(), a.cols());
  for (int i = 0; i < a.cols(); ++i) {
    for (int j = i; j < a.cols(); ++j) {
      double sum = 0.0;
      for (int r = 0; r < a.rows(); ++r) sum += a(r, i) * a(r, j);
      out(i, j) = sum;
      out(j, i) = sum;
    }
  }
  return out;
}

double frobenius_norm(const Matrix& m) {
  double sum = 0.0;
  for (int r = 0; r < m.rows(); ++r) {
    for (int c = 0; c < m.cols(); ++c) sum += m(r, c) * m(r, c);
  }
  return std::sqrt(sum);
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  os << '[';
  for (int r = 0; r < m.rows(); ++r) {
    os << (r == 0 ? "" : " ") << m.row(r);
    if (r + 1 < m.rows()) os << ",\n";
  }
  return os << ']';
}

}  // namespace abft::linalg

#include "abft/linalg/vector.hpp"

#include <cmath>
#include <ostream>

#include "abft/util/check.hpp"

namespace abft::linalg {

Vector::Vector(int dim) {
  ABFT_REQUIRE(dim >= 0, "vector dimension must be >= 0");
  values_.assign(static_cast<std::size_t>(dim), 0.0);
}

Vector::Vector(std::vector<double> values) noexcept : values_(std::move(values)) {}

Vector::Vector(std::initializer_list<double> values) : values_(values) {}

double& Vector::operator[](int i) {
  ABFT_REQUIRE(0 <= i && i < dim(), "vector index out of range");
  return values_[static_cast<std::size_t>(i)];
}

double Vector::operator[](int i) const {
  ABFT_REQUIRE(0 <= i && i < dim(), "vector index out of range");
  return values_[static_cast<std::size_t>(i)];
}

Vector& Vector::operator+=(const Vector& other) {
  ABFT_REQUIRE(dim() == other.dim(), "vector dimension mismatch in +=");
  for (std::size_t i = 0; i < values_.size(); ++i) values_[i] += other.values_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& other) {
  ABFT_REQUIRE(dim() == other.dim(), "vector dimension mismatch in -=");
  for (std::size_t i = 0; i < values_.size(); ++i) values_[i] -= other.values_[i];
  return *this;
}

Vector& Vector::operator*=(double scalar) noexcept {
  for (auto& v : values_) v *= scalar;
  return *this;
}

Vector& Vector::operator/=(double scalar) {
  ABFT_REQUIRE(scalar != 0.0, "vector division by zero");
  return (*this) *= (1.0 / scalar);
}

Vector& Vector::add_scaled(double scalar, const Vector& other) {
  ABFT_REQUIRE(dim() == other.dim(), "vector dimension mismatch in add_scaled");
  for (std::size_t i = 0; i < values_.size(); ++i) values_[i] += scalar * other.values_[i];
  return *this;
}

double Vector::norm() const noexcept { return std::sqrt(squared_norm()); }

double Vector::squared_norm() const noexcept {
  double sum = 0.0;
  for (double v : values_) sum += v * v;
  return sum;
}

double Vector::norm_inf() const noexcept {
  double best = 0.0;
  for (double v : values_) best = std::max(best, std::abs(v));
  return best;
}

Vector operator+(Vector lhs, const Vector& rhs) { return lhs += rhs; }
Vector operator-(Vector lhs, const Vector& rhs) { return lhs -= rhs; }
Vector operator*(double scalar, Vector v) noexcept { return v *= scalar; }
Vector operator*(Vector v, double scalar) noexcept { return v *= scalar; }
Vector operator/(Vector v, double scalar) { return v /= scalar; }
Vector operator-(Vector v) noexcept { return v *= -1.0; }

double dot(const Vector& a, const Vector& b) {
  ABFT_REQUIRE(a.dim() == b.dim(), "vector dimension mismatch in dot");
  double sum = 0.0;
  for (int i = 0; i < a.dim(); ++i) sum += a[i] * b[i];
  return sum;
}

double distance(const Vector& a, const Vector& b) {
  ABFT_REQUIRE(a.dim() == b.dim(), "vector dimension mismatch in distance");
  double sum = 0.0;
  for (int i = 0; i < a.dim(); ++i) {
    const double diff = a[i] - b[i];
    sum += diff * diff;
  }
  return std::sqrt(sum);
}

bool approx_equal(const Vector& a, const Vector& b, double tol) {
  if (a.dim() != b.dim()) return false;
  for (int i = 0; i < a.dim(); ++i) {
    if (std::abs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

Vector mean(std::span<const Vector> vectors) {
  ABFT_REQUIRE(!vectors.empty(), "mean of empty vector family");
  Vector sum(vectors.front().dim());
  for (const auto& v : vectors) sum += v;
  return sum / static_cast<double>(vectors.size());
}

std::ostream& operator<<(std::ostream& os, const Vector& v) {
  os << '(';
  for (int i = 0; i < v.dim(); ++i) {
    os << v[i];
    if (i + 1 < v.dim()) os << ", ";
  }
  return os << ')';
}

}  // namespace abft::linalg

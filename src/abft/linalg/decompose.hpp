// Factorizations and solvers: Cholesky for SPD systems, Householder QR for
// least squares, plus rank estimation.  These back the closed-form subset
// minimizations x_S = argmin ||B_S - A_S x||^2 used throughout the paper's
// linear-regression evaluation (Appendix J, eq. 137).
#pragma once

#include <optional>

#include "abft/linalg/matrix.hpp"
#include "abft/linalg/vector.hpp"

namespace abft::linalg {

/// Lower-triangular Cholesky factor L with A = L L^T.
/// Returns std::nullopt if A is not symmetric positive definite
/// (within a small pivot tolerance).
std::optional<Matrix> cholesky(const Matrix& a);

/// Solves A x = b for symmetric positive-definite A via Cholesky.
/// Returns std::nullopt if A is not SPD.
std::optional<Vector> cholesky_solve(const Matrix& a, const Vector& b);

/// Thin Householder QR of an m x n matrix with m >= n.
struct QrDecomposition {
  Matrix q;  // m x n with orthonormal columns
  Matrix r;  // n x n upper triangular
};
QrDecomposition qr_decompose(const Matrix& a);

/// Least-squares solution of min_x ||a x - b||^2 via QR.  Requires
/// a.rows() >= a.cols() and full column rank; throws std::invalid_argument
/// if the system is rank deficient (R has a negligible diagonal entry).
Vector least_squares(const Matrix& a, const Vector& b);

/// Solves a general square system A x = b by Gaussian elimination with
/// partial pivoting.  Returns std::nullopt if A is singular.
std::optional<Vector> solve(const Matrix& a, const Vector& b);

/// Numerical column rank of `a` estimated from the QR of the Gram matrix
/// eigenvalues; `rel_tol` is relative to the largest eigenvalue.
int column_rank(const Matrix& a, double rel_tol = 1e-10);

}  // namespace abft::linalg

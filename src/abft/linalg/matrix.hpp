// Dense row-major real matrix.  Sized for the paper's workloads (d up to a
// few thousand for the learning experiments), not for HPC.
#pragma once

#include <initializer_list>
#include <iosfwd>
#include <vector>

#include "abft/linalg/vector.hpp"

namespace abft::linalg {

class Matrix {
 public:
  Matrix() = default;

  /// Zero matrix of shape rows x cols (both >= 0).
  Matrix(int rows, int cols);

  /// Row-major construction from nested initializer lists.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] int rows() const noexcept { return rows_; }
  [[nodiscard]] int cols() const noexcept { return cols_; }

  double& operator()(int r, int c);
  double operator()(int r, int c) const;

  [[nodiscard]] Vector row(int r) const;
  [[nodiscard]] Vector col(int c) const;
  void set_row(int r, const Vector& values);

  [[nodiscard]] Matrix transpose() const;

  /// Stacks the given rows of `this` into a new |rows| x cols matrix.
  [[nodiscard]] Matrix select_rows(const std::vector<int>& row_indices) const;

  [[nodiscard]] static Matrix identity(int n);

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar) noexcept;

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;  // row-major
};

Matrix operator+(Matrix lhs, const Matrix& rhs);
Matrix operator-(Matrix lhs, const Matrix& rhs);
Matrix operator*(double scalar, Matrix m) noexcept;
Matrix operator*(const Matrix& a, const Matrix& b);
Vector operator*(const Matrix& m, const Vector& v);

/// a^T * b without forming a^T.
Matrix gram(const Matrix& a);  // returns a^T a

/// Frobenius norm.
double frobenius_norm(const Matrix& m);

std::ostream& operator<<(std::ostream& os, const Matrix& m);

}  // namespace abft::linalg

// Omniscient fault behaviours: adversaries that observe the honest agents'
// gradients before choosing their own message.  These are the strongest
// adversaries admitted by the Byzantine model and stress the filters far
// harder than the paper's two static behaviours.
#pragma once

#include "abft/attack/fault.hpp"

namespace abft::attack {

/// "A Little Is Enough"-style attack (Baruch et al., 2019): sends
/// mean(honest) - z * stddev(honest), coordinate-wise.  With small z the
/// perturbation hides inside the honest spread and evades norm/trim filters.
class LittleIsEnoughFault final : public FaultModel {
 public:
  explicit LittleIsEnoughFault(double z);
  [[nodiscard]] std::optional<Vector> emit(const AttackContext& context,
                                           util::Rng& rng) const override;
  [[nodiscard]] bool emit_into(std::span<double> out, const RowAttackContext& context,
                               util::Rng& rng) const override;
  [[nodiscard]] std::string_view name() const noexcept override { return "little-is-enough"; }

 private:
  double z_;
};

/// Sends -scale * mean(honest gradients): the steepest adversarial direction
/// against plain averaging.
class MeanReverseFault final : public FaultModel {
 public:
  explicit MeanReverseFault(double scale);
  [[nodiscard]] std::optional<Vector> emit(const AttackContext& context,
                                           util::Rng& rng) const override;
  [[nodiscard]] bool emit_into(std::span<double> out, const RowAttackContext& context,
                               util::Rng& rng) const override;
  [[nodiscard]] std::string_view name() const noexcept override { return "mean-reverse"; }

 private:
  double scale_;
};

/// Mimics the honest gradient with the smallest norm — indistinguishable to
/// CGE, bounding what any norm-based rule can do.
class MimicSmallestFault final : public FaultModel {
 public:
  [[nodiscard]] std::optional<Vector> emit(const AttackContext& context,
                                           util::Rng& rng) const override;
  [[nodiscard]] bool emit_into(std::span<double> out, const RowAttackContext& context,
                               util::Rng& rng) const override;
  [[nodiscard]] std::string_view name() const noexcept override { return "mimic-smallest"; }
};

}  // namespace abft::attack

#include "abft/attack/fault.hpp"

#include <algorithm>
#include <vector>

#include "abft/util/check.hpp"

namespace abft::attack {

bool FaultModel::emit_into(std::span<double> out, const RowAttackContext& context,
                           util::Rng& rng) const {
  // Adapter for fault models that only implement emit(): materialize the
  // legacy context (allocates — the built-in faults all override with
  // allocation-free kernels).  The copies are taken before `out` is written,
  // so the out-may-alias-true_gradient contract holds here too.
  const Vector true_gradient(
      std::vector<double>(context.true_gradient.begin(), context.true_gradient.end()));
  std::vector<Vector> honest;
  honest.reserve(static_cast<std::size_t>(context.honest.count()));
  for (int k = 0; k < context.honest.count(); ++k) {
    const auto r = context.honest.row(k);
    honest.push_back(Vector(std::vector<double>(r.begin(), r.end())));
  }
  const AttackContext legacy{context.estimate, true_gradient, honest, context.round};
  auto payload = emit(legacy, rng);
  if (!payload.has_value()) return false;
  ABFT_REQUIRE(payload->dim() == static_cast<int>(out.size()),
               "fault emitted a payload of wrong dimension");
  const auto src = payload->coefficients();
  std::copy(src.begin(), src.end(), out.begin());
  return true;
}

}  // namespace abft::attack

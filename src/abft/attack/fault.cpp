#include "abft/attack/fault.hpp"

// The interface is header-only; this translation unit anchors the vtable.

namespace abft::attack {}  // namespace abft::attack

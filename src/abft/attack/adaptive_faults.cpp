#include "abft/attack/adaptive_faults.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "abft/util/check.hpp"

// The in-place row kernels (emit_into) are the single source of truth for
// these behaviours; the legacy emit() packs its scattered honest Vectors
// into one flat row block and delegates.  One kernel, two façades — the two
// paths cannot drift apart by even an ulp (a hand-duplicated loop can: the
// compiler contracts a*b+c into fma differently per loop shape under
// -march=native).
namespace abft::attack {

namespace {

/// Shared emit-over-emit_into adapter for the omniscient faults: flattens
/// the scattered honest Vectors into one contiguous row block with identity
/// indices and delegates (emit is the allocating path by contract).
std::optional<Vector> emit_via_rows(const FaultModel& fault, const AttackContext& context,
                                    util::Rng& rng) {
  const int dim = context.true_gradient.dim();
  std::vector<double> storage(context.honest_gradients.size() * static_cast<std::size_t>(dim));
  std::vector<int> rows(context.honest_gradients.size());
  for (std::size_t i = 0; i < context.honest_gradients.size(); ++i) {
    const auto src = context.honest_gradients[i].coefficients();
    std::copy(src.begin(), src.end(), storage.begin() + i * static_cast<std::size_t>(dim));
    rows[i] = static_cast<int>(i);
  }
  const HonestRowsView honest(storage.data(), dim, rows);
  const RowAttackContext row_context{context.estimate, context.true_gradient.coefficients(),
                                     honest, context.round};
  Vector out(dim);
  if (!fault.emit_into(out.coefficients(), row_context, rng)) return std::nullopt;
  return out;
}

}  // namespace

LittleIsEnoughFault::LittleIsEnoughFault(double z) : z_(z) {
  ABFT_REQUIRE(z >= 0.0, "little-is-enough z must be non-negative");
}

std::optional<Vector> LittleIsEnoughFault::emit(const AttackContext& context,
                                                util::Rng& rng) const {
  return emit_via_rows(*this, context, rng);
}

bool LittleIsEnoughFault::emit_into(std::span<double> out, const RowAttackContext& context,
                                    util::Rng& /*rng*/) const {
  const auto& honest = context.honest;
  if (honest.empty()) {
    for (std::size_t k = 0; k < out.size(); ++k) out[k] = context.true_gradient[k];
    return true;
  }
  // Per coordinate: mean(honest) - z * population-stddev(honest).  The mean
  // accumulates in row order and scales by the reciprocal, matching
  // linalg::mean exactly.
  const auto count = static_cast<double>(honest.count());
  const double inv_count = 1.0 / count;
  for (std::size_t k = 0; k < out.size(); ++k) {
    double mu = 0.0;
    for (int i = 0; i < honest.count(); ++i) mu += honest.row(i)[k];
    mu *= inv_count;
    double sigma = 0.0;
    for (int i = 0; i < honest.count(); ++i) {
      const double diff = honest.row(i)[k] - mu;
      sigma += diff * diff;
    }
    out[k] = mu - z_ * std::sqrt(sigma / count);
  }
  return true;
}

MeanReverseFault::MeanReverseFault(double scale) : scale_(scale) {
  ABFT_REQUIRE(scale > 0.0, "mean-reverse scale must be positive");
}

std::optional<Vector> MeanReverseFault::emit(const AttackContext& context, util::Rng& rng) const {
  return emit_via_rows(*this, context, rng);
}

bool MeanReverseFault::emit_into(std::span<double> out, const RowAttackContext& context,
                                 util::Rng& /*rng*/) const {
  const auto& honest = context.honest;
  const double scale = -scale_;
  if (honest.empty()) {
    for (std::size_t k = 0; k < out.size(); ++k) out[k] = context.true_gradient[k] * scale;
    return true;
  }
  const double inv_count = 1.0 / static_cast<double>(honest.count());
  for (std::size_t k = 0; k < out.size(); ++k) {
    double mu = 0.0;
    for (int i = 0; i < honest.count(); ++i) mu += honest.row(i)[k];
    out[k] = (mu * inv_count) * scale;
  }
  return true;
}

std::optional<Vector> MimicSmallestFault::emit(const AttackContext& context,
                                               util::Rng& rng) const {
  return emit_via_rows(*this, context, rng);
}

namespace {

/// Vector::norm() over a raw row: sequential sum of squares, then sqrt.
double row_norm(std::span<const double> row) {
  double sum = 0.0;
  for (double v : row) sum += v * v;
  return std::sqrt(sum);
}

}  // namespace

bool MimicSmallestFault::emit_into(std::span<double> out, const RowAttackContext& context,
                                   util::Rng& /*rng*/) const {
  const auto& honest = context.honest;
  if (honest.empty()) {
    for (std::size_t k = 0; k < out.size(); ++k) out[k] = context.true_gradient[k];
    return true;
  }
  int best = 0;
  double best_norm = row_norm(honest.row(0));
  for (int i = 1; i < honest.count(); ++i) {
    const double norm = row_norm(honest.row(i));
    if (norm < best_norm) {
      best_norm = norm;
      best = i;
    }
  }
  const auto src = honest.row(best);
  std::copy(src.begin(), src.end(), out.begin());
  return true;
}

}  // namespace abft::attack

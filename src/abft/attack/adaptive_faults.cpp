#include "abft/attack/adaptive_faults.hpp"

#include <cmath>

#include "abft/util/check.hpp"

namespace abft::attack {

LittleIsEnoughFault::LittleIsEnoughFault(double z) : z_(z) {
  ABFT_REQUIRE(z >= 0.0, "little-is-enough z must be non-negative");
}

std::optional<Vector> LittleIsEnoughFault::emit(const AttackContext& context,
                                                util::Rng& /*rng*/) const {
  if (context.honest_gradients.empty()) return context.true_gradient;
  const Vector mu = linalg::mean(context.honest_gradients);
  Vector sigma(mu.dim());
  for (const auto& g : context.honest_gradients) {
    for (int k = 0; k < mu.dim(); ++k) {
      const double diff = g[k] - mu[k];
      sigma[k] += diff * diff;
    }
  }
  const auto count = static_cast<double>(context.honest_gradients.size());
  Vector out = mu;
  for (int k = 0; k < mu.dim(); ++k) out[k] -= z_ * std::sqrt(sigma[k] / count);
  return out;
}

MeanReverseFault::MeanReverseFault(double scale) : scale_(scale) {
  ABFT_REQUIRE(scale > 0.0, "mean-reverse scale must be positive");
}

std::optional<Vector> MeanReverseFault::emit(const AttackContext& context,
                                             util::Rng& /*rng*/) const {
  if (context.honest_gradients.empty()) return -scale_ * context.true_gradient;
  return -scale_ * linalg::mean(context.honest_gradients);
}

std::optional<Vector> MimicSmallestFault::emit(const AttackContext& context,
                                               util::Rng& /*rng*/) const {
  if (context.honest_gradients.empty()) return context.true_gradient;
  std::size_t best = 0;
  double best_norm = context.honest_gradients[0].norm();
  for (std::size_t i = 1; i < context.honest_gradients.size(); ++i) {
    const double norm = context.honest_gradients[i].norm();
    if (norm < best_norm) {
      best_norm = norm;
      best = i;
    }
  }
  return context.honest_gradients[best];
}

}  // namespace abft::attack

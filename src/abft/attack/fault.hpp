// Byzantine fault behaviours.  A faulty agent may send an arbitrary vector
// instead of its gradient (paper, Section 4.1 step S1) or stay silent (in
// which case the synchronous server eliminates it).  Adaptive behaviours may
// inspect the honest agents' gradients ("omniscient" adversary), the
// strongest adversary consistent with the paper's model.
#pragma once

#include <optional>
#include <span>
#include <string_view>

#include "abft/linalg/vector.hpp"
#include "abft/util/rng.hpp"

namespace abft::attack {

using linalg::Vector;

/// Everything a fault behaviour may observe in one round.
struct AttackContext {
  /// Server's current estimate x_t (broadcast to everyone).
  const Vector& estimate;
  /// Gradient the agent would send if it were honest (it knows its own cost).
  const Vector& true_gradient;
  /// Gradients the honest agents send this round (omniscient adversary).
  std::span<const Vector> honest_gradients;
  /// Iteration number t.
  int round = 0;
};

/// Read-only view of the honest gradients of one round stored as rows of a
/// row-major block (the driver's payload batch): gradient k lives at row
/// rows[k] of the block.  Always index-based on purpose — a dense fast path
/// would hand the compiler two loop shapes to specialize, and the two copies
/// can pick different fma contractions, breaking bit parity between drivers
/// (a dense caller just passes identity indices).  Raw pointers keep the
/// attack layer independent of the agg layer.
class HonestRowsView {
 public:
  HonestRowsView() = default;

  /// Rows `rows` of a row-major block whose rows have length `dim`.
  HonestRowsView(const double* data, int dim, std::span<const int> rows) noexcept
      : data_(data), dim_(dim), rows_(rows) {}

  [[nodiscard]] int count() const noexcept { return static_cast<int>(rows_.size()); }
  [[nodiscard]] int dim() const noexcept { return dim_; }
  [[nodiscard]] bool empty() const noexcept { return rows_.empty(); }

  /// The k-th honest gradient of the round (same order as the legacy
  /// AttackContext::honest_gradients span).
  [[nodiscard]] std::span<const double> row(int k) const noexcept {
    const auto r = static_cast<std::size_t>(rows_[static_cast<std::size_t>(k)]);
    return {data_ + r * static_cast<std::size_t>(dim_), static_cast<std::size_t>(dim_)};
  }

 private:
  const double* data_ = nullptr;
  int dim_ = 0;
  std::span<const int> rows_{};
};

/// The batched-ingest counterpart of AttackContext: the honest gradients are
/// rows of the driver's payload batch and the true gradient is a raw span
/// (typically the fault's own batch row, pre-filled by the driver).
struct RowAttackContext {
  /// Server's / reference node's current estimate x_t.
  const Vector& estimate;
  /// Gradient the agent would send if it were honest.  May alias the output
  /// row handed to emit_into — implementations must not read it at an index
  /// they have already written.
  std::span<const double> true_gradient;
  /// Honest gradients of the round (omniscient adversary).
  HonestRowsView honest;
  /// Iteration number t.
  int round = 0;
};

class FaultModel {
 public:
  virtual ~FaultModel() = default;

  /// The vector the faulty agent sends, or std::nullopt to stay silent.
  [[nodiscard]] virtual std::optional<Vector> emit(const AttackContext& context,
                                                   util::Rng& rng) const = 0;

  /// In-place row mutation for the batched ingest path: writes the faulty
  /// message straight into `out` (a batch row of dimension
  /// context.true_gradient.size()) and returns true, or returns false to
  /// stay silent (out is then unspecified).  Must consume the rng stream and
  /// produce bit-identical payloads to emit() — the parity tests enforce
  /// this for every built-in fault.  The default adapts through emit()
  /// (materializing the legacy context, which allocates), so third-party
  /// fault models keep working with the batched drivers unchanged.
  /// Drivers with agg_threads > 1 call this (and emit()) concurrently for
  /// distinct agents — each call gets its own out row and rng, but the
  /// FaultModel object is shared, so implementations must be safe to call
  /// concurrently (all built-in faults are stateless).
  [[nodiscard]] virtual bool emit_into(std::span<double> out, const RowAttackContext& context,
                                       util::Rng& rng) const;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

}  // namespace abft::attack

// Byzantine fault behaviours.  A faulty agent may send an arbitrary vector
// instead of its gradient (paper, Section 4.1 step S1) or stay silent (in
// which case the synchronous server eliminates it).  Adaptive behaviours may
// inspect the honest agents' gradients ("omniscient" adversary), the
// strongest adversary consistent with the paper's model.
#pragma once

#include <optional>
#include <span>
#include <string_view>

#include "abft/linalg/vector.hpp"
#include "abft/util/rng.hpp"

namespace abft::attack {

using linalg::Vector;

/// Everything a fault behaviour may observe in one round.
struct AttackContext {
  /// Server's current estimate x_t (broadcast to everyone).
  const Vector& estimate;
  /// Gradient the agent would send if it were honest (it knows its own cost).
  const Vector& true_gradient;
  /// Gradients the honest agents send this round (omniscient adversary).
  std::span<const Vector> honest_gradients;
  /// Iteration number t.
  int round = 0;
};

class FaultModel {
 public:
  virtual ~FaultModel() = default;

  /// The vector the faulty agent sends, or std::nullopt to stay silent.
  [[nodiscard]] virtual std::optional<Vector> emit(const AttackContext& context,
                                                   util::Rng& rng) const = 0;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

}  // namespace abft::attack

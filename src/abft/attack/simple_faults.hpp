// Non-adaptive fault behaviours, including the two the paper evaluates
// (Section 5): gradient-reverse and random Gaussian.
#pragma once

#include "abft/attack/fault.hpp"

namespace abft::attack {

/// Sends -s_t where s_t is the agent's true gradient (paper, Section 5).
class GradientReverseFault final : public FaultModel {
 public:
  [[nodiscard]] std::optional<Vector> emit(const AttackContext& context,
                                           util::Rng& rng) const override;
  [[nodiscard]] bool emit_into(std::span<double> out, const RowAttackContext& context,
                               util::Rng& rng) const override;
  [[nodiscard]] std::string_view name() const noexcept override { return "gradient-reverse"; }
};

/// Sends an i.i.d. N(0, stddev^2 I) vector each round (paper, Section 5,
/// uses stddev = 200).
class RandomGaussianFault final : public FaultModel {
 public:
  explicit RandomGaussianFault(double stddev);
  [[nodiscard]] std::optional<Vector> emit(const AttackContext& context,
                                           util::Rng& rng) const override;
  [[nodiscard]] bool emit_into(std::span<double> out, const RowAttackContext& context,
                               util::Rng& rng) const override;
  [[nodiscard]] std::string_view name() const noexcept override { return "random"; }

 private:
  double stddev_;
};

/// Sends the zero vector — stalls progress without tripping norm filters.
class ZeroFault final : public FaultModel {
 public:
  [[nodiscard]] std::optional<Vector> emit(const AttackContext& context,
                                           util::Rng& rng) const override;
  [[nodiscard]] bool emit_into(std::span<double> out, const RowAttackContext& context,
                               util::Rng& rng) const override;
  [[nodiscard]] std::string_view name() const noexcept override { return "zero"; }
};

/// Sends -kappa * s_t: reversed and amplified.
class SignFlipScaleFault final : public FaultModel {
 public:
  explicit SignFlipScaleFault(double kappa);
  [[nodiscard]] std::optional<Vector> emit(const AttackContext& context,
                                           util::Rng& rng) const override;
  [[nodiscard]] bool emit_into(std::span<double> out, const RowAttackContext& context,
                               util::Rng& rng) const override;
  [[nodiscard]] std::string_view name() const noexcept override { return "sign-flip-scale"; }

 private:
  double kappa_;
};

/// Always sends the same fixed vector.
class ConstantFault final : public FaultModel {
 public:
  explicit ConstantFault(Vector payload);
  [[nodiscard]] std::optional<Vector> emit(const AttackContext& context,
                                           util::Rng& rng) const override;
  [[nodiscard]] bool emit_into(std::span<double> out, const RowAttackContext& context,
                               util::Rng& rng) const override;
  [[nodiscard]] std::string_view name() const noexcept override { return "constant"; }

 private:
  Vector payload_;
};

/// Rotates a fixed-magnitude adversarial direction over rounds (angle
/// omega * t in the first two coordinates) — a deterministic time-varying
/// attack that defeats any filter relying on a single fixed bad direction.
class RotatingFault final : public FaultModel {
 public:
  RotatingFault(double magnitude, double omega);
  [[nodiscard]] std::optional<Vector> emit(const AttackContext& context,
                                           util::Rng& rng) const override;
  [[nodiscard]] bool emit_into(std::span<double> out, const RowAttackContext& context,
                               util::Rng& rng) const override;
  [[nodiscard]] std::string_view name() const noexcept override { return "rotating"; }

 private:
  double magnitude_;
  double omega_;
};

/// Never responds; the synchronous server detects and eliminates it
/// (Section 4.1, step S1).
class SilentFault final : public FaultModel {
 public:
  [[nodiscard]] std::optional<Vector> emit(const AttackContext& context,
                                           util::Rng& rng) const override;
  [[nodiscard]] bool emit_into(std::span<double> out, const RowAttackContext& context,
                               util::Rng& rng) const override;
  [[nodiscard]] std::string_view name() const noexcept override { return "silent"; }
};

}  // namespace abft::attack

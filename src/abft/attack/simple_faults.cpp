#include "abft/attack/simple_faults.hpp"

#include <cmath>

#include "abft/util/check.hpp"

namespace abft::attack {

std::optional<Vector> GradientReverseFault::emit(const AttackContext& context,
                                                 util::Rng& /*rng*/) const {
  return -context.true_gradient;
}

RandomGaussianFault::RandomGaussianFault(double stddev) : stddev_(stddev) {
  ABFT_REQUIRE(stddev >= 0.0, "gaussian fault stddev must be non-negative");
}

std::optional<Vector> RandomGaussianFault::emit(const AttackContext& context,
                                                util::Rng& rng) const {
  Vector out(context.true_gradient.dim());
  for (int i = 0; i < out.dim(); ++i) out[i] = rng.normal(0.0, stddev_);
  return out;
}

std::optional<Vector> ZeroFault::emit(const AttackContext& context, util::Rng& /*rng*/) const {
  return Vector(context.true_gradient.dim());
}

SignFlipScaleFault::SignFlipScaleFault(double kappa) : kappa_(kappa) {
  ABFT_REQUIRE(kappa > 0.0, "sign-flip scale must be positive");
}

std::optional<Vector> SignFlipScaleFault::emit(const AttackContext& context,
                                               util::Rng& /*rng*/) const {
  return -kappa_ * context.true_gradient;
}

ConstantFault::ConstantFault(Vector payload) : payload_(std::move(payload)) {
  ABFT_REQUIRE(payload_.dim() > 0, "constant fault payload must be non-empty");
}

std::optional<Vector> ConstantFault::emit(const AttackContext& context,
                                          util::Rng& /*rng*/) const {
  ABFT_REQUIRE(payload_.dim() == context.true_gradient.dim(),
               "constant fault payload dimension mismatch");
  return payload_;
}

RotatingFault::RotatingFault(double magnitude, double omega)
    : magnitude_(magnitude), omega_(omega) {
  ABFT_REQUIRE(magnitude > 0.0, "rotating fault magnitude must be positive");
}

std::optional<Vector> RotatingFault::emit(const AttackContext& context,
                                          util::Rng& /*rng*/) const {
  Vector out(context.true_gradient.dim());
  const double angle = omega_ * static_cast<double>(context.round);
  out[0] = magnitude_ * std::cos(angle);
  if (out.dim() > 1) out[1] = magnitude_ * std::sin(angle);
  return out;
}

std::optional<Vector> SilentFault::emit(const AttackContext& /*context*/,
                                        util::Rng& /*rng*/) const {
  return std::nullopt;
}

}  // namespace abft::attack

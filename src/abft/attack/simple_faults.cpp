#include "abft/attack/simple_faults.hpp"

#include <algorithm>
#include <cmath>

#include "abft/util/check.hpp"

// Every emit_into below mirrors its emit() twin operation for operation so
// the payloads (and the rng stream) are bit-identical — the attack-parity
// tests compare the two paths exactly.  All of them honor the
// out-may-alias-true_gradient contract by writing each index at most once
// after its last read.

namespace abft::attack {

std::optional<Vector> GradientReverseFault::emit(const AttackContext& context,
                                                 util::Rng& /*rng*/) const {
  return -context.true_gradient;
}

bool GradientReverseFault::emit_into(std::span<double> out, const RowAttackContext& context,
                                     util::Rng& /*rng*/) const {
  for (std::size_t k = 0; k < out.size(); ++k) out[k] = context.true_gradient[k] * -1.0;
  return true;
}

RandomGaussianFault::RandomGaussianFault(double stddev) : stddev_(stddev) {
  ABFT_REQUIRE(stddev >= 0.0, "gaussian fault stddev must be non-negative");
}

std::optional<Vector> RandomGaussianFault::emit(const AttackContext& context,
                                                util::Rng& rng) const {
  Vector out(context.true_gradient.dim());
  for (int i = 0; i < out.dim(); ++i) out[i] = rng.normal(0.0, stddev_);
  return out;
}

bool RandomGaussianFault::emit_into(std::span<double> out, const RowAttackContext& /*context*/,
                                    util::Rng& rng) const {
  for (std::size_t k = 0; k < out.size(); ++k) out[k] = rng.normal(0.0, stddev_);
  return true;
}

std::optional<Vector> ZeroFault::emit(const AttackContext& context, util::Rng& /*rng*/) const {
  return Vector(context.true_gradient.dim());
}

bool ZeroFault::emit_into(std::span<double> out, const RowAttackContext& /*context*/,
                          util::Rng& /*rng*/) const {
  std::fill(out.begin(), out.end(), 0.0);
  return true;
}

SignFlipScaleFault::SignFlipScaleFault(double kappa) : kappa_(kappa) {
  ABFT_REQUIRE(kappa > 0.0, "sign-flip scale must be positive");
}

std::optional<Vector> SignFlipScaleFault::emit(const AttackContext& context,
                                               util::Rng& /*rng*/) const {
  return -kappa_ * context.true_gradient;
}

bool SignFlipScaleFault::emit_into(std::span<double> out, const RowAttackContext& context,
                                   util::Rng& /*rng*/) const {
  const double scale = -kappa_;
  for (std::size_t k = 0; k < out.size(); ++k) out[k] = context.true_gradient[k] * scale;
  return true;
}

ConstantFault::ConstantFault(Vector payload) : payload_(std::move(payload)) {
  ABFT_REQUIRE(payload_.dim() > 0, "constant fault payload must be non-empty");
}

std::optional<Vector> ConstantFault::emit(const AttackContext& context,
                                          util::Rng& /*rng*/) const {
  ABFT_REQUIRE(payload_.dim() == context.true_gradient.dim(),
               "constant fault payload dimension mismatch");
  return payload_;
}

bool ConstantFault::emit_into(std::span<double> out, const RowAttackContext& /*context*/,
                              util::Rng& /*rng*/) const {
  ABFT_REQUIRE(payload_.dim() == static_cast<int>(out.size()),
               "constant fault payload dimension mismatch");
  const auto src = payload_.coefficients();
  std::copy(src.begin(), src.end(), out.begin());
  return true;
}

RotatingFault::RotatingFault(double magnitude, double omega)
    : magnitude_(magnitude), omega_(omega) {
  ABFT_REQUIRE(magnitude > 0.0, "rotating fault magnitude must be positive");
}

std::optional<Vector> RotatingFault::emit(const AttackContext& context,
                                          util::Rng& /*rng*/) const {
  Vector out(context.true_gradient.dim());
  const double angle = omega_ * static_cast<double>(context.round);
  out[0] = magnitude_ * std::cos(angle);
  if (out.dim() > 1) out[1] = magnitude_ * std::sin(angle);
  return out;
}

bool RotatingFault::emit_into(std::span<double> out, const RowAttackContext& context,
                              util::Rng& /*rng*/) const {
  std::fill(out.begin(), out.end(), 0.0);
  const double angle = omega_ * static_cast<double>(context.round);
  out[0] = magnitude_ * std::cos(angle);
  if (out.size() > 1) out[1] = magnitude_ * std::sin(angle);
  return true;
}

std::optional<Vector> SilentFault::emit(const AttackContext& /*context*/,
                                        util::Rng& /*rng*/) const {
  return std::nullopt;
}

bool SilentFault::emit_into(std::span<double> /*out*/, const RowAttackContext& /*context*/,
                            util::Rng& /*rng*/) const {
  return false;
}

}  // namespace abft::attack

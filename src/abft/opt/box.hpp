// The compact convex constraint set W of Section 4 (eq. 20).  The paper uses
// an axis-aligned hypercube [-1000, 1000]^d; we implement the general
// axis-aligned box, whose Euclidean projection is coordinate-wise clamping.
#pragma once

#include "abft/linalg/vector.hpp"

namespace abft::opt {

class Box {
 public:
  /// Box with per-coordinate bounds.  Requires lower[i] <= upper[i] for all i.
  Box(linalg::Vector lower, linalg::Vector upper);

  /// Hypercube [-half_width, half_width]^dim.
  static Box centered_cube(int dim, double half_width);

  [[nodiscard]] int dim() const noexcept { return lower_.dim(); }

  /// Euclidean projection [x]_W (unique because the box is convex+compact).
  [[nodiscard]] linalg::Vector project(const linalg::Vector& x) const;

  [[nodiscard]] bool contains(const linalg::Vector& x, double tol = 0.0) const;

  /// max_{w in W} ||w - x|| — the constant Gamma in the Theorem 3 proof.
  [[nodiscard]] double max_distance_from(const linalg::Vector& x) const;

  /// Euclidean diameter of the box.
  [[nodiscard]] double diameter() const;

  [[nodiscard]] const linalg::Vector& lower() const noexcept { return lower_; }
  [[nodiscard]] const linalg::Vector& upper() const noexcept { return upper_; }

 private:
  linalg::Vector lower_;
  linalg::Vector upper_;
};

}  // namespace abft::opt

// Concrete cost families used by the paper's workloads:
//  * ResidualSquaredCost  — Q_i(x) = (b_i - a_i . x)^2, the distributed
//    linear-regression cost of Section 5 / Appendix J;
//  * SquaredDistanceCost  — Q_i(x) = ||x - c_i||^2, the robust-mean mapping
//    of Section 2.3;
//  * GeneralQuadraticCost — Q(x) = 1/2 x^T P x - q^T x + c for symmetric P,
//    used to build instances with prescribed curvature (mu, gamma) in tests.
#pragma once

#include "abft/linalg/matrix.hpp"
#include "abft/opt/cost.hpp"

namespace abft::opt {

class ResidualSquaredCost final : public CostFunction {
 public:
  ResidualSquaredCost(Vector row, double observation);

  [[nodiscard]] int dim() const noexcept override { return row_.dim(); }
  [[nodiscard]] double value(const Vector& x) const override;
  [[nodiscard]] Vector gradient(const Vector& x) const override;
  void gradient_into(const Vector& x, std::span<double> out) const override;

  [[nodiscard]] const Vector& row() const noexcept { return row_; }
  [[nodiscard]] double observation() const noexcept { return observation_; }

  /// Lipschitz constant of the gradient: 2 * ||a||^2 (largest eigenvalue of
  /// the Hessian 2 a a^T).
  [[nodiscard]] double gradient_lipschitz() const noexcept;

 private:
  Vector row_;
  double observation_;
};

class SquaredDistanceCost final : public CostFunction {
 public:
  explicit SquaredDistanceCost(Vector center);

  [[nodiscard]] int dim() const noexcept override { return center_.dim(); }
  [[nodiscard]] double value(const Vector& x) const override;
  [[nodiscard]] Vector gradient(const Vector& x) const override;
  void gradient_into(const Vector& x, std::span<double> out) const override;

  [[nodiscard]] const Vector& center() const noexcept { return center_; }

 private:
  Vector center_;
};

/// Q(x) = ||y - H x||^2 for an observation matrix H (k x d) and measurement
/// vector y (k) — the multi-measurement generalization of
/// ResidualSquaredCost, used by the distributed state-estimation workload
/// (paper, Section 2.4).
class LeastSquaresCost final : public CostFunction {
 public:
  LeastSquaresCost(linalg::Matrix h, Vector y);

  [[nodiscard]] int dim() const noexcept override { return h_.cols(); }
  [[nodiscard]] double value(const Vector& x) const override;
  [[nodiscard]] Vector gradient(const Vector& x) const override;

  [[nodiscard]] const linalg::Matrix& observation_matrix() const noexcept { return h_; }
  [[nodiscard]] const Vector& measurements() const noexcept { return y_; }

  /// Lipschitz constant of the gradient: 2 * lambda_max(H^T H).
  [[nodiscard]] double gradient_lipschitz() const;

 private:
  linalg::Matrix h_;
  Vector y_;
};

class GeneralQuadraticCost final : public CostFunction {
 public:
  /// Q(x) = 1/2 x^T P x - q^T x + c; P must be symmetric and square with
  /// P.rows() == q.dim().
  GeneralQuadraticCost(linalg::Matrix p, Vector q, double c = 0.0);

  [[nodiscard]] int dim() const noexcept override { return q_.dim(); }
  [[nodiscard]] double value(const Vector& x) const override;
  [[nodiscard]] Vector gradient(const Vector& x) const override;

  [[nodiscard]] const linalg::Matrix& hessian() const noexcept { return p_; }

 private:
  linalg::Matrix p_;
  Vector q_;
  double c_;
};

}  // namespace abft::opt

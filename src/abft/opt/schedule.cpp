#include "abft/opt/schedule.hpp"

#include <cmath>

#include "abft/util/check.hpp"

namespace abft::opt {

HarmonicSchedule::HarmonicSchedule(double scale) : scale_(scale) {
  ABFT_REQUIRE(scale > 0.0, "harmonic schedule scale must be positive");
}

double HarmonicSchedule::step(int t) const {
  ABFT_REQUIRE(t >= 0, "iteration index must be non-negative");
  return scale_ / static_cast<double>(t + 1);
}

ConstantSchedule::ConstantSchedule(double scale) : scale_(scale) {
  ABFT_REQUIRE(scale > 0.0, "constant schedule scale must be positive");
}

double ConstantSchedule::step(int t) const {
  ABFT_REQUIRE(t >= 0, "iteration index must be non-negative");
  return scale_;
}

PolynomialSchedule::PolynomialSchedule(double scale, double power)
    : scale_(scale), power_(power) {
  ABFT_REQUIRE(scale > 0.0, "polynomial schedule scale must be positive");
  ABFT_REQUIRE(power > 0.5 && power <= 1.0,
               "polynomial schedule needs power in (1/2, 1] for Theorem 3");
}

double PolynomialSchedule::step(int t) const {
  ABFT_REQUIRE(t >= 0, "iteration index must be non-negative");
  return scale_ / std::pow(static_cast<double>(t + 1), power_);
}

}  // namespace abft::opt

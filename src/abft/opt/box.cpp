#include "abft/opt/box.hpp"

#include <algorithm>
#include <cmath>

#include "abft/util/check.hpp"

namespace abft::opt {

Box::Box(linalg::Vector lower, linalg::Vector upper)
    : lower_(std::move(lower)), upper_(std::move(upper)) {
  ABFT_REQUIRE(lower_.dim() == upper_.dim(), "box bounds must share a dimension");
  ABFT_REQUIRE(lower_.dim() > 0, "box must have positive dimension");
  for (int i = 0; i < lower_.dim(); ++i) {
    ABFT_REQUIRE(lower_[i] <= upper_[i], "box lower bound exceeds upper bound");
  }
}

Box Box::centered_cube(int dim, double half_width) {
  ABFT_REQUIRE(dim > 0, "box must have positive dimension");
  ABFT_REQUIRE(half_width >= 0.0, "half width must be non-negative");
  linalg::Vector lower(dim);
  linalg::Vector upper(dim);
  for (int i = 0; i < dim; ++i) {
    lower[i] = -half_width;
    upper[i] = half_width;
  }
  return Box(std::move(lower), std::move(upper));
}

linalg::Vector Box::project(const linalg::Vector& x) const {
  ABFT_REQUIRE(x.dim() == dim(), "projection dimension mismatch");
  linalg::Vector out = x;
  for (int i = 0; i < dim(); ++i) out[i] = std::clamp(out[i], lower_[i], upper_[i]);
  return out;
}

bool Box::contains(const linalg::Vector& x, double tol) const {
  ABFT_REQUIRE(x.dim() == dim(), "containment dimension mismatch");
  for (int i = 0; i < dim(); ++i) {
    if (x[i] < lower_[i] - tol || x[i] > upper_[i] + tol) return false;
  }
  return true;
}

double Box::max_distance_from(const linalg::Vector& x) const {
  ABFT_REQUIRE(x.dim() == dim(), "distance dimension mismatch");
  double sum = 0.0;
  for (int i = 0; i < dim(); ++i) {
    const double to_low = std::abs(x[i] - lower_[i]);
    const double to_high = std::abs(upper_[i] - x[i]);
    const double far = std::max(to_low, to_high);
    sum += far * far;
  }
  return std::sqrt(sum);
}

double Box::diameter() const { return (upper_ - lower_).norm(); }

}  // namespace abft::opt

#include "abft/opt/solver.hpp"

#include <cmath>

#include "abft/util/check.hpp"

namespace abft::opt {

GradientDescentResult minimize(const CostFunction& cost, const Box& box, const Vector& x0,
                               const GradientDescentOptions& options) {
  ABFT_REQUIRE(cost.dim() == box.dim(), "cost/box dimension mismatch");
  ABFT_REQUIRE(x0.dim() == cost.dim(), "start point dimension mismatch");
  ABFT_REQUIRE(options.max_iterations > 0, "max_iterations must be positive");

  GradientDescentResult result;
  Vector x = box.project(x0);
  double fx = cost.value(x);
  double step = options.step_scale > 0.0 ? options.step_scale : 1.0;

  for (int t = 0; t < options.max_iterations; ++t) {
    const Vector grad = cost.gradient(x);
    // Backtracking: shrink until sufficient decrease (Armijo on the
    // projected step).
    Vector candidate = box.project(x - step * grad);
    double f_candidate = cost.value(candidate);
    int backtracks = 0;
    while (f_candidate > fx - 1e-4 * linalg::dot(grad, x - candidate) && backtracks < 60) {
      step *= 0.5;
      candidate = box.project(x - step * grad);
      f_candidate = cost.value(candidate);
      ++backtracks;
    }
    const double moved = linalg::distance(candidate, x);
    x = std::move(candidate);
    fx = f_candidate;
    result.iterations = t + 1;
    if (moved <= options.tolerance) {
      result.converged = true;
      break;
    }
    // Gentle growth so a conservative step can recover.
    if (backtracks == 0) step *= 1.25;
  }

  result.minimizer = std::move(x);
  result.value = fx;
  return result;
}

}  // namespace abft::opt

#include "abft/opt/quadratic.hpp"

#include "abft/linalg/eigen_sym.hpp"
#include "abft/util/check.hpp"

namespace abft::opt {

ResidualSquaredCost::ResidualSquaredCost(Vector row, double observation)
    : row_(std::move(row)), observation_(observation) {
  ABFT_REQUIRE(row_.dim() > 0, "regression row must be non-empty");
}

double ResidualSquaredCost::value(const Vector& x) const {
  const double residual = observation_ - linalg::dot(row_, x);
  return residual * residual;
}

Vector ResidualSquaredCost::gradient(const Vector& x) const {
  // d/dx (b - a.x)^2 = -2 (b - a.x) a
  const double residual = observation_ - linalg::dot(row_, x);
  Vector grad = row_;
  grad *= -2.0 * residual;
  return grad;
}

void ResidualSquaredCost::gradient_into(const Vector& x, std::span<double> out) const {
  ABFT_REQUIRE(static_cast<int>(out.size()) == dim(), "gradient_into size mismatch");
  const double scale = -2.0 * (observation_ - linalg::dot(row_, x));
  for (int k = 0; k < dim(); ++k) out[static_cast<std::size_t>(k)] = row_[k] * scale;
}

double ResidualSquaredCost::gradient_lipschitz() const noexcept {
  return 2.0 * row_.squared_norm();
}

SquaredDistanceCost::SquaredDistanceCost(Vector center) : center_(std::move(center)) {
  ABFT_REQUIRE(center_.dim() > 0, "distance-cost center must be non-empty");
}

double SquaredDistanceCost::value(const Vector& x) const {
  ABFT_REQUIRE(x.dim() == dim(), "dimension mismatch");
  return (x - center_).squared_norm();
}

Vector SquaredDistanceCost::gradient(const Vector& x) const {
  ABFT_REQUIRE(x.dim() == dim(), "dimension mismatch");
  return 2.0 * (x - center_);
}

void SquaredDistanceCost::gradient_into(const Vector& x, std::span<double> out) const {
  ABFT_REQUIRE(x.dim() == dim(), "dimension mismatch");
  ABFT_REQUIRE(static_cast<int>(out.size()) == dim(), "gradient_into size mismatch");
  for (int k = 0; k < dim(); ++k) out[static_cast<std::size_t>(k)] = (x[k] - center_[k]) * 2.0;
}

LeastSquaresCost::LeastSquaresCost(linalg::Matrix h, Vector y)
    : h_(std::move(h)), y_(std::move(y)) {
  ABFT_REQUIRE(h_.rows() == y_.dim(), "observation/measurement shape mismatch");
  ABFT_REQUIRE(h_.rows() > 0 && h_.cols() > 0, "observation matrix must be non-empty");
}

double LeastSquaresCost::value(const Vector& x) const {
  ABFT_REQUIRE(x.dim() == dim(), "dimension mismatch");
  return (y_ - h_ * x).squared_norm();
}

Vector LeastSquaresCost::gradient(const Vector& x) const {
  ABFT_REQUIRE(x.dim() == dim(), "dimension mismatch");
  // d/dx ||y - Hx||^2 = -2 H^T (y - Hx)
  const Vector residual = y_ - h_ * x;
  Vector grad(dim());
  for (int c = 0; c < h_.cols(); ++c) {
    double sum = 0.0;
    for (int r = 0; r < h_.rows(); ++r) sum += h_(r, c) * residual[r];
    grad[c] = -2.0 * sum;
  }
  return grad;
}

double LeastSquaresCost::gradient_lipschitz() const {
  return 2.0 * linalg::largest_eigenvalue(linalg::gram(h_));
}

GeneralQuadraticCost::GeneralQuadraticCost(linalg::Matrix p, Vector q, double c)
    : p_(std::move(p)), q_(std::move(q)), c_(c) {
  ABFT_REQUIRE(p_.rows() == p_.cols(), "quadratic Hessian must be square");
  ABFT_REQUIRE(p_.rows() == q_.dim(), "quadratic shape mismatch");
  for (int i = 0; i < p_.rows(); ++i) {
    for (int j = i + 1; j < p_.cols(); ++j) {
      ABFT_REQUIRE(std::abs(p_(i, j) - p_(j, i)) < 1e-9, "quadratic Hessian must be symmetric");
    }
  }
}

double GeneralQuadraticCost::value(const Vector& x) const {
  ABFT_REQUIRE(x.dim() == dim(), "dimension mismatch");
  return 0.5 * linalg::dot(x, p_ * x) - linalg::dot(q_, x) + c_;
}

Vector GeneralQuadraticCost::gradient(const Vector& x) const {
  ABFT_REQUIRE(x.dim() == dim(), "dimension mismatch");
  return p_ * x - q_;
}

}  // namespace abft::opt

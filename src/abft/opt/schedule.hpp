// Step-size schedules for the DGD update (eq. 21).  Theorem 3 requires
// diminishing steps: sum eta_t = inf, sum eta_t^2 < inf.  The paper's
// experiments use eta_t = 1.5 / (t + 1).
#pragma once

#include <memory>

namespace abft::opt {

class StepSchedule {
 public:
  virtual ~StepSchedule() = default;

  /// Step size for iteration t >= 0; must be positive.
  [[nodiscard]] virtual double step(int t) const = 0;

  /// Whether the schedule satisfies Theorem 3's diminishing-step condition.
  [[nodiscard]] virtual bool is_diminishing() const noexcept = 0;
};

/// eta_t = scale / (t + 1): satisfies both Theorem-3 conditions.
class HarmonicSchedule final : public StepSchedule {
 public:
  explicit HarmonicSchedule(double scale);
  [[nodiscard]] double step(int t) const override;
  [[nodiscard]] bool is_diminishing() const noexcept override { return true; }

 private:
  double scale_;
};

/// eta_t = scale: used by the D-SGD learning experiments (Appendix K).
class ConstantSchedule final : public StepSchedule {
 public:
  explicit ConstantSchedule(double scale);
  [[nodiscard]] double step(int t) const override;
  [[nodiscard]] bool is_diminishing() const noexcept override { return false; }

 private:
  double scale_;
};

/// eta_t = scale / (t + 1)^power with power in (1/2, 1]: diminishing.
class PolynomialSchedule final : public StepSchedule {
 public:
  PolynomialSchedule(double scale, double power);
  [[nodiscard]] double step(int t) const override;
  [[nodiscard]] bool is_diminishing() const noexcept override { return true; }

 private:
  double scale_;
  double power_;
};

}  // namespace abft::opt

#include "abft/opt/cost.hpp"

#include <algorithm>

#include "abft/util/check.hpp"

namespace abft::opt {

void CostFunction::gradient_into(const Vector& x, std::span<double> out) const {
  const Vector grad = gradient(x);
  ABFT_REQUIRE(grad.dim() == static_cast<int>(out.size()),
               "gradient_into output size must match the cost dimension");
  const auto src = grad.coefficients();
  std::copy(src.begin(), src.end(), out.begin());
}

AggregateCost::AggregateCost(std::vector<const CostFunction*> costs)
    : AggregateCost(std::move(costs), {}) {}

AggregateCost::AggregateCost(std::vector<const CostFunction*> costs, std::vector<double> weights)
    : costs_(std::move(costs)), weights_(std::move(weights)) {
  ABFT_REQUIRE(!costs_.empty(), "aggregate cost needs at least one term");
  if (weights_.empty()) weights_.assign(costs_.size(), 1.0);
  ABFT_REQUIRE(weights_.size() == costs_.size(), "one weight per cost required");
  for (const auto* cost : costs_) {
    ABFT_REQUIRE(cost != nullptr, "aggregate cost term must not be null");
  }
  dim_ = costs_.front()->dim();
  for (const auto* cost : costs_) {
    ABFT_REQUIRE(cost->dim() == dim_, "aggregate cost terms must share a dimension");
  }
}

double AggregateCost::value(const Vector& x) const {
  double sum = 0.0;
  for (std::size_t i = 0; i < costs_.size(); ++i) sum += weights_[i] * costs_[i]->value(x);
  return sum;
}

Vector AggregateCost::gradient(const Vector& x) const {
  Vector grad(dim_);
  for (std::size_t i = 0; i < costs_.size(); ++i) {
    grad.add_scaled(weights_[i], costs_[i]->gradient(x));
  }
  return grad;
}

Vector numerical_gradient(const CostFunction& cost, const Vector& x, double step) {
  ABFT_REQUIRE(step > 0.0, "finite-difference step must be positive");
  Vector grad(cost.dim());
  Vector probe = x;
  for (int i = 0; i < cost.dim(); ++i) {
    const double original = probe[i];
    probe[i] = original + step;
    const double plus = cost.value(probe);
    probe[i] = original - step;
    const double minus = cost.value(probe);
    probe[i] = original;
    grad[i] = (plus - minus) / (2.0 * step);
  }
  return grad;
}

}  // namespace abft::opt

// Cost-function abstraction.  Each agent i holds a local cost Q_i : R^d -> R
// (paper, Section 1); the library works with values and gradients only.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "abft/linalg/vector.hpp"

namespace abft::opt {

using linalg::Vector;

/// A differentiable cost Q : R^d -> R.
class CostFunction {
 public:
  virtual ~CostFunction() = default;

  [[nodiscard]] virtual int dim() const noexcept = 0;
  [[nodiscard]] virtual double value(const Vector& x) const = 0;
  [[nodiscard]] virtual Vector gradient(const Vector& x) const = 0;

  /// Row-writer gradient: writes grad Q(x) straight into `out` (size dim()),
  /// which is how the batched drivers let agents fill GradientBatch rows
  /// without staging Vectors.  The default adapts through gradient()
  /// (allocates); hot-path costs override with an in-place computation that
  /// performs the exact same floating-point operations.  Must be safe to
  /// call concurrently on distinct outputs (all built-in costs are pure).
  virtual void gradient_into(const Vector& x, std::span<double> out) const;
};

/// Weighted sum of costs: sum_i w_i Q_i(x).  Non-owning by design: the agents
/// own their costs; aggregates are views over them.
class AggregateCost final : public CostFunction {
 public:
  /// Uniform weights.  All costs must share one dimension; the list must be
  /// non-empty.
  explicit AggregateCost(std::vector<const CostFunction*> costs);

  AggregateCost(std::vector<const CostFunction*> costs, std::vector<double> weights);

  [[nodiscard]] int dim() const noexcept override { return dim_; }
  [[nodiscard]] double value(const Vector& x) const override;
  [[nodiscard]] Vector gradient(const Vector& x) const override;

  [[nodiscard]] int num_terms() const noexcept { return static_cast<int>(costs_.size()); }

 private:
  std::vector<const CostFunction*> costs_;
  std::vector<double> weights_;
  int dim_ = 0;
};

/// Central finite-difference gradient; used by tests to validate analytic
/// gradients of every cost implementation.
Vector numerical_gradient(const CostFunction& cost, const Vector& x, double step = 1e-6);

}  // namespace abft::opt

// Reference single-machine solvers.  The redundancy analyzer needs argmins of
// subset aggregates; for quadratic families those are closed-form (see
// regress/), and for everything else this projected gradient descent is the
// fallback.
#pragma once

#include "abft/opt/box.hpp"
#include "abft/opt/cost.hpp"
#include "abft/opt/schedule.hpp"

namespace abft::opt {

struct GradientDescentOptions {
  int max_iterations = 5000;
  /// Stop early when the projected-gradient step moves less than this.
  double tolerance = 1e-12;
  double step_scale = 0.0;  // 0 means: auto (1 / L estimated by backtracking)
};

struct GradientDescentResult {
  Vector minimizer;
  double value = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Minimizes `cost` over the box via projected gradient descent with
/// backtracking line search.  Deterministic.
GradientDescentResult minimize(const CostFunction& cost, const Box& box, const Vector& x0,
                               const GradientDescentOptions& options = {});

}  // namespace abft::opt

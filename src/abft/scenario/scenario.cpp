#include "abft/scenario/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <ostream>
#include <set>
#include <sstream>

#include "abft/agg/registry.hpp"
#include "abft/attack/adaptive_faults.hpp"
#include "abft/attack/simple_faults.hpp"
#include "abft/learn/mlp.hpp"
#include "abft/learn/softmax.hpp"
#include "abft/opt/quadratic.hpp"
#include "abft/regress/generator.hpp"
#include "abft/opt/schedule.hpp"
#include "abft/p2p/dolev_strong.hpp"
#include "abft/p2p/p2p_dgd.hpp"
#include "abft/regress/problem.hpp"
#include "abft/sim/dgd.hpp"
#include "abft/util/check.hpp"

namespace abft::scenario {

namespace {

using linalg::Vector;

// ------------------------------- parsing ------------------------------------

void require_known_keys(const util::JsonValue& object, std::string_view where,
                        std::initializer_list<std::string_view> allowed) {
  util::require_known_keys(object, "scenario", where, allowed);
}

int int_or(const util::JsonValue& object, std::string_view key, int fallback) {
  return static_cast<int>(object.number_or(key, fallback));
}

/// JSON numbers are doubles: a seed above 2^53 would silently round, so a
/// spec that needs one must fail loudly instead of running off a different
/// seed than it states.
std::uint64_t parse_seed(const util::JsonValue& json, std::string_view key, double fallback) {
  const double value = json.number_or(key, fallback);
  ABFT_REQUIRE(value >= 0.0 && value <= 9007199254740992.0 && value == std::floor(value),
               "seeds in JSON must be integers in [0, 2^53] (doubles cannot carry more)");
  return static_cast<std::uint64_t>(value);
}

/// The optional "reduction" block of the aggregator object: exactly one of
/// {"coreset": {"size": k | "adaptive"}} (greedy k-center; size 0/absent =
/// auto, "adaptive" = radius-driven growth) or
/// {"sample": {"size": k, "strata": s}} (norm-stratified weighted sampling;
/// size/strata 0/absent = auto).
agg::CoresetConfig parse_reduction(const util::JsonValue& value) {
  require_known_keys(value, "reduction", {"coreset", "sample"});
  const auto* kcenter = value.find("coreset");
  const auto* sample = value.find("sample");
  ABFT_REQUIRE((kcenter != nullptr) != (sample != nullptr),
               "reduction needs exactly one of \"coreset\" or \"sample\"");
  agg::CoresetConfig config;
  if (kcenter != nullptr) {
    require_known_keys(*kcenter, "coreset", {"size"});
    if (const auto* size = kcenter->find("size"); size != nullptr && size->is_string()) {
      ABFT_REQUIRE(size->as_string() == "adaptive",
                   "coreset size must be a number or the string \"adaptive\"");
      config.size = agg::CoresetConfig::kAdaptiveSize;
    } else {
      config.size = int_or(*kcenter, "size", config.size);
      ABFT_REQUIRE(config.size >= 0,
                   "coreset size must be >= 1, 0 for auto, or \"adaptive\"");
    }
    return config;
  }
  require_known_keys(*sample, "sample", {"size", "strata"});
  config.kind = agg::CoresetConfig::Kind::sample;
  const auto* sample_size = sample->find("size");
  ABFT_REQUIRE(sample_size == nullptr || !sample_size->is_string(),
               "sample size must be a number (adaptive is k-center only)");
  config.size = int_or(*sample, "size", config.size);
  ABFT_REQUIRE(config.size >= 0, "sample size must be >= 1, or 0 for auto");
  config.strata = int_or(*sample, "strata", config.strata);
  ABFT_REQUIRE(config.strata >= 0, "sample strata must be >= 1, or 0 for auto");
  return config;
}

/// The aggregator key takes a registry rule name, or an object composing a
/// "rule" or "hierarchy" layer with an optional "reduction" layer; the
/// object forms fill spec.hierarchy / spec.coreset and stamp the canonical
/// label into spec.aggregator.
void parse_aggregator(const util::JsonValue& value, ScenarioSpec* spec) {
  if (value.is_string()) {
    spec->aggregator = value.as_string();
    return;
  }
  require_known_keys(value, "aggregator", {"rule", "hierarchy", "reduction"});
  std::optional<agg::CoresetConfig> reduction;
  if (const auto* red = value.find("reduction")) reduction = parse_reduction(*red);
  if (value.find("hierarchy") == nullptr) {
    const std::string rule = value.string_or("rule", "cwtm");
    (void)agg::make_aggregator(rule);  // validate the name at parse time
    if (reduction) {
      spec->coreset = *reduction;
      spec->coreset_rule = rule;
      spec->aggregator = agg::coreset_label(*reduction, rule);
    } else {
      spec->aggregator = rule;
    }
    return;
  }
  ABFT_REQUIRE(value.find("rule") == nullptr,
               "aggregator: \"rule\" and \"hierarchy\" are mutually exclusive — the "
               "hierarchy block names its own leaf_rule/root_rule");
  const auto& hier = value.at("hierarchy");
  require_known_keys(hier, "hierarchy", {"shards", "leaf_rule", "root_rule", "f_leaf"});
  agg::HierarchyConfig config;
  config.shards = int_or(hier, "shards", config.shards);
  ABFT_REQUIRE(config.shards >= 1, "hierarchy shards must be >= 1");
  config.leaf_rule = hier.string_or("leaf_rule", config.leaf_rule);
  config.root_rule = hier.string_or("root_rule", config.root_rule);
  // Validate the rule names at parse time, so a sweep rejects its grid
  // before running anything.
  (void)agg::make_aggregator(config.leaf_rule);
  (void)agg::make_aggregator(config.root_rule);
  if (hier.find("f_leaf") != nullptr) {
    config.f_leaf = int_or(hier, "f_leaf", config.f_leaf);
    ABFT_REQUIRE(config.f_leaf >= 0, "hierarchy f_leaf must be >= 0 when given");
  }
  config.coreset = reduction;  // per-shard reduction rides inside the tree
  spec->hierarchy = config;
  spec->aggregator = agg::hierarchy_label(config);
}

RelayStrategySpec parse_relay_strategy(const util::JsonValue& json) {
  require_known_keys(json, "relay_strategy", {"kind", "param"});
  RelayStrategySpec relay;
  relay.kind = json.string_or("kind", relay.kind);
  ABFT_REQUIRE(relay.kind == "honest" || relay.kind == "equivocate" ||
                   relay.kind == "silent" || relay.kind == "fixed-value",
               "relay_strategy kind must be honest, equivocate, silent or fixed-value");
  relay.param = json.number_or("param", relay.param);
  ABFT_REQUIRE(relay.kind == "equivocate" || relay.kind == "fixed-value" ||
                   json.find("param") == nullptr,
               "relay_strategy param applies to the equivocate/fixed-value kinds only");
  return relay;
}

DsStrategySpec parse_ds_strategy(const util::JsonValue& json) {
  require_known_keys(json, "ds_strategy", {"kind", "offset", "forward_probability"});
  DsStrategySpec ds;
  ds.kind = json.string_or("kind", ds.kind);
  ABFT_REQUIRE(ds.kind == "honest" || ds.kind == "equivocate" || ds.kind == "silent",
               "ds_strategy kind must be honest, equivocate or silent");
  ds.offset = json.number_or("offset", ds.offset);
  ds.forward_probability = json.number_or("forward_probability", ds.forward_probability);
  ABFT_REQUIRE(ds.forward_probability >= 0.0 && ds.forward_probability <= 1.0,
               "ds_strategy forward_probability must be in [0, 1]");
  ABFT_REQUIRE(ds.kind == "equivocate" ||
                   (json.find("offset") == nullptr &&
                    json.find("forward_probability") == nullptr),
               "ds_strategy offset/forward_probability apply to the equivocate kind only");
  return ds;
}

engine::AsyncConfig parse_async(const util::JsonValue& json) {
  require_known_keys(json, "async", {"quorum", "deadline", "staleness_cap", "arrival"});
  engine::AsyncConfig async;
  async.quorum = int_or(json, "quorum", async.quorum);
  ABFT_REQUIRE(async.quorum >= 0, "async quorum must be >= 0 (0 = full roster)");
  async.deadline = json.number_or("deadline", async.deadline);
  ABFT_REQUIRE(async.deadline > 0.0, "async deadline must be > 0");
  async.staleness_cap = int_or(json, "staleness_cap", async.staleness_cap);
  ABFT_REQUIRE(async.staleness_cap >= 0, "async staleness_cap must be >= 0");
  if (const auto* arrival = json.find("arrival")) {
    require_known_keys(*arrival, "arrival", {"kind", "scale"});
    async.arrival.kind = arrival->string_or("kind", async.arrival.kind);
    ABFT_REQUIRE(async.arrival.kind == "uniform" || async.arrival.kind == "exponential" ||
                     async.arrival.kind == "fixed",
                 "async arrival kind must be uniform, exponential or fixed");
    async.arrival.scale = arrival->number_or("scale", async.arrival.scale);
    ABFT_REQUIRE(async.arrival.scale > 0.0, "async arrival scale must be > 0");
  }
  return async;
}

engine::ScenarioAxes parse_axes(const util::JsonValue& json) {
  require_known_keys(json, "axes",
                     {"participation", "straggler_probability", "perturbation_seed", "churn"});
  engine::ScenarioAxes axes;
  axes.participation = json.number_or("participation", axes.participation);
  axes.straggler_probability =
      json.number_or("straggler_probability", axes.straggler_probability);
  axes.perturbation_seed = parse_seed(json, "perturbation_seed", 0.0);
  if (const auto* churn = json.find("churn")) {
    for (const auto& event : churn->as_array()) {
      require_known_keys(event, "churn event", {"round", "agent"});
      axes.churn.push_back(engine::ChurnEvent{static_cast<int>(event.at("round").as_number()),
                                              static_cast<int>(event.at("agent").as_number())});
    }
  }
  return axes;
}

}  // namespace

ScenarioSpec parse_scenario(const util::JsonValue& json) {
  require_known_keys(
      json, "scenario",
      {"name",       "driver",   "problem",          "aggregator",    "mode",
       "precision",  "iterations", "f",              "seed",          "threads",       "schedule",
       "box_halfwidth", "x0",    "agents",           "num_agents",    "dim",
       "noise_stddev",  "faults", "drop_probability", "relay_strategy",
       "ds_strategy", "axes",    "async",            "batch_size",    "step_size",
       "momentum",    "eval_interval", "model",      "dataset"});
  ScenarioSpec spec;
  spec.specified_keys = json.keys();
  spec.name = json.string_or("name", "");
  spec.driver = json.string_or("driver", spec.driver);
  spec.problem = json.string_or("problem", "");
  if (const auto* aggregator = json.find("aggregator")) parse_aggregator(*aggregator, &spec);
  spec.mode = agg::agg_mode_from_string(json.string_or("mode", "exact"));
  spec.precision = agg::precision_from_string(json.string_or("precision", "f64"));
  // The f32 lane exists only under the fast tolerance contract; a spec
  // pairing it with exact mode is a contradiction, not a silent no-op.
  ABFT_REQUIRE(spec.precision == agg::Precision::f64 || spec.mode == agg::AggMode::fast,
               "precision \"f32\" requires mode \"fast\"");
  spec.iterations = int_or(json, "iterations", spec.iterations);
  spec.f = int_or(json, "f", spec.f);
  spec.seed = parse_seed(json, "seed", 1.0);
  spec.threads = int_or(json, "threads", spec.threads);
  if (const auto* schedule = json.find("schedule")) {
    require_known_keys(*schedule, "schedule", {"kind", "scale", "power"});
    spec.schedule.kind = schedule->string_or("kind", spec.schedule.kind);
    spec.schedule.scale = schedule->number_or("scale", spec.schedule.scale);
    spec.schedule.power = schedule->number_or("power", spec.schedule.power);
  }
  spec.box_halfwidth = json.number_or("box_halfwidth", spec.box_halfwidth);
  if (const auto* x0 = json.find("x0")) {
    if (x0->is_number()) {
      spec.x0 = {x0->as_number()};
    } else {
      for (const auto& coord : x0->as_array()) spec.x0.push_back(coord.as_number());
    }
  }
  if (const auto* agents = json.find("agents")) {
    for (const auto& agent : agents->as_array()) {
      spec.agents.push_back(static_cast<int>(agent.as_number()));
    }
  }
  spec.num_agents = int_or(json, "num_agents", spec.num_agents);
  spec.dim = int_or(json, "dim", spec.dim);
  spec.noise_stddev = json.number_or("noise_stddev", spec.noise_stddev);
  if (const auto* faults = json.find("faults")) {
    for (const auto& fault : faults->as_array()) {
      require_known_keys(fault, "fault", {"agent", "kind", "param"});
      FaultSpec f;
      f.agent = static_cast<int>(fault.at("agent").as_number());
      f.kind = fault.at("kind").as_string();
      f.param = fault.number_or("param", f.param);
      spec.faults.push_back(std::move(f));
    }
  }
  spec.drop_probability = json.number_or("drop_probability", spec.drop_probability);
  if (const auto* relay = json.find("relay_strategy")) {
    spec.relay_strategy = parse_relay_strategy(*relay);
  }
  if (const auto* ds = json.find("ds_strategy")) spec.ds_strategy = parse_ds_strategy(*ds);
  if (const auto* axes = json.find("axes")) spec.axes = parse_axes(*axes);
  if (const auto* async = json.find("async")) {
    spec.async = parse_async(*async);
    // Lateness and loss live in the virtual clock there; the synchronous
    // perturbation axes and drop injection would be a second, conflicting
    // realization of the same phenomena.
    ABFT_REQUIRE(!spec.axes.enabled(),
                 "async does not compose with the participation/straggler/churn axes");
    ABFT_REQUIRE(json.number_or("drop_probability", 0.0) == 0.0,
                 "async does not compose with drop_probability");
  }
  spec.batch_size = int_or(json, "batch_size", spec.batch_size);
  spec.step_size = json.number_or("step_size", spec.step_size);
  spec.momentum = json.number_or("momentum", spec.momentum);
  spec.eval_interval = int_or(json, "eval_interval", spec.eval_interval);
  if (const auto* model = json.find("model")) {
    require_known_keys(*model, "model", {"kind", "hidden_dim"});
    spec.model = model->string_or("kind", spec.model);
    ABFT_REQUIRE(spec.model == "softmax" || spec.model == "mlp",
                 "model kind must be softmax or mlp");
    // hidden_dim on a softmax model would be silently ignored — the same
    // class of lie as batch_size on dgd; reject instead.
    ABFT_REQUIRE(spec.model == "mlp" || model->find("hidden_dim") == nullptr,
                 "hidden_dim applies to the mlp model only");
    spec.hidden_dim = int_or(*model, "hidden_dim", spec.hidden_dim);
  }
  if (const auto* dataset = json.find("dataset")) {
    require_known_keys(*dataset, "dataset",
                       {"num_classes", "feature_dim", "examples_per_class", "prototype_scale",
                        "noise_stddev", "dirichlet_alpha"});
    spec.dataset.num_classes = int_or(*dataset, "num_classes", spec.dataset.num_classes);
    spec.dataset.feature_dim = int_or(*dataset, "feature_dim", spec.dataset.feature_dim);
    spec.dataset.examples_per_class =
        int_or(*dataset, "examples_per_class", spec.dataset.examples_per_class);
    spec.dataset.prototype_scale =
        dataset->number_or("prototype_scale", spec.dataset.prototype_scale);
    spec.dataset.noise_stddev = dataset->number_or("noise_stddev", spec.dataset.noise_stddev);
    spec.dirichlet_alpha = dataset->number_or("dirichlet_alpha", spec.dirichlet_alpha);
    ABFT_REQUIRE(spec.dirichlet_alpha > 0.0, "dirichlet_alpha must be positive");
  }
  return spec;
}

ScenarioSpec load_scenario_file(const std::string& path) {
  return parse_scenario(util::parse_json_file(path));
}

namespace {

// ---------------------------- fault factory ---------------------------------

double param_or(const FaultSpec& spec, double fallback) {
  return std::isnan(spec.param) ? fallback : spec.param;
}

/// Rejects spec keys the chosen driver would silently ignore — a spec whose
/// intent cannot be honoured must fail loudly, not run a different
/// experiment.
void reject_inapplicable_keys(const ScenarioSpec& spec,
                              std::initializer_list<std::string_view> inapplicable,
                              std::string_view driver) {
  for (const auto& key : spec.specified_keys) {
    if (std::find(inapplicable.begin(), inapplicable.end(), key) != inapplicable.end()) {
      std::ostringstream os;
      os << "scenario: key \"" << key << "\" does not apply to the " << driver << " driver";
      throw std::invalid_argument(os.str());
    }
  }
}

std::unique_ptr<attack::FaultModel> make_fault(const FaultSpec& spec) {
  if (spec.kind == "gradient-reverse") return std::make_unique<attack::GradientReverseFault>();
  if (spec.kind == "random") {
    return std::make_unique<attack::RandomGaussianFault>(param_or(spec, 200.0));
  }
  if (spec.kind == "zero") return std::make_unique<attack::ZeroFault>();
  if (spec.kind == "sign-flip-scale") {
    return std::make_unique<attack::SignFlipScaleFault>(param_or(spec, 2.0));
  }
  if (spec.kind == "rotating") {
    return std::make_unique<attack::RotatingFault>(param_or(spec, 10.0), 0.25);
  }
  if (spec.kind == "little-is-enough") {
    return std::make_unique<attack::LittleIsEnoughFault>(param_or(spec, 1.2));
  }
  if (spec.kind == "mean-reverse") {
    return std::make_unique<attack::MeanReverseFault>(param_or(spec, 1.0));
  }
  if (spec.kind == "mimic-smallest") return std::make_unique<attack::MimicSmallestFault>();
  if (spec.kind == "silent") return std::make_unique<attack::SilentFault>();
  throw std::invalid_argument("scenario: unknown fault kind \"" + spec.kind + "\"");
}

// --------------------------- workload assembly ------------------------------

/// Everything a dgd/p2p run needs alive for its duration: the cost objects,
/// the fault objects, the roster referencing both, and the closed-form
/// honest reference when one exists.
struct GradientWorkload {
  // Owned problem state (exactly one of the two is populated).
  std::unique_ptr<regress::RegressionProblem> regression;
  std::vector<opt::SquaredDistanceCost> quadratic_costs;

  std::vector<const opt::CostFunction*> costs;
  std::vector<std::unique_ptr<attack::FaultModel>> faults;
  std::vector<sim::AgentSpec> roster;
  std::vector<int> honest;  // roster positions without a fault assignment
  std::optional<Vector> reference;  // honest minimizer, when closed-form
  int dim = 0;
};

GradientWorkload build_gradient_workload(const ScenarioSpec& spec) {
  GradientWorkload w;
  const std::string problem = spec.problem.empty() ? "paper_regression" : spec.problem;
  std::set<int> faulty_positions;
  for (const auto& fault : spec.faults) faulty_positions.insert(fault.agent);
  if (problem != "random_regression") {
    for (const auto& key : spec.specified_keys) {
      ABFT_REQUIRE(key != "noise_stddev",
                   "noise_stddev applies to the random_regression problem only");
    }
  }

  if (problem == "paper_regression") {
    // The Appendix-J instance has a fixed shape; a spec that sets
    // num_agents/dim for it would run a different experiment than it
    // states, so reject rather than ignore.
    for (const auto& key : spec.specified_keys) {
      ABFT_REQUIRE(key != "num_agents" && key != "dim",
                   "paper_regression has a fixed shape (n = 6, d = 2); "
                   "num_agents/dim apply to the quadratic problem");
    }
    ABFT_REQUIRE(spec.agents.empty() ||
                     std::all_of(spec.agents.begin(), spec.agents.end(),
                                 [](int a) { return 0 <= a && a < 6; }),
                 "paper_regression agents must be in [0, 6)");
    w.regression = std::make_unique<regress::RegressionProblem>(
        regress::RegressionProblem::paper_instance());
    w.costs = w.regression->costs(spec.agents);
    w.dim = w.regression->dim();
  } else if (problem == "random_regression") {
    ABFT_REQUIRE(spec.agents.empty(),
                 "the agents subset applies to paper_regression and dsgd only");
    w.regression =
        std::make_unique<regress::RegressionProblem>(random_regression_instance(spec));
    w.costs = w.regression->costs();
    w.dim = w.regression->dim();
  } else if (problem == "quadratic") {
    ABFT_REQUIRE(spec.num_agents > 0 && spec.dim > 0, "quadratic needs num_agents and dim > 0");
    ABFT_REQUIRE(spec.agents.empty(),
                 "the agents subset applies to paper_regression and dsgd only");
    // Deliberately irregular centers (evenly spaced centers create exact
    // pairwise-distance ties and selection rules then flip on fp noise) —
    // deterministic in the spec seed, independent of the driver streams.
    util::Rng center_rng(spec.seed ^ 0x9ad5eedULL);
    for (int i = 0; i < spec.num_agents; ++i) {
      std::vector<double> center(static_cast<std::size_t>(spec.dim));
      for (auto& c : center) c = 3.0 * center_rng.normal();
      w.quadratic_costs.emplace_back(Vector(std::move(center)));
    }
    for (const auto& cost : w.quadratic_costs) w.costs.push_back(&cost);
    w.dim = spec.dim;
  } else {
    throw std::invalid_argument("scenario: unknown gradient problem \"" + problem + "\"");
  }

  w.roster = sim::honest_roster(w.costs);
  for (const auto& fault : spec.faults) {
    ABFT_REQUIRE(0 <= fault.agent && fault.agent < static_cast<int>(w.roster.size()),
                 "fault agent outside the roster");
    w.faults.push_back(make_fault(fault));
    sim::assign_fault(w.roster, fault.agent, *w.faults.back());
  }
  for (int i = 0; i < static_cast<int>(w.roster.size()); ++i) {
    if (!faulty_positions.count(i)) w.honest.push_back(i);
  }
  ABFT_REQUIRE(!w.honest.empty(), "scenario needs at least one honest agent");

  if (w.regression != nullptr) {
    // Positions == problem agent ids when no subset was taken; map through
    // the subset otherwise.
    std::vector<int> honest_ids;
    for (const int position : w.honest) {
      honest_ids.push_back(spec.agents.empty() ? position
                                               : spec.agents[static_cast<std::size_t>(position)]);
    }
    if (w.regression->subset_rank(honest_ids) == w.regression->dim()) {
      w.reference = w.regression->subset_minimizer(honest_ids);
    }
  } else {
    // argmin of sum ||x - c_i||^2 over the honest agents: their centroid.
    Vector centroid(w.dim);
    for (const int position : w.honest) {
      centroid += w.quadratic_costs[static_cast<std::size_t>(position)].center();
    }
    centroid *= 1.0 / static_cast<double>(w.honest.size());
    w.reference = centroid;
  }
  return w;
}

/// Fills result.hierarchy_bounds from the rule the run used (roster_n is
/// the full roster size — the bookkeeping the paper's 2f/n margin wants).
void attach_hierarchy_bounds(ScenarioResult* result, const agg::GradientAggregator& rule,
                             const ScenarioSpec& spec, int roster_n) {
  if (!spec.hierarchy) return;
  result->hierarchy_bounds =
      static_cast<const agg::HierarchicalAggregator&>(rule).bounds(roster_n, spec.f);
  // n < requested S clamps the tree (bounds() reports the effective count);
  // restamp the label so outputs never advertise shards that never ran.
  if (result->hierarchy_bounds->shards != spec.hierarchy->shards) {
    result->spec.aggregator = agg::hierarchy_label(*spec.hierarchy, roster_n);
  }
}

/// Builds the p2p relay behaviour a spec names; nullptr = honest relaying.
std::unique_ptr<p2p::RelayStrategy> make_relay_strategy(const ScenarioSpec& spec, int dim) {
  if (!spec.relay_strategy || spec.relay_strategy->kind == "honest") return nullptr;
  const auto& relay = *spec.relay_strategy;
  const double param = relay.param;
  if (relay.kind == "equivocate") {
    return std::make_unique<p2p::EquivocateStrategy>(std::isnan(param) ? 200.0 : param);
  }
  if (relay.kind == "silent") return std::make_unique<p2p::SilentStrategy>();
  // fixed-value: every coordinate of the pushed payload is `param`.
  return std::make_unique<p2p::FixedValueStrategy>(linalg::Vector(
      std::vector<double>(static_cast<std::size_t>(dim), std::isnan(param) ? 0.0 : param)));
}

/// Builds the Dolev-Strong behaviour a spec names; nullptr = honest.
std::unique_ptr<p2p::DsStrategy> make_ds_strategy(const ScenarioSpec& spec) {
  if (!spec.ds_strategy || spec.ds_strategy->kind == "honest") return nullptr;
  const auto& ds = *spec.ds_strategy;
  if (ds.kind == "equivocate") {
    return std::make_unique<p2p::EquivocatingDsStrategy>(ds.offset, ds.forward_probability);
  }
  return std::make_unique<p2p::SilentDsStrategy>();
}

std::unique_ptr<opt::StepSchedule> make_schedule(const ScheduleSpec& spec) {
  if (spec.kind == "harmonic") return std::make_unique<opt::HarmonicSchedule>(spec.scale);
  if (spec.kind == "constant") return std::make_unique<opt::ConstantSchedule>(spec.scale);
  if (spec.kind == "polynomial") {
    return std::make_unique<opt::PolynomialSchedule>(spec.scale, spec.power);
  }
  throw std::invalid_argument("scenario: unknown schedule kind \"" + spec.kind + "\"");
}

Vector make_x0(const ScenarioSpec& spec, int dim) {
  if (spec.x0.empty()) return Vector(dim);
  if (spec.x0.size() == 1) {
    return Vector(std::vector<double>(static_cast<std::size_t>(dim), spec.x0.front()));
  }
  ABFT_REQUIRE(static_cast<int>(spec.x0.size()) == dim, "x0 dimension mismatch");
  return Vector(spec.x0);
}

double honest_cost_at(const GradientWorkload& w, const Vector& x) {
  double total = 0.0;
  for (const int position : w.honest) {
    total += w.costs[static_cast<std::size_t>(position)]->value(x);
  }
  return total;
}

ScenarioResult run_dgd_scenario(const ScenarioSpec& spec) {
  reject_inapplicable_keys(spec,
                           {"batch_size", "step_size", "momentum", "eval_interval", "model",
                            "dataset", "relay_strategy", "ds_strategy"},
                           "dgd");
  GradientWorkload w = build_gradient_workload(spec);
  const auto schedule = make_schedule(spec.schedule);
  const auto aggregator = make_scenario_aggregator(spec);
  sim::DgdConfig config{make_x0(spec, w.dim),
                        opt::Box::centered_cube(w.dim, spec.box_halfwidth),
                        schedule.get(),
                        spec.iterations,
                        spec.f,
                        spec.seed,
                        spec.drop_probability,
                        false,
                        spec.threads,
                        spec.mode,
                        spec.precision,
                        spec.axes,
                        spec.async};
  sim::DgdSimulation simulation(std::move(w.roster), std::move(config));
  ScenarioResult result;
  result.spec = spec;
  result.traces.push_back(simulation.run(*aggregator));
  const auto& trace = result.traces.front();
  result.final_cost = honest_cost_at(w, trace.final_estimate());
  if (w.reference) {
    result.distance_to_reference = linalg::distance(trace.final_estimate(), *w.reference);
  }
  result.eliminated_agents = trace.eliminated_agents;
  result.departed_agents = trace.departed_agents;
  result.messages_sent = simulation.network().messages_sent();
  result.messages_dropped = simulation.network().messages_dropped();
  if (const auto* stats = simulation.async_stats()) result.async_stats = *stats;
  attach_hierarchy_bounds(&result, *aggregator, spec, static_cast<int>(w.costs.size()));
  return result;
}

ScenarioResult run_p2p_scenario(const ScenarioSpec& spec, bool authenticated) {
  reject_inapplicable_keys(spec,
                           {"batch_size", "step_size", "momentum", "eval_interval", "model",
                            "dataset", "drop_probability", "async",
                            authenticated ? "relay_strategy" : "ds_strategy"},
                           authenticated ? "p2p_auth" : "p2p");
  GradientWorkload w = build_gradient_workload(spec);
  const auto schedule = make_schedule(spec.schedule);
  const auto aggregator = make_scenario_aggregator(spec);
  const auto relay = make_relay_strategy(spec, w.dim);
  const auto ds = make_ds_strategy(spec);
  p2p::P2pDgdConfig config{make_x0(spec, w.dim),
                           opt::Box::centered_cube(w.dim, spec.box_halfwidth),
                           schedule.get(),
                           spec.iterations,
                           spec.f,
                           spec.seed,
                           spec.threads,
                           spec.mode,
                           spec.precision,
                           spec.axes};
  const auto outcome =
      authenticated ? p2p::run_p2p_dgd_authenticated(w.roster, config, *aggregator, ds.get())
                    : p2p::run_p2p_dgd(w.roster, config, *aggregator, relay.get());
  ScenarioResult result;
  result.spec = spec;
  result.traces = outcome.traces;
  result.honest_nodes = outcome.honest_nodes;
  result.final_cost = honest_cost_at(w, result.traces.front().final_estimate());
  if (w.reference) {
    result.distance_to_reference =
        linalg::distance(result.traces.front().final_estimate(), *w.reference);
  }
  result.eliminated_agents = outcome.eliminated_agents;
  result.departed_agents = outcome.departed_agents;
  result.broadcast_messages = outcome.broadcast_messages;
  attach_hierarchy_bounds(&result, *aggregator, spec, static_cast<int>(w.costs.size()));
  return result;
}

ScenarioResult run_dsgd_scenario(const ScenarioSpec& spec) {
  reject_inapplicable_keys(spec,
                           {"schedule", "box_halfwidth", "x0", "drop_probability", "dim",
                            "noise_stddev", "relay_strategy", "ds_strategy", "async"},
                           "dsgd");
  const std::string problem = spec.problem.empty() ? "synthetic" : spec.problem;
  ABFT_REQUIRE(problem == "synthetic", "dsgd supports the synthetic problem only");
  ABFT_REQUIRE(spec.num_agents > 0, "dsgd needs num_agents > 0");
  // Derived, documented sub-streams so one spec seed pins the whole run.
  util::Rng data_rng(spec.seed ^ 0xda7aULL);
  const auto full = learn::make_synthetic(spec.dataset, data_rng);
  util::Rng split_rng(spec.seed ^ 0x51D17ULL);
  auto split = learn::split_train_test(full, 0.2, split_rng);
  util::Rng shard_rng(spec.seed ^ 0x54a2dULL);
  // dirichlet_alpha defaults to +infinity, where shard_dirichlet IS the iid
  // shard() split (same code path, same rng consumption).
  auto shards =
      learn::shard_dirichlet(split.train, spec.num_agents, spec.dirichlet_alpha, shard_rng);
  if (!spec.agents.empty()) {
    // Roster subset: shard for the full num_agents roster, then run on the
    // named shards only (fault indices refer to subset positions) — the
    // dsgd analogue of paper_regression's agents subset, used by the fig4/5
    // fault-free curves ("omit the faulty agents, keep everyone's data
    // assignment").
    std::vector<learn::Dataset> subset;
    subset.reserve(spec.agents.size());
    for (const int agent : spec.agents) {
      ABFT_REQUIRE(0 <= agent && agent < spec.num_agents,
                   "agents subset entries must be in [0, num_agents)");
      subset.push_back(std::move(shards[static_cast<std::size_t>(agent)]));
    }
    shards = std::move(subset);
  }
  const int roster_size = static_cast<int>(shards.size());

  std::vector<learn::AgentFault> faults(static_cast<std::size_t>(roster_size),
                                        learn::AgentFault::kHonest);
  for (const auto& fault : spec.faults) {
    ABFT_REQUIRE(0 <= fault.agent && fault.agent < roster_size,
                 "fault agent outside the roster");
    if (fault.kind == "label-flip") {
      faults[static_cast<std::size_t>(fault.agent)] = learn::AgentFault::kLabelFlip;
    } else if (fault.kind == "gradient-reverse") {
      faults[static_cast<std::size_t>(fault.agent)] = learn::AgentFault::kGradientReverse;
    } else {
      throw std::invalid_argument("scenario: dsgd fault kind must be label-flip or "
                                  "gradient-reverse, got \"" +
                                  fault.kind + "\"");
    }
  }

  std::unique_ptr<learn::Model> model;
  Vector params0;
  if (spec.model == "mlp") {
    auto mlp = std::make_unique<learn::Mlp>(split.train.feature_dim(), spec.hidden_dim,
                                            split.train.num_classes);
    // Dedicated init sub-stream: the parameter draw must not disturb the
    // data/shard streams above.
    util::Rng init_rng(spec.seed ^ 0x1417ULL);
    params0 = mlp->initial_params(init_rng);
    model = std::move(mlp);
  } else {
    ABFT_REQUIRE(spec.model == "softmax", "model kind must be softmax or mlp");
    model = std::make_unique<learn::SoftmaxRegression>(split.train.feature_dim(),
                                                       split.train.num_classes);
    params0 = Vector(model->param_dim());
  }
  learn::DsgdConfig config;
  config.iterations = spec.iterations;
  config.batch_size = spec.batch_size;
  config.step_size = spec.step_size;
  config.f = spec.f;
  config.eval_interval = spec.eval_interval;
  config.momentum = spec.momentum;
  config.seed = spec.seed;
  config.agg_threads = spec.threads;
  config.agg_mode = spec.mode;
  config.agg_precision = spec.precision;
  config.axes = spec.axes;
  const auto aggregator = make_scenario_aggregator(spec);
  ScenarioResult result;
  result.spec = spec;
  result.series =
      learn::run_dsgd(*model, params0, shards, faults, split.test, *aggregator, config);
  result.final_cost = result.series->train_loss.back();
  result.departed_agents = result.series->departed_agents;
  attach_hierarchy_bounds(&result, *aggregator, spec, roster_size);
  return result;
}

}  // namespace

regress::RegressionProblem random_regression_instance(const ScenarioSpec& spec) {
  ABFT_REQUIRE(spec.num_agents > 0 && spec.dim > 0,
               "random_regression needs num_agents and dim > 0");
  ABFT_REQUIRE(spec.num_agents - 2 * spec.f >= spec.dim,
               "random_regression needs n - 2f >= dim (else no honest subset determines x)");
  regress::GeneratorOptions options;
  options.num_agents = spec.num_agents;
  options.dim = spec.dim;
  options.noise_stddev = spec.noise_stddev;
  options.rank_check_subset_size = spec.num_agents - 2 * spec.f;
  // Problem construction gets its own derived stream, independent of the
  // driver's round streams: two specs differing only in the rule or fault
  // study the same instance.
  util::Rng rng(spec.seed ^ 0xab5eedULL);
  return regress::random_problem(options, rng);
}

std::unique_ptr<agg::GradientAggregator> make_scenario_aggregator(const ScenarioSpec& spec) {
  if (!spec.hierarchy) {
    if (spec.coreset) {
      return std::make_unique<agg::CoresetReducer>(spec.coreset_rule, *spec.coreset);
    }
    return agg::make_aggregator(spec.aggregator);
  }
  agg::HierarchyConfig config = *spec.hierarchy;
  // Derived, documented sub-stream (like the problem/data streams above):
  // one spec seed pins the shard assignment too.  The xor could land on 0 —
  // the identity-assignment sentinel — so remap that one value.
  config.assignment_seed = spec.seed ^ 0x5a2dba5eULL;
  if (config.assignment_seed == 0) config.assignment_seed = 0x5a2dba5eULL;
  return std::make_unique<agg::HierarchicalAggregator>(std::move(config));
}

ScenarioResult run_scenario(const ScenarioSpec& spec) {
  ABFT_REQUIRE(spec.iterations >= 0, "iterations must be non-negative");
  // A repeated roster entry would run one shard/cost twice under two agent
  // ids (and the dsgd subset moves shards, so a duplicate would also read a
  // moved-from Dataset) — reject for every driver.
  std::set<int> distinct_agents(spec.agents.begin(), spec.agents.end());
  ABFT_REQUIRE(distinct_agents.size() == spec.agents.size(),
               "the agents subset must not repeat entries");
  if (spec.driver == "dgd") return run_dgd_scenario(spec);
  if (spec.driver == "dsgd") return run_dsgd_scenario(spec);
  if (spec.driver == "p2p") return run_p2p_scenario(spec, false);
  if (spec.driver == "p2p_auth") return run_p2p_scenario(spec, true);
  throw std::invalid_argument("scenario: unknown driver \"" + spec.driver + "\"");
}

namespace {

// JSON-safe: non-finite values (a diverged run's nan cost) emit null.
void write_number(std::ostream& os, double value) { util::write_json_number(os, value); }

void write_string(std::ostream& os, std::string_view text) {
  util::write_json_string(os, text);
}

}  // namespace

void write_result_json(const ScenarioResult& result, std::ostream& os) {
  os << "{\n";
  os << "  \"name\": ";
  write_string(os, result.spec.name);
  os << ",\n";
  os << "  \"driver\": ";
  write_string(os, result.spec.driver);
  os << ",\n";
  os << "  \"aggregator\": ";
  write_string(os, result.spec.aggregator);
  os << ",\n";
  os << "  \"mode\": \"" << agg::to_string(result.spec.mode) << "\",\n";
  os << "  \"precision\": \"" << agg::to_string(result.spec.precision) << "\",\n";
  os << "  \"iterations\": " << result.spec.iterations << ",\n";
  os << "  \"final_cost\": ";
  write_number(os, result.final_cost);
  os << ",\n";
  if (result.distance_to_reference) {
    os << "  \"distance_to_reference\": ";
    write_number(os, *result.distance_to_reference);
    os << ",\n";
  }
  os << "  \"eliminated_agents\": " << result.eliminated_agents << ",\n";
  os << "  \"departed_agents\": " << result.departed_agents << ",\n";
  if (result.hierarchy_bounds) {
    const auto& b = *result.hierarchy_bounds;
    // "shards" is the effective count the run executed (min(requested, n));
    // "requested_shards" preserves the spec's asked-for S.
    os << "  \"hierarchy\": {\"shards\": " << b.shards
       << ", \"requested_shards\": " << result.spec.hierarchy->shards
       << ", \"shard_rows_min\": " << b.shard_rows_min << ", \"shard_rows_max\": "
       << b.shard_rows_max << ", \"f_leaf\": " << b.f_leaf << ", \"f_root\": " << b.f_root
       << ", \"tolerated_f\": " << b.tolerated_f << ", \"resilience_margin\": ";
    write_number(os, b.resilience_margin);
    os << "},\n";
  }
  if (result.async_stats) {
    const auto& a = *result.async_stats;
    os << "  \"async\": {\"quorum_fires\": " << a.quorum_fires
       << ", \"deadline_fires\": " << a.deadline_fires
       << ", \"stale_dropped\": " << a.stale_dropped << ", \"late_rows\": " << a.late_rows
       << "},\n";
  }
  if (result.series) {
    const auto& series = *result.series;
    os << "  \"final_train_loss\": ";
    write_number(os, series.train_loss.back());
    os << ",\n  \"final_test_accuracy\": ";
    write_number(os, series.test_accuracy.back());
    os << ",\n  \"evaluations\": " << series.eval_iterations.size() << "\n";
  } else {
    const auto& estimate = result.traces.front().final_estimate();
    os << "  \"trace_length\": " << result.traces.front().estimates.size() << ",\n";
    if (!result.honest_nodes.empty()) {
      os << "  \"honest_nodes\": " << result.honest_nodes.size() << ",\n";
      os << "  \"broadcast_messages\": " << result.broadcast_messages << ",\n";
    } else {
      os << "  \"messages_sent\": " << result.messages_sent << ",\n";
      os << "  \"messages_dropped\": " << result.messages_dropped << ",\n";
    }
    os << "  \"final_estimate\": [";
    for (int k = 0; k < estimate.dim(); ++k) {
      if (k > 0) os << ", ";
      write_number(os, estimate[k]);
    }
    os << "]\n";
  }
  os << "}\n";
}

void print_result(const ScenarioResult& result, std::ostream& os) {
  os << "scenario: " << (result.spec.name.empty() ? "(unnamed)" : result.spec.name) << "\n"
     << "  driver " << result.spec.driver << ", rule " << result.spec.aggregator << " ("
     << agg::to_string(result.spec.mode) << ", " << agg::to_string(result.spec.precision)
     << "), " << result.spec.iterations
     << " iterations, f = " << result.spec.f << ", seed = " << result.spec.seed << "\n";
  if (result.spec.axes.enabled()) {
    os << "  axes: participation " << result.spec.axes.participation << ", straggler "
       << result.spec.axes.straggler_probability << ", churn events "
       << result.spec.axes.churn.size() << "\n";
  }
  os << "  final honest cost " << result.final_cost;
  if (result.distance_to_reference) {
    os << ", distance to honest minimizer " << *result.distance_to_reference;
  }
  os << "\n  eliminated " << result.eliminated_agents << ", departed "
     << result.departed_agents;
  if (result.hierarchy_bounds) {
    const auto& b = *result.hierarchy_bounds;
    os << "\n  hierarchy: " << b.shards << " shards";
    if (result.spec.hierarchy && result.spec.hierarchy->shards != b.shards) {
      os << " (requested " << result.spec.hierarchy->shards << ", clamped to the roster)";
    }
    os << " of " << b.shard_rows_min << "-" << b.shard_rows_max << " rows, f_leaf "
       << b.f_leaf << ", f_root " << b.f_root << ", tolerated_f " << b.tolerated_f
       << " (margin 2f/n = " << b.resilience_margin << ")";
  }
  if (result.async_stats) {
    const auto& a = *result.async_stats;
    os << "\n  async: quorum fires " << a.quorum_fires << ", deadline fires "
       << a.deadline_fires << ", stale dropped " << a.stale_dropped << ", late rows "
       << a.late_rows;
  }
  if (!result.honest_nodes.empty()) {
    os << ", honest nodes " << result.honest_nodes.size() << ", broadcast messages "
       << result.broadcast_messages;
  } else if (!result.series) {
    os << ", messages " << result.messages_sent << " (dropped " << result.messages_dropped
       << ")";
  }
  os << "\n";
  if (result.series) {
    os << "  final train loss " << result.series->train_loss.back() << ", test accuracy "
       << 100.0 * result.series->test_accuracy.back() << "%\n";
  }
}

void write_trace_csv(const ScenarioResult& result, std::ostream& os) {
  ABFT_REQUIRE(!result.traces.empty(), "no trace to export (dsgd runs have series instead)");
  result.traces.front().write_csv(os);
}

}  // namespace abft::scenario

// Declarative scenarios: one JSON (or programmatic) spec composes a problem,
// a roster with faults, an aggregation rule and mode, a step schedule, and
// the engine's round-perturbation axes — and runs on any of the three
// drivers (server-based DGD, D-SGD, peer-to-peer DGD).  The spec layer is
// what turns "add a scenario" from a fourth hand-written round loop into a
// config file: the fig2/fig3/table1 reproductions, the CI smoke goldens and
// the abft_run CLI all execute through run_scenario().
//
// Spec schema (all keys optional unless noted; defaults in parentheses):
//   name                  free-form label ("")
//   driver                "dgd" | "dsgd" | "p2p" | "p2p_auth"       ("dgd")
//   problem               dgd/p2p: "paper_regression" | "quadratic" |
//                           "random_regression"
//                         dsgd: "synthetic"         (driver's natural one)
//   aggregator            registry rule name                       ("cwtm")
//                         or an object composing up to three layers:
//                         {"rule": r} — the flat registry rule;
//                         {"hierarchy": {"shards": S, "leaf_rule": r,
//                         "root_rule": r, "f_leaf": k}} — the sharded
//                         aggregate-of-aggregates tree (agg/hierarchy.hpp;
//                         leaf_rule/root_rule default "cwtm", f_leaf
//                         defaults to auto).  The deterministic shard
//                         assignment is seeded from the spec seed
//                         (derived stream seed ^ 0x5a2dba5e), and the
//                         result carries the per-level fault bookkeeping.
//                         When the roster is smaller than the requested S
//                         the tree clamps to min(S, n) shards; the result
//                         label and JSON report the *effective* count
//                         (requested_shards keeps the asked-for one);
//                         {"reduction": {"coreset": {"size": k}}} — the
//                         greedy k-center coreset pre-reduction
//                         (agg/coreset.hpp; size 0/absent = auto
//                         f + ceil(sqrt(n)), size "adaptive" = grow k
//                         until the covering radius stops improving) — or
//                         {"reduction": {"sample": {"size": k,
//                         "strata": s}}} — norm-stratified weighted
//                         sampling (strata 0/absent = auto min(8, k));
//                         exactly one of "coreset"/"sample".  Composes
//                         with "rule" (the whole batch is reduced) or
//                         with "hierarchy" (each shard is reduced before
//                         its leaf rule); "rule" and "hierarchy" are
//                         mutually exclusive
//   mode                  "exact" | "fast"                        ("exact")
//   precision             "f64" | "f32"                           ("f64")
//                         f32 demotes the fast lane's bandwidth-bound
//                         kernel inputs; requires mode "fast" (rejected
//                         at parse time under "exact")
//   iterations, f, seed, threads
//   schedule              {"kind": "harmonic"|"constant"|"polynomial",
//                          "scale": s, "power": p}      (harmonic, 1.5)
//   box_halfwidth         W = [-w, w]^d                            (1000)
//   x0                    array of d numbers, or a single number
//                         broadcast to every coordinate            (zeros)
//   agents                paper_regression / dsgd: roster (shard) subset
//                         to run on                                  (all)
//   num_agents, dim       quadratic / random_regression shape      (7, 2)
//   noise_stddev          random_regression observation noise      (0.05)
//   faults                [{"agent": i, "kind": k, "param": x}, ...]
//       dgd/p2p kinds: gradient-reverse, random (param = stddev, 200),
//         zero, sign-flip-scale (param = kappa, 2), rotating (param =
//         magnitude, 10), little-is-enough (param = z, 1.2), mean-reverse
//         (param = scale, 1), mimic-smallest, silent
//       dsgd kinds: label-flip, gradient-reverse
//   drop_probability      dgd network crash injection                (0)
//   relay_strategy        p2p only: how faulty nodes misbehave INSIDE the
//                         Oral-Messages broadcast (they always lie at the
//                         source via their fault kind):
//                         {"kind": "honest"|"equivocate"|"silent"|
//                          "fixed-value", "param": x}
//                         equivocate: param = noise stddev (200);
//                         fixed-value: param = the coordinate value the
//                         node pushes to everyone (0)
//   ds_strategy           p2p_auth only: the Dolev-Strong in-protocol
//                         misbehaviour {"kind": "honest"|"equivocate"|
//                         "silent", "offset": o (100),
//                          "forward_probability": p (0.5)}
//   axes                  {"participation": p, "straggler_probability": q,
//                          "perturbation_seed": s,
//                          "churn": [{"round": r, "agent": i}, ...]}
//   async                 dgd only: event-driven quorum-or-deadline rounds
//                         (engine/async_engine.hpp) instead of the
//                         synchronous close:
//                         {"quorum": q (0 = full roster),
//                          "deadline": D (1.0, > 0),
//                          "staleness_cap": c (0, >= 0),
//                          "arrival": {"kind": "uniform"|"exponential"|
//                                      "fixed", "scale": s (0.5, > 0)}}
//                         ("fixed" makes every computation take exactly
//                         `scale` — deterministic, for boundary tests.)
//                         The filter fires as soon as q rows arrive inside
//                         the round window [t*D, (t+1)*D), else at the
//                         close.  The window is half-open: a row arriving
//                         exactly at (t+1)*D belongs to window t+1, never
//                         t.  Staleness is measured in whole windows
//                         (age = consuming round - birth round): a row is
//                         purged only when age > c — at exactly age == c it
//                         is kept and, like every late-but-fresh row
//                         (age >= 1), scaled by 1/(1+age).
//                         Does not compose with `axes` or
//                         `drop_probability` (lateness/loss live in the
//                         virtual clock); results carry the
//                         quorum/deadline/staleness counters
//   dsgd knobs            batch_size (32), step_size (0.01), momentum (0),
//                         eval_interval (25),
//                         model {"kind": "softmax"|"mlp",
//                                "hidden_dim": h}        (softmax; mlp: 24)
//                         dataset {num_classes (3), feature_dim (6),
//                         examples_per_class (30), noise_stddev (0.3),
//                         dirichlet_alpha (absent = iid split)}
//       dirichlet_alpha: Dirichlet-alpha label skew over the synthetic
//       shards (learn/dataset.hpp shard_dirichlet); small alpha = severe
//       skew, absent / +infinity = today's iid split, bit-identically
//
// Sweep specs — a "sweep" block of list-valued axes over a "base" spec,
// expanded into a cartesian run grid and executed in parallel — are the
// layer above this one: see sweep/sweep.hpp.
#pragma once

#include <iosfwd>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "abft/agg/batch.hpp"
#include "abft/agg/hierarchy.hpp"
#include "abft/engine/async_engine.hpp"
#include "abft/engine/axes.hpp"
#include "abft/learn/dsgd.hpp"
#include "abft/sim/trace.hpp"
#include "abft/util/json.hpp"

namespace abft::regress {
class RegressionProblem;  // random_regression_instance return type
}

namespace abft::scenario {

struct FaultSpec {
  int agent = 0;
  std::string kind;
  /// Kind-specific knob (stddev / kappa / z / scale ...); NaN = kind default.
  double param = std::numeric_limits<double>::quiet_NaN();
};

struct ScheduleSpec {
  std::string kind = "harmonic";  // harmonic | constant | polynomial
  double scale = 1.5;
  double power = 1.0;  // polynomial only
};

/// p2p: faulty nodes' in-protocol Oral-Messages relay behaviour.
struct RelayStrategySpec {
  std::string kind = "honest";  // honest | equivocate | silent | fixed-value
  /// equivocate: noise stddev; fixed-value: the broadcast coordinate value;
  /// NaN = kind default.
  double param = std::numeric_limits<double>::quiet_NaN();
};

/// p2p_auth: faulty nodes' in-protocol Dolev-Strong behaviour.
struct DsStrategySpec {
  std::string kind = "honest";  // honest | equivocate | silent
  double offset = 100.0;
  double forward_probability = 0.5;
};

struct ScenarioSpec {
  std::string name;
  std::string driver = "dgd";  // dgd | dsgd | p2p | p2p_auth
  std::string problem;         // "" = the driver's natural problem
  /// Registry rule name — or the hierarchy's stable label when `hierarchy`
  /// is set (parse_scenario fills both from the aggregator object form).
  std::string aggregator = "cwtm";
  /// Sharded aggregate-of-aggregates tree (agg/hierarchy.hpp); the
  /// assignment seed is derived from the spec seed at run time.  A
  /// per-shard coreset reduction rides inside the config.
  std::optional<agg::HierarchyConfig> hierarchy;
  /// Flat coreset pre-reduction (agg/coreset.hpp) wrapping coreset_rule;
  /// parse_scenario fills both from the aggregator object's "reduction"
  /// block (hierarchy specs carry theirs in hierarchy->coreset instead).
  std::optional<agg::CoresetConfig> coreset;
  std::string coreset_rule = "cwtm";
  agg::AggMode mode = agg::AggMode::exact;
  agg::Precision precision = agg::Precision::f64;
  int iterations = 100;
  int f = 0;
  std::uint64_t seed = 1;
  int threads = 1;
  ScheduleSpec schedule;
  double box_halfwidth = 1000.0;
  /// Start estimate: empty = zeros; one entry = broadcast to all coords.
  std::vector<double> x0;
  /// paper_regression / dsgd: the roster (shard) subset to run on
  /// (empty = all).
  std::vector<int> agents;
  int num_agents = 7;  // quadratic / random_regression / synthetic roster
  int dim = 2;         // quadratic / random_regression dimension
  double noise_stddev = 0.05;  // random_regression observation noise
  std::vector<FaultSpec> faults;
  double drop_probability = 0.0;
  /// p2p / p2p_auth in-protocol misbehaviour ("honest" kind = not set).
  std::optional<RelayStrategySpec> relay_strategy;
  std::optional<DsStrategySpec> ds_strategy;
  engine::ScenarioAxes axes;
  /// dgd only: event-driven quorum-or-deadline mode (see schema comment).
  std::optional<engine::AsyncConfig> async;

  // D-SGD knobs.
  int batch_size = 32;
  double step_size = 0.01;
  double momentum = 0.0;
  int eval_interval = 25;
  std::string model = "softmax";  // softmax | mlp
  int hidden_dim = 24;            // mlp only
  learn::SyntheticOptions dataset{3, 6, 30, 1.0, 0.3};
  /// Dirichlet label-skew over the shards; +infinity (the default) is the
  /// iid split, bit-identically (shard_dirichlet delegates to shard()).
  double dirichlet_alpha = std::numeric_limits<double>::infinity();

  /// Top-level keys the spec actually set (filled by parse_scenario) — lets
  /// run_scenario reject keys the chosen driver would silently ignore.
  std::vector<std::string> specified_keys;
};

/// Parses a spec object; throws std::invalid_argument naming unknown keys,
/// unknown enum spellings and malformed sections.
ScenarioSpec parse_scenario(const util::JsonValue& json);
ScenarioSpec load_scenario_file(const std::string& path);

struct ScenarioResult {
  ScenarioSpec spec;
  /// dgd: one trace; p2p: one per honest node (honest_nodes parallel).
  std::vector<sim::Trace> traces;
  std::vector<int> honest_nodes;
  /// dsgd only.
  std::optional<learn::DsgdSeries> series;

  /// Honest aggregate cost at the final estimate (dgd/p2p: node 0's trace;
  /// dsgd: final train loss).
  double final_cost = 0.0;
  /// ||x_T - x_H|| against the closed-form honest minimizer (dgd/p2p).
  std::optional<double> distance_to_reference;
  int eliminated_agents = 0;
  int departed_agents = 0;
  /// Per-level fault bookkeeping when the spec runs a hierarchy (computed
  /// against the full roster size and the declared f).
  std::optional<agg::HierarchyBounds> hierarchy_bounds;
  /// Trigger/staleness counters when the spec runs the async engine mode.
  std::optional<engine::AsyncStats> async_stats;
  long broadcast_messages = 0;  // p2p
  long messages_sent = 0;       // dgd network
  long messages_dropped = 0;
};

/// Builds the workload named by the spec and runs it on the spec's driver.
ScenarioResult run_scenario(const ScenarioSpec& spec);

/// The aggregator a spec runs with: the registry rule, or the hierarchy
/// tree with its shard-assignment seed derived from the spec seed — exposed
/// so tests/benches can study the exact rule a scenario used.
std::unique_ptr<agg::GradientAggregator> make_scenario_aggregator(const ScenarioSpec& spec);

/// The deterministic random_regression instance a spec names (problem rng is
/// derived from the spec seed) — exposed so redundancy / theorem-bound
/// analysis (bench_epsilon_sweep) can study the very instance a sweep ran.
regress::RegressionProblem random_regression_instance(const ScenarioSpec& spec);

/// Machine-readable one-object summary (stable keys; used by the CI smoke
/// goldens and scripts/compare_scenario.py).
void write_result_json(const ScenarioResult& result, std::ostream& os);

/// Human-readable summary table.
void print_result(const ScenarioResult& result, std::ostream& os);

/// Full estimate trace as CSV (t, x[0..d-1]); dgd/p2p only.
void write_trace_csv(const ScenarioResult& result, std::ostream& os);

}  // namespace abft::scenario

#include "abft/core/distance.hpp"

#include <algorithm>

#include "abft/util/check.hpp"

namespace abft::core {

double distance_to_set(const Vector& x, std::span<const Vector> set) {
  ABFT_REQUIRE(!set.empty(), "distance to an empty set is undefined");
  double best = linalg::distance(x, set.front());
  for (std::size_t i = 1; i < set.size(); ++i) {
    best = std::min(best, linalg::distance(x, set[i]));
  }
  return best;
}

double hausdorff_distance(std::span<const Vector> a, std::span<const Vector> b) {
  ABFT_REQUIRE(!a.empty() && !b.empty(), "hausdorff distance needs non-empty sets");
  double sup_a = 0.0;
  for (const auto& x : a) sup_a = std::max(sup_a, distance_to_set(x, b));
  double sup_b = 0.0;
  for (const auto& y : b) sup_b = std::max(sup_b, distance_to_set(y, a));
  return std::max(sup_a, sup_b);
}

}  // namespace abft::core

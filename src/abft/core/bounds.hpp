// Closed-form resilience bounds from Theorems 4, 5 and 6, plus the
// feasibility predicates of Lemma 1 and the CGE fraction condition.
// All bounds take the smoothness constant mu (Assumption 2) and the strong
// convexity constant gamma (Assumption 3); Appendix C proves gamma <= mu.
#pragma once

namespace abft::core {

/// Lemma 1: deterministic (f, eps)-resilience requires f < n/2.
[[nodiscard]] bool resilience_feasible(int n, int f);

/// Result of a CGE/CWTM bound computation.  When `valid` is false the
/// theorem's hypothesis fails and `factor` is meaningless.
struct ResilienceBound {
  bool valid = false;
  double alpha = 0.0;   // the theorem's alpha (CGE) — 0 for CWTM
  double factor = 0.0;  // D (or D'): asymptotic error is at most factor*eps
};

/// Theorem 4: alpha = 1 - (f/n)(1 + 2 mu/gamma); D = 4 mu f / (alpha gamma).
/// Valid iff alpha > 0 (which forces f/n < 1/3 since gamma <= mu).
ResilienceBound cge_bound_theorem4(int n, int f, double mu, double gamma);

/// Theorem 5 (sharper use of redundancy): alpha = 1 - (f/n)(1 + mu/gamma);
/// D = (1 + 2f)(n - 2f) mu / (alpha n gamma).  Valid iff f <= n/3 and
/// alpha > 0.
ResilienceBound cge_bound_theorem5(int n, int f, double mu, double gamma);

/// Theorem 6: requires lambda < gamma / (mu sqrt(d));
/// D' = 2 sqrt(d) n mu lambda / (gamma - sqrt(d) mu lambda).
ResilienceBound cwtm_bound_theorem6(int n, int d, double mu, double gamma, double lambda);

/// The largest lambda Theorem 6 tolerates for the given constants.
double cwtm_lambda_threshold(int d, double mu, double gamma);

/// Lemma 4: with (2f, eps)-redundancy and f <= n/3, at the honest minimizer
/// x_H every f-subset gradient sum is bounded by (n - 2f) mu eps and every
/// single honest gradient by 2 (n - 2f) mu eps.
struct GradientNormBounds {
  double subset_sum_bound = 0.0;  // eq. (77)
  double single_bound = 0.0;      // eq. (78)
};
GradientNormBounds lemma4_bounds(int n, int f, double mu, double epsilon);

}  // namespace abft::core

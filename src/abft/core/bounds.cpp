#include "abft/core/bounds.hpp"

#include <cmath>

#include "abft/util/check.hpp"

namespace abft::core {

namespace {

void validate_constants(int n, int f, double mu, double gamma) {
  ABFT_REQUIRE(n > 0, "n must be positive");
  ABFT_REQUIRE(f >= 0 && f < n, "need 0 <= f < n");
  ABFT_REQUIRE(mu > 0.0, "mu must be positive");
  ABFT_REQUIRE(gamma > 0.0, "gamma must be positive");
  ABFT_REQUIRE(gamma <= mu * (1.0 + 1e-9), "gamma <= mu must hold (Appendix C)");
}

}  // namespace

bool resilience_feasible(int n, int f) {
  ABFT_REQUIRE(n > 0 && f >= 0, "need n > 0, f >= 0");
  return 2 * f < n;
}

ResilienceBound cge_bound_theorem4(int n, int f, double mu, double gamma) {
  validate_constants(n, f, mu, gamma);
  ResilienceBound bound;
  bound.alpha = 1.0 - (static_cast<double>(f) / n) * (1.0 + 2.0 * mu / gamma);
  bound.valid = bound.alpha > 0.0;
  if (bound.valid) {
    bound.factor = 4.0 * mu * static_cast<double>(f) / (bound.alpha * gamma);
  }
  return bound;
}

ResilienceBound cge_bound_theorem5(int n, int f, double mu, double gamma) {
  validate_constants(n, f, mu, gamma);
  ResilienceBound bound;
  bound.alpha = 1.0 - (static_cast<double>(f) / n) * (1.0 + mu / gamma);
  bound.valid = (3 * f <= n) && bound.alpha > 0.0;
  if (bound.valid) {
    bound.factor = (1.0 + 2.0 * f) * static_cast<double>(n - 2 * f) * mu /
                   (bound.alpha * static_cast<double>(n) * gamma);
  }
  return bound;
}

ResilienceBound cwtm_bound_theorem6(int n, int d, double mu, double gamma, double lambda) {
  validate_constants(n, 0, mu, gamma);
  ABFT_REQUIRE(d > 0, "dimension must be positive");
  ABFT_REQUIRE(lambda >= 0.0, "lambda must be non-negative");
  ResilienceBound bound;
  const double sqrt_d = std::sqrt(static_cast<double>(d));
  bound.valid = lambda < gamma / (mu * sqrt_d);
  if (bound.valid) {
    bound.factor = 2.0 * sqrt_d * n * mu * lambda / (gamma - sqrt_d * mu * lambda);
  }
  return bound;
}

double cwtm_lambda_threshold(int d, double mu, double gamma) {
  ABFT_REQUIRE(d > 0, "dimension must be positive");
  ABFT_REQUIRE(mu > 0.0 && gamma > 0.0, "constants must be positive");
  return gamma / (mu * std::sqrt(static_cast<double>(d)));
}

GradientNormBounds lemma4_bounds(int n, int f, double mu, double epsilon) {
  ABFT_REQUIRE(n > 0 && f >= 0 && 3 * f <= n, "lemma 4 needs f <= n/3");
  ABFT_REQUIRE(mu > 0.0 && epsilon >= 0.0, "need mu > 0, epsilon >= 0");
  GradientNormBounds bounds;
  bounds.subset_sum_bound = static_cast<double>(n - 2 * f) * mu * epsilon;
  bounds.single_bound = 2.0 * bounds.subset_sum_bound;
  return bounds;
}

}  // namespace abft::core

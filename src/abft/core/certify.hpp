// Direct certification of Definition 2: a candidate output is
// (f, eps)-acceptable for a set of received costs iff it lies within eps of
// the argmin of EVERY (n - f)-subset.  Tests and benches use this to check
// algorithms against the definition itself rather than against derived
// bounds.
#pragma once

#include "abft/core/subset_solver.hpp"

namespace abft::core {

struct ResilienceCertificate {
  bool satisfied = false;
  /// max over (n - f)-subsets S of dist(output, argmin_S) — the smallest
  /// eps for which the output would be accepted.
  double worst_distance = 0.0;
  /// The subset achieving the max.
  std::vector<int> worst_subset;
  long subsets_checked = 0;
};

/// Checks `output` against every (n - f)-subset of `solver`'s agents.
/// Requires 0 <= f < n/2 (Lemma 1).  Cost: C(n, f) subset minimizations.
ResilienceCertificate certify_resilience(const SubsetSolver& solver, int f,
                                         const linalg::Vector& output, double epsilon);

}  // namespace abft::core

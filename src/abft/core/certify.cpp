#include "abft/core/certify.hpp"

#include "abft/util/check.hpp"
#include "abft/util/combinatorics.hpp"

namespace abft::core {

ResilienceCertificate certify_resilience(const SubsetSolver& solver, int f,
                                         const linalg::Vector& output, double epsilon) {
  const int n = solver.num_agents();
  ABFT_REQUIRE(f >= 0 && 2 * f < n, "certification needs 0 <= f < n/2");
  ABFT_REQUIRE(output.dim() == solver.dim(), "output dimension mismatch");
  ABFT_REQUIRE(epsilon >= 0.0, "epsilon must be non-negative");

  ResilienceCertificate certificate;
  const CachedSubsetSolver cached(solver);
  util::for_each_combination(n, n - f, [&](const std::vector<int>& subset) {
    const double d = linalg::distance(output, cached.solve(subset));
    ++certificate.subsets_checked;
    if (d > certificate.worst_distance) {
      certificate.worst_distance = d;
      certificate.worst_subset = subset;
    }
    return true;
  });
  certificate.satisfied = certificate.worst_distance <= epsilon;
  return certificate;
}

}  // namespace abft::core

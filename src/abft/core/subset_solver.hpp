// Subset minimization oracle: the redundancy analyzer (Definition 3) and the
// Theorem-2 exhaustive algorithm both need argmin_x sum_{i in S} Q_i(x) for
// many agent subsets S.  Workloads provide closed-form solvers where they
// exist (least squares for regression, centroid for robust mean); the
// generic fallback runs projected gradient descent.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "abft/linalg/vector.hpp"
#include "abft/opt/box.hpp"
#include "abft/opt/cost.hpp"
#include "abft/opt/solver.hpp"

namespace abft::core {

using linalg::Vector;

class SubsetSolver {
 public:
  virtual ~SubsetSolver() = default;

  [[nodiscard]] virtual int num_agents() const noexcept = 0;
  [[nodiscard]] virtual int dim() const noexcept = 0;

  /// Unique minimizer of sum_{i in agents} Q_i(x).  `agents` must be a
  /// non-empty sorted list of distinct indices in [0, num_agents()).
  [[nodiscard]] virtual Vector solve(const std::vector<int>& agents) const = 0;
};

/// Validates the subset argument shared by all implementations.
void validate_subset(const SubsetSolver& solver, const std::vector<int>& agents);

/// Generic solver over arbitrary differentiable costs: minimizes the subset
/// aggregate by projected gradient descent inside `box`.
class CostSubsetSolver final : public SubsetSolver {
 public:
  CostSubsetSolver(std::vector<const opt::CostFunction*> costs, opt::Box box,
                   opt::GradientDescentOptions options = {});

  [[nodiscard]] int num_agents() const noexcept override {
    return static_cast<int>(costs_.size());
  }
  [[nodiscard]] int dim() const noexcept override { return box_.dim(); }
  [[nodiscard]] Vector solve(const std::vector<int>& agents) const override;

 private:
  std::vector<const opt::CostFunction*> costs_;
  opt::Box box_;
  opt::GradientDescentOptions options_;
};

/// Closed-form solver for the robust-mean mapping of Section 2.3:
/// Q_i(x) = ||x - c_i||^2, so argmin over S is the centroid of {c_i}.
class MeanSubsetSolver final : public SubsetSolver {
 public:
  explicit MeanSubsetSolver(std::vector<Vector> centers);

  [[nodiscard]] int num_agents() const noexcept override {
    return static_cast<int>(centers_.size());
  }
  [[nodiscard]] int dim() const noexcept override { return centers_.front().dim(); }
  [[nodiscard]] Vector solve(const std::vector<int>& agents) const override;

  [[nodiscard]] const std::vector<Vector>& centers() const noexcept { return centers_; }

 private:
  std::vector<Vector> centers_;
};

/// Memoizing decorator: subset minimizations repeat heavily inside the
/// redundancy sweep and the exhaustive algorithm.
class CachedSubsetSolver final : public SubsetSolver {
 public:
  explicit CachedSubsetSolver(const SubsetSolver& inner);

  [[nodiscard]] int num_agents() const noexcept override { return inner_.num_agents(); }
  [[nodiscard]] int dim() const noexcept override { return inner_.dim(); }
  [[nodiscard]] Vector solve(const std::vector<int>& agents) const override;

  [[nodiscard]] std::size_t cache_size() const noexcept { return cache_.size(); }

 private:
  const SubsetSolver& inner_;
  mutable std::map<std::vector<int>, Vector> cache_;
};

}  // namespace abft::core

#include "abft/core/subset_solver.hpp"

#include <algorithm>

#include "abft/util/check.hpp"

namespace abft::core {

void validate_subset(const SubsetSolver& solver, const std::vector<int>& agents) {
  ABFT_REQUIRE(!agents.empty(), "subset must be non-empty");
  ABFT_REQUIRE(std::is_sorted(agents.begin(), agents.end()), "subset must be sorted");
  ABFT_REQUIRE(std::adjacent_find(agents.begin(), agents.end()) == agents.end(),
               "subset must have distinct elements");
  ABFT_REQUIRE(agents.front() >= 0 && agents.back() < solver.num_agents(),
               "subset indices out of range");
}

CostSubsetSolver::CostSubsetSolver(std::vector<const opt::CostFunction*> costs, opt::Box box,
                                   opt::GradientDescentOptions options)
    : costs_(std::move(costs)), box_(std::move(box)), options_(options) {
  ABFT_REQUIRE(!costs_.empty(), "solver needs at least one cost");
  for (const auto* cost : costs_) {
    ABFT_REQUIRE(cost != nullptr, "cost must not be null");
    ABFT_REQUIRE(cost->dim() == box_.dim(), "cost/box dimension mismatch");
  }
}

Vector CostSubsetSolver::solve(const std::vector<int>& agents) const {
  validate_subset(*this, agents);
  std::vector<const opt::CostFunction*> selected;
  selected.reserve(agents.size());
  for (int i : agents) selected.push_back(costs_[static_cast<std::size_t>(i)]);
  const opt::AggregateCost aggregate(std::move(selected));
  const Vector center = 0.5 * (box_.lower() + box_.upper());
  return opt::minimize(aggregate, box_, center, options_).minimizer;
}

MeanSubsetSolver::MeanSubsetSolver(std::vector<Vector> centers) : centers_(std::move(centers)) {
  ABFT_REQUIRE(!centers_.empty(), "mean solver needs at least one center");
  const int d = centers_.front().dim();
  for (const auto& c : centers_) {
    ABFT_REQUIRE(c.dim() == d, "centers must share a dimension");
  }
}

Vector MeanSubsetSolver::solve(const std::vector<int>& agents) const {
  validate_subset(*this, agents);
  Vector sum(dim());
  for (int i : agents) sum += centers_[static_cast<std::size_t>(i)];
  return sum / static_cast<double>(agents.size());
}

CachedSubsetSolver::CachedSubsetSolver(const SubsetSolver& inner) : inner_(inner) {}

Vector CachedSubsetSolver::solve(const std::vector<int>& agents) const {
  auto it = cache_.find(agents);
  if (it != cache_.end()) return it->second;
  Vector result = inner_.solve(agents);
  cache_.emplace(agents, result);
  return result;
}

}  // namespace abft::core

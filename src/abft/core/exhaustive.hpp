// The constructive algorithm from the proof of Theorem 2.  Under
// (2f, eps)-redundancy it is (f, 2*eps)-resilient:
//
//   Step 2: for each candidate set T (|T| = n-f), compute
//           x_T = argmin sum_{i in T} Q_i, and
//           r_T = max over T-hat subset of T, |T-hat| = n-2f, of
//                 dist(x_T, argmin sum_{i in T-hat} Q_i).
//   Step 3: output x_S for S minimizing r_T.
//
// The paper notes this is computationally expensive (it enumerates
// C(n, f) * C(n-f, f) subset problems); we cache subset argmins, and the
// bench bench_exhaustive charts the cost growth.
#pragma once

#include "abft/core/subset_solver.hpp"

namespace abft::core {

struct ExhaustiveResult {
  Vector output;              // x_S, the algorithm's output
  std::vector<int> chosen;    // the set S achieving the minimum score
  double score = 0.0;         // r_S
  long subsets_solved = 0;    // distinct subset minimizations performed
};

/// Runs the Theorem-2 algorithm on the agents' (received) cost functions as
/// represented by `solver`.  Requires 0 <= f < n/2 (Lemma 1 territory
/// otherwise) and n - 2f >= 1.  For f = 0 returns the full-set argmin.
ExhaustiveResult exhaustive_resilient_solve(const SubsetSolver& solver, int f);

}  // namespace abft::core

#include "abft/core/lowerbound.hpp"

#include <cmath>

#include "abft/util/check.hpp"

namespace abft::core {

GapInstance make_gap_instance(int n, int f, double epsilon, double delta) {
  ABFT_REQUIRE(n >= 2, "gap instance needs n >= 2");
  ABFT_REQUIRE(f >= 1 && 2 * f < n, "gap instance needs 1 <= f < n/2");
  ABFT_REQUIRE(epsilon >= 0.0, "epsilon must be non-negative");
  ABFT_REQUIRE(delta > 0.0, "delta must be positive");

  GapInstance instance;
  instance.epsilon = epsilon;
  instance.delta = delta;

  const int core = n - 2 * f;  // |S-hat|
  const double gap = epsilon + delta;
  const double x_shat = 0.0;
  instance.x_s = x_shat - gap;
  instance.x_b_shat = x_shat + gap;

  // Centroid algebra: argmin over a set of (x - c_i)^2 is the centroid.  For
  // the f agents of S \ S-hat at common center c_left:
  //   (core * x_shat + f * c_left) / (n - f) = x_s.
  const double c_left = (static_cast<double>(n - f) * instance.x_s -
                         static_cast<double>(core) * x_shat) /
                        static_cast<double>(f);
  const double c_right = (static_cast<double>(n - f) * instance.x_b_shat -
                          static_cast<double>(core) * x_shat) /
                         static_cast<double>(f);

  // Agent layout: [0, core) = S-hat, [core, core + f) = S \ S-hat,
  // [core + f, n) = B.
  instance.costs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < core; ++i) {
    instance.costs.emplace_back(linalg::Vector{x_shat});
    instance.set_shat.push_back(i);
    instance.set_s.push_back(i);
  }
  for (int i = core; i < core + f; ++i) {
    instance.costs.emplace_back(linalg::Vector{c_left});
    instance.set_s.push_back(i);
  }
  for (int i = core + f; i < n; ++i) {
    instance.costs.emplace_back(linalg::Vector{c_right});
    instance.set_b.push_back(i);
  }
  return instance;
}

double subset_minimizer(const GapInstance& instance, const std::vector<int>& agents) {
  ABFT_REQUIRE(!agents.empty(), "subset must be non-empty");
  double sum = 0.0;
  for (int i : agents) {
    ABFT_REQUIRE(0 <= i && i < static_cast<int>(instance.costs.size()),
                 "agent index out of range");
    sum += instance.costs[static_cast<std::size_t>(i)].center()[0];
  }
  return sum / static_cast<double>(agents.size());
}

bool output_satisfies_both_worlds(const GapInstance& instance, double candidate) {
  const bool world_one = std::abs(candidate - instance.x_s) <= instance.epsilon;
  const bool world_two = std::abs(candidate - instance.x_b_shat) <= instance.epsilon;
  return world_one && world_two;
}

}  // namespace abft::core

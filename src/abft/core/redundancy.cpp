#include "abft/core/redundancy.hpp"

#include <algorithm>

#include "abft/util/check.hpp"
#include "abft/util/combinatorics.hpp"
#include "abft/util/rng.hpp"

namespace abft::core {

RedundancyReport measure_redundancy(const SubsetSolver& solver, int f) {
  const int n = solver.num_agents();
  ABFT_REQUIRE(f >= 0, "f must be non-negative");
  ABFT_REQUIRE(n - 2 * f >= 1, "measure_redundancy needs n - 2f >= 1");

  RedundancyReport report;
  if (f == 0) return report;  // S == S-hat, distance identically zero

  const CachedSubsetSolver cached(solver);
  util::for_each_combination(n, n - f, [&](const std::vector<int>& set_s) {
    const Vector x_s = cached.solve(set_s);
    // Definition 3: exactly n - 2f elements.
    for (const auto& subset : util::all_subsets_of(set_s, n - 2 * f)) {
      const double d = linalg::distance(x_s, cached.solve(subset));
      ++report.pairs_checked;
      if (d > report.epsilon) {
        report.epsilon = d;
        report.worst_set = set_s;
        report.worst_subset = subset;
      }
    }
    // Appendix-J variant: every size from n - 2f up to n - f.
    for (int size = n - 2 * f + 1; size < n - f; ++size) {
      for (const auto& subset : util::all_subsets_of(set_s, size)) {
        report.epsilon_all_sizes =
            std::max(report.epsilon_all_sizes, linalg::distance(x_s, cached.solve(subset)));
      }
    }
    return true;
  });
  report.epsilon_all_sizes = std::max(report.epsilon_all_sizes, report.epsilon);
  return report;
}

bool has_redundancy(const SubsetSolver& solver, int f, double epsilon, double tol) {
  return measure_redundancy(solver, f).epsilon <= epsilon + tol;
}

double estimate_redundancy(const SubsetSolver& solver, int f, int num_samples, util::Rng& rng) {
  const int n = solver.num_agents();
  ABFT_REQUIRE(f >= 0, "f must be non-negative");
  ABFT_REQUIRE(n - 2 * f >= 1, "estimate_redundancy needs n - 2f >= 1");
  ABFT_REQUIRE(num_samples > 0, "need at least one sample");
  if (f == 0) return 0.0;

  const CachedSubsetSolver cached(solver);
  double worst = 0.0;
  for (int sample = 0; sample < num_samples; ++sample) {
    std::vector<int> set_s = rng.sample_without_replacement(n, n - f);
    std::sort(set_s.begin(), set_s.end());
    std::vector<int> positions = rng.sample_without_replacement(n - f, n - 2 * f);
    std::sort(positions.begin(), positions.end());
    std::vector<int> subset;
    subset.reserve(positions.size());
    for (int p : positions) subset.push_back(set_s[static_cast<std::size_t>(p)]);
    worst = std::max(worst, linalg::distance(cached.solve(set_s), cached.solve(subset)));
  }
  return worst;
}

}  // namespace abft::core

// (2f, eps)-redundancy (Definition 3): over every pair of subsets
// S (|S| = n-f) and S-hat (subset of S, |S-hat| = n-2f), the Hausdorff
// distance between the two argmin sets is at most eps.  This module measures
// the smallest eps for which a workload satisfies the property — the
// quantity the paper's Appendix J computes (eps = 0.0890 for its instance).
#pragma once

#include "abft/core/subset_solver.hpp"
#include "abft/util/rng.hpp"

namespace abft::core {

struct RedundancyReport {
  /// Smallest eps satisfying Definition 3 (pairs with |S-hat| = n - 2f).
  double epsilon = 0.0;
  /// Appendix-J variant: additionally sweeps the intermediate sizes
  /// n-2f < |S-hat| < n-f.  Never smaller than `epsilon`; reported because
  /// the paper's experiment checks all |S-hat| >= n-2f.
  double epsilon_all_sizes = 0.0;
  /// Worst pair found for `epsilon`.
  std::vector<int> worst_set;
  std::vector<int> worst_subset;
  /// Number of (S, S-hat) pairs examined for `epsilon`.
  long pairs_checked = 0;
};

/// Measures the redundancy of a workload for the given f.  Requires
/// 0 <= f and n - 2f >= 1.  For f = 0 the report is identically zero.
/// Cost: sum over |S|=n-f of C(n-f, n-2f) subset minimizations (cached).
RedundancyReport measure_redundancy(const SubsetSolver& solver, int f);

/// Convenience check of Definition 3 within tolerance `tol`.
bool has_redundancy(const SubsetSolver& solver, int f, double epsilon, double tol = 1e-12);

/// Monte-Carlo lower estimate of the redundancy eps for systems whose exact
/// sweep is combinatorially infeasible: samples `num_samples` random
/// (S, S-hat) pairs per Definition 3.  Always <= the exact epsilon, and
/// converges to it as samples grow (tested).
double estimate_redundancy(const SubsetSolver& solver, int f, int num_samples, util::Rng& rng);

}  // namespace abft::core

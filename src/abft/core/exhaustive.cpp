#include "abft/core/exhaustive.hpp"

#include <limits>
#include <numeric>

#include "abft/util/check.hpp"
#include "abft/util/combinatorics.hpp"

namespace abft::core {

ExhaustiveResult exhaustive_resilient_solve(const SubsetSolver& solver, int f) {
  const int n = solver.num_agents();
  ABFT_REQUIRE(f >= 0, "f must be non-negative");
  ABFT_REQUIRE(2 * f < n, "exhaustive algorithm needs f < n/2 (Lemma 1)");

  ExhaustiveResult result;
  if (f == 0) {
    std::vector<int> everyone(static_cast<std::size_t>(n));
    std::iota(everyone.begin(), everyone.end(), 0);
    result.output = solver.solve(everyone);
    result.chosen = std::move(everyone);
    result.subsets_solved = 1;
    return result;
  }

  const CachedSubsetSolver cached(solver);
  double best_score = std::numeric_limits<double>::infinity();
  util::for_each_combination(n, n - f, [&](const std::vector<int>& set_t) {
    const Vector x_t = cached.solve(set_t);
    double r_t = 0.0;
    for (const auto& subset : util::all_subsets_of(set_t, n - 2 * f)) {
      r_t = std::max(r_t, linalg::distance(x_t, cached.solve(subset)));
      if (r_t >= best_score) break;  // cannot beat the incumbent
    }
    if (r_t < best_score) {
      best_score = r_t;
      result.output = x_t;
      result.chosen = set_t;
    }
    return true;
  });
  result.score = best_score;
  result.subsets_solved = static_cast<long>(cached.cache_size());
  return result;
}

}  // namespace abft::core

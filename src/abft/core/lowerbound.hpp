// Constructive lower-bound gadgets from Lemma 1 and Theorem 1: scalar cost
// families where two "honest worlds" are indistinguishable to the server yet
// have minimizers more than 2*eps apart, so no deterministic algorithm can be
// (f, eps)-resilient.  Tests instantiate these to witness the impossibility
// results numerically.
#pragma once

#include <vector>

#include "abft/opt/quadratic.hpp"

namespace abft::core {

/// The Theorem-1 construction (d = 1) for given n, f, eps, delta > 0:
///  * S-hat: n - 2f agents with minimizer at x_shat;
///  * S \ S-hat: f agents placed so argmin over S sits eps + delta left of
///    x_shat;
///  * B: f agents placed so argmin over B union S-hat sits eps + delta right.
/// Worlds (i) honest = S and (ii) honest = B union S-hat present identical
/// inputs, and |x_S - x_{B u S-hat}| = 2(eps + delta) > 2 eps.
struct GapInstance {
  std::vector<opt::SquaredDistanceCost> costs;  // all n scalar costs
  std::vector<int> set_s;                       // world (i) honest set
  std::vector<int> set_shat;                    // common core
  std::vector<int> set_b;                       // world (ii) extra agents
  double x_s = 0.0;                             // argmin over S
  double x_b_shat = 0.0;                        // argmin over B union S-hat
  double epsilon = 0.0;
  double delta = 0.0;
};

/// Builds the gadget.  Requires n >= 2, 1 <= f < n/2, eps >= 0, delta > 0.
GapInstance make_gap_instance(int n, int f, double epsilon, double delta);

/// Exact scalar minimizer of sum of (x - c_i)^2 over the given agent subset
/// of `instance.costs` — the centroid of the selected centers.
double subset_minimizer(const GapInstance& instance, const std::vector<int>& agents);

/// True iff a single output could be eps-close to both worlds' minimizers —
/// by construction this returns false for every candidate, which is exactly
/// Theorem 1's contradiction.
bool output_satisfies_both_worlds(const GapInstance& instance, double candidate);

}  // namespace abft::core

// Set distances from Section 1.2: point-to-set distance (eq. 3) and the
// Euclidean Hausdorff distance (eq. 4), over finite representations of
// argmin sets.
#pragma once

#include <span>

#include "abft/linalg/vector.hpp"

namespace abft::core {

using linalg::Vector;

/// dist(x, X) = inf_{y in X} ||x - y||  (eq. 3).  X must be non-empty.
double distance_to_set(const Vector& x, std::span<const Vector> set);

/// Hausdorff distance between two non-empty finite sets (eq. 4).
double hausdorff_distance(std::span<const Vector> a, std::span<const Vector> b);

}  // namespace abft::core

#include "abft/agg/aggregator.hpp"

#include "abft/util/check.hpp"

namespace abft::agg {

int validate_gradients(std::span<const Vector> gradients, int f) {
  ABFT_REQUIRE(!gradients.empty(), "aggregation needs at least one gradient");
  ABFT_REQUIRE(f >= 0, "fault bound f must be non-negative");
  ABFT_REQUIRE(f < static_cast<int>(gradients.size()),
               "fault bound f must be smaller than the number of gradients");
  const int dim = gradients.front().dim();
  ABFT_REQUIRE(dim > 0, "gradients must be non-empty vectors");
  for (const auto& g : gradients) {
    ABFT_REQUIRE(g.dim() == dim, "all gradients must share a dimension");
  }
  return dim;
}

void GradientAggregator::aggregate_into(Vector& out, const GradientBatch& batch, int f,
                                        AggregatorWorkspace& /*workspace*/) const {
  validate_batch(batch, f);
  const auto gradients = batch.unpack();
  out = aggregate(gradients, f);
}

Vector GradientAggregator::aggregate_batched(const GradientBatch& batch, int f,
                                             AggregatorWorkspace& workspace) const {
  Vector out;
  aggregate_into(out, batch, f, workspace);
  return out;
}

}  // namespace abft::agg

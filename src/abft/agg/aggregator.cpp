#include "abft/agg/aggregator.hpp"

#include "abft/util/check.hpp"

namespace abft::agg {

int validate_gradients(std::span<const Vector> gradients, int f) {
  ABFT_REQUIRE(!gradients.empty(), "aggregation needs at least one gradient");
  ABFT_REQUIRE(f >= 0, "fault bound f must be non-negative");
  ABFT_REQUIRE(f < static_cast<int>(gradients.size()),
               "fault bound f must be smaller than the number of gradients");
  const int dim = gradients.front().dim();
  ABFT_REQUIRE(dim > 0, "gradients must be non-empty vectors");
  for (const auto& g : gradients) {
    ABFT_REQUIRE(g.dim() == dim, "all gradients must share a dimension");
  }
  return dim;
}

}  // namespace abft::agg

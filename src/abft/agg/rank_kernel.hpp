// Internal: branchless rank-count kernel shared by the coordinate-wise
// filters (CWTM, CWMed).  For a contiguous column of n doubles it computes
//
//   lt[j] = #{ i : col[i] < col[j] }        for every j in [0, n)
//
// For duplicate-free columns lt is a permutation of 0..n-1, so rank
// classification reproduces positional trimming / median selection of the
// sorted column exactly without moving any data.  Callers detect duplicate
// columns via sum(lt) != n(n-1)/2 and fall back to exact selection.
//
// The kernel is the hot inner loop of the batched CWTM/CWMed path: one
// broadcast + compare + masked-add per (i, j-block), processing a full SIMD
// register of columns-entries per instruction on AVX-512/AVX2, with a
// portable auto-vectorizable fallback elsewhere.
#pragma once

#include <cstdint>

#if defined(__AVX512F__) || defined(__AVX2__)
#include <immintrin.h>
#endif

#include "abft/agg/batch.hpp"

namespace abft::agg::detail {

/// Hard ceiling on the rank-kernel n: sizes the callers' stack buffers
/// (count array + column tiles), so the calibrated cutoff can never exceed
/// it.  512 keeps the largest tile (16 columns x 512 rows) at 64 KiB.
constexpr int kRankKernelCapacity = 512;

/// The crossover AggMode::exact pins: the historical hard-coded value.
/// Exact mode promises bit-reproducible output run-to-run, and CWTM's
/// rank-classified trimmed sum adds kept entries in original column order
/// while the nth_element fallback adds them in partition order — same
/// multiset, different rounding — so exact mode must route by a constant,
/// never by the timing-based calibration below.
constexpr int kRankKernelExactCutoff = 256;

/// Adaptive crossover for AggMode::fast: the largest n routed to the O(n^2)
/// rank kernel before fast-mode callers fall back to O(n log n) nth_element
/// selection.  Calibrated once per process by racing the two kernels at a
/// few candidate sizes (see rank_kernel.cpp) — the crossover depends on the
/// host's SIMD width, which is exactly the host-dependence fast mode's
/// relaxed-parity contract permits.  kRankKernelExactCutoff is the fallback
/// when calibration is inconclusive.  The result is the pure measurement,
/// cached for the process lifetime; the ABFT_RANK_KERNEL_CUTOFF override is
/// applied by effective_rank_cutoff, not baked into the cache.  Both routes
/// reproduce sorted-position selection exactly for duplicate-free columns
/// (duplicates take the fallback regardless); only the floating-point
/// summation order of the kept entries differs, inside the fast tolerance
/// contract.
int rank_kernel_cutoff();

/// The cutoff CWTM/CWMed routing actually uses for `mode`.  When the
/// ABFT_RANK_KERNEL_CUTOFF environment variable is set it wins in BOTH
/// modes (parsed per call so tests can flip it at runtime, clamped to
/// [0, kRankKernelCapacity]; 0 forces the rank kernel off entirely);
/// otherwise fast mode takes the cached per-process calibration and exact
/// mode pins kRankKernelExactCutoff.  Within one run the override is a
/// constant, so exact mode's run-to-run reproducibility contract holds for
/// a fixed environment.
int effective_rank_cutoff(AggMode mode);

inline void rank_counts(const double* col, int n, std::int64_t* lt) {
#if defined(__AVX512F__)
  const __m512i ones = _mm512_set1_epi64(1);
  for (int j0 = 0; j0 < n; j0 += 8) {
    const int rem = n - j0;
    const __mmask8 lane_mask =
        rem >= 8 ? static_cast<__mmask8>(0xFF) : static_cast<__mmask8>((1u << rem) - 1);
    const __m512d vx = _mm512_maskz_loadu_pd(lane_mask, col + j0);
    __m512i vcnt = _mm512_setzero_si512();
    for (int i = 0; i < n; ++i) {
      const __m512d vy = _mm512_set1_pd(col[i]);
      const __mmask8 is_lt = _mm512_cmp_pd_mask(vy, vx, _CMP_LT_OQ);
      vcnt = _mm512_mask_add_epi64(vcnt, is_lt, vcnt, ones);
    }
    _mm512_mask_storeu_epi64(lt + j0, lane_mask, vcnt);
  }
#elif defined(__AVX2__)
  int j0 = 0;
  for (; j0 + 4 <= n; j0 += 4) {
    const __m256d vx = _mm256_loadu_pd(col + j0);
    __m256i vcnt = _mm256_setzero_si256();
    for (int i = 0; i < n; ++i) {
      const __m256d vy = _mm256_set1_pd(col[i]);
      const __m256d is_lt = _mm256_cmp_pd(vy, vx, _CMP_LT_OQ);
      // The compare mask is all-ones (-1) per true lane; subtracting counts.
      vcnt = _mm256_sub_epi64(vcnt, _mm256_castpd_si256(is_lt));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(lt + j0), vcnt);
  }
  for (; j0 < n; ++j0) {
    const double x = col[j0];
    std::int64_t c = 0;
    for (int i = 0; i < n; ++i) c += col[i] < x ? 1 : 0;
    lt[j0] = c;
  }
#else
  for (int j = 0; j < n; ++j) lt[j] = 0;
  for (int i = 0; i < n; ++i) {
    const double y = col[i];
    for (int j = 0; j < n; ++j) lt[j] += y < col[j] ? 1 : 0;
  }
#endif
}

/// Float32-lane overload: same branchless rank counts over a demoted
/// column, 16 entries per 512-bit register (twice the f64 throughput at
/// half the traffic).  Counts fit int32 (n <= kRankKernelCapacity = 512).
inline void rank_counts(const float* col, int n, std::int32_t* lt) {
#if defined(__AVX512F__)
  const __m512i ones = _mm512_set1_epi32(1);
  for (int j0 = 0; j0 < n; j0 += 16) {
    const int rem = n - j0;
    const __mmask16 lane_mask =
        rem >= 16 ? static_cast<__mmask16>(0xFFFF) : static_cast<__mmask16>((1u << rem) - 1);
    const __m512 vx = _mm512_maskz_loadu_ps(lane_mask, col + j0);
    __m512i vcnt = _mm512_setzero_si512();
    for (int i = 0; i < n; ++i) {
      const __m512 vy = _mm512_set1_ps(col[i]);
      const __mmask16 is_lt = _mm512_cmp_ps_mask(vy, vx, _CMP_LT_OQ);
      vcnt = _mm512_mask_add_epi32(vcnt, is_lt, vcnt, ones);
    }
    _mm512_mask_storeu_epi32(lt + j0, lane_mask, vcnt);
  }
#elif defined(__AVX2__)
  int j0 = 0;
  for (; j0 + 8 <= n; j0 += 8) {
    const __m256 vx = _mm256_loadu_ps(col + j0);
    __m256i vcnt = _mm256_setzero_si256();
    for (int i = 0; i < n; ++i) {
      const __m256 vy = _mm256_set1_ps(col[i]);
      const __m256 is_lt = _mm256_cmp_ps(vy, vx, _CMP_LT_OQ);
      // The compare mask is all-ones (-1) per true lane; subtracting counts.
      vcnt = _mm256_sub_epi32(vcnt, _mm256_castps_si256(is_lt));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(lt + j0), vcnt);
  }
  for (; j0 < n; ++j0) {
    const float x = col[j0];
    std::int32_t c = 0;
    for (int i = 0; i < n; ++i) c += col[i] < x ? 1 : 0;
    lt[j0] = c;
  }
#else
  for (int j = 0; j < n; ++j) lt[j] = 0;
  for (int i = 0; i < n; ++i) {
    const float y = col[i];
    for (int j = 0; j < n; ++j) lt[j] += y < col[j] ? 1 : 0;
  }
#endif
}

}  // namespace abft::agg::detail

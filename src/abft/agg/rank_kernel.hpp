// Internal: branchless rank-count kernel shared by the coordinate-wise
// filters (CWTM, CWMed).  For a contiguous column of n doubles it computes
//
//   lt[j] = #{ i : col[i] < col[j] }        for every j in [0, n)
//
// For duplicate-free columns lt is a permutation of 0..n-1, so rank
// classification reproduces positional trimming / median selection of the
// sorted column exactly without moving any data.  Callers detect duplicate
// columns via sum(lt) != n(n-1)/2 and fall back to exact selection.
//
// The kernel is the hot inner loop of the batched CWTM/CWMed path: one
// broadcast + compare + masked-add per (i, j-block), processing a full SIMD
// register of columns-entries per instruction on AVX-512/AVX2, with a
// portable auto-vectorizable fallback elsewhere.
#pragma once

#include <cstdint>

#if defined(__AVX512F__) || defined(__AVX2__)
#include <immintrin.h>
#endif

namespace abft::agg::detail {

/// Above this the O(n^2) rank kernel loses to O(n log n) selection; callers
/// must route larger batches to their nth_element fallback.
constexpr int kRankKernelMaxN = 256;

inline void rank_counts(const double* col, int n, std::int64_t* lt) {
#if defined(__AVX512F__)
  const __m512i ones = _mm512_set1_epi64(1);
  for (int j0 = 0; j0 < n; j0 += 8) {
    const int rem = n - j0;
    const __mmask8 lane_mask =
        rem >= 8 ? static_cast<__mmask8>(0xFF) : static_cast<__mmask8>((1u << rem) - 1);
    const __m512d vx = _mm512_maskz_loadu_pd(lane_mask, col + j0);
    __m512i vcnt = _mm512_setzero_si512();
    for (int i = 0; i < n; ++i) {
      const __m512d vy = _mm512_set1_pd(col[i]);
      const __mmask8 is_lt = _mm512_cmp_pd_mask(vy, vx, _CMP_LT_OQ);
      vcnt = _mm512_mask_add_epi64(vcnt, is_lt, vcnt, ones);
    }
    _mm512_mask_storeu_epi64(lt + j0, lane_mask, vcnt);
  }
#elif defined(__AVX2__)
  int j0 = 0;
  for (; j0 + 4 <= n; j0 += 4) {
    const __m256d vx = _mm256_loadu_pd(col + j0);
    __m256i vcnt = _mm256_setzero_si256();
    for (int i = 0; i < n; ++i) {
      const __m256d vy = _mm256_set1_pd(col[i]);
      const __m256d is_lt = _mm256_cmp_pd(vy, vx, _CMP_LT_OQ);
      // The compare mask is all-ones (-1) per true lane; subtracting counts.
      vcnt = _mm256_sub_epi64(vcnt, _mm256_castpd_si256(is_lt));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(lt + j0), vcnt);
  }
  for (; j0 < n; ++j0) {
    const double x = col[j0];
    std::int64_t c = 0;
    for (int i = 0; i < n; ++i) c += col[i] < x ? 1 : 0;
    lt[j0] = c;
  }
#else
  for (int j = 0; j < n; ++j) lt[j] = 0;
  for (int i = 0; i < n; ++i) {
    const double y = col[i];
    for (int j = 0; j < n; ++j) lt[j] += y < col[j] ? 1 : 0;
  }
#endif
}

}  // namespace abft::agg::detail
